package holdcsim_test

import (
	"fmt"

	"holdcsim"
)

// ExampleBuild runs a minimal deterministic simulation: a four-server
// web-search farm at 20% utilization for two simulated seconds.
func ExampleBuild() {
	cfg := holdcsim.Config{
		Seed:         1,
		Servers:      4,
		ServerConfig: holdcsim.DefaultServerConfig(holdcsim.XeonE5_2680()),
		Placer:       holdcsim.LeastLoaded{},
		Arrivals: holdcsim.Poisson{
			Rate: holdcsim.UtilizationRate(0.2, 4, 10, 0.005)},
		Factory:  holdcsim.SingleTask{Service: holdcsim.Deterministic{Value: 0.005}},
		Duration: 2 * holdcsim.Second,
	}
	dc, err := holdcsim.Build(cfg)
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	res, err := dc.Run()
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	fmt.Printf("completed=%d mean=%.1fms\n", res.JobsCompleted, res.Latency.Mean()*1e3)
	// Output: completed=3206 mean=5.1ms
}

// ExampleFatTree inspects the paper's Fig. 10 topology.
func ExampleFatTree() {
	ft := holdcsim.FatTree{K: 4}
	g, err := ft.Build()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("hosts=%d switches=%d links=%d\n",
		len(g.Hosts()), len(g.Switches()), g.NumLinks())
	// Output: hosts=16 switches=20 links=48
}

// ExampleNewMMPP2 shows the bursty arrival model of Sec. III-D.
func ExampleNewMMPP2() {
	m, err := holdcsim.NewMMPP2(100, 10, 1, 9)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("Ra=%.0f burstyFraction=%.2f meanRate=%.0f/s\n",
		m.RateRatio(), m.BurstyFraction(), m.MeanRate())
	// Output: Ra=10 burstyFraction=0.10 meanRate=19/s
}
