// Package holdcsim is a holistic, event-driven data center simulator —
// a from-scratch Go implementation of "HolDCSim: A Holistic Simulator
// for Data Centers" (Yao et al., IISWC 2019, arXiv:1909.13548).
//
// HolDCSim jointly models servers and networks: multi-core
// (optionally heterogeneous) servers with hierarchical ACPI power states
// (per-core C-states, package C-states, system sleep states, DVFS),
// switches built from chassis/line cards/ports with Low Power Idle and
// adaptive link rate, the fat-tree / flattened-butterfly / BCube /
// CamCube / star topologies, packet- and flow-level communication,
// multi-task job DAGs, stochastic (Poisson, 2-state MMPP) and
// trace-driven workloads, and pluggable global/local scheduling and
// power-management policies.
//
// # Quick start
//
//	cfg := holdcsim.Config{
//		Seed:         1,
//		Servers:      16,
//		ServerConfig: holdcsim.DefaultServerConfig(holdcsim.XeonE5_2680()),
//		Placer:       holdcsim.LeastLoaded{},
//		Arrivals:     holdcsim.Poisson{Rate: 5000},
//		Factory:      holdcsim.SingleTask{Service: holdcsim.WebSearchService()},
//		MaxJobs:      100000,
//	}
//	dc, err := holdcsim.Build(cfg)
//	if err != nil { ... }
//	res, _ := dc.Run()
//	fmt.Println(res) // latency percentiles, energy, residency, ...
//
// The type surface is exported through aliases onto the internal
// packages, so every method documented there is available on the types
// below.
package holdcsim

import (
	"holdcsim/internal/core"
	"holdcsim/internal/dist"
	"holdcsim/internal/engine"
	"holdcsim/internal/fault"
	"holdcsim/internal/job"
	"holdcsim/internal/network"
	"holdcsim/internal/power"
	"holdcsim/internal/rng"
	"holdcsim/internal/sched"
	"holdcsim/internal/server"
	"holdcsim/internal/simtime"
	"holdcsim/internal/stats"
	"holdcsim/internal/topology"
	"holdcsim/internal/trace"
	"holdcsim/internal/workload"
)

// Simulation assembly (internal/core).
type (
	// Config describes one experiment: farm, topology, scheduling,
	// workload, horizon.
	Config = core.Config
	// DataCenter is a built simulation; Run executes it.
	DataCenter = core.DataCenter
	// Results aggregates latency, energy, residency and network stats.
	Results = core.Results
	// ServerEnergy is one server's CPU/DRAM/platform energy split.
	ServerEnergy = core.ServerEnergy
	// CommMode selects flow- or packet-level communication for DAG edges.
	CommMode = core.CommMode
)

// Communication modes.
const (
	CommNone   = core.CommNone
	CommFlow   = core.CommFlow
	CommPacket = core.CommPacket
)

// Build validates a Config and constructs the data center.
func Build(cfg Config) (*DataCenter, error) { return core.Build(cfg) }

// Virtual time (internal/simtime).
type (
	// Time is virtual time in nanoseconds since simulation start.
	Time = simtime.Time
)

// Common durations.
const (
	Nanosecond  = simtime.Nanosecond
	Microsecond = simtime.Microsecond
	Millisecond = simtime.Millisecond
	Second      = simtime.Second
	Minute      = simtime.Minute
	Hour        = simtime.Hour
)

// Seconds converts float64 seconds to Time.
func Seconds(s float64) Time { return simtime.FromSeconds(s) }

// Event engine (internal/engine).
type (
	// Engine is the discrete-event core: virtual clock + pooled ladder
	// queue of events.
	Engine = engine.Engine
	// EventHandle identifies a scheduled, cancellable closure. It is a
	// small value type that stays safely inert after its event fires,
	// is canceled, or is recycled by the engine's event pool.
	EventHandle = engine.Handle
	// Timer is a restartable one-shot timer on the virtual clock.
	Timer = engine.Timer
)

// NewEngine returns an empty engine at the simulation epoch.
func NewEngine() *Engine { return engine.New() }

// NewTimer returns an unarmed timer invoking fn on expiry.
func NewTimer(eng *Engine, fn func()) *Timer { return engine.NewTimer(eng, fn) }

// Deterministic randomness (internal/rng).
type (
	// RNG is a deterministic random stream, splittable by label.
	RNG = rng.Source
)

// NewRNG returns a stream seeded from seed.
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// Servers and power (internal/server, internal/power).
type (
	// Server is one machine: cores, local queues, power controller.
	Server = server.Server
	// Core is one processing unit of a server.
	Core = server.Core
	// ServerConfig parameterizes one server instance.
	ServerConfig = server.Config
	// QueueMode selects unified vs per-core local queues.
	QueueMode = server.QueueMode
	// DVFSGovernor is an ondemand-style runtime frequency controller.
	DVFSGovernor = server.DVFSGovernor
	// ServerProfile carries per-state power figures for a server model.
	ServerProfile = power.ServerProfile
	// SwitchProfile carries per-state power figures for a switch model.
	SwitchProfile = power.SwitchProfile
	// Transition is a power-state transition (latency + in-flight watts).
	Transition = power.Transition
	// PState is a DVFS operating point.
	PState = power.PState
	// CState is a core low-power state.
	CState = power.CState
	// PkgCState is a package low-power state.
	PkgCState = power.PkgCState
	// SState is an ACPI system state.
	SState = power.SState
)

// Local queue modes.
const (
	QueueUnified = server.QueueUnified
	QueuePerCore = server.QueuePerCore
)

// Residency labels used by Results.Residency (the paper's Fig. 8 legend).
const (
	StateActive   = server.StateActive
	StateWakeUp   = server.StateWakeUp
	StateIdle     = server.StateIdle
	StatePkgC6    = server.StatePkgC6
	StateSysSleep = server.StateSysSleep
)

// NewServer constructs a standalone server bound to an engine (the
// Config/Build path does this for whole farms).
func NewServer(id int, eng *Engine, cfg ServerConfig) (*Server, error) {
	return server.New(id, eng, cfg)
}

// NewDVFSGovernor attaches an ondemand-style frequency governor to a
// server; call Start on it to begin.
func NewDVFSGovernor(srv *Server) *DVFSGovernor { return server.NewDVFSGovernor(srv) }

// DefaultServerConfig returns the common idle governor with package C6
// enabled and no delay timer.
func DefaultServerConfig(profile *ServerProfile) ServerConfig {
	return server.DefaultConfig(profile)
}

// XeonE5_2680 is the 10-core Xeon profile of the paper's validation.
func XeonE5_2680() *ServerProfile { return power.XeonE5_2680() }

// DualSocketXeon is a two-socket, 20-core Xeon variant whose packages
// sleep independently.
func DualSocketXeon() *ServerProfile { return power.DualSocketXeon() }

// FourCoreServer is the generic 4-core farm profile of Secs. IV-A/B.
func FourCoreServer() *ServerProfile { return power.FourCoreServer() }

// Cisco2960_24 is the validated 24-port switch profile (Sec. V-B).
func Cisco2960_24() *SwitchProfile { return power.Cisco2960_24() }

// DataCenter10G is a generic 10 GbE switch profile with the given ports.
func DataCenter10G(ports int) *SwitchProfile { return power.DataCenter10G(ports) }

// Topologies (internal/topology).
type (
	// Topology builds a node/link graph.
	Topology = topology.Topology
	// Graph is the built topology with shortest-path/ECMP routing.
	Graph = topology.Graph
	// NodeID identifies a node in a graph.
	NodeID = topology.NodeID
	// FatTree is the k-ary fat-tree of Fig. 10.
	FatTree = topology.FatTree
	// Star is N hosts on one switch (the Sec. V-B validation shape).
	Star = topology.Star
	// BCube is the hybrid server-centric BCube(n,k).
	BCube = topology.BCube
	// CamCube is the server-only 3D torus.
	CamCube = topology.CamCube
	// FlattenedButterfly is the 2D flattened butterfly.
	FlattenedButterfly = topology.FlattenedButterfly
)

// Network (internal/network).
type (
	// Network simulates switches, ports, flows and packets over a graph.
	Network = network.Network
	// NetworkConfig parameterizes the network layer.
	NetworkConfig = network.Config
	// Switch is one switching element with line cards and ports.
	Switch = network.Switch
	// NetStats aggregates network counters.
	NetStats = network.Stats
	// RateAdaptationConfig tunes the adaptive link rate controller.
	RateAdaptationConfig = network.RateAdaptationConfig
)

// DefaultNetworkConfig returns sensible network defaults for a profile.
func DefaultNetworkConfig(profile *SwitchProfile) NetworkConfig {
	return network.DefaultConfig(profile)
}

// Scheduling (internal/sched).
type (
	// Placer chooses a server for each ready task.
	Placer = sched.Placer
	// HostMapper translates a server ID to its topology node.
	HostMapper = sched.HostMapper
	// Controller observes arrivals/completions to drive policies.
	Controller = sched.Controller
	// Scheduler is the global scheduler.
	Scheduler = sched.Scheduler
	// RoundRobin cycles placements.
	RoundRobin = sched.RoundRobin
	// LeastLoaded balances by pending tasks.
	LeastLoaded = sched.LeastLoaded
	// PackFirst consolidates load onto as few servers as possible.
	PackFirst = sched.PackFirst
	// NetworkAware is the Server-Network-Aware policy of Sec. IV-D.
	NetworkAware = sched.NetworkAware
	// Provisioner is the threshold provisioning controller of Sec. IV-A.
	Provisioner = sched.Provisioner
	// DualTimer is the dual delay-timer policy of Sec. IV-B.
	DualTimer = sched.DualTimer
	// AdaptivePool is the WASP-style dual-pool framework of Sec. IV-C.
	AdaptivePool = sched.AdaptivePool
)

// NewProvisioner returns the Sec. IV-A threshold controller.
func NewProvisioner(minLoad, maxLoad float64) *Provisioner {
	return sched.NewProvisioner(minLoad, maxLoad)
}

// NewDualTimer returns the Sec. IV-B dual delay-timer policy.
func NewDualTimer(highCount int, tauHigh, tauLow Time) *DualTimer {
	return sched.NewDualTimer(highCount, tauHigh, tauLow)
}

// NewAdaptivePool returns the Sec. IV-C workload-adaptive framework.
func NewAdaptivePool(tWakeup, tSleep float64, tau Time) *AdaptivePool {
	return sched.NewAdaptivePool(tWakeup, tSleep, tau)
}

// Fault injection (internal/fault, internal/sched).
type (
	// FaultSpec declares a seed-derived failure workload: server
	// crash/recover, link flap, switch death. Set Config.Faults to
	// attach it.
	FaultSpec = fault.Spec
	// FaultTimeline is a concrete time-ordered fault schedule.
	FaultTimeline = fault.Timeline
	// FaultLedger is the injector's independent account of applied
	// faults and lost work (Results.Faults).
	FaultLedger = fault.Ledger
	// OrphanPolicy selects what happens to tasks stranded by a crash.
	OrphanPolicy = sched.OrphanPolicy
	// AllDownError is the typed placement error when every eligible
	// server is down.
	AllDownError = sched.AllDownError
)

// Orphan policies for FaultSpec.Orphans.
const (
	// OrphanRequeue restarts stranded tasks on alive servers.
	OrphanRequeue = sched.OrphanRequeue
	// OrphanDrop retracts the whole job of any stranded task.
	OrphanDrop = sched.OrphanDrop
)

// Workloads (internal/workload, internal/dist, internal/trace, internal/job).
type (
	// ArrivalProcess produces inter-arrival gaps.
	ArrivalProcess = workload.ArrivalProcess
	// JobFactory expands arrivals into task DAGs.
	JobFactory = workload.JobFactory
	// Poisson is a homogeneous Poisson arrival process.
	Poisson = workload.Poisson
	// MMPP is the 2-state Markov-Modulated Poisson Process.
	MMPP = workload.MMPP
	// TraceReplay replays recorded arrival timestamps.
	TraceReplay = workload.TraceReplay
	// SingleTask builds one-task jobs.
	SingleTask = workload.SingleTask
	// TwoTier builds app->db request DAGs.
	TwoTier = workload.TwoTier
	// ScatterGather builds root->workers->aggregate DAGs.
	ScatterGather = workload.ScatterGather
	// RandomDAG builds layered random DAGs (the Sec. IV-D traffic).
	RandomDAG = workload.RandomDAG
	// Sampler draws service times or sizes.
	Sampler = dist.Sampler
	// MMPP2 is the underlying modulated process.
	MMPP2 = dist.MMPP2
	// Trace is a sequence of arrival timestamps.
	Trace = trace.Trace
	// Job is a user request expanded into a task DAG.
	Job = job.Job
	// Task is one executable unit of a Job.
	Task = job.Task
)

// Service-time distributions.
type (
	// Exponential has the given mean.
	Exponential = dist.Exponential
	// Uniform draws from [Lo, Hi).
	Uniform = dist.Uniform
	// Deterministic always returns Value.
	Deterministic = dist.Deterministic
	// LogNormal is parameterized by the underlying normal.
	LogNormal = dist.LogNormal
	// Pareto is heavy-tailed with minimum Xm and shape Alpha.
	Pareto = dist.Pareto
)

// NewMMPP2 validates and returns a 2-state MMPP.
func NewMMPP2(lambdaH, lambdaL, meanBurst, meanQuiet float64) (*MMPP2, error) {
	return dist.NewMMPP2(lambdaH, lambdaL, meanBurst, meanQuiet)
}

// NewTraceReplay wraps a trace for replay from its beginning.
func NewTraceReplay(tr *Trace) *TraceReplay { return workload.NewTraceReplay(tr) }

// WebSearchService is the 5 ms latency-critical profile (Sec. IV-B).
func WebSearchService() Sampler { return workload.WebSearchService() }

// WebServingService is the 120 ms profile (Sec. IV-B).
func WebServingService() Sampler { return workload.WebServingService() }

// WikipediaService is the 3-10 ms uniform profile (Sec. IV-A).
func WikipediaService() Sampler { return workload.WikipediaService() }

// UtilizationRate converts a target utilization into a Poisson rate.
func UtilizationRate(rho float64, nServers, nCores int, meanServiceSec float64) float64 {
	return workload.UtilizationRate(rho, nServers, nCores, meanServiceSec)
}

// SyntheticWikipedia generates a Wikipedia-like diurnal arrival trace
// (stand-in for the paper's trace [59]; see DESIGN.md).
func SyntheticWikipedia(durationSec, meanRate float64, r *RNG) *Trace {
	return trace.SyntheticWikipedia(trace.DefaultWikipediaConfig(durationSec, meanRate), r)
}

// SyntheticNLANR generates an NLANR-like bursty HTTP arrival trace
// (stand-in for the paper's trace [2]; see DESIGN.md).
func SyntheticNLANR(durationSec float64, r *RNG) *Trace {
	return trace.SyntheticNLANR(trace.DefaultNLANRConfig(durationSec), r)
}

// Statistics (internal/stats).
type (
	// Tally accumulates samples with percentiles and CDFs.
	Tally = stats.Tally
	// CDFPoint is one point of an empirical CDF.
	CDFPoint = stats.CDFPoint
	// Residency tracks per-state durations.
	Residency = stats.Residency
	// EnergyMeter integrates power into energy.
	EnergyMeter = stats.EnergyMeter
	// PowerSampler records fixed-interval power series.
	PowerSampler = stats.PowerSampler
)
