package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestVersionProbe(t *testing.T) {
	// cmd/go stamps the build cache from `-V=full`: the output must be
	// "<name> version <non-devel-version>".
	var out bytes.Buffer
	if code := run([]string{"-V=full"}, &out, &out); code != 0 {
		t.Fatalf("-V=full exited %d", code)
	}
	fields := strings.Fields(out.String())
	if len(fields) != 3 || fields[0] != "simlint" || fields[1] != "version" || fields[2] == "devel" {
		t.Fatalf("-V=full output %q does not satisfy the vettool protocol", out.String())
	}
}

func TestFlagsProbe(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-flags"}, &out, &out); code != 0 {
		t.Fatalf("-flags exited %d", code)
	}
	var flags []struct{ Name string }
	if err := json.Unmarshal(out.Bytes(), &flags); err != nil {
		t.Fatalf("-flags output %q is not a JSON flag list: %v", out.String(), err)
	}
}

func TestStandaloneCleanPackage(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-C", "../..", "./internal/simtime"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stdout %q, stderr %q", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean package produced output %q", out.String())
	}
}

// TestStandaloneFindings points simlint at a copy of the determinism
// fixture and checks findings surface with exit code 2, in both text
// and -json form.
func TestStandaloneFindings(t *testing.T) {
	dir := fixtureModule(t)

	var out, errb bytes.Buffer
	code := run([]string{"-C", dir, "./..."}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit %d, want 2; stderr %q", code, errb.String())
	}
	if !strings.Contains(out.String(), "[determinism]") ||
		!strings.Contains(out.String(), "time.Now in model package") {
		t.Fatalf("text output missing expected finding:\n%s", out.String())
	}

	out.Reset()
	code = run([]string{"-json", "-C", dir, "./..."}, &out, &errb)
	if code != 2 {
		t.Fatalf("-json exit %d, want 2", code)
	}
	var diags []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatal("-json reported no findings")
	}
	for _, d := range diags {
		if d.File == "" || d.Line == 0 || d.Analyzer == "" || d.Message == "" {
			t.Fatalf("incomplete JSON diagnostic: %+v", d)
		}
	}
}

func TestJSONCleanIsEmptyArray(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-json", "-C", "../..", "./internal/simtime"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb.String())
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Fatalf("clean -json output = %q, want []", got)
	}
}

func TestUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 1 {
		t.Fatalf("bad flag exited %d, want 1", code)
	}
}

// TestVetConfigMode drives the unitchecker path directly: a synthesized
// vet.cfg for the fixture package must yield stderr findings, exit 2,
// and the (empty) vetx facts file cmd/go requires.
func TestVetConfigMode(t *testing.T) {
	dir := fixtureModule(t)

	// Resolve export data for the fixture's deps the same way cmd/go
	// does, via go list.
	type listPkg struct {
		ImportPath string
		Dir        string
		Export     string
		GoFiles    []string
		DepOnly    bool
	}
	cmd := exec.Command("go", "list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly", "./internal/sched")
	cmd.Dir = dir
	outJSON, err := cmd.Output()
	if err != nil {
		t.Fatalf("go list: %v", err)
	}
	packageFile := map[string]string{}
	var target *listPkg
	dec := json.NewDecoder(bytes.NewReader(outJSON))
	for dec.More() {
		var p listPkg
		if err := dec.Decode(&p); err != nil {
			t.Fatal(err)
		}
		if p.Export != "" {
			packageFile[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			q := p
			target = &q
		}
	}
	if target == nil {
		t.Fatal("go list returned no target package")
	}

	vetx := filepath.Join(t.TempDir(), "simlint.vetx")
	cfg := map[string]any{
		"ID":          target.ImportPath,
		"Compiler":    "gc",
		"Dir":         target.Dir,
		"ImportPath":  target.ImportPath,
		"GoFiles":     absFiles(target.Dir, target.GoFiles),
		"ImportMap":   map[string]string{},
		"PackageFile": packageFile,
		"PackageVetx": map[string]string{},
		"VetxOutput":  vetx,
		"GoVersion":   "go1.22",
	}
	cfgPath := filepath.Join(t.TempDir(), "vet.cfg")
	data, _ := json.Marshal(cfg)
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}

	var out, errb bytes.Buffer
	code := run([]string{cfgPath}, &out, &errb)
	if code != 2 {
		t.Fatalf("cfg mode exit %d, want 2; stderr %q", code, errb.String())
	}
	if !strings.Contains(errb.String(), "time.Now in model package") {
		t.Fatalf("cfg-mode stderr missing finding:\n%s", errb.String())
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Fatalf("vetx facts file not written: %v", err)
	}

	// Dependency-only units skip analysis but still write facts.
	vetx2 := filepath.Join(t.TempDir(), "dep.vetx")
	cfg["VetxOnly"] = true
	cfg["VetxOutput"] = vetx2
	data, _ = json.Marshal(cfg)
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}
	errb.Reset()
	if code := run([]string{cfgPath}, &out, &errb); code != 0 {
		t.Fatalf("VetxOnly unit exit %d, want 0; stderr %q", code, errb.String())
	}
	if _, err := os.Stat(vetx2); err != nil {
		t.Fatalf("VetxOnly vetx file not written: %v", err)
	}
}

func TestVetConfigErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"/nonexistent/vet.cfg"}, &out, &errb); code != 1 {
		t.Fatalf("missing cfg exited %d, want 1", code)
	}

	bad := filepath.Join(t.TempDir(), "vet.cfg")
	if err := os.WriteFile(bad, []byte("{not json"), 0o666); err != nil {
		t.Fatal(err)
	}
	errb.Reset()
	if code := run([]string{bad}, &out, &errb); code != 1 {
		t.Fatalf("bad-JSON cfg exited %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "parsing") {
		t.Fatalf("bad-JSON stderr = %q", errb.String())
	}
}

// TestSucceedOnTypecheckFailure mirrors cmd/go's contract: when it sets
// the flag (it expects the compiler to report the same errors), a
// broken unit must exit 0; without the flag it is a hard failure.
func TestSucceedOnTypecheckFailure(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "broken.go")
	if err := os.WriteFile(src, []byte("package broken\nvar x undefinedType\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	mk := func(succeed bool) string {
		vetx := filepath.Join(t.TempDir(), "o.vetx")
		cfg := map[string]any{
			"ID":                        "holdcsim/internal/broken",
			"Compiler":                  "gc",
			"Dir":                       dir,
			"ImportPath":                "holdcsim/internal/broken",
			"GoFiles":                   []string{src},
			"PackageFile":               map[string]string{},
			"VetxOutput":                vetx,
			"SucceedOnTypecheckFailure": succeed,
		}
		path := filepath.Join(t.TempDir(), "vet.cfg")
		data, _ := json.Marshal(cfg)
		if err := os.WriteFile(path, data, 0o666); err != nil {
			t.Fatal(err)
		}
		return path
	}
	var out, errb bytes.Buffer
	if code := run([]string{mk(true)}, &out, &errb); code != 0 {
		t.Fatalf("SucceedOnTypecheckFailure unit exited %d, want 0; stderr %q", code, errb.String())
	}
	errb.Reset()
	if code := run([]string{mk(false)}, &out, &errb); code != 1 {
		t.Fatalf("failing unit exited %d, want 1; stderr %q", code, errb.String())
	}
}

// TestVetThirdPartySkipped checks the fast path: a non-first-party unit
// is not analyzed (no export data is even consulted) but still writes
// its facts file.
func TestVetThirdPartySkipped(t *testing.T) {
	vetx := filepath.Join(t.TempDir(), "fmt.vetx")
	cfg := map[string]any{
		"ID":         "fmt",
		"Compiler":   "gc",
		"ImportPath": "fmt",
		"VetxOutput": vetx,
	}
	path := filepath.Join(t.TempDir(), "vet.cfg")
	data, _ := json.Marshal(cfg)
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{path}, &out, &errb); code != 0 {
		t.Fatalf("third-party unit exited %d; stderr %q", code, errb.String())
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Fatalf("vetx not written for skipped unit: %v", err)
	}
}

// TestGoVetIntegration builds the real binary and runs it under
// `go vet -vettool` against a clean package — the full protocol round
// trip, including -V=full build-cache stamping.
func TestGoVetIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet")
	}
	bin := filepath.Join(t.TempDir(), "simlint")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building simlint: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./internal/simtime", "./internal/modelcov")
	vet.Dir = "../.."
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool failed: %v\n%s", err, out)
	}
}

// fixtureModule copies the determinism fixture into a temp module and
// returns its root.
func fixtureModule(t *testing.T) string {
	t.Helper()
	src, err := filepath.Abs("../../internal/analysis/testdata/determinism")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	err = filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(src, path)
		target := filepath.Join(dir, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o777)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o666)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "go.mod"),
		[]byte("module holdcsim\n\ngo 1.22\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	return dir
}

func absFiles(dir string, files []string) []string {
	out := make([]string, len(files))
	for i, f := range files {
		out[i] = filepath.Join(dir, f)
	}
	return out
}
