// Command simlint runs the internal/analysis static-contract suite: the
// determinism, hotpath, hookguard, handle and annotation passes that
// enforce at compile time what the test suite can only sample at run
// time (DESIGN.md Sec. 14).
//
// It runs two ways:
//
//	simlint [-json] [-C dir] [packages]     standalone, default ./...
//	go vet -vettool=$(which simlint) ./...  as a vet tool
//
// Standalone mode loads packages via `go list -export` and prints one
// finding per line (or a JSON array with -json). Vet-tool mode speaks
// the cmd/go unitchecker protocol: -V=full for the build cache, -flags
// for flag discovery, and a *.cfg compilation-unit config per package.
//
// Exit status: 0 clean, 1 usage or load failure, 2 findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"holdcsim/internal/analysis"
)

const version = "v1.0.0"

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run dispatches one CLI invocation; factored from main so tests drive
// the binary in-process.
func run(args []string, stdout, stderr io.Writer) int {
	// cmd/go protocol entry points come before normal flag parsing: it
	// probes `-V=full` to stamp the build cache and `-flags` to discover
	// tool flags, then invokes `simlint <vetflags> <objdir>/vet.cfg`.
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" {
			fmt.Fprintf(stdout, "simlint version %s\n", version)
			return 0
		}
		if a == "-flags" || a == "--flags" {
			fmt.Fprintln(stdout, "[]")
			return 0
		}
	}
	if n := len(args); n > 0 && strings.HasSuffix(args[n-1], ".cfg") {
		return runVet(args[n-1], stderr)
	}

	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	dir := fs.String("C", ".", "change to `dir` before loading packages")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: simlint [-json] [-C dir] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(*dir, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "simlint: %v\n", err)
		return 1
	}
	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, analysis.RunSuite(pkg)...)
	}
	if *jsonOut {
		if err := writeJSON(stdout, diags); err != nil {
			fmt.Fprintf(stderr, "simlint: %v\n", err)
			return 1
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// jsonDiagnostic is the -json wire shape: stable field names decoupled
// from the internal Diagnostic struct.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func writeJSON(w io.Writer, diags []analysis.Diagnostic) error {
	out := make([]jsonDiagnostic, len(diags))
	for i, d := range diags {
		out[i] = jsonDiagnostic{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// runVet handles one `go vet -vettool` compilation unit.
func runVet(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "simlint: %v\n", err)
		return 1
	}
	var cfg analysis.VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "simlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// cmd/go requires the vetx facts file to exist even when empty; the
	// suite keeps no cross-package facts, so it is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(stderr, "simlint: %v\n", err)
			return 1
		}
	}
	// Dependency-only invocations and third-party packages need no
	// analysis: every simlint contract is scoped to this module.
	if cfg.VetxOnly || !analysis.FirstParty(cfg.ImportPath) {
		return 0
	}
	pkg, err := analysis.LoadVetPackage(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "simlint: %v\n", err)
		return 1
	}
	diags := analysis.RunSuite(pkg)
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
