// Command holdcsim runs a single data center simulation described by a
// JSON config file (or flags) and prints the collected statistics —
// the simulator's general-purpose front end (paper Fig. 1: workload
// model + server profile + switch profile in, runtime statistics out).
//
// Usage:
//
//	holdcsim -config sim.json
//	holdcsim -servers 50 -cores 4 -rho 0.3 -service 5ms -policy packfirst -tau 1s -duration 60s
//
// Example config:
//
//	{
//	  "seed": 7,
//	  "servers": 50,
//	  "profile": "4core",
//	  "queueMode": "unified",
//	  "placer": "packfirst",
//	  "delayTimerSec": 1.0,
//	  "topology": {"kind": "fattree", "k": 4},
//	  "commMode": "flow",
//	  "workload": {"arrivals": "poisson", "rho": 0.3, "serviceSec": 0.005},
//	  "durationSec": 60
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"holdcsim/internal/core"
	"holdcsim/internal/dist"
	"holdcsim/internal/network"
	"holdcsim/internal/power"
	"holdcsim/internal/sched"
	"holdcsim/internal/server"
	"holdcsim/internal/simtime"
	"holdcsim/internal/topology"
	"holdcsim/internal/workload"
)

// fileConfig is the JSON schema of -config.
type fileConfig struct {
	Seed          uint64      `json:"seed"`
	Servers       int         `json:"servers"`
	Profile       string      `json:"profile"`   // "xeon" | "4core"
	QueueMode     string      `json:"queueMode"` // "unified" | "percore"
	Placer        string      `json:"placer"`    // "leastloaded" | "roundrobin" | "packfirst"
	GlobalQueue   bool        `json:"globalQueue"`
	DelayTimerSec float64     `json:"delayTimerSec"` // <0 disables
	Topology      *topoConfig `json:"topology"`
	CommMode      string      `json:"commMode"` // "", "flow", "packet"
	Workload      workConfig  `json:"workload"`
	DurationSec   float64     `json:"durationSec"`
	MaxJobs       int64       `json:"maxJobs"`
	WarmupSec     float64     `json:"warmupSec"`
}

type topoConfig struct {
	Kind  string `json:"kind"` // fattree|star|bcube|camcube|flatbutterfly
	K     int    `json:"k"`
	N     int    `json:"n"`
	Hosts int    `json:"hosts"`
	X     int    `json:"x"`
	Y     int    `json:"y"`
	Z     int    `json:"z"`
	Rows  int    `json:"rows"`
	Cols  int    `json:"cols"`
	Conc  int    `json:"c"`
}

type workConfig struct {
	Arrivals   string  `json:"arrivals"` // poisson|mmpp
	Rho        float64 `json:"rho"`
	RatePerSec float64 `json:"ratePerSec"` // overrides rho if > 0
	ServiceSec float64 `json:"serviceSec"`
	// MMPP knobs.
	BurstRatio    float64 `json:"burstRatio"`    // λh/λl
	BurstFraction float64 `json:"burstFraction"` // time share in burst
}

func main() {
	configPath := flag.String("config", "", "JSON config file")
	servers := flag.Int("servers", 16, "server count")
	cores := flag.Int("cores", 4, "cores per server (selects profile: 4=4core, 10=xeon)")
	rho := flag.Float64("rho", 0.3, "target utilization")
	service := flag.Duration("service", 5*time.Millisecond, "mean service time")
	policy := flag.String("policy", "leastloaded", "leastloaded|roundrobin|packfirst")
	tau := flag.Duration("tau", -1, "delay timer (negative disables)")
	duration := flag.Duration("duration", 30*time.Second, "simulated duration")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	var fc fileConfig
	if *configPath != "" {
		raw, err := os.ReadFile(*configPath)
		if err != nil {
			fatal(err)
		}
		if err := json.Unmarshal(raw, &fc); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", *configPath, err))
		}
	} else {
		fc = fileConfig{
			Seed:          *seed,
			Servers:       *servers,
			Profile:       map[bool]string{true: "xeon", false: "4core"}[*cores == 10],
			Placer:        *policy,
			DelayTimerSec: tau.Seconds(),
			Workload: workConfig{
				Arrivals:   "poisson",
				Rho:        *rho,
				ServiceSec: service.Seconds(),
			},
			DurationSec: duration.Seconds(),
		}
	}
	cfg, err := assemble(fc)
	if err != nil {
		fatal(err)
	}
	dc, err := core.Build(cfg)
	if err != nil {
		fatal(err)
	}
	start := time.Now() //simlint:allow determinism wall-clock run timing for the CLI banner, not model state
	res, err := dc.Run()
	if err != nil {
		fatal(err)
	}
	report(res, time.Since(start)) //simlint:allow determinism wall-clock run timing for the CLI banner, not model state
}

func assemble(fc fileConfig) (core.Config, error) {
	var prof *power.ServerProfile
	switch fc.Profile {
	case "", "4core":
		prof = power.FourCoreServer()
	case "xeon":
		prof = power.XeonE5_2680()
	default:
		return core.Config{}, fmt.Errorf("unknown profile %q", fc.Profile)
	}
	sc := server.DefaultConfig(prof)
	if fc.QueueMode == "percore" {
		sc.QueueMode = server.QueuePerCore
	}
	if fc.DelayTimerSec >= 0 {
		sc.DelayTimerEnabled = true
		sc.DelayTimer = simtime.FromSeconds(fc.DelayTimerSec)
	}

	var placer sched.Placer
	switch fc.Placer {
	case "", "leastloaded":
		placer = sched.LeastLoaded{}
	case "roundrobin":
		placer = sched.RoundRobin{}
	case "packfirst":
		placer = sched.PackFirst{}
	default:
		return core.Config{}, fmt.Errorf("unknown placer %q", fc.Placer)
	}

	if fc.Workload.ServiceSec <= 0 {
		return core.Config{}, fmt.Errorf("workload.serviceSec must be positive")
	}
	rate := fc.Workload.RatePerSec
	if rate <= 0 {
		rate = workload.UtilizationRate(fc.Workload.Rho, fc.Servers, prof.Cores, fc.Workload.ServiceSec)
	}
	var arrivals workload.ArrivalProcess
	switch fc.Workload.Arrivals {
	case "", "poisson":
		arrivals = workload.Poisson{Rate: rate}
	case "mmpp":
		ratio := fc.Workload.BurstRatio
		if ratio <= 1 {
			ratio = 10
		}
		frac := fc.Workload.BurstFraction
		if frac <= 0 || frac >= 1 {
			frac = 0.1
		}
		// Solve λh, λl for the requested mean rate.
		lambdaL := rate / (frac*ratio + (1 - frac))
		m, err := dist.NewMMPP2(lambdaL*ratio, lambdaL, frac*10, (1-frac)*10)
		if err != nil {
			return core.Config{}, err
		}
		arrivals = workload.MMPP{Proc: m}
	default:
		return core.Config{}, fmt.Errorf("unknown arrivals %q", fc.Workload.Arrivals)
	}

	cfg := core.Config{
		Seed:           fc.Seed,
		Servers:        fc.Servers,
		ServerConfig:   sc,
		Placer:         placer,
		UseGlobalQueue: fc.GlobalQueue,
		Arrivals:       arrivals,
		Factory:        workload.SingleTask{Service: dist.Exponential{MeanValue: fc.Workload.ServiceSec}},
		Duration:       simtime.FromSeconds(fc.DurationSec),
		MaxJobs:        fc.MaxJobs,
		Warmup:         simtime.FromSeconds(fc.WarmupSec),
	}
	if fc.Topology != nil {
		t, ports, err := buildTopo(*fc.Topology)
		if err != nil {
			return core.Config{}, err
		}
		cfg.Topology = t
		cfg.NetworkConfig = network.DefaultConfig(power.DataCenter10G(ports))
		switch fc.CommMode {
		case "flow":
			cfg.CommMode = core.CommFlow
		case "packet":
			cfg.CommMode = core.CommPacket
		case "":
			cfg.CommMode = core.CommNone
		default:
			return core.Config{}, fmt.Errorf("unknown commMode %q", fc.CommMode)
		}
	}
	return cfg, nil
}

func buildTopo(tc topoConfig) (topology.Topology, int, error) {
	switch tc.Kind {
	case "fattree":
		k := tc.K
		if k == 0 {
			k = 4
		}
		return topology.FatTree{K: k}, k + 2, nil
	case "star":
		h := tc.Hosts
		if h == 0 {
			h = 24
		}
		return topology.Star{Hosts: h}, h + 1, nil
	case "bcube":
		return topology.BCube{N: tc.N, K: tc.K}, tc.N + 1, nil
	case "camcube":
		return topology.CamCube{X: tc.X, Y: tc.Y, Z: tc.Z}, 8, nil
	case "flatbutterfly":
		f := topology.FlattenedButterfly{Rows: tc.Rows, Cols: tc.Cols, Concentration: tc.Conc}
		return f, tc.Conc + tc.Rows + tc.Cols, nil
	}
	return nil, 0, fmt.Errorf("unknown topology %q", tc.Kind)
}

func report(res *core.Results, wall time.Duration) {
	fmt.Printf("simulated %.3f s in %v wall\n", res.End.Seconds(), wall.Round(time.Millisecond))
	fmt.Printf("jobs: generated %d, completed %d\n", res.JobsGenerated, res.JobsCompleted)
	if res.Latency.Count() > 0 {
		fmt.Printf("latency: mean %.3f ms  p50 %.3f ms  p90 %.3f ms  p95 %.3f ms  p99 %.3f ms  max %.3f ms\n",
			res.Latency.Mean()*1e3, res.Latency.Percentile(50)*1e3,
			res.Latency.Percentile(90)*1e3, res.Latency.Percentile(95)*1e3,
			res.Latency.Percentile(99)*1e3, res.Latency.Max()*1e3)
	}
	fmt.Printf("server energy: %.1f kJ (cpu %.1f + dram %.1f + platform %.1f), mean power %.1f W\n",
		res.ServerEnergyJ/1e3, res.CPUEnergyJ/1e3, res.DRAMEnergyJ/1e3,
		res.PlatformEnergyJ/1e3, res.MeanServerPowerW)
	if res.NetworkEnergyJ > 0 {
		fmt.Printf("network energy: %.1f kJ, mean power %.1f W\n",
			res.NetworkEnergyJ/1e3, res.MeanNetworkPowerW)
		fmt.Printf("network: %d flows, %d packets delivered, %d dropped\n",
			res.NetStats.FlowsCompleted, res.NetStats.PacketsDelivered, res.NetStats.PacketsDropped)
	}
	states := make([]string, 0, len(res.Residency))
	for s := range res.Residency {
		states = append(states, s)
	}
	sort.Strings(states)
	fmt.Printf("residency:")
	for _, s := range states {
		fmt.Printf(" %s=%.1f%%", s, res.Residency[s]*100)
	}
	fmt.Println()
	fmt.Printf("wakeups: %d server, %d switch\n", res.ServerWakeups, res.SwitchWakeups)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "holdcsim:", err)
	os.Exit(1)
}
