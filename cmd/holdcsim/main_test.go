package main

import (
	"testing"

	"holdcsim/internal/core"
	"holdcsim/internal/server"
)

func TestAssembleDefaults(t *testing.T) {
	fc := fileConfig{
		Seed:          1,
		Servers:       8,
		DelayTimerSec: -1,
		Workload:      workConfig{Rho: 0.3, ServiceSec: 0.005},
		DurationSec:   10,
	}
	cfg, err := assemble(fc)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Servers != 8 || cfg.ServerConfig.Profile.Cores != 4 {
		t.Errorf("servers=%d cores=%d", cfg.Servers, cfg.ServerConfig.Profile.Cores)
	}
	if cfg.ServerConfig.DelayTimerEnabled {
		t.Error("negative delayTimerSec should disable the timer")
	}
	if _, err := core.Build(cfg); err != nil {
		t.Fatalf("assembled config does not build: %v", err)
	}
}

func TestAssembleXeonAndPerCore(t *testing.T) {
	fc := fileConfig{
		Servers:       2,
		Profile:       "xeon",
		QueueMode:     "percore",
		DelayTimerSec: 1.5,
		Placer:        "packfirst",
		Workload:      workConfig{Rho: 0.2, ServiceSec: 0.01},
		DurationSec:   5,
	}
	cfg, err := assemble(fc)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ServerConfig.Profile.Cores != 10 {
		t.Errorf("cores = %d, want 10", cfg.ServerConfig.Profile.Cores)
	}
	if cfg.ServerConfig.QueueMode != server.QueuePerCore {
		t.Error("queue mode not per-core")
	}
	if !cfg.ServerConfig.DelayTimerEnabled {
		t.Error("delay timer not enabled")
	}
}

func TestAssembleMMPP(t *testing.T) {
	fc := fileConfig{
		Servers: 4,
		Workload: workConfig{
			Arrivals: "mmpp", Rho: 0.3, ServiceSec: 0.005,
			BurstRatio: 20, BurstFraction: 0.1,
		},
		DelayTimerSec: -1,
		DurationSec:   5,
	}
	cfg, err := assemble(fc)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Arrivals == nil {
		t.Fatal("no arrivals")
	}
	if _, err := core.Build(cfg); err != nil {
		t.Fatalf("assembled MMPP config does not build: %v", err)
	}
}

func TestAssembleTopologyAndComm(t *testing.T) {
	fc := fileConfig{
		Servers:       16,
		DelayTimerSec: -1,
		Topology:      &topoConfig{Kind: "fattree", K: 4},
		CommMode:      "flow",
		Workload:      workConfig{Rho: 0.2, ServiceSec: 0.005},
		DurationSec:   5,
	}
	cfg, err := assemble(fc)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Topology == nil || cfg.CommMode != core.CommFlow {
		t.Error("topology/comm not assembled")
	}
	if _, err := core.Build(cfg); err != nil {
		t.Fatalf("assembled networked config does not build: %v", err)
	}
}

func TestAssembleRejects(t *testing.T) {
	bad := []fileConfig{
		{Servers: 2, Profile: "vax", DelayTimerSec: -1,
			Workload: workConfig{Rho: 0.1, ServiceSec: 0.01}, DurationSec: 1},
		{Servers: 2, Placer: "oracle", DelayTimerSec: -1,
			Workload: workConfig{Rho: 0.1, ServiceSec: 0.01}, DurationSec: 1},
		{Servers: 2, DelayTimerSec: -1,
			Workload: workConfig{Rho: 0.1, ServiceSec: 0}, DurationSec: 1},
		{Servers: 2, DelayTimerSec: -1,
			Workload: workConfig{Arrivals: "fractal", Rho: 0.1, ServiceSec: 0.01}, DurationSec: 1},
		{Servers: 2, DelayTimerSec: -1, Topology: &topoConfig{Kind: "moebius"},
			Workload: workConfig{Rho: 0.1, ServiceSec: 0.01}, DurationSec: 1},
		{Servers: 2, DelayTimerSec: -1, Topology: &topoConfig{Kind: "star"}, CommMode: "telepathy",
			Workload: workConfig{Rho: 0.1, ServiceSec: 0.01}, DurationSec: 1},
	}
	for i, fc := range bad {
		if _, err := assemble(fc); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
}

func TestBuildTopoKinds(t *testing.T) {
	kinds := []topoConfig{
		{Kind: "fattree", K: 4},
		{Kind: "star", Hosts: 8},
		{Kind: "bcube", N: 2, K: 1},
		{Kind: "camcube", X: 2, Y: 2, Z: 2},
		{Kind: "flatbutterfly", Rows: 2, Cols: 2, Conc: 1},
	}
	for _, tc := range kinds {
		topo, ports, err := buildTopo(tc)
		if err != nil {
			t.Errorf("%s: %v", tc.Kind, err)
			continue
		}
		if topo == nil || ports <= 0 {
			t.Errorf("%s: topo=%v ports=%d", tc.Kind, topo, ports)
		}
		if _, err := topo.Build(); err != nil {
			t.Errorf("%s build: %v", tc.Kind, err)
		}
	}
}
