// Command tracegen emits synthetic workload traces (one arrival
// timestamp per line, seconds) on stdout — the stand-ins for the
// Wikipedia [59] and NLANR [2] traces used by the paper (see DESIGN.md's
// substitution table). Generated files replay through `cmd/holdcsim` or
// the library's TraceReplay.
//
// Usage:
//
//	tracegen -kind wikipedia -duration 3600 -rate 100 -seed 7 > wiki.trace
//	tracegen -kind nlanr -duration 1000 -seed 9 > nlanr.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"holdcsim/internal/rng"
	"holdcsim/internal/trace"
)

func main() {
	kind := flag.String("kind", "wikipedia", "wikipedia|nlanr")
	duration := flag.Float64("duration", 3600, "trace length in seconds")
	rate := flag.Float64("rate", 100, "mean arrivals/second (wikipedia)")
	onRate := flag.Float64("onrate", 40, "burst arrival rate (nlanr)")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	r := rng.New(*seed)
	var tr *trace.Trace
	switch *kind {
	case "wikipedia":
		tr = trace.SyntheticWikipedia(trace.DefaultWikipediaConfig(*duration, *rate), r)
	case "nlanr":
		cfg := trace.DefaultNLANRConfig(*duration)
		cfg.OnRate = *onRate
		tr = trace.SyntheticNLANR(cfg, r)
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d arrivals over %.0f s (mean %.2f/s)\n",
		tr.Len(), tr.Duration(), tr.MeanRate())
	if err := tr.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}
