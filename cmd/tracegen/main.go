// Command tracegen emits synthetic workload traces (one arrival
// timestamp per line, seconds) on stdout — the stand-ins for the
// Wikipedia [59] and NLANR [2] traces used by the paper (see DESIGN.md's
// substitution table). Generated files replay through `cmd/holdcsim` or
// the library's TraceReplay.
//
// Usage:
//
//	tracegen -kind wikipedia -duration 3600 -rate 100 -seed 7 > wiki.trace
//	tracegen -kind nlanr -duration 1000 -seed 9 > nlanr.trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"holdcsim/internal/rng"
	"holdcsim/internal/trace"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run executes one CLI invocation; factored from main so tests drive
// the binary in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	kind := fs.String("kind", "wikipedia", "wikipedia|nlanr")
	duration := fs.Float64("duration", 3600, "trace length in seconds")
	rate := fs.Float64("rate", 100, "mean arrivals/second (wikipedia)")
	onRate := fs.Float64("onrate", 40, "burst arrival rate (nlanr)")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	r := rng.New(*seed)
	var tr *trace.Trace
	switch *kind {
	case "wikipedia":
		tr = trace.SyntheticWikipedia(trace.DefaultWikipediaConfig(*duration, *rate), r)
	case "nlanr":
		cfg := trace.DefaultNLANRConfig(*duration)
		cfg.OnRate = *onRate
		tr = trace.SyntheticNLANR(cfg, r)
	default:
		fmt.Fprintf(stderr, "tracegen: unknown kind %q\n", *kind)
		return 2
	}
	fmt.Fprintf(stderr, "tracegen: %d arrivals over %.0f s (mean %.2f/s)\n",
		tr.Len(), tr.Duration(), tr.MeanRate())
	if err := tr.Write(stdout); err != nil {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 1
	}
	return 0
}
