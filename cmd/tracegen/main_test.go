package main

import (
	"strconv"
	"strings"
	"testing"
)

func TestRunEmitsParsableTrace(t *testing.T) {
	for _, kind := range []string{"wikipedia", "nlanr"} {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			var stdout, stderr strings.Builder
			code := run([]string{"-kind", kind, "-duration", "20", "-rate", "10", "-seed", "3"},
				&stdout, &stderr)
			if code != 0 {
				t.Fatalf("exit %d, stderr: %s", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), "arrivals over") {
				t.Fatalf("summary missing on stderr: %s", stderr.String())
			}
			lines := strings.Fields(stdout.String())
			if len(lines) == 0 {
				t.Fatal("empty trace")
			}
			prev := -1.0
			for i, ln := range lines {
				ts, err := strconv.ParseFloat(ln, 64)
				if err != nil {
					t.Fatalf("line %d %q is not a timestamp: %v", i, ln, err)
				}
				if ts < prev {
					t.Fatalf("timestamps not monotonic at line %d: %g after %g", i, ts, prev)
				}
				prev = ts
			}
		})
	}
}

func TestRunSeedDeterminism(t *testing.T) {
	gen := func() string {
		var stdout, stderr strings.Builder
		if code := run([]string{"-kind", "wikipedia", "-duration", "10", "-seed", "11"},
			&stdout, &stderr); code != 0 {
			t.Fatalf("exit %d: %s", code, stderr.String())
		}
		return stdout.String()
	}
	if gen() != gen() {
		t.Fatal("same seed produced different traces")
	}
}

func TestRunRejectsUnknownKind(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-kind", "pareto"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d for unknown kind, want 2", code)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d for unknown flag, want 2", code)
	}
}
