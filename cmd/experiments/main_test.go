package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunEveryExperimentQuick sweeps all paper experiments in -quick
// mode: each must exit 0 and print its banner. This is the smoke net
// for the experiment runners themselves — the numeric results are
// pinned by the golden tests in internal/experiments.
func TestRunEveryExperimentQuick(t *testing.T) {
	for _, exp := range []string{"table1", "fig4", "fig5", "fig6", "fig8",
		"fig9", "fig11", "fig12", "fig13"} {
		exp := exp
		t.Run(exp, func(t *testing.T) {
			t.Parallel()
			var stdout, stderr strings.Builder
			code := run([]string{"-exp", exp, "-quick"}, &stdout, &stderr)
			if code != 0 {
				t.Fatalf("exit %d, stderr: %s", code, stderr.String())
			}
			if !strings.Contains(stdout.String(), "==== "+exp+" ====") {
				t.Fatalf("banner missing:\n%s", stdout.String())
			}
		})
	}
}

func TestRunSingleExperimentQuick(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-exp", "table1", "-quick"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	got := stdout.String()
	if !strings.Contains(got, "==== table1 ====") || !strings.Contains(got, "capability") {
		t.Fatalf("table1 output missing:\n%s", got)
	}
}

func TestRunWritesTSV(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr strings.Builder
	code := run([]string{"-exp", "fig5", "-quick", "-workers", "2", "-out", dir}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig5.tsv"))
	if err != nil {
		t.Fatalf("fig5.tsv not written: %v", err)
	}
	if !strings.Contains(string(data), "\t") {
		t.Fatalf("fig5.tsv is not TSV:\n%s", data)
	}
	if !strings.Contains(stdout.String(), "optimal tau") {
		t.Fatalf("fig5 summary missing:\n%s", stdout.String())
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-exp", "fig99"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown experiment: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown experiment") {
		t.Fatalf("stderr: %s", stderr.String())
	}
	if code := run([]string{"-badflag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}
