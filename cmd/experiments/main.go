// Command experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md for the experiment index).
//
// Campaigns fan their sweep points out over a worker pool; output is
// bit-identical at any worker count (the runner's determinism contract),
// so -workers only changes wall-clock. -reps expands every simulation
// into N seed replications and adds mean/stddev/CI columns to the sweep
// series.
//
// Usage:
//
//	experiments -exp all              # run everything at paper scale
//	experiments -exp fig5 -quick      # one experiment, reduced scale
//	experiments -exp fig11 -out dir   # also write TSV series files
//	experiments -exp fig5 -workers 1  # serial execution (same bytes)
//	experiments -exp fig5 -reps 5     # 5 replications with error bars
//	experiments -exp all -quick -check # verify conservation laws per run
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"holdcsim/internal/experiments"
	"holdcsim/internal/runner"
)

// cliOpts carries the shared flags into each experiment runner.
type cliOpts struct {
	quick bool
	out   string
	check bool
	exec  runner.Options
	w     io.Writer
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run executes one CLI invocation; factored from main so tests drive
// the binary in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all", "experiment: all|table1|fig4|fig5|fig6|fig8|fig9|fig11|fig12|fig13")
	quick := fs.Bool("quick", false, "use reduced-scale presets")
	out := fs.String("out", "", "directory to write TSV series (optional)")
	workers := fs.Int("workers", 0, "campaign worker pool size (0 = GOMAXPROCS)")
	reps := fs.Int("reps", 1, "replications per simulation (adds mean/stddev/CI columns)")
	check := fs.Bool("check", false, "verify runtime invariants (conservation laws) in every simulation")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	runners := map[string]func(cliOpts) error{
		"table1": runTableI,
		"fig4":   runFig4,
		"fig5":   runFig5,
		"fig6":   runFig6,
		"fig8":   runFig8,
		"fig9":   runFig9,
		"fig11":  runFig11,
		"fig12":  runFig12,
		"fig13":  runFig13,
	}
	names := make([]string, 0, len(runners))
	for n := range runners {
		names = append(names, n)
	}
	sort.Strings(names)

	targets := names
	if *exp != "all" {
		if _, ok := runners[*exp]; !ok {
			fmt.Fprintf(stderr, "unknown experiment %q (have: %s, all)\n",
				*exp, strings.Join(names, ", "))
			return 2
		}
		targets = []string{*exp}
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(stderr, "experiments:", err)
			return 1
		}
	}
	opts := cliOpts{
		quick: *quick,
		out:   *out,
		check: *check,
		exec:  runner.Options{Workers: *workers, Reps: *reps},
		w:     stdout,
	}
	for _, name := range targets {
		fmt.Fprintf(stdout, "==== %s ====\n", name)
		if err := runners[name](opts); err != nil {
			fmt.Fprintf(stderr, "experiments: %s: %v\n", name, err)
			return 1
		}
		fmt.Fprintln(stdout)
	}
	return 0
}

func emit(w io.Writer, out, name string, table fmt.Stringer) error {
	if out == "" {
		fmt.Fprintln(w, table)
		return nil
	}
	path := filepath.Join(out, name+".tsv")
	if err := os.WriteFile(path, []byte(table.String()), 0o644); err != nil {
		return err
	}
	fmt.Fprintln(w, "wrote", path)
	return nil
}

func runTableI(o cliOpts) error {
	p := experiments.DefaultTableI()
	if o.quick {
		p = experiments.QuickTableI()
	}
	p.Exec = o.exec
	p.Check = o.check
	r, err := experiments.TableI(p)
	if err != nil {
		return err
	}
	if err := emit(o.w, o.out, "table1", r.Features); err != nil {
		return err
	}
	fmt.Fprintln(o.w, r.Summary())
	return nil
}

func runFig4(o cliOpts) error {
	p := experiments.DefaultFig4()
	if o.quick {
		p = experiments.QuickFig4()
	}
	p.Exec = o.exec
	p.Check = o.check
	r, err := experiments.Fig4(p)
	if err != nil {
		return err
	}
	if err := emit(o.w, o.out, "fig4", r.Series); err != nil {
		return err
	}
	fmt.Fprintln(o.w, r.Summary())
	return nil
}

func runFig5(o cliOpts) error {
	p := experiments.DefaultFig5()
	if o.quick {
		p = experiments.QuickFig5()
	}
	p.Exec = o.exec
	p.Check = o.check
	r, err := experiments.Fig5(p)
	if err != nil {
		return err
	}
	if err := emit(o.w, o.out, "fig5", r.Series); err != nil {
		return err
	}
	keys := make([]string, 0, len(r.OptimalTau))
	for k := range r.OptimalTau {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(o.w, "optimal tau %-18s = %.2g s\n", k, r.OptimalTau[k])
	}
	return nil
}

func runFig6(o cliOpts) error {
	p := experiments.DefaultFig6()
	if o.quick {
		p = experiments.QuickFig6()
	}
	p.Exec = o.exec
	p.Check = o.check
	r, err := experiments.Fig6(p)
	if err != nil {
		return err
	}
	if err := emit(o.w, o.out, "fig6", r.Series); err != nil {
		return err
	}
	for _, pt := range r.Points {
		fmt.Fprintf(o.w, "%-7s servers=%-3d rho=%.1f: dual saves %5.1f%% vs Active-Idle, %5.1f%% vs single timer\n",
			pt.Workload, pt.Servers, pt.Rho, pt.ReductionPct, pt.VsSinglePct)
	}
	return nil
}

func runFig8(o cliOpts) error {
	p := experiments.DefaultFig8()
	if o.quick {
		p = experiments.QuickFig8()
	}
	p.Exec = o.exec
	p.Check = o.check
	r, err := experiments.Fig8(p)
	if err != nil {
		return err
	}
	return emit(o.w, o.out, "fig8", r.Series)
}

func runFig9(o cliOpts) error {
	p := experiments.DefaultFig9()
	if o.quick {
		p = experiments.QuickFig9()
	}
	p.Exec = o.exec
	p.Check = o.check
	r, err := experiments.Fig9(p)
	if err != nil {
		return err
	}
	if err := emit(o.w, o.out, "fig9", r.Series); err != nil {
		return err
	}
	fmt.Fprintf(o.w, "delay-timer total %.1f kJ, workload-adaptive total %.1f kJ: %.1f%% saving\n",
		r.TimerTotalJ/1e3, r.AdaptiveTotalJ/1e3, r.SavingPct)
	return nil
}

func runFig11(o cliOpts) error {
	p := experiments.DefaultFig11()
	if o.quick {
		p = experiments.QuickFig11()
	}
	p.Exec = o.exec
	p.Check = o.check
	r, err := experiments.Fig11(p)
	if err != nil {
		return err
	}
	if err := emit(o.w, o.out, "fig11a", r.Series); err != nil {
		return err
	}
	rhos := make([]float64, 0, len(r.ServerSavingPct))
	for rho := range r.ServerSavingPct {
		rhos = append(rhos, rho)
	}
	sort.Float64s(rhos)
	for _, rho := range rhos {
		fmt.Fprintf(o.w, "rho=%.0f%%: server power saving %.1f%%, network power saving %.1f%%\n",
			rho*100, r.ServerSavingPct[rho], r.NetworkSavingPct[rho])
	}
	return emit(o.w, o.out, "fig11b", r.CDFTable())
}

func runFig12(o cliOpts) error {
	p := experiments.DefaultFig12()
	if o.quick {
		p = experiments.QuickFig12()
	}
	p.Exec = o.exec
	p.Check = o.check
	r, err := experiments.Fig12(p)
	if err != nil {
		return err
	}
	if o.out != "" {
		if err := emit(o.w, o.out, "fig12", r.Series); err != nil {
			return err
		}
	}
	fmt.Fprintln(o.w, r.Summary())
	return nil
}

func runFig13(o cliOpts) error {
	p := experiments.DefaultFig13()
	if o.quick {
		p = experiments.QuickFig13()
	}
	p.Exec = o.exec
	p.Check = o.check
	r, err := experiments.Fig13(p)
	if err != nil {
		return err
	}
	if o.out != "" {
		if err := emit(o.w, o.out, "fig13", r.Series); err != nil {
			return err
		}
		// Fig. 14's two representative 20-minute segments.
		if err := emit(o.w, o.out, "fig14a", r.Segment(
			"Fig. 14a: switch power trace, segment 1 (80-100 min)", 80*60, 100*60)); err != nil {
			return err
		}
		if err := emit(o.w, o.out, "fig14b", r.Segment(
			"Fig. 14b: switch power trace, segment 2 (40-60 min)", 40*60, 60*60)); err != nil {
			return err
		}
	}
	fmt.Fprintln(o.w, r.Summary())
	return nil
}
