// Command experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md for the experiment index).
//
// Usage:
//
//	experiments -exp all            # run everything at paper scale
//	experiments -exp fig5 -quick    # one experiment, reduced scale
//	experiments -exp fig11 -out dir # also write TSV series files
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"holdcsim/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all|table1|fig4|fig5|fig6|fig8|fig9|fig11|fig12|fig13")
	quick := flag.Bool("quick", false, "use reduced-scale presets")
	out := flag.String("out", "", "directory to write TSV series (optional)")
	flag.Parse()

	runners := map[string]func(bool, string) error{
		"table1": runTableI,
		"fig4":   runFig4,
		"fig5":   runFig5,
		"fig6":   runFig6,
		"fig8":   runFig8,
		"fig9":   runFig9,
		"fig11":  runFig11,
		"fig12":  runFig12,
		"fig13":  runFig13,
	}
	names := make([]string, 0, len(runners))
	for n := range runners {
		names = append(names, n)
	}
	sort.Strings(names)

	targets := names
	if *exp != "all" {
		if _, ok := runners[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (have: %s, all)\n",
				*exp, strings.Join(names, ", "))
			os.Exit(2)
		}
		targets = []string{*exp}
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
	}
	for _, name := range targets {
		fmt.Printf("==== %s ====\n", name)
		if err := runners[name](*quick, *out); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

func emit(out, name string, table fmt.Stringer) error {
	if out == "" {
		fmt.Println(table)
		return nil
	}
	path := filepath.Join(out, name+".tsv")
	if err := os.WriteFile(path, []byte(table.String()), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}

func runTableI(quick bool, out string) error {
	p := experiments.DefaultTableI()
	if quick {
		p = experiments.QuickTableI()
	}
	r, err := experiments.TableI(p)
	if err != nil {
		return err
	}
	if err := emit(out, "table1", r.Features); err != nil {
		return err
	}
	fmt.Println(r.Summary())
	return nil
}

func runFig4(quick bool, out string) error {
	p := experiments.DefaultFig4()
	if quick {
		p = experiments.QuickFig4()
	}
	r, err := experiments.Fig4(p)
	if err != nil {
		return err
	}
	if err := emit(out, "fig4", r.Series); err != nil {
		return err
	}
	fmt.Println(r.Summary())
	return nil
}

func runFig5(quick bool, out string) error {
	p := experiments.DefaultFig5()
	if quick {
		p = experiments.QuickFig5()
	}
	r, err := experiments.Fig5(p)
	if err != nil {
		return err
	}
	if err := emit(out, "fig5", r.Series); err != nil {
		return err
	}
	keys := make([]string, 0, len(r.OptimalTau))
	for k := range r.OptimalTau {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("optimal tau %-18s = %.2g s\n", k, r.OptimalTau[k])
	}
	return nil
}

func runFig6(quick bool, out string) error {
	p := experiments.DefaultFig6()
	if quick {
		p = experiments.QuickFig6()
	}
	r, err := experiments.Fig6(p)
	if err != nil {
		return err
	}
	if err := emit(out, "fig6", r.Series); err != nil {
		return err
	}
	for _, pt := range r.Points {
		fmt.Printf("%-7s servers=%-3d rho=%.1f: dual saves %5.1f%% vs Active-Idle, %5.1f%% vs single timer\n",
			pt.Workload, pt.Servers, pt.Rho, pt.ReductionPct, pt.VsSinglePct)
	}
	return nil
}

func runFig8(quick bool, out string) error {
	p := experiments.DefaultFig8()
	if quick {
		p = experiments.QuickFig8()
	}
	r, err := experiments.Fig8(p)
	if err != nil {
		return err
	}
	return emit(out, "fig8", r.Series)
}

func runFig9(quick bool, out string) error {
	p := experiments.DefaultFig9()
	if quick {
		p = experiments.QuickFig9()
	}
	r, err := experiments.Fig9(p)
	if err != nil {
		return err
	}
	if err := emit(out, "fig9", r.Series); err != nil {
		return err
	}
	fmt.Printf("delay-timer total %.1f kJ, workload-adaptive total %.1f kJ: %.1f%% saving\n",
		r.TimerTotalJ/1e3, r.AdaptiveTotalJ/1e3, r.SavingPct)
	return nil
}

func runFig11(quick bool, out string) error {
	p := experiments.DefaultFig11()
	if quick {
		p = experiments.QuickFig11()
	}
	r, err := experiments.Fig11(p)
	if err != nil {
		return err
	}
	if err := emit(out, "fig11a", r.Series); err != nil {
		return err
	}
	rhos := make([]float64, 0, len(r.ServerSavingPct))
	for rho := range r.ServerSavingPct {
		rhos = append(rhos, rho)
	}
	sort.Float64s(rhos)
	for _, rho := range rhos {
		fmt.Printf("rho=%.0f%%: server power saving %.1f%%, network power saving %.1f%%\n",
			rho*100, r.ServerSavingPct[rho], r.NetworkSavingPct[rho])
	}
	// Fig. 11b: latency CDFs.
	cdf := &experiments.Table{
		Title:  "Fig. 11b: job response time CDF",
		Header: []string{"policy_rho", "latency_s", "F"},
	}
	keys := make([]string, 0, len(r.CDFs))
	for k := range r.CDFs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, pt := range r.CDFs[k] {
			cdf.Addf(k, pt.X, pt.F)
		}
	}
	return emit(out, "fig11b", cdf)
}

func runFig12(quick bool, out string) error {
	p := experiments.DefaultFig12()
	if quick {
		p = experiments.QuickFig12()
	}
	r, err := experiments.Fig12(p)
	if err != nil {
		return err
	}
	if out != "" {
		if err := emit(out, "fig12", r.Series); err != nil {
			return err
		}
	}
	fmt.Println(r.Summary())
	return nil
}

func runFig13(quick bool, out string) error {
	p := experiments.DefaultFig13()
	if quick {
		p = experiments.QuickFig13()
	}
	r, err := experiments.Fig13(p)
	if err != nil {
		return err
	}
	if out != "" {
		if err := emit(out, "fig13", r.Series); err != nil {
			return err
		}
		// Fig. 14's two representative 20-minute segments.
		if err := emit(out, "fig14a", r.Segment(
			"Fig. 14a: switch power trace, segment 1 (80-100 min)", 80*60, 100*60)); err != nil {
			return err
		}
		if err := emit(out, "fig14b", r.Segment(
			"Fig. 14b: switch power trace, segment 2 (40-60 min)", 40*60, 60*60)); err != nil {
			return err
		}
	}
	fmt.Println(r.Summary())
	return nil
}
