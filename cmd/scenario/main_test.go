package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"holdcsim/internal/runner"
	"holdcsim/internal/scenario"
)

const testdata = "../../internal/scenario/testdata"

// cli drives the binary in-process and captures stdout/stderr.
func cli(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

// TestExportReimportByteIdentical is the acceptance check: an exported
// preset, re-imported through the file codec and executed via
// `run -check`, produces byte-identical TSV output to the equivalent
// in-memory run, with zero invariant violations. The file round trip
// must not perturb a single event, draw, or float.
func TestExportReimportByteIdentical(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "fig5.json")
	if code, _, errw := cli(t, "export", "-preset", "fig5-delaytimer", "-o", file); code != 0 {
		t.Fatalf("export failed (%d): %s", code, errw)
	}

	code, got, errw := cli(t, "run", "-check", "-reps", "2", "-workers", "2", file)
	if code != 0 {
		t.Fatalf("run -check failed (%d): %s", code, errw)
	}

	// The in-memory equivalent: same preset value, same runner options,
	// same renderer — no file in the loop.
	s := scenario.Presets()["fig5-delaytimer"]
	want, violations, err := runScenarios(asLoaded([]scenario.Scenario{s}), runner.Options{Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if violations != 0 {
		t.Fatalf("in-memory run reported %d violations", violations)
	}
	if got != want {
		t.Fatalf("file-driven TSV diverged from the in-memory run:\nfile:\n%s\nmemory:\n%s", got, want)
	}
	if !strings.Contains(got, "\t0\t0\n") && !strings.HasSuffix(strings.TrimSpace(got), "\t0") {
		// Every row's last column is the violation count; the -check exit
		// code already guarantees zero, this pins the column rendering.
		t.Fatalf("unexpected TSV tail:\n%s", got)
	}
	rows := strings.Split(strings.TrimSpace(got), "\n")
	if len(rows) != 3 { // header + 2 replications
		t.Fatalf("got %d TSV rows, want 3:\n%s", len(rows), got)
	}
}

// TestRunWorkerCountEquivalence: TSV bytes are identical at any worker
// count — the campaign determinism contract through the CLI path.
func TestRunWorkerCountEquivalence(t *testing.T) {
	file := filepath.Join(testdata, "matrix.json")
	_, one, errw := cli(t, "run", "-workers", "1", file)
	if one == "" {
		t.Fatalf("workers=1 produced no output: %s", errw)
	}
	_, four, _ := cli(t, "run", "-workers", "4", file)
	if one != four {
		t.Fatal("TSV output differs between workers=1 and workers=4")
	}
}

// TestValidateFixtures: every checked-in fixture validates, and the
// canonical label is printed for scenario files.
func TestValidateFixtures(t *testing.T) {
	code, out, errw := cli(t, "validate",
		filepath.Join(testdata, "fig5-delaytimer.json"),
		filepath.Join(testdata, "commented.json"),
		filepath.Join(testdata, "tracefile.json"),
		filepath.Join(testdata, "matrix.json"),
	)
	if code != 0 {
		t.Fatalf("validate failed (%d): %s", code, errw)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "s105/") {
		t.Errorf("scenario label missing from %q", lines[0])
	}
	if !strings.Contains(lines[3], "matrix, 16 valid scenarios") {
		t.Errorf("matrix summary missing from %q", lines[3])
	}
}

// TestValidateRejectsBadFile: a malformed file fails with a nonzero
// exit and a diagnostic, not a stack trace.
func TestValidateRejectsBadFile(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"servers": 4, "sevrers": 5}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errw := cli(t, "validate", bad)
	if code == 0 {
		t.Fatal("validate accepted a file with an unknown field")
	}
	if !strings.Contains(errw, "sevrers") {
		t.Errorf("diagnostic does not name the unknown field: %s", errw)
	}
}

// TestExpandMatrix: expand prints one injective label per generated
// scenario.
func TestExpandMatrix(t *testing.T) {
	code, out, errw := cli(t, "expand", filepath.Join(testdata, "matrix.json"))
	if code != 0 {
		t.Fatalf("expand failed (%d): %s", code, errw)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 16 {
		t.Fatalf("expanded to %d labels, want 16:\n%s", len(lines), out)
	}
	seen := make(map[string]bool)
	for _, l := range lines {
		if seen[l] {
			t.Fatalf("duplicate label %q", l)
		}
		seen[l] = true
	}
}

// TestRunTraceFileScenario: an externally recorded arrival trace
// replays through the invariant-checked path — the tentpole's
// end-to-end proof. The relative traceFile path resolves against the
// scenario file's directory.
func TestRunTraceFileScenario(t *testing.T) {
	code, out, errw := cli(t, "run", "-check", filepath.Join(testdata, "tracefile.json"))
	if code != 0 {
		t.Fatalf("run -check failed (%d): %s", code, errw)
	}
	rows := strings.Split(strings.TrimSpace(out), "\n")
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want header + 1:\n%s", len(rows), out)
	}
	cols := strings.Split(rows[1], "\t")
	if cols[4] == "0" {
		t.Fatalf("trace replay generated zero jobs:\n%s", out)
	}
	if cols[len(cols)-1] != "0" {
		t.Fatalf("violations in trace replay:\n%s", out)
	}
}

// TestRunCorrelatedFaultScenario: the checked-in correlated-failure
// fixture — outage-log replay plus a renewal process and cascades —
// runs invariant-clean through the CLI, the relative outage traceFile
// resolves against the scenario file's directory, and the fault-ledger
// TSV columns carry real counts.
func TestRunCorrelatedFaultScenario(t *testing.T) {
	code, out, errw := cli(t, "run", "-check", filepath.Join(testdata, "correlated.json"))
	if code != 0 {
		t.Fatalf("run -check failed (%d): %s", code, errw)
	}
	rows := strings.Split(strings.TrimSpace(out), "\n")
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want header + 1:\n%s", len(rows), out)
	}
	head := strings.Split(rows[0], "\t")
	cols := strings.Split(rows[1], "\t")
	idx := func(name string) string {
		t.Helper()
		for i, h := range head {
			if h == name {
				return cols[i]
			}
		}
		t.Fatalf("column %q missing from header: %v", name, head)
		return ""
	}
	if idx("faults_applied") == "0" {
		t.Fatalf("correlated fixture applied zero faults:\n%s", out)
	}
	if idx("violations") != "0" {
		t.Fatalf("violations in correlated run:\n%s", out)
	}
	// Byte-determinism through the CLI: a second run is identical.
	_, again, _ := cli(t, "run", "-check", filepath.Join(testdata, "correlated.json"))
	if out != again {
		t.Fatal("correlated fixture TSV differs across runs")
	}
}

// TestTraceFileLabelIgnoresInvocationDir is the regression test for
// the path-dependent-label bug: the canonical label (and so the
// replication seeds derived from it) must come from the scenario file
// as written, not from the CLI-resolved trace path — the same (file,
// trace) pair run from two directories is the same experiment.
func TestTraceFileLabelIgnoresInvocationDir(t *testing.T) {
	items, _, err := loadFile(filepath.Join(testdata, "tracefile.json"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(items[0].label, testdata) {
		t.Errorf("label leaks the invocation-relative path: %s", items[0].label)
	}
	if !strings.Contains(items[0].label, `"arrivals.trace"`) {
		t.Errorf("label does not carry the as-written trace path: %s", items[0].label)
	}
	if !strings.HasSuffix(items[0].s.Arrival.TraceFile, filepath.Join(testdata, "arrivals.trace")) {
		t.Errorf("execution path not resolved against the file dir: %s", items[0].s.Arrival.TraceFile)
	}
	// And the TSV carries the as-written label, so reps reproduce
	// anywhere.
	_, out, _ := cli(t, "run", filepath.Join(testdata, "tracefile.json"))
	if !strings.Contains(out, `"arrivals.trace"`) || strings.Contains(out, testdata) {
		t.Errorf("TSV label depends on the invocation dir:\n%s", out)
	}
}

// TestRunMissingTraceFile: a scenario pointing at a nonexistent trace
// errors cleanly.
func TestRunMissingTraceFile(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "s.json")
	data := `{"servers": 2, "arrival": {"kind": "trace-file", "rho": 0.3, "traceFile": "nope.trace"}, "maxJobs": 10}`
	if err := os.WriteFile(file, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errw := cli(t, "run", file)
	if code == 0 {
		t.Fatal("run succeeded against a missing trace file")
	}
	if !strings.Contains(errw, "nope.trace") {
		t.Errorf("diagnostic does not name the missing trace: %s", errw)
	}
}

// TestExportRandomRoundTrip: `export -random` output re-imports to the
// exact Random draw (including seed 0, a flag-presence corner).
func TestExportRandomRoundTrip(t *testing.T) {
	for _, seed := range []string{"0", "424242"} {
		dir := t.TempDir()
		file := filepath.Join(dir, "r.json")
		if code, _, errw := cli(t, "export", "-random", seed, "-o", file); code != 0 {
			t.Fatalf("export -random %s failed: %s", seed, errw)
		}
		code, out, errw := cli(t, "validate", file)
		if code != 0 {
			t.Fatalf("validate of exported draw failed (%d): %s", code, errw)
		}
		if !strings.Contains(out, "s"+seed+"/") && seed != "0" {
			t.Errorf("label does not carry the seed: %s", out)
		}
	}
}

// TestExportListAndMatrix: the discovery paths work.
func TestExportListAndMatrix(t *testing.T) {
	code, out, _ := cli(t, "export", "-list")
	if code != 0 {
		t.Fatal("export -list failed")
	}
	names := strings.Split(strings.TrimSpace(out), "\n")
	if len(names) != 10 {
		t.Fatalf("listed %d presets, want 10:\n%s", len(names), out)
	}
	dir := t.TempDir()
	file := filepath.Join(dir, "m.json")
	if code, _, errw := cli(t, "export", "-matrix", "-o", file); code != 0 {
		t.Fatalf("export -matrix failed: %s", errw)
	}
	code, out, errw := cli(t, "expand", file)
	if code != 0 {
		t.Fatalf("expand of exported matrix failed (%d): %s", code, errw)
	}
	if n := len(strings.Split(strings.TrimSpace(out), "\n")); n != 16 {
		t.Fatalf("demo matrix expanded to %d labels, want 16", n)
	}
}

// TestEveryPresetExportsAndValidates closes the loop over the whole
// preset table through the real filesystem path.
func TestEveryPresetExportsAndValidates(t *testing.T) {
	dir := t.TempDir()
	for _, name := range scenario.PresetNames() {
		file := filepath.Join(dir, name+".json")
		if code, _, errw := cli(t, "export", "-preset", name, "-o", file); code != 0 {
			t.Fatalf("export -preset %s failed: %s", name, errw)
		}
		if code, _, errw := cli(t, "validate", file); code != 0 {
			t.Fatalf("validate of exported %s failed: %s", name, errw)
		}
	}
}

// TestBadInvocations: argument errors exit 2 (usage) or 1 (load
// failure) without panicking.
func TestBadInvocations(t *testing.T) {
	cases := [][]string{
		nil,
		{"frobnicate"},
		{"validate"},
		{"expand"},
		{"run"},
		{"export"},
		{"export", "-preset", "no-such-preset"},
		{"validate", "no-such-file.json"},
	}
	for _, args := range cases {
		if code, _, _ := cli(t, args...); code == 0 {
			t.Errorf("args %v exited 0", args)
		}
	}
	if code, _, _ := cli(t, "help"); code != 0 {
		t.Error("help exited nonzero")
	}
}
