// Command scenario is the file front end of the scenario subsystem: it
// validates, expands, runs and exports scenario and campaign-matrix
// files (JSON with comments; see DESIGN.md Sec. 10), so externally
// recorded configurations and production traces replay through the
// exact invariant-checked, deterministic path generated scenarios use.
//
// Usage:
//
//	scenario validate <file>...            parse + Validate, print the canonical label
//	scenario expand <file>...              print every label a matrix file generates
//	scenario run [flags] <file>...         execute files, TSV results to stdout
//	  -workers N   worker pool size (default GOMAXPROCS)
//	  -reps N      replications per scenario (default 1)
//	  -check       fail on any invariant violation (default true)
//	scenario export [flags]                dump built-ins as files
//	  -list            list preset names
//	  -preset NAME     export one preset
//	  -random SEED     export the Random(SEED) draw
//	  -matrix          export the demo campaign matrix
//	  -o FILE          output path (default stdout)
//
// A scenario file's relative traceFile path resolves against the
// scenario file's directory, so a config and its recorded trace travel
// as a pair.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"holdcsim/internal/runner"
	"holdcsim/internal/scenario"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run dispatches one CLI invocation; factored from main so tests drive
// the binary in-process.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	var err error
	switch args[0] {
	case "validate":
		err = cmdValidate(args[1:], stdout)
	case "expand":
		err = cmdExpand(args[1:], stdout)
	case "run":
		err = cmdRun(args[1:], stdout)
	case "export":
		err = cmdExport(args[1:], stdout)
	case "help", "-h", "--help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "scenario: unknown command %q\n", args[0])
		usage(stderr)
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "scenario:", err)
		return 1
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage: scenario <command> [flags] [file...]

commands:
  validate <file>...   parse + Validate scenario/matrix files, print canonical labels
  expand <file>...     print every scenario label a matrix file generates
  run      <file>...   execute files through the campaign runner, TSV to stdout
                       (-workers N, -reps N, -check)
  export               dump built-ins (-list | -preset NAME | -random SEED | -matrix) [-o FILE]

files are JSON with // and /* */ comments; unknown fields are rejected
and every scenario is validated on load. See DESIGN.md Sec. 10.
`)
}

// loaded pairs an executable scenario with its canonical label. The
// label is computed from the scenario as written in the file — before
// relative traceFile paths are resolved against the file's directory —
// so labels, and the replication seeds the runner derives from them,
// never depend on the directory the CLI was invoked from.
type loaded struct {
	s     scenario.Scenario
	label string
}

// asLoaded wraps in-memory scenarios (no file, nothing to resolve).
func asLoaded(ss []scenario.Scenario) []loaded {
	out := make([]loaded, len(ss))
	for i, s := range ss {
		out[i] = loaded{s: s, label: s.String()}
	}
	return out
}

// loadFile decodes one scenario or matrix file, labels each scenario
// as written, then resolves relative traceFile paths against the
// file's directory for execution.
func loadFile(path string) ([]loaded, bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false, err
	}
	ss, isMatrix, err := scenario.DecodeAny(data)
	if err != nil {
		return nil, false, fmt.Errorf("%s: %w", path, err)
	}
	out := asLoaded(ss)
	dir := filepath.Dir(path)
	for i := range out {
		if tf := out[i].s.Arrival.TraceFile; tf != "" && !filepath.IsAbs(tf) {
			out[i].s.Arrival.TraceFile = filepath.Join(dir, tf)
		}
		if tf := out[i].s.Faults.TraceFile; tf != "" && !filepath.IsAbs(tf) {
			out[i].s.Faults.TraceFile = filepath.Join(dir, tf)
		}
	}
	return out, isMatrix, nil
}

func cmdValidate(args []string, w io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("validate: no files")
	}
	for _, path := range args {
		ss, isMatrix, err := loadFile(path)
		if err != nil {
			return err
		}
		if isMatrix {
			fmt.Fprintf(w, "%s: matrix, %d valid scenarios\n", path, len(ss))
		} else {
			fmt.Fprintf(w, "%s: %s\n", path, ss[0].label)
		}
	}
	return nil
}

func cmdExpand(args []string, w io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("expand: no files")
	}
	for _, path := range args {
		ss, _, err := loadFile(path)
		if err != nil {
			return err
		}
		for _, l := range ss {
			fmt.Fprintln(w, l.label)
		}
	}
	return nil
}

func cmdRun(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	reps := fs.Int("reps", 1, "replications per scenario")
	check := fs.Bool("check", true, "fail on any invariant violation")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("run: no files")
	}
	var scenarios []loaded
	for _, path := range fs.Args() {
		ss, _, err := loadFile(path)
		if err != nil {
			return err
		}
		scenarios = append(scenarios, ss...)
	}
	tsv, violations, err := runScenarios(scenarios, runner.Options{Workers: *workers, Reps: *reps})
	if err != nil {
		return err
	}
	fmt.Fprint(w, tsv)
	if *check && violations > 0 {
		return fmt.Errorf("run: %d invariant violation(s); see the violations column", violations)
	}
	return nil
}

// runScenarios executes the campaign and renders the TSV. Replication
// seeds follow the runner's contract: rep 0 is the scenario's own seed
// (so a 1-rep campaign reproduces the in-memory run byte for byte) and
// rep i > 0 derives from (seed, label, i) — which is why scenario
// labels must be injective. Returns the TSV, the total violation
// count, and any construction error.
func runScenarios(scenarios []loaded, opts runner.Options) (string, int, error) {
	if len(scenarios) == 0 {
		return "", 0, fmt.Errorf("run: zero scenarios")
	}
	reps := opts.RepCount()
	// Flatten (scenario, rep) pairs into independent runs so the pool
	// parallelizes across both axes; each run is a pure function of its
	// pre-derived seed.
	flat := make([]runner.Run[scenario.Result], 0, len(scenarios)*reps)
	for _, l := range scenarios {
		for rep := 0; rep < reps; rep++ {
			s2 := l.s
			s2.Seed = runner.RepSeed(l.s.Seed, l.label, rep)
			flat = append(flat, runner.Run[scenario.Result]{
				Key: l.label,
				Do: func(uint64) (scenario.Result, error) {
					res, err := s2.Run()
					if err != nil && res.Results == nil {
						return scenario.Result{}, err // construction failure
					}
					return res, nil // violations ride in res.Violations
				},
			})
		}
	}
	out, err := runner.Map(runner.Options{Workers: opts.Workers}, 0, flat)
	if err != nil {
		return "", 0, err
	}

	var b strings.Builder
	b.WriteString("label\trep\tseed\tend_s\tgenerated\tcompleted\tlost\tmean_ms\tp50_ms\tp95_ms\tp99_ms\tserver_J\tnetwork_J\tjobs_lost_drop\tjobs_lost_outage\ttasks_aborted\tfaults_applied\tviolations\n")
	violations := 0
	for i, l := range scenarios {
		for rep := 0; rep < reps; rep++ {
			res := out[i*reps+rep]
			violations += len(res.Violations)
			writeRow(&b, l.label, rep, runner.RepSeed(l.s.Seed, l.label, rep), res)
		}
	}
	return b.String(), violations, nil
}

// writeRow renders one (scenario, replication) result. Floats use %g —
// shortest round-trip form — so output is deterministic across
// platforms and worker counts.
func writeRow(b *strings.Builder, label string, rep int, seed uint64, res scenario.Result) {
	r := res.Results
	var mean, p50, p95, p99 float64
	if r.Latency != nil && r.Latency.Count() > 0 {
		mean = r.Latency.Mean() * 1e3
		p50 = r.Latency.Percentile(50) * 1e3
		p95 = r.Latency.Percentile(95) * 1e3
		p99 = r.Latency.Percentile(99) * 1e3
	}
	// Fault-ledger columns render zero on fault-free runs (no ledger is
	// attached at all), so fault-free TSV stays column-compatible.
	var lostDrop, lostOutage, applied int64
	if r.Faults != nil {
		lostDrop = r.Faults.JobsLostCrash
		lostOutage = r.Faults.JobsLostNoAlive
		applied = int64(r.Faults.Applied())
	}
	fmt.Fprintf(b, "%s\t%d\t%d\t%g\t%d\t%d\t%d\t%g\t%g\t%g\t%g\t%g\t%g\t%d\t%d\t%d\t%d\t%d\n",
		label, rep, seed, r.End.Seconds(),
		r.JobsGenerated, r.JobsCompleted, r.JobsLost,
		mean, p50, p95, p99,
		r.ServerEnergyJ, r.NetworkEnergyJ,
		lostDrop, lostOutage, r.TasksAborted, applied, len(res.Violations))
}

// exportHeader prefixes exported files so the format documents itself.
func exportHeader(origin string) string {
	return fmt.Sprintf(`// holdcsim scenario file — exported by 'scenario export %s'.
// Format: JSON with // and /* */ comments; unknown fields are rejected
// and the scenario is validated on load. Field reference: DESIGN.md Sec. 10.
`, origin)
}

func cmdExport(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("export", flag.ContinueOnError)
	list := fs.Bool("list", false, "list preset names")
	preset := fs.String("preset", "", "preset name to export")
	random := fs.Uint64("random", 0, "seed for a Random scenario draw")
	matrix := fs.Bool("matrix", false, "export the demo campaign matrix")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	randomSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "random" {
			randomSet = true
		}
	})
	if fs.NArg() != 0 {
		return fmt.Errorf("export: unexpected arguments %v", fs.Args())
	}

	var data []byte
	switch {
	case *list:
		for _, n := range scenario.PresetNames() {
			fmt.Fprintln(w, n)
		}
		return nil
	case *preset != "":
		s, err := scenario.Preset(*preset)
		if err != nil {
			return err
		}
		b, err := scenario.Encode(s)
		if err != nil {
			return err
		}
		data = append([]byte(exportHeader("-preset "+*preset)), b...)
	case randomSet:
		s := scenario.Random(*random)
		b, err := scenario.Encode(s)
		if err != nil {
			return err
		}
		data = append([]byte(exportHeader(fmt.Sprintf("-random %d", *random))), b...)
	case *matrix:
		b, err := scenario.EncodeMatrix(scenario.DemoMatrix())
		if err != nil {
			return err
		}
		data = append([]byte(exportHeader("-matrix")), b...)
	default:
		return fmt.Errorf("export: one of -list, -preset, -random or -matrix is required")
	}

	if *out == "" {
		_, err := w.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}
