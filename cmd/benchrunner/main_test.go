package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Quick mode exercises the full CLI path — flags, the Table I and
// hyperscale scalability rows, and the trajectory append — without the
// timed benchmark loops.
func TestRunQuickAppendsTrajectory(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr strings.Builder
	code := run([]string{"-quick", "-hyperscale", "-out", out, "-label", "test"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var entries []Entry
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatalf("trajectory not valid JSON: %v\n%s", err, data)
	}
	if len(entries) != 1 || entries[0].Label != "test" {
		t.Fatalf("entries = %+v, want one labeled \"test\"", entries)
	}
	names := map[string]Result{}
	for _, r := range entries[0].Results {
		names[r.Name] = r
	}
	scale, ok := names["experiments/table1-scalability"]
	if !ok || scale.EventsPerSec <= 0 {
		t.Fatalf("table1-scalability row missing or empty: %+v", names)
	}
	hyper, ok := names["experiments/table1-hyperscale"]
	if !ok || hyper.EventsPerSec <= 0 || hyper.PeakRSSBytes <= 0 {
		t.Fatalf("table1-hyperscale row missing events/s or peak RSS: %+v", hyper)
	}
	if !strings.Contains(stdout.String(), "appended entry to") {
		t.Fatalf("missing append confirmation:\n%s", stdout.String())
	}

	// A second invocation must append, not overwrite.
	code = run([]string{"-quick", "-out", out}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("second run exit %d, stderr: %s", code, stderr.String())
	}
	data, err = os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	entries = nil
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("trajectory holds %d entries after two runs, want 2", len(entries))
	}
}

// The non-quick path end to end: the five timed micro-benchmarks, the
// benchmarked Table I row, and the Fig. 5 campaign, into a scratch
// trajectory. testing.Benchmark calibration makes this the slowest
// test in the package (~10 s wall); it is not gated on -short because
// the coverage ratchet measures with -short and these loops are the
// statements behind every committed trajectory figure.
func TestRunFullSuiteOnce(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr strings.Builder
	code := run([]string{"-out", out, "-label", "full"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var entries []Entry
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatalf("trajectory not valid JSON: %v\n%s", err, data)
	}
	if len(entries) != 1 {
		t.Fatalf("trajectory holds %d entries, want 1", len(entries))
	}
	got := map[string]Result{}
	for _, r := range entries[0].Results {
		got[r.Name] = r
	}
	for _, name := range []string{
		"engine/schedule-and-run", "engine/churn", "engine/timer-reset",
		"network/packet-forwarding", "network/fluid-step",
		"experiments/fig5-campaign-serial", "experiments/fig5-campaign-parallel",
	} {
		if r, ok := got[name]; !ok || r.NsPerOp <= 0 {
			t.Errorf("row %q missing or empty: %+v", name, r)
		}
	}
	if r := got["experiments/table1-scalability"]; r.EventsPerSec <= 0 || r.Iterations < 1 {
		t.Errorf("benchmarked table1-scalability row missing or empty: %+v", r)
	}
	if _, ok := got["experiments/table1-hyperscale"]; ok {
		t.Error("hyperscale row present without -hyperscale")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d for unknown flag, want 2", code)
	}
}

func TestRunRefusesCorruptTrajectory(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(out, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr strings.Builder
	if code := run([]string{"-quick", "-out", out}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d over corrupt trajectory, want 1 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "not a trajectory array") {
		t.Fatalf("stderr missing diagnosis: %s", stderr.String())
	}
}
