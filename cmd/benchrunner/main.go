// Command benchrunner runs the simulator's core performance benchmarks —
// the engine hot paths, packet forwarding, and the Table I scalability
// figure — and appends the results to a JSON trajectory file
// (BENCH_engine.json by default). Committing one entry per PR makes every
// performance delta machine-checkable: a regression shows up as a drop in
// events/s or a jump in ns/op or allocs/op relative to the previous entry.
//
// Usage:
//
//	go run ./cmd/benchrunner [-out BENCH_engine.json] [-label "PR 1"]
//	go run ./cmd/benchrunner -hyperscale        # adds the 1M-server row
//	go run ./cmd/benchrunner -quick             # scalability rows only
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"holdcsim/internal/engine"
	"holdcsim/internal/experiments"
	"holdcsim/internal/network"
	"holdcsim/internal/power"
	"holdcsim/internal/runner"
	"holdcsim/internal/simtime"
	"holdcsim/internal/topology"
)

// Result is one benchmark's figures in a trajectory entry.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// EventsPerSec is the engine dispatch rate where the benchmark
	// measures one (the Table I rows); 0 otherwise.
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	// PeakRSSBytes is the process's high-water resident set, recorded
	// by the hyperscale row (memory is its second axis).
	PeakRSSBytes int64 `json:"peak_rss_bytes,omitempty"`
	Iterations   int   `json:"iterations"`
}

// Entry is one benchrunner invocation in the trajectory file.
type Entry struct {
	Timestamp time.Time `json:"timestamp"`
	Label     string    `json:"label,omitempty"`
	GoVersion string    `json:"go_version"`
	GOARCH    string    `json:"goarch"`
	Results   []Result  `json:"results"`
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run executes one CLI invocation; factored from main so tests drive
// the binary in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchrunner", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("out", "BENCH_engine.json", "trajectory file to append to")
	label := fs.String("label", "", "free-form label for this entry (e.g. PR number)")
	quick := fs.Bool("quick", false, "scalability rows only, single-shot (CI smoke)")
	hyper := fs.Bool("hyperscale", false, "also run the 1M-server hyperscale row (quick shrinks it)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	entry := Entry{
		Timestamp: time.Now().UTC(), //simlint:allow determinism benchmark entries are stamped with wall time by design
		Label:     *label,
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
	}

	if !*quick {
		benches := []struct {
			name string
			fn   func(b *testing.B)
		}{
			{"engine/schedule-and-run", benchScheduleAndRun},
			{"engine/churn", benchChurn},
			{"engine/timer-reset", benchTimerReset},
			{"network/packet-forwarding", benchPacketForwarding},
			{"network/fluid-step", benchFluidStep},
		}
		for _, bench := range benches {
			r := testing.Benchmark(bench.fn)
			res := Result{
				Name:        bench.name,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				Iterations:  r.N,
			}
			entry.Results = append(entry.Results, res)
			fmt.Fprintf(stdout, "%-28s %12.2f ns/op %8d B/op %6d allocs/op\n",
				bench.name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
		}
	}

	tableI, err := runTableI(*quick)
	if err != nil {
		fmt.Fprintf(stderr, "benchrunner: table I: %v\n", err)
		return 1
	}
	entry.Results = append(entry.Results, tableI)
	fmt.Fprintf(stdout, "%-28s %12.2f ns/op %17.0f events/s\n", tableI.Name, tableI.NsPerOp, tableI.EventsPerSec)

	if *hyper {
		hs, err := runHyperscale(*quick)
		if err != nil {
			fmt.Fprintf(stderr, "benchrunner: hyperscale: %v\n", err)
			return 1
		}
		entry.Results = append(entry.Results, hs)
		fmt.Fprintf(stdout, "%-28s %12.2f ns/op %17.0f events/s %8.1f MiB peak\n",
			hs.Name, hs.NsPerOp, hs.EventsPerSec, float64(hs.PeakRSSBytes)/(1<<20))
	}

	if !*quick {
		campaign, err := runFig5Campaign()
		if err != nil {
			fmt.Fprintf(stderr, "benchrunner: fig5 campaign: %v\n", err)
			return 1
		}
		entry.Results = append(entry.Results, campaign...)
		for _, r := range campaign {
			fmt.Fprintf(stdout, "%-28s %12.2f ns/op\n", r.Name, r.NsPerOp)
		}
		if len(campaign) == 2 && campaign[1].NsPerOp > 0 {
			fmt.Fprintf(stdout, "%-28s %12.2fx at GOMAXPROCS=%d\n", "fig5-campaign speedup",
				campaign[0].NsPerOp/campaign[1].NsPerOp, runtime.GOMAXPROCS(0))
		}
	}

	if err := appendEntry(*out, entry); err != nil {
		fmt.Fprintf(stderr, "benchrunner: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "appended entry to %s\n", *out)
	return 0
}

// benchScheduleAndRun is the self-rescheduling chain: the dominant
// schedule->dispatch cycle of every simulation.
func benchScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	e := engine.New()
	count := 0
	var next func()
	next = func() {
		count++
		if count < b.N {
			e.After(simtime.Microsecond, next)
		}
	}
	b.ResetTimer()
	e.After(simtime.Microsecond, next)
	e.Run()
}

// benchChurn is the delay-timer workload shape: thousands of pending
// deadlines being canceled and re-armed.
func benchChurn(b *testing.B) {
	b.ReportAllocs()
	e := engine.New()
	const pending = 4096
	evs := make([]engine.Handle, pending)
	for i := range evs {
		evs[i] = e.Schedule(simtime.Time(i+1)*simtime.Second, func() {}) //simlint:allow handle benchmark-local churn buffer; handles never outlive the loop
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := i % pending
		e.Cancel(evs[idx])
		evs[idx] = e.Schedule(e.Now()+simtime.Time(idx+1)*simtime.Second, func() {}) //simlint:allow handle benchmark-local churn buffer; handles never outlive the loop
	}
}

func benchTimerReset(b *testing.B) {
	b.ReportAllocs()
	e := engine.New()
	tm := engine.NewTimer(e, func() {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Reset(simtime.Second)
	}
}

// benchPacketForwarding pushes one MTU packet across a k=4 fat-tree per
// iteration: the per-hop event path of packet mode.
func benchPacketForwarding(b *testing.B) {
	b.ReportAllocs()
	g, err := (topology.FatTree{K: 4, RateBps: 10e9}).Build()
	if err != nil {
		b.Fatal(err)
	}
	eng := engine.New()
	cfg := network.DefaultConfig(power.DataCenter10G(8))
	cfg.PortBufferBytes = 1 << 30
	n, err := network.New(eng, g, cfg)
	if err != nil {
		b.Fatal(err)
	}
	hosts := g.Hosts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n.TransferPackets(hosts[0], hosts[15], 1500, nil); err != nil {
			b.Fatal(err)
		}
		eng.Run()
	}
}

// benchFluidStep measures the fluid model's rate-sharing step: each
// iteration runs a contending pair of transfers into one destination
// plus a disjoint one, driving waterfill re-rates at every flow start
// and release. This is the per-transfer cost of fluid mode, the
// counterpart of the per-hop cost packet-forwarding measures.
func benchFluidStep(b *testing.B) {
	b.ReportAllocs()
	g, err := (topology.FatTree{K: 4, RateBps: 10e9}).Build()
	if err != nil {
		b.Fatal(err)
	}
	eng := engine.New()
	cfg := network.DefaultConfig(power.DataCenter10G(8))
	cfg.Model = network.ModelFluid
	n, err := network.New(eng, g, cfg)
	if err != nil {
		b.Fatal(err)
	}
	hosts := g.Hosts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tr := range [...]struct {
			src, dst int
		}{{0, 15}, {1, 15}, {2, 3}} {
			if err := n.TransferPackets(hosts[tr.src], hosts[tr.dst], 15_000, nil); err != nil {
				b.Fatal(err)
			}
		}
		eng.Run()
	}
}

// runFig5Campaign measures the Quick Fig. 5 sweep end to end, serially
// and on the full worker pool. The parallel/serial wall-clock ratio is
// the campaign runner's scalability figure: output is bit-identical
// either way, so any gap is pure core utilization. Best-of-3 damps
// scheduler noise.
func runFig5Campaign() ([]Result, error) {
	measure := func(workers int) (float64, error) {
		best := 0.0
		for i := 0; i < 3; i++ {
			p := experiments.QuickFig5()
			p.Exec = runner.Options{Workers: workers}
			start := time.Now() //simlint:allow determinism benchmarks measure wall time by definition
			if _, err := experiments.Fig5(p); err != nil {
				return 0, err
			}
			if wall := float64(time.Since(start).Nanoseconds()); best == 0 || wall < best { //simlint:allow determinism benchmarks measure wall time by definition
				best = wall
			}
		}
		return best, nil
	}
	serial, err := measure(1)
	if err != nil {
		return nil, err
	}
	parallel, err := measure(runtime.GOMAXPROCS(0))
	if err != nil {
		return nil, err
	}
	return []Result{
		{Name: "experiments/fig5-campaign-serial", NsPerOp: serial, Iterations: 3},
		{Name: "experiments/fig5-campaign-parallel", NsPerOp: parallel, Iterations: 3},
	}, nil
}

// runTableI reproduces the Table I scalability row and reports the
// engine's end-to-end dispatch rate. Quick mode runs a single
// invocation instead of a timed benchmark loop.
func runTableI(quick bool) (Result, error) {
	p := experiments.QuickTableI()
	if quick {
		start := time.Now() //simlint:allow determinism benchmarks measure wall time by definition
		res, err := experiments.TableI(p)
		if err != nil {
			return Result{}, err
		}
		return Result{
			Name:         "experiments/table1-scalability",
			NsPerOp:      float64(time.Since(start).Nanoseconds()), //simlint:allow determinism benchmarks measure wall time by definition
			Iterations:   1,
			EventsPerSec: res.EventsPerSec,
		}, nil
	}
	var res *experiments.TableIResult
	var err error
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err = experiments.TableI(p)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	if err != nil {
		return Result{}, err
	}
	return Result{
		Name:         "experiments/table1-scalability",
		NsPerOp:      float64(r.T.Nanoseconds()) / float64(r.N),
		Iterations:   r.N,
		EventsPerSec: res.EventsPerSec,
	}, nil
}

// runHyperscale runs the million-server scalability row once (it is
// its own benchmark: build seconds, run-phase events/s, peak RSS).
// Quick mode shrinks the farm so tests and smoke jobs stay fast.
func runHyperscale(quick bool) (Result, error) {
	p := experiments.DefaultHyperscale()
	if quick {
		p = experiments.QuickHyperscale()
	}
	res, err := experiments.Hyperscale(p)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Name:         "experiments/table1-hyperscale",
		NsPerOp:      res.RunSeconds * 1e9,
		Iterations:   1,
		EventsPerSec: res.EventsPerSec,
		PeakRSSBytes: res.PeakRSSBytes,
	}, nil
}

// appendEntry reads the existing trajectory (if any), appends entry, and
// rewrites the file.
func appendEntry(path string, entry Entry) error {
	var entries []Entry
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &entries); err != nil {
			return fmt.Errorf("existing %s is not a trajectory array: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	entries = append(entries, entry)
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
