// Command covsearch runs a model-state coverage campaign: N scenario
// executions steered by internal/modelcov feedback
// (scenario.GuidedSearch), reporting which semantic model features the
// campaign reached, which it never reached, and the minimized corpus of
// (seed, mut) inputs that earned the coverage. The corpus file it
// writes is the same format FuzzScenario seeds from, so a campaign's
// findings feed the native fuzzer directly.
//
// Usage:
//
//	covsearch [flags]
//	  -execs N      candidate executions (default 256)
//	  -seed N       campaign seed (default 1)
//	  -workers N    worker pool size (default GOMAXPROCS)
//	  -maxjobs N    per-execution work bound (default 800)
//	  -corpus DIR   seed corpus directory to replay first
//	  -out FILE     write the minimized corpus here
//	  -top N        never-hit features to list (default 15, 0 = all)
//	  -blind        also run the uniform-random baseline and compare
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"holdcsim/internal/modelcov"
	"holdcsim/internal/scenario"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run executes one CLI invocation; factored from main so tests drive
// the binary in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("covsearch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	execs := fs.Int("execs", 256, "candidate executions")
	seed := fs.Uint64("seed", 1, "campaign seed")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	maxJobs := fs.Int64("maxjobs", 800, "per-execution work bound")
	corpusDir := fs.String("corpus", "", "seed corpus directory to replay first")
	out := fs.String("out", "", "write the minimized corpus to this file")
	top := fs.Int("top", 15, "never-hit features to list (0 = all)")
	blind := fs.Bool("blind", false, "also run the uniform-random baseline")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "covsearch: unexpected arguments %v\n", fs.Args())
		return 2
	}
	if err := campaign(stdout, *execs, *seed, *workers, *maxJobs, *corpusDir, *out, *top, *blind); err != nil {
		fmt.Fprintln(stderr, "covsearch:", err)
		return 1
	}
	return 0
}

func campaign(w io.Writer, execs int, seed uint64, workers int, maxJobs int64,
	corpusDir, out string, top int, blind bool) error {
	o := scenario.SearchOptions{
		Seed:    seed,
		Execs:   execs,
		Workers: workers,
		MaxJobs: maxJobs,
	}
	if corpusDir != "" {
		entries, err := scenario.ReadCorpusDir(corpusDir)
		if err != nil {
			return err
		}
		o.Corpus = entries
		fmt.Fprintf(w, "seed corpus: %d entries from %s\n", len(entries), corpusDir)
	}

	res, err := scenario.GuidedSearch(o)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "guided: %d execs (%d ran), coverage %d/%d, score %d, corpus %d\n",
		res.Execs, res.Ran, res.Cover.Covered(), res.Cover.Total(),
		res.Cover.Score(), len(res.Corpus))
	for _, f := range res.Failures {
		fmt.Fprintf(w, "FAILURE seed=%d mut=%d: %s\n", f.Seed, f.Mut, f.Err)
	}

	if blind {
		b, err := scenario.BlindSearch(o)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "blind:  %d execs (%d ran), coverage %d/%d, score %d\n",
			b.Execs, b.Ran, b.Cover.Covered(), b.Cover.Total(), b.Cover.Score())
		fmt.Fprintf(w, "guided advantage: %+d features, %+d score\n",
			res.Cover.Covered()-b.Cover.Covered(), res.Cover.Score()-b.Cover.Score())
	}

	never := res.Cover.NeverHit()
	limit := len(never)
	if top > 0 && limit > top {
		limit = top
	}
	fmt.Fprintf(w, "never hit (%d", len(never))
	if limit < len(never) {
		fmt.Fprintf(w, ", first %d", limit)
	}
	fmt.Fprintln(w, "):")
	for _, f := range never[:limit] {
		fmt.Fprintf(w, "  %s\n", modelcov.Name(f))
	}

	if out != "" {
		min := scenario.MinimizeCorpus(res.Corpus, maxJobs)
		if err := scenario.WriteCorpus(out, min); err != nil {
			return err
		}
		fmt.Fprintf(w, "minimized corpus: %d entries -> %s\n", len(min), out)
	}
	if len(res.Failures) > 0 {
		return fmt.Errorf("%d executions failed", len(res.Failures))
	}
	return nil
}
