package main

import (
	"path/filepath"
	"strings"
	"testing"

	"holdcsim/internal/scenario"
)

func TestRunCampaignWritesCorpus(t *testing.T) {
	out := filepath.Join(t.TempDir(), "corpus.txt")
	var stdout, stderr strings.Builder
	code := run([]string{"-execs", "24", "-seed", "3", "-maxjobs", "60",
		"-blind", "-top", "5", "-out", out}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	got := stdout.String()
	for _, want := range []string{"guided:", "blind:", "guided advantage:",
		"never hit", "minimized corpus:"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
	entries, err := scenario.ReadCorpus(out)
	if err != nil {
		t.Fatalf("reading written corpus: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("campaign wrote an empty corpus")
	}
	for _, e := range entries {
		if e.Gain <= 0 {
			t.Fatalf("minimized entry %+v has non-positive gain", e)
		}
	}
}

func TestRunSeedsFromCorpusDir(t *testing.T) {
	dir := t.TempDir()
	seedFile := filepath.Join(dir, "seed.txt")
	if err := scenario.WriteCorpus(seedFile,
		[]scenario.CorpusEntry{{Seed: 3, Mut: 0, Gain: 1}}); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr strings.Builder
	code := run([]string{"-execs", "8", "-seed", "4", "-maxjobs", "40",
		"-corpus", dir}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "seed corpus: 1 entries") {
		t.Fatalf("seed corpus not reported:\n%s", stdout.String())
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"extra"}, &stdout, &stderr); code != 2 {
		t.Fatalf("positional args: exit %d, want 2", code)
	}
	if code := run([]string{"-nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown flag: exit %d, want 2", code)
	}
	// "[" is a malformed glob pattern, the one error ReadCorpusDir
	// surfaces for a directory argument (a merely missing dir is an
	// empty corpus by design).
	if code := run([]string{"-corpus", "["}, &stdout, &stderr); code != 1 {
		t.Fatalf("bad corpus dir: exit %d, want 1", code)
	}
}
