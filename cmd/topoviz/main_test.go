package main

import (
	"strings"
	"testing"
)

func TestRunEveryTopology(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the topology banner
	}{
		{"fattree", []string{"-topo", "fattree", "-k", "4"}, "fattree-k4"},
		{"star", []string{"-topo", "star", "-hosts", "8"}, "star-8"},
		{"bcube", []string{"-topo", "bcube", "-n", "2", "-k", "1"}, "bcube"},
		{"camcube", []string{"-topo", "camcube", "-x", "2", "-y", "2", "-z", "2"}, "camcube"},
		{"flatbutterfly", []string{"-topo", "flatbutterfly", "-rows", "2", "-cols", "2", "-c", "2"}, "flatbutterfly"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			if code := run(tc.args, &stdout, &stderr); code != 0 {
				t.Fatalf("exit %d, stderr: %s", code, stderr.String())
			}
			got := stdout.String()
			if !strings.Contains(got, "topology "+tc.want) {
				t.Errorf("banner missing %q:\n%s", tc.want, got)
			}
			for _, section := range []string{"nodes:", "links:", "degrees:", "hops from host 0:"} {
				if !strings.Contains(got, section) {
					t.Errorf("section %q missing:\n%s", section, got)
				}
			}
		})
	}
}

func TestRunRejectsUnknownTopology(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-topo", "moebius"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d for unknown topology, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown topology") {
		t.Fatalf("stderr missing diagnosis: %s", stderr.String())
	}
}

func TestRunRejectsInvalidBuild(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-topo", "fattree", "-k", "3"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d for odd fat-tree arity, want 1 (stderr: %s)", code, stderr.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d for unknown flag, want 2", code)
	}
}
