// Command topoviz inspects HolDCSim topologies: it builds one of the
// supported architectures (paper Sec. III-B, Fig. 10) and prints its
// structure, degree distribution, and hop-count profile.
//
// Usage:
//
//	topoviz -topo fattree -k 4
//	topoviz -topo bcube -n 4 -k 1
//	topoviz -topo camcube -x 3 -y 3 -z 3
//	topoviz -topo flatbutterfly -rows 2 -cols 4 -c 2
//	topoviz -topo star -hosts 24
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"holdcsim/internal/topology"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run executes one CLI invocation; factored from main so tests drive
// the binary in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("topoviz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	topo := fs.String("topo", "fattree", "fattree|star|bcube|camcube|flatbutterfly")
	k := fs.Int("k", 4, "fat-tree arity / BCube level count")
	n := fs.Int("n", 4, "BCube switch port count")
	hosts := fs.Int("hosts", 24, "star host count")
	x := fs.Int("x", 3, "CamCube X")
	y := fs.Int("y", 3, "CamCube Y")
	z := fs.Int("z", 3, "CamCube Z")
	rows := fs.Int("rows", 2, "flattened butterfly rows")
	cols := fs.Int("cols", 4, "flattened butterfly cols")
	conc := fs.Int("c", 2, "flattened butterfly hosts per router")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var t topology.Topology
	switch *topo {
	case "fattree":
		t = topology.FatTree{K: *k}
	case "star":
		t = topology.Star{Hosts: *hosts}
	case "bcube":
		t = topology.BCube{N: *n, K: *k}
	case "camcube":
		t = topology.CamCube{X: *x, Y: *y, Z: *z}
	case "flatbutterfly":
		t = topology.FlattenedButterfly{Rows: *rows, Cols: *cols, Concentration: *conc}
	default:
		fmt.Fprintf(stderr, "topoviz: unknown topology %q\n", *topo)
		return 2
	}
	g, err := t.Build()
	if err != nil {
		fmt.Fprintln(stderr, "topoviz:", err)
		return 1
	}
	if err := g.Validate(); err != nil {
		fmt.Fprintln(stderr, "topoviz: validation:", err)
		return 1
	}

	hostsList := g.Hosts()
	switches := g.Switches()
	fmt.Fprintf(stdout, "topology %s\n", t.Name())
	fmt.Fprintf(stdout, "  nodes:    %d (%d hosts, %d switches)\n", g.NumNodes(), len(hostsList), len(switches))
	fmt.Fprintf(stdout, "  links:    %d\n", g.NumLinks())
	fmt.Fprintf(stdout, "  host transit: %v\n", g.AllowHostTransit)

	// Degree profile.
	degCount := map[int]int{}
	for i := 0; i < g.NumNodes(); i++ {
		degCount[g.Degree(topology.NodeID(i))]++
	}
	fmt.Fprintf(stdout, "  degrees:  ")
	for d := 0; d <= maxKey(degCount); d++ {
		if c := degCount[d]; c > 0 {
			fmt.Fprintf(stdout, "%dx deg%d  ", c, d)
		}
	}
	fmt.Fprintln(stdout)

	// Hop-count profile from host 0 to all other hosts.
	hops := map[int]int{}
	for _, h := range hostsList[1:] {
		hops[g.HopCount(hostsList[0], h)]++
	}
	fmt.Fprintf(stdout, "  hops from host 0: ")
	for d := 0; d <= maxKey(hops); d++ {
		if c := hops[d]; c > 0 {
			fmt.Fprintf(stdout, "%d hosts @ %d hops  ", c, d)
		}
	}
	fmt.Fprintln(stdout)

	// Example path between the two most distant hosts.
	far := hostsList[len(hostsList)-1]
	nodes, _, err := g.Path(hostsList[0], far, 0)
	if err == nil {
		fmt.Fprintf(stdout, "  sample path %d -> %d:", hostsList[0], far)
		for _, nd := range nodes {
			fmt.Fprintf(stdout, " %s", g.Node(nd).Name)
		}
		fmt.Fprintln(stdout)
	}
	return 0
}

func maxKey(m map[int]int) int {
	max := 0
	for k := range m {
		if k > max {
			max = k
		}
	}
	return max
}
