// Command topoviz inspects HolDCSim topologies: it builds one of the
// supported architectures (paper Sec. III-B, Fig. 10) and prints its
// structure, degree distribution, and hop-count profile.
//
// Usage:
//
//	topoviz -topo fattree -k 4
//	topoviz -topo bcube -n 4 -k 1
//	topoviz -topo camcube -x 3 -y 3 -z 3
//	topoviz -topo flatbutterfly -rows 2 -cols 4 -c 2
//	topoviz -topo star -hosts 24
package main

import (
	"flag"
	"fmt"
	"os"

	"holdcsim/internal/topology"
)

func main() {
	topo := flag.String("topo", "fattree", "fattree|star|bcube|camcube|flatbutterfly")
	k := flag.Int("k", 4, "fat-tree arity / BCube level count")
	n := flag.Int("n", 4, "BCube switch port count")
	hosts := flag.Int("hosts", 24, "star host count")
	x := flag.Int("x", 3, "CamCube X")
	y := flag.Int("y", 3, "CamCube Y")
	z := flag.Int("z", 3, "CamCube Z")
	rows := flag.Int("rows", 2, "flattened butterfly rows")
	cols := flag.Int("cols", 4, "flattened butterfly cols")
	conc := flag.Int("c", 2, "flattened butterfly hosts per router")
	flag.Parse()

	var t topology.Topology
	switch *topo {
	case "fattree":
		t = topology.FatTree{K: *k}
	case "star":
		t = topology.Star{Hosts: *hosts}
	case "bcube":
		t = topology.BCube{N: *n, K: *k}
	case "camcube":
		t = topology.CamCube{X: *x, Y: *y, Z: *z}
	case "flatbutterfly":
		t = topology.FlattenedButterfly{Rows: *rows, Cols: *cols, Concentration: *conc}
	default:
		fmt.Fprintf(os.Stderr, "topoviz: unknown topology %q\n", *topo)
		os.Exit(2)
	}
	g, err := t.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "topoviz:", err)
		os.Exit(1)
	}
	if err := g.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "topoviz: validation:", err)
		os.Exit(1)
	}

	hostsList := g.Hosts()
	switches := g.Switches()
	fmt.Printf("topology %s\n", t.Name())
	fmt.Printf("  nodes:    %d (%d hosts, %d switches)\n", g.NumNodes(), len(hostsList), len(switches))
	fmt.Printf("  links:    %d\n", g.NumLinks())
	fmt.Printf("  host transit: %v\n", g.AllowHostTransit)

	// Degree profile.
	degCount := map[int]int{}
	for i := 0; i < g.NumNodes(); i++ {
		degCount[g.Degree(topology.NodeID(i))]++
	}
	fmt.Printf("  degrees:  ")
	for d := 0; d <= maxKey(degCount); d++ {
		if c := degCount[d]; c > 0 {
			fmt.Printf("%dx deg%d  ", c, d)
		}
	}
	fmt.Println()

	// Hop-count profile from host 0 to all other hosts.
	hops := map[int]int{}
	for _, h := range hostsList[1:] {
		hops[g.HopCount(hostsList[0], h)]++
	}
	fmt.Printf("  hops from host 0: ")
	for d := 0; d <= maxKey(hops); d++ {
		if c := hops[d]; c > 0 {
			fmt.Printf("%d hosts @ %d hops  ", c, d)
		}
	}
	fmt.Println()

	// Example path between the two most distant hosts.
	far := hostsList[len(hostsList)-1]
	nodes, _, err := g.Path(hostsList[0], far, 0)
	if err == nil {
		fmt.Printf("  sample path %d -> %d:", hostsList[0], far)
		for _, nd := range nodes {
			fmt.Printf(" %s", g.Node(nd).Name)
		}
		fmt.Println()
	}
}

func maxKey(m map[int]int) int {
	max := 0
	for k := range m {
		if k > max {
			max = k
		}
	}
	return max
}
