module holdcsim

go 1.22
