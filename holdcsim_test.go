package holdcsim_test

import (
	"math"
	"testing"

	"holdcsim"
)

// The facade tests exercise the public API exactly as a downstream user
// would: no internal imports.

func TestPublicQuickstart(t *testing.T) {
	cfg := holdcsim.Config{
		Seed:         1,
		Servers:      8,
		ServerConfig: holdcsim.DefaultServerConfig(holdcsim.XeonE5_2680()),
		Placer:       holdcsim.LeastLoaded{},
		Arrivals:     holdcsim.Poisson{Rate: 2000},
		Factory:      holdcsim.SingleTask{Service: holdcsim.WebSearchService()},
		MaxJobs:      2000,
	}
	dc, err := holdcsim.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsCompleted != 2000 {
		t.Fatalf("jobs = %d", res.JobsCompleted)
	}
	if res.Latency.Percentile(99) <= 0 {
		t.Error("no latency percentiles")
	}
	if res.ServerEnergyJ <= 0 {
		t.Error("no energy")
	}
}

func TestPublicNetworkedRun(t *testing.T) {
	cfg := holdcsim.Config{
		Seed:          2,
		Servers:       16,
		ServerConfig:  holdcsim.DefaultServerConfig(holdcsim.FourCoreServer()),
		Topology:      holdcsim.FatTree{K: 4, RateBps: 10e9},
		NetworkConfig: holdcsim.DefaultNetworkConfig(holdcsim.DataCenter10G(8)),
		CommMode:      holdcsim.CommFlow,
		Placer:        holdcsim.PackFirst{},
		Arrivals:      holdcsim.Poisson{Rate: 50},
		Factory: holdcsim.TwoTier{
			AppService: holdcsim.WebSearchService(),
			DBService:  holdcsim.WebServingService(),
			Bytes:      5 << 20,
		},
		MaxJobs: 300,
	}
	dc, err := holdcsim.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsCompleted != 300 {
		t.Fatalf("jobs = %d", res.JobsCompleted)
	}
	if res.NetworkEnergyJ <= 0 {
		t.Error("no network energy")
	}
}

func TestPublicPolicies(t *testing.T) {
	pool := holdcsim.NewAdaptivePool(8, 4, holdcsim.Second)
	cfg := holdcsim.Config{
		Seed:         3,
		Servers:      6,
		ServerConfig: holdcsim.DefaultServerConfig(holdcsim.XeonE5_2680()),
		Placer:       pool,
		Controller:   pool,
		Arrivals:     holdcsim.Poisson{Rate: holdcsim.UtilizationRate(0.2, 6, 10, 0.005)},
		Factory:      holdcsim.SingleTask{Service: holdcsim.WebSearchService()},
		Duration:     20 * holdcsim.Second,
	}
	dc, err := holdcsim.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dc.Run()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, f := range res.Residency {
		sum += f
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("residency sums to %v", sum)
	}
	if res.Residency[holdcsim.StateSysSleep] <= 0 {
		t.Errorf("adaptive pool produced no system sleep: %v", res.Residency)
	}
}

func TestPublicTraces(t *testing.T) {
	r := holdcsim.NewRNG(7)
	wiki := holdcsim.SyntheticWikipedia(300, 30, r.Split("w"))
	if wiki.Len() == 0 {
		t.Fatal("empty wikipedia trace")
	}
	nlanr := holdcsim.SyntheticNLANR(300, r.Split("n"))
	if nlanr.Len() == 0 {
		t.Fatal("empty nlanr trace")
	}
	cfg := holdcsim.Config{
		Seed:         4,
		Servers:      4,
		ServerConfig: holdcsim.DefaultServerConfig(holdcsim.FourCoreServer()),
		Placer:       holdcsim.LeastLoaded{},
		Arrivals:     holdcsim.NewTraceReplay(wiki),
		Factory:      holdcsim.SingleTask{Service: holdcsim.WikipediaService()},
		Duration:     300 * holdcsim.Second,
	}
	dc, err := holdcsim.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsCompleted == 0 {
		t.Error("trace replay completed no jobs")
	}
}

func TestPublicMMPP(t *testing.T) {
	m, err := holdcsim.NewMMPP2(200, 20, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := holdcsim.Config{
		Seed:         5,
		Servers:      4,
		ServerConfig: holdcsim.DefaultServerConfig(holdcsim.FourCoreServer()),
		Placer:       holdcsim.LeastLoaded{},
		Arrivals:     holdcsim.MMPP{Proc: m},
		Factory:      holdcsim.SingleTask{Service: holdcsim.WebSearchService()},
		MaxJobs:      1000,
	}
	dc, err := holdcsim.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsCompleted != 1000 {
		t.Errorf("jobs = %d", res.JobsCompleted)
	}
}

func TestPublicEngineAndTimer(t *testing.T) {
	eng := holdcsim.NewEngine()
	fired := 0
	tm := holdcsim.NewTimer(eng, func() { fired++ })
	tm.Reset(5 * holdcsim.Millisecond)
	eng.Run()
	if fired != 1 {
		t.Errorf("timer fired %d times", fired)
	}
	if eng.Now() != 5*holdcsim.Millisecond {
		t.Errorf("clock = %v", eng.Now())
	}
	if holdcsim.Seconds(1.5) != 1500*holdcsim.Millisecond {
		t.Error("Seconds conversion broken")
	}
}

func TestPublicStandaloneServer(t *testing.T) {
	eng := holdcsim.NewEngine()
	srv, err := holdcsim.NewServer(0, eng, holdcsim.DefaultServerConfig(holdcsim.XeonE5_2680()))
	if err != nil {
		t.Fatal(err)
	}
	if srv.Cores() != 10 {
		t.Errorf("cores = %d", srv.Cores())
	}
	eng.RunUntil(holdcsim.Second)
	if srv.Power() <= 0 {
		t.Error("no idle power")
	}
}
