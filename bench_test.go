// Benchmarks regenerating every table and figure of the paper (one
// testing.B target per artifact; see DESIGN.md's experiment index) plus
// ablation benches for the design choices the implementation calls out.
//
// Each bench reports domain metrics (energy, latency percentiles, power
// savings) via b.ReportMetric alongside the usual ns/op, so
// `go test -bench=. -benchmem` doubles as a results table.
package holdcsim_test

import (
	"testing"

	"holdcsim"
	"holdcsim/internal/experiments"
	"holdcsim/internal/runner"
)

// serialExec pins experiment benchmarks to one worker so their ns/op
// stays comparable with the serial trajectory recorded in
// BENCH_engine.json (cmd/benchrunner measures parallel campaign
// speedup explicitly; these targets guard the hot path).
var serialExec = runner.Options{Workers: 1}

// ---------------------------------------------------------------------
// Table & figure regeneration (paper Secs. IV, V and Table I).
// ---------------------------------------------------------------------

func BenchmarkTableIScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := experiments.QuickTableI()
		p.Exec = serialExec
		r, err := experiments.TableI(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.EventsPerSec, "events/s")
	}
}

func BenchmarkFig4Provisioning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := experiments.QuickFig4()
		p.Exec = serialExec
		r, err := experiments.Fig4(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MeanActive, "active-servers")
	}
}

func BenchmarkFig5DelayTimerSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := experiments.QuickFig5()
		p.Exec = serialExec
		r, err := experiments.Fig5(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(r.Points)), "sweep-points")
	}
}

func BenchmarkFig6DualTimer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := experiments.QuickFig6()
		p.Exec = serialExec
		r, err := experiments.Fig6(p)
		if err != nil {
			b.Fatal(err)
		}
		best := 0.0
		for _, pt := range r.Points {
			if pt.ReductionPct > best {
				best = pt.ReductionPct
			}
		}
		b.ReportMetric(best, "best-saving-%")
	}
}

func BenchmarkFig8Residency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := experiments.QuickFig8()
		p.Exec = serialExec
		r, err := experiments.Fig8(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].SysSleep*100, "low-rho-syssleep-%")
	}
}

func BenchmarkFig9EnergyBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := experiments.QuickFig9()
		p.Exec = serialExec
		r, err := experiments.Fig9(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SavingPct, "adaptive-saving-%")
	}
}

func BenchmarkFig11JointOptimization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := experiments.QuickFig11()
		p.Exec = serialExec
		r, err := experiments.Fig11(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ServerSavingPct[0.3], "server-saving-%")
		b.ReportMetric(r.NetworkSavingPct[0.3], "network-saving-%")
	}
}

func BenchmarkFig12ServerValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := experiments.QuickFig12()
		p.Exec = serialExec
		r, err := experiments.Fig12(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MeanAbsDiffW, "mean-abs-diff-W")
	}
}

func BenchmarkFig13SwitchValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := experiments.QuickFig13()
		p.Exec = serialExec
		r, err := experiments.Fig13(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MeanAbsDiffW, "mean-abs-diff-W")
	}
}

// ---------------------------------------------------------------------
// Ablations (design choices listed in DESIGN.md Sec. 6).
// ---------------------------------------------------------------------

// BenchmarkAblationLocalQueue compares the unified local queue against
// per-core queues (Sec. II, citing Li et al. [37] on tail latency).
func BenchmarkAblationLocalQueue(b *testing.B) {
	for _, mode := range []struct {
		name string
		qm   holdcsim.QueueMode
	}{{"unified", holdcsim.QueueUnified}, {"percore", holdcsim.QueuePerCore}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sc := holdcsim.DefaultServerConfig(holdcsim.XeonE5_2680())
				sc.QueueMode = mode.qm
				cfg := holdcsim.Config{
					Seed:         1,
					Servers:      4,
					ServerConfig: sc,
					Placer:       holdcsim.LeastLoaded{},
					Arrivals: holdcsim.Poisson{
						Rate: holdcsim.UtilizationRate(0.7, 4, 10, 0.005)},
					Factory: holdcsim.SingleTask{Service: holdcsim.WebSearchService()},
					MaxJobs: 20000,
				}
				dc, err := holdcsim.Build(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := dc.Run()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Latency.Percentile(99)*1e3, "p99-ms")
			}
		})
	}
}

// BenchmarkAblationECMP compares single-path routing against ECMP flow
// spreading on a fat-tree under concurrent cross-pod flows.
func BenchmarkAblationECMP(b *testing.B) {
	for _, ecmp := range []struct {
		name string
		on   bool
	}{{"single-path", false}, {"ecmp", true}} {
		b.Run(ecmp.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ncfg := holdcsim.DefaultNetworkConfig(holdcsim.DataCenter10G(6))
				ncfg.ECMP = ecmp.on
				cfg := holdcsim.Config{
					Seed:          2,
					Servers:       16,
					ServerConfig:  holdcsim.DefaultServerConfig(holdcsim.FourCoreServer()),
					Topology:      holdcsim.FatTree{K: 4, RateBps: 10e9},
					NetworkConfig: ncfg,
					CommMode:      holdcsim.CommFlow,
					Placer:        holdcsim.RoundRobin{},
					Arrivals:      holdcsim.Poisson{Rate: 100},
					Factory: holdcsim.TwoTier{
						AppService: holdcsim.WebSearchService(),
						DBService:  holdcsim.WebSearchService(),
						Bytes:      20e6,
					},
					MaxJobs: 1500,
				}
				dc, err := holdcsim.Build(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := dc.Run()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Latency.Percentile(95)*1e3, "p95-ms")
			}
		})
	}
}

// BenchmarkAblationPacketVsFlow sends identical traffic through the
// packet-level and flow-level models (Sec. III-B's two granularities).
func BenchmarkAblationPacketVsFlow(b *testing.B) {
	for _, mode := range []struct {
		name string
		cm   holdcsim.CommMode
	}{{"flow", holdcsim.CommFlow}, {"packet", holdcsim.CommPacket}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := holdcsim.Config{
					Seed:          3,
					Servers:       8,
					ServerConfig:  holdcsim.DefaultServerConfig(holdcsim.FourCoreServer()),
					Topology:      holdcsim.Star{Hosts: 8, RateBps: 1e9},
					NetworkConfig: holdcsim.DefaultNetworkConfig(holdcsim.Cisco2960_24()),
					CommMode:      mode.cm,
					Placer:        holdcsim.RoundRobin{},
					Arrivals:      holdcsim.Poisson{Rate: 200},
					Factory: holdcsim.TwoTier{
						AppService: holdcsim.WebSearchService(),
						DBService:  holdcsim.WebSearchService(),
						Bytes:      100_000,
					},
					MaxJobs: 2000,
				}
				dc, err := holdcsim.Build(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := dc.Run()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Latency.Mean()*1e3, "mean-ms")
			}
		})
	}
}

// BenchmarkAblationGlobalQueue compares push dispatch against the
// central global task queue (Sec. III-E).
func BenchmarkAblationGlobalQueue(b *testing.B) {
	for _, mode := range []struct {
		name string
		gq   bool
	}{{"push", false}, {"global-queue", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := holdcsim.Config{
					Seed:           4,
					Servers:        8,
					ServerConfig:   holdcsim.DefaultServerConfig(holdcsim.FourCoreServer()),
					Placer:         holdcsim.LeastLoaded{},
					UseGlobalQueue: mode.gq,
					Arrivals: holdcsim.Poisson{
						Rate: holdcsim.UtilizationRate(0.8, 8, 4, 0.005)},
					Factory: holdcsim.SingleTask{Service: holdcsim.WebSearchService()},
					MaxJobs: 20000,
				}
				dc, err := holdcsim.Build(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := dc.Run()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Latency.Percentile(99)*1e3, "p99-ms")
			}
		})
	}
}

// BenchmarkAblationMMPP sweeps the burstiness ratio Ra at fixed mean
// rate (Sec. III-D's two burstiness knobs).
func BenchmarkAblationMMPP(b *testing.B) {
	for _, ra := range []struct {
		name  string
		ratio float64
	}{{"Ra1-poisson", 1}, {"Ra10", 10}, {"Ra40", 40}} {
		b.Run(ra.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				const meanRate = 1600.0
				var arrivals holdcsim.ArrivalProcess = holdcsim.Poisson{Rate: meanRate}
				if ra.ratio > 1 {
					frac := 0.1
					lambdaL := meanRate / (frac*ra.ratio + (1 - frac))
					m, err := holdcsim.NewMMPP2(lambdaL*ra.ratio, lambdaL, 1, 9)
					if err != nil {
						b.Fatal(err)
					}
					arrivals = holdcsim.MMPP{Proc: m}
				}
				cfg := holdcsim.Config{
					Seed:         5,
					Servers:      10,
					ServerConfig: holdcsim.DefaultServerConfig(holdcsim.FourCoreServer()),
					Placer:       holdcsim.LeastLoaded{},
					Arrivals:     arrivals,
					Factory:      holdcsim.SingleTask{Service: holdcsim.WebSearchService()},
					MaxJobs:      20000,
				}
				dc, err := holdcsim.Build(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := dc.Run()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Latency.Percentile(99)*1e3, "p99-ms")
			}
		})
	}
}

// BenchmarkAblationDVFS fixes the farm at each P-state and reports the
// energy/latency trade-off of frequency scaling (Sec. III-A P-states).
func BenchmarkAblationDVFS(b *testing.B) {
	for pidx, name := range []string{"P0", "P1", "P2", "P3"} {
		pidx := pidx
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := holdcsim.Config{
					Seed:         6,
					Servers:      4,
					ServerConfig: holdcsim.DefaultServerConfig(holdcsim.XeonE5_2680()),
					Placer:       holdcsim.LeastLoaded{},
					Arrivals: holdcsim.Poisson{
						Rate: holdcsim.UtilizationRate(0.3, 4, 10, 0.005)},
					Factory: holdcsim.SingleTask{Service: holdcsim.WebSearchService()},
					MaxJobs: 10000,
				}
				dc, err := holdcsim.Build(cfg)
				if err != nil {
					b.Fatal(err)
				}
				for _, srv := range dc.Servers {
					if err := srv.SetPState(pidx); err != nil {
						b.Fatal(err)
					}
				}
				res, err := dc.Run()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.CPUEnergyJ, "cpu-J")
				b.ReportMetric(res.Latency.Percentile(95)*1e3, "p95-ms")
			}
		})
	}
}

// BenchmarkAblationHeterogeneous compares a homogeneous farm against a
// big.LITTLE-style mix with the same aggregate compute capacity
// (Sec. II: "heterogeneous processors with performance varying cores").
func BenchmarkAblationHeterogeneous(b *testing.B) {
	mixes := []struct {
		name   string
		speeds []float64
	}{
		{"homogeneous", nil}, // all 1.0
		{"big-little", []float64{1.6, 1.6, 1.6, 1.6, 1.6, 0.4, 0.4, 0.4, 0.4, 0.4}},
	}
	for _, mix := range mixes {
		mix := mix
		b.Run(mix.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sc := holdcsim.DefaultServerConfig(holdcsim.XeonE5_2680())
				sc.CoreSpeeds = mix.speeds
				cfg := holdcsim.Config{
					Seed:         7,
					Servers:      4,
					ServerConfig: sc,
					Placer:       holdcsim.LeastLoaded{},
					Arrivals: holdcsim.Poisson{
						Rate: holdcsim.UtilizationRate(0.5, 4, 10, 0.005)},
					Factory: holdcsim.SingleTask{Service: holdcsim.WebSearchService()},
					MaxJobs: 10000,
				}
				dc, err := holdcsim.Build(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := dc.Run()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Latency.Percentile(99)*1e3, "p99-ms")
			}
		})
	}
}

// BenchmarkEngineThroughput measures raw event dispatch rate — the
// figure behind Table I's scalability row.
func BenchmarkEngineThroughput(b *testing.B) {
	eng := holdcsim.NewEngine()
	count := 0
	var reschedule func()
	reschedule = func() {
		count++
		if count < b.N {
			eng.After(holdcsim.Microsecond, reschedule)
		}
	}
	b.ResetTimer()
	eng.After(holdcsim.Microsecond, reschedule)
	eng.Run()
}
