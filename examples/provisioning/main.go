// Provisioning: reproduce the shape of the paper's Fig. 4 case study —
// a 50-server farm fed by a diurnal Wikipedia-like trace, with a
// threshold provisioner that parks and activates servers as the load
// swings. Prints a small ASCII chart of active servers over time.
//
// Run with: go run ./examples/provisioning
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"holdcsim"
)

func main() {
	if err := run(os.Stdout, 600); err != nil {
		log.Fatal(err)
	}
}

// run simulates durationSec seconds of the diurnal trace; the full
// example uses 600 s, tests shorten it.
func run(w io.Writer, durationSec float64) error {
	const (
		servers  = 50
		meanRate = 6000 // requests/second across the farm
	)

	// Synthetic Wikipedia-like trace: diurnal swing + jitter + flash
	// crowds (the paper replays the real Wikipedia trace [59]).
	tr := holdcsim.SyntheticWikipedia(durationSec, meanRate, holdcsim.NewRNG(7))

	prov := holdcsim.NewProvisioner(0.8, 2.5) // min/max jobs per active server
	cfg := holdcsim.Config{
		Seed:         7,
		Servers:      servers,
		ServerConfig: holdcsim.DefaultServerConfig(holdcsim.FourCoreServer()),
		Placer:       prov,
		Controller:   prov,
		Arrivals:     holdcsim.NewTraceReplay(tr),
		Factory:      holdcsim.SingleTask{Service: holdcsim.WikipediaService()},
		Duration:     holdcsim.Time(durationSec) * holdcsim.Second,
	}
	dc, err := holdcsim.Build(cfg)
	if err != nil {
		return err
	}

	// Sample the active-server count every 10 simulated seconds.
	type sample struct {
		t      holdcsim.Time
		active int
		jobs   int
	}
	var samples []sample
	var tick func()
	tick = func() {
		samples = append(samples, sample{dc.Eng.Now(), prov.ActiveServers(), dc.Sched.JobsInSystem()})
		if dc.Eng.Now()+10*holdcsim.Second <= cfg.Duration {
			dc.Eng.After(10*holdcsim.Second, tick)
		}
	}
	// First sample after the provisioner has seen its first arrival.
	dc.Eng.Schedule(10*holdcsim.Second, tick)

	res, err := dc.Run()
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "%d jobs served; active servers over time:\n\n", res.JobsCompleted)
	fmt.Fprintln(w, "  time   jobs  active servers")
	for _, s := range samples {
		bar := strings.Repeat("#", s.active)
		fmt.Fprintf(w, "%5.0fs  %5d  %2d %s\n", s.t.Seconds(), s.jobs, s.active, bar)
	}
	fmt.Fprintf(w, "\nmean latency %.2f ms, p95 %.2f ms, energy %.0f kJ\n",
		res.Latency.Mean()*1e3, res.Latency.Percentile(95)*1e3, res.ServerEnergyJ/1e3)
	return nil
}
