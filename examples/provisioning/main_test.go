package main

import (
	"strings"
	"testing"
)

func TestRun(t *testing.T) {
	// 60 s of trace instead of the example's 600 s keeps the test fast.
	var out strings.Builder
	if err := run(&out, 60); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"jobs served", "active servers", "mean latency"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
	if !strings.Contains(got, "#") {
		t.Fatalf("ASCII chart has no bars:\n%s", got)
	}
}
