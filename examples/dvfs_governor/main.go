// DVFS governor: attach an ondemand-style frequency controller to every
// server (paper Sec. III-A P-states) and compare it against the two
// static extremes at a steady mid utilization: full speed (P0, lowest
// latency, highest active power) and lowest speed (P3, cheapest joules
// per op under the cubic power rule, but queueing blows up once the
// slowed cores can't keep pace). The governor settles on the deepest
// operating point that still tracks the load.
//
// Run with: go run ./examples/dvfs_governor
package main

import (
	"fmt"
	"log"

	"holdcsim"
)

func main() {
	const servers = 4

	run := func(mode string) *holdcsim.Results {
		cfg := holdcsim.Config{
			Seed:         17,
			Servers:      servers,
			ServerConfig: holdcsim.DefaultServerConfig(holdcsim.XeonE5_2680()),
			Placer:       holdcsim.LeastLoaded{},
			// Steady 45% of nominal capacity: P3 (0.55x speed) runs at
			// ~82% effective utilization, P0 at 45%.
			Arrivals: holdcsim.Poisson{
				Rate: holdcsim.UtilizationRate(0.45, servers, 10, 0.005)},
			Factory:  holdcsim.SingleTask{Service: holdcsim.Deterministic{Value: 0.005}},
			Duration: 30 * holdcsim.Second,
		}
		dc, err := holdcsim.Build(cfg)
		if err != nil {
			log.Fatal(err)
		}
		switch mode {
		case "static-P0":
			// Nominal frequency (default).
		case "static-P3":
			for _, srv := range dc.Servers {
				if err := srv.SetPState(3); err != nil {
					log.Fatal(err)
				}
			}
		case "governor":
			for _, srv := range dc.Servers {
				holdcsim.NewDVFSGovernor(srv).Start()
			}
		}
		res, err := dc.Run()
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Println("steady 45% load, 4 x 10-core servers, 5 ms deterministic requests")
	fmt.Printf("\n%-12s %14s %10s %10s\n", "mode", "cpu-energy(J)", "p95(ms)", "p99(ms)")
	for _, mode := range []string{"static-P0", "static-P3", "governor"} {
		res := run(mode)
		fmt.Printf("%-12s %14.1f %10.2f %10.2f\n", mode,
			res.CPUEnergyJ, res.Latency.Percentile(95)*1e3, res.Latency.Percentile(99)*1e3)
	}
	fmt.Println("\nThe governor finds an operating point between the extremes,")
	fmt.Println("trading some of P0's latency headroom for a sizable share of")
	fmt.Println("P3's energy saving while keeping tails below P3's.")
}
