// DVFS governor: attach an ondemand-style frequency controller to every
// server (paper Sec. III-A P-states) and compare it against the two
// static extremes at a steady mid utilization: full speed (P0, lowest
// latency, highest active power) and lowest speed (P3, cheapest joules
// per op under the cubic power rule, but queueing blows up once the
// slowed cores can't keep pace). The governor settles on the deepest
// operating point that still tracks the load.
//
// Run with: go run ./examples/dvfs_governor
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"holdcsim"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	const servers = 4

	sim := func(mode string) (*holdcsim.Results, error) {
		cfg := holdcsim.Config{
			Seed:         17,
			Servers:      servers,
			ServerConfig: holdcsim.DefaultServerConfig(holdcsim.XeonE5_2680()),
			Placer:       holdcsim.LeastLoaded{},
			// Steady 45% of nominal capacity: P3 (0.55x speed) runs at
			// ~82% effective utilization, P0 at 45%.
			Arrivals: holdcsim.Poisson{
				Rate: holdcsim.UtilizationRate(0.45, servers, 10, 0.005)},
			Factory:  holdcsim.SingleTask{Service: holdcsim.Deterministic{Value: 0.005}},
			Duration: 30 * holdcsim.Second,
		}
		dc, err := holdcsim.Build(cfg)
		if err != nil {
			return nil, err
		}
		switch mode {
		case "static-P0":
			// Nominal frequency (default).
		case "static-P3":
			for _, srv := range dc.Servers {
				if err := srv.SetPState(3); err != nil {
					return nil, err
				}
			}
		case "governor":
			for _, srv := range dc.Servers {
				holdcsim.NewDVFSGovernor(srv).Start()
			}
		}
		return dc.Run()
	}

	fmt.Fprintln(w, "steady 45% load, 4 x 10-core servers, 5 ms deterministic requests")
	fmt.Fprintf(w, "\n%-12s %14s %10s %10s\n", "mode", "cpu-energy(J)", "p95(ms)", "p99(ms)")
	for _, mode := range []string{"static-P0", "static-P3", "governor"} {
		res, err := sim(mode)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s %14.1f %10.2f %10.2f\n", mode,
			res.CPUEnergyJ, res.Latency.Percentile(95)*1e3, res.Latency.Percentile(99)*1e3)
	}
	fmt.Fprintln(w, "\nThe governor finds an operating point between the extremes,")
	fmt.Fprintln(w, "trading some of P0's latency headroom for a sizable share of")
	fmt.Fprintln(w, "P3's energy saving while keeping tails below P3's.")
	return nil
}
