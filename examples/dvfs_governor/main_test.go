package main

import (
	"strings"
	"testing"
)

func TestRun(t *testing.T) {
	var out strings.Builder
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"static-P0", "static-P3", "governor"} {
		if !strings.Contains(got, want) {
			t.Fatalf("row %q missing:\n%s", want, got)
		}
	}
}
