package main

import (
	"strings"
	"testing"
)

func TestRun(t *testing.T) {
	var out strings.Builder
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"completed", "latency:", "energy:", "residency:"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}
