// Quickstart: simulate a 16-server web-search farm under Poisson load
// and print latency and energy statistics.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"holdcsim"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	cfg := holdcsim.Config{
		Seed:         42,
		Servers:      16,
		ServerConfig: holdcsim.DefaultServerConfig(holdcsim.XeonE5_2680()),
		Placer:       holdcsim.LeastLoaded{},

		// 30% utilization of 16 servers x 10 cores at 5 ms mean service.
		Arrivals: holdcsim.Poisson{
			Rate: holdcsim.UtilizationRate(0.30, 16, 10, 0.005)},
		Factory: holdcsim.SingleTask{Service: holdcsim.WebSearchService()},

		Duration: 30 * holdcsim.Second,
		Warmup:   2 * holdcsim.Second,
	}

	dc, err := holdcsim.Build(cfg)
	if err != nil {
		return err
	}
	res, err := dc.Run()
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "completed %d jobs in %.0f simulated seconds\n",
		res.JobsCompleted, res.End.Seconds())
	fmt.Fprintf(w, "latency:  mean %.2f ms   p95 %.2f ms   p99 %.2f ms\n",
		res.Latency.Mean()*1e3, res.Latency.Percentile(95)*1e3,
		res.Latency.Percentile(99)*1e3)
	fmt.Fprintf(w, "energy:   %.1f kJ total (%.1f W mean)\n",
		res.ServerEnergyJ/1e3, res.MeanServerPowerW)
	fmt.Fprintf(w, "residency: Active %.1f%%  Idle %.1f%%  PkgC6 %.1f%%\n",
		res.Residency[holdcsim.StateActive]*100,
		res.Residency[holdcsim.StateIdle]*100,
		res.Residency[holdcsim.StatePkgC6]*100)
	return nil
}
