// Bursty MMPP: explore how workload burstiness (2-state Markov-Modulated
// Poisson arrivals, paper Sec. III-D) interacts with a delay-timer sleep
// policy. At the same average load, increasing the burst ratio
// Ra = λh/λl concentrates arrivals, which stretches idle gaps — deeper
// sleep — but also punishes servers woken mid-burst.
//
// Run with: go run ./examples/bursty_mmpp
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"holdcsim"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	const (
		servers  = 20
		meanRate = 2400.0 // arrivals/second, fixed across burst ratios
	)

	fmt.Fprintf(w, "MMPP burstiness sweep at fixed mean rate %.0f/s, 20 servers, tau = 0.8 s\n\n", meanRate)
	fmt.Fprintf(w, "%6s %12s %10s %10s %12s %10s\n",
		"Ra", "energy(kJ)", "p95(ms)", "p99(ms)", "sys-sleep%", "wakeups")

	for _, ratio := range []float64{1, 5, 20, 50} {
		var arrivals holdcsim.ArrivalProcess
		if ratio == 1 {
			arrivals = holdcsim.Poisson{Rate: meanRate}
		} else {
			// 10% of time bursty: solve λl from the fixed mean rate.
			frac := 0.10
			lambdaL := meanRate / (frac*ratio + (1 - frac))
			m, err := holdcsim.NewMMPP2(lambdaL*ratio, lambdaL, frac*10, (1-frac)*10)
			if err != nil {
				return err
			}
			arrivals = holdcsim.MMPP{Proc: m}
		}

		sc := holdcsim.DefaultServerConfig(holdcsim.FourCoreServer())
		sc.DelayTimerEnabled = true
		sc.DelayTimer = holdcsim.Seconds(0.8)

		cfg := holdcsim.Config{
			Seed:         31,
			Servers:      servers,
			ServerConfig: sc,
			Placer:       holdcsim.PackFirst{},
			Arrivals:     arrivals,
			Factory:      holdcsim.SingleTask{Service: holdcsim.WebSearchService()},
			Duration:     60 * holdcsim.Second,
		}
		dc, err := holdcsim.Build(cfg)
		if err != nil {
			return err
		}
		res, err := dc.Run()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%6.0f %12.1f %10.2f %10.2f %11.1f%% %10d\n",
			ratio, res.ServerEnergyJ/1e3,
			res.Latency.Percentile(95)*1e3, res.Latency.Percentile(99)*1e3,
			res.Residency[holdcsim.StateSysSleep]*100, res.ServerWakeups)
	}
	fmt.Fprintln(w, "\nNote the paper's caveat (Sec. IV-B): a single delay timer degrades")
	fmt.Fprintln(w, "under highly bursty arrivals — tail latency grows with Ra while the")
	fmt.Fprintln(w, "energy saved by sleeping shrinks.")
	return nil
}
