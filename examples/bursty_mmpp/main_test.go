package main

import (
	"strings"
	"testing"
)

func TestRun(t *testing.T) {
	var out strings.Builder
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "MMPP burstiness sweep") {
		t.Fatalf("header missing:\n%s", got)
	}
	// One table row per burst ratio.
	for _, ratio := range []string{"     1 ", "     5 ", "    20 ", "    50 "} {
		if !strings.Contains(got, ratio) {
			t.Fatalf("row for ratio %q missing:\n%s", strings.TrimSpace(ratio), got)
		}
	}
}
