package main

import (
	"strings"
	"testing"
)

func TestRun(t *testing.T) {
	var out strings.Builder
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"QoS target", "active-idle", "delay-timer", "adaptive"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
	if !strings.Contains(got, "MET") && !strings.Contains(got, "MISS") {
		t.Fatalf("no QoS verdict in output:\n%s", got)
	}
}
