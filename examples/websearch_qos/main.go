// Web-search QoS: compare three power-management policies on a
// latency-critical workload against a QoS target of 2x the mean service
// time (the paper's Sec. IV-C setting) — the energy/latency trade-off
// that motivates hierarchical sleep-state management.
//
//   - Active-Idle: servers never sleep (baseline).
//   - Delay timer: every server suspends after τ idle.
//   - Workload-adaptive (WASP-style): dual pools, package C6 in the
//     active pool, suspend-to-RAM in the sleep pool.
//
// Run with: go run ./examples/websearch_qos
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"holdcsim"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	const (
		servers = 10
		rho     = 0.3
		qos     = 2 * 0.005 // 2x mean service time, seconds
	)

	type outcome struct {
		name    string
		energyJ float64
		p95     float64
		sleep   float64
	}
	var results []outcome

	for _, policy := range []string{"active-idle", "delay-timer", "adaptive"} {
		cfg := holdcsim.Config{
			Seed:         9,
			Servers:      servers,
			ServerConfig: holdcsim.DefaultServerConfig(holdcsim.XeonE5_2680()),
			Arrivals: holdcsim.Poisson{
				Rate: holdcsim.UtilizationRate(rho, servers, 10, 0.005)},
			// Deterministic 5 ms requests: with exponential services the
			// p95 of service time alone would exceed a 2x-mean QoS target.
			Factory:  holdcsim.SingleTask{Service: holdcsim.Deterministic{Value: 0.005}},
			Duration: 60 * holdcsim.Second,
		}
		switch policy {
		case "active-idle":
			cfg.Placer = holdcsim.LeastLoaded{}
		case "delay-timer":
			cfg.Placer = holdcsim.PackFirst{}
			cfg.ServerConfig.DelayTimerEnabled = true
			cfg.ServerConfig.DelayTimer = holdcsim.Seconds(0.8)
		case "adaptive":
			pool := holdcsim.NewAdaptivePool(8, 4, holdcsim.Second)
			cfg.Placer = pool
			cfg.Controller = pool
		}
		dc, err := holdcsim.Build(cfg)
		if err != nil {
			return err
		}
		res, err := dc.Run()
		if err != nil {
			return err
		}
		results = append(results, outcome{
			name:    policy,
			energyJ: res.ServerEnergyJ,
			p95:     res.Latency.Percentile(95),
			sleep:   res.Residency[holdcsim.StateSysSleep] + res.Residency[holdcsim.StatePkgC6],
		})
	}

	base := results[0].energyJ
	fmt.Fprintf(w, "web search at %.0f%% utilization, QoS target p95 <= %.0f ms\n\n", rho*100, qos*1e3)
	fmt.Fprintf(w, "%-14s %10s %9s %8s %11s %6s\n", "policy", "energy(kJ)", "saving", "p95(ms)", "low-power%", "QoS")
	for _, r := range results {
		verdict := "MET"
		if r.p95 > qos {
			verdict = "MISS"
		}
		fmt.Fprintf(w, "%-14s %10.1f %8.1f%% %8.2f %10.1f%% %6s\n",
			r.name, r.energyJ/1e3, 100*(base-r.energyJ)/base, r.p95*1e3, r.sleep*100, verdict)
	}
	return nil
}
