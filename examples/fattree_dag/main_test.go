package main

import (
	"strings"
	"testing"
)

func TestRun(t *testing.T) {
	var out strings.Builder
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"server-balanced", "server-network-aware", "savings:"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}
