// Fat-tree DAG: run task graphs with large inter-task flows over a k=4
// fat-tree (the paper's Fig. 10 topology) and compare Server-Balanced
// placement against the Server-Network-Aware policy of Sec. IV-D, which
// wakes the fewest additional switches.
//
// Run with: go run ./examples/fattree_dag
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"holdcsim"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	const jobs = 600

	sim := func(networkAware bool) (*holdcsim.Results, error) {
		sc := holdcsim.DefaultServerConfig(holdcsim.FourCoreServer())
		sc.DelayTimerEnabled = true
		sc.DelayTimer = holdcsim.Second

		ncfg := holdcsim.DefaultNetworkConfig(holdcsim.DataCenter10G(6))
		ncfg.SwitchSleepIdle = holdcsim.Seconds(0.5)

		cfg := holdcsim.Config{
			Seed:          21,
			Servers:       16,
			ServerConfig:  sc,
			Topology:      holdcsim.FatTree{K: 4, RateBps: 10e9},
			NetworkConfig: ncfg,
			CommMode:      holdcsim.CommFlow,
			Arrivals:      holdcsim.Poisson{Rate: 40},
			Factory: holdcsim.RandomDAG{
				Layers: 3, MaxWidth: 3, MaxDeps: 2,
				MinSize: 20 * holdcsim.Millisecond, MaxSize: 80 * holdcsim.Millisecond,
				EdgeBytes: 25e6, // 25 MB result transfers between tasks
			},
			MaxJobs: jobs,
		}
		if networkAware {
			cfg.PlacerFor = func(net *holdcsim.Network, hostOf holdcsim.HostMapper) holdcsim.Placer {
				return holdcsim.NetworkAware{Net: net, HostOf: hostOf}
			}
		} else {
			cfg.Placer = holdcsim.LeastLoaded{}
		}
		dc, err := holdcsim.Build(cfg)
		if err != nil {
			return nil, err
		}
		return dc.Run()
	}

	balanced, err := sim(false)
	if err != nil {
		return err
	}
	aware, err := sim(true)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "%d DAG jobs over a k=4 fat-tree, 25 MB inter-task flows\n\n", jobs)
	fmt.Fprintf(w, "%-22s %12s %12s %10s %10s\n", "policy", "server(W)", "network(W)", "p95(ms)", "flows")
	fmt.Fprintf(w, "%-22s %12.1f %12.1f %10.1f %10d\n", "server-balanced",
		balanced.MeanServerPowerW, balanced.MeanNetworkPowerW,
		balanced.Latency.Percentile(95)*1e3, balanced.NetStats.FlowsCompleted)
	fmt.Fprintf(w, "%-22s %12.1f %12.1f %10.1f %10d\n", "server-network-aware",
		aware.MeanServerPowerW, aware.MeanNetworkPowerW,
		aware.Latency.Percentile(95)*1e3, aware.NetStats.FlowsCompleted)
	fmt.Fprintf(w, "\nsavings: %.1f%% server power, %.1f%% network power\n",
		100*(balanced.MeanServerPowerW-aware.MeanServerPowerW)/balanced.MeanServerPowerW,
		100*(balanced.MeanNetworkPowerW-aware.MeanNetworkPowerW)/balanced.MeanNetworkPowerW)
	return nil
}
