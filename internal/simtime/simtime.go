// Package simtime provides the virtual-time representation used throughout
// the simulator.
//
// Simulated time is an int64 count of nanoseconds since the start of the
// simulation. Integer time keeps the event queue ordering exact (no
// floating-point ties) and makes runs bit-reproducible across platforms.
package simtime

import (
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
// It is also used for durations; the zero value is the simulation epoch.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
	Hour             = 60 * Minute
)

// Forever is a time later than any event a simulation will schedule.
const Forever Time = math.MaxInt64

// FromSeconds converts a float64 number of seconds to a Time, rounding to
// the nearest nanosecond.
func FromSeconds(s float64) Time {
	return Time(math.Round(s * float64(Second)))
}

// FromDuration converts a standard library time.Duration.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds reports t as a float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds reports t as a float64 number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Duration converts t to a standard library time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats the time with an adaptive unit, e.g. "1.5ms" or "2.25s".
func (t Time) String() string {
	switch {
	case t == Forever:
		return "forever"
	case t < 0:
		return "-" + (-t).String()
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3gus", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.3gms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.4gs", float64(t)/float64(Second))
	}
}

// Min returns the smaller of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Clamp limits t to the inclusive range [lo, hi].
func Clamp(t, lo, hi Time) Time {
	if t < lo {
		return lo
	}
	if t > hi {
		return hi
	}
	return t
}
