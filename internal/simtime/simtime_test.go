package simtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestConversions(t *testing.T) {
	if FromSeconds(1.5) != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v", FromSeconds(1.5))
	}
	if got := (2500 * Millisecond).Seconds(); got != 2.5 {
		t.Errorf("Seconds = %v, want 2.5", got)
	}
	if got := (3 * Millisecond).Milliseconds(); got != 3 {
		t.Errorf("Milliseconds = %v, want 3", got)
	}
	if FromDuration(time.Second) != Second {
		t.Errorf("FromDuration(1s) = %v", FromDuration(time.Second))
	}
	if (5 * Second).Duration() != 5*time.Second {
		t.Errorf("Duration = %v", (5 * Second).Duration())
	}
}

func TestFromSecondsRounds(t *testing.T) {
	// 1e-9 seconds is 1ns exactly; 1.4e-9 should round to 1ns.
	if FromSeconds(1.4e-9) != 1 {
		t.Errorf("FromSeconds(1.4e-9) = %v, want 1", FromSeconds(1.4e-9))
	}
	if FromSeconds(1.6e-9) != 2 {
		t.Errorf("FromSeconds(1.6e-9) = %v, want 2", FromSeconds(1.6e-9))
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{2 * Microsecond, "2us"},
		{3 * Millisecond, "3ms"},
		{1500 * Millisecond, "1.5s"},
		{Forever, "forever"},
		{-2 * Millisecond, "-2ms"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestMinMaxClamp(t *testing.T) {
	if Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Error("Min broken")
	}
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Max broken")
	}
	if Clamp(10, 0, 5) != 5 || Clamp(-1, 0, 5) != 0 || Clamp(3, 0, 5) != 3 {
		t.Error("Clamp broken")
	}
}

func TestRoundTripProperty(t *testing.T) {
	// FromSeconds(t.Seconds()) must be the identity for non-extreme times.
	f := func(ns int64) bool {
		tt := Time(ns % (1000 * int64(Hour)))
		if tt < 0 {
			tt = -tt
		}
		return FromSeconds(tt.Seconds()) == tt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClampProperty(t *testing.T) {
	f := func(a, b, c int64) bool {
		lo, hi := Time(b), Time(c)
		if lo > hi {
			lo, hi = hi, lo
		}
		got := Clamp(Time(a), lo, hi)
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
