package modelcov

import (
	"strings"
	"testing"
)

func TestNilMapIsInert(t *testing.T) {
	var m *Map
	m.Hit(SrvTransition(0, 1)) // must not panic
	if m.Covered() != 0 || m.Count(NetPktDelivered) != 0 {
		t.Fatalf("nil map reported coverage")
	}
	if got := m.Merge(&Map{}); got != 0 {
		t.Fatalf("nil merge gain = %d, want 0", got)
	}
	if m.Hottest(3) != nil {
		t.Fatalf("nil map has hottest features")
	}
	if !strings.Contains(m.Report(0), "0/") {
		t.Fatalf("nil report: %q", m.Report(0))
	}
}

func TestHitCountAndBounds(t *testing.T) {
	var m Map
	m.Hit(NetPktDelivered)
	m.Hit(NetPktDelivered)
	if got := m.Count(NetPktDelivered); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
	if m.Covered() != 1 {
		t.Fatalf("covered = %d, want 1", m.Covered())
	}
	// Invalid features are ignored, not panics.
	m.Hit(Feature(-1))
	m.Hit(Feature(NumFeatures))
	m.Hit(SrvTransition(-1, 3))
	m.Hit(SrvTransition(2, NumSrvStates))
	m.Hit(FaultKind(99))
	m.Hit(ScopeDown(-2))
	m.Hit(CascadeDepth(0))
	if m.Covered() != 1 {
		t.Fatalf("invalid hits changed coverage: %d", m.Covered())
	}
}

func TestSaturation(t *testing.T) {
	var m Map
	m.counts[int(NetPktDelivered)] = ^uint32(0) - 1
	m.Hit(NetPktDelivered)
	m.Hit(NetPktDelivered) // saturates
	if got := m.Count(NetPktDelivered); got != ^uint32(0) {
		t.Fatalf("count = %d, want saturation", got)
	}
	var o Map
	o.Hit(NetPktDelivered)
	m.Merge(&o) // saturating add must not wrap
	if got := m.Count(NetPktDelivered); got != ^uint32(0) {
		t.Fatalf("merged count wrapped: %d", got)
	}
}

func TestMergeGain(t *testing.T) {
	var global, a, b, c Map
	a.Hit(SwitchSleep)
	a.Hit(SwitchWake)
	if gain := global.Merge(&a); gain != 2 {
		t.Fatalf("first merge gain = %d, want 2", gain)
	}
	b.Hit(SwitchSleep) // already known, same magnitude: no gain
	b.Hit(PortLPIEnter)
	if gain := global.Merge(&b); gain != 1 {
		t.Fatalf("second merge gain = %d, want 1", gain)
	}
	// A run that drives a known feature into a higher magnitude class
	// is progress; the merged map keeps the per-run peak.
	c.Hit(SwitchSleep)
	c.Hit(SwitchSleep)
	c.Hit(SwitchSleep)
	if gain := global.Merge(&c); gain != 1 {
		t.Fatalf("magnitude-record merge gain = %d, want 1", gain)
	}
	if global.Count(SwitchSleep) != 3 {
		t.Fatalf("merged count = %d, want peak 3", global.Count(SwitchSleep))
	}
	if gain := global.Merge(&b); gain != 0 {
		t.Fatalf("re-merge gain = %d, want 0", gain)
	}
	if gain := global.Merge(nil); gain != 0 {
		t.Fatalf("nil merge gain = %d", gain)
	}
}

func TestBucketClasses(t *testing.T) {
	cases := []struct {
		c    uint32
		want int
	}{{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {1 << 20, 21}, {^uint32(0), 32}}
	for _, tc := range cases {
		if got := Bucket(tc.c); got != tc.want {
			t.Fatalf("Bucket(%d) = %d, want %d", tc.c, got, tc.want)
		}
	}
}

func TestBucketEdges(t *testing.T) {
	cases := []struct {
		n    int
		want Feature
	}{
		{-3, QueueDepth(0)}, {0, QueueDepth(0)}, {1, QueueDepth(1)},
		{2, QueueDepth(2)}, {3, QueueDepth(3)}, {4, QueueDepth(3)},
		{5, QueueDepth(8)}, {8, QueueDepth(8)}, {9, QueueDepth(16)},
		{16, QueueDepth(16)}, {17, QueueDepth(32)}, {32, QueueDepth(32)},
		{33, QueueDepth(1000)},
	}
	for _, c := range cases {
		if got := QueueDepth(c.n); got != c.want {
			t.Fatalf("QueueDepth(%d) = %v, want %v", c.n, got, c.want)
		}
	}
	if QueueDepth(0) == GlobalQueueDepth(0) {
		t.Fatalf("queue and global-queue buckets collide")
	}
}

func TestCascadeDepthBuckets(t *testing.T) {
	if CascadeDepth(1) != CascadeDepth1 || CascadeDepth(2) != CascadeDepth2 {
		t.Fatalf("cascade depth mapping wrong")
	}
	if CascadeDepth(3) != CascadeDepth3Plus || CascadeDepth(9) != CascadeDepth3Plus {
		t.Fatalf("deep cascade mapping wrong")
	}
}

// Every feature must carry a distinct, non-empty name: the report and
// the corpus notes lean on names as identifiers.
func TestNamesDistinctAndComplete(t *testing.T) {
	seen := make(map[string]Feature, NumFeatures)
	for i := 0; i < NumFeatures; i++ {
		f := Feature(i)
		n := Name(f)
		if n == "" || strings.HasPrefix(n, "invalid") {
			t.Fatalf("feature %d has no name", i)
		}
		if prev, dup := seen[n]; dup {
			t.Fatalf("features %d and %d share name %q", prev, f, n)
		}
		seen[n] = f
	}
	if !strings.HasPrefix(Name(Feature(-5)), "invalid") {
		t.Fatalf("invalid feature name: %q", Name(Feature(-5)))
	}
}

func TestSrvStateIndexAndTransition(t *testing.T) {
	if SrvStateIndex("Active") != 0 || SrvStateIndex("Down") != NumSrvStates-1 {
		t.Fatalf("state index mapping moved")
	}
	if SrvStateIndex("NoSuchState") != -1 {
		t.Fatalf("unknown state not rejected")
	}
	f := SrvTransition(SrvStateIndex("Idle"), SrvStateIndex("PkgC6"))
	if got := Name(f); got != "srv/Idle->PkgC6" {
		t.Fatalf("transition name = %q", got)
	}
}

func TestNeverHitAndReport(t *testing.T) {
	var m Map
	m.Hit(NetFlowComplete)
	never := m.NeverHit()
	if len(never) != NumFeatures-1 {
		t.Fatalf("never-hit = %d, want %d", len(never), NumFeatures-1)
	}
	r := m.Report(5)
	if !strings.Contains(r, "1/") || !strings.Contains(r, "never hit") {
		t.Fatalf("report: %q", r)
	}
	if got := strings.Count(r, "\n  "); got > 6 {
		t.Fatalf("report listed %d features, want <= 5-ish", got)
	}
}

func TestHottest(t *testing.T) {
	var m Map
	for i := 0; i < 3; i++ {
		m.Hit(SwitchSleep)
	}
	m.Hit(SwitchWake)
	m.Hit(SwitchWake)
	m.Hit(PortLPIEnter)
	top := m.Hottest(2)
	if len(top) != 2 || top[0] != SwitchSleep || top[1] != SwitchWake {
		t.Fatalf("hottest = %v", top)
	}
}
