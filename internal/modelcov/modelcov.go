// Package modelcov is a fixed-size model-state coverage map: a counter
// table over semantic features of a simulation run (sleep-state
// transitions, queue-depth buckets, drop sites, fault kinds by scope,
// cascade depths, orphan-policy branches, network terminal paths,
// placer paths). It is the signal behind coverage-guided scenario
// search (internal/scenario.GuidedSearch, cmd/covsearch): a mutation
// that lights a feature no prior input reached earns a corpus slot.
//
// The package is dependency-free and every recording method is safe on
// a nil *Map, so instrumented packages call m.Hit(...) unconditionally
// and a disabled run (core.Config.Cover == nil) costs one nil check per
// event at most. Counters saturate instead of wrapping so "hit count"
// comparisons stay monotone on arbitrarily long runs.
package modelcov

import (
	"fmt"
	"sort"
	"strings"
)

// Feature indexes one slot of the coverage table. Features are grouped
// in fixed blocks; the block layout is append-only (new features go at
// the end) so corpus entries minimized against an older table remain
// meaningful.
type Feature int

// NumSrvStates is the number of server residency states
// (internal/server State* labels; see SrvStateIndex).
const NumSrvStates = 7

// Block layout. Each base is the first Feature of its block.
const (
	// Server residency transitions, from*NumSrvStates+to.
	featSrvTrans Feature = 0

	// Dispatch-time pending-queue depth buckets (see DepthBucket).
	featQueueDepth = featSrvTrans + NumSrvStates*NumSrvStates

	// Global-queue length buckets at park time.
	featGlobalQDepth = featQueueDepth + numDepthBuckets

	// Packet/flow drop sites.
	featDrop = featGlobalQDepth + numDepthBuckets
)

// Drop-site features (network package).
const (
	DropEnqueueLinkDown Feature = featDrop + iota // enqueue on an admin-down/dead-end link
	DropEnqueueOverflow                           // egress ring full
	DropOnWireLinkDown                            // link died while the packet serialized
	DropArriveLinkDown                            // link died during propagation
	DropSweep                                     // dropAll teardown sweep
	DropFluidKill                                 // fluid flow killed by link/switch death
	numDropSites        = 6
)

// Fault kinds applied by the injector, by fault.Kind order
// (ServerCrash..ScopeUp), plus scope-down events by topology scope
// (fault.ScopeKind order: Server, Rack, Pod, Switch).
const (
	featFaultKind Feature = featDrop + numDropSites
	numFaultKinds         = 8
	featScopeDown         = featFaultKind + numFaultKinds
	numScopeKinds         = 4
)

// Scheduler / orphan-policy branches.
const (
	SchedOrphanRequeue Feature = featScopeDown + numScopeKinds + iota // crash orphans re-admitted
	SchedOrphanPark                                                   // unplaceable task parked awaiting recovery
	SchedDropCrash                                                    // job killed: orphaned by server crash, policy Drop
	SchedDropNoAlive                                                  // job killed: no alive server, policy Drop
	SchedParkedDrain                                                  // parked tasks drained on recovery
	SchedStaticReplace                                                // static placement redirected off a failed server
	SchedDeferredPlace                                                // deferred placement retried a task
	numSchedBranches   = 7
)

// Cascade depth buckets: 1, 2, >=3.
const (
	CascadeDepth1 Feature = SchedOrphanRequeue + numSchedBranches + iota
	CascadeDepth2
	CascadeDepth3Plus
	numCascadeDepths = 3
)

// Network terminal paths: how a transfer's packets/flows end, split by
// model so a fluid-mode run and a packet-mode run light different
// features even on identical scenarios.
const (
	NetPktDelivered  Feature = CascadeDepth1 + numCascadeDepths + iota // packet reached its destination host
	NetPktLoopback                                                     // same-host transfer short-circuited
	NetFluidComplete                                                   // fluid flow drained to completion
	NetFluidFailed                                                     // fluid flow torn down by failure
	NetFlowComplete                                                    // flow-comm transfer completed
	NetFlowFailed                                                      // flow-comm transfer torn down by failure
	NetFlowDeadStart                                                   // route already dead at flow start
	numNetTerminals  = 7
)

// Placer / queue-mode paths.
const (
	PlaceFastPath      Feature = NetPktDelivered + numNetTerminals + iota // candidate set taken whole (no servers down)
	PlaceFiltered                                                         // candidate set filtered for alive servers
	PlaceAllDown                                                          // every candidate down: AllDownError path
	PlaceFallback                                                         // placer returned a failed server; fell back
	PlaceGlobalQDirect                                                    // global queue: dispatched without parking
	PlaceGlobalQPark                                                      // global queue: job parked
	PlaceGlobalQDrain                                                     // global queue drained a parked job
	numPlacePaths      = 7
)

// Switch / link power paths.
const (
	SwitchSleep    Feature = PlaceFastPath + numPlacePaths + iota // switch entered sleep
	SwitchWake                                                    // sleeping switch woken by traffic
	PortLPIEnter                                                  // port entered low-power idle
	PortLPIWake                                                   // LPI exit charged a wake penalty
	numSwitchPaths = 4
)

// NumFeatures is the size of the coverage table.
const NumFeatures = int(SwitchSleep) + numSwitchPaths

// srvStateNames mirrors internal/server's State* residency labels.
// modelcov cannot import server (server imports modelcov), so the
// mapping is duplicated here and pinned by a test in internal/server.
var srvStateNames = [NumSrvStates]string{
	"Active", "Wake-up", "Idle", "PkgC6", "SysSleep", "Off", "Down",
}

// SrvStateIndex maps a server residency label to its state index, or -1
// if the label is unknown (unknown labels are simply not recorded).
func SrvStateIndex(label string) int {
	for i, n := range srvStateNames {
		if n == label {
			return i
		}
	}
	return -1
}

// SrvTransition is the feature for a residency transition from state
// index `from` to `to` (SrvStateIndex order). Out-of-range indices
// yield an invalid feature, which Hit ignores.
func SrvTransition(from, to int) Feature {
	if from < 0 || from >= NumSrvStates || to < 0 || to >= NumSrvStates {
		return Feature(-1)
	}
	return featSrvTrans + Feature(from*NumSrvStates+to)
}

// numDepthBuckets buckets: 0, 1, 2, 3-4, 5-8, 9-16, 17-32, 33+.
const numDepthBuckets = 8

func depthBucket(n int) Feature {
	switch {
	case n <= 0:
		return 0
	case n == 1:
		return 1
	case n == 2:
		return 2
	case n <= 4:
		return 3
	case n <= 8:
		return 4
	case n <= 16:
		return 5
	case n <= 32:
		return 6
	default:
		return 7
	}
}

var depthBucketNames = [numDepthBuckets]string{"0", "1", "2", "3-4", "5-8", "9-16", "17-32", "33+"}

// QueueDepth is the feature for a server pending-queue depth observed
// at dispatch time.
func QueueDepth(n int) Feature { return featQueueDepth + depthBucket(n) }

// GlobalQueueDepth is the feature for the global-queue length observed
// when a job parks.
func GlobalQueueDepth(n int) Feature { return featGlobalQDepth + depthBucket(n) }

// FaultKind is the feature for an applied fault event of the given
// fault.Kind ordinal. Out-of-range ordinals yield an invalid feature.
func FaultKind(kind int) Feature {
	if kind < 0 || kind >= numFaultKinds {
		return Feature(-1)
	}
	return featFaultKind + Feature(kind)
}

// ScopeDown is the feature for a correlated scope-down event of the
// given fault.ScopeKind ordinal.
func ScopeDown(scope int) Feature {
	if scope < 0 || scope >= numScopeKinds {
		return Feature(-1)
	}
	return featScopeDown + Feature(scope)
}

// CascadeDepth is the feature for a cascade-triggered fault at the
// given depth (>= 1).
func CascadeDepth(depth int) Feature {
	switch {
	case depth <= 0:
		return Feature(-1)
	case depth == 1:
		return CascadeDepth1
	case depth == 2:
		return CascadeDepth2
	default:
		return CascadeDepth3Plus
	}
}

var faultKindNames = [numFaultKinds]string{
	"server-crash", "server-recover", "link-down", "link-up",
	"switch-down", "switch-up", "scope-down", "scope-up",
}

var scopeKindNames = [numScopeKinds]string{"server", "rack", "pod", "switch"}

var singleNames = map[Feature]string{
	DropEnqueueLinkDown: "drop/enqueue-link-down",
	DropEnqueueOverflow: "drop/enqueue-overflow",
	DropOnWireLinkDown:  "drop/on-wire-link-down",
	DropArriveLinkDown:  "drop/arrive-link-down",
	DropSweep:           "drop/teardown-sweep",
	DropFluidKill:       "drop/fluid-kill",
	SchedOrphanRequeue:  "sched/orphan-requeue",
	SchedOrphanPark:     "sched/orphan-park",
	SchedDropCrash:      "sched/drop-server-crash",
	SchedDropNoAlive:    "sched/drop-no-alive-server",
	SchedParkedDrain:    "sched/parked-drain",
	SchedStaticReplace:  "sched/static-replace",
	SchedDeferredPlace:  "sched/deferred-place",
	CascadeDepth1:       "cascade/depth-1",
	CascadeDepth2:       "cascade/depth-2",
	CascadeDepth3Plus:   "cascade/depth-3+",
	NetPktDelivered:     "net/packet-delivered",
	NetPktLoopback:      "net/packet-loopback",
	NetFluidComplete:    "net/fluid-complete",
	NetFluidFailed:      "net/fluid-failed",
	NetFlowComplete:     "net/flow-complete",
	NetFlowFailed:       "net/flow-failed",
	NetFlowDeadStart:    "net/flow-dead-at-start",
	PlaceFastPath:       "place/fast-path",
	PlaceFiltered:       "place/alive-filtered",
	PlaceAllDown:        "place/all-down",
	PlaceFallback:       "place/placer-fallback",
	PlaceGlobalQDirect:  "place/globalq-direct",
	PlaceGlobalQPark:    "place/globalq-park",
	PlaceGlobalQDrain:   "place/globalq-drain",
	SwitchSleep:         "switch/sleep",
	SwitchWake:          "switch/wake",
	PortLPIEnter:        "switch/port-lpi",
	PortLPIWake:         "switch/port-lpi-wake-penalty",
}

// Name renders a feature as a stable human-readable label.
func Name(f Feature) string {
	switch {
	case f < 0 || int(f) >= NumFeatures:
		return fmt.Sprintf("invalid(%d)", int(f))
	case f >= featSrvTrans && f < featQueueDepth:
		i := int(f - featSrvTrans)
		return "srv/" + srvStateNames[i/NumSrvStates] + "->" + srvStateNames[i%NumSrvStates]
	case f >= featQueueDepth && f < featGlobalQDepth:
		return "queue/depth-" + depthBucketNames[f-featQueueDepth]
	case f >= featGlobalQDepth && f < featDrop:
		return "queue/global-depth-" + depthBucketNames[f-featGlobalQDepth]
	case f >= featFaultKind && f < featScopeDown:
		return "fault/" + faultKindNames[f-featFaultKind]
	case f >= featScopeDown && f < SchedOrphanRequeue:
		return "fault/scope-down-" + scopeKindNames[f-featScopeDown]
	default:
		return singleNames[f]
	}
}

// Map is a fixed-size coverage counter table. The zero value is ready
// to use. All methods are nil-receiver safe; recording methods on a nil
// map are no-ops, queries on a nil map report zero coverage.
type Map struct {
	counts [NumFeatures]uint32
}

// Hit increments the counter for f, saturating at the uint32 ceiling.
// Invalid features and nil maps are ignored.
func (m *Map) Hit(f Feature) {
	if m == nil || f < 0 || int(f) >= NumFeatures {
		return
	}
	if m.counts[f] != ^uint32(0) {
		m.counts[f]++
	}
}

// Count reports the hit count for f.
func (m *Map) Count(f Feature) uint32 {
	if m == nil || f < 0 || int(f) >= NumFeatures {
		return 0
	}
	return m.counts[f]
}

// Covered reports how many features have been hit at least once.
func (m *Map) Covered() int {
	if m == nil {
		return 0
	}
	n := 0
	for _, c := range m.counts {
		if c != 0 {
			n++
		}
	}
	return n
}

// Total reports the table size (NumFeatures), for hit/total reports.
func (m *Map) Total() int { return NumFeatures }

// Score reports the map's total coverage mass: the sum of every
// feature's Bucket class. Covered counts how *many* features were
// reached; Score also credits how *hard* each was driven (one point
// per power of two in the peak count), so it keeps discriminating
// between campaigns long after plain feature coverage saturates.
func (m *Map) Score() int {
	if m == nil {
		return 0
	}
	s := 0
	for _, c := range m.counts {
		s += Bucket(c)
	}
	return s
}

// Bucket maps a hit count to a coarse magnitude class: 0, then one
// class per power of two (1, 2–3, 4–7, 8–15, ...). Coverage campaigns
// compare runs by class, not raw count, so "hit this feature an order
// of magnitude harder than ever before" registers as progress long
// after the first hit — binary coverage alone saturates in a few dozen
// executions and leaves a guided search nothing to climb.
func Bucket(c uint32) int {
	b := 0
	for c > 0 {
		b++
		c >>= 1
	}
	return b
}

// Merge folds o into m (per-feature maximum) and returns the coverage
// gain: the number of features where o's count reaches a higher Bucket
// class than m had. A first hit is always a gain; so is a new
// magnitude record on an already-covered feature. After merging, m
// holds each feature's peak single-map count, so a campaign's merged
// map answers both "was it reached" (Covered) and "how hard was it
// driven in one run" (Count). A nil o contributes nothing; merging
// into a nil m reports no gain.
func (m *Map) Merge(o *Map) int {
	if m == nil || o == nil {
		return 0
	}
	gain := 0
	for i, c := range o.counts {
		if c == 0 {
			continue
		}
		if Bucket(c) > Bucket(m.counts[i]) {
			gain++
		}
		if c > m.counts[i] {
			m.counts[i] = c
		}
	}
	return gain
}

// NeverHit lists the features with a zero counter, in table order.
func (m *Map) NeverHit() []Feature {
	var out []Feature
	for i := 0; i < NumFeatures; i++ {
		if m.Count(Feature(i)) == 0 {
			out = append(out, Feature(i))
		}
	}
	return out
}

// Hottest lists the top-n features by hit count (descending, table
// order on ties), skipping never-hit features.
func (m *Map) Hottest(n int) []Feature {
	if m == nil || n <= 0 {
		return nil
	}
	var hit []Feature
	for i := 0; i < NumFeatures; i++ {
		if m.counts[i] != 0 {
			hit = append(hit, Feature(i))
		}
	}
	sort.SliceStable(hit, func(a, b int) bool { return m.counts[hit[a]] > m.counts[hit[b]] })
	if len(hit) > n {
		hit = hit[:n]
	}
	return hit
}

// Report renders a human-readable coverage summary: the hit/total
// ratio and up to `top` never-hit features (0 means all).
func (m *Map) Report(top int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "model coverage: %d/%d features\n", m.Covered(), m.Total())
	never := m.NeverHit()
	if top > 0 && len(never) > top {
		fmt.Fprintf(&b, "never hit (%d total, first %d):\n", len(never), top)
		never = never[:top]
	} else if len(never) > 0 {
		fmt.Fprintf(&b, "never hit (%d):\n", len(never))
	}
	for _, f := range never {
		fmt.Fprintf(&b, "  %s\n", Name(f))
	}
	return b.String()
}
