package sched

import (
	"holdcsim/internal/job"
	"holdcsim/internal/server"
	"holdcsim/internal/simtime"
)

// AdaptivePool implements the Sec. IV-C energy-latency optimization
// framework (WASP [66]): servers are coordinated between an active pool
// — whose local power controllers allow only shallow sleep (package C6)
// — and a sleep pool whose servers transition through package C6 into
// system sleep (suspend-to-RAM) after a delay timer τ.
//
// A load estimator monitors pending jobs per active server. Above
// TWakeup, one server migrates sleep->active (with a proactive system
// wake); below TSleep, one migrates active->sleep. The front-end
// dispatches only to the active pool.
type AdaptivePool struct {
	// TWakeup and TSleep are the load thresholds (jobs per active
	// server).
	TWakeup, TSleep float64
	// Tau is the sleep-pool delay timer before suspend-to-RAM.
	Tau simtime.Time
	// MinActive floors the active pool.
	MinActive int
	// Dwell rate-limits pool migrations: at most one per Dwell. Without
	// it the instantaneous load estimator would flip servers between
	// pools at event rate and they would live in transition states.
	Dwell simtime.Time

	active     map[int]bool
	nActive    int
	configured bool
	lastChange simtime.Time
	changed    bool

	// Transitions counts pool migrations for diagnostics.
	Transitions int64
}

// NewAdaptivePool returns the policy with the given thresholds and a
// one-second migration dwell.
func NewAdaptivePool(tWakeup, tSleep float64, tau simtime.Time) *AdaptivePool {
	return &AdaptivePool{
		TWakeup:   tWakeup,
		TSleep:    tSleep,
		Tau:       tau,
		MinActive: 1,
		Dwell:     simtime.Second,
		active:    make(map[int]bool),
	}
}

// ensureConfigured puts every server in the active pool initially with
// shallow-sleep-only controllers; the load estimator then sheds servers.
func (a *AdaptivePool) ensureConfigured(s *Scheduler) {
	if a.configured {
		return
	}
	a.configured = true
	for _, srv := range s.servers {
		a.active[srv.ID()] = true
		srv.SetDelayTimer(false, 0) // active pool: PkgC6 only, no S3
	}
	a.nActive = len(s.servers)
}

// ActiveServers reports the active pool size.
func (a *AdaptivePool) ActiveServers() int { return a.nActive }

// Place implements Placer: least-loaded within the active pool (the
// front-end load balancer "dispatches tasks to the servers in active
// server pool only").
func (a *AdaptivePool) Place(s *Scheduler, t *job.Task, candidates []*server.Server) *server.Server {
	a.ensureConfigured(s)
	var best *server.Server
	for _, srv := range candidates {
		if !a.active[srv.ID()] {
			continue
		}
		if best == nil || srv.PendingTasks() < best.PendingTasks() {
			best = srv
		}
	}
	if best == nil {
		// Active pool empty (transient): wake the least-loaded server.
		best = candidates[0]
		for _, srv := range candidates[1:] {
			if srv.PendingTasks() < best.PendingTasks() {
				best = srv
			}
		}
		a.promote(s, best)
	}
	return best
}

// Name implements Placer.
func (a *AdaptivePool) Name() string { return "adaptive-pool" }

// OnJobArrival implements Controller.
func (a *AdaptivePool) OnJobArrival(s *Scheduler, j *job.Job) {
	a.ensureConfigured(s)
	a.evaluate(s)
}

// OnTaskDone implements Controller.
func (a *AdaptivePool) OnTaskDone(s *Scheduler, t *job.Task) {
	a.ensureConfigured(s)
	a.evaluate(s)
}

// evaluate applies the threshold policy, at most one migration per
// Dwell.
func (a *AdaptivePool) evaluate(s *Scheduler) {
	now := s.eng.Now()
	if a.changed && now-a.lastChange < a.Dwell {
		return
	}
	load := s.LoadPerServer(a.nActive)
	switch {
	case load > a.TWakeup && a.nActive < len(s.servers):
		// Promote the sleeping server with the fewest pending tasks.
		var pick *server.Server
		for _, srv := range s.servers {
			if a.active[srv.ID()] {
				continue
			}
			if pick == nil || srv.PendingTasks() < pick.PendingTasks() {
				pick = srv
			}
		}
		if pick != nil {
			a.promote(s, pick)
		}
	case load < a.TSleep && a.nActive > a.MinActive:
		// Demote the least-loaded active server into the sleep pool.
		var pick *server.Server
		for _, srv := range s.servers {
			if !a.active[srv.ID()] {
				continue
			}
			if pick == nil || srv.PendingTasks() < pick.PendingTasks() {
				pick = srv
			}
		}
		if pick != nil {
			a.demote(s, pick)
		}
	}
}

// promote moves a server into the active pool: its controller reverts to
// shallow-sleep-only and it pre-warms with a system wake.
func (a *AdaptivePool) promote(s *Scheduler, srv *server.Server) {
	if a.active[srv.ID()] {
		return
	}
	a.active[srv.ID()] = true
	a.nActive++
	a.Transitions++
	a.lastChange = s.eng.Now()
	a.changed = true
	srv.SetDelayTimer(false, 0)
	srv.WakeUp()
}

// demote moves a server into the sleep pool: after τ idle it suspends.
func (a *AdaptivePool) demote(s *Scheduler, srv *server.Server) {
	if !a.active[srv.ID()] {
		return
	}
	a.active[srv.ID()] = false
	a.nActive--
	a.Transitions++
	a.lastChange = s.eng.Now()
	a.changed = true
	srv.SetDelayTimer(true, a.Tau)
}
