package sched

import (
	"holdcsim/internal/job"
	"holdcsim/internal/network"
	"holdcsim/internal/server"
	"holdcsim/internal/topology"
)

// RoundRobin cycles through candidates in order (paper Sec. III-E's
// round-robin global policy).
type RoundRobin struct{}

// Place implements Placer.
func (RoundRobin) Place(s *Scheduler, t *job.Task, candidates []*server.Server) *server.Server {
	srv := candidates[s.rrNext%len(candidates)]
	s.rrNext++
	return srv
}

// Name implements Placer.
func (RoundRobin) Name() string { return "round-robin" }

// LeastLoaded picks the candidate with the fewest pending tasks — the
// paper's load-balancing policy and the Server-Balanced baseline of
// Sec. IV-D. Ties break on the lower server ID.
type LeastLoaded struct{}

// Place implements Placer.
func (LeastLoaded) Place(s *Scheduler, t *job.Task, candidates []*server.Server) *server.Server {
	best := candidates[0]
	for _, srv := range candidates[1:] {
		if s.Load(srv) < s.Load(best) {
			best = srv
		}
	}
	return best
}

// Name implements Placer.
func (LeastLoaded) Name() string { return "least-loaded" }

// PackFirst consolidates load onto as few servers as possible: among
// awake servers with a spare execution slot it picks the most-loaded
// (tightest pack, ties to the lowest ID); if none has a spare slot it
// wakes the lowest-ID sleeping server; with nothing asleep it falls back
// to least-loaded. Consolidation is what makes server sleep states
// profitable at mid utilizations — the delay-timer studies (Sec. IV-B)
// pair it with per-server τ policies.
type PackFirst struct{}

// Place implements Placer.
func (PackFirst) Place(s *Scheduler, t *job.Task, candidates []*server.Server) *server.Server {
	var best *server.Server
	for _, srv := range candidates {
		if srv.Asleep() || s.Load(srv) >= srv.Cores() {
			continue
		}
		if best == nil || s.Load(srv) > s.Load(best) {
			best = srv
		}
	}
	if best != nil {
		return best
	}
	// All awake servers are full: wake the first sleeping server.
	for _, srv := range candidates {
		if srv.Asleep() {
			return srv
		}
	}
	// Everything is awake and saturated: least loaded.
	best = candidates[0]
	for _, srv := range candidates[1:] {
		if s.Load(srv) < s.Load(best) {
			best = srv
		}
	}
	return best
}

// Name implements Placer.
func (PackFirst) Name() string { return "pack-first" }

// Random places uniformly at random (useful as an experimental control).
type Random struct {
	// Next returns a pseudo-random non-negative int; supplied by the
	// caller so placement draws share the experiment's seed discipline.
	Next func(n int) int
}

// Place implements Placer.
func (r Random) Place(s *Scheduler, t *job.Task, candidates []*server.Server) *server.Server {
	return candidates[r.Next(len(candidates))] //simlint:allow hookguard Next is a mandatory policy input, not an optional hook
}

// Name implements Placer.
func (Random) Name() string { return "random" }

// Pinned places by a fixed task-index-to-server mapping; tests use it to
// force placements.
type Pinned struct {
	ServerOf func(t *job.Task) int
}

// Place implements Placer.
func (p Pinned) Place(s *Scheduler, t *job.Task, candidates []*server.Server) *server.Server {
	return s.servers[p.ServerOf(t)] //simlint:allow hookguard ServerOf is a mandatory policy input, not an optional hook
}

// Name implements Placer.
func (Pinned) Name() string { return "pinned" }

// NetworkAware implements the Server-Network-Aware policy of Sec. IV-D:
// prefer servers that are already awake and have a spare execution slot
// (least loaded among them); when a sleeping server must be activated,
// pick the one whose communication paths wake the fewest additional
// switches.
type NetworkAware struct {
	Net *network.Network
	// HostOf maps a server ID to its topology node.
	HostOf HostMapper
	// Frontend is the node job requests enter from (root-task traffic
	// notionally originates here).
	Frontend int // index into Net.Graph().Hosts(); -1 = first host
	// OverCommit scales per-server slot capacity before the policy
	// declares "a need for an additional server": transient bursts
	// queue on awake servers instead of waking sleepers. Zero means 4.
	OverCommit float64
}

// capacity reports the elastic slot budget for one server.
func (p NetworkAware) capacity(srv *server.Server) int {
	oc := p.OverCommit
	if oc <= 0 {
		oc = 4
	}
	return int(float64(srv.Cores())*oc + 0.5)
}

// Place implements Placer.
func (p NetworkAware) Place(s *Scheduler, t *job.Task, candidates []*server.Server) *server.Server {
	// Awake servers with a free slot first — packed tightly, so unused
	// servers and their switches stay asleep ("whenever there is a need
	// for an additional server to transit to active state...").
	var best *server.Server
	for _, srv := range candidates {
		if srv.Asleep() || s.Load(srv) >= p.capacity(srv) {
			continue
		}
		if best == nil || s.Load(srv) > s.Load(best) {
			best = srv
		}
	}
	if best != nil {
		return best
	}
	// All awake servers are full: "an additional server [must] transit
	// to active state" (Sec. IV-D). Wake the sleeping server with the
	// least network cost — the number of additional switches to wake on
	// the paths from this task's communication peers — breaking ties
	// toward lower load.
	endpoints := p.peers(s, t)
	bestCost := -1
	for _, srv := range candidates {
		if !srv.Asleep() {
			continue
		}
		cost := 0
		h := p.HostOf(srv.ID()) //simlint:allow hookguard HostOf is a mandatory policy input, not an optional hook
		for _, ep := range endpoints {
			cost += p.Net.SleepingSwitchesOnPath(ep, h)
		}
		if best == nil || cost < bestCost ||
			(cost == bestCost && s.Load(srv) < s.Load(best)) {
			best = srv
			bestCost = cost
		}
	}
	if best != nil {
		return best
	}
	// Everything is awake and saturated: least loaded.
	best = candidates[0]
	for _, srv := range candidates[1:] {
		if s.Load(srv) < s.Load(best) {
			best = srv
		}
	}
	return best
}

// peers lists the topology nodes this task will exchange data with:
// the servers of placed parents, or the front end for root tasks.
func (p NetworkAware) peers(s *Scheduler, t *job.Task) []topology.NodeID {
	var out []topology.NodeID
	for _, e := range t.In {
		if e.From.ServerID >= 0 {
			out = append(out, p.HostOf(e.From.ServerID)) //simlint:allow hookguard HostOf is a mandatory policy input, not an optional hook
		}
	}
	if len(out) == 0 {
		hosts := p.Net.Graph().Hosts()
		idx := p.Frontend
		if idx < 0 || idx >= len(hosts) {
			idx = 0
		}
		out = append(out, hosts[idx])
	}
	return out
}

// Name implements Placer.
func (NetworkAware) Name() string { return "server-network-aware" }
