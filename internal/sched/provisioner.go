package sched

import (
	"holdcsim/internal/job"
	"holdcsim/internal/server"
	"holdcsim/internal/simtime"
	"holdcsim/internal/stats"
)

// Provisioner implements the Sec. IV-A dynamic resource provisioning
// policy: each server carries minimum and maximum load-per-server
// thresholds. When the current load per active server drops below the
// minimum, one server is put aside (it finishes pending tasks, then
// sleeps); when it exceeds the maximum, one parked server is activated.
// It doubles as the scheduler's Placer, dispatching only to the active
// set.
type Provisioner struct {
	// MinLoad and MaxLoad bound the jobs-per-active-server band.
	MinLoad, MaxLoad float64
	// MinActive floors the active set (at least 1).
	MinActive int

	active   map[int]bool // server ID -> active
	nActive  int
	initOnce bool

	// ActiveSeries tracks the active-server count over time (Fig. 4's
	// lower curve); JobsSeries tracks jobs in system.
	ActiveSeries *stats.TimeWeighted
	JobsSeries   *stats.TimeWeighted
}

// NewProvisioner returns a provisioner with the given thresholds. All
// servers start active, matching the paper's initial condition.
func NewProvisioner(minLoad, maxLoad float64) *Provisioner {
	return &Provisioner{
		MinLoad:      minLoad,
		MaxLoad:      maxLoad,
		MinActive:    1,
		active:       make(map[int]bool),
		ActiveSeries: stats.NewTimeWeighted("active-servers"),
		JobsSeries:   stats.NewTimeWeighted("jobs-in-system"),
	}
}

func (p *Provisioner) ensureInit(s *Scheduler) {
	if p.initOnce {
		return
	}
	p.initOnce = true
	for _, srv := range s.servers {
		p.active[srv.ID()] = true
		// Active servers stay powered; the provisioner itself moves
		// parked servers into low power ("put aside after finishing its
		// pending tasks", Sec. IV-A).
		srv.SetDelayTimer(false, 0)
	}
	p.nActive = len(s.servers)
	now := s.eng.Now()
	p.ActiveSeries.Start(now, float64(p.nActive))
	p.JobsSeries.Start(now, 0)
}

// ActiveServers reports the current active count.
func (p *Provisioner) ActiveServers() int { return p.nActive }

// Place implements Placer: least-loaded among the active set.
func (p *Provisioner) Place(s *Scheduler, t *job.Task, candidates []*server.Server) *server.Server {
	p.ensureInit(s)
	var best *server.Server
	for _, srv := range candidates {
		if !p.active[srv.ID()] {
			continue
		}
		if best == nil || srv.PendingTasks() < best.PendingTasks() {
			best = srv
		}
	}
	if best == nil {
		best = candidates[0] // all parked: fall back (and rebalance soon)
	}
	return best
}

// Name implements Placer.
func (p *Provisioner) Name() string { return "provisioner" }

// OnJobArrival implements Controller.
func (p *Provisioner) OnJobArrival(s *Scheduler, j *job.Job) {
	p.ensureInit(s)
	p.JobsSeries.Set(s.eng.Now(), float64(s.JobsInSystem()))
	p.rebalance(s)
}

// OnTaskDone implements Controller.
func (p *Provisioner) OnTaskDone(s *Scheduler, t *job.Task) {
	p.ensureInit(s)
	p.JobsSeries.Set(s.eng.Now(), float64(s.JobsInSystem()))
	p.rebalance(s)
}

// rebalance applies the threshold policy: one transition per event, as
// in the paper ("one server will be put aside"/"set to active state").
func (p *Provisioner) rebalance(s *Scheduler) {
	load := s.LoadPerServer(p.nActive)
	switch {
	case load > p.MaxLoad && p.nActive < len(s.servers):
		// Activate the parked server with the lowest ID; pre-warm it
		// and restore its always-on controller.
		for _, srv := range s.servers {
			if !p.active[srv.ID()] {
				p.active[srv.ID()] = true
				p.nActive++
				srv.SetDelayTimer(false, 0)
				srv.WakeUp()
				break
			}
		}
	case load < p.MinLoad && p.nActive > p.MinActive:
		// Park the active server with the fewest pending tasks: it
		// finishes its backlog, then the zero-length delay timer drops
		// it into system sleep.
		var victim *server.Server
		for _, srv := range s.servers {
			if !p.active[srv.ID()] {
				continue
			}
			if victim == nil || srv.PendingTasks() < victim.PendingTasks() {
				victim = srv
			}
		}
		if victim != nil {
			p.active[victim.ID()] = false
			p.nActive--
			victim.SetDelayTimer(true, 0)
		}
	}
	p.ActiveSeries.Set(s.eng.Now(), float64(p.nActive))
}

// SampleSeries records (time, active, jobs) rows at a fixed interval for
// plotting Fig. 4. It must be called before the run starts.
func (p *Provisioner) SampleSeries(s *Scheduler, every simtime.Time, until simtime.Time,
	record func(t simtime.Time, activeServers float64, jobsInSystem float64)) {
	var tick func()
	tick = func() {
		now := s.eng.Now()
		record(now, float64(p.nActive), float64(s.JobsInSystem()))
		if now+every <= until {
			s.eng.After(every, tick)
		}
	}
	s.eng.After(every, tick)
}
