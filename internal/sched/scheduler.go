// Package sched implements HolDCSim's global scheduling module (paper
// Sec. III-E) and the power-management policies of the case studies
// (Sec. IV): round-robin and load-balancing placement, the optional
// global task queue, the threshold-based resource provisioner (IV-A),
// the single and dual delay-timer strategies (IV-B), the workload
// adaptive dual-pool framework (IV-C), and the server-network-aware
// placement policy (IV-D).
package sched

import (
	"fmt"

	"holdcsim/internal/engine"
	"holdcsim/internal/job"
	"holdcsim/internal/modelcov"
	"holdcsim/internal/server"
	"holdcsim/internal/simtime"
	"holdcsim/internal/topology"
)

// TransferFn moves bytes between two servers' hosts, invoking done when
// the data has fully arrived (the network layer provides this; a nil
// TransferFn makes transfers instantaneous).
type TransferFn func(fromServer, toServer int, bytes int64, done func())

// Placer chooses a server for a ready task.
type Placer interface {
	// Place returns the chosen server among candidates (never empty).
	Place(s *Scheduler, t *job.Task, candidates []*server.Server) *server.Server
	Name() string
}

// Controller is an optional policy hook: controllers observe arrivals
// and completions to drive pool transitions, provisioning, etc.
type Controller interface {
	OnJobArrival(s *Scheduler, j *job.Job)
	OnTaskDone(s *Scheduler, t *job.Task)
}

// Config assembles a scheduler.
type Config struct {
	Placer Placer
	// UseGlobalQueue parks ready tasks centrally when no eligible server
	// has a spare execution slot; servers pull work as they drain
	// (Sec. III-E's "global task queue" mode).
	UseGlobalQueue bool
	// Transfer carries DAG edge data between servers; nil = instant.
	Transfer TransferFn
	// Controller optionally receives arrival/completion callbacks.
	Controller Controller
	// OnDispatch, when set, observes every task handed to a server
	// (request-traffic hooks, tracing).
	OnDispatch func(srv *server.Server, t *job.Task)
	// Orphans selects the fault policy for tasks stranded by server
	// crashes (fault model). The zero value requeues.
	Orphans OrphanPolicy
}

// Scheduler is the data center's global scheduler: it receives jobs from
// the front end, statically assigns their tasks to servers, launches
// inter-task data transfers as dependencies resolve, and reports job
// completions.
type Scheduler struct {
	eng     *engine.Engine
	servers []*server.Server
	cfg     Config

	byKind map[string][]*server.Server

	// committed counts tasks placed on each server that have not yet
	// finished — including DAG tasks still waiting on parents or data
	// transfers, which the server's own PendingTasks cannot see. All
	// mutations go through commit so the shard aggregates stay in sync.
	committed []int

	// Candidate-set sharding (SetShards): shardOf maps each server to its
	// shard (rack/pod/block); shardLoad mirrors the per-shard sum of
	// committed; shardMembers lists each shard's servers in ID order. Nil
	// shardOf = sharding off, zero cost.
	shardOf      []int32
	shardLoad    []int64
	shardMembers [][]*server.Server

	globalQ []*job.Task

	// Observation-only subscriber lists. Nil slices cost one empty range
	// per event, so an unobserved scheduler pays nothing (the invariant
	// checker and metrics collection attach here).
	onJobArrived []func(*job.Job)
	onJobDone    []func(*job.Job)
	onDispatch   []func(*server.Server, *job.Task)
	onJobLost    []func(*job.Job, LostReason)

	// rrNext is shared iteration state for the round-robin placer.
	rrNext int

	// Fault state (internal/fault drives it via ServerCrashed and
	// ServerRecovered). downCount gates every fault-aware branch: while
	// it is zero — every healthy run — placement takes exactly the
	// pre-fault path with no filtering and no allocation.
	downCount    int
	aliveScratch []*server.Server
	parked       []*job.Task // ready tasks waiting for a recovery

	jobsInSystem   int
	jobsDispatched int64
	jobsCompleted  int64
	jobsLost       int64
	tasksAborted   int64

	// cover, when non-nil, receives placement-path, queue-depth, and
	// orphan-policy coverage features (modelcov; recording only).
	cover *modelcov.Map
}

// SetCover attaches a model-state coverage map recording placement
// paths, queue-depth buckets, and orphan-policy branches. Pass nil to
// detach. Coverage recording never alters scheduling decisions.
func (s *Scheduler) SetCover(m *modelcov.Map) { s.cover = m }

// New wires a scheduler to the servers. Server completion callbacks are
// claimed by the scheduler (OnTaskDone must not be overridden afterward).
func New(eng *engine.Engine, servers []*server.Server, cfg Config) (*Scheduler, error) {
	if len(servers) == 0 {
		return nil, fmt.Errorf("sched: no servers")
	}
	if cfg.Placer == nil {
		cfg.Placer = LeastLoaded{}
	}
	s := &Scheduler{
		eng:       eng,
		servers:   servers,
		cfg:       cfg,
		byKind:    make(map[string][]*server.Server),
		committed: make([]int, len(servers)),
	}
	for _, srv := range servers {
		kinds := srv.Kinds()
		if len(kinds) == 0 {
			s.byKind[""] = append(s.byKind[""], srv)
			continue
		}
		for _, k := range kinds {
			s.byKind[k] = append(s.byKind[k], srv)
		}
	}
	for _, srv := range servers {
		srv.OnTaskDone(s.taskDone)
	}
	if cfg.OnDispatch != nil {
		s.onDispatch = append(s.onDispatch, cfg.OnDispatch)
	}
	return s, nil
}

// Engine exposes the virtual clock.
func (s *Scheduler) Engine() *engine.Engine { return s.eng }

// Servers lists the managed servers.
func (s *Scheduler) Servers() []*server.Server { return s.servers }

// OnJobDone subscribes a job-completion callback (metrics collection,
// invariant probes). Subscribers run in registration order.
func (s *Scheduler) OnJobDone(fn func(*job.Job)) { s.onJobDone = append(s.onJobDone, fn) }

// OnJobArrived subscribes a job-admission callback, invoked after the
// job is counted in-system but before any task is placed.
func (s *Scheduler) OnJobArrived(fn func(*job.Job)) {
	s.onJobArrived = append(s.onJobArrived, fn)
}

// OnDispatch subscribes a task-dispatch callback, invoked for every task
// handed to a server (after any Config.OnDispatch hook).
func (s *Scheduler) OnDispatch(fn func(*server.Server, *job.Task)) {
	s.onDispatch = append(s.onDispatch, fn)
}

// JobsInSystem reports jobs admitted but not yet completed — the load
// estimator signal of Sec. IV-C.
func (s *Scheduler) JobsInSystem() int { return s.jobsInSystem }

// JobsCompleted reports finished jobs.
func (s *Scheduler) JobsCompleted() int64 { return s.jobsCompleted }

// GlobalQueueLen reports tasks parked in the global queue.
func (s *Scheduler) GlobalQueueLen() int { return len(s.globalQ) }

// TasksDispatched reports tasks submitted to servers so far.
func (s *Scheduler) TasksDispatched() int64 { return s.jobsDispatched }

// Committed reports the raw committed-task counter for one server —
// placed but not yet finished. Exposed for invariant checking: unlike
// Load, it is not clamped against the server's own pending count.
func (s *Scheduler) Committed(serverID int) int { return s.committed[serverID] }

// commit is the single mutation point for the committed counters: it
// applies delta to server id and keeps the per-shard load sums in sync.
// Decrements clamp at zero (fault paths can release a commitment that a
// crash already zeroed), in which case the shard sum is untouched too.
func (s *Scheduler) commit(id, delta int) {
	if delta < 0 && s.committed[id] <= 0 {
		return
	}
	s.committed[id] += delta
	if s.shardOf != nil {
		s.shardLoad[s.shardOf[id]] += int64(delta)
	}
}

// SetShards partitions the farm into placement shards — rack- or
// pod-sized candidate subsets. shardOf maps each server ID to its shard
// in [0, n). The ShardedLeastLoaded placer then picks the least-committed
// shard and scans only its members instead of the whole farm, turning
// O(N) placement into O(shards + N/shards). Sharding is bookkeeping only:
// placers that ignore it behave exactly as before. Passing nil shardOf
// disables sharding.
func (s *Scheduler) SetShards(shardOf []int32, n int) error {
	if shardOf == nil {
		s.shardOf, s.shardLoad, s.shardMembers = nil, nil, nil
		return nil
	}
	if len(shardOf) != len(s.servers) {
		return fmt.Errorf("sched: %d shard assignments for %d servers", len(shardOf), len(s.servers))
	}
	if n <= 0 {
		return fmt.Errorf("sched: shard count %d", n)
	}
	load := make([]int64, n)
	members := make([][]*server.Server, n)
	counts := make([]int, n)
	for id, sh := range shardOf {
		if sh < 0 || int(sh) >= n {
			return fmt.Errorf("sched: server %d assigned to shard %d of %d", id, sh, n)
		}
		counts[sh]++
		load[sh] += int64(s.committed[id])
	}
	for sh, c := range counts {
		members[sh] = make([]*server.Server, 0, c)
	}
	for id, sh := range shardOf {
		members[sh] = append(members[sh], s.servers[id])
	}
	s.shardOf, s.shardLoad, s.shardMembers = shardOf, load, members
	return nil
}

// Sharded reports whether candidate-set sharding is active.
func (s *Scheduler) Sharded() bool { return s.shardOf != nil }

// ShardLoad reports the committed-task sum of one shard (diagnostics and
// invariant checks).
func (s *Scheduler) ShardLoad(shard int) int64 { return s.shardLoad[shard] }

// BlockShards builds a synthetic contiguous-block shard map: servers
// [0,size) form shard 0, [size,2*size) shard 1, and so on — the fallback
// when no topology is attached. It returns the map and the shard count.
func BlockShards(nServers, size int) ([]int32, int) {
	if size <= 0 {
		size = 1
	}
	out := make([]int32, nServers)
	for i := range out {
		out[i] = int32(i / size)
	}
	return out, (nServers + size - 1) / size
}

// LoadPerServer reports jobs in system divided by the candidate pool
// size (the provisioning and adaptive policies' load metric).
func (s *Scheduler) LoadPerServer(poolSize int) float64 {
	if poolSize <= 0 {
		return 0
	}
	return float64(s.jobsInSystem) / float64(poolSize)
}

// Load reports the placement-time load signal for a server: committed
// tasks (placed, not yet finished) or the server's own pending count,
// whichever is larger. Placers use this so statically-placed DAG tasks
// that have not been submitted yet still count against capacity.
func (s *Scheduler) Load(srv *server.Server) int {
	c := s.committed[srv.ID()]
	if p := srv.PendingTasks(); p > c {
		return p
	}
	return c
}

// Eligible reports the servers configured for the task's kind.
func (s *Scheduler) Eligible(t *job.Task) []*server.Server {
	if list, ok := s.byKind[t.Kind]; ok && len(list) > 0 {
		return list
	}
	// Fall back to unrestricted servers.
	if list, ok := s.byKind[""]; ok && len(list) > 0 {
		return list
	}
	return s.servers
}

// JobArrived admits a job: every task is placed (static DAG placement,
// Sec. IV-D), root tasks are dispatched, and the controller is notified.
func (s *Scheduler) JobArrived(j *job.Job) {
	s.jobsInSystem++
	for _, fn := range s.onJobArrived {
		fn(j)
	}
	if s.cfg.Controller != nil {
		s.cfg.Controller.OnJobArrival(s, j)
	}
	order, err := j.TopoOrder()
	if err != nil {
		panic(err) // factories always produce DAGs
	}
	for _, t := range order {
		t.ServerID = -1
	}
	for _, t := range order {
		if j.Lost() {
			// Admitting a root with every server down under OrphanDrop
			// retracts the job; the remaining tasks are already lost.
			return
		}
		if t.IsRoot() {
			s.admitReady(t)
		} else {
			// Non-root tasks get their static placement now; they are
			// submitted when their inputs arrive. With no alive server
			// the placement is deferred to readiness.
			if err := s.place(t); err != nil {
				t.ServerID = -1
			}
		}
	}
}

// admitReady routes a ready task: global queue when enabled and no slot
// is free, else place and submit. A task whose static placement died in
// the meantime is re-placed; with no alive server the orphan policy
// parks or drops it.
func (s *Scheduler) admitReady(t *job.Task) {
	if t.Job.Lost() {
		return // a late transfer resolved a dependency of a retracted job
	}
	if s.cfg.UseGlobalQueue {
		if srv := s.availableServer(t); srv != nil {
			t.ServerID = srv.ID()
			s.commit(srv.ID(), 1)
			s.cover.Hit(modelcov.PlaceGlobalQDirect)
			s.submit(srv, t)
		} else {
			// Depth observed before the append: bucket 0 is "parked into
			// an empty queue", the common backlog-forming case.
			s.cover.Hit(modelcov.GlobalQueueDepth(len(s.globalQ)))
			s.globalQ = append(s.globalQ, t)
			s.cover.Hit(modelcov.PlaceGlobalQPark)
		}
		return
	}
	if t.ServerID >= 0 && s.downCount > 0 && s.servers[t.ServerID].Failed() {
		// Statically placed on a server that crashed before dispatch.
		s.cover.Hit(modelcov.SchedStaticReplace)
		s.commit(t.ServerID, -1)
		t.ServerID = -1
	}
	if t.ServerID < 0 {
		if err := s.place(t); err != nil {
			s.handleUnplaceable(t)
			return
		}
	}
	s.submit(s.servers[t.ServerID], t)
}

// place records the placer's static decision on the task. It returns an
// *AllDownError when no eligible server is alive.
func (s *Scheduler) place(t *job.Task) error {
	srv, err := s.Select(t)
	if err != nil {
		return err
	}
	t.ServerID = srv.ID()
	s.commit(srv.ID(), 1)
	return nil
}

// availableServer finds an alive eligible server with a spare execution
// slot (global-queue mode's "servers available at that time").
func (s *Scheduler) availableServer(t *job.Task) *server.Server {
	var best *server.Server
	for _, srv := range s.Eligible(t) {
		if s.downCount > 0 && srv.Failed() {
			continue
		}
		if s.Load(srv) < srv.Cores() {
			if best == nil || s.Load(srv) < s.Load(best) {
				best = srv
			}
		}
	}
	return best
}

// submit hands the task to the server's local scheduler.
func (s *Scheduler) submit(srv *server.Server, t *job.Task) {
	s.jobsDispatched++
	s.cover.Hit(modelcov.QueueDepth(srv.PendingTasks()))
	for _, fn := range s.onDispatch {
		fn(srv, t)
	}
	srv.Submit(t)
}

// taskDone is the server completion callback: it resolves DAG edges,
// launches data transfers, completes jobs, and drains the global queue.
func (s *Scheduler) taskDone(srv *server.Server, t *job.Task) {
	now := s.eng.Now()
	if t.ServerID >= 0 {
		s.commit(t.ServerID, -1)
	}
	j := t.Job
	if j.TaskFinished(t, now) {
		s.jobsInSystem--
		s.jobsCompleted++
		for _, fn := range s.onJobDone {
			fn(j)
		}
	}
	// Push outputs toward dependent tasks.
	for _, e := range t.Out {
		edge := e
		deliver := func() {
			if edge.To.State == job.TaskLost {
				return // the dependent's job was retracted mid-transfer
			}
			if edge.To.SatisfyDep() {
				edge.To.State = job.TaskReady
				edge.To.ReadyAt = s.eng.Now()
				s.admitReady(edge.To)
			}
		}
		if s.cfg.Transfer == nil || edge.Bytes == 0 || edge.To.ServerID == t.ServerID {
			// Same server or no network: results are local. Deliver via
			// the event queue to keep ordering deterministic.
			s.eng.After(0, deliver)
		} else {
			dst := edge.To.ServerID
			if dst < 0 {
				// Destination unknown until dispatch — global-queue mode,
				// or a placement deferred because every server was down
				// at admission. The transfer cannot be routed yet; model
				// it by delivering the dependency now (the network
				// latency and energy of this edge are not charged).
				s.cover.Hit(modelcov.SchedDeferredPlace)
				s.eng.After(0, deliver)
			} else {
				s.cfg.Transfer(t.ServerID, dst, edge.Bytes, deliver)
			}
		}
	}
	if s.cfg.Controller != nil {
		s.cfg.Controller.OnTaskDone(s, t)
	}
	s.drainGlobalQueue()
}

// drainGlobalQueue dispatches parked tasks to servers that freed up.
func (s *Scheduler) drainGlobalQueue() {
	if !s.cfg.UseGlobalQueue || len(s.globalQ) == 0 {
		return
	}
	remaining := s.globalQ[:0]
	for _, t := range s.globalQ {
		if srv := s.availableServer(t); srv != nil {
			t.ServerID = srv.ID()
			s.cover.Hit(modelcov.PlaceGlobalQDrain)
			// Symmetric with admitReady's global-queue path: every
			// dispatched task holds one commitment, so taskDone's
			// decrement — and the crash path's per-orphan decommit —
			// release exactly what was taken.
			s.commit(srv.ID(), 1)
			s.submit(srv, t)
		} else {
			remaining = append(remaining, t)
		}
	}
	s.globalQ = remaining
}

// MeanPendingTasks reports the average per-server pending-task count.
func (s *Scheduler) MeanPendingTasks() float64 {
	total := 0
	for _, srv := range s.servers {
		total += srv.PendingTasks()
	}
	return float64(total) / float64(len(s.servers))
}

// TotalEnergyTo sums server energy in joules up to t.
func (s *Scheduler) TotalEnergyTo(t simtime.Time) float64 {
	sum := 0.0
	for _, srv := range s.servers {
		sum += srv.EnergyTo(t)
	}
	return sum
}

// HostMapper translates a server ID to its topology node (used by
// network-aware placement and by the data center's transfer function).
type HostMapper func(serverID int) topology.NodeID
