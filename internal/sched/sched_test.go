package sched

import (
	"testing"
	"testing/quick"

	"holdcsim/internal/engine"
	"holdcsim/internal/job"
	"holdcsim/internal/power"
	"holdcsim/internal/server"
	"holdcsim/internal/simtime"
)

func testFarm(t *testing.T, n int, mutate func(i int, c *server.Config)) (*engine.Engine, []*server.Server) {
	t.Helper()
	eng := engine.New()
	servers := make([]*server.Server, n)
	for i := 0; i < n; i++ {
		cfg := server.DefaultConfig(power.FourCoreServer())
		if mutate != nil {
			mutate(i, &cfg)
		}
		srv, err := server.New(i, eng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
	}
	return eng, servers
}

func singleJob(id job.ID, at, size simtime.Time) *job.Job {
	return job.Single(id, at, size)
}

func TestSchedulerBasicCompletion(t *testing.T) {
	eng, servers := testFarm(t, 4, nil)
	s, err := New(eng, servers, Config{Placer: LeastLoaded{}})
	if err != nil {
		t.Fatal(err)
	}
	var done []*job.Job
	s.OnJobDone(func(j *job.Job) { done = append(done, j) })
	for i := 0; i < 10; i++ {
		j := singleJob(job.ID(i), 0, 5*simtime.Millisecond)
		eng.Schedule(0, func() { s.JobArrived(j) })
	}
	eng.Run()
	if len(done) != 10 {
		t.Fatalf("completed = %d", len(done))
	}
	if s.JobsInSystem() != 0 || s.JobsCompleted() != 10 {
		t.Errorf("in-system=%d completed=%d", s.JobsInSystem(), s.JobsCompleted())
	}
	for _, j := range done {
		if !j.Done() || j.Sojourn() <= 0 {
			t.Errorf("job %d incomplete or zero sojourn", j.ID)
		}
	}
}

func TestRoundRobinDistribution(t *testing.T) {
	eng, servers := testFarm(t, 4, nil)
	s, err := New(eng, servers, Config{Placer: RoundRobin{}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		j := singleJob(job.ID(i), 0, 50*simtime.Millisecond)
		eng.Schedule(0, func() { s.JobArrived(j) })
	}
	eng.RunUntil(simtime.Millisecond)
	for _, srv := range servers {
		if srv.PendingTasks() != 2 {
			t.Errorf("server %d pending = %d, want 2", srv.ID(), srv.PendingTasks())
		}
	}
	eng.Run()
}

func TestLeastLoadedPicksIdle(t *testing.T) {
	eng, servers := testFarm(t, 3, nil)
	s, err := New(eng, servers, Config{Placer: LeastLoaded{}})
	if err != nil {
		t.Fatal(err)
	}
	// Preload server 0 heavily via pinned placement.
	busy := singleJob(100, 0, simtime.Second)
	eng.Schedule(0, func() {
		busy.Tasks[0].ServerID = 0
		servers[0].Submit(busy.Tasks[0])
	})
	j := singleJob(1, simtime.Millisecond, 5*simtime.Millisecond)
	eng.Schedule(simtime.Millisecond, func() { s.JobArrived(j) })
	eng.RunUntil(2 * simtime.Millisecond)
	if j.Tasks[0].ServerID == 0 {
		t.Error("least-loaded placed on the busy server")
	}
	eng.Run()
}

func TestKindEligibility(t *testing.T) {
	eng, servers := testFarm(t, 4, func(i int, c *server.Config) {
		if i < 2 {
			c.Kinds = []string{"app"}
		} else {
			c.Kinds = []string{"db"}
		}
	})
	s, err := New(eng, servers, Config{Placer: LeastLoaded{}})
	if err != nil {
		t.Fatal(err)
	}
	var finished []*job.Job
	s.OnJobDone(func(j *job.Job) { finished = append(finished, j) })
	j := job.TwoTier(1, 0, 3*simtime.Millisecond, 7*simtime.Millisecond, 0)
	eng.Schedule(0, func() { s.JobArrived(j) })
	eng.Run()
	if len(finished) != 1 {
		t.Fatal("two-tier job did not finish")
	}
	if app := j.Tasks[0]; app.ServerID > 1 {
		t.Errorf("app task on server %d, want 0/1", app.ServerID)
	}
	if db := j.Tasks[1]; db.ServerID < 2 {
		t.Errorf("db task on server %d, want 2/3", db.ServerID)
	}
}

func TestDAGOrderingWithTransfer(t *testing.T) {
	eng, servers := testFarm(t, 2, nil)
	var transfers []int64
	transfer := func(from, to int, bytes int64, done func()) {
		transfers = append(transfers, bytes)
		eng.After(10*simtime.Millisecond, done) // fixed 10ms "network"
	}
	s, err := New(eng, servers, Config{
		Placer:   Pinned{ServerOf: func(t *job.Task) int { return t.Index % 2 }},
		Transfer: transfer,
	})
	if err != nil {
		t.Fatal(err)
	}
	var doneAt simtime.Time
	s.OnJobDone(func(j *job.Job) { doneAt = eng.Now() })
	j := job.Chain(1, 0, 2, 5*simtime.Millisecond, 4096) // t0 -> t1, different servers
	eng.Schedule(0, func() { s.JobArrived(j) })
	eng.Run()
	if len(transfers) != 1 || transfers[0] != 4096 {
		t.Fatalf("transfers = %v", transfers)
	}
	// t0: ~5ms (+C1 wake), transfer 10ms, t1: 5ms (+wake) => ~20ms.
	if doneAt < 20*simtime.Millisecond || doneAt > 21*simtime.Millisecond {
		t.Errorf("job done at %v, want ~20ms", doneAt)
	}
	if j.Tasks[1].StartAt < 15*simtime.Millisecond {
		t.Error("child started before transfer completed")
	}
}

func TestSameServerSkipsTransfer(t *testing.T) {
	eng, servers := testFarm(t, 2, nil)
	calls := 0
	transfer := func(from, to int, bytes int64, done func()) {
		calls++
		eng.After(0, done)
	}
	s, err := New(eng, servers, Config{
		Placer:   Pinned{ServerOf: func(t *job.Task) int { return 0 }},
		Transfer: transfer,
	})
	if err != nil {
		t.Fatal(err)
	}
	j := job.Chain(1, 0, 3, simtime.Millisecond, 1<<20)
	eng.Schedule(0, func() { s.JobArrived(j) })
	eng.Run()
	if calls != 0 {
		t.Errorf("transfer called %d times for same-server DAG", calls)
	}
	if !j.Done() {
		t.Error("job not done")
	}
}

func TestGlobalQueueParksAndDrains(t *testing.T) {
	eng, servers := testFarm(t, 2, nil) // 2 servers x 4 cores = 8 slots
	s, err := New(eng, servers, Config{Placer: LeastLoaded{}, UseGlobalQueue: true})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	s.OnJobDone(func(j *job.Job) { count++ })
	// 12 long jobs: 8 dispatch, 4 park in the global queue.
	for i := 0; i < 12; i++ {
		j := singleJob(job.ID(i), 0, 20*simtime.Millisecond)
		eng.Schedule(0, func() { s.JobArrived(j) })
	}
	eng.RunUntil(simtime.Millisecond)
	if got := s.GlobalQueueLen(); got != 4 {
		t.Errorf("global queue = %d, want 4", got)
	}
	// Servers hold no local queue in this mode.
	for _, srv := range servers {
		if srv.QueueLen() != 0 {
			t.Errorf("server %d local queue = %d, want 0", srv.ID(), srv.QueueLen())
		}
	}
	eng.Run()
	if count != 12 || s.GlobalQueueLen() != 0 {
		t.Errorf("completed=%d queue=%d", count, s.GlobalQueueLen())
	}
}

func TestProvisionerShedsAndRestores(t *testing.T) {
	// The provisioner owns the sleep policy: parked servers sleep,
	// active ones stay powered.
	eng, servers := testFarm(t, 8, nil)
	p := NewProvisioner(0.5, 4.0)
	s, err := New(eng, servers, Config{Placer: p, Controller: p})
	if err != nil {
		t.Fatal(err)
	}
	// Light trickle: load per server stays near zero -> shed to MinActive.
	for i := 0; i < 40; i++ {
		j := singleJob(job.ID(i), simtime.Time(i)*50*simtime.Millisecond, simtime.Millisecond)
		eng.Schedule(j.ArriveAt, func() { s.JobArrived(j) })
	}
	eng.Run()
	if p.ActiveServers() != 1 {
		t.Errorf("active after light load = %d, want 1", p.ActiveServers())
	}
	// Burst: 200 jobs at once -> load per server >> max threshold.
	base := eng.Now()
	for i := 0; i < 200; i++ {
		j := singleJob(job.ID(1000+i), base, 10*simtime.Millisecond)
		eng.Schedule(base, func() { s.JobArrived(j) })
	}
	eng.RunUntil(base + simtime.Millisecond)
	if p.ActiveServers() < 2 {
		t.Errorf("active during burst = %d, want > 1", p.ActiveServers())
	}
	eng.Run()
}

func TestDualTimerConfiguresTimers(t *testing.T) {
	eng, servers := testFarm(t, 4, nil)
	d := NewDualTimer(1, 5*simtime.Second, 100*simtime.Millisecond)
	s, err := New(eng, servers, Config{Placer: d, Controller: d})
	if err != nil {
		t.Fatal(err)
	}
	j := singleJob(0, 0, simtime.Millisecond)
	eng.Schedule(0, func() { s.JobArrived(j) })
	eng.RunUntil(simtime.Millisecond)
	if on, tau := servers[0].DelayTimerConfig(); !on || tau != 5*simtime.Second {
		t.Errorf("high server timer = %v, %v", on, tau)
	}
	if on, tau := servers[3].DelayTimerConfig(); !on || tau != 100*simtime.Millisecond {
		t.Errorf("low server timer = %v, %v", on, tau)
	}
	// Light load goes to the high-τ server.
	if j.Tasks[0].ServerID != 0 {
		t.Errorf("job placed on %d, want high-τ server 0", j.Tasks[0].ServerID)
	}
	// Low-τ servers suspend quickly (0.1s timer + 2.5s entry); the
	// high-τ server stays up until its 5s timer.
	eng.RunUntil(4 * simtime.Second)
	if servers[3].SystemState() != power.S3 {
		t.Error("low-τ server did not sleep")
	}
	if servers[0].SystemState() != power.S0 || servers[0].EnteringSleep() {
		t.Error("high-τ server slept too early")
	}
	eng.Run()
}

func TestDualTimerSpillsUnderLoad(t *testing.T) {
	eng, servers := testFarm(t, 4, nil)
	d := NewDualTimer(1, 5*simtime.Second, 100*simtime.Millisecond)
	s, err := New(eng, servers, Config{Placer: d, Controller: d})
	if err != nil {
		t.Fatal(err)
	}
	// 8 simultaneous jobs exceed the 4-core high pool: some must spill.
	spilled := false
	jobs := make([]*job.Job, 8)
	for i := 0; i < 8; i++ {
		jobs[i] = singleJob(job.ID(i), 0, 50*simtime.Millisecond)
		j := jobs[i]
		eng.Schedule(0, func() { s.JobArrived(j) })
	}
	eng.RunUntil(simtime.Millisecond)
	for _, j := range jobs {
		if j.Tasks[0].ServerID != 0 {
			spilled = true
		}
	}
	if !spilled {
		t.Error("no spill to the low-τ pool under saturation")
	}
	eng.Run()
}

func TestAdaptivePoolDemotesAndPromotes(t *testing.T) {
	eng, servers := testFarm(t, 6, nil)
	a := NewAdaptivePool(2.0, 0.3, 50*simtime.Millisecond)
	s, err := New(eng, servers, Config{Placer: a, Controller: a})
	if err != nil {
		t.Fatal(err)
	}
	// Idle trickle: pool shrinks toward MinActive. Arrivals are spaced
	// wider than the migration dwell so one demotion can fire per job.
	for i := 0; i < 30; i++ {
		j := singleJob(job.ID(i), simtime.Time(i)*600*simtime.Millisecond, simtime.Millisecond)
		eng.Schedule(j.ArriveAt, func() { s.JobArrived(j) })
	}
	eng.Run()
	if a.ActiveServers() != 1 {
		t.Errorf("active = %d after light load, want 1", a.ActiveServers())
	}
	// Demoted servers are asleep (τ = 50ms elapsed long ago).
	asleep := 0
	for _, srv := range servers {
		if srv.SystemState() == power.S3 {
			asleep++
		}
	}
	if asleep != 5 {
		t.Errorf("asleep = %d, want 5", asleep)
	}
	// Burst promotes servers back.
	base := eng.Now()
	for i := 0; i < 120; i++ {
		j := singleJob(job.ID(1000+i), base, 20*simtime.Millisecond)
		eng.Schedule(base, func() { s.JobArrived(j) })
	}
	eng.RunUntil(base + 10*simtime.Millisecond)
	if a.ActiveServers() < 2 {
		t.Errorf("active during burst = %d", a.ActiveServers())
	}
	if a.Transitions == 0 {
		t.Error("no pool transitions recorded")
	}
	eng.Run()
}

func TestSchedulerRejectsEmptyFarm(t *testing.T) {
	eng := engine.New()
	if _, err := New(eng, nil, Config{}); err == nil {
		t.Error("empty farm accepted")
	}
}

func TestPlacerNames(t *testing.T) {
	for _, p := range []Placer{RoundRobin{}, LeastLoaded{}, Random{}, Pinned{},
		NewProvisioner(1, 2), NewDualTimer(1, 0, 0), NewAdaptivePool(1, 0.5, 0)} {
		if p.Name() == "" {
			t.Errorf("%T has empty name", p)
		}
	}
}

// Property: every admitted job completes under any placer, arrival
// pattern, and farm size.
func TestJobConservationProperty(t *testing.T) {
	f := func(seed uint64, nSrv uint8, placerPick uint8) bool {
		n := int(nSrv%5) + 2
		eng := engine.New()
		servers := make([]*server.Server, n)
		for i := 0; i < n; i++ {
			srv, err := server.New(i, eng, server.DefaultConfig(power.FourCoreServer()))
			if err != nil {
				return false
			}
			servers[i] = srv
		}
		var placer Placer
		switch placerPick % 3 {
		case 0:
			placer = LeastLoaded{}
		case 1:
			placer = RoundRobin{}
		default:
			placer = NewDualTimer(1, simtime.Second, 10*simtime.Millisecond)
		}
		cfg := Config{Placer: placer}
		if ctrl, ok := placer.(Controller); ok {
			cfg.Controller = ctrl
		}
		s, err := New(eng, servers, cfg)
		if err != nil {
			return false
		}
		count := 0
		s.OnJobDone(func(*job.Job) { count++ })
		x := seed
		at := simtime.Time(0)
		const jobs = 30
		for i := 0; i < jobs; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			at += simtime.Time(x%10) * simtime.Millisecond
			j := singleJob(job.ID(i), at, simtime.Time(1+x%8)*simtime.Millisecond)
			eng.Schedule(at, func() { s.JobArrived(j) })
		}
		eng.Run()
		return count == jobs && s.JobsInSystem() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
