package sched

import (
	"testing"

	"holdcsim/internal/engine"
	"holdcsim/internal/job"
	"holdcsim/internal/network"
	"holdcsim/internal/power"
	"holdcsim/internal/server"
	"holdcsim/internal/simtime"
	"holdcsim/internal/topology"
)

func TestPackFirstConsolidates(t *testing.T) {
	eng, servers := testFarm(t, 6, nil)
	s, err := New(eng, servers, Config{Placer: PackFirst{}})
	if err != nil {
		t.Fatal(err)
	}
	// 4 concurrent jobs fit one 4-core server: all must land on server 0.
	jobs := make([]*job.Job, 4)
	for i := range jobs {
		jobs[i] = singleJob(job.ID(i), 0, 50*simtime.Millisecond)
		j := jobs[i]
		eng.Schedule(0, func() { s.JobArrived(j) })
	}
	eng.RunUntil(simtime.Millisecond)
	for _, j := range jobs {
		if j.Tasks[0].ServerID != 0 {
			t.Errorf("job %d on server %d, want 0", j.ID, j.Tasks[0].ServerID)
		}
	}
	// A 5th concurrent job overflows to server 1.
	j5 := singleJob(5, simtime.Millisecond, 50*simtime.Millisecond)
	eng.Schedule(simtime.Millisecond, func() { s.JobArrived(j5) })
	eng.RunUntil(2 * simtime.Millisecond)
	if j5.Tasks[0].ServerID != 1 {
		t.Errorf("overflow job on server %d, want 1", j5.Tasks[0].ServerID)
	}
	eng.Run()
}

func TestPackFirstAvoidsSleepingServers(t *testing.T) {
	eng, servers := testFarm(t, 3, nil)
	s, err := New(eng, servers, Config{Placer: PackFirst{}})
	if err != nil {
		t.Fatal(err)
	}
	// Server 0 is asleep; a new job must go to server 1 (first awake).
	eng.Schedule(simtime.Millisecond, func() { servers[0].ForceSleep() })
	j := singleJob(1, simtime.Second, 10*simtime.Millisecond)
	eng.Schedule(simtime.Second, func() { s.JobArrived(j) })
	eng.RunUntil(1100 * simtime.Millisecond)
	if j.Tasks[0].ServerID != 1 {
		t.Errorf("job on server %d, want awake server 1", j.Tasks[0].ServerID)
	}
	eng.Run()
}

func TestCommittedLoadCoversUnsubmittedDAGTasks(t *testing.T) {
	eng, servers := testFarm(t, 2, nil)
	transfer := func(from, to int, bytes int64, done func()) {
		eng.After(100*simtime.Millisecond, done) // slow network
	}
	s, err := New(eng, servers, Config{Placer: PackFirst{}, Transfer: transfer})
	if err != nil {
		t.Fatal(err)
	}
	// A chain of 5 tasks: only the root is submitted immediately, but
	// all 5 must count against the placement load signal.
	j := job.Chain(1, 0, 5, 10*simtime.Millisecond, 1<<20)
	eng.Schedule(0, func() { s.JobArrived(j) })
	eng.RunUntil(simtime.Millisecond)
	total := 0
	for _, srv := range servers {
		total += s.Load(srv)
	}
	if total != 5 {
		t.Errorf("committed load = %d, want 5 (whole DAG)", total)
	}
	eng.Run()
	if s.Load(servers[0])+s.Load(servers[1]) != 0 {
		t.Error("committed load not released after completion")
	}
}

func TestOnDispatchHook(t *testing.T) {
	eng, servers := testFarm(t, 2, nil)
	var dispatched []int
	s, err := New(eng, servers, Config{
		Placer:     RoundRobin{},
		OnDispatch: func(srv *server.Server, tk *job.Task) { dispatched = append(dispatched, srv.ID()) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		j := singleJob(job.ID(i), 0, simtime.Millisecond)
		eng.Schedule(0, func() { s.JobArrived(j) })
	}
	eng.Run()
	if len(dispatched) != 4 {
		t.Fatalf("dispatch hook fired %d times", len(dispatched))
	}
	want := []int{0, 1, 0, 1}
	for i, id := range dispatched {
		if id != want[i] {
			t.Errorf("dispatch %d on server %d, want %d", i, id, want[i])
		}
	}
}

func TestNetworkAwarePrefersCheapWake(t *testing.T) {
	// Dumbbell: two "pods", each one switch with two hosts. When the
	// pod-0 servers are saturated and both pods' spare servers are
	// asleep, the policy must wake the server behind the already-awake
	// switch rather than the one behind the sleeping switch.
	g := topology.NewGraph(false)
	h0 := g.AddNode(topology.Host, "h0")
	h1 := g.AddNode(topology.Host, "h1")
	h2 := g.AddNode(topology.Host, "h2")
	h3 := g.AddNode(topology.Host, "h3")
	s0 := g.AddNode(topology.Switch, "s0")
	s1 := g.AddNode(topology.Switch, "s1")
	for _, pair := range [][2]topology.NodeID{{h0, s0}, {h1, s0}, {h2, s1}, {h3, s1}} {
		if _, err := g.AddLink(pair[0], pair[1], 1e9); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.AddLink(s0, s1, 1e9); err != nil {
		t.Fatal(err)
	}
	eng := engine.New()
	ncfg := network.DefaultConfig(power.DataCenter10G(4))
	ncfg.SwitchSleepIdle = 10 * simtime.Millisecond
	net, err := network.New(eng, g, ncfg)
	if err != nil {
		t.Fatal(err)
	}

	servers := make([]*server.Server, 4)
	for i := range servers {
		srv, err := server.New(i, eng, server.DefaultConfig(power.FourCoreServer()))
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
	}
	hosts := []topology.NodeID{h0, h1, h2, h3}
	// OverCommit 1: the wake-cost branch triggers as soon as the awake
	// server's cores are committed, making the test deterministic.
	placer := NetworkAware{Net: net, HostOf: func(id int) topology.NodeID { return hosts[id] },
		OverCommit: 1}
	s, err := New(eng, servers, Config{Placer: placer})
	if err != nil {
		t.Fatal(err)
	}

	// Let both switches sleep, then saturate server 0 (its switch s0
	// wakes via traffic that we emulate by waking it directly), put
	// servers 1..3 to sleep, and place a new task.
	eng.RunUntil(100 * simtime.Millisecond)
	if !net.SwitchAt(s0).Sleeping() || !net.SwitchAt(s1).Sleeping() {
		t.Fatal("switches did not sleep")
	}
	// A long-lived flow between h0 and h1 wakes s0 only and keeps it
	// awake through the placement probe below (100 MB at 1 Gb/s ≈ 0.8 s).
	net.TransferFlow(h0, h1, 100_000_000, nil)
	eng.RunUntil(120 * simtime.Millisecond)
	if net.SwitchAt(s0).Sleeping() {
		t.Fatal("s0 still sleeping after flow")
	}
	if !net.SwitchAt(s1).Sleeping() {
		t.Fatal("s1 unexpectedly awake")
	}
	for _, srv := range servers[1:] {
		srv.ForceSleep()
	}
	// Saturate server 0.
	for i := 0; i < 4; i++ {
		j := singleJob(job.ID(100+i), 200*simtime.Millisecond, simtime.Second)
		eng.Schedule(200*simtime.Millisecond, func() { s.JobArrived(j) })
	}
	probe := singleJob(999, 210*simtime.Millisecond, 10*simtime.Millisecond)
	eng.Schedule(210*simtime.Millisecond, func() { s.JobArrived(probe) })
	eng.RunUntil(220 * simtime.Millisecond)
	// Server 1 (behind awake s0) costs 1 (its own wake); servers 2,3
	// cost 2 (own wake + sleeping s1 on the path from the frontend h0).
	if probe.Tasks[0].ServerID != 1 {
		t.Errorf("probe placed on server %d, want 1 (cheapest wake)", probe.Tasks[0].ServerID)
	}
	eng.RunUntil(30 * simtime.Second)
}

func TestProvisionerSeriesTracking(t *testing.T) {
	eng, servers := testFarm(t, 4, nil)
	p := NewProvisioner(0.5, 3.0)
	s, err := New(eng, servers, Config{Placer: p, Controller: p})
	if err != nil {
		t.Fatal(err)
	}
	var rows int
	p.SampleSeries(s, 100*simtime.Millisecond, simtime.Second,
		func(tm simtime.Time, active, jobs float64) { rows++ })
	for i := 0; i < 10; i++ {
		j := singleJob(job.ID(i), simtime.Time(i)*100*simtime.Millisecond, simtime.Millisecond)
		eng.Schedule(j.ArriveAt, func() { s.JobArrived(j) })
	}
	eng.RunUntil(simtime.Second)
	if rows != 10 {
		t.Errorf("sampled %d rows, want 10", rows)
	}
	if p.ActiveSeries.Value() <= 0 {
		t.Error("active series not tracking")
	}
}

func TestAdaptivePoolDwellLimitsChurn(t *testing.T) {
	eng, servers := testFarm(t, 4, nil)
	a := NewAdaptivePool(2.0, 1.0, 10*simtime.Millisecond)
	a.Dwell = simtime.Second
	s, err := New(eng, servers, Config{Placer: a, Controller: a})
	if err != nil {
		t.Fatal(err)
	}
	// A 100ms burst of arrivals triggers at most burst/dwell + 1
	// migrations despite hundreds of evaluation events.
	for i := 0; i < 200; i++ {
		j := singleJob(job.ID(i), simtime.Time(i)*500*simtime.Microsecond, 2*simtime.Millisecond)
		eng.Schedule(j.ArriveAt, func() { s.JobArrived(j) })
	}
	eng.Run()
	if a.Transitions > 3 {
		t.Errorf("transitions = %d, want <= 3 with 1s dwell", a.Transitions)
	}
}
