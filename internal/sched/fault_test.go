package sched

import (
	"errors"
	"testing"

	"holdcsim/internal/job"
	"holdcsim/internal/server"
	"holdcsim/internal/simtime"
)

// crashFarm builds a farm with a scheduler under the given orphan
// policy and a completion recorder.
func crashFarm(t *testing.T, n int, policy OrphanPolicy) (*Scheduler, *[]job.ID) {
	t.Helper()
	eng, servers := testFarm(t, n, nil)
	s, err := New(eng, servers, Config{Placer: LeastLoaded{}, Orphans: policy})
	if err != nil {
		t.Fatal(err)
	}
	done := &[]job.ID{}
	s.OnJobDone(func(j *job.Job) { *done = append(*done, j.ID) })
	_ = eng
	return s, done
}

// TestOrphanPolicies pins the drop-vs-requeue accounting contract:
// requeued tasks complete exactly once; dropped tasks appear in Lost
// and nowhere else.
func TestOrphanPolicies(t *testing.T) {
	const jobs = 8
	cases := []struct {
		name   string
		policy OrphanPolicy
	}{
		// Requeue: every job survives the crash — orphans restart on the
		// other server and complete exactly once.
		{"requeue", OrphanRequeue},
		// Drop: every job with a task stranded on the crashed server is
		// lost.
		{"drop", OrphanDrop},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			s, done := crashFarm(t, 2, tc.policy)
			eng := s.Engine()
			// Pin every job to server 0 so the crash orphans all of them.
			s.cfg.Placer = Pinned{ServerOf: func(*job.Task) int { return 0 }}
			for i := 0; i < jobs; i++ {
				j := job.Single(job.ID(i), 0, 100*simtime.Millisecond)
				eng.Schedule(0, func() { s.JobArrived(j) })
			}
			crashed := 0
			eng.Schedule(50*simtime.Millisecond, func() {
				// Un-pin so requeued orphans can go to server 1.
				s.cfg.Placer = LeastLoaded{}
				_, orphans := s.ServerCrashed(s.Servers()[0])
				crashed = orphans
			})
			eng.Run()

			// All 8 were on server 0: 4 cores ran 100 ms tasks, so at
			// crash time (50 ms) 4 are running and 4 queued; none done.
			if crashed != jobs {
				t.Fatalf("orphans = %d, want %d", crashed, jobs)
			}
			if got := s.TasksAborted(); got != int64(jobs) {
				t.Errorf("TasksAborted = %d, want %d", got, jobs)
			}

			switch tc.policy {
			case OrphanRequeue:
				if len(*done) != jobs {
					t.Fatalf("completed %d jobs, want %d", len(*done), jobs)
				}
				// Exactly once: no duplicate completions.
				seen := map[job.ID]int{}
				for _, id := range *done {
					seen[id]++
				}
				for id, c := range seen {
					if c != 1 {
						t.Errorf("job %d completed %d times", id, c)
					}
				}
				if s.JobsLost() != 0 {
					t.Errorf("JobsLost = %d, want 0", s.JobsLost())
				}
				// All completions happened on the surviving server.
				if got := s.Servers()[1].CompletedTasks(); got != int64(jobs) {
					t.Errorf("server 1 completed %d tasks, want %d", got, jobs)
				}
				if got := s.Servers()[0].CompletedTasks(); got != 0 {
					t.Errorf("crashed server completed %d tasks, want 0", got)
				}
			case OrphanDrop:
				if len(*done) != 0 {
					t.Fatalf("completed %d jobs, want 0 (all dropped)", len(*done))
				}
				if s.JobsLost() != jobs {
					t.Errorf("JobsLost = %d, want %d", s.JobsLost(), jobs)
				}
				if s.JobsInSystem() != 0 {
					t.Errorf("JobsInSystem = %d, want 0", s.JobsInSystem())
				}
			}
			// Conservation in both policies: dispatched incarnations are
			// finished, pending, or aborted.
			var finished, pending int64
			for _, srv := range s.Servers() {
				finished += srv.CompletedTasks()
				pending += int64(srv.PendingTasks())
			}
			if d := s.TasksDispatched(); d != finished+pending+s.TasksAborted() {
				t.Errorf("dispatched %d != finished %d + pending %d + aborted %d",
					d, finished, pending, s.TasksAborted())
			}
		})
	}
}

// TestDroppedTasksNowhereElse: after a drop-policy crash, a lost job's
// tasks are in state TaskLost, never re-dispatched, and the surviving
// server sees none of them.
func TestDroppedTasksNowhereElse(t *testing.T) {
	s, done := crashFarm(t, 2, OrphanDrop)
	eng := s.Engine()
	s.cfg.Placer = Pinned{ServerOf: func(*job.Task) int { return 0 }}
	j := job.Chain(1, 0, 3, 50*simtime.Millisecond, 0) // 3-task chain
	eng.Schedule(0, func() { s.JobArrived(j) })
	eng.Schedule(20*simtime.Millisecond, func() {
		s.cfg.Placer = LeastLoaded{}
		s.ServerCrashed(s.Servers()[0])
	})
	eng.Run()
	if len(*done) != 0 || s.JobsLost() != 1 {
		t.Fatalf("done=%d lost=%d, want 0/1", len(*done), s.JobsLost())
	}
	for _, task := range j.Tasks {
		if task.State != job.TaskLost {
			t.Errorf("task %s state %v, want lost", task.Name(), task.State)
		}
	}
	if got := s.Servers()[1].CompletedTasks() + int64(s.Servers()[1].PendingTasks()); got != 0 {
		t.Errorf("surviving server saw %d tasks of a dropped job", got)
	}
	if !j.Lost() {
		t.Error("job not marked lost")
	}
}

// TestRequeueMidDAG: a chain job whose middle task is orphaned mid-run
// restarts that task on the surviving server and the job completes
// exactly once, with downstream tasks running after it.
func TestRequeueMidDAG(t *testing.T) {
	s, done := crashFarm(t, 2, OrphanRequeue)
	eng := s.Engine()
	j := job.Chain(1, 0, 3, 40*simtime.Millisecond, 0)
	// Pin the whole chain to server 0.
	s.cfg.Placer = Pinned{ServerOf: func(*job.Task) int { return 0 }}
	eng.Schedule(0, func() { s.JobArrived(j) })
	// Crash while task 1 (the middle link) is running: 40 ms in, task 0
	// is done and task 1 started at 40 ms.
	eng.Schedule(60*simtime.Millisecond, func() {
		s.cfg.Placer = LeastLoaded{}
		s.ServerCrashed(s.Servers()[0])
	})
	eng.Run()
	if len(*done) != 1 || (*done)[0] != 1 {
		t.Fatalf("done = %v, want [1]", *done)
	}
	if !j.Done() {
		t.Fatal("job not done")
	}
	// Task 0 finished pre-crash on server 0; tasks 1 and 2 must have
	// completed on the survivor.
	if j.Tasks[0].ServerID != 0 {
		t.Errorf("task 0 on server %d, want 0", j.Tasks[0].ServerID)
	}
	for _, idx := range []int{1, 2} {
		if j.Tasks[idx].ServerID != 1 {
			t.Errorf("task %d on server %d, want 1 (survivor)", idx, j.Tasks[idx].ServerID)
		}
	}
	if s.TasksAborted() != 1 {
		t.Errorf("TasksAborted = %d, want 1 (the orphaned middle task)", s.TasksAborted())
	}
}

// TestSelectAllDownTypedError: placer selection returns *AllDownError —
// not a panic — when every eligible server is down.
func TestSelectAllDownTypedError(t *testing.T) {
	s, _ := crashFarm(t, 3, OrphanRequeue)
	eng := s.Engine()
	eng.Schedule(0, func() {
		for _, srv := range s.Servers() {
			s.ServerCrashed(srv)
		}
		j := job.Single(9, 0, simtime.Millisecond)
		srv, err := s.Select(j.Tasks[0])
		if srv != nil || err == nil {
			t.Fatalf("Select on a dead farm: srv=%v err=%v, want typed error", srv, err)
		}
		var down *AllDownError
		if !errors.As(err, &down) {
			t.Fatalf("error %T is not *AllDownError", err)
		}
		if down.Kind != "" {
			t.Errorf("Kind = %q, want empty", down.Kind)
		}
	})
	eng.Run()
}

// TestFullFarmCrashAtT0: every server is down before the first arrival.
// Drop loses every job (typed-error path, no panic); requeue parks them
// until a recovery, after which all complete.
func TestFullFarmCrashAtT0(t *testing.T) {
	t.Run("drop", func(t *testing.T) {
		s, done := crashFarm(t, 2, OrphanDrop)
		eng := s.Engine()
		eng.Schedule(0, func() {
			for _, srv := range s.Servers() {
				s.ServerCrashed(srv)
			}
		})
		for i := 0; i < 5; i++ {
			j := job.Single(job.ID(i), simtime.Millisecond, 10*simtime.Millisecond)
			eng.Schedule(simtime.Millisecond, func() { s.JobArrived(j) })
		}
		eng.Run()
		if len(*done) != 0 || s.JobsLost() != 5 || s.JobsInSystem() != 0 {
			t.Fatalf("done=%d lost=%d open=%d, want 0/5/0", len(*done), s.JobsLost(), s.JobsInSystem())
		}
	})
	t.Run("requeue", func(t *testing.T) {
		s, done := crashFarm(t, 2, OrphanRequeue)
		eng := s.Engine()
		eng.Schedule(0, func() {
			for _, srv := range s.Servers() {
				s.ServerCrashed(srv)
			}
		})
		for i := 0; i < 5; i++ {
			j := job.Single(job.ID(i), simtime.Millisecond, 10*simtime.Millisecond)
			eng.Schedule(simtime.Millisecond, func() { s.JobArrived(j) })
		}
		parkedAt := -1
		eng.Schedule(2*simtime.Millisecond, func() { parkedAt = s.ParkedTasks() })
		eng.Schedule(50*simtime.Millisecond, func() { s.ServerRecovered(s.Servers()[1]) })
		eng.Run()
		if parkedAt != 5 {
			t.Errorf("parked = %d during the outage, want 5", parkedAt)
		}
		if len(*done) != 5 || s.JobsLost() != 0 {
			t.Fatalf("done=%d lost=%d, want 5/0", len(*done), s.JobsLost())
		}
		if s.ParkedTasks() != 0 {
			t.Errorf("parked = %d at end, want 0", s.ParkedTasks())
		}
	})
}

// TestFullFarmCrashMidRun: the whole farm dies with work in flight.
// Under requeue, in-flight jobs park and finish after recovery; under
// drop they are lost. Either way the counters close.
func TestFullFarmCrashMidRun(t *testing.T) {
	for _, policy := range []OrphanPolicy{OrphanRequeue, OrphanDrop} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			s, done := crashFarm(t, 2, policy)
			eng := s.Engine()
			const jobs = 6
			for i := 0; i < jobs; i++ {
				j := job.Single(job.ID(i), 0, 100*simtime.Millisecond)
				eng.Schedule(0, func() { s.JobArrived(j) })
			}
			eng.Schedule(30*simtime.Millisecond, func() {
				for _, srv := range s.Servers() {
					s.ServerCrashed(srv)
				}
			})
			eng.Schedule(200*simtime.Millisecond, func() {
				s.ServerRecovered(s.Servers()[0])
			})
			eng.Run()
			total := int64(len(*done)) + s.JobsLost()
			if total != jobs {
				t.Fatalf("done %d + lost %d != %d", len(*done), s.JobsLost(), jobs)
			}
			switch policy {
			case OrphanRequeue:
				if len(*done) != jobs {
					t.Errorf("requeue completed %d, want %d", len(*done), jobs)
				}
			case OrphanDrop:
				if s.JobsLost() != jobs {
					t.Errorf("drop lost %d, want %d", s.JobsLost(), jobs)
				}
			}
			if s.JobsInSystem() != 0 {
				t.Errorf("JobsInSystem = %d at end", s.JobsInSystem())
			}
		})
	}
}

// TestGlobalQueueParksThroughOutage: in global-queue mode a full-farm
// outage parks arrivals in the global queue (no loss under either
// policy); recovery drains it.
func TestGlobalQueueParksThroughOutage(t *testing.T) {
	eng, servers := testFarm(t, 2, nil)
	s, err := New(eng, servers, Config{Placer: LeastLoaded{}, UseGlobalQueue: true})
	if err != nil {
		t.Fatal(err)
	}
	var done int
	s.OnJobDone(func(*job.Job) { done++ })
	eng.Schedule(0, func() {
		for _, srv := range servers {
			s.ServerCrashed(srv)
		}
	})
	for i := 0; i < 4; i++ {
		j := job.Single(job.ID(i), simtime.Millisecond, 5*simtime.Millisecond)
		eng.Schedule(simtime.Millisecond, func() { s.JobArrived(j) })
	}
	queued := -1
	eng.Schedule(2*simtime.Millisecond, func() { queued = s.GlobalQueueLen() })
	eng.Schedule(10*simtime.Millisecond, func() { s.ServerRecovered(servers[0]) })
	eng.Run()
	if queued != 4 {
		t.Errorf("global queue held %d during the outage, want 4", queued)
	}
	if done != 4 || s.JobsLost() != 0 {
		t.Errorf("done=%d lost=%d, want 4/0", done, s.JobsLost())
	}
}

// TestFaultStringsAndAccessors pins the enum renderings and cheap
// accessors of the fault surface.
func TestFaultStringsAndAccessors(t *testing.T) {
	if OrphanRequeue.String() != "requeue" || OrphanDrop.String() != "drop" ||
		OrphanPolicy(9).String() != "OrphanPolicy(9)" {
		t.Error("OrphanPolicy.String broken")
	}
	// Scenario-codec text forms round-trip; unknowns error.
	for _, p := range []OrphanPolicy{OrphanRequeue, OrphanDrop} {
		b, err := p.MarshalText()
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		var back OrphanPolicy = 99
		if err := back.UnmarshalText(b); err != nil || back != p {
			t.Errorf("round trip %v -> %q -> %v (%v)", p, b, back, err)
		}
	}
	if _, err := OrphanPolicy(9).MarshalText(); err == nil {
		t.Error("unknown policy marshaled")
	}
	var p OrphanPolicy
	if err := p.UnmarshalText([]byte("discard")); err == nil {
		t.Error("unknown name unmarshaled")
	}
	if LostServerCrash.String() != "server-crash" || LostNoAliveServer.String() != "no-alive-server" ||
		LostReason(9).String() != "LostReason(9)" {
		t.Error("LostReason.String broken")
	}
	if got := (&AllDownError{}).Error(); got != "sched: all servers down" {
		t.Errorf("AllDownError = %q", got)
	}
	if got := (&AllDownError{Kind: "db"}).Error(); got != `sched: all servers eligible for kind "db" down` {
		t.Errorf("AllDownError with kind = %q", got)
	}
	s, _ := crashFarm(t, 2, OrphanRequeue)
	if s.DownServers() != 0 {
		t.Error("fresh farm reports down servers")
	}
	s.Engine().Schedule(0, func() {
		s.ServerCrashed(s.Servers()[0])
		if s.DownServers() != 1 {
			t.Errorf("DownServers = %d after one crash", s.DownServers())
		}
		s.ServerRecovered(s.Servers()[0])
		if s.DownServers() != 0 {
			t.Errorf("DownServers = %d after recovery", s.DownServers())
		}
		// Idempotence of both transitions.
		s.ServerRecovered(s.Servers()[0])
		if lost, orphans := s.ServerCrashed(s.Servers()[0]); lost != 0 && orphans != 0 {
			t.Error("first crash reported losses on an idle server")
		}
		if lost, orphans := s.ServerCrashed(s.Servers()[0]); lost != 0 || orphans != 0 {
			t.Error("double crash not a no-op")
		}
		s.ServerRecovered(s.Servers()[0])
	})
	s.Engine().Run()
}

// TestKillJobScrubsParkedAndGlobalQueue: killing a job whose sibling
// tasks wait in the parked list (and, in global-queue mode, the global
// queue) removes them so they are never dispatched after recovery.
func TestKillJobScrubsParkedAndGlobalQueue(t *testing.T) {
	// Parked list: requeue policy parks two single-task jobs during a
	// full outage; killing one directly must scrub only its task.
	s, done := crashFarm(t, 1, OrphanRequeue)
	eng := s.Engine()
	j1 := job.Single(1, 0, simtime.Millisecond)
	j2 := job.Single(2, 0, simtime.Millisecond)
	eng.Schedule(0, func() {
		s.ServerCrashed(s.Servers()[0])
		s.JobArrived(j1)
		s.JobArrived(j2)
		if s.ParkedTasks() != 2 {
			t.Fatalf("parked = %d, want 2", s.ParkedTasks())
		}
		s.killJob(j1, LostNoAliveServer)
		if s.ParkedTasks() != 1 {
			t.Fatalf("parked = %d after kill, want 1", s.ParkedTasks())
		}
	})
	eng.Schedule(simtime.Millisecond, func() { s.ServerRecovered(s.Servers()[0]) })
	eng.Run()
	if len(*done) != 1 || (*done)[0] != 2 {
		t.Fatalf("done = %v, want just job 2", *done)
	}
	if s.JobsLost() != 1 {
		t.Fatalf("lost = %d", s.JobsLost())
	}

	// Global queue: same shape with UseGlobalQueue.
	eng2, servers := testFarm(t, 1, nil)
	g, err := New(eng2, servers, Config{UseGlobalQueue: true})
	if err != nil {
		t.Fatal(err)
	}
	var gDone int
	g.OnJobDone(func(*job.Job) { gDone++ })
	k1 := job.Single(1, 0, simtime.Millisecond)
	k2 := job.Single(2, 0, simtime.Millisecond)
	eng2.Schedule(0, func() {
		g.ServerCrashed(g.Servers()[0])
		g.JobArrived(k1)
		g.JobArrived(k2)
		if g.GlobalQueueLen() != 2 {
			t.Fatalf("globalQ = %d, want 2", g.GlobalQueueLen())
		}
		g.killJob(k1, LostServerCrash)
		if g.GlobalQueueLen() != 1 {
			t.Fatalf("globalQ = %d after kill, want 1", g.GlobalQueueLen())
		}
	})
	eng2.Schedule(simtime.Millisecond, func() { g.ServerRecovered(g.Servers()[0]) })
	eng2.Run()
	if gDone != 1 {
		t.Fatalf("global-queue done = %d, want 1", gDone)
	}
}

// TestSelectKindRestrictedAllDown: a task whose kind-eligible pool is
// entirely down yields an AllDownError naming the kind, even while
// unrestricted servers remain alive.
func TestSelectKindRestrictedAllDown(t *testing.T) {
	eng, servers := testFarm(t, 2, func(i int, c *server.Config) {
		if i == 0 {
			c.Kinds = []string{"db"}
		}
	})
	s, err := New(eng, servers, Config{})
	if err != nil {
		t.Fatal(err)
	}
	eng.Schedule(0, func() {
		s.ServerCrashed(servers[0])
		j := job.New(1, 0)
		task := j.AddTask(simtime.Millisecond, "db")
		if err := j.Seal(); err != nil {
			t.Fatal(err)
		}
		_, err := s.Select(task)
		var down *AllDownError
		if !errors.As(err, &down) || down.Kind != "db" {
			t.Fatalf("Select = %v, want AllDownError{Kind: db}", err)
		}
	})
	eng.Run()
}

// TestDualTimerPoolsByIDUnderCrash: DualTimer pool membership follows
// server IDs, not candidate positions — with the high-τ server 0
// crashed, placement prefers surviving high-pool server 1, never
// promoting a low-τ server into the warm pool by slice position.
func TestDualTimerPoolsByIDUnderCrash(t *testing.T) {
	eng, servers := testFarm(t, 4, nil)
	d := NewDualTimer(2, simtime.Second, simtime.Millisecond)
	s, err := New(eng, servers, Config{Placer: d, Controller: d})
	if err != nil {
		t.Fatal(err)
	}
	eng.Schedule(0, func() {
		s.ServerCrashed(servers[0])
		j := job.Single(1, 0, simtime.Millisecond)
		srv, err := s.Select(j.Tasks[0])
		if err != nil {
			t.Fatal(err)
		}
		if srv.ID() != 1 {
			t.Fatalf("placed on server %d, want the surviving high-τ server 1", srv.ID())
		}
	})
	eng.Run()
}
