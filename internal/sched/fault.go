package sched

import (
	"fmt"

	"holdcsim/internal/job"
	"holdcsim/internal/modelcov"
	"holdcsim/internal/server"
)

// OrphanPolicy selects what happens to tasks stranded by a server crash
// (and to jobs that arrive while no eligible server is alive).
type OrphanPolicy int

// Orphan policies. The zero value requeues: orphaned tasks restart from
// scratch on an alive server (or wait parked until one recovers), so no
// work is lost — only time. OrphanDrop retracts the whole job: every
// unfinished task is aborted and the job is counted lost.
const (
	OrphanRequeue OrphanPolicy = iota
	OrphanDrop
)

// String implements fmt.Stringer.
func (p OrphanPolicy) String() string {
	switch p {
	case OrphanRequeue:
		return "requeue"
	case OrphanDrop:
		return "drop"
	}
	return fmt.Sprintf("OrphanPolicy(%d)", int(p))
}

// MarshalText implements encoding.TextMarshaler (scenario-file codec).
func (p OrphanPolicy) MarshalText() ([]byte, error) {
	switch p {
	case OrphanRequeue, OrphanDrop:
		return []byte(p.String()), nil
	}
	return nil, fmt.Errorf("sched: unknown orphan policy %d", int(p))
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (p *OrphanPolicy) UnmarshalText(b []byte) error {
	switch string(b) {
	case "requeue":
		*p = OrphanRequeue
	case "drop":
		*p = OrphanDrop
	default:
		return fmt.Errorf("sched: unknown orphan policy %q (want requeue or drop)", b)
	}
	return nil
}

// LostReason says why a job was lost.
type LostReason int

// Loss reasons.
const (
	// LostServerCrash: a task of the job was orphaned by a crash under
	// OrphanDrop.
	LostServerCrash LostReason = iota
	// LostNoAliveServer: the job needed placement while every eligible
	// server was down, under OrphanDrop.
	LostNoAliveServer
)

// String implements fmt.Stringer.
func (r LostReason) String() string {
	switch r {
	case LostServerCrash:
		return "server-crash"
	case LostNoAliveServer:
		return "no-alive-server"
	}
	return fmt.Sprintf("LostReason(%d)", int(r))
}

// AllDownError is the typed error Select returns when every server
// eligible for a task is down. Placement never panics on a dead farm:
// callers park or drop the task per the orphan policy.
type AllDownError struct {
	// Kind is the task kind that had no alive candidate ("" = any).
	Kind string
}

// Error implements error.
func (e *AllDownError) Error() string {
	if e.Kind == "" {
		return "sched: all servers down"
	}
	return fmt.Sprintf("sched: all servers eligible for kind %q down", e.Kind)
}

// JobsLost reports jobs retracted by failures.
func (s *Scheduler) JobsLost() int64 { return s.jobsLost }

// TasksAborted reports dispatched task incarnations that were retracted
// before finishing — orphaned by a crash (whether requeued or dropped)
// or aborted on a healthy server because their job was lost. Task
// conservation under failures reads: dispatched == finished + pending +
// aborted.
func (s *Scheduler) TasksAborted() int64 { return s.tasksAborted }

// ParkedTasks reports ready tasks waiting for a server to recover.
func (s *Scheduler) ParkedTasks() int { return len(s.parked) }

// DownServers reports how many managed servers are currently crashed.
func (s *Scheduler) DownServers() int { return s.downCount }

// OnJobLost subscribes a job-loss callback (invariant probes, fault
// ledgers). Subscribers run in registration order, after the scheduler's
// own counters are updated.
func (s *Scheduler) OnJobLost(fn func(*job.Job, LostReason)) {
	s.onJobLost = append(s.onJobLost, fn)
}

// aliveEligible returns the eligible servers that are up. With no
// crashed server in the farm it is exactly Eligible — no filtering, no
// allocation — so the fault machinery costs nothing on healthy runs.
// The returned slice is valid until the next call.
func (s *Scheduler) aliveEligible(t *job.Task) []*server.Server {
	cands := s.Eligible(t)
	if s.downCount == 0 {
		s.cover.Hit(modelcov.PlaceFastPath)
		return cands
	}
	s.cover.Hit(modelcov.PlaceFiltered)
	s.aliveScratch = s.aliveScratch[:0]
	for _, srv := range cands {
		if !srv.Failed() {
			s.aliveScratch = append(s.aliveScratch, srv)
		}
	}
	return s.aliveScratch
}

// Select runs the placement policy over the task's alive eligible
// servers. It returns an *AllDownError — never panics — when no
// eligible server is up.
func (s *Scheduler) Select(t *job.Task) (*server.Server, error) {
	cands := s.aliveEligible(t)
	if len(cands) == 0 {
		s.cover.Hit(modelcov.PlaceAllDown)
		return nil, &AllDownError{Kind: t.Kind}
	}
	srv := s.cfg.Placer.Place(s, t, cands)
	if srv == nil || srv.Failed() {
		// A policy that ignores the filtered candidate list (or returns
		// nil) falls back to the first alive candidate.
		s.cover.Hit(modelcov.PlaceFallback)
		srv = cands[0]
	}
	return srv, nil
}

// handleUnplaceable applies the orphan policy to a ready task that found
// no alive server: requeue parks it until a recovery drains the parked
// list; drop retracts its whole job.
func (s *Scheduler) handleUnplaceable(t *job.Task) {
	if s.cfg.Orphans == OrphanDrop {
		s.killJob(t.Job, LostNoAliveServer)
		return
	}
	t.State = job.TaskReady
	s.parked = append(s.parked, t)
	s.cover.Hit(modelcov.SchedOrphanPark)
}

// killJob retracts a job after a failure: every unfinished task is
// aborted wherever it lives (queued or running on a healthy server,
// parked, or in the global queue), committed counters are released, and
// the job is counted lost. Finished tasks stay finished — their work is
// wasted, not uncounted. Idempotent per job.
func (s *Scheduler) killJob(j *job.Job, reason LostReason) {
	if j.Done() || j.Lost() {
		return
	}
	j.MarkLost()
	if reason == LostServerCrash {
		s.cover.Hit(modelcov.SchedDropCrash)
	} else {
		s.cover.Hit(modelcov.SchedDropNoAlive)
	}
	// Two passes, queued/reserved tasks first: aborting a running task
	// makes its core pull the next queued task, and without this order a
	// doomed sibling queued behind it would transiently start (a wasted
	// schedule/cancel pair and two power recomputes per sibling) only to
	// be aborted by a later iteration.
	for pass := 0; pass < 2; pass++ {
		for _, t := range j.Tasks {
			if t.State == job.TaskFinished || t.State == job.TaskLost {
				continue
			}
			if (t.State == job.TaskRunning) != (pass == 1) {
				continue
			}
			if t.ServerID >= 0 {
				srv := s.servers[t.ServerID]
				if !srv.Failed() && srv.Abort(t) {
					s.tasksAborted++
				}
				s.commit(t.ServerID, -1)
			}
			t.State = job.TaskLost
		}
	}
	s.dropTracked(j)
	s.jobsInSystem--
	s.jobsLost++
	for _, fn := range s.onJobLost {
		fn(j, reason)
	}
}

// dropTracked removes a lost job's tasks from the parked list and the
// global queue.
func (s *Scheduler) dropTracked(j *job.Job) {
	if len(s.parked) > 0 {
		keep := s.parked[:0]
		for _, t := range s.parked {
			if t.Job != j {
				keep = append(keep, t)
			}
		}
		s.parked = keep
	}
	if len(s.globalQ) > 0 {
		keep := s.globalQ[:0]
		for _, t := range s.globalQ {
			if t.Job != j {
				keep = append(keep, t)
			}
		}
		s.globalQ = keep
	}
}

// ServerCrashed applies a crash to one managed server: the server's
// local state is discarded and every orphaned task is handled per the
// orphan policy — requeued onto an alive server (restarting from
// scratch; parked if none is up) or dropped with its whole job. It
// returns the jobs newly lost and the orphan count for the caller's
// fault ledger. Crashing an already-failed server is a no-op.
func (s *Scheduler) ServerCrashed(srv *server.Server) (jobsLost, orphans int) {
	if srv.Failed() {
		return 0, 0
	}
	return s.ServersCrashed([]*server.Server{srv})
}

// ServersCrashed applies a correlated crash to a batch of servers —
// one blast-radius event. The whole batch goes down first and only
// then is the orphan policy applied, so a requeued task can never land
// on a sibling that the same blast is about to kill. Already-failed
// members are skipped. For a single server the behavior is exactly
// ServerCrashed's.
func (s *Scheduler) ServersCrashed(srvs []*server.Server) (jobsLost, orphans int) {
	lostBefore := s.jobsLost
	type orphanSet struct {
		id    int
		tasks []*job.Task
	}
	var sets []orphanSet
	for _, srv := range srvs {
		if srv.Failed() {
			continue
		}
		tasks := srv.Crash()
		s.downCount++
		s.tasksAborted += int64(len(tasks))
		orphans += len(tasks)
		sets = append(sets, orphanSet{id: srv.ID(), tasks: tasks})
	}
	for _, set := range sets {
		for _, t := range set.tasks {
			if t.Job.Lost() || t.Job.Done() {
				continue // a sibling orphan already retracted the job
			}
			if s.cfg.Orphans == OrphanDrop {
				s.killJob(t.Job, LostServerCrash)
				continue
			}
			// Requeue: release the dead server's commitment and re-admit
			// the task as if it had just become ready.
			s.commit(set.id, -1)
			t.State = job.TaskReady
			t.ReadyAt = s.eng.Now()
			t.ServerID = -1
			s.cover.Hit(modelcov.SchedOrphanRequeue)
			s.admitReady(t)
		}
	}
	return int(s.jobsLost - lostBefore), orphans
}

// ServerRecovered boots a crashed server back into the farm and drains
// work that waited for it: parked tasks are re-admitted and the global
// queue is re-scanned. Recovering a healthy server is a no-op.
func (s *Scheduler) ServerRecovered(srv *server.Server) {
	s.ServersRecovered([]*server.Server{srv})
}

// ServersRecovered boots a batch of crashed servers back into the farm
// atomically, then drains parked tasks and the global queue once —
// recovering a rack re-scans waiting work against the whole restored
// capacity rather than per member. Healthy members are skipped; for a
// single server the behavior is exactly ServerRecovered's.
func (s *Scheduler) ServersRecovered(srvs []*server.Server) {
	recovered := false
	for _, srv := range srvs {
		if !srv.Failed() {
			continue
		}
		srv.Recover()
		s.downCount--
		recovered = true
	}
	if !recovered {
		return
	}
	if len(s.parked) > 0 {
		pending := s.parked
		s.parked = nil
		for _, t := range pending {
			if !t.Job.Lost() {
				s.cover.Hit(modelcov.SchedParkedDrain)
				s.admitReady(t)
			}
		}
	}
	s.drainGlobalQueue()
}
