package sched

import (
	"holdcsim/internal/job"
	"holdcsim/internal/server"
	"holdcsim/internal/simtime"
)

// DualTimer implements the dual delay-timer strategy of Sec. IV-B
// (originally [69]): the farm splits into a high-τ pool that is
// prioritized for incoming work (so it stays warm) and a low-τ pool that
// quickly drops into system sleep after draining. Placement prefers
// high-τ servers with spare slots, spilling into the low-τ pool only
// under load.
type DualTimer struct {
	// HighCount servers (lowest IDs) get TauHigh; the rest get TauLow.
	HighCount       int
	TauHigh, TauLow simtime.Time
	configured      bool
}

// NewDualTimer returns the policy; it configures server delay timers on
// first placement.
func NewDualTimer(highCount int, tauHigh, tauLow simtime.Time) *DualTimer {
	return &DualTimer{HighCount: highCount, TauHigh: tauHigh, TauLow: tauLow}
}

func (d *DualTimer) ensureConfigured(s *Scheduler) {
	if d.configured {
		return
	}
	d.configured = true
	for i, srv := range s.servers {
		if i < d.HighCount {
			srv.SetDelayTimer(true, d.TauHigh)
		} else {
			srv.SetDelayTimer(true, d.TauLow)
		}
	}
}

// Place implements Placer. The high-τ pool absorbs load first
// (least-loaded within it); overflow packs into as few low-τ servers as
// possible so the rest of the low pool stays asleep — spreading the
// spill would make the aggressive low-τ timers flap.
func (d *DualTimer) Place(s *Scheduler, t *job.Task, candidates []*server.Server) *server.Server {
	d.ensureConfigured(s)
	// Pool membership is by server ID (ensureConfigured gave IDs below
	// HighCount the high τ), not slice position: the candidate list can
	// be a filtered subset — crashed servers removed, or a kind
	// restriction — and positional splits would misclassify servers.
	// Least-loaded high-τ server with a spare slot.
	var best *server.Server
	for _, srv := range candidates {
		if srv.ID() >= d.HighCount || s.Load(srv) >= srv.Cores() {
			continue
		}
		if best == nil || s.Load(srv) < s.Load(best) {
			best = srv
		}
	}
	if best != nil {
		return best
	}
	// Spill: pack into the busiest awake low-τ server with a spare slot.
	for _, srv := range candidates {
		if srv.ID() < d.HighCount || srv.Asleep() || s.Load(srv) >= srv.Cores() {
			continue
		}
		if best == nil || s.Load(srv) > s.Load(best) {
			best = srv
		}
	}
	if best != nil {
		return best
	}
	// Wake the first sleeping low-τ server.
	for _, srv := range candidates {
		if srv.ID() >= d.HighCount && srv.Asleep() {
			return srv
		}
	}
	// Fully saturated: least loaded overall.
	best = candidates[0]
	for _, srv := range candidates[1:] {
		if s.Load(srv) < s.Load(best) {
			best = srv
		}
	}
	return best
}

// Name implements Placer.
func (d *DualTimer) Name() string { return "dual-delay-timer" }

// OnJobArrival implements Controller.
func (d *DualTimer) OnJobArrival(s *Scheduler, j *job.Job) { d.ensureConfigured(s) }

// OnTaskDone implements Controller.
func (d *DualTimer) OnTaskDone(s *Scheduler, t *job.Task) {}
