package sched

import (
	"holdcsim/internal/job"
	"holdcsim/internal/server"
)

// ShardedLeastLoaded approximates LeastLoaded at a fraction of the cost:
// it picks the shard with the smallest committed-task sum (argmin over
// the shardLoad aggregates the commit helper maintains), then the
// least-loaded server within that shard — O(shards + N/shards) per
// placement instead of O(N), which is what makes million-server farms
// placeable. Ties break to the lower shard index, then the lower server
// ID, mirroring LeastLoaded's determinism contract.
//
// The shard fast path requires the full healthy farm as the candidate
// set — the same condition as PR 4's alive-filter fast path. Kind-
// restricted tasks or any crashed server (candidates came alive-filtered)
// fall back to plain LeastLoaded over the given candidates, so behavior
// under faults is exactly the unsharded policy's.
type ShardedLeastLoaded struct{}

// Place implements Placer.
func (ShardedLeastLoaded) Place(s *Scheduler, t *job.Task, candidates []*server.Server) *server.Server {
	if s.shardOf == nil || len(candidates) != len(s.servers) {
		return LeastLoaded{}.Place(s, t, candidates)
	}
	best := 0
	for i := 1; i < len(s.shardLoad); i++ {
		if s.shardLoad[i] < s.shardLoad[best] {
			best = i
		}
	}
	members := s.shardMembers[best]
	if len(members) == 0 {
		return LeastLoaded{}.Place(s, t, candidates)
	}
	srv := members[0]
	for _, m := range members[1:] {
		if s.Load(m) < s.Load(srv) {
			srv = m
		}
	}
	return srv
}

// Name implements Placer.
func (ShardedLeastLoaded) Name() string { return "sharded-least-loaded" }
