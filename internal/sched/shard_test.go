package sched

import (
	"testing"

	"holdcsim/internal/job"
	"holdcsim/internal/server"
	"holdcsim/internal/simtime"
)

func TestBlockShards(t *testing.T) {
	m, n := BlockShards(10, 4)
	if n != 3 {
		t.Fatalf("shard count = %d, want 3", n)
	}
	want := []int32{0, 0, 0, 0, 1, 1, 1, 1, 2, 2}
	for i, sh := range m {
		if sh != want[i] {
			t.Fatalf("shardOf[%d] = %d, want %d", i, sh, want[i])
		}
	}
	if _, n := BlockShards(8, 0); n != 8 { // degenerate size clamps to 1
		t.Fatalf("size-0 shard count = %d, want 8", n)
	}
}

func TestSetShardsValidation(t *testing.T) {
	eng, servers := testFarm(t, 4, nil)
	s, err := New(eng, servers, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetShards([]int32{0, 0, 1}, 2); err == nil {
		t.Errorf("length mismatch accepted")
	}
	if err := s.SetShards([]int32{0, 0, 1, 5}, 2); err == nil {
		t.Errorf("out-of-range shard accepted")
	}
	if err := s.SetShards([]int32{0, 0, 1, 1}, 0); err == nil {
		t.Errorf("zero shard count accepted")
	}
	if err := s.SetShards([]int32{0, 0, 1, 1}, 2); err != nil {
		t.Fatal(err)
	}
	if !s.Sharded() {
		t.Fatalf("Sharded() false after SetShards")
	}
	if err := s.SetShards(nil, 0); err != nil || s.Sharded() {
		t.Fatalf("nil shardOf should disable sharding (err=%v)", err)
	}
}

// Shard load sums must track the committed counters through placement,
// completion, and fault paths — commit is the single mutation point.
func TestShardLoadMirrorsCommitted(t *testing.T) {
	eng, servers := testFarm(t, 8, nil)
	s, err := New(eng, servers, Config{Placer: ShardedLeastLoaded{}})
	if err != nil {
		t.Fatal(err)
	}
	shardOf, n := BlockShards(8, 2)
	if err := s.SetShards(shardOf, n); err != nil {
		t.Fatal(err)
	}
	check := func(where string) {
		sums := make([]int64, n)
		for id := range servers {
			sums[shardOf[id]] += int64(s.Committed(id))
		}
		for sh, want := range sums {
			if got := s.ShardLoad(sh); got != want {
				t.Fatalf("%s: shard %d load %d, want %d", where, sh, got, want)
			}
		}
	}
	for i := 0; i < 40; i++ {
		j := singleJob(job.ID(i), 0, 5*simtime.Millisecond)
		eng.Schedule(0, func() { s.JobArrived(j) })
	}
	for eng.Step() {
		check("mid-run")
	}
	check("after run")
	// Crash/recover releases and re-takes commitments through commit too.
	for i := 40; i < 56; i++ {
		j := singleJob(job.ID(i), eng.Now(), 50*simtime.Millisecond)
		s.JobArrived(j)
	}
	check("after burst")
	s.ServersCrashed(servers[:2])
	check("after crash")
	s.ServersRecovered(servers[:2])
	check("after recover")
	eng.Run()
	check("final")
}

// With a healthy full-farm candidate set the sharded placer must pick the
// least-committed shard (lowest index on ties), then the least-loaded
// member within it.
func TestShardedLeastLoadedPicksEmptiestShard(t *testing.T) {
	eng, servers := testFarm(t, 6, nil)
	s, err := New(eng, servers, Config{Placer: ShardedLeastLoaded{}})
	if err != nil {
		t.Fatal(err)
	}
	shardOf, n := BlockShards(6, 2)
	if err := s.SetShards(shardOf, n); err != nil {
		t.Fatal(err)
	}
	// Load shards 0 and 1 with long-running jobs so shard 2 is emptiest.
	var placed []int
	s.OnDispatch(func(srv *server.Server, _ *job.Task) { placed = append(placed, srv.ID()) })
	for i := 0; i < 4; i++ {
		s.JobArrived(singleJob(job.ID(i), 0, simtime.Second))
	}
	if len(placed) != 4 {
		t.Fatalf("dispatched %d tasks, want 4", len(placed))
	}
	// First two placements land on the first member of shards 0 and 1? No:
	// argmin over loads with ties to the lowest shard. Sequence: all loads
	// 0 → shard 0, server 0. Then shard 0 has load 1 → shard 1, server 2.
	// Then shard 2, server 4. Then shards tie at 1 → shard 0, server 1
	// (least-loaded member within shard 0).
	want := []int{0, 2, 4, 1}
	for i, id := range placed {
		if id != want[i] {
			t.Fatalf("placement %d landed on server %d, want %v", i, placed, want)
		}
	}
	eng.Run()
}

// Sharded placement must agree with plain LeastLoaded semantics when
// sharding is off or the candidate set is restricted (kinds, faults).
func TestShardedFallsBackWithoutShards(t *testing.T) {
	eng, servers := testFarm(t, 4, nil)
	s, err := New(eng, servers, Config{Placer: ShardedLeastLoaded{}})
	if err != nil {
		t.Fatal(err)
	}
	var placed []int
	s.OnDispatch(func(srv *server.Server, _ *job.Task) { placed = append(placed, srv.ID()) })
	for i := 0; i < 4; i++ {
		s.JobArrived(singleJob(job.ID(i), 0, simtime.Second))
	}
	// No shards: exact LeastLoaded order (0,1,2,3 as loads tie upward).
	want := []int{0, 1, 2, 3}
	for i, id := range placed {
		if id != want[i] {
			t.Fatalf("placement %d landed on %v, want %v", i, placed, want)
		}
	}
	eng.Run()
}

// Under faults the candidate set arrives alive-filtered (len !=
// len(servers)), so the sharded placer must take the fallback and never
// return a dead server.
func TestShardedAvoidsCrashedServers(t *testing.T) {
	eng, servers := testFarm(t, 6, nil)
	s, err := New(eng, servers, Config{Placer: ShardedLeastLoaded{}})
	if err != nil {
		t.Fatal(err)
	}
	shardOf, n := BlockShards(6, 2)
	if err := s.SetShards(shardOf, n); err != nil {
		t.Fatal(err)
	}
	s.ServersCrashed(servers[:2]) // kill all of shard 0
	var placed []int
	s.OnDispatch(func(srv *server.Server, _ *job.Task) { placed = append(placed, srv.ID()) })
	for i := 0; i < 8; i++ {
		s.JobArrived(singleJob(job.ID(i), 0, 10*simtime.Millisecond))
	}
	for _, id := range placed {
		if servers[id].Failed() {
			t.Fatalf("task placed on crashed server %d", id)
		}
		if id < 2 {
			t.Fatalf("task placed on dead shard member %d", id)
		}
	}
	eng.Run()
	if s.JobsCompleted() != 8 {
		t.Fatalf("completed %d of 8 with shard 0 down", s.JobsCompleted())
	}
}
