package fault_test

import (
	"testing"

	"holdcsim/internal/fault"
	"holdcsim/internal/scenario"
	"holdcsim/internal/sched"
)

// FuzzFaultSchedule composes a random scenario with a fuzz-controlled
// fault workload — crash/recover, link flap, switch death, both orphan
// policies, in-range durations — and requires that every failure-aware
// conservation law holds: the lost-work ledger reconciles, Little's
// integral splits exactly at crash boundaries, energy closure excludes
// down time, and no placement path panics even under a full-farm
// outage. Run with -race in the fuzz-smoke job: each execution owns its
// engine, so the target is race-clean by construction and the detector
// guards against shared state leaking into the fault paths.
func FuzzFaultSchedule(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(1), uint64(0xdeadbeef))
	f.Add(uint64(42), uint64(7))
	f.Add(uint64(77), uint64(1)<<62)
	f.Add(uint64(9999), uint64(0xfffffffffffffff))
	f.Fuzz(func(t *testing.T, seed, mut uint64) {
		s := scenario.Random(seed)
		take := func(n uint64) uint64 { // peel a field off the mutation word
			v := mut % n
			mut /= n
			return v
		}
		// Overwrite the fault axis entirely from the mutation word so the
		// fuzzer, not the generator's 35% coin, decides the fault mix.
		s.Faults = fault.Spec{
			ServerCrashes: int(take(6)),
			ServerDownSec: 0.01 + float64(take(40))*0.02,
			LinkFlaps:     int(take(4)),
			LinkDownSec:   0.01 + float64(take(20))*0.02,
			SwitchKills:   int(take(3)),
			SwitchDownSec: 0.01 + float64(take(20))*0.02,
			Orphans:       sched.OrphanPolicy(take(2)),
		}
		// Hard work bound for the fuzz executor (same budget as
		// FuzzScenario): cap generation so one exec stays fast no matter
		// what horizon the scenario composed.
		if s.MaxJobs == 0 || s.MaxJobs > 500 {
			s.MaxJobs = 500
		}
		if err := s.Validate(); err != nil {
			return // rejecting a malformed composition cleanly is the contract
		}
		res, err := s.Run()
		if err != nil {
			t.Fatalf("seed=%d mut=%#x %s: %v", seed, mut, s.Name(), err)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("seed=%d mut=%#x %s: violations %v", seed, mut, s.Name(), res.Violations)
		}
		r := res.Results
		if r.JobsCompleted+r.JobsLost > r.JobsGenerated {
			t.Fatalf("seed=%d mut=%#x: completed %d + lost %d > generated %d",
				seed, mut, r.JobsCompleted, r.JobsLost, r.JobsGenerated)
		}
		if !s.Faults.Empty() {
			if r.Faults == nil {
				t.Fatalf("seed=%d mut=%#x: faulted run returned no ledger", seed, mut)
			}
			if r.Faults.JobsLost() != r.JobsLost {
				t.Fatalf("seed=%d mut=%#x: ledger lost %d != results lost %d",
					seed, mut, r.Faults.JobsLost(), r.JobsLost)
			}
		}
	})
}
