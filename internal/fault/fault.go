// Package fault injects component failures into a running simulation:
// server crash/recover with an orphaned-task policy, link flap with
// in-flight packet loss, and switch death partitioning the topology.
//
// The design follows the "normal failure" view of cloud-scale data
// centers (SPECI-2, DCSim): component loss is steady-state, not an
// exception, so a holistic simulator must model it jointly with
// scheduling and power management — a crashed server's queue is lost or
// requeued, a dead switch silently blackholes the flows crossing it,
// and the energy books must exclude down time.
//
// Determinism contract: a fault timeline is a pure function of (seed,
// spec, farm shape) — Spec.Timeline draws every fault instant and
// duration from one labeled rng stream — and the Injector delivers each
// event through the engine's ordinary event queue, so a faulted run
// replays byte-identically and an empty timeline leaves the simulation
// byte-identical to an un-instrumented one (TestFaultFreeEquivalence).
//
// Accounting contract: the Injector keeps a Ledger of every fault
// applied and every job lost, fed by the scheduler's return values and
// loss callbacks — an account independent of the scheduler's own
// counters, which the invariant checker reconciles at Finalize
// (generated == completed + in-system + lost, with lost cross-checked
// against the ledger).
package fault

import (
	"fmt"
	"math"
	"sort"

	"holdcsim/internal/engine"
	"holdcsim/internal/job"
	"holdcsim/internal/network"
	"holdcsim/internal/rng"
	"holdcsim/internal/sched"
	"holdcsim/internal/server"
	"holdcsim/internal/simtime"
)

// Kind is a fault event type.
type Kind uint8

// Fault event kinds. Down/up events come in pairs; the Injector skips
// an event whose target is already in the requested state (two crash
// draws overlapping on one server), counting it in the ledger.
const (
	ServerCrash Kind = iota
	ServerRecover
	LinkCut
	LinkRestore
	SwitchFail
	SwitchRestore
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case ServerCrash:
		return "server-crash"
	case ServerRecover:
		return "server-recover"
	case LinkCut:
		return "link-cut"
	case LinkRestore:
		return "link-restore"
	case SwitchFail:
		return "switch-fail"
	case SwitchRestore:
		return "switch-restore"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one scheduled fault. Target indexes servers, links, or
// switches (network.Switches() order) per the kind. Pair ties a
// down/up couple together: a restore applies only if its own outage's
// down event was the one that took the target down, so overlapping
// draws on one target cannot truncate an earlier outage's duration.
type Event struct {
	At     simtime.Time
	Kind   Kind
	Target int
	Pair   int
}

// Timeline is a time-ordered fault schedule.
type Timeline struct {
	Events []Event
}

// Empty reports whether the timeline schedules nothing.
func (tl Timeline) Empty() bool { return len(tl.Events) == 0 }

// Spec declares a fault workload as plain, comparable data — a scenario
// axis. Counts say how many outages of each class to draw; durations
// are mean outage lengths (each outage draws uniformly in [0.5, 1.5]×
// mean, so recoveries stay bounded). The zero Spec is fault-free.
type Spec struct {
	// ServerCrashes is the number of server crash/recover pairs.
	ServerCrashes int `json:"serverCrashes,omitempty"`
	// ServerDownSec is the mean server outage duration in seconds.
	ServerDownSec float64 `json:"serverDownSec,omitempty"`
	// LinkFlaps is the number of link cut/restore pairs.
	LinkFlaps int `json:"linkFlaps,omitempty"`
	// LinkDownSec is the mean link outage duration in seconds.
	LinkDownSec float64 `json:"linkDownSec,omitempty"`
	// SwitchKills is the number of switch fail/restore pairs.
	SwitchKills int `json:"switchKills,omitempty"`
	// SwitchDownSec is the mean switch outage duration in seconds.
	SwitchDownSec float64 `json:"switchDownSec,omitempty"`
	// HorizonSec is the window fault instants are drawn from. When zero
	// the simulation's duration horizon is used (core fills it in).
	HorizonSec float64 `json:"horizonSec,omitempty"`
	// Orphans selects the crash policy for stranded tasks: requeue
	// (default) or drop the whole job.
	Orphans sched.OrphanPolicy `json:"orphans,omitempty"`
}

// Empty reports whether the spec schedules no faults.
func (sp Spec) Empty() bool {
	return sp.ServerCrashes == 0 && sp.LinkFlaps == 0 && sp.SwitchKills == 0
}

// Zero reports whether the spec is the zero value — not merely
// scheduling no faults, but carrying no parameters at all. The
// distinction matters to scenario labels: an Empty-but-not-Zero spec
// still distinguishes two scenario values.
func (sp Spec) Zero() bool { return sp == Spec{} }

// Validate rejects malformed specs (negative counts, non-finite or
// negative durations).
func (sp Spec) Validate() error {
	if sp.ServerCrashes < 0 || sp.LinkFlaps < 0 || sp.SwitchKills < 0 {
		return fmt.Errorf("fault: negative event count in %+v", sp)
	}
	for _, d := range [...]float64{sp.ServerDownSec, sp.LinkDownSec, sp.SwitchDownSec, sp.HorizonSec} {
		if math.IsNaN(d) || math.IsInf(d, 0) || d < 0 {
			return fmt.Errorf("fault: invalid duration %g", d)
		}
	}
	return nil
}

// String summarizes the spec ("nofault" for the zero value) for
// scenario names. The rendering is injective over spec values: every
// field appears with round-trip precision — durations, the draw horizon
// when set, and (for an Empty spec with leftover parameters) a
// parenthesized tail — so two distinct specs never share a label.
func (sp Spec) String() string {
	if sp.Zero() {
		return "nofault"
	}
	if sp.Empty() {
		return fmt.Sprintf("nofault(c%g-l%g-s%g-h%g-%s)",
			sp.ServerDownSec, sp.LinkDownSec, sp.SwitchDownSec, sp.HorizonSec, sp.Orphans)
	}
	s := fmt.Sprintf("f%dc%g-%dl%g-%ds%g-%s",
		sp.ServerCrashes, sp.ServerDownSec,
		sp.LinkFlaps, sp.LinkDownSec,
		sp.SwitchKills, sp.SwitchDownSec, sp.Orphans)
	if sp.HorizonSec != 0 {
		s += fmt.Sprintf("-h%g", sp.HorizonSec)
	}
	return s
}

// Timeline draws the concrete fault schedule: a pure function of the
// rng stream (derive it from the experiment seed with a dedicated
// label), the horizon, and the farm shape. Classes whose target
// population is zero (link flaps on a server-only farm) are skipped.
// Outage instants are uniform over the first 90% of the horizon so a
// recovery usually lands inside the run; durations are uniform in
// [0.5, 1.5]× the class mean.
func (sp Spec) Timeline(r *rng.Source, horizonSec float64, servers, links, switches int) Timeline {
	var tl Timeline
	pair := 0
	draw := func(n int, count int, downSec float64, down, up Kind) {
		if n <= 0 {
			return
		}
		for i := 0; i < count; i++ {
			at := simtime.FromSeconds(r.Float64() * horizonSec * 0.9)
			dur := simtime.FromSeconds(downSec * (0.5 + r.Float64()))
			target := r.IntN(n)
			tl.Events = append(tl.Events, Event{At: at, Kind: down, Target: target, Pair: pair})
			tl.Events = append(tl.Events, Event{At: at + dur, Kind: up, Target: target, Pair: pair})
			pair++
		}
	}
	draw(servers, sp.ServerCrashes, sp.ServerDownSec, ServerCrash, ServerRecover)
	draw(links, sp.LinkFlaps, sp.LinkDownSec, LinkCut, LinkRestore)
	draw(switches, sp.SwitchKills, sp.SwitchDownSec, SwitchFail, SwitchRestore)
	sort.SliceStable(tl.Events, func(i, j int) bool {
		return tl.Events[i].At < tl.Events[j].At
	})
	return tl
}

// Ledger is the injector's independent account of applied faults and
// lost work. It accumulates through the scheduler's return values and
// loss callbacks — not the scheduler's own counters — so the invariant
// checker can reconcile the two at the end of a run.
type Ledger struct {
	ServerCrashes   int64
	ServerRecovers  int64
	LinkCuts        int64
	LinkRestores    int64
	SwitchFails     int64
	SwitchRestores  int64
	Skipped         int64 // events whose target was already in the requested state
	JobsLostCrash   int64 // jobs retracted by a crash (OrphanDrop)
	JobsLostNoAlive int64 // jobs retracted for lack of any alive server (OrphanDrop)
	TasksOrphaned   int64 // task incarnations stranded on crashed servers
}

// JobsLost reports total jobs the ledger saw lost.
func (ld Ledger) JobsLost() int64 { return ld.JobsLostCrash + ld.JobsLostNoAlive }

// Applied reports total fault events applied (skips excluded).
func (ld Ledger) Applied() int64 {
	return ld.ServerCrashes + ld.ServerRecovers + ld.LinkCuts +
		ld.LinkRestores + ld.SwitchFails + ld.SwitchRestores
}

// Injector owns a timeline's delivery: one engine event per fault, in
// timeline order, applied against the scheduler and network.
type Injector struct {
	eng     *engine.Engine
	sch     *sched.Scheduler
	servers []*server.Server
	net     *network.Network // nil on server-only farms
	tl      Timeline
	ledger  Ledger

	// downBy records, per target class, which outage pair took a target
	// down. A restore whose pair does not match is skipped: its own down
	// event overlapped an earlier outage and was itself skipped, so
	// applying its restore would truncate the earlier outage's duration.
	srvDownBy  map[int]int
	linkDownBy map[int]int
	swDownBy   map[int]int
}

// Attach schedules a timeline's events on the engine and wires the
// ledger's loss subscription. net may be nil (server-only farm);
// network events are then skipped. Call before the run starts so event
// ordering is deterministic.
func Attach(eng *engine.Engine, tl Timeline, sch *sched.Scheduler,
	servers []*server.Server, net *network.Network) *Injector {
	inj := &Injector{
		eng: eng, sch: sch, servers: servers, net: net, tl: tl,
		srvDownBy:  make(map[int]int),
		linkDownBy: make(map[int]int),
		swDownBy:   make(map[int]int),
	}
	sch.OnJobLost(func(j *job.Job, reason sched.LostReason) {
		if reason == sched.LostNoAliveServer {
			inj.ledger.JobsLostNoAlive++
		}
	})
	for _, ev := range tl.Events {
		ev := ev
		eng.Schedule(ev.At, func() { inj.apply(ev) })
	}
	return inj
}

// Timeline reports the schedule the injector was attached with.
func (inj *Injector) Timeline() Timeline { return inj.tl }

// Ledger snapshots the fault account.
func (inj *Injector) Ledger() Ledger { return inj.ledger }

// JobsLost reports the ledger's independent lost-job total (the
// invariant checker's cross-check hook).
func (inj *Injector) JobsLost() int64 { return inj.ledger.JobsLost() }

// apply delivers one fault event. Events whose target is already in the
// requested state (or out of range for this farm) are skipped and
// counted; a restore whose matching down event was skipped is skipped
// too, so every applied outage runs its full drawn duration.
func (inj *Injector) apply(ev Event) {
	switch ev.Kind {
	case ServerCrash:
		if ev.Target >= len(inj.servers) || inj.servers[ev.Target].Failed() {
			inj.ledger.Skipped++
			return
		}
		lost, orphans := inj.sch.ServerCrashed(inj.servers[ev.Target])
		inj.srvDownBy[ev.Target] = ev.Pair
		inj.ledger.ServerCrashes++
		inj.ledger.JobsLostCrash += int64(lost)
		inj.ledger.TasksOrphaned += int64(orphans)
	case ServerRecover:
		if ev.Target >= len(inj.servers) || !inj.servers[ev.Target].Failed() ||
			inj.srvDownBy[ev.Target] != ev.Pair {
			inj.ledger.Skipped++
			return
		}
		inj.sch.ServerRecovered(inj.servers[ev.Target])
		delete(inj.srvDownBy, ev.Target)
		inj.ledger.ServerRecovers++
	case LinkCut:
		if inj.net == nil || ev.Target >= inj.net.NumLinks() || inj.net.LinkAdminDown(ev.Target) {
			inj.ledger.Skipped++
			return
		}
		if err := inj.net.SetLinkAdmin(ev.Target, false); err != nil {
			panic(err) // range-checked above
		}
		inj.linkDownBy[ev.Target] = ev.Pair
		inj.ledger.LinkCuts++
	case LinkRestore:
		if inj.net == nil || ev.Target >= inj.net.NumLinks() || !inj.net.LinkAdminDown(ev.Target) ||
			inj.linkDownBy[ev.Target] != ev.Pair {
			inj.ledger.Skipped++
			return
		}
		if err := inj.net.SetLinkAdmin(ev.Target, true); err != nil {
			panic(err)
		}
		delete(inj.linkDownBy, ev.Target)
		inj.ledger.LinkRestores++
	case SwitchFail:
		sw := inj.switchAt(ev.Target)
		if sw == nil || sw.Failed() {
			inj.ledger.Skipped++
			return
		}
		if err := inj.net.SetSwitchAdmin(sw.Node(), false); err != nil {
			panic(err)
		}
		inj.swDownBy[ev.Target] = ev.Pair
		inj.ledger.SwitchFails++
	case SwitchRestore:
		sw := inj.switchAt(ev.Target)
		if sw == nil || !sw.Failed() || inj.swDownBy[ev.Target] != ev.Pair {
			inj.ledger.Skipped++
			return
		}
		if err := inj.net.SetSwitchAdmin(sw.Node(), true); err != nil {
			panic(err)
		}
		delete(inj.swDownBy, ev.Target)
		inj.ledger.SwitchRestores++
	}
}

// switchAt resolves a switch index (Switches() order) or nil.
func (inj *Injector) switchAt(i int) *network.Switch {
	if inj.net == nil {
		return nil
	}
	sws := inj.net.Switches()
	if i >= len(sws) {
		return nil
	}
	return sws[i]
}
