// Package fault injects component failures into a running simulation:
// server crash/recover with an orphaned-task policy, link flap with
// in-flight packet loss, and switch death partitioning the topology.
//
// The design follows the "normal failure" view of cloud-scale data
// centers (SPECI-2, DCSim): component loss is steady-state, not an
// exception, so a holistic simulator must model it jointly with
// scheduling and power management — a crashed server's queue is lost or
// requeued, a dead switch silently blackholes the flows crossing it,
// and the energy books must exclude down time.
//
// Beyond independent point faults, the engine models *correlated*
// failure: blast-radius events whose target is a whole rack, pod, or
// switch subtree (every component in scope crashes atomically, in
// deterministic ascending order); MTTF/MTTR renewal processes drawing
// open-ended per-component failure/repair timelines from Weibull or
// exponential lifetime distributions, with a repair-crew capacity limit
// serializing recoveries; cascade rules where an applied crash
// overload-crashes pod siblings with per-edge probability, delay, and a
// depth cap; and outage-log replay from recorded `start dur scope
// target` trace files (see internal/trace.ReadOutages).
//
// Determinism contract: a fault timeline is a pure function of (seed,
// spec, farm shape) — Spec.Timeline draws every fault instant and
// duration from one labeled rng stream — and the Injector delivers each
// event through the engine's ordinary event queue, so a faulted run
// replays byte-identically and an empty timeline leaves the simulation
// byte-identical to an un-instrumented one (TestFaultFreeEquivalence).
//
// Accounting contract: the Injector keeps a Ledger of every fault
// applied and every job lost, fed by the scheduler's return values and
// loss callbacks — an account independent of the scheduler's own
// counters, which the invariant checker reconciles at Finalize
// (generated == completed + in-system + lost, with lost cross-checked
// against the ledger).
package fault

import (
	"fmt"
	"math"
	"sort"

	"holdcsim/internal/engine"
	"holdcsim/internal/job"
	"holdcsim/internal/modelcov"
	"holdcsim/internal/network"
	"holdcsim/internal/rng"
	"holdcsim/internal/sched"
	"holdcsim/internal/server"
	"holdcsim/internal/simtime"
)

// Kind is a fault event type.
type Kind uint8

// Fault event kinds. Down/up events come in pairs; the Injector skips
// an event whose target is already in the requested state (two crash
// draws overlapping on one server), counting it in the ledger.
const (
	ServerCrash Kind = iota
	ServerRecover
	LinkCut
	LinkRestore
	SwitchFail
	SwitchRestore
	// ScopeDown and ScopeUp are blast-radius events: Target names a
	// scope instance (rack index, pod index, switch index, or server
	// index per Event.Scope) and the whole membership goes down or
	// comes back atomically.
	ScopeDown
	ScopeUp
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case ServerCrash:
		return "server-crash"
	case ServerRecover:
		return "server-recover"
	case LinkCut:
		return "link-cut"
	case LinkRestore:
		return "link-restore"
	case SwitchFail:
		return "switch-fail"
	case SwitchRestore:
		return "switch-restore"
	case ScopeDown:
		return "scope-down"
	case ScopeUp:
		return "scope-up"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one scheduled fault. Target indexes servers, links, or
// switches (network.Switches() order) per the kind. Pair ties a
// down/up couple together: a restore applies only if its own outage's
// down event was the one that took the target down, so overlapping
// draws on one target cannot truncate an earlier outage's duration.
type Event struct {
	At     simtime.Time
	Kind   Kind
	Target int
	Pair   int
	// Scope qualifies ScopeDown/ScopeUp events: the failure domain
	// Target indexes into. Zero (ScopeServer) for point events.
	Scope ScopeKind
}

// Timeline is a time-ordered fault schedule.
type Timeline struct {
	Events []Event
}

// Empty reports whether the timeline schedules nothing.
func (tl Timeline) Empty() bool { return len(tl.Events) == 0 }

// Spec declares a fault workload as plain, comparable data — a scenario
// axis. Counts say how many outages of each class to draw; durations
// are mean outage lengths (each outage draws uniformly in [0.5, 1.5]×
// mean, so recoveries stay bounded). The zero Spec is fault-free.
type Spec struct {
	// ServerCrashes is the number of server crash/recover pairs.
	ServerCrashes int `json:"serverCrashes,omitempty"`
	// ServerDownSec is the mean server outage duration in seconds.
	ServerDownSec float64 `json:"serverDownSec,omitempty"`
	// LinkFlaps is the number of link cut/restore pairs.
	LinkFlaps int `json:"linkFlaps,omitempty"`
	// LinkDownSec is the mean link outage duration in seconds.
	LinkDownSec float64 `json:"linkDownSec,omitempty"`
	// SwitchKills is the number of switch fail/restore pairs.
	SwitchKills int `json:"switchKills,omitempty"`
	// SwitchDownSec is the mean switch outage duration in seconds.
	SwitchDownSec float64 `json:"switchDownSec,omitempty"`
	// HorizonSec is the window fault instants are drawn from. When zero
	// the simulation's duration horizon is used (core fills it in).
	HorizonSec float64 `json:"horizonSec,omitempty"`
	// Orphans selects the crash policy for stranded tasks: requeue
	// (default) or drop the whole job.
	Orphans sched.OrphanPolicy `json:"orphans,omitempty"`

	// Blast-radius classes: each draws count scope-down/up pairs whose
	// target is a whole failure domain, resolved against the topology's
	// ScopeMap. RackKills takes out a rack's servers plus its ToR;
	// PodKills a pod's servers plus its switches; SubtreeKills a switch
	// plus its directly attached servers.
	RackKills      int     `json:"rackKills,omitempty"`
	RackDownSec    float64 `json:"rackDownSec,omitempty"`
	PodKills       int     `json:"podKills,omitempty"`
	PodDownSec     float64 `json:"podDownSec,omitempty"`
	SubtreeKills   int     `json:"subtreeKills,omitempty"`
	SubtreeDownSec float64 `json:"subtreeDownSec,omitempty"`

	// Renewal processes: when a class MTTF is positive, every component
	// of that class alternates Weibull(WeibullShape)-distributed
	// lifetimes (mean MTTF) and exponential repairs (mean MTTR) across
	// the whole horizon. WeibullShape zero or one selects the
	// exponential lifetime. RepairCrews > 0 bounds concurrent repairs:
	// a failed component waits for a free crew before its repair clock
	// starts (zero means unlimited crews).
	ServerMTTFSec float64 `json:"serverMTTFSec,omitempty"`
	ServerMTTRSec float64 `json:"serverMTTRSec,omitempty"`
	SwitchMTTFSec float64 `json:"switchMTTFSec,omitempty"`
	SwitchMTTRSec float64 `json:"switchMTTRSec,omitempty"`
	WeibullShape  float64 `json:"weibullShape,omitempty"`
	RepairCrews   int     `json:"repairCrews,omitempty"`

	// Cascade rules: an applied crash that takes down at least one
	// server overload-crashes each still-alive pod sibling with
	// probability CascadeP after a delay drawn around CascadeDelaySec,
	// recursively up to CascadeDepth levels. Both CascadeP > 0 and
	// CascadeDepth > 0 are required for cascades to fire.
	CascadeP        float64 `json:"cascadeP,omitempty"`
	CascadeDelaySec float64 `json:"cascadeDelaySec,omitempty"`
	CascadeDepth    int     `json:"cascadeDepth,omitempty"`

	// TraceFile replays a recorded outage log (one `start dur scope
	// target` event per line; see trace.ReadOutages) on top of any
	// drawn classes.
	TraceFile string `json:"traceFile,omitempty"`
}

// Empty reports whether the spec schedules no faults.
func (sp Spec) Empty() bool {
	return sp.ServerCrashes == 0 && sp.LinkFlaps == 0 && sp.SwitchKills == 0 &&
		sp.RackKills == 0 && sp.PodKills == 0 && sp.SubtreeKills == 0 &&
		sp.ServerMTTFSec == 0 && sp.SwitchMTTFSec == 0 && sp.TraceFile == ""
}

// Zero reports whether the spec is the zero value — not merely
// scheduling no faults, but carrying no parameters at all. The
// distinction matters to scenario labels: an Empty-but-not-Zero spec
// still distinguishes two scenario values.
func (sp Spec) Zero() bool { return sp == Spec{} }

// Validate rejects malformed specs (negative counts, non-finite or
// negative durations).
func (sp Spec) Validate() error {
	if sp.ServerCrashes < 0 || sp.LinkFlaps < 0 || sp.SwitchKills < 0 ||
		sp.RackKills < 0 || sp.PodKills < 0 || sp.SubtreeKills < 0 {
		return fmt.Errorf("fault: negative event count in %+v", sp)
	}
	if sp.RepairCrews < 0 || sp.CascadeDepth < 0 {
		return fmt.Errorf("fault: negative capacity in %+v", sp)
	}
	for _, d := range [...]float64{sp.ServerDownSec, sp.LinkDownSec, sp.SwitchDownSec, sp.HorizonSec,
		sp.RackDownSec, sp.PodDownSec, sp.SubtreeDownSec,
		sp.ServerMTTFSec, sp.ServerMTTRSec, sp.SwitchMTTFSec, sp.SwitchMTTRSec,
		sp.WeibullShape, sp.CascadeDelaySec} {
		if math.IsNaN(d) || math.IsInf(d, 0) || d < 0 {
			return fmt.Errorf("fault: invalid duration %g", d)
		}
	}
	if math.IsNaN(sp.CascadeP) || sp.CascadeP < 0 || sp.CascadeP > 1 {
		return fmt.Errorf("fault: cascade probability %g outside [0, 1]", sp.CascadeP)
	}
	if sp.ServerMTTFSec > 0 && sp.ServerMTTRSec <= 0 {
		return fmt.Errorf("fault: server renewal needs a positive MTTR (mttf=%g)", sp.ServerMTTFSec)
	}
	if sp.SwitchMTTFSec > 0 && sp.SwitchMTTRSec <= 0 {
		return fmt.Errorf("fault: switch renewal needs a positive MTTR (mttf=%g)", sp.SwitchMTTFSec)
	}
	return nil
}

// String summarizes the spec ("nofault" for the zero value) for
// scenario names. The rendering is injective over spec values: every
// field appears with round-trip precision — durations, the draw horizon
// when set, and (for an Empty spec with leftover parameters) a
// parenthesized tail — so two distinct specs never share a label.
func (sp Spec) String() string {
	if sp.Zero() {
		return "nofault"
	}
	if sp.Empty() {
		return fmt.Sprintf("nofault(c%g-l%g-s%g-h%g-%s%s)",
			sp.ServerDownSec, sp.LinkDownSec, sp.SwitchDownSec, sp.HorizonSec, sp.Orphans, sp.ext())
	}
	s := fmt.Sprintf("f%dc%g-%dl%g-%ds%g-%s",
		sp.ServerCrashes, sp.ServerDownSec,
		sp.LinkFlaps, sp.LinkDownSec,
		sp.SwitchKills, sp.SwitchDownSec, sp.Orphans)
	if sp.HorizonSec != 0 {
		s += fmt.Sprintf("-h%g", sp.HorizonSec)
	}
	return s + sp.ext()
}

// ext renders the correlated-model fields as label segments. Every
// segment appears exactly when its fields are nonzero and carries them
// at round-trip precision, so the extended label stays injective while
// pre-correlation specs render byte-identically to before.
func (sp Spec) ext() string {
	var s string
	if sp.RackKills != 0 || sp.RackDownSec != 0 {
		s += fmt.Sprintf("-%drk%g", sp.RackKills, sp.RackDownSec)
	}
	if sp.PodKills != 0 || sp.PodDownSec != 0 {
		s += fmt.Sprintf("-%dpd%g", sp.PodKills, sp.PodDownSec)
	}
	if sp.SubtreeKills != 0 || sp.SubtreeDownSec != 0 {
		s += fmt.Sprintf("-%dst%g", sp.SubtreeKills, sp.SubtreeDownSec)
	}
	if sp.ServerMTTFSec != 0 || sp.ServerMTTRSec != 0 {
		s += fmt.Sprintf("-mttf%g:%g", sp.ServerMTTFSec, sp.ServerMTTRSec)
	}
	if sp.SwitchMTTFSec != 0 || sp.SwitchMTTRSec != 0 {
		s += fmt.Sprintf("-swmttf%g:%g", sp.SwitchMTTFSec, sp.SwitchMTTRSec)
	}
	if sp.WeibullShape != 0 {
		s += fmt.Sprintf("-wb%g", sp.WeibullShape)
	}
	if sp.RepairCrews != 0 {
		s += fmt.Sprintf("-crew%d", sp.RepairCrews)
	}
	if sp.CascadeP != 0 || sp.CascadeDelaySec != 0 || sp.CascadeDepth != 0 {
		s += fmt.Sprintf("-casc%g:%g:%d", sp.CascadeP, sp.CascadeDelaySec, sp.CascadeDepth)
	}
	if sp.TraceFile != "" {
		s += fmt.Sprintf("-tf%q", sp.TraceFile)
	}
	return s
}

// Timeline draws the *point-fault* schedule: a pure function of the
// rng stream (derive it from the experiment seed with a dedicated
// label), the horizon, and the farm shape. Classes whose target
// population is zero (link flaps on a server-only farm) are skipped.
// Outage instants are uniform over the first 90% of the horizon so a
// recovery usually lands inside the run; durations are uniform in
// [0.5, 1.5]× the class mean. The correlated classes (blast radius,
// renewal, replay) need topology scope data and file access — use
// TimelineFor for the full schedule.
func (sp Spec) Timeline(r *rng.Source, horizonSec float64, servers, links, switches int) Timeline {
	var tl Timeline
	pair := 0
	sp.drawPoint(r, horizonSec, servers, links, switches, &tl, &pair)
	sortTimeline(&tl)
	return tl
}

// drawPoint appends the three point-fault classes in their fixed draw
// order. This draw sequence is frozen: TimelineFor consumes it first so
// a pre-correlation spec yields a byte-identical schedule.
func (sp Spec) drawPoint(r *rng.Source, horizonSec float64, servers, links, switches int, tl *Timeline, pair *int) {
	draw := func(n int, count int, downSec float64, down, up Kind) {
		if n <= 0 {
			return
		}
		for i := 0; i < count; i++ {
			at := simtime.FromSeconds(r.Float64() * horizonSec * 0.9)
			dur := simtime.FromSeconds(downSec * (0.5 + r.Float64()))
			target := r.IntN(n)
			tl.Events = append(tl.Events, Event{At: at, Kind: down, Target: target, Pair: *pair})
			tl.Events = append(tl.Events, Event{At: at + dur, Kind: up, Target: target, Pair: *pair})
			*pair++
		}
	}
	draw(servers, sp.ServerCrashes, sp.ServerDownSec, ServerCrash, ServerRecover)
	draw(links, sp.LinkFlaps, sp.LinkDownSec, LinkCut, LinkRestore)
	draw(switches, sp.SwitchKills, sp.SwitchDownSec, SwitchFail, SwitchRestore)
}

func sortTimeline(tl *Timeline) {
	sort.SliceStable(tl.Events, func(i, j int) bool {
		return tl.Events[i].At < tl.Events[j].At
	})
}

// Ledger is the injector's independent account of applied faults and
// lost work. It accumulates through the scheduler's return values and
// loss callbacks — not the scheduler's own counters — so the invariant
// checker can reconcile the two at the end of a run.
type Ledger struct {
	ServerCrashes   int64
	ServerRecovers  int64
	LinkCuts        int64
	LinkRestores    int64
	SwitchFails     int64
	SwitchRestores  int64
	Skipped         int64 // events whose target was already in the requested state
	JobsLostCrash   int64 // jobs retracted by a crash (OrphanDrop)
	JobsLostNoAlive int64 // jobs retracted for lack of any alive server (OrphanDrop)
	TasksOrphaned   int64 // task incarnations stranded on crashed servers

	// JobsLostByScope attributes JobsLostCrash to the scope of the
	// causing down event (indexed by ScopeKind; point server crashes
	// land on ScopeServer). The scope-consistency invariant law checks
	// the attribution sums back to JobsLostCrash.
	JobsLostByScope [NumScopes]int64
	// CascadeCrashes counts server crashes applied at cascade depth
	// >= 1 — a subset of ServerCrashes.
	CascadeCrashes int64
}

// JobsLost reports total jobs the ledger saw lost.
func (ld Ledger) JobsLost() int64 { return ld.JobsLostCrash + ld.JobsLostNoAlive }

// Applied reports total fault events applied (skips excluded).
func (ld Ledger) Applied() int64 {
	return ld.ServerCrashes + ld.ServerRecovers + ld.LinkCuts +
		ld.LinkRestores + ld.SwitchFails + ld.SwitchRestores
}

// Injector owns a timeline's delivery: one engine event per fault, in
// timeline order, applied against the scheduler and network.
type Injector struct {
	eng     *engine.Engine
	sch     *sched.Scheduler
	servers []*server.Server
	net     *network.Network // nil on server-only farms
	tl      Timeline
	ledger  Ledger

	// Correlated-model state: scope resolution, the cascade rng (nil
	// disables cascades), the spec's cascade parameters, and the next
	// pair id for cascade-scheduled outages (above the timeline's).
	topo     *Topo
	cascade  *rng.Source
	spec     Spec
	nextPair int

	// downBy records, per target class, which outage pair took a target
	// down. A restore whose pair does not match is skipped: its own down
	// event overlapped an earlier outage and was itself skipped, so
	// applying its restore would truncate the earlier outage's duration.
	srvDownBy  map[int]int
	linkDownBy map[int]int
	swDownBy   map[int]int

	// cover, when non-nil, receives applied-fault-kind, scope, and
	// cascade-depth coverage features (modelcov; recording only).
	cover *modelcov.Map
}

// AttachOpts carries the correlated-model wiring for AttachWith. The
// zero value reproduces plain point-fault attachment.
type AttachOpts struct {
	// Topo resolves rack/pod/subtree scopes; nil restricts scoped
	// events to ScopeServer.
	Topo *Topo
	// Cascade is the rng stream cascade draws consume; nil disables
	// cascades regardless of Spec.
	Cascade *rng.Source
	// Spec supplies the cascade parameters (CascadeP, CascadeDelaySec,
	// CascadeDepth) and the fallback outage duration for cascade
	// crashes (ServerDownSec).
	Spec Spec
	// Cover, when non-nil, records applied fault kinds, blast-radius
	// scopes, and cascade depths into the model-state coverage map.
	Cover *modelcov.Map
}

// Attach schedules a timeline's events on the engine and wires the
// ledger's loss subscription. net may be nil (server-only farm);
// network events are then skipped. Call before the run starts so event
// ordering is deterministic.
func Attach(eng *engine.Engine, tl Timeline, sch *sched.Scheduler,
	servers []*server.Server, net *network.Network) *Injector {
	return AttachWith(eng, tl, sch, servers, net, AttachOpts{})
}

// AttachWith is Attach plus the correlated-failure wiring: topology
// scope resolution and the cascade stream.
func AttachWith(eng *engine.Engine, tl Timeline, sch *sched.Scheduler,
	servers []*server.Server, net *network.Network, o AttachOpts) *Injector {
	inj := &Injector{
		eng: eng, sch: sch, servers: servers, net: net, tl: tl,
		topo: o.Topo, cascade: o.Cascade, spec: o.Spec, cover: o.Cover,
		srvDownBy:  make(map[int]int),
		linkDownBy: make(map[int]int),
		swDownBy:   make(map[int]int),
	}
	for _, ev := range tl.Events {
		if ev.Pair >= inj.nextPair {
			inj.nextPair = ev.Pair + 1
		}
	}
	sch.OnJobLost(func(j *job.Job, reason sched.LostReason) {
		if reason == sched.LostNoAliveServer {
			inj.ledger.JobsLostNoAlive++
		}
	})
	for _, ev := range tl.Events {
		ev := ev
		eng.Schedule(ev.At, func() { inj.apply(ev, 0) })
	}
	return inj
}

// Timeline reports the schedule the injector was attached with.
func (inj *Injector) Timeline() Timeline { return inj.tl }

// Ledger snapshots the fault account.
func (inj *Injector) Ledger() Ledger { return inj.ledger }

// JobsLost reports the ledger's independent lost-job total (the
// invariant checker's cross-check hook).
func (inj *Injector) JobsLost() int64 { return inj.ledger.JobsLost() }

// apply delivers one fault event. Events whose target is already in the
// requested state (or out of range for this farm) are skipped and
// counted; a restore whose matching down event was skipped is skipped
// too, so every applied outage runs its full drawn duration. depth is
// the cascade depth of the event (0 for timeline events); an applied
// crash may trigger dependent failures via the cascade rules.
func (inj *Injector) apply(ev Event, depth int) {
	switch ev.Kind {
	case ServerCrash:
		if ev.Target >= len(inj.servers) || inj.servers[ev.Target].Failed() {
			inj.ledger.Skipped++
			return
		}
		// Ownership is recorded before the crash call: orphan handling can
		// re-enter the scheduler (and the invariant deep scan) while the
		// server is already down, and the scope-consistency law requires
		// every down component to have an owning outage at all times.
		inj.srvDownBy[ev.Target] = ev.Pair
		lost, orphans := inj.sch.ServerCrashed(inj.servers[ev.Target])
		inj.ledger.ServerCrashes++
		inj.ledger.JobsLostCrash += int64(lost)
		inj.ledger.JobsLostByScope[ScopeServer] += int64(lost)
		inj.ledger.TasksOrphaned += int64(orphans)
		inj.cover.Hit(modelcov.FaultKind(int(ev.Kind)))
		if depth > 0 {
			inj.ledger.CascadeCrashes++
			inj.cover.Hit(modelcov.CascadeDepth(depth))
		}
		inj.maybeCascade(ev.Target, depth)
	case ServerRecover:
		if ev.Target >= len(inj.servers) || !inj.servers[ev.Target].Failed() ||
			inj.srvDownBy[ev.Target] != ev.Pair {
			inj.ledger.Skipped++
			return
		}
		delete(inj.srvDownBy, ev.Target)
		inj.sch.ServerRecovered(inj.servers[ev.Target])
		inj.ledger.ServerRecovers++
		inj.cover.Hit(modelcov.FaultKind(int(ev.Kind)))
	case LinkCut:
		if inj.net == nil || ev.Target >= inj.net.NumLinks() || inj.net.LinkAdminDown(ev.Target) {
			inj.ledger.Skipped++
			return
		}
		inj.linkDownBy[ev.Target] = ev.Pair
		if err := inj.net.SetLinkAdmin(ev.Target, false); err != nil {
			panic(err) // range-checked above
		}
		inj.ledger.LinkCuts++
		inj.cover.Hit(modelcov.FaultKind(int(ev.Kind)))
	case LinkRestore:
		if inj.net == nil || ev.Target >= inj.net.NumLinks() || !inj.net.LinkAdminDown(ev.Target) ||
			inj.linkDownBy[ev.Target] != ev.Pair {
			inj.ledger.Skipped++
			return
		}
		delete(inj.linkDownBy, ev.Target)
		if err := inj.net.SetLinkAdmin(ev.Target, true); err != nil {
			panic(err)
		}
		inj.ledger.LinkRestores++
		inj.cover.Hit(modelcov.FaultKind(int(ev.Kind)))
	case SwitchFail:
		sw := inj.switchAt(ev.Target)
		if sw == nil || sw.Failed() {
			inj.ledger.Skipped++
			return
		}
		inj.swDownBy[ev.Target] = ev.Pair
		if err := inj.net.SetSwitchAdmin(sw.Node(), false); err != nil {
			panic(err)
		}
		inj.ledger.SwitchFails++
		inj.cover.Hit(modelcov.FaultKind(int(ev.Kind)))
	case SwitchRestore:
		sw := inj.switchAt(ev.Target)
		if sw == nil || !sw.Failed() || inj.swDownBy[ev.Target] != ev.Pair {
			inj.ledger.Skipped++
			return
		}
		delete(inj.swDownBy, ev.Target)
		if err := inj.net.SetSwitchAdmin(sw.Node(), true); err != nil {
			panic(err)
		}
		inj.ledger.SwitchRestores++
		inj.cover.Hit(modelcov.FaultKind(int(ev.Kind)))
	case ScopeDown:
		inj.applyScopeDown(ev, depth)
	case ScopeUp:
		inj.applyScopeUp(ev)
	}
}

// switchAt resolves a switch index (Switches() order) or nil.
func (inj *Injector) switchAt(i int) *network.Switch {
	if inj.net == nil {
		return nil
	}
	sws := inj.net.Switches()
	if i >= len(sws) {
		return nil
	}
	return sws[i]
}
