package fault_test

import (
	"reflect"
	"testing"

	"holdcsim/internal/fault"
	"holdcsim/internal/rng"
	"holdcsim/internal/scenario"
	"holdcsim/internal/sched"
	"holdcsim/internal/simtime"
)

// TestTimelineDeterministic: the timeline is a pure function of (seed,
// spec, farm shape) — identical across calls, time-ordered, and with
// every down event paired with a later up event on the same target.
func TestTimelineDeterministic(t *testing.T) {
	spec := fault.Spec{
		ServerCrashes: 4, ServerDownSec: 0.3,
		LinkFlaps: 3, LinkDownSec: 0.1,
		SwitchKills: 2, SwitchDownSec: 0.2,
	}
	a := spec.Timeline(rng.New(7).Split("faults"), 10, 8, 12, 3)
	b := spec.Timeline(rng.New(7).Split("faults"), 10, 8, 12, 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different timelines")
	}
	if len(a.Events) != 2*(4+3+2) {
		t.Fatalf("events = %d, want %d", len(a.Events), 2*(4+3+2))
	}
	for i := 1; i < len(a.Events); i++ {
		if a.Events[i].At < a.Events[i-1].At {
			t.Fatalf("timeline out of order at %d: %v after %v", i, a.Events[i].At, a.Events[i-1].At)
		}
	}
	downs := map[fault.Kind]int{}
	for _, ev := range a.Events {
		downs[ev.Kind]++
	}
	if downs[fault.ServerCrash] != 4 || downs[fault.ServerRecover] != 4 ||
		downs[fault.LinkCut] != 3 || downs[fault.LinkRestore] != 3 ||
		downs[fault.SwitchFail] != 2 || downs[fault.SwitchRestore] != 2 {
		t.Fatalf("event mix %v", downs)
	}
	// A different seed moves the schedule.
	c := spec.Timeline(rng.New(8).Split("faults"), 10, 8, 12, 3)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical timelines")
	}
	// Zero target populations skip their classes.
	d := spec.Timeline(rng.New(7).Split("faults"), 10, 8, 0, 0)
	for _, ev := range d.Events {
		if ev.Kind != fault.ServerCrash && ev.Kind != fault.ServerRecover {
			t.Fatalf("network event %v drawn with no network", ev.Kind)
		}
	}
}

// TestSpecValidate rejects malformed specs and accepts the zero value.
func TestSpecValidate(t *testing.T) {
	if err := (fault.Spec{}).Validate(); err != nil {
		t.Fatalf("zero spec invalid: %v", err)
	}
	bad := []fault.Spec{
		{ServerCrashes: -1},
		{LinkFlaps: -2},
		{SwitchKills: -1},
		{ServerDownSec: -0.5},
		{LinkDownSec: nan()},
		{HorizonSec: inf()},
	}
	for i, sp := range bad {
		if err := sp.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, sp)
		}
	}
}

func nan() float64 { return float64(0) / zero }
func inf() float64 { return 1 / zero }

var zero float64 // defeats constant folding

// TestFaultedScenarioLedger runs a deterministic faulted scenario end to
// end and reconciles the injector's independent ledger with the run's
// reported results — and, implicitly via Scenario.Run, with every
// failure-aware invariant law.
func TestFaultedScenarioLedger(t *testing.T) {
	for _, policy := range []sched.OrphanPolicy{sched.OrphanRequeue, sched.OrphanDrop} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			s := scenario.Scenario{
				Seed:          5,
				Topology:      scenario.TopologySpec{Kind: scenario.TopoStar, A: 6},
				Comm:          0, // server-only traffic
				Servers:       6,
				DelayTimerSec: -1,
				Placer:        scenario.PlacerSpec{Kind: scenario.PlLeastLoaded},
				Arrival:       scenario.ArrivalSpec{Kind: scenario.ArrPoisson, Rho: 0.6},
				Factory:       scenario.FactorySpec{Kind: scenario.FacSingle},
				DurationSec:   2,
				Faults: fault.Spec{
					ServerCrashes: 4,
					ServerDownSec: 0.5,
					Orphans:       policy,
				},
			}
			res, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Violations) != 0 {
				t.Fatalf("violations: %v", res.Violations)
			}
			r := res.Results
			if r.Faults == nil {
				t.Fatal("no fault ledger in results")
			}
			if r.Faults.ServerCrashes == 0 {
				t.Fatal("no crash was applied in 2s with 4 scheduled")
			}
			if got := r.Faults.JobsLost(); got != r.JobsLost {
				t.Errorf("ledger lost %d, results lost %d", got, r.JobsLost)
			}
			if policy == sched.OrphanRequeue && r.JobsLost != 0 {
				t.Errorf("requeue lost %d jobs", r.JobsLost)
			}
			if policy == sched.OrphanDrop && r.Faults.TasksOrphaned > 0 && r.JobsLost == 0 {
				t.Errorf("drop policy orphaned %d tasks but lost no jobs", r.Faults.TasksOrphaned)
			}
			if r.JobsCompleted+r.JobsLost > r.JobsGenerated {
				t.Errorf("completed %d + lost %d > generated %d", r.JobsCompleted, r.JobsLost, r.JobsGenerated)
			}
		})
	}
}

// TestGoldenFaultRun pins one faulted run exactly: same seed, same
// spec, byte-identical accounting across code versions. The literals
// are the recorded output of the fault timeline's first pinning; a
// change here means fault replay determinism broke (or the model
// intentionally changed — re-pin with the new figures and say why in
// the commit).
func TestGoldenFaultRun(t *testing.T) {
	s := scenario.Scenario{
		Seed:          99,
		Servers:       4,
		DelayTimerSec: -1,
		Placer:        scenario.PlacerSpec{Kind: scenario.PlLeastLoaded},
		Arrival:       scenario.ArrivalSpec{Kind: scenario.ArrPoisson, Rho: 0.5},
		Factory:       scenario.FactorySpec{Kind: scenario.FacSingle},
		MaxJobs:       300,
		Faults: fault.Spec{
			ServerCrashes: 2,
			ServerDownSec: 0.2,
			Orphans:       sched.OrphanDrop,
		},
	}
	a, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := a.Results, b.Results
	if ra.JobsCompleted != rb.JobsCompleted || ra.JobsLost != rb.JobsLost ||
		ra.End != rb.End || ra.ServerEnergyJ != rb.ServerEnergyJ ||
		*ra.Faults != *rb.Faults {
		t.Fatalf("faulted replay diverged:\n%+v\n%+v", ra, rb)
	}
	if ra.JobsCompleted+ra.JobsLost != ra.JobsGenerated {
		t.Fatalf("drained MaxJobs run: completed %d + lost %d != generated %d",
			ra.JobsCompleted, ra.JobsLost, ra.JobsGenerated)
	}
	if ra.Faults.ServerCrashes != 2 || ra.Faults.ServerRecovers != 2 {
		t.Fatalf("ledger %+v, want 2 crashes + 2 recoveries applied", ra.Faults)
	}
}

// TestKindAndSpecStrings pins the enum renderings used in scenario
// names and logs.
func TestKindAndSpecStrings(t *testing.T) {
	want := map[fault.Kind]string{
		fault.ServerCrash:   "server-crash",
		fault.ServerRecover: "server-recover",
		fault.LinkCut:       "link-cut",
		fault.LinkRestore:   "link-restore",
		fault.SwitchFail:    "switch-fail",
		fault.SwitchRestore: "switch-restore",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if got := fault.Kind(99).String(); got != "Kind(99)" {
		t.Errorf("unknown kind renders %q", got)
	}
	if got := (fault.Spec{}).String(); got != "nofault" {
		t.Errorf("zero spec renders %q", got)
	}
	sp := fault.Spec{ServerCrashes: 2, ServerDownSec: 0.5, LinkFlaps: 1, LinkDownSec: 0.03, Orphans: sched.OrphanDrop}
	if got := sp.String(); got != "f2c0.5-1l0.03-0s0-drop" {
		t.Errorf("spec renders %q", got)
	}
	// Specs differing only in duration must render differently.
	sp2 := sp
	sp2.ServerDownSec = 0.1
	if sp.String() == sp2.String() {
		t.Error("duration-only spec variants share an identifier")
	}
	// ... and only in draw horizon (the label is injective over specs).
	sp3 := sp
	sp3.HorizonSec = 2
	if got := sp3.String(); got == sp.String() {
		t.Errorf("horizon-only spec variant shares identifier %q", got)
	}
	// Empty-but-not-Zero specs keep a distinct identifier too.
	leftover := fault.Spec{ServerDownSec: 0.5, Orphans: sched.OrphanDrop}
	if leftover.Zero() || !leftover.Empty() {
		t.Error("Zero/Empty inconsistent for a parameter-only spec")
	}
	if got := leftover.String(); got == "nofault" {
		t.Error("parameter-only spec collapsed onto the zero label")
	}
	if !(fault.Spec{}).Zero() {
		t.Error("zero spec not Zero()")
	}
	if (fault.Timeline{}).Empty() != true || sp.Empty() {
		t.Error("Empty() inconsistent")
	}
}

// TestInjectorSkipsAndAccessors drives apply() through every skip path
// — out-of-range targets, already-failed targets, network events on a
// server-only farm — via a hand-built timeline, and checks the ledger
// arithmetic.
func TestInjectorSkipsAndAccessors(t *testing.T) {
	s := scenario.Scenario{
		Seed:          3,
		Servers:       2,
		DelayTimerSec: -1,
		Placer:        scenario.PlacerSpec{Kind: scenario.PlLeastLoaded},
		Arrival:       scenario.ArrivalSpec{Kind: scenario.ArrPoisson, Rho: 0.3},
		Factory:       scenario.FactorySpec{Kind: scenario.FacSingle},
		MaxJobs:       20,
	}
	dc, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	ms := simtime.Millisecond
	tl := fault.Timeline{Events: []fault.Event{
		{At: 1 * ms, Kind: fault.ServerCrash, Target: 0},
		{At: 2 * ms, Kind: fault.ServerCrash, Target: 0},   // already down -> skip
		{At: 3 * ms, Kind: fault.ServerCrash, Target: 99},  // out of range -> skip
		{At: 4 * ms, Kind: fault.ServerRecover, Target: 1}, // up -> skip
		{At: 5 * ms, Kind: fault.ServerRecover, Target: 0},
		{At: 6 * ms, Kind: fault.LinkCut, Target: 0},       // no network -> skip
		{At: 7 * ms, Kind: fault.LinkRestore, Target: 0},   // no network -> skip
		{At: 8 * ms, Kind: fault.SwitchFail, Target: 0},    // no network -> skip
		{At: 9 * ms, Kind: fault.SwitchRestore, Target: 0}, // no network -> skip
	}}
	inj := fault.Attach(dc.Eng, tl, dc.Sched, dc.Servers, dc.Net)
	if len(inj.Timeline().Events) != len(tl.Events) {
		t.Fatalf("Timeline() lost events")
	}
	if _, err := dc.Run(); err != nil {
		t.Fatal(err)
	}
	ld := inj.Ledger()
	if ld.ServerCrashes != 1 || ld.ServerRecovers != 1 {
		t.Errorf("ledger %+v, want 1 crash + 1 recover applied", ld)
	}
	if ld.Skipped != 7 {
		t.Errorf("skipped = %d, want 7", ld.Skipped)
	}
	if ld.Applied() != 2 {
		t.Errorf("Applied() = %d, want 2", ld.Applied())
	}
}

// TestInjectorNetworkSkips: link/switch events with out-of-range
// targets or already-state targets skip cleanly on a real network.
func TestInjectorNetworkSkips(t *testing.T) {
	s := scenario.Scenario{
		Seed:          4,
		Topology:      scenario.TopologySpec{Kind: scenario.TopoStar, A: 3},
		Servers:       3,
		DelayTimerSec: -1,
		Placer:        scenario.PlacerSpec{Kind: scenario.PlLeastLoaded},
		Arrival:       scenario.ArrivalSpec{Kind: scenario.ArrPoisson, Rho: 0.3},
		Factory:       scenario.FactorySpec{Kind: scenario.FacSingle},
		MaxJobs:       20,
	}
	dc, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	ms := simtime.Millisecond
	tl := fault.Timeline{Events: []fault.Event{
		{At: 1 * ms, Kind: fault.LinkCut, Target: 0},
		{At: 2 * ms, Kind: fault.LinkCut, Target: 0}, // already down -> skip
		{At: 3 * ms, Kind: fault.LinkRestore, Target: 0},
		{At: 4 * ms, Kind: fault.LinkRestore, Target: 0}, // already up -> skip
		{At: 5 * ms, Kind: fault.LinkCut, Target: 999},   // out of range -> skip
		{At: 6 * ms, Kind: fault.SwitchFail, Target: 0},
		{At: 7 * ms, Kind: fault.SwitchFail, Target: 0}, // already dead -> skip
		{At: 8 * ms, Kind: fault.SwitchRestore, Target: 0},
		{At: 9 * ms, Kind: fault.SwitchRestore, Target: 99}, // out of range -> skip
	}}
	inj := fault.Attach(dc.Eng, tl, dc.Sched, dc.Servers, dc.Net)
	if _, err := dc.Run(); err != nil {
		t.Fatal(err)
	}
	ld := inj.Ledger()
	if ld.LinkCuts != 1 || ld.LinkRestores != 1 || ld.SwitchFails != 1 || ld.SwitchRestores != 1 {
		t.Errorf("ledger %+v", ld)
	}
	if ld.Skipped != 5 {
		t.Errorf("skipped = %d, want 5", ld.Skipped)
	}
}

// TestOverlappingOutagesKeepFullDuration: a crash drawn while its
// target is already down is skipped — and so is its restore, so the
// earlier outage runs its full drawn duration instead of being
// truncated by the overlapping pair's earlier recovery.
func TestOverlappingOutagesKeepFullDuration(t *testing.T) {
	s := scenario.Scenario{
		Seed:          6,
		Servers:       2,
		DelayTimerSec: -1,
		Placer:        scenario.PlacerSpec{Kind: scenario.PlLeastLoaded},
		Arrival:       scenario.ArrivalSpec{Kind: scenario.ArrPoisson, Rho: 0.3},
		Factory:       scenario.FactorySpec{Kind: scenario.FacSingle},
		MaxJobs:       10,
	}
	dc, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	ms := simtime.Millisecond
	tl := fault.Timeline{Events: []fault.Event{
		{At: 1 * ms, Kind: fault.ServerCrash, Target: 0, Pair: 0},   // applies; down until 11 ms
		{At: 5 * ms, Kind: fault.ServerCrash, Target: 0, Pair: 1},   // overlaps -> skip
		{At: 6 * ms, Kind: fault.ServerRecover, Target: 0, Pair: 1}, // its crash was skipped -> skip
		{At: 11 * ms, Kind: fault.ServerRecover, Target: 0, Pair: 0},
	}}
	inj := fault.Attach(dc.Eng, tl, dc.Sched, dc.Servers, dc.Net)
	stillDown := false
	dc.Eng.Schedule(8*ms, func() { stillDown = dc.Servers[0].Failed() })
	recovered := false
	dc.Eng.Schedule(12*ms, func() { recovered = !dc.Servers[0].Failed() })
	if _, err := dc.Run(); err != nil {
		t.Fatal(err)
	}
	if !stillDown {
		t.Error("overlapping pair's recover truncated the first outage (server up at 8 ms)")
	}
	if !recovered {
		t.Error("server never recovered at the first pair's drawn instant")
	}
	ld := inj.Ledger()
	if ld.ServerCrashes != 1 || ld.ServerRecovers != 1 || ld.Skipped != 2 {
		t.Errorf("ledger %+v, want 1 crash, 1 recover, 2 skipped", ld)
	}
}
