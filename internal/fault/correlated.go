package fault

import (
	"fmt"
	"os"

	"holdcsim/internal/dist"
	"holdcsim/internal/modelcov"
	"holdcsim/internal/rng"
	"holdcsim/internal/server"
	"holdcsim/internal/simtime"
	"holdcsim/internal/topology"
	"holdcsim/internal/trace"
)

// ScopeKind names the failure domain a blast-radius event targets.
type ScopeKind uint8

// Failure-domain kinds. The order matches trace.OutageScopes so outage
// logs map positionally.
const (
	// ScopeServer is a single server — the point-fault blast radius.
	ScopeServer ScopeKind = iota
	// ScopeRack is a rack's servers plus its ToR switch.
	ScopeRack
	// ScopePod is a pod's servers plus its edge/aggregation switches.
	ScopePod
	// ScopeSwitch is a switch plus its directly attached servers.
	ScopeSwitch
	// NumScopes sizes per-scope arrays.
	NumScopes = 4
)

// String implements fmt.Stringer.
func (s ScopeKind) String() string {
	if int(s) < len(trace.OutageScopes) {
		return trace.OutageScopes[s]
	}
	return fmt.Sprintf("ScopeKind(%d)", int(s))
}

// ParseScope maps an outage-log scope word onto its ScopeKind.
func ParseScope(s string) (ScopeKind, bool) {
	for i, k := range trace.OutageScopes {
		if s == k {
			return ScopeKind(i), true
		}
	}
	return 0, false
}

// Topo is the scope-resolution table the correlated engine draws and
// applies blast-radius events against: failure-domain memberships in
// server and switch index space, derived from the topology's ScopeMap.
type Topo struct {
	// Servers, Links, Switches are the point-class populations.
	Servers  int
	Links    int
	Switches int
	// Racks[r] lists the server indices of rack r, ascending.
	Racks [][]int
	// RackSwitch[r] is rack r's ToR switch index, or -1.
	RackSwitch []int
	// Pods[p] lists the server indices of pod p, ascending.
	Pods [][]int
	// PodSwitches[p] lists the switch indices of pod p, ascending.
	PodSwitches [][]int
	// AttachedServers[s] lists the server indices directly attached to
	// switch s — its subtree blast radius.
	AttachedServers [][]int
	// PodOf[i] is server i's pod — the cascade rehoming domain.
	PodOf []int
}

// PointTopo is a scope table with populations only: scoped events
// beyond ScopeServer resolve to nothing and renewal classes still run.
func PointTopo(servers, links, switches int) *Topo {
	return &Topo{Servers: servers, Links: links, Switches: switches}
}

// NewTopo projects a topology ScopeMap into server/switch index space.
// Host index i is server i for i < servers; hosts beyond the server
// population (unused graph capacity) drop out of every scope.
func NewTopo(sm *topology.ScopeMap, servers, links, switches int) *Topo {
	clamp := func(hosts []int) []int {
		var out []int
		for _, h := range hosts {
			if h < servers {
				out = append(out, h)
			}
		}
		return out
	}
	t := &Topo{
		Servers:  servers,
		Links:    links,
		Switches: switches,
		PodOf:    make([]int, servers),
	}
	for r, hs := range sm.RackHosts {
		t.Racks = append(t.Racks, clamp(hs))
		t.RackSwitch = append(t.RackSwitch, sm.RackSwitch[r])
	}
	for p, hs := range sm.PodHosts {
		t.Pods = append(t.Pods, clamp(hs))
		t.PodSwitches = append(t.PodSwitches, sm.PodSwitches[p])
	}
	for _, hs := range sm.AttachedHosts {
		t.AttachedServers = append(t.AttachedServers, clamp(hs))
	}
	for i := 0; i < servers; i++ {
		if i < len(sm.PodOf) {
			t.PodOf[i] = sm.PodOf[i]
		}
	}
	return t
}

// FallbackTopo is the scope table of a farm with no topology graph:
// racks are fixed blocks of topology.FallbackRackSize servers and the
// whole farm is one pod.
func FallbackTopo(servers int) *Topo {
	t := &Topo{Servers: servers, PodOf: make([]int, servers)}
	var pod []int
	for lo := 0; lo < servers; lo += topology.FallbackRackSize {
		hi := lo + topology.FallbackRackSize
		if hi > servers {
			hi = servers
		}
		rack := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			rack = append(rack, i)
			pod = append(pod, i)
		}
		t.Racks = append(t.Racks, rack)
		t.RackSwitch = append(t.RackSwitch, -1)
	}
	t.Pods = [][]int{pod}
	t.PodSwitches = [][]int{nil}
	return t
}

// maxRenewalEvents caps each renewal class's generated down/up event
// count so a tiny MTTF against a long horizon cannot explode the
// timeline.
const maxRenewalEvents = 100_000

// TimelineFor draws the full correlated fault schedule: the frozen
// point-class draws first (byte-identical to Timeline for a
// pre-correlation spec), then blast-radius draws per scope class, then
// renewal processes on dedicated split streams (gated on configuration
// so unconfigured specs consume nothing), then outage-log replay.
// Events sort stably by instant, so the relative order of equal-time
// draws is the draw order.
func (sp Spec) TimelineFor(r *rng.Source, horizonSec float64, topo *Topo) (Timeline, error) {
	if topo == nil {
		topo = PointTopo(0, 0, 0)
	}
	var tl Timeline
	pair := 0
	sp.drawPoint(r, horizonSec, topo.Servers, topo.Links, topo.Switches, &tl, &pair)
	drawScope := func(n, count int, downSec float64, scope ScopeKind) {
		if n <= 0 {
			return
		}
		for i := 0; i < count; i++ {
			at := simtime.FromSeconds(r.Float64() * horizonSec * 0.9)
			dur := simtime.FromSeconds(downSec * (0.5 + r.Float64()))
			target := r.IntN(n)
			tl.Events = append(tl.Events, Event{At: at, Kind: ScopeDown, Scope: scope, Target: target, Pair: pair})
			tl.Events = append(tl.Events, Event{At: at + dur, Kind: ScopeUp, Scope: scope, Target: target, Pair: pair})
			pair++
		}
	}
	drawScope(len(topo.Racks), sp.RackKills, sp.RackDownSec, ScopeRack)
	drawScope(len(topo.Pods), sp.PodKills, sp.PodDownSec, ScopePod)
	drawScope(topo.Switches, sp.SubtreeKills, sp.SubtreeDownSec, ScopeSwitch)
	if sp.ServerMTTFSec > 0 && topo.Servers > 0 {
		renew(r.Split("renewal-server"), horizonSec, topo.Servers,
			sp.ServerMTTFSec, sp.ServerMTTRSec, sp.WeibullShape, sp.RepairCrews,
			ServerCrash, ServerRecover, &tl, &pair)
	}
	if sp.SwitchMTTFSec > 0 && topo.Switches > 0 {
		renew(r.Split("renewal-switch"), horizonSec, topo.Switches,
			sp.SwitchMTTFSec, sp.SwitchMTTRSec, sp.WeibullShape, sp.RepairCrews,
			SwitchFail, SwitchRestore, &tl, &pair)
	}
	if sp.TraceFile != "" {
		f, err := os.Open(sp.TraceFile)
		if err != nil {
			return Timeline{}, fmt.Errorf("fault: outage log: %w", err)
		}
		outs, rerr := trace.ReadOutages(f)
		f.Close()
		if rerr != nil {
			return Timeline{}, fmt.Errorf("fault: outage log %s: %w", sp.TraceFile, rerr)
		}
		for _, o := range outs {
			scope, ok := ParseScope(o.Scope)
			if !ok {
				return Timeline{}, fmt.Errorf("fault: outage log %s: unknown scope %q", sp.TraceFile, o.Scope)
			}
			at := simtime.FromSeconds(o.Start)
			tl.Events = append(tl.Events,
				Event{At: at, Kind: ScopeDown, Scope: scope, Target: o.Target, Pair: pair},
				Event{At: at + simtime.FromSeconds(o.Dur), Kind: ScopeUp, Scope: scope, Target: o.Target, Pair: pair})
			pair++
		}
	}
	sortTimeline(&tl)
	return tl, nil
}

// renew generates one component class's MTTF/MTTR renewal timeline.
// Every component alternates Weibull-distributed lifetimes and
// exponential repairs; with a crew limit, a failed component's repair
// clock starts only when the earliest-free crew (lowest index on ties)
// becomes available. Failures are processed globally in time order
// (lowest component index on ties) so the draw sequence is a pure
// function of the stream.
func renew(r *rng.Source, horizonSec float64, n int, mttf, mttr, shape float64, crews int,
	down, up Kind, tl *Timeline, pair *int) {
	life := dist.WeibullFromMean(mttf, shape)
	nextFail := make([]float64, n)
	for i := range nextFail {
		nextFail[i] = life.Sample(r)
	}
	var crewFree []float64
	if crews > 0 {
		crewFree = make([]float64, crews)
	}
	for emitted := 0; emitted < maxRenewalEvents; emitted += 2 {
		c := -1
		for i, t := range nextFail {
			if t < horizonSec && (c < 0 || t < nextFail[c]) {
				c = i
			}
		}
		if c < 0 {
			return
		}
		ft := nextFail[c]
		rep := r.Exp(mttr)
		start := ft
		if crews > 0 {
			j := 0
			for k := 1; k < crews; k++ {
				if crewFree[k] < crewFree[j] {
					j = k
				}
			}
			if crewFree[j] > start {
				start = crewFree[j]
			}
			crewFree[j] = start + rep
		}
		end := start + rep
		tl.Events = append(tl.Events,
			Event{At: simtime.FromSeconds(ft), Kind: down, Target: c, Pair: *pair},
			Event{At: simtime.FromSeconds(end), Kind: up, Target: c, Pair: *pair})
		*pair++
		nextFail[c] = end + life.Sample(r)
	}
}

// resolveScope expands a scope instance into server and switch index
// sets (both ascending). ok is false when the target cannot be
// resolved on this farm — the whole event then skips, mirroring the
// point classes' out-of-range handling.
func (inj *Injector) resolveScope(scope ScopeKind, target int) (srvs, sws []int, ok bool) {
	if target < 0 {
		return nil, nil, false
	}
	switch scope {
	case ScopeServer:
		if target >= len(inj.servers) {
			return nil, nil, false
		}
		return []int{target}, nil, true
	case ScopeRack:
		if inj.topo == nil || target >= len(inj.topo.Racks) {
			return nil, nil, false
		}
		if sw := inj.topo.RackSwitch[target]; sw >= 0 {
			sws = []int{sw}
		}
		return inj.topo.Racks[target], sws, true
	case ScopePod:
		if inj.topo == nil || target >= len(inj.topo.Pods) {
			return nil, nil, false
		}
		return inj.topo.Pods[target], inj.topo.PodSwitches[target], true
	case ScopeSwitch:
		if inj.net == nil || target >= len(inj.net.Switches()) {
			return nil, nil, false
		}
		if inj.topo != nil && target < len(inj.topo.AttachedServers) {
			srvs = inj.topo.AttachedServers[target]
		}
		return srvs, []int{target}, true
	}
	return nil, nil, false
}

// applyScopeDown crashes every in-scope component atomically: servers
// first as one scheduler batch (orphan handling runs only after the
// whole blast is down, so no orphan requeues onto a dying sibling),
// then switches, both in ascending index order. Members already down
// skip individually, exactly like overlapping point draws.
func (inj *Injector) applyScopeDown(ev Event, depth int) {
	srvs, sws, ok := inj.resolveScope(ev.Scope, ev.Target)
	if !ok {
		inj.ledger.Skipped++
		return
	}
	inj.cover.Hit(modelcov.FaultKind(int(ev.Kind)))
	inj.cover.Hit(modelcov.ScopeDown(int(ev.Scope)))
	var batch []*server.Server
	first := -1
	for _, s := range srvs {
		if s >= len(inj.servers) || inj.servers[s].Failed() {
			inj.ledger.Skipped++
			continue
		}
		if first < 0 {
			first = s
		}
		batch = append(batch, inj.servers[s])
		inj.srvDownBy[s] = ev.Pair
	}
	if len(batch) > 0 {
		lost, orphans := inj.sch.ServersCrashed(batch)
		inj.ledger.ServerCrashes += int64(len(batch))
		inj.ledger.JobsLostCrash += int64(lost)
		inj.ledger.JobsLostByScope[ev.Scope] += int64(lost)
		inj.ledger.TasksOrphaned += int64(orphans)
		if depth > 0 {
			inj.ledger.CascadeCrashes += int64(len(batch))
			inj.cover.Hit(modelcov.CascadeDepth(depth))
		}
	}
	for _, si := range sws {
		sw := inj.switchAt(si)
		if sw == nil || sw.Failed() {
			inj.ledger.Skipped++
			continue
		}
		if err := inj.net.SetSwitchAdmin(sw.Node(), false); err != nil {
			panic(err) // range-checked in resolveScope
		}
		inj.swDownBy[si] = ev.Pair
		inj.ledger.SwitchFails++
	}
	if first >= 0 {
		inj.maybeCascade(first, depth)
	}
}

// applyScopeUp restores the scope: switches first so recovered servers
// rejoin a live fabric, then servers as one batch. Pair ownership is
// per member — a member taken down by a different outage stays down.
func (inj *Injector) applyScopeUp(ev Event) {
	srvs, sws, ok := inj.resolveScope(ev.Scope, ev.Target)
	if !ok {
		inj.ledger.Skipped++
		return
	}
	inj.cover.Hit(modelcov.FaultKind(int(ev.Kind)))
	for _, si := range sws {
		sw := inj.switchAt(si)
		if sw == nil || !sw.Failed() || inj.swDownBy[si] != ev.Pair {
			inj.ledger.Skipped++
			continue
		}
		if err := inj.net.SetSwitchAdmin(sw.Node(), true); err != nil {
			panic(err)
		}
		delete(inj.swDownBy, si)
		inj.ledger.SwitchRestores++
	}
	var batch []*server.Server
	for _, s := range srvs {
		if s >= len(inj.servers) || !inj.servers[s].Failed() || inj.srvDownBy[s] != ev.Pair {
			inj.ledger.Skipped++
			continue
		}
		batch = append(batch, inj.servers[s])
		delete(inj.srvDownBy, s)
	}
	if len(batch) > 0 {
		inj.sch.ServersRecovered(batch)
		inj.ledger.ServerRecovers += int64(len(batch))
	}
}

// maybeCascade applies the cascade rule after a crash: each still-alive
// server in the crashed component's pod (the rehoming domain)
// overload-crashes with probability CascadeP, after a delay drawn
// around CascadeDelaySec, recovering after a duration drawn around
// ServerDownSec (CascadeDelaySec when unset). Children carry depth+1
// and stop at CascadeDepth. Draws consume the dedicated cascade stream
// in ascending candidate order, so replay is deterministic.
func (inj *Injector) maybeCascade(crashed, depth int) {
	if inj.cascade == nil || inj.topo == nil || depth >= inj.spec.CascadeDepth ||
		inj.spec.CascadeP <= 0 || crashed >= len(inj.topo.PodOf) {
		return
	}
	pod := inj.topo.PodOf[crashed]
	if pod >= len(inj.topo.Pods) {
		return
	}
	mean := inj.spec.ServerDownSec
	if mean <= 0 {
		mean = inj.spec.CascadeDelaySec
	}
	now := inj.eng.Now()
	for _, s := range inj.topo.Pods[pod] {
		if s >= len(inj.servers) || inj.servers[s].Failed() {
			continue
		}
		if !inj.cascade.Bernoulli(inj.spec.CascadeP) {
			continue
		}
		delay := simtime.FromSeconds(inj.spec.CascadeDelaySec * (0.5 + inj.cascade.Float64()))
		dur := simtime.FromSeconds(mean * (0.5 + inj.cascade.Float64()))
		pair := inj.nextPair
		inj.nextPair++
		downEv := Event{At: now + delay, Kind: ServerCrash, Target: s, Pair: pair}
		upEv := Event{At: now + delay + dur, Kind: ServerRecover, Target: s, Pair: pair}
		d := depth + 1
		inj.eng.Schedule(downEv.At, func() { inj.apply(downEv, d) })
		inj.eng.Schedule(upEv.At, func() { inj.apply(upEv, d) })
	}
}

// CheckScopes is the scope-consistency invariant hook: ownership and
// component state must agree in both directions (a dead rack implies
// every owned member is still down; nothing is down without an owner),
// and the ledger's per-scope loss attribution must sum back to its
// crash-loss total. Iteration is index-ordered so a violation message
// is deterministic.
func (inj *Injector) CheckScopes() error {
	for s := range inj.servers {
		_, owned := inj.srvDownBy[s]
		if owned && !inj.servers[s].Failed() {
			return fmt.Errorf("server %d owned-down by pair %d but alive", s, inj.srvDownBy[s])
		}
		if !owned && inj.servers[s].Failed() {
			return fmt.Errorf("server %d down without an owning outage", s)
		}
	}
	if inj.net != nil {
		for l := 0; l < inj.net.NumLinks(); l++ {
			_, owned := inj.linkDownBy[l]
			if owned && !inj.net.LinkAdminDown(l) {
				return fmt.Errorf("link %d owned-down but admin-up", l)
			}
			if !owned && inj.net.LinkAdminDown(l) {
				return fmt.Errorf("link %d admin-down without an owning outage", l)
			}
		}
		for i, sw := range inj.net.Switches() {
			_, owned := inj.swDownBy[i]
			if owned && !sw.Failed() {
				return fmt.Errorf("switch %d owned-down but alive", i)
			}
			if !owned && sw.Failed() {
				return fmt.Errorf("switch %d down without an owning outage", i)
			}
		}
	}
	var sum int64
	for _, v := range inj.ledger.JobsLostByScope {
		sum += v
	}
	if sum != inj.ledger.JobsLostCrash {
		return fmt.Errorf("per-scope losses sum to %d, ledger total %d", sum, inj.ledger.JobsLostCrash)
	}
	if inj.ledger.CascadeCrashes > inj.ledger.ServerCrashes {
		return fmt.Errorf("cascade crashes %d exceed total crashes %d",
			inj.ledger.CascadeCrashes, inj.ledger.ServerCrashes)
	}
	return nil
}
