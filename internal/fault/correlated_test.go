package fault_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"holdcsim/internal/core"
	"holdcsim/internal/fault"
	"holdcsim/internal/rng"
	"holdcsim/internal/scenario"
	"holdcsim/internal/sched"
	"holdcsim/internal/simtime"
	"holdcsim/internal/topology"
)

// starScenario is the shared small-farm harness of this file.
func starScenario(seed uint64, servers int) scenario.Scenario {
	return scenario.Scenario{
		Seed:          seed,
		Topology:      scenario.TopologySpec{Kind: scenario.TopoStar, A: servers},
		Servers:       servers,
		DelayTimerSec: -1,
		Placer:        scenario.PlacerSpec{Kind: scenario.PlLeastLoaded},
		Arrival:       scenario.ArrivalSpec{Kind: scenario.ArrPoisson, Rho: 0.5},
		Factory:       scenario.FactorySpec{Kind: scenario.FacSingle},
		MaxJobs:       150,
	}
}

// TestDifferentialScopeServer pins the compatibility contract of the
// correlated engine: a PR-era point-fault timeline re-expressed as
// scope-resolved ScopeServer events produces byte-identical results and
// an identical ledger. Both runs share one scenario seed, so every
// non-fault draw matches; only the event encoding differs.
func TestDifferentialScopeServer(t *testing.T) {
	for _, policy := range []sched.OrphanPolicy{sched.OrphanRequeue, sched.OrphanDrop} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			ms := simtime.Millisecond
			point := fault.Timeline{Events: []fault.Event{
				{At: 20 * ms, Kind: fault.ServerCrash, Target: 1, Pair: 0},
				{At: 90 * ms, Kind: fault.ServerRecover, Target: 1, Pair: 0},
				{At: 40 * ms, Kind: fault.ServerCrash, Target: 3, Pair: 1},
				{At: 60 * ms, Kind: fault.ServerCrash, Target: 3, Pair: 2}, // overlap -> skip
				{At: 70 * ms, Kind: fault.ServerRecover, Target: 3, Pair: 2},
				{At: 120 * ms, Kind: fault.ServerRecover, Target: 3, Pair: 1},
			}}
			scoped := fault.Timeline{Events: make([]fault.Event, len(point.Events))}
			for i, ev := range point.Events {
				kind := fault.ScopeDown
				if ev.Kind == fault.ServerRecover {
					kind = fault.ScopeUp
				}
				scoped.Events[i] = fault.Event{At: ev.At, Kind: kind, Scope: fault.ScopeServer,
					Target: ev.Target, Pair: ev.Pair}
			}
			run := func(tl fault.Timeline) (*fault.Ledger, int64, int64, simtime.Time) {
				s := starScenario(21, 6)
				cfg, err := s.Config()
				if err != nil {
					t.Fatal(err)
				}
				// Hand-built timelines attach outside the scenario fault
				// path: the orphan policy rides an otherwise-empty spec and
				// the checker (wired to the scenario injector, not ours) is
				// off for this build.
				cfg.Faults = &fault.Spec{Orphans: policy}
				cfg.Check = false
				dc, err := core.Build(cfg)
				if err != nil {
					t.Fatal(err)
				}
				inj := fault.Attach(dc.Eng, tl, dc.Sched, dc.Servers, dc.Net)
				res, err := dc.Run()
				if err != nil {
					t.Fatal(err)
				}
				ld := inj.Ledger()
				return &ld, res.JobsCompleted, res.JobsLost, res.End
			}
			la, ca, lla, ea := run(point)
			lb, cb, llb, eb := run(scoped)
			if *la != *lb {
				t.Errorf("ledgers differ:\npoint  %+v\nscoped %+v", *la, *lb)
			}
			if ca != cb || lla != llb || ea != eb {
				t.Errorf("results differ: completed %d/%d lost %d/%d end %v/%v",
					ca, cb, lla, llb, ea, eb)
			}
			if la.ServerCrashes != 2 || la.Skipped != 2 {
				t.Errorf("point ledger %+v, want 2 crashes 2 skips", *la)
			}
		})
	}
}

// TestRackBlast takes a whole star rack (every server plus the hub
// switch) down and back up, checking atomic membership, mid-outage
// state, and ledger arithmetic.
func TestRackBlast(t *testing.T) {
	s := starScenario(31, 6)
	dc, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	ms := simtime.Millisecond
	tl := fault.Timeline{Events: []fault.Event{
		{At: 50 * ms, Kind: fault.ScopeDown, Scope: fault.ScopeRack, Target: 0, Pair: 0},
		{At: 150 * ms, Kind: fault.ScopeUp, Scope: fault.ScopeRack, Target: 0, Pair: 0},
		{At: 200 * ms, Kind: fault.ScopeDown, Scope: fault.ScopeRack, Target: 9, Pair: 1}, // no rack 9 -> skip
		{At: 210 * ms, Kind: fault.ScopeUp, Scope: fault.ScopeRack, Target: 9, Pair: 1},   // skip
	}}
	topo := scopeTopo(t, s)
	inj := fault.AttachWith(dc.Eng, tl, dc.Sched, dc.Servers, dc.Net, fault.AttachOpts{Topo: topo})
	allDown, allUp := false, false
	dc.Eng.Schedule(100*ms, func() {
		allDown = true
		for _, srv := range dc.Servers {
			if !srv.Failed() {
				allDown = false
			}
		}
		allDown = allDown && dc.Net.Switches()[0].Failed()
	})
	dc.Eng.Schedule(180*ms, func() {
		allUp = true
		for _, srv := range dc.Servers {
			if srv.Failed() {
				allUp = false
			}
		}
		allUp = allUp && !dc.Net.Switches()[0].Failed()
	})
	if _, err := dc.Run(); err != nil {
		t.Fatal(err)
	}
	if !allDown {
		t.Error("rack blast did not take every member (6 servers + hub) down")
	}
	if !allUp {
		t.Error("rack restore did not bring every member back")
	}
	ld := inj.Ledger()
	if ld.ServerCrashes != 6 || ld.ServerRecovers != 6 || ld.SwitchFails != 1 || ld.SwitchRestores != 1 {
		t.Errorf("ledger %+v, want 6+6 server and 1+1 switch events", ld)
	}
	if ld.Skipped != 2 {
		t.Errorf("skipped = %d, want 2 (unresolvable rack 9 pair)", ld.Skipped)
	}
	if err := inj.CheckScopes(); err != nil {
		t.Errorf("CheckScopes after full restore: %v", err)
	}
}

// scopeTopo builds the fault.Topo a scenario's core.Build would derive
// (link count is irrelevant to scope resolution and left zero).
func scopeTopo(t *testing.T, s scenario.Scenario) *fault.Topo {
	t.Helper()
	g, err := s.Topology.Builder().Build()
	if err != nil {
		t.Fatal(err)
	}
	return fault.NewTopo(topology.NewScopeMap(g), s.Servers, 0, len(g.Switches()))
}

// TestTimelineForFrozenPointPrefix: for a point-only spec, TimelineFor
// is byte-identical to the frozen PR-era Timeline; with correlated
// classes added, the point draws keep their exact values and the scope
// draws append after them on the same stream.
func TestTimelineForFrozenPointPrefix(t *testing.T) {
	sp := fault.Spec{
		ServerCrashes: 3, ServerDownSec: 0.3,
		LinkFlaps: 2, LinkDownSec: 0.1,
		SwitchKills: 1, SwitchDownSec: 0.2,
	}
	topo := fault.PointTopo(8, 12, 3)
	old := sp.Timeline(rng.New(7).Split("faults"), 10, 8, 12, 3)
	got, err := sp.TimelineFor(rng.New(7).Split("faults"), 10, topo)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(old, got) {
		t.Fatalf("point-only TimelineFor diverged from frozen Timeline:\n%v\n%v", old, got)
	}

	// Adding scope classes must not disturb the point draws: events
	// pair-for-pair identical on the first 6 pairs.
	sp2 := sp
	sp2.RackKills = 2
	sp2.RackDownSec = 0.2
	topo2 := fault.FallbackTopo(8)
	topo2.Links, topo2.Switches = 12, 3 // same point populations as old
	got2, err := sp2.TimelineFor(rng.New(7).Split("faults"), 10, topo2)
	if err != nil {
		t.Fatal(err)
	}
	byPair := func(tl fault.Timeline, pair int) []fault.Event {
		var out []fault.Event
		for _, ev := range tl.Events {
			if ev.Pair == pair {
				out = append(out, ev)
			}
		}
		return out
	}
	for pair := 0; pair < 6; pair++ {
		if !reflect.DeepEqual(byPair(old, pair), byPair(got2, pair)) {
			t.Errorf("pair %d moved when scope classes were added", pair)
		}
	}
	racks := 0
	for _, ev := range got2.Events {
		if ev.Kind == fault.ScopeDown && ev.Scope == fault.ScopeRack {
			racks++
		}
	}
	if racks != 2 {
		t.Errorf("drew %d rack blasts, want 2", racks)
	}
}

// TestRenewalTimeline: renewal draws are deterministic, every failure
// pairs with a later repair on the same component, and a single repair
// crew serializes completions (each repair ends after the previous one,
// a property unlimited crews do not have).
func TestRenewalTimeline(t *testing.T) {
	sp := fault.Spec{ServerMTTFSec: 1, ServerMTTRSec: 0.3, WeibullShape: 1.5, RepairCrews: 1}
	topo := fault.PointTopo(4, 0, 0)
	a, err := sp.TimelineFor(rng.New(11).Split("faults"), 20, topo)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sp.TimelineFor(rng.New(11).Split("faults"), 20, topo)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("renewal timeline not deterministic")
	}
	if len(a.Events) == 0 {
		t.Fatal("no renewal events drawn over 20x MTTF horizon")
	}
	down := map[int]fault.Event{}
	ups := map[int]fault.Event{}
	for _, ev := range a.Events {
		switch ev.Kind {
		case fault.ServerCrash:
			down[ev.Pair] = ev
		case fault.ServerRecover:
			ups[ev.Pair] = ev
		default:
			t.Fatalf("unexpected kind %v in a server renewal timeline", ev.Kind)
		}
	}
	if len(down) != len(ups) {
		t.Fatalf("%d downs, %d ups", len(down), len(ups))
	}
	var lastEnd simtime.Time
	for pair := 0; pair < len(down); pair++ {
		d, okD := down[pair]
		u, okU := ups[pair]
		if !okD || !okU {
			t.Fatalf("pair %d incomplete", pair)
		}
		if d.Target != u.Target || u.At <= d.At {
			t.Fatalf("pair %d malformed: down %+v up %+v", pair, d, u)
		}
		// One crew: repair completions are strictly ordered by pair
		// emission (each repair starts no earlier than the previous end).
		if u.At < lastEnd {
			t.Fatalf("pair %d repair ends at %v before previous end %v with 1 crew", pair, u.At, lastEnd)
		}
		lastEnd = u.At
	}

	// Renewal draws ride dedicated splits: adding a renewal class must
	// not move the point-class draws on the parent stream.
	sp2 := sp
	sp2.ServerCrashes = 2
	sp2.ServerDownSec = 0.2
	point := fault.Spec{ServerCrashes: 2, ServerDownSec: 0.2}
	tlPoint := point.Timeline(rng.New(11).Split("faults"), 20, 4, 0, 0)
	tlBoth, err := sp2.TimelineFor(rng.New(11).Split("faults"), 20, topo)
	if err != nil {
		t.Fatal(err)
	}
	for pair := 0; pair < 2; pair++ {
		for _, want := range tlPoint.Events {
			if want.Pair != pair {
				continue
			}
			found := false
			for _, got := range tlBoth.Events {
				if got == want {
					found = true
				}
			}
			if !found {
				t.Errorf("point event %+v moved when renewal was enabled", want)
			}
		}
	}
}

// TestRenewalScenarioRun runs renewal + crew churn end to end under the
// invariant checker.
func TestRenewalScenarioRun(t *testing.T) {
	s := starScenario(41, 4)
	s.MaxJobs = 0
	s.DurationSec = 3
	s.Faults = fault.Spec{ServerMTTFSec: 0.8, ServerMTTRSec: 0.1, WeibullShape: 1.4, RepairCrews: 1}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.Results.Faults == nil || res.Results.Faults.ServerCrashes == 0 {
		t.Fatalf("no renewal crash applied in 3s with MTTF 0.8: %+v", res.Results.Faults)
	}
}

// TestCascade: with P = 1 and depth 1, one applied point crash
// overload-crashes every alive pod sibling exactly once, children do
// not cascade further, and replay is byte-identical.
func TestCascade(t *testing.T) {
	s := scenario.Scenario{
		Seed:          51,
		Servers:       6, // no topology: whole farm is one fallback pod
		DelayTimerSec: -1,
		Placer:        scenario.PlacerSpec{Kind: scenario.PlLeastLoaded},
		Arrival:       scenario.ArrivalSpec{Kind: scenario.ArrPoisson, Rho: 0.4},
		Factory:       scenario.FactorySpec{Kind: scenario.FacSingle},
		DurationSec:   2,
		Faults: fault.Spec{
			ServerCrashes: 1, ServerDownSec: 0.1,
			CascadeP: 1, CascadeDelaySec: 0.02, CascadeDepth: 1,
		},
	}
	a, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Violations) != 0 {
		t.Fatalf("violations: %v", a.Violations)
	}
	b, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if *a.Results.Faults != *b.Results.Faults {
		t.Fatalf("cascade replay diverged:\n%+v\n%+v", *a.Results.Faults, *b.Results.Faults)
	}
	ld := a.Results.Faults
	if ld.CascadeCrashes != 5 {
		t.Errorf("CascadeCrashes = %d, want 5 (every sibling, P=1, depth capped)", ld.CascadeCrashes)
	}
	if ld.ServerCrashes != 6 {
		t.Errorf("ServerCrashes = %d, want 6 (1 point + 5 cascade)", ld.ServerCrashes)
	}

	// Cascades off (depth 0) with the same seed: the point draw is
	// unchanged and nothing cascades — the cascade stream split is gated.
	s2 := s
	s2.Faults.CascadeP = 0
	s2.Faults.CascadeDelaySec = 0
	s2.Faults.CascadeDepth = 0
	c, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if c.Results.Faults.CascadeCrashes != 0 || c.Results.Faults.ServerCrashes != 1 {
		t.Errorf("no-cascade ledger %+v, want exactly the 1 point crash", *c.Results.Faults)
	}
}

// TestOutageLogReplayRun replays a recorded outage log end to end:
// exact ledger accounting, zero violations, and byte-identical replay.
func TestOutageLogReplayRun(t *testing.T) {
	log := "# recorded outage log\n" +
		"0.010000 0.100000 server 2\n" +
		"0.200000 0.050000 rack 0\n" +
		"0.500000 0.050000 switch 0\n"
	path := filepath.Join(t.TempDir(), "outages.log")
	if err := os.WriteFile(path, []byte(log), 0o644); err != nil {
		t.Fatal(err)
	}
	s := starScenario(61, 6)
	s.MaxJobs = 0
	s.DurationSec = 2
	s.Faults = fault.Spec{TraceFile: path}
	a, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Violations) != 0 {
		t.Fatalf("violations: %v", a.Violations)
	}
	ld := a.Results.Faults
	// server 2 (1), rack 0 = 6 servers + hub, switch 0 subtree = hub + 6
	// servers; all disjoint in time, so everything applies.
	if ld.ServerCrashes != 13 || ld.ServerRecovers != 13 {
		t.Errorf("server events %d/%d, want 13/13", ld.ServerCrashes, ld.ServerRecovers)
	}
	if ld.SwitchFails != 2 || ld.SwitchRestores != 2 {
		t.Errorf("switch events %d/%d, want 2/2", ld.SwitchFails, ld.SwitchRestores)
	}
	b, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if *a.Results.Faults != *b.Results.Faults || a.Results.End != b.Results.End ||
		a.Results.JobsCompleted != b.Results.JobsCompleted {
		t.Fatal("outage-log replay diverged between identical runs")
	}

	// A missing log fails construction cleanly.
	s.Faults.TraceFile = filepath.Join(t.TempDir(), "nope.log")
	if _, err := s.Run(); err == nil {
		t.Error("missing outage log accepted")
	}
}

// TestScopeSpecLabels pins the extended injective rendering.
func TestScopeSpecLabels(t *testing.T) {
	base := fault.Spec{ServerCrashes: 2, ServerDownSec: 0.5}
	baseLabel := base.String()
	variants := []fault.Spec{
		{ServerCrashes: 2, ServerDownSec: 0.5, RackKills: 1, RackDownSec: 0.2},
		{ServerCrashes: 2, ServerDownSec: 0.5, PodKills: 1, PodDownSec: 0.2},
		{ServerCrashes: 2, ServerDownSec: 0.5, SubtreeKills: 1, SubtreeDownSec: 0.2},
		{ServerCrashes: 2, ServerDownSec: 0.5, ServerMTTFSec: 1, ServerMTTRSec: 0.1},
		{ServerCrashes: 2, ServerDownSec: 0.5, SwitchMTTFSec: 1, SwitchMTTRSec: 0.1},
		{ServerCrashes: 2, ServerDownSec: 0.5, WeibullShape: 1.5},
		{ServerCrashes: 2, ServerDownSec: 0.5, RepairCrews: 2},
		{ServerCrashes: 2, ServerDownSec: 0.5, CascadeP: 0.5, CascadeDelaySec: 0.05, CascadeDepth: 1},
		{ServerCrashes: 2, ServerDownSec: 0.5, TraceFile: "x.log"},
	}
	seen := map[string]int{baseLabel: -1}
	for i, sp := range variants {
		l := sp.String()
		if l == baseLabel {
			t.Errorf("variant %d collapses onto the base label %q", i, l)
		}
		if j, dup := seen[l]; dup {
			t.Errorf("variants %d and %d share label %q", i, j, l)
		}
		seen[l] = i
	}
	// The pre-correlation rendering is frozen when the new fields are zero.
	sp := fault.Spec{ServerCrashes: 2, ServerDownSec: 0.5, LinkFlaps: 1, LinkDownSec: 0.03, Orphans: sched.OrphanDrop}
	if got := sp.String(); got != "f2c0.5-1l0.03-0s0-drop" {
		t.Errorf("frozen label broke: %q", got)
	}
}

// TestScopeKindStrings pins the scope vocabulary shared with outage logs.
func TestScopeKindStrings(t *testing.T) {
	want := map[fault.ScopeKind]string{
		fault.ScopeServer: "server",
		fault.ScopeRack:   "rack",
		fault.ScopePod:    "pod",
		fault.ScopeSwitch: "switch",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
		got, ok := fault.ParseScope(s)
		if !ok || got != k {
			t.Errorf("ParseScope(%q) = %v, %v", s, got, ok)
		}
	}
	if _, ok := fault.ParseScope("datacenter"); ok {
		t.Error("ParseScope accepted an unknown scope")
	}
	if got := fault.ScopeKind(9).String(); got != "ScopeKind(9)" {
		t.Errorf("unknown scope renders %q", got)
	}
}

// TestCorrelatedSpecValidate extends the Validate table to the new fields.
func TestCorrelatedSpecValidate(t *testing.T) {
	bad := []fault.Spec{
		{RackKills: -1},
		{PodKills: -1},
		{SubtreeKills: -1},
		{RepairCrews: -1},
		{CascadeDepth: -1},
		{RackDownSec: -0.5},
		{CascadeP: 1.5},
		{CascadeP: -0.1},
		{CascadeP: nan()},
		{ServerMTTFSec: 1},            // renewal without MTTR
		{SwitchMTTFSec: 1},            // renewal without MTTR
		{WeibullShape: inf()},
	}
	for i, sp := range bad {
		if err := sp.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, sp)
		}
	}
	good := fault.Spec{
		RackKills: 1, RackDownSec: 0.2,
		ServerMTTFSec: 1, ServerMTTRSec: 0.1, WeibullShape: 1.2, RepairCrews: 1,
		CascadeP: 0.5, CascadeDelaySec: 0.05, CascadeDepth: 2,
		TraceFile: "x.log",
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid correlated spec rejected: %v", err)
	}
}
