package network

import (
	"testing"

	"holdcsim/internal/simtime"
	"holdcsim/internal/topology"
)

// linkBetween finds the link id joining two nodes.
func linkBetween(t *testing.T, n *Network, a, b topology.NodeID) int {
	t.Helper()
	for i := 0; i < n.NumLinks(); i++ {
		l := n.links[i]
		if (l.a == a && l.b == b) || (l.a == b && l.b == a) {
			return i
		}
	}
	t.Fatalf("no link between %d and %d", a, b)
	return -1
}

// TestLinkFlapDropsInFlightPackets: cutting a link mid-transfer drops
// the queued and in-flight packets, the completion callback still
// fires, and every conservation counter closes (delivered + dropped ==
// sent, egress drops == stats drops).
func TestLinkFlapDropsInFlightPackets(t *testing.T) {
	eng, n, hosts := starNet(t, 4, nil)
	done := false
	// 150 KB = 100 MTUs over 1 Gb/s: ~1.2 ms serialization end to end.
	if err := n.TransferPackets(hosts[0], hosts[1], 150_000, func() { done = true }); err != nil {
		t.Fatal(err)
	}
	link := linkBetween(t, n, hosts[0], n.g.Switches()[0])
	eng.Schedule(300*simtime.Microsecond, func() {
		if err := n.SetLinkAdmin(link, false); err != nil {
			t.Fatal(err)
		}
	})
	eng.Run()
	if !done {
		t.Fatal("transfer completion never fired after the flap")
	}
	st := n.Stats()
	if st.PacketsSent != 100 {
		t.Fatalf("sent = %d, want 100", st.PacketsSent)
	}
	if st.PacketsDropped == 0 || st.PacketsDelivered == 0 {
		t.Fatalf("expected both deliveries and drops around the cut: %+v", st)
	}
	if st.PacketsDelivered+st.PacketsDropped != st.PacketsSent {
		t.Errorf("delivered %d + dropped %d != sent %d",
			st.PacketsDelivered, st.PacketsDropped, st.PacketsSent)
	}
	if d := n.Drops(); d != st.PacketsDropped {
		t.Errorf("egress drops %d != stats drops %d", d, st.PacketsDropped)
	}
	if n.OpenPacketTransfers() != 0 {
		t.Errorf("open transfers = %d at end", n.OpenPacketTransfers())
	}
}

// TestLinkRestoreCarriesTraffic: a flapped link carries traffic again
// after restore with no residue from the outage.
func TestLinkRestoreCarriesTraffic(t *testing.T) {
	eng, n, hosts := starNet(t, 4, nil)
	link := linkBetween(t, n, hosts[0], n.g.Switches()[0])
	if err := n.SetLinkAdmin(link, false); err != nil {
		t.Fatal(err)
	}
	eng.Schedule(simtime.Millisecond, func() {
		if err := n.SetLinkAdmin(link, true); err != nil {
			t.Fatal(err)
		}
	})
	delivered := false
	eng.Schedule(2*simtime.Millisecond, func() {
		if err := n.TransferPackets(hosts[0], hosts[1], 3000, func() { delivered = true }); err != nil {
			t.Fatal(err)
		}
	})
	eng.Run()
	st := n.Stats()
	if !delivered || st.PacketsDropped != 0 {
		t.Fatalf("post-restore transfer: delivered=%v stats=%+v", delivered, st)
	}
}

// TestLinkFlapKillsFlows: a fluid flow crossing a cut link fails —
// completion fires at the cut, partial progress counts as delivered
// bytes, and flow conservation holds.
func TestLinkFlapKillsFlows(t *testing.T) {
	eng, n, hosts := starNet(t, 4, nil)
	var doneAt simtime.Time
	// 125 MB at 1 Gb/s = 1 s if undisturbed.
	if err := n.TransferFlow(hosts[0], hosts[1], 125_000_000, func() { doneAt = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	link := linkBetween(t, n, hosts[0], n.g.Switches()[0])
	eng.Schedule(250*simtime.Millisecond, func() {
		if err := n.SetLinkAdmin(link, false); err != nil {
			t.Fatal(err)
		}
	})
	eng.Run()
	if doneAt != 250*simtime.Millisecond {
		t.Fatalf("flow completion at %v, want the cut instant 250ms", doneAt)
	}
	st := n.Stats()
	if st.FlowsStarted != 1 || st.FlowsCompleted != 1 || st.FlowsFailed != 1 {
		t.Errorf("flow counters %+v", st)
	}
	if n.ActiveFlows() != 0 {
		t.Errorf("active flows = %d after the kill", n.ActiveFlows())
	}
	// ~31.25 MB made it in 250 ms.
	want := int64(125_000_000 / 4)
	if st.BytesDelivered < want-1000 || st.BytesDelivered > want+1000 {
		t.Errorf("bytes delivered %d, want ~%d (partial progress)", st.BytesDelivered, want)
	}
	// A flow started over the dead link fails immediately but still
	// completes its callback.
	failedImmediately := false
	eng.Schedule(eng.Now(), func() {
		if err := n.TransferFlow(hosts[0], hosts[1], 1000, func() { failedImmediately = true }); err != nil {
			t.Fatal(err)
		}
	})
	eng.Run()
	if !failedImmediately {
		t.Error("flow over a dead link never completed")
	}
	if st := n.Stats(); st.FlowsFailed != 2 {
		t.Errorf("FlowsFailed = %d, want 2", st.FlowsFailed)
	}
}

// TestSwitchDeath: killing the hub of a star drops all traffic through
// it, zeroes its power, takes its links down, and revival restores
// both the draw and the data path.
func TestSwitchDeath(t *testing.T) {
	eng, n, hosts := starNet(t, 4, nil)
	hub := n.g.Switches()[0]
	sw := n.SwitchAt(hub)
	if sw.PowerW() <= 0 {
		t.Fatal("healthy switch draws nothing")
	}
	var flowDone, pktDone bool
	if err := n.TransferFlow(hosts[0], hosts[1], 125_000_000, func() { flowDone = true }); err != nil {
		t.Fatal(err)
	}
	if err := n.TransferPackets(hosts[2], hosts[3], 150_000, func() { pktDone = true }); err != nil {
		t.Fatal(err)
	}
	eng.Schedule(100*simtime.Microsecond, func() {
		if err := n.SetSwitchAdmin(hub, false); err != nil {
			t.Fatal(err)
		}
		if got := sw.PowerW(); got != 0 {
			t.Errorf("dead switch draws %g W", got)
		}
		for i := 0; i < n.NumLinks(); i++ {
			if !n.LinkDown(i) {
				t.Errorf("link %d still up under a dead hub", i)
			}
		}
	})
	eng.Run()
	if !flowDone || !pktDone {
		t.Fatalf("transfer completions after switch death: flow=%v pkt=%v", flowDone, pktDone)
	}
	st := n.Stats()
	if st.FlowsFailed != 1 {
		t.Errorf("FlowsFailed = %d, want 1", st.FlowsFailed)
	}
	if st.PacketsDelivered+st.PacketsDropped != st.PacketsSent {
		t.Errorf("packet conservation broke: %+v", st)
	}
	if d := n.Drops(); d != st.PacketsDropped {
		t.Errorf("egress drops %d != stats drops %d", d, st.PacketsDropped)
	}

	// Revive: links come back, traffic flows, power returns.
	if err := n.SetSwitchAdmin(hub, true); err != nil {
		t.Fatal(err)
	}
	if sw.Failed() || sw.PowerW() <= 0 {
		t.Fatalf("revived switch: failed=%v power=%g", sw.Failed(), sw.PowerW())
	}
	for i := 0; i < n.NumLinks(); i++ {
		if n.LinkDown(i) {
			t.Errorf("link %d still down after revival", i)
		}
	}
	delivered := false
	if err := n.TransferPackets(hosts[0], hosts[1], 3000, func() { delivered = true }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !delivered {
		t.Error("post-revival transfer never delivered")
	}
	// Down time bills to the Down residency state.
	if fr := sw.Residency().FractionsTo(eng.Now()); fr[SwitchStateDown] <= 0 {
		t.Errorf("no Down residency recorded: %v", fr)
	}
}

// TestSwitchDeathIdempotentAndRangeChecked: admin calls are no-ops on
// repeated state and reject non-switch nodes and bad link ids.
func TestSwitchDeathIdempotentAndRangeChecked(t *testing.T) {
	_, n, hosts := starNet(t, 4, nil)
	hub := n.g.Switches()[0]
	if err := n.SetSwitchAdmin(hosts[0], false); err == nil {
		t.Error("SetSwitchAdmin accepted a host node")
	}
	if err := n.SetLinkAdmin(99, false); err == nil {
		t.Error("SetLinkAdmin accepted an out-of-range id")
	}
	if err := n.SetSwitchAdmin(hub, false); err != nil {
		t.Fatal(err)
	}
	if err := n.SetSwitchAdmin(hub, false); err != nil {
		t.Fatal(err) // idempotent
	}
	if err := n.SetSwitchAdmin(hub, true); err != nil {
		t.Fatal(err)
	}
	if n.LinkDown(0) {
		t.Error("deadEnds leaked through a double-kill")
	}
}

// TestLinkAdminAccessors pins the admin-state introspection surface.
func TestLinkAdminAccessors(t *testing.T) {
	_, n, _ := starNet(t, 3, nil)
	if n.LinkDown(0) || n.LinkAdminDown(0) {
		t.Error("fresh link reports down")
	}
	if n.LinkDown(-1) || n.LinkDown(999) || n.LinkAdminDown(-1) || n.LinkAdminDown(999) {
		t.Error("out-of-range link ids report down")
	}
	if err := n.SetLinkAdmin(0, false); err != nil {
		t.Fatal(err)
	}
	if !n.LinkDown(0) || !n.LinkAdminDown(0) {
		t.Error("flapped link not reported down")
	}
	if err := n.SetLinkAdmin(0, false); err != nil {
		t.Fatal(err) // idempotent
	}
	if err := n.SetLinkAdmin(0, true); err != nil {
		t.Fatal(err)
	}
	if n.LinkDown(0) {
		t.Error("restored link still down")
	}
}
