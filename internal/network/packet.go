package network

import (
	"fmt"

	"holdcsim/internal/modelcov"
	"holdcsim/internal/simtime"
	"holdcsim/internal/topology"
)

// MaxPacketsPerTransfer caps how many packets one transfer may inject.
// The count is computed in int64 (a multi-GB payload over a small MTU
// overflows 32-bit int arithmetic), then validated against this cap so
// a pathological size/MTU combination fails loudly instead of
// scheduling billions of events.
const MaxPacketsPerTransfer = 1 << 30

// packet is one MTU-or-smaller unit traversing a fixed route
// store-and-forward: at each hop it queues at the egress port, pays
// serialization (bytes/link-rate, plus LPI wake penalty when the port
// was idle), propagates, and is forwarded after the switch latency.
//
// Packets are pooled on Network.pktFree: the two dispatch closures are
// created once per pooled object and survive reuse, so a recycled
// packet schedules its per-hop events with zero allocation. xferGen
// snapshots the owning transfer's generation; a mismatch at finish
// means the packet outlived its transfer — a pool-lifetime bug surfaced
// immediately rather than as silent corruption.
type packet struct {
	bytes   int64
	nodes   []topology.NodeID
	links   []*linkState
	hop     int // index of the link currently being traversed
	xfer    *pktTransfer
	xferGen uint64

	// arrive and forward are created once per pooled packet and
	// rescheduled at every hop, so the per-hop engine events allocate
	// nothing.
	arrive  func() // lands the packet at the far end of the current link
	forward func() // queues the packet at the next hop's egress
}

// pktTransfer tracks one packet-mode data transfer. Pooled on
// Network.xferFree with a generation counter bumped on release; the
// cached start closure is created once and performs the (possibly
// wake-deferred) injection.
type pktTransfer struct {
	total     int64
	delivered int64
	dropped   int64

	bytes int64
	src   topology.NodeID
	nodes []topology.NodeID
	links []*linkState
	loop  bool // same-node / zero-byte transfer: no route, one logical packet
	done  func()

	gen   uint64
	start func() // cached injection callback, scheduled by TransferPackets
}

// allocPacket pops a pooled packet (or mints one with its dispatch
// closures) ready for reuse.
//simlint:hotpath
func (n *Network) allocPacket() *packet {
	if k := len(n.pktFree); k > 0 {
		p := n.pktFree[k-1]
		n.pktFree = n.pktFree[:k-1]
		return p
	}
	p := &packet{}
	p.arrive = func() { n.packetArrived(p) }
	p.forward = func() { n.packetForward(p) }
	return p
}

// releasePacket clears the packet's references and returns it to the
// pool. The dispatch closures are kept — they are the point of pooling.
//simlint:hotpath
func (n *Network) releasePacket(p *packet) {
	p.bytes, p.hop = 0, 0
	p.nodes, p.links = nil, nil
	p.xfer, p.xferGen = nil, 0
	n.pktFree = append(n.pktFree, p) //simlint:allow hotpath free-list push: amortized O(1), capacity reaches steady state
}

// allocTransfer pops a pooled transfer (or mints one with its cached
// start closure). Counters are zeroed at release.
//simlint:hotpath
func (n *Network) allocTransfer() *pktTransfer {
	if k := len(n.xferFree); k > 0 {
		x := n.xferFree[k-1]
		n.xferFree = n.xferFree[:k-1]
		return x
	}
	x := &pktTransfer{}
	x.start = func() { n.startPktTransfer(x) }
	return x
}

// releaseTransfer bumps the generation (invalidating any packet that
// still references this incarnation), clears references, and pools the
// transfer.
//simlint:hotpath
func (n *Network) releaseTransfer(x *pktTransfer) {
	x.gen++
	x.total, x.delivered, x.dropped = 0, 0, 0
	x.bytes, x.src, x.loop = 0, 0, false
	x.nodes, x.links = nil, nil
	x.done = nil
	n.xferFree = append(n.xferFree, x) //simlint:allow hotpath free-list push: amortized O(1), capacity reaches steady state
}

// finishOne accounts packet p reaching its terminal state — delivered or
// dropped — updating both the transfer's and the network's counters, and
// fires the completion callback once all packets have finished. Dropped
// packets are not retransmitted (drops are a congestion signal counted in
// Stats); completion fires regardless so DAG progress cannot deadlock on
// a full buffer.
//simlint:hotpath
func (x *pktTransfer) finishOne(n *Network, p *packet, delivered bool) {
	if p.xferGen != x.gen {
		panic("network: packet finished against a recycled transfer")
	}
	if delivered {
		x.delivered++
		n.stats.PacketsDelivered++
		n.stats.BytesDelivered += p.bytes
	} else {
		x.dropped++
		n.stats.PacketsDropped++
	}
	n.releasePacket(p)
	if x.delivered+x.dropped == x.total {
		n.finishTransfer(x)
	}
}

// finishTransfer closes out a completed transfer: the open count drops
// and the transfer returns to the pool *before* the owner's callback
// runs, so a callback that starts new transfers observes consistent
// conservation state and may even reuse this very object.
//simlint:hotpath
func (n *Network) finishTransfer(x *pktTransfer) {
	n.openPktTransfers--
	done := x.done
	n.releaseTransfer(x)
	if done != nil {
		done()
	}
}

// TransferPackets sends bytes from src to dst as MTU-sized packets,
// invoking done when every packet has been delivered (or dropped).
// Under ModelFluid the transfer instead rides one max-min fair flow
// (flow.go) with identical byte and packet accounting.
func (n *Network) TransferPackets(src, dst topology.NodeID, bytes int64, done func()) error {
	if bytes < 0 {
		return fmt.Errorf("network: negative transfer size %d", bytes)
	}
	id := n.nextFlowID
	n.nextFlowID++
	if src == dst || bytes == 0 {
		// Same-node / zero-byte payloads skip the network but are still
		// first-class transfers: one logical packet, counted open from
		// the moment of scheduling, delivered on the next event-loop
		// tick. (They used to bill BytesDelivered from a bare closure
		// without touching openPktTransfers or PacketsSent, so a deep
		// scan between schedule and tick saw inconsistent conservation
		// state.)
		x := n.allocTransfer()
		x.total = 1
		x.bytes = bytes
		x.loop = true
		x.done = done
		n.openPktTransfers++
		n.eng.After(0, x.start)
		return nil
	}
	nPkts := (bytes + n.cfg.MTUBytes - 1) / n.cfg.MTUBytes
	if nPkts > MaxPacketsPerTransfer {
		return fmt.Errorf("network: transfer of %d bytes needs %d packets at MTU %d (cap %d)",
			bytes, nPkts, n.cfg.MTUBytes, MaxPacketsPerTransfer)
	}
	if n.cfg.Model == ModelFluid {
		return n.startFluidTransfer(src, dst, bytes, id, done, nPkts)
	}
	r, err := n.path(src, dst, id)
	if err != nil {
		return err
	}
	x := n.allocTransfer()
	x.total = nPkts
	x.bytes = bytes
	x.src = src
	x.nodes = r.nodes
	x.links = r.links
	x.done = done
	n.openPktTransfers++
	wait := n.wakeRoute(r)
	n.eng.After(wait, x.start)
	return nil
}

// startPktTransfer injects a transfer's packets at the first-hop egress
// (or completes a loopback transfer). Locals are copied out first: if
// every packet finishes synchronously (the route is already down), the
// last finishOne releases x back to the pool mid-loop.
//simlint:hotpath
func (n *Network) startPktTransfer(x *pktTransfer) {
	if x.loop {
		n.cover.Hit(modelcov.NetPktLoopback)
		n.stats.PacketsSent++
		x.delivered = 1
		n.stats.PacketsDelivered++
		n.stats.BytesDelivered += x.bytes
		n.finishTransfer(x)
		return
	}
	total, rem := x.total, x.bytes
	nodes, links := x.nodes, x.links
	gen := x.gen
	q := links[0].egress(links[0].a == x.src)
	n.stats.PacketsSent += total
	for i := int64(0); i < total; i++ {
		sz := n.cfg.MTUBytes
		if rem < sz {
			sz = rem
		}
		rem -= sz
		p := n.allocPacket()
		p.bytes = sz
		p.nodes = nodes
		p.links = links
		p.xfer = x
		p.xferGen = gen
		q.enqueue(n, p)
	}
}

// egressQueue is the FIFO at one directional link end, backed by a
// power-of-two ring buffer that shrinks back to minRingCap when it
// drains — one congestion burst no longer pins its high-water capacity
// for the rest of the run. busy() feeds the switch idle check.
type egressQueue struct {
	link *linkState
	ab   bool // direction A->B

	sending     bool
	cur         *packet // packet being serialized
	onWire      func()  // cached serialization-done callback
	buf         []*packet
	head, count int
	queuedBytes int64
	drops       int64
}

// minRingCap is the steady-state ring capacity (power of two).
const minRingCap = 8

// newEgressQueue builds one directional queue with its cached
// serialization callback.
func newEgressQueue(l *linkState, ab bool) *egressQueue {
	q := &egressQueue{link: l, ab: ab}
	q.onWire = func() { q.serialized(l.net) }
	return q
}

func (q *egressQueue) busy() bool { return q.sending || q.count > 0 }

// push appends a packet to the ring, doubling capacity when full.
//simlint:hotpath
func (q *egressQueue) push(p *packet) {
	if q.count == len(q.buf) {
		newCap := len(q.buf) * 2
		if newCap < minRingCap {
			newCap = minRingCap
		}
		nb := make([]*packet, newCap)
		for i := 0; i < q.count; i++ {
			nb[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
		}
		q.buf, q.head = nb, 0
	}
	q.buf[(q.head+q.count)&(len(q.buf)-1)] = p
	q.count++
}

// pop removes and returns the head packet; when the queue drains, any
// burst-grown backing array is released.
//simlint:hotpath
func (q *egressQueue) pop() *packet {
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.count--
	if q.count == 0 {
		q.head = 0
		if len(q.buf) > minRingCap {
			q.buf = make([]*packet, minRingCap)
		}
	}
	return p
}

// enqueue adds a packet, dropping it if the link is down or the buffer
// would overflow.
//simlint:hotpath
func (q *egressQueue) enqueue(n *Network, p *packet) {
	if q.link.isDown() {
		q.drops++
		n.cover.Hit(modelcov.DropEnqueueLinkDown)
		p.xfer.finishOne(n, p, false)
		return
	}
	if n.cfg.PortBufferBytes > 0 && q.busy() &&
		q.queuedBytes+p.bytes > n.cfg.PortBufferBytes {
		q.drops++
		n.cover.Hit(modelcov.DropEnqueueOverflow)
		p.xfer.finishOne(n, p, false)
		return
	}
	q.push(p)
	q.queuedBytes += p.bytes
	q.maybeSend(n)
}

// maybeSend starts serializing the head packet if the line is free.
//simlint:hotpath
func (q *egressQueue) maybeSend(n *Network) {
	if q.sending || q.count == 0 {
		return
	}
	p := q.pop()
	q.queuedBytes -= p.bytes
	q.sending = true
	q.cur = p

	l := q.link
	// Mark both ports busy for the duration of serialization +
	// propagation; collect the LPI wake penalty. The shared LPI timer is
	// stopped once for the link rather than per port.
	l.lpiTimer.Stop()
	var penalty simtime.Time
	if l.portA != nil {
		if w := l.portA.addUser(); w > penalty {
			penalty = w
		}
		l.portA.bytesSent += p.bytes
	}
	if l.portB != nil {
		if w := l.portB.addUser(); w > penalty {
			penalty = w
		}
		l.portB.bytesSent += p.bytes
	}
	ser := simtime.FromSeconds(float64(p.bytes) / l.bytesPerSec())
	n.eng.After(penalty+ser, q.onWire)
}

// serialized fires when the head packet's last bit is on the wire: the
// line frees up for the next queued packet while the current one
// propagates to the far end.
//simlint:hotpath
func (q *egressQueue) serialized(n *Network) {
	p := q.cur
	q.cur = nil
	q.sending = false
	if q.link.isDown() {
		// The link failed while the packet was on the wire: it is lost
		// with the link's in-flight traffic.
		q.link.markIdle()
		q.drops++
		n.cover.Hit(modelcov.DropOnWireLinkDown)
		p.xfer.finishOne(n, p, false)
		q.maybeSend(n)
		return
	}
	q.maybeSend(n)
	n.eng.After(n.cfg.PropDelay, p.arrive)
}

// dropAll retracts every queued packet (the link went down). In-flight
// packets drop at their next serialization or arrival event. Exactly the
// packets queued at the failure instant drop: completion callbacks fired
// from finishOne can schedule new transfers, and those must not be
// swept up.
func (q *egressQueue) dropAll(n *Network) {
	for k := q.count; k > 0; k-- {
		p := q.pop()
		q.queuedBytes -= p.bytes
		q.drops++
		n.cover.Hit(modelcov.DropSweep)
		p.xfer.finishOne(n, p, false)
	}
}

// packetForward queues the packet at its current hop's egress — the
// body of the cached forward closure.
//simlint:hotpath
func (n *Network) packetForward(p *packet) {
	l := p.links[p.hop]
	l.egress(l.a == p.nodes[p.hop]).enqueue(n, p)
}

// packetArrived lands a packet at the far end of its current link.
//simlint:hotpath
func (n *Network) packetArrived(p *packet) {
	l := p.links[p.hop]
	l.markIdle()
	if l.isDown() {
		// Failed mid-propagation: the packet is lost, billed to the
		// egress queue it left from.
		q := l.egress(l.a == p.nodes[p.hop])
		q.drops++
		n.cover.Hit(modelcov.DropArriveLinkDown)
		p.xfer.finishOne(n, p, false)
		return
	}
	p.hop++
	if p.hop == len(p.links) { // destination host
		n.cover.Hit(modelcov.NetPktDelivered)
		p.xfer.finishOne(n, p, true)
		return
	}
	// Forwarding delay inside the switch (or relay host in server-centric
	// topologies), then queue at the next egress.
	n.eng.After(n.cfg.SwitchLatency, p.forward)
}

// Drops reports total packets dropped — buffer overflows plus
// link/switch failure losses billed to the egress queues, plus packets
// the fluid model charged against failed flows (which never touch an
// egress queue).
func (n *Network) Drops() int64 {
	d := n.fluidDrops
	for _, l := range n.links {
		d += l.egressAB.drops + l.egressBA.drops
	}
	return d
}
