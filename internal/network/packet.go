package network

import (
	"fmt"

	"holdcsim/internal/simtime"
	"holdcsim/internal/topology"
)

// packet is one MTU-or-smaller unit traversing a fixed route
// store-and-forward: at each hop it queues at the egress port, pays
// serialization (bytes/link-rate, plus LPI wake penalty when the port
// was idle), propagates, and is forwarded after the switch latency.
type packet struct {
	bytes int64
	nodes []topology.NodeID
	links []*linkState
	hop   int // index of the link currently being traversed
	xfer  *pktTransfer

	// arrive and forward are created once per packet and rescheduled at
	// every hop, so the per-hop engine events allocate nothing.
	arrive  func() // lands the packet at the far end of the current link
	forward func() // queues the packet at the next hop's egress
}

// pktTransfer tracks one packet-mode data transfer.
type pktTransfer struct {
	total     int
	delivered int
	dropped   int
	done      func()
}

// finishOne accounts packet p reaching its terminal state — delivered or
// dropped — updating both the transfer's and the network's counters, and
// fires the completion callback once all packets have finished. Dropped
// packets are not retransmitted (drops are a congestion signal counted in
// Stats); completion fires regardless so DAG progress cannot deadlock on
// a full buffer.
func (x *pktTransfer) finishOne(n *Network, p *packet, delivered bool) {
	if delivered {
		x.delivered++
		n.stats.PacketsDelivered++
		n.stats.BytesDelivered += p.bytes
	} else {
		x.dropped++
		n.stats.PacketsDropped++
	}
	if x.delivered+x.dropped == x.total {
		n.openPktTransfers--
		if x.done != nil {
			x.done()
		}
	}
}

// TransferPackets sends bytes from src to dst as MTU-sized packets,
// invoking done when every packet has been delivered (or dropped).
func (n *Network) TransferPackets(src, dst topology.NodeID, bytes int64, done func()) error {
	if bytes < 0 {
		return fmt.Errorf("network: negative transfer size %d", bytes)
	}
	id := n.nextFlowID
	n.nextFlowID++
	if src == dst || bytes == 0 {
		n.eng.After(0, func() {
			n.stats.BytesDelivered += bytes
			if done != nil {
				done()
			}
		})
		return nil
	}
	nodes, links, err := n.path(src, dst, id)
	if err != nil {
		return err
	}
	nPkts := int((bytes + n.cfg.MTUBytes - 1) / n.cfg.MTUBytes)
	xfer := &pktTransfer{total: nPkts, done: done}
	n.openPktTransfers++
	wait := n.wakePathSwitches(nodes)
	n.eng.After(wait, func() {
		n.stats.PacketsSent += int64(nPkts)
		rem := bytes
		for i := 0; i < nPkts; i++ {
			sz := n.cfg.MTUBytes
			if rem < sz {
				sz = rem
			}
			rem -= sz
			p := &packet{bytes: sz, nodes: nodes, links: links, xfer: xfer}
			p.arrive = func() { n.packetArrived(p) }
			p.forward = func() {
				l := p.links[p.hop]
				l.egress(l.a == p.nodes[p.hop]).enqueue(n, p)
			}
			links[0].egress(links[0].a == src).enqueue(n, p)
		}
	})
	return nil
}

// egressQueue is the FIFO at one directional link end. busy() feeds the
// switch idle check.
type egressQueue struct {
	link *linkState
	ab   bool // direction A->B

	sending     bool
	cur         *packet // packet being serialized
	onWire      func()  // cached serialization-done callback
	queue       []*packet
	queuedBytes int64
	drops       int64
}

func (q *egressQueue) busy() bool { return q.sending || len(q.queue) > 0 }

// enqueue adds a packet, dropping it if the link is down or the buffer
// would overflow.
func (q *egressQueue) enqueue(n *Network, p *packet) {
	if q.link.isDown() {
		q.drops++
		p.xfer.finishOne(n, p, false)
		return
	}
	if n.cfg.PortBufferBytes > 0 && q.busy() &&
		q.queuedBytes+p.bytes > n.cfg.PortBufferBytes {
		q.drops++
		p.xfer.finishOne(n, p, false)
		return
	}
	q.queue = append(q.queue, p)
	q.queuedBytes += p.bytes
	q.maybeSend(n)
}

// maybeSend starts serializing the head packet if the line is free.
func (q *egressQueue) maybeSend(n *Network) {
	if q.sending || len(q.queue) == 0 {
		return
	}
	p := q.queue[0]
	q.queue[0] = nil
	q.queue = q.queue[1:]
	q.queuedBytes -= p.bytes
	q.sending = true
	q.cur = p

	l := q.link
	// Mark both ports busy for the duration of serialization +
	// propagation; collect the LPI wake penalty.
	var penalty simtime.Time
	if l.portA != nil {
		if w := l.portA.addUser(); w > penalty {
			penalty = w
		}
		l.portA.bytesSent += p.bytes
	}
	if l.portB != nil {
		if w := l.portB.addUser(); w > penalty {
			penalty = w
		}
		l.portB.bytesSent += p.bytes
	}
	ser := simtime.FromSeconds(float64(p.bytes) / l.bytesPerSec())
	if q.onWire == nil {
		q.onWire = func() { q.serialized(q.link.net) }
	}
	n.eng.After(penalty+ser, q.onWire)
}

// serialized fires when the head packet's last bit is on the wire: the
// line frees up for the next queued packet while the current one
// propagates to the far end.
func (q *egressQueue) serialized(n *Network) {
	p := q.cur
	q.cur = nil
	q.sending = false
	if q.link.isDown() {
		// The link failed while the packet was on the wire: it is lost
		// with the link's in-flight traffic.
		q.link.markIdle()
		q.drops++
		p.xfer.finishOne(n, p, false)
		q.maybeSend(n)
		return
	}
	q.maybeSend(n)
	n.eng.After(n.cfg.PropDelay, p.arrive)
}

// dropAll retracts every queued packet (the link went down). In-flight
// packets drop at their next serialization or arrival event.
func (q *egressQueue) dropAll(n *Network) {
	if len(q.queue) == 0 {
		return
	}
	pending := q.queue
	q.queue = nil
	q.queuedBytes = 0
	for _, p := range pending {
		q.drops++
		p.xfer.finishOne(n, p, false)
	}
}

// packetArrived lands a packet at the far end of its current link.
func (n *Network) packetArrived(p *packet) {
	l := p.links[p.hop]
	l.markIdle()
	if l.isDown() {
		// Failed mid-propagation: the packet is lost, billed to the
		// egress queue it left from.
		q := l.egress(l.a == p.nodes[p.hop])
		q.drops++
		p.xfer.finishOne(n, p, false)
		return
	}
	p.hop++
	if p.hop == len(p.links) { // destination host
		p.xfer.finishOne(n, p, true)
		return
	}
	// Forwarding delay inside the switch (or relay host in server-centric
	// topologies), then queue at the next egress.
	n.eng.After(n.cfg.SwitchLatency, p.forward)
}

// Drops reports total packets dropped per link — buffer overflows plus
// link/switch failure losses, each billed to an egress queue.
func (n *Network) Drops() int64 {
	var d int64
	for _, l := range n.links {
		d += l.egressAB.drops + l.egressBA.drops
	}
	return d
}
