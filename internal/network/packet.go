package network

import (
	"fmt"

	"holdcsim/internal/simtime"
	"holdcsim/internal/topology"
)

// packet is one MTU-or-smaller unit traversing a fixed route
// store-and-forward: at each hop it queues at the egress port, pays
// serialization (bytes/link-rate, plus LPI wake penalty when the port
// was idle), propagates, and is forwarded after the switch latency.
type packet struct {
	bytes int64
	nodes []topology.NodeID
	links []*linkState
	hop   int // index of the link currently being traversed
	xfer  *pktTransfer
}

// pktTransfer tracks one packet-mode data transfer.
type pktTransfer struct {
	total     int
	delivered int
	dropped   int
	done      func()
}

// finishOne accounts one packet reaching a terminal state (delivered or
// dropped) and fires the completion callback once all packets have.
// Dropped packets are not retransmitted (drops are a congestion signal
// counted in Stats); completion fires regardless so DAG progress cannot
// deadlock on a full buffer.
func (x *pktTransfer) finishOne(n *Network) {
	if x.delivered+x.dropped == x.total {
		if x.done != nil {
			x.done()
		}
	}
}

// TransferPackets sends bytes from src to dst as MTU-sized packets,
// invoking done when every packet has been delivered (or dropped).
func (n *Network) TransferPackets(src, dst topology.NodeID, bytes int64, done func()) error {
	if bytes < 0 {
		return fmt.Errorf("network: negative transfer size %d", bytes)
	}
	id := n.nextFlowID
	n.nextFlowID++
	if src == dst || bytes == 0 {
		n.eng.After(0, func() {
			n.stats.BytesDelivered += bytes
			if done != nil {
				done()
			}
		})
		return nil
	}
	nodes, links, err := n.path(src, dst, id)
	if err != nil {
		return err
	}
	nPkts := int((bytes + n.cfg.MTUBytes - 1) / n.cfg.MTUBytes)
	xfer := &pktTransfer{total: nPkts, done: done}
	wait := n.wakePathSwitches(nodes)
	n.eng.After(wait, func() {
		rem := bytes
		for i := 0; i < nPkts; i++ {
			sz := n.cfg.MTUBytes
			if rem < sz {
				sz = rem
			}
			rem -= sz
			p := &packet{bytes: sz, nodes: nodes, links: links, xfer: xfer}
			links[0].egress(links[0].a == src).enqueue(n, p)
		}
	})
	return nil
}

// egressQueue is the FIFO at one directional link end. busy() feeds the
// switch idle check.
type egressQueue struct {
	link *linkState
	ab   bool // direction A->B

	sending     bool
	queue       []*packet
	queuedBytes int64
	drops       int64
}

func (q *egressQueue) busy() bool { return q.sending || len(q.queue) > 0 }

// enqueue adds a packet, dropping it if the buffer would overflow.
func (q *egressQueue) enqueue(n *Network, p *packet) {
	if n.cfg.PortBufferBytes > 0 && q.busy() &&
		q.queuedBytes+p.bytes > n.cfg.PortBufferBytes {
		q.drops++
		n.stats.PacketsDropped++
		p.xfer.dropped++
		p.xfer.finishOne(n)
		return
	}
	q.queue = append(q.queue, p)
	q.queuedBytes += p.bytes
	q.maybeSend(n)
}

// maybeSend starts serializing the head packet if the line is free.
func (q *egressQueue) maybeSend(n *Network) {
	if q.sending || len(q.queue) == 0 {
		return
	}
	p := q.queue[0]
	q.queue = q.queue[1:]
	q.queuedBytes -= p.bytes
	q.sending = true

	l := q.link
	// Mark both ports busy for the duration of serialization +
	// propagation; collect the LPI wake penalty.
	var penalty simtime.Time
	if l.portA != nil {
		if w := l.portA.addUser(); w > penalty {
			penalty = w
		}
		l.portA.bytesSent += p.bytes
	}
	if l.portB != nil {
		if w := l.portB.addUser(); w > penalty {
			penalty = w
		}
		l.portB.bytesSent += p.bytes
	}
	ser := simtime.FromSeconds(float64(p.bytes) / l.bytesPerSec())
	n.eng.After(penalty+ser, func() {
		q.sending = false
		q.maybeSend(n)
		n.eng.After(n.cfg.PropDelay, func() { n.packetArrived(p) })
	})
}

// packetArrived lands a packet at the far end of its current link.
func (n *Network) packetArrived(p *packet) {
	l := p.links[p.hop]
	l.markIdle()
	p.hop++
	at := p.nodes[p.hop]
	if p.hop == len(p.links) { // destination host
		n.stats.PacketsDelivered++
		n.stats.BytesDelivered += p.bytes
		p.xfer.delivered++
		p.xfer.finishOne(n)
		return
	}
	// Forwarding delay inside the switch (or relay host in server-centric
	// topologies), then queue at the next egress.
	next := p.links[p.hop]
	n.eng.After(n.cfg.SwitchLatency, func() {
		next.egress(next.a == at).enqueue(n, p)
	})
}

// Drops reports total packets dropped at all egress queues.
func (n *Network) Drops() int64 {
	var d int64
	for _, l := range n.links {
		d += l.egressAB.drops + l.egressBA.drops
	}
	return d
}
