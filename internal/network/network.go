// Package network implements HolDCSim's switch and network architecture
// (paper Sec. III-B): switches composed of a chassis, line cards and
// ports with hierarchical power states (port Active/LPI/Off, line card
// Active/Sleep/Off), packet-level store-and-forward communication,
// flow-based communication with max-min fair bandwidth sharing, adaptive
// link rate, and automatic line-card sleep with wake penalties.
package network

import (
	"fmt"

	"holdcsim/internal/engine"
	"holdcsim/internal/modelcov"
	"holdcsim/internal/power"
	"holdcsim/internal/simtime"
	"holdcsim/internal/topology"
)

// Config parameterizes the network simulation layered on a topology.
type Config struct {
	// SwitchProfile supplies power figures for every switch; ProfileFor,
	// when set, overrides it per switch node.
	SwitchProfile *power.SwitchProfile
	ProfileFor    func(topology.NodeID) *power.SwitchProfile

	// MTUBytes is the packet size for packet-level transfers.
	MTUBytes int64
	// SwitchLatency is the per-hop forwarding latency inside a switch.
	SwitchLatency simtime.Time
	// PropDelay is the per-link propagation delay.
	PropDelay simtime.Time
	// PortBufferBytes bounds each egress queue; excess packets drop.
	PortBufferBytes int64
	// LPIIdle is the idle time before a port enters Low Power Idle;
	// negative disables LPI.
	LPIIdle simtime.Time
	// SwitchSleepIdle is the idle time before a switch's line cards
	// sleep; negative disables switch sleep.
	SwitchSleepIdle simtime.Time
	// ECMP spreads flows across equal-cost paths by flow ID hash.
	ECMP bool
	// Model selects the simulation granularity for packet transfers:
	// per-packet store-and-forward events (the zero value) or the fluid
	// flow-level approximation (see NetModel).
	Model NetModel
}

// DefaultConfig returns sensible defaults: 1500 B MTU, 1 µs switching,
// 500 ns propagation, 512 KiB buffers, LPI after 50 µs, no switch sleep.
func DefaultConfig(profile *power.SwitchProfile) Config {
	return Config{
		SwitchProfile:   profile,
		MTUBytes:        1500,
		SwitchLatency:   simtime.Microsecond,
		PropDelay:       500 * simtime.Nanosecond,
		PortBufferBytes: 512 * 1024,
		LPIIdle:         50 * simtime.Microsecond,
		SwitchSleepIdle: -1,
	}
}

// Stats aggregates network-wide counters.
type Stats struct {
	FlowsStarted     int64
	FlowsCompleted   int64
	FlowsFailed      int64 // flows killed by a link or switch failure (⊆ completed)
	PacketsSent      int64 // packets injected by packet-mode transfers
	PacketsDelivered int64
	PacketsDropped   int64
	BytesDelivered   int64
}

// Network is the simulated interconnect: one instance per data center.
type Network struct {
	eng *engine.Engine
	g   *topology.Graph
	cfg Config

	switches map[topology.NodeID]*Switch
	swList   []*Switch // deterministic iteration order
	links    []*linkState

	flows      []*Flow // active flows in id order
	nextFlowID int64

	// openPktTransfers counts packet-mode transfers whose completion
	// callback has not fired yet (packet conservation checking).
	openPktTransfers int

	// Free lists for the zero-alloc packet fast path: released objects
	// keep their cached dispatch closures, so reuse schedules no new
	// allocations (the same pattern as the engine's event pool).
	pktFree  []*packet
	xferFree []*pktTransfer

	// routes caches the (src, dst) -> path resolution for non-ECMP
	// configurations, where the route is independent of the flow id.
	routes map[routeKey]*route

	// fluidDrops counts packets charged dropped by the fluid model,
	// which has no egress queues to bill; Drops() folds it in so the
	// Drops()==PacketsDropped reconciliation holds for both models.
	fluidDrops int64

	// cover, when non-nil, receives drop-site, terminal-path, and
	// switch-power coverage features (modelcov; recording only).
	cover *modelcov.Map

	stats Stats
}

// SetCover attaches a model-state coverage map recording drop sites,
// transfer terminal paths, and switch sleep/LPI events. Pass nil to
// detach. Coverage recording never alters simulation behavior.
func (n *Network) SetCover(m *modelcov.Map) { n.cover = m }

// routeKey indexes the route cache.
type routeKey struct{ src, dst topology.NodeID }

// route is one cached path resolution. The slices are shared by every
// transfer between the pair and are never mutated after insertion; sws
// holds the switches along the path so the wake check on every transfer
// skips the node-map lookups.
type route struct {
	nodes []topology.NodeID
	links []*linkState
	sws   []*Switch
}

// maxCachedRoutes bounds route-cache memory on very large topologies;
// pairs beyond the cap resolve per call, exactly as before caching.
const maxCachedRoutes = 1 << 16

// New lays the network over the topology graph: every switch node gets
// line cards and ports per its profile; every link end attached to a
// switch consumes one port.
func New(eng *engine.Engine, g *topology.Graph, cfg Config) (*Network, error) {
	if cfg.MTUBytes <= 0 {
		return nil, fmt.Errorf("network: MTU must be positive")
	}
	n := &Network{
		eng:      eng,
		g:        g,
		cfg:      cfg,
		switches: make(map[topology.NodeID]*Switch),
		routes:   make(map[routeKey]*route),
	}
	profileFor := cfg.ProfileFor
	if profileFor == nil {
		profileFor = func(topology.NodeID) *power.SwitchProfile { return cfg.SwitchProfile }
	}
	for _, id := range g.Switches() {
		prof := profileFor(id)
		if prof == nil {
			return nil, fmt.Errorf("network: no switch profile for node %d", id)
		}
		if err := prof.Validate(); err != nil {
			return nil, err
		}
		if prof.Ports() < g.Degree(id) {
			return nil, fmt.Errorf("network: switch %d (%s) needs %d ports, profile %q has %d",
				id, g.Node(id).Name, g.Degree(id), prof.Name, prof.Ports())
		}
		sw := newSwitch(n, id, prof)
		n.switches[id] = sw
		n.swList = append(n.swList, sw)
	}
	// Instantiate link state; allocate switch ports in link order.
	n.links = make([]*linkState, g.NumLinks())
	for i := 0; i < g.NumLinks(); i++ {
		lk := g.Link(i)
		ls := &linkState{id: i, a: lk.A, b: lk.B, rateBps: lk.RateBps, net: n}
		ls.lpiTimer = engine.NewTimer(eng, ls.enterLPI)
		if sw, ok := n.switches[lk.A]; ok {
			ls.portA = sw.allocPort(ls)
		}
		if sw, ok := n.switches[lk.B]; ok {
			ls.portB = sw.allocPort(ls)
		}
		ls.egressAB = newEgressQueue(ls, true)
		ls.egressBA = newEgressQueue(ls, false)
		ls.refreshRate()
		// Connected ports start idle: begin the LPI countdown (a no-op
		// for host-host links, which have no ports).
		ls.armLPI()
		n.links[i] = ls
	}
	for _, sw := range n.swList {
		// Ports with no link partner are administratively down and draw
		// nothing (matches the paper's base-power measurements, which
		// exclude unconnected ports).
		for _, p := range sw.ports[sw.allocated:] {
			p.setPortState(power.PortOff)
		}
		sw.recompute()
		sw.maybeSleepArm()
	}
	return n, nil
}

// Engine exposes the simulation engine (used by controllers).
func (n *Network) Engine() *engine.Engine { return n.eng }

// Graph exposes the underlying topology.
func (n *Network) Graph() *topology.Graph { return n.g }

// Stats returns a copy of the network counters.
func (n *Network) Stats() Stats { return n.stats }

// Switches returns the switch objects in deterministic node order.
func (n *Network) Switches() []*Switch { return n.swList }

// OpenPacketTransfers reports packet-mode transfers still in flight.
func (n *Network) OpenPacketTransfers() int { return n.openPktTransfers }

// SwitchAt returns the switch at a node (nil for hosts).
func (n *Network) SwitchAt(id topology.NodeID) *Switch { return n.switches[id] }

// NetworkPowerW reports the instantaneous draw of all switches.
func (n *Network) NetworkPowerW() float64 {
	sum := 0.0
	for _, sw := range n.swList {
		sum += sw.meter.Power()
	}
	return sum
}

// NetworkEnergyTo reports total switch energy in joules up to t.
func (n *Network) NetworkEnergyTo(t simtime.Time) float64 {
	sum := 0.0
	for _, sw := range n.swList {
		sum += sw.meter.EnergyTo(t)
	}
	return sum
}

// SleepingSwitchesOnPath counts switches on the (key-0) route from src
// to dst that are currently asleep — the "network cost" signal of the
// Server-Network-Aware policy (Sec. IV-D).
func (n *Network) SleepingSwitchesOnPath(src, dst topology.NodeID) int {
	nodes, _, err := n.g.Path(src, dst, 0)
	if err != nil {
		return 0
	}
	count := 0
	for _, nd := range nodes {
		if sw := n.switches[nd]; sw != nil && sw.sleeping {
			count++
		}
	}
	return count
}

// path computes the route for a new transfer, honoring ECMP config.
// Without ECMP the route is a pure function of (src, dst), so it is
// cached: the hot path resolves in one map probe with no allocation.
// ECMP routes depend on the per-flow hash key and always resolve fresh.
func (n *Network) path(src, dst topology.NodeID, key int64) (*route, error) {
	ecmpKey := uint64(0)
	if n.cfg.ECMP {
		ecmpKey = uint64(key)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	} else if r, ok := n.routes[routeKey{src, dst}]; ok {
		return r, nil
	}
	nodes, linkIDs, err := n.g.Path(src, dst, ecmpKey)
	if err != nil {
		return nil, err
	}
	r := &route{nodes: nodes, links: make([]*linkState, len(linkIDs))}
	for i, id := range linkIDs {
		r.links[i] = n.links[id]
	}
	for _, nd := range nodes {
		if sw := n.switches[nd]; sw != nil {
			r.sws = append(r.sws, sw)
		}
	}
	if !n.cfg.ECMP && len(n.routes) < maxCachedRoutes {
		n.routes[routeKey{src, dst}] = r
	}
	return r, nil
}

// wakeRoute initiates wake on every sleeping switch along the route and
// reports the time until all are awake (0 if none sleeping).
func (n *Network) wakeRoute(r *route) simtime.Time {
	var wait simtime.Time
	for _, sw := range r.sws {
		if d := sw.wake(); d > wait {
			wait = d
		}
	}
	return wait
}

// linkState is one bidirectional link plus its simulation state: the
// switch ports at its ends (nil at host ends), per-direction flow sets
// and per-direction packet egress queues.
type linkState struct {
	id      int
	a, b    topology.NodeID
	rateBps float64
	net     *Network

	portA, portB *Port

	// lpiTimer is shared by both end ports: they gain and lose traffic
	// in lockstep (markActive/maybeSend touch both, markIdle releases
	// both), so their LPI countdowns always had identical deadlines and
	// adjacent event seqs — one link-level timer halves the timer events
	// while preserving the portA-then-portB transition order.
	lpiTimer *engine.Timer

	nFlowsAB, nFlowsBA int

	// effBytesPerSec caches effectiveRateBps()/8; refreshRate keeps it
	// current across ALR steps (the only runtime rate changes).
	effBytesPerSec float64

	egressAB, egressBA *egressQueue

	// Fault admin state: adminDown is an explicit link flap; deadEnds
	// counts failed endpoint switches. Either takes the link down.
	adminDown bool
	deadEnds  int
}

// bytesPerSec reports the link's current per-direction capacity in
// bytes/second (adaptive link rate lowers it). The value is cached on
// the link; setRateIdx refreshes it whenever an ALR step changes either
// port's rate, so the serialization hot path skips the two-port probe.
func (l *linkState) bytesPerSec() float64 { return l.effBytesPerSec }

// refreshRate recomputes the cached effective capacity from the
// configured rate and the two port ALR settings.
func (l *linkState) refreshRate() {
	l.effBytesPerSec = l.effectiveRateBps() / 8
}

// effectiveRateBps is the configured rate limited by the slower of the
// two port ALR settings.
func (l *linkState) effectiveRateBps() float64 {
	rate := l.rateBps
	if l.portA != nil {
		if r := l.portA.currentRateBps(); r < rate {
			rate = r
		}
	}
	if l.portB != nil {
		if r := l.portB.currentRateBps(); r < rate {
			rate = r
		}
	}
	return rate
}

// markActive registers traffic on the link's ports (either direction).
func (l *linkState) markActive() {
	l.lpiTimer.Stop()
	if l.portA != nil {
		l.portA.addUser()
	}
	if l.portB != nil {
		l.portB.addUser()
	}
}

// markIdle releases one traffic unit from the link's ports, starting
// the shared LPI countdown when they drain (both ports drain together;
// see lpiTimer).
func (l *linkState) markIdle() {
	drained := false
	if l.portA != nil {
		l.portA.removeUser()
		drained = l.portA.users == 0
	}
	if l.portB != nil {
		l.portB.removeUser()
		drained = l.portB.users == 0
	}
	if drained {
		l.armLPI()
	}
}

// armLPI starts the link's LPI idle countdown if enabled and at least
// one end port can still enter LPI.
func (l *linkState) armLPI() {
	if l.net.cfg.LPIIdle < 0 {
		return
	}
	if (l.portA == nil || l.portA.sw.failed) && (l.portB == nil || l.portB.sw.failed) {
		return
	}
	l.lpiTimer.Reset(l.net.cfg.LPIIdle)
}

// enterLPI moves the link's idle ports into Low Power Idle, in the
// portA-then-portB order the per-port timers used to fire in.
func (l *linkState) enterLPI() {
	if l.portA != nil {
		l.portA.enterLPI()
	}
	if l.portB != nil {
		l.portB.enterLPI()
	}
}

// egress returns the egress queue for the given direction (fromA=true
// means A->B).
func (l *linkState) egress(fromA bool) *egressQueue {
	if fromA {
		return l.egressAB
	}
	return l.egressBA
}
