// Package network implements HolDCSim's switch and network architecture
// (paper Sec. III-B): switches composed of a chassis, line cards and
// ports with hierarchical power states (port Active/LPI/Off, line card
// Active/Sleep/Off), packet-level store-and-forward communication,
// flow-based communication with max-min fair bandwidth sharing, adaptive
// link rate, and automatic line-card sleep with wake penalties.
package network

import (
	"fmt"

	"holdcsim/internal/engine"
	"holdcsim/internal/power"
	"holdcsim/internal/simtime"
	"holdcsim/internal/topology"
)

// Config parameterizes the network simulation layered on a topology.
type Config struct {
	// SwitchProfile supplies power figures for every switch; ProfileFor,
	// when set, overrides it per switch node.
	SwitchProfile *power.SwitchProfile
	ProfileFor    func(topology.NodeID) *power.SwitchProfile

	// MTUBytes is the packet size for packet-level transfers.
	MTUBytes int64
	// SwitchLatency is the per-hop forwarding latency inside a switch.
	SwitchLatency simtime.Time
	// PropDelay is the per-link propagation delay.
	PropDelay simtime.Time
	// PortBufferBytes bounds each egress queue; excess packets drop.
	PortBufferBytes int64
	// LPIIdle is the idle time before a port enters Low Power Idle;
	// negative disables LPI.
	LPIIdle simtime.Time
	// SwitchSleepIdle is the idle time before a switch's line cards
	// sleep; negative disables switch sleep.
	SwitchSleepIdle simtime.Time
	// ECMP spreads flows across equal-cost paths by flow ID hash.
	ECMP bool
}

// DefaultConfig returns sensible defaults: 1500 B MTU, 1 µs switching,
// 500 ns propagation, 512 KiB buffers, LPI after 50 µs, no switch sleep.
func DefaultConfig(profile *power.SwitchProfile) Config {
	return Config{
		SwitchProfile:   profile,
		MTUBytes:        1500,
		SwitchLatency:   simtime.Microsecond,
		PropDelay:       500 * simtime.Nanosecond,
		PortBufferBytes: 512 * 1024,
		LPIIdle:         50 * simtime.Microsecond,
		SwitchSleepIdle: -1,
	}
}

// Stats aggregates network-wide counters.
type Stats struct {
	FlowsStarted     int64
	FlowsCompleted   int64
	FlowsFailed      int64 // flows killed by a link or switch failure (⊆ completed)
	PacketsSent      int64 // packets injected by packet-mode transfers
	PacketsDelivered int64
	PacketsDropped   int64
	BytesDelivered   int64
}

// Network is the simulated interconnect: one instance per data center.
type Network struct {
	eng *engine.Engine
	g   *topology.Graph
	cfg Config

	switches map[topology.NodeID]*Switch
	swList   []*Switch // deterministic iteration order
	links    []*linkState

	flows      []*Flow // active flows in id order
	nextFlowID int64

	// openPktTransfers counts packet-mode transfers whose completion
	// callback has not fired yet (packet conservation checking).
	openPktTransfers int

	stats Stats
}

// New lays the network over the topology graph: every switch node gets
// line cards and ports per its profile; every link end attached to a
// switch consumes one port.
func New(eng *engine.Engine, g *topology.Graph, cfg Config) (*Network, error) {
	if cfg.MTUBytes <= 0 {
		return nil, fmt.Errorf("network: MTU must be positive")
	}
	n := &Network{
		eng:      eng,
		g:        g,
		cfg:      cfg,
		switches: make(map[topology.NodeID]*Switch),
	}
	profileFor := cfg.ProfileFor
	if profileFor == nil {
		profileFor = func(topology.NodeID) *power.SwitchProfile { return cfg.SwitchProfile }
	}
	for _, id := range g.Switches() {
		prof := profileFor(id)
		if prof == nil {
			return nil, fmt.Errorf("network: no switch profile for node %d", id)
		}
		if err := prof.Validate(); err != nil {
			return nil, err
		}
		if prof.Ports() < g.Degree(id) {
			return nil, fmt.Errorf("network: switch %d (%s) needs %d ports, profile %q has %d",
				id, g.Node(id).Name, g.Degree(id), prof.Name, prof.Ports())
		}
		sw := newSwitch(n, id, prof)
		n.switches[id] = sw
		n.swList = append(n.swList, sw)
	}
	// Instantiate link state; allocate switch ports in link order.
	n.links = make([]*linkState, g.NumLinks())
	for i := 0; i < g.NumLinks(); i++ {
		lk := g.Link(i)
		ls := &linkState{id: i, a: lk.A, b: lk.B, rateBps: lk.RateBps, net: n}
		if sw, ok := n.switches[lk.A]; ok {
			ls.portA = sw.allocPort(ls)
		}
		if sw, ok := n.switches[lk.B]; ok {
			ls.portB = sw.allocPort(ls)
		}
		ls.egressAB = &egressQueue{link: ls, ab: true}
		ls.egressBA = &egressQueue{link: ls, ab: false}
		n.links[i] = ls
	}
	for _, sw := range n.swList {
		// Ports with no link partner are administratively down and draw
		// nothing (matches the paper's base-power measurements, which
		// exclude unconnected ports).
		for _, p := range sw.ports[sw.allocated:] {
			p.state = power.PortOff
		}
		sw.recompute()
		sw.maybeSleepArm()
	}
	return n, nil
}

// Engine exposes the simulation engine (used by controllers).
func (n *Network) Engine() *engine.Engine { return n.eng }

// Graph exposes the underlying topology.
func (n *Network) Graph() *topology.Graph { return n.g }

// Stats returns a copy of the network counters.
func (n *Network) Stats() Stats { return n.stats }

// Switches returns the switch objects in deterministic node order.
func (n *Network) Switches() []*Switch { return n.swList }

// OpenPacketTransfers reports packet-mode transfers still in flight.
func (n *Network) OpenPacketTransfers() int { return n.openPktTransfers }

// SwitchAt returns the switch at a node (nil for hosts).
func (n *Network) SwitchAt(id topology.NodeID) *Switch { return n.switches[id] }

// NetworkPowerW reports the instantaneous draw of all switches.
func (n *Network) NetworkPowerW() float64 {
	sum := 0.0
	for _, sw := range n.swList {
		sum += sw.meter.Power()
	}
	return sum
}

// NetworkEnergyTo reports total switch energy in joules up to t.
func (n *Network) NetworkEnergyTo(t simtime.Time) float64 {
	sum := 0.0
	for _, sw := range n.swList {
		sum += sw.meter.EnergyTo(t)
	}
	return sum
}

// SleepingSwitchesOnPath counts switches on the (key-0) route from src
// to dst that are currently asleep — the "network cost" signal of the
// Server-Network-Aware policy (Sec. IV-D).
func (n *Network) SleepingSwitchesOnPath(src, dst topology.NodeID) int {
	nodes, _, err := n.g.Path(src, dst, 0)
	if err != nil {
		return 0
	}
	count := 0
	for _, nd := range nodes {
		if sw := n.switches[nd]; sw != nil && sw.sleeping {
			count++
		}
	}
	return count
}

// path computes the route for a new transfer, honoring ECMP config.
func (n *Network) path(src, dst topology.NodeID, key int64) ([]topology.NodeID, []*linkState, error) {
	ecmpKey := uint64(0)
	if n.cfg.ECMP {
		ecmpKey = uint64(key)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	}
	nodes, linkIDs, err := n.g.Path(src, dst, ecmpKey)
	if err != nil {
		return nil, nil, err
	}
	links := make([]*linkState, len(linkIDs))
	for i, id := range linkIDs {
		links[i] = n.links[id]
	}
	return nodes, links, nil
}

// wakePathSwitches initiates wake on every sleeping switch along the
// route and reports the time until all are awake (0 if none sleeping).
func (n *Network) wakePathSwitches(nodes []topology.NodeID) simtime.Time {
	var wait simtime.Time
	for _, nd := range nodes {
		if sw := n.switches[nd]; sw != nil {
			if d := sw.wake(); d > wait {
				wait = d
			}
		}
	}
	return wait
}

// linkState is one bidirectional link plus its simulation state: the
// switch ports at its ends (nil at host ends), per-direction flow sets
// and per-direction packet egress queues.
type linkState struct {
	id      int
	a, b    topology.NodeID
	rateBps float64
	net     *Network

	portA, portB *Port

	nFlowsAB, nFlowsBA int

	egressAB, egressBA *egressQueue

	// Fault admin state: adminDown is an explicit link flap; deadEnds
	// counts failed endpoint switches. Either takes the link down.
	adminDown bool
	deadEnds  int
}

// bytesPerSec reports the link's current per-direction capacity in
// bytes/second (adaptive link rate lowers it).
func (l *linkState) bytesPerSec() float64 { return l.effectiveRateBps() / 8 }

// effectiveRateBps is the configured rate limited by the slower of the
// two port ALR settings.
func (l *linkState) effectiveRateBps() float64 {
	rate := l.rateBps
	if l.portA != nil {
		if r := l.portA.currentRateBps(); r < rate {
			rate = r
		}
	}
	if l.portB != nil {
		if r := l.portB.currentRateBps(); r < rate {
			rate = r
		}
	}
	return rate
}

// markActive registers traffic on the link's ports (either direction).
func (l *linkState) markActive() {
	if l.portA != nil {
		l.portA.addUser()
	}
	if l.portB != nil {
		l.portB.addUser()
	}
}

// markIdle releases one traffic unit from the link's ports.
func (l *linkState) markIdle() {
	if l.portA != nil {
		l.portA.removeUser()
	}
	if l.portB != nil {
		l.portB.removeUser()
	}
}

// egress returns the egress queue for the given direction (fromA=true
// means A->B).
func (l *linkState) egress(fromA bool) *egressQueue {
	if fromA {
		return l.egressAB
	}
	return l.egressBA
}
