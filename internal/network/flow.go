package network

import (
	"fmt"

	"holdcsim/internal/engine"
	"holdcsim/internal/modelcov"
	"holdcsim/internal/simtime"
	"holdcsim/internal/topology"
)

// Flow is one fluid data transfer (paper Sec. III-B: "dependent tasks
// ... can either send a single flow of data or break the flow into
// packets"). Flows on a shared link split capacity max-min fairly;
// rates are recomputed on every flow arrival and departure.
type Flow struct {
	id    int64
	links []*linkState
	dirAB []bool // direction of traversal per link

	total     float64 // bytes requested
	remaining float64 // bytes
	rate      float64 // bytes/sec, assigned by water-filling
	last      simtime.Time
	done      func()
	ev        engine.Handle
	complete  func() // cached completion callback, rescheduled on every re-rate

	// pktN > 0 marks a fluid-model packet transfer riding this flow: the
	// transfer's packet-count equivalent, billed to the packet counters
	// at start and teardown so both network models satisfy the same
	// conservation laws.
	pktN int64
}

// ID reports the flow's identifier.
func (f *Flow) ID() int64 { return f.id }

// Remaining reports unsent bytes as of the last rate change.
func (f *Flow) Remaining() float64 { return f.remaining }

// Rate reports the current max-min fair rate in bytes/sec.
func (f *Flow) Rate() float64 { return f.rate }

// settle advances the flow's progress to time now at its current rate.
func (f *Flow) settle(now simtime.Time) {
	if now > f.last {
		f.remaining -= f.rate * (now - f.last).Seconds()
		if f.remaining < 0 {
			f.remaining = 0
		}
	}
	f.last = now
}

// TransferFlow starts a flow of bytes from src to dst, invoking done
// when the last byte arrives. Same-node transfers complete on the next
// event-loop tick. Sleeping switches on the route are woken first; the
// flow starts when they are up.
func (n *Network) TransferFlow(src, dst topology.NodeID, bytes int64, done func()) error {
	if bytes < 0 {
		return fmt.Errorf("network: negative flow size %d", bytes)
	}
	id := n.nextFlowID
	n.nextFlowID++
	if src == dst || bytes == 0 {
		n.eng.After(0, func() {
			n.stats.BytesDelivered += bytes
			if done != nil {
				done()
			}
		})
		return nil
	}
	return n.startFlow(src, dst, bytes, id, done, 0)
}

// startFlow resolves the route and launches one flow (waking sleeping
// switches first). pktN > 0 marks a fluid-model packet transfer, which
// additionally bills the packet counters (see startFluidTransfer).
func (n *Network) startFlow(src, dst topology.NodeID, bytes, id int64, done func(), pktN int64) error {
	r, err := n.path(src, dst, id)
	if err != nil {
		return err
	}
	links := r.links
	if pktN > 0 {
		n.openPktTransfers++
	}
	wait := n.wakeRoute(r)
	start := func() {
		// The started counter moves here, inside the (possibly deferred)
		// start event: a duration horizon can end the run while a flow
		// still waits on a switch wake, and a flow that never started
		// must not count against flow conservation.
		n.stats.FlowsStarted++
		if pktN > 0 {
			n.stats.PacketsSent += pktN
		}
		for _, l := range links {
			if l.isDown() {
				// The route failed before the flow could start: it fails
				// immediately (completion still fires, like a packet
				// drop, so dependents make progress).
				n.stats.FlowsCompleted++
				n.stats.FlowsFailed++
				n.cover.Hit(modelcov.NetFlowDeadStart)
				if pktN > 0 {
					n.stats.PacketsDropped += pktN
					n.fluidDrops += pktN
					n.openPktTransfers--
				}
				if done != nil {
					done()
				}
				return
			}
		}
		f := &Flow{
			id:        id,
			links:     links,
			dirAB:     make([]bool, len(links)),
			total:     float64(bytes),
			remaining: float64(bytes),
			last:      n.eng.Now(),
			done:      done,
			pktN:      pktN,
		}
		f.complete = func() { n.flowComplete(f) }
		cur := src
		for i, l := range links {
			f.dirAB[i] = l.a == cur
			cur = topology.NodeID(int(l.a) + int(l.b) - int(cur))
			if f.dirAB[i] {
				l.nFlowsAB++
			} else {
				l.nFlowsBA++
			}
			l.markActive()
		}
		n.flows = append(n.flows, f)
		n.recomputeFlowRates()
	}
	if wait > 0 {
		n.eng.After(wait, start)
	} else {
		start()
	}
	return nil
}

// startFluidTransfer runs a packet-granularity transfer under the fluid
// model: one max-min fair flow carries the bytes (one arrival and one
// departure event instead of per-packet chains), while the packet
// counters are billed as if nPkts packets had crossed — all delivered on
// completion; on a failure, full MTUs of settled progress count
// delivered and the remainder dropped, so delivered + dropped == sent
// holds for every terminal path in both models.
func (n *Network) startFluidTransfer(src, dst topology.NodeID, bytes, id int64, done func(), nPkts int64) error {
	return n.startFlow(src, dst, bytes, id, done, nPkts)
}

// ActiveFlows reports the number of in-flight flows.
func (n *Network) ActiveFlows() int { return len(n.flows) }

// recomputeFlowRates settles all flow progress, runs progressive-filling
// (max-min fairness) over the directed link capacities, and reschedules
// every completion event.
func (n *Network) recomputeFlowRates() {
	now := n.eng.Now()
	for _, f := range n.flows {
		f.settle(now)
	}
	n.waterFill()
	for _, f := range n.flows {
		n.eng.Cancel(f.ev)
		f.ev = engine.Handle{}
		var dur simtime.Time
		switch {
		case f.remaining <= 1e-9:
			dur = 0
		case f.rate <= 0:
			continue // blocked (should not happen; capacities are positive)
		default:
			dur = simtime.FromSeconds(f.remaining / f.rate)
			if dur < 0 {
				dur = 0
			}
		}
		f.ev = n.eng.After(dur, f.complete)
	}
}

// directedKey identifies one direction of one link for water-filling.
type directedKey struct {
	link int
	ab   bool
}

// waterFill assigns max-min fair rates: iteratively find the bottleneck
// resource (smallest fair share), freeze its flows at that rate, remove
// their demand, and repeat.
func (n *Network) waterFill() {
	if len(n.flows) == 0 {
		return
	}
	type resource struct {
		cap     float64 // bytes/sec remaining
		flows   []*Flow
		unfixed int
	}
	resources := make(map[directedKey]*resource)
	var order []directedKey // deterministic iteration
	for _, f := range n.flows {
		f.rate = -1 // unfixed marker
		for i, l := range f.links {
			k := directedKey{link: l.id, ab: f.dirAB[i]}
			r, ok := resources[k]
			if !ok {
				r = &resource{cap: l.bytesPerSec()}
				resources[k] = r
				order = append(order, k)
			}
			r.flows = append(r.flows, f)
			r.unfixed++
		}
	}
	unfixed := len(n.flows)
	for unfixed > 0 {
		// Find the bottleneck resource.
		bestShare := -1.0
		var bestKey directedKey
		for _, k := range order {
			r := resources[k]
			if r.unfixed == 0 {
				continue
			}
			share := r.cap / float64(r.unfixed)
			if bestShare < 0 || share < bestShare {
				bestShare = share
				bestKey = k
			}
		}
		if bestShare < 0 {
			break // no constrained resources left (cannot happen with links on every flow)
		}
		// Freeze every unfixed flow on the bottleneck.
		for _, f := range resources[bestKey].flows {
			if f.rate >= 0 {
				continue
			}
			f.rate = bestShare
			unfixed--
			for i, l := range f.links {
				k := directedKey{link: l.id, ab: f.dirAB[i]}
				r := resources[k]
				r.cap -= bestShare
				if r.cap < 0 {
					r.cap = 0
				}
				r.unfixed--
			}
		}
	}
}

// releaseFlow is the single teardown path for a flow leaving the
// network, completed or killed: it settles progress, leaves the active
// list, releases links and ports, updates the counters, re-rates the
// survivors, and fires the owner's callback. failed selects the
// accounting: a killed flow counts failed and delivers only its
// progress to date.
func (n *Network) releaseFlow(f *Flow, failed bool) {
	f.settle(n.eng.Now())
	// Remove from the active list (kept in id order).
	for i, g := range n.flows {
		if g == f {
			n.flows = append(n.flows[:i], n.flows[i+1:]...)
			break
		}
	}
	// Inert for a completed flow (its event already fired); a killed
	// flow's pending completion must not land later.
	n.eng.Cancel(f.ev)
	f.ev = engine.Handle{}
	for i, l := range f.links {
		if f.dirAB[i] {
			l.nFlowsAB--
		} else {
			l.nFlowsBA--
		}
		l.markIdle()
	}
	n.stats.FlowsCompleted++
	deliveredBytes := int64(f.total)
	if failed {
		n.stats.FlowsFailed++
		deliveredBytes = int64(f.total - f.remaining)
	}
	n.stats.BytesDelivered += deliveredBytes
	if f.pktN > 0 {
		// Fluid packet accounting: a completed flow delivers all its
		// packets; a killed one delivers the full MTUs of settled
		// progress and drops the rest.
		del := f.pktN
		if failed {
			del = deliveredBytes / n.cfg.MTUBytes
			if del > f.pktN {
				del = f.pktN
			}
		}
		drop := f.pktN - del
		n.stats.PacketsDelivered += del
		n.stats.PacketsDropped += drop
		n.fluidDrops += drop
		n.openPktTransfers--
		if drop > 0 {
			n.cover.Hit(modelcov.DropFluidKill)
		}
		if failed {
			n.cover.Hit(modelcov.NetFluidFailed)
		} else {
			n.cover.Hit(modelcov.NetFluidComplete)
		}
	} else {
		if failed {
			n.cover.Hit(modelcov.NetFlowFailed)
		} else {
			n.cover.Hit(modelcov.NetFlowComplete)
		}
	}
	n.recomputeFlowRates()
	if f.done != nil {
		f.done()
	}
}

// failFlow kills a flow whose route lost a link or switch: progress to
// date counts as delivered bytes, the flow counts completed and failed,
// and the completion callback fires — exactly the drop semantics of
// packet mode, so DAG progress never deadlocks on a failure.
func (n *Network) failFlow(f *Flow) { n.releaseFlow(f, true) }

// flowComplete finishes a flow: releases its links and ports, notifies
// the owner, and re-rates the remaining flows.
func (n *Network) flowComplete(f *Flow) { n.releaseFlow(f, false) }
