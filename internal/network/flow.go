package network

import (
	"fmt"

	"holdcsim/internal/engine"
	"holdcsim/internal/simtime"
	"holdcsim/internal/topology"
)

// Flow is one fluid data transfer (paper Sec. III-B: "dependent tasks
// ... can either send a single flow of data or break the flow into
// packets"). Flows on a shared link split capacity max-min fairly;
// rates are recomputed on every flow arrival and departure.
type Flow struct {
	id    int64
	links []*linkState
	dirAB []bool // direction of traversal per link

	total     float64 // bytes requested
	remaining float64 // bytes
	rate      float64 // bytes/sec, assigned by water-filling
	last      simtime.Time
	done      func()
	ev        engine.Handle
	complete  func() // cached completion callback, rescheduled on every re-rate
}

// ID reports the flow's identifier.
func (f *Flow) ID() int64 { return f.id }

// Remaining reports unsent bytes as of the last rate change.
func (f *Flow) Remaining() float64 { return f.remaining }

// Rate reports the current max-min fair rate in bytes/sec.
func (f *Flow) Rate() float64 { return f.rate }

// settle advances the flow's progress to time now at its current rate.
func (f *Flow) settle(now simtime.Time) {
	if now > f.last {
		f.remaining -= f.rate * (now - f.last).Seconds()
		if f.remaining < 0 {
			f.remaining = 0
		}
	}
	f.last = now
}

// TransferFlow starts a flow of bytes from src to dst, invoking done
// when the last byte arrives. Same-node transfers complete on the next
// event-loop tick. Sleeping switches on the route are woken first; the
// flow starts when they are up.
func (n *Network) TransferFlow(src, dst topology.NodeID, bytes int64, done func()) error {
	if bytes < 0 {
		return fmt.Errorf("network: negative flow size %d", bytes)
	}
	id := n.nextFlowID
	n.nextFlowID++
	if src == dst || bytes == 0 {
		n.eng.After(0, func() {
			n.stats.BytesDelivered += bytes
			if done != nil {
				done()
			}
		})
		return nil
	}
	nodes, links, err := n.path(src, dst, id)
	if err != nil {
		return err
	}
	n.stats.FlowsStarted++
	wait := n.wakePathSwitches(nodes)
	start := func() {
		f := &Flow{
			id:        id,
			links:     links,
			dirAB:     make([]bool, len(links)),
			total:     float64(bytes),
			remaining: float64(bytes),
			last:      n.eng.Now(),
			done:      done,
		}
		f.complete = func() { n.flowComplete(f) }
		cur := src
		for i, l := range links {
			f.dirAB[i] = l.a == cur
			cur = topology.NodeID(int(l.a) + int(l.b) - int(cur))
			if f.dirAB[i] {
				l.nFlowsAB++
			} else {
				l.nFlowsBA++
			}
			l.markActive()
		}
		n.flows = append(n.flows, f)
		n.recomputeFlowRates()
	}
	if wait > 0 {
		n.eng.After(wait, start)
	} else {
		start()
	}
	return nil
}

// ActiveFlows reports the number of in-flight flows.
func (n *Network) ActiveFlows() int { return len(n.flows) }

// recomputeFlowRates settles all flow progress, runs progressive-filling
// (max-min fairness) over the directed link capacities, and reschedules
// every completion event.
func (n *Network) recomputeFlowRates() {
	now := n.eng.Now()
	for _, f := range n.flows {
		f.settle(now)
	}
	n.waterFill()
	for _, f := range n.flows {
		n.eng.Cancel(f.ev)
		f.ev = engine.Handle{}
		var dur simtime.Time
		switch {
		case f.remaining <= 1e-9:
			dur = 0
		case f.rate <= 0:
			continue // blocked (should not happen; capacities are positive)
		default:
			dur = simtime.FromSeconds(f.remaining / f.rate)
			if dur < 0 {
				dur = 0
			}
		}
		f.ev = n.eng.After(dur, f.complete)
	}
}

// directedKey identifies one direction of one link for water-filling.
type directedKey struct {
	link int
	ab   bool
}

// waterFill assigns max-min fair rates: iteratively find the bottleneck
// resource (smallest fair share), freeze its flows at that rate, remove
// their demand, and repeat.
func (n *Network) waterFill() {
	if len(n.flows) == 0 {
		return
	}
	type resource struct {
		cap     float64 // bytes/sec remaining
		flows   []*Flow
		unfixed int
	}
	resources := make(map[directedKey]*resource)
	var order []directedKey // deterministic iteration
	for _, f := range n.flows {
		f.rate = -1 // unfixed marker
		for i, l := range f.links {
			k := directedKey{link: l.id, ab: f.dirAB[i]}
			r, ok := resources[k]
			if !ok {
				r = &resource{cap: l.bytesPerSec()}
				resources[k] = r
				order = append(order, k)
			}
			r.flows = append(r.flows, f)
			r.unfixed++
		}
	}
	unfixed := len(n.flows)
	for unfixed > 0 {
		// Find the bottleneck resource.
		bestShare := -1.0
		var bestKey directedKey
		for _, k := range order {
			r := resources[k]
			if r.unfixed == 0 {
				continue
			}
			share := r.cap / float64(r.unfixed)
			if bestShare < 0 || share < bestShare {
				bestShare = share
				bestKey = k
			}
		}
		if bestShare < 0 {
			break // no constrained resources left (cannot happen with links on every flow)
		}
		// Freeze every unfixed flow on the bottleneck.
		for _, f := range resources[bestKey].flows {
			if f.rate >= 0 {
				continue
			}
			f.rate = bestShare
			unfixed--
			for i, l := range f.links {
				k := directedKey{link: l.id, ab: f.dirAB[i]}
				r := resources[k]
				r.cap -= bestShare
				if r.cap < 0 {
					r.cap = 0
				}
				r.unfixed--
			}
		}
	}
}

// flowComplete finishes a flow: releases its links and ports, notifies
// the owner, and re-rates the remaining flows.
func (n *Network) flowComplete(f *Flow) {
	f.settle(n.eng.Now())
	// Remove from the active list (kept in id order).
	for i, g := range n.flows {
		if g == f {
			n.flows = append(n.flows[:i], n.flows[i+1:]...)
			break
		}
	}
	for i, l := range f.links {
		if f.dirAB[i] {
			l.nFlowsAB--
		} else {
			l.nFlowsBA--
		}
		l.markIdle()
	}
	n.stats.FlowsCompleted++
	n.stats.BytesDelivered += int64(f.total)
	n.recomputeFlowRates()
	if f.done != nil {
		f.done()
	}
}
