package network

import (
	"fmt"

	"holdcsim/internal/engine"
	"holdcsim/internal/modelcov"
	"holdcsim/internal/power"
	"holdcsim/internal/simtime"
	"holdcsim/internal/stats"
	"holdcsim/internal/topology"
)

// Switch residency labels. SwitchStateDown is the fault model's
// addition: a dead switch draws nothing until revived.
const (
	SwitchStateActive = "Active"
	SwitchStateWake   = "Wake-up"
	SwitchStateSleep  = "Sleep"
	SwitchStateDown   = "Down"
)

// Switch models one switching element: chassis + line cards + ports,
// with automatic line-card sleep and per-port LPI (paper Sec. III-B,
// Fig. 3).
type Switch struct {
	net  *Network
	node topology.NodeID
	prof *power.SwitchProfile

	lineCards []*LineCard
	ports     []*Port
	allocated int // ports handed out to links

	sleeping  bool
	waking    bool
	failed    bool // dead (fault model): 0 W, no traffic, no transitions
	wakeUntil simtime.Time
	wakeEv    engine.Handle
	sleepTmr  *engine.Timer

	meter     *stats.EnergyMeter
	residency *stats.Residency

	wakeCount int64

	// Memo for the active-state wattage sum, keyed by the packed
	// line-card/port state vector. stateVec is maintained incrementally
	// by the setPortState/setRateIdx/setLCState helpers — every state
	// write goes through them — so a memo probe is one field read. The
	// cached entries hold results this switch's own summation loop
	// produced for identical inputs, so hits are bit-identical to
	// recomputation (the profile is immutable after construction).
	// memoOK is false when the vector doesn't fit the 64-bit key; the
	// loop then runs every time.
	memoOK   bool
	stateVec uint64
	memoN    int
	memoNext int
	memoKey  [wattsMemoSlots]uint64
	memoW    [wattsMemoSlots]float64
}

// wattsMemoSlots bounds the per-switch memo: LPI churn cycles through a
// handful of vectors, so a tiny ring with linear scan is enough.
const wattsMemoSlots = 8

func newSwitch(n *Network, node topology.NodeID, prof *power.SwitchProfile) *Switch {
	sw := &Switch{
		net:       n,
		node:      node,
		prof:      prof,
		meter:     stats.NewEnergyMeter(fmt.Sprintf("switch%d", node)),
		residency: stats.NewResidency(fmt.Sprintf("switch%d", node)),
	}
	for lc := 0; lc < prof.LineCards; lc++ {
		card := &LineCard{sw: sw, idx: lc, state: power.LineCardActive}
		for p := 0; p < prof.PortsPerLineCard; p++ {
			port := &Port{sw: sw, lc: card, idx: lc*prof.PortsPerLineCard + p,
				state: power.PortActive, rateIdx: len(prof.LinkRatesBps) - 1}
			card.ports = append(card.ports, port)
			sw.ports = append(sw.ports, port)
		}
		sw.lineCards = append(sw.lineCards, card)
	}
	sw.sleepTmr = engine.NewTimer(n.eng, sw.enterSleep)
	// 11 ports x 5 bits (2 state + 3 rateIdx+1) + 4 line cards x 2 bits
	// fills 63 of the key's 64 bits. Larger switches skip the memo.
	sw.memoOK = len(sw.lineCards) <= 4 && len(sw.ports) <= 11 &&
		len(prof.LinkRatesBps) <= 7
	sw.stateVec = sw.buildStateVec()
	return sw
}

// allocPort hands the next unused port to a link.
func (s *Switch) allocPort(l *linkState) *Port {
	p := s.ports[s.allocated]
	s.allocated++
	p.link = l
	return p
}

// Node reports the topology node this switch occupies.
func (s *Switch) Node() topology.NodeID { return s.node }

// Profile reports the switch's power profile.
func (s *Switch) Profile() *power.SwitchProfile { return s.prof }

// Sleeping reports whether the line cards are asleep.
func (s *Switch) Sleeping() bool { return s.sleeping }

// Failed reports whether the switch is dead (fault model).
func (s *Switch) Failed() bool { return s.failed }

// WakeCount reports how many sleep->active transitions occurred.
func (s *Switch) WakeCount() int64 { return s.wakeCount }

// PowerW reports the switch's instantaneous draw.
func (s *Switch) PowerW() float64 { return s.meter.Power() }

// EnergyTo reports the switch's energy in joules up to t.
func (s *Switch) EnergyTo(t simtime.Time) float64 { return s.meter.EnergyTo(t) }

// Residency exposes the Active/Wake-up/Sleep tracker.
func (s *Switch) Residency() *stats.Residency { return s.residency }

// PortStates snapshots all port states (validation logging, Sec. V-B).
func (s *Switch) PortStates() []power.PortState {
	out := make([]power.PortState, len(s.ports))
	for i, p := range s.ports {
		out[i] = p.state
	}
	return out
}

// ActivePorts counts ports currently in the Active state.
func (s *Switch) ActivePorts() int {
	n := 0
	for _, p := range s.ports {
		if p.state == power.PortActive {
			n++
		}
	}
	return n
}

// wake begins (or continues) waking a sleeping switch, returning the
// remaining time until it is usable. Awake switches return 0.
func (s *Switch) wake() simtime.Time {
	now := s.net.eng.Now()
	if s.failed {
		return 0 // dead switches don't wake; traffic drops at their links
	}
	if s.waking {
		return s.wakeUntil - now
	}
	if !s.sleeping {
		return 0
	}
	s.sleeping = false
	s.waking = true
	s.wakeCount++
	s.net.cover.Hit(modelcov.SwitchWake)
	lat := s.prof.LineCardWake.Latency
	s.wakeUntil = now + lat
	s.recompute()
	s.wakeEv = s.net.eng.After(lat, func() {
		s.waking = false
		for _, lc := range s.lineCards {
			lc.setLCState(power.LineCardActive)
		}
		for _, p := range s.ports {
			if p.link != nil {
				p.setPortState(power.PortActive)
				p.link.armLPI()
			}
		}
		s.recompute()
		s.maybeSleepArm()
	})
	return lat
}

// enterSleep puts line cards to sleep and ports off, if still idle.
func (s *Switch) enterSleep() {
	if s.failed || s.sleeping || s.waking || !s.idle() {
		return
	}
	s.sleeping = true
	s.net.cover.Hit(modelcov.SwitchSleep)
	for _, lc := range s.lineCards {
		lc.setLCState(power.LineCardSleep)
	}
	for _, p := range s.ports {
		// The shared link timer is left alone: the partner port may
		// still need its countdown, and a fire against this port is a
		// no-op (enterLPI skips non-Active ports).
		p.setPortState(power.PortOff)
	}
	s.recompute()
}

// idle reports whether no port has users or queued packets.
func (s *Switch) idle() bool {
	for _, p := range s.ports {
		if p.users > 0 {
			return false
		}
		if p.link != nil {
			if p.link.egressAB.busy() || p.link.egressBA.busy() {
				return false
			}
		}
	}
	return true
}

// maybeSleepArm (re)arms the sleep timer when the switch is idle and
// sleep is enabled.
func (s *Switch) maybeSleepArm() {
	if s.net.cfg.SwitchSleepIdle < 0 || s.sleeping || s.waking || s.failed {
		return
	}
	if s.idle() {
		s.sleepTmr.Reset(s.net.cfg.SwitchSleepIdle)
	}
}

// recompute re-derives the switch draw from chassis, line-card and port
// states.
func (s *Switch) recompute() {
	now := s.net.eng.Now()
	w := s.prof.ChassisWatts
	label := SwitchStateActive
	switch {
	case s.failed:
		w = 0
		label = SwitchStateDown
	case s.waking:
		w += float64(s.prof.LineCards) * s.prof.LineCardWake.Watts
		label = SwitchStateWake
	case s.sleeping:
		w += float64(s.prof.LineCards) * s.prof.LineCardSleepW
		label = SwitchStateSleep
	default:
		w = s.activeWatts()
	}
	s.meter.SetPower(now, w)
	s.residency.SetState(now, label)
}

// buildStateVec packs the full line-card and port state vector into one
// uint64: port i occupies bits [5i, 5i+5) as state<<3 | rateIdx+1, line
// card j occupies bits [55+2j, 55+2j+2). Meaningful only when memoOK;
// after construction the vector is maintained incrementally by the
// set* helpers, and this builder serves as the test oracle for them.
func (s *Switch) buildStateVec() uint64 {
	var key uint64
	for _, p := range s.ports {
		key |= (uint64(p.state)<<3 | uint64(p.rateIdx+1)) << (5 * uint(p.idx))
	}
	for _, lc := range s.lineCards {
		key |= uint64(lc.state) << (55 + 2*uint(lc.idx))
	}
	return key
}

// setPortState writes a port power state, keeping the packed vector in
// sync. All p.state writes after construction must go through here.
func (p *Port) setPortState(st power.PortState) {
	p.sw.stateVec ^= (uint64(p.state) ^ uint64(st)) << (5*uint(p.idx) + 3)
	p.state = st
}

// setRateIdx writes a port ALR rate index, keeping the packed vector
// and the link's cached capacity in sync. All p.rateIdx writes after
// construction must go through here.
func (p *Port) setRateIdx(idx int) {
	p.sw.stateVec ^= (uint64(p.rateIdx+1) ^ uint64(idx+1)) << (5 * uint(p.idx))
	p.rateIdx = idx
	if p.link != nil {
		p.link.refreshRate()
	}
}

// setLCState writes a line-card power state, keeping the packed vector
// in sync. All lc.state writes after construction must go through here.
func (lc *LineCard) setLCState(st power.LineCardState) {
	lc.sw.stateVec ^= (uint64(lc.state) ^ uint64(st)) << (55 + 2*uint(lc.idx))
	lc.state = st
}

// activeWatts sums the non-sleeping draw over line cards and ports,
// memoized on the exact state vector. Port LPI churn revisits the same
// few vectors constantly; a memo hit returns the number this very loop
// computed for those inputs before (the profile is immutable after
// construction), so metering stays bit-identical while skipping the
// per-port float walk on the hot path.
func (s *Switch) activeWatts() float64 {
	key := s.stateVec
	if s.memoOK {
		for i := 0; i < s.memoN; i++ {
			if s.memoKey[i] == key {
				return s.memoW[i]
			}
		}
	}
	w := s.prof.ChassisWatts
	for _, lc := range s.lineCards {
		switch lc.state {
		case power.LineCardActive:
			w += s.prof.LineCardActiveW
		case power.LineCardSleep:
			w += s.prof.LineCardSleepW
		}
	}
	for _, p := range s.ports {
		switch p.state {
		case power.PortActive:
			w += s.prof.PortActiveW * s.prof.PortRateScale[p.rateIdx]
		case power.PortLPI:
			w += s.prof.PortLPIW
		}
	}
	if s.memoOK {
		if s.memoN < wattsMemoSlots {
			s.memoKey[s.memoN], s.memoW[s.memoN] = key, w
			s.memoN++
		} else {
			s.memoKey[s.memoNext], s.memoW[s.memoNext] = key, w
			s.memoNext = (s.memoNext + 1) % wattsMemoSlots
		}
	}
	return w
}

// LineCard groups ports; it sleeps as a unit (paper Fig. 3).
type LineCard struct {
	sw    *Switch
	idx   int
	state power.LineCardState
	ports []*Port
}

// State reports the line card's power state.
func (lc *LineCard) State() power.LineCardState { return lc.state }

// Port is one switch port: its state machine is Active <-> LPI (idle
// threshold / traffic) and Off while the line card sleeps. Adaptive link
// rate selects among the profile's rate points.
type Port struct {
	sw   *Switch
	lc   *LineCard
	idx  int
	link *linkState

	state   power.PortState
	users   int
	rateIdx int

	bytesSent  int64 // accumulator for the ALR controller window
	lpiEntries int64
}

// State reports the port's power state.
func (p *Port) State() power.PortState { return p.state }

// RateIdx reports the current adaptive-link-rate index.
func (p *Port) RateIdx() int { return p.rateIdx }

// LPIEntries reports how many times the port entered LPI.
func (p *Port) LPIEntries() int64 { return p.lpiEntries }

// currentRateBps reports the port's ALR-selected rate.
func (p *Port) currentRateBps() float64 {
	if len(p.sw.prof.LinkRatesBps) == 0 {
		return 1e18 // unconstrained
	}
	return p.sw.prof.LinkRatesBps[p.rateIdx]
}

// addUser registers one traffic unit (flow or in-flight packet),
// reports the wake penalty if the port was in LPI. Callers stop the
// link's shared LPI timer once at the link level before touching either
// port (markActive, maybeSend).
func (p *Port) addUser() simtime.Time {
	p.users++
	var penalty simtime.Time
	if p.state == power.PortLPI {
		penalty = p.sw.prof.PortWake.Latency
		p.sw.net.cover.Hit(modelcov.PortLPIWake)
	}
	if p.state != power.PortActive {
		p.setPortState(power.PortActive)
		p.sw.recompute()
	}
	return penalty
}

// removeUser releases one traffic unit; markIdle starts the link's LPI
// countdown when the port drains.
func (p *Port) removeUser() {
	if p.users <= 0 {
		panic("network: port user underflow")
	}
	p.users--
	if p.users == 0 {
		p.sw.maybeSleepArm()
	}
}

// enterLPI moves the idle port into Low Power Idle.
func (p *Port) enterLPI() {
	if p.users > 0 || p.state != power.PortActive {
		return
	}
	p.setPortState(power.PortLPI)
	p.lpiEntries++
	p.sw.net.cover.Hit(modelcov.PortLPIEnter)
	p.sw.recompute()
}
