package network

import "fmt"

// NetModel selects how packet-granularity transfers are simulated.
//
// ModelPacket is the store-and-forward model: every MTU unit is its own
// chain of serialize/propagate/forward events, so per-hop queueing,
// buffer overflows and LPI wake penalties are exact — at a per-packet
// event cost. ModelFluid folds a packet transfer into one max-min fair
// flow through the existing waterfill machinery (one arrival and one
// departure event regardless of size) while still billing the packet
// counters (PacketsSent/Delivered/Dropped) so the conservation laws and
// Stats stay comparable across models. DESIGN.md "Network models"
// documents when the two agree exactly and when only within tolerance.
type NetModel int

// Network models. The zero value is the packet model, so existing
// configurations and scenario files are unchanged.
const (
	ModelPacket NetModel = iota
	ModelFluid
)

// String implements fmt.Stringer.
func (m NetModel) String() string {
	switch m {
	case ModelPacket:
		return "packet"
	case ModelFluid:
		return "fluid"
	}
	return fmt.Sprintf("NetModel(%d)", int(m))
}

// MarshalText implements encoding.TextMarshaler (scenario-file codec).
func (m NetModel) MarshalText() ([]byte, error) {
	switch m {
	case ModelPacket, ModelFluid:
		return []byte(m.String()), nil
	}
	return nil, fmt.Errorf("network: unknown net model %d", int(m))
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (m *NetModel) UnmarshalText(b []byte) error {
	switch string(b) {
	case "packet":
		*m = ModelPacket
	case "fluid":
		*m = ModelFluid
	default:
		return fmt.Errorf("network: unknown net model %q (want packet or fluid)", b)
	}
	return nil
}
