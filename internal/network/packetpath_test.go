package network

import (
	"testing"

	"holdcsim/internal/simtime"
	"holdcsim/internal/topology"
)

// reconcile asserts the packet-accounting laws that must hold once a
// network has drained: delivered + dropped == sent, the per-queue drop
// ledger matches the stats counter, and no transfer is left open.
func reconcile(t *testing.T, n *Network) {
	t.Helper()
	st := n.Stats()
	if st.PacketsDelivered+st.PacketsDropped != st.PacketsSent {
		t.Errorf("delivered %d + dropped %d != sent %d",
			st.PacketsDelivered, st.PacketsDropped, st.PacketsSent)
	}
	if d := n.Drops(); d != st.PacketsDropped {
		t.Errorf("Drops() = %d, stats.PacketsDropped = %d", d, st.PacketsDropped)
	}
	if open := n.OpenPacketTransfers(); open != 0 {
		t.Errorf("%d transfers still open after drain", open)
	}
}

// linkOf returns the link attached to the given host.
func linkOf(t *testing.T, n *Network, host topology.NodeID) *linkState {
	t.Helper()
	for _, l := range n.links {
		if l.a == host || l.b == host {
			return l
		}
	}
	t.Fatalf("no link attached to node %d", host)
	return nil
}

// TestLoopbackTransferFirstClass pins the bugfix for same-node and
// zero-byte transfers: they used to bill BytesDelivered from a bare
// closure without ever counting in openPktTransfers or PacketsSent, so
// an invariant scan between schedule and tick saw delivered bytes with
// no transfer open, and the final counters claimed bytes without
// packets. They are first-class pooled transfers now.
func TestLoopbackTransferFirstClass(t *testing.T) {
	cases := []struct {
		name     string
		src, dst int // host indices
		bytes    int64
	}{
		{"same-node", 0, 0, 500},
		{"zero-byte", 0, 1, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng, n, hosts := starNet(t, 4, nil)
			done := false
			if err := n.TransferPackets(hosts[tc.src], hosts[tc.dst], tc.bytes, func() { done = true }); err != nil {
				t.Fatal(err)
			}
			// Between schedule and the delivery tick the transfer must be
			// visibly open (this is what the old code got wrong).
			if open := n.OpenPacketTransfers(); open != 1 {
				t.Fatalf("open transfers before tick = %d, want 1", open)
			}
			if st := n.Stats(); st.BytesDelivered != 0 || st.PacketsDelivered != 0 {
				t.Fatalf("counters billed before the delivery tick: %+v", st)
			}
			eng.Run()
			if !done {
				t.Fatal("completion callback did not fire")
			}
			st := n.Stats()
			if st.PacketsSent != 1 || st.PacketsDelivered != 1 || st.PacketsDropped != 0 {
				t.Errorf("packet counters = %+v, want one sent and delivered", st)
			}
			if st.BytesDelivered != tc.bytes {
				t.Errorf("BytesDelivered = %d, want %d", st.BytesDelivered, tc.bytes)
			}
			reconcile(t, n)
		})
	}
}

// TestTransferPacketCountCap pins the int64 packet-count computation: a
// multi-TB payload (whose packet count overflows 32-bit int arithmetic)
// must fail loudly at the cap, leaving no state behind.
func TestTransferPacketCountCap(t *testing.T) {
	eng, n, hosts := starNet(t, 4, nil)
	bytes := int64(MaxPacketsPerTransfer+1) * 1500 // nPkts = cap+1
	err := n.TransferPackets(hosts[0], hosts[1], bytes, func() { t.Error("callback fired for rejected transfer") })
	if err == nil {
		t.Fatal("transfer above the packet-count cap accepted")
	}
	if open := n.OpenPacketTransfers(); open != 0 {
		t.Errorf("rejected transfer left %d open", open)
	}
	eng.Run()
	if st := n.Stats(); st != (Stats{}) {
		t.Errorf("rejected transfer touched counters: %+v", st)
	}
}

// TestEgressRingShrinksAfterDrain pins the ring-buffer replacement for
// the old `queue = queue[1:]` slice, which never released its high-water
// backing array: after a congestion burst drains, the queue must be back
// at the steady-state capacity.
func TestEgressRingShrinksAfterDrain(t *testing.T) {
	eng, n, hosts := starNet(t, 4, func(c *Config) {
		c.PortBufferBytes = 1 << 30
	})
	// 40 packets burst into one 12 us/packet link: ~39 queue behind the
	// first, growing the ring well past its steady-state capacity.
	if err := n.TransferPackets(hosts[0], hosts[1], 60_000, nil); err != nil {
		t.Fatal(err)
	}
	l := linkOf(t, n, hosts[0])
	q := l.egress(l.a == hosts[0])
	grew := 0
	eng.After(simtime.Microsecond, func() {
		grew = len(q.buf)
	})
	eng.Run()
	if grew <= minRingCap {
		t.Fatalf("ring never grew under burst (cap %d mid-run); test is vacuous", grew)
	}
	if q.count != 0 || q.queuedBytes != 0 {
		t.Fatalf("queue not drained: count %d, bytes %d", q.count, q.queuedBytes)
	}
	if len(q.buf) != minRingCap {
		t.Errorf("steady-state ring capacity = %d after drain, want %d", len(q.buf), minRingCap)
	}
	reconcile(t, n)
}

// TestPacketTerminalPaths drives one packet (or burst) into each of the
// terminal states — delivered, buffer drop, down-at-enqueue,
// down-at-serialized, down-mid-propagation, and the dropAll sweep — and
// reconciles Drops() against stats.PacketsDropped and transfer
// completion on every path. Timing on the 1 Gb/s star: 12 us
// serialization per packet per hop, 500 ns propagation, 1 us switching.
func TestPacketTerminalPaths(t *testing.T) {
	type tc struct {
		name    string
		bytes   int64
		buffer  int64
		downAt  simtime.Time // < 0: never
		dropped int64        // -1: just require > 0
	}
	cases := []tc{
		{"delivered", 3000, 0, -1, 0},
		{"buffer-drop", 45_000, 4000, -1, -1},
		// Link cut before the start tick: both packets die at enqueue.
		{"down-at-enqueue", 3000, 0, 0, 2},
		// Cut mid-serialization (ser completes at 12 us): the packet is
		// lost when its last bit would go on the wire.
		{"down-at-serialized", 1500, 0, 6 * simtime.Microsecond, 1},
		// Cut between serialized (12 us) and arrival (12.5 us): lost
		// mid-propagation, billed to the egress it left.
		{"down-mid-propagation", 1500, 0, 12250 * simtime.Nanosecond, 1},
		// Three packets: one serializing, two queued. The sweep retracts
		// the queued two at the cut; the in-flight one dies at its next
		// event.
		{"drop-all-sweep", 4500, 0, 5 * simtime.Microsecond, 3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			eng, n, hosts := starNet(t, 4, func(cfg *Config) {
				if c.buffer > 0 {
					cfg.PortBufferBytes = c.buffer
				} else {
					cfg.PortBufferBytes = 1 << 30
				}
			})
			done := false
			if err := n.TransferPackets(hosts[0], hosts[1], c.bytes, func() { done = true }); err != nil {
				t.Fatal(err)
			}
			l := linkOf(t, n, hosts[0])
			if c.downAt >= 0 {
				cut := func() {
					if err := n.SetLinkAdmin(l.id, false); err != nil {
						t.Error(err)
					}
				}
				if c.downAt == 0 {
					cut() // before the start tick: down at enqueue
				} else {
					eng.After(c.downAt, cut)
				}
			}
			eng.Run()
			if !done {
				t.Fatal("completion callback did not fire")
			}
			st := n.Stats()
			switch {
			case c.dropped < 0:
				if st.PacketsDropped == 0 {
					t.Error("expected drops, saw none")
				}
			default:
				if st.PacketsDropped != c.dropped {
					t.Errorf("dropped = %d, want %d", st.PacketsDropped, c.dropped)
				}
			}
			reconcile(t, n)
		})
	}
}

// checkStateVecs asserts every switch's incrementally-maintained packed
// state vector matches a fresh rebuild — the oracle for the wattage
// memo's cache key. A drift here means some state write bypassed the
// set* helpers and the memo could serve stale power values.
func checkStateVecs(t *testing.T, n *Network) {
	t.Helper()
	for node, sw := range n.switches {
		if !sw.memoOK {
			continue
		}
		if got := sw.buildStateVec(); got != sw.stateVec {
			t.Errorf("switch %d: stateVec %#x, rebuild %#x", node, sw.stateVec, got)
		}
	}
}

// TestStateVecTracksTransitions drives ports and switches through every
// transition class — LPI entry/exit, switch sleep and wake, failure and
// revival — verifying the packed state vector after each settles.
func TestStateVecTracksTransitions(t *testing.T) {
	eng, n, hosts := starNet(t, 4, func(c *Config) {
		c.SwitchSleepIdle = 200 * simtime.Microsecond
	})
	sw := n.swList[0] // the star's central switch
	step := func(name string) {
		t.Helper()
		eng.Run()
		checkStateVecs(t, n)
		if t.Failed() {
			t.Fatalf("state vector drift after %s", name)
		}
	}
	if err := n.TransferPackets(hosts[0], hosts[1], 3000, nil); err != nil {
		t.Fatal(err)
	}
	step("transfer (LPI exit/enter)")
	eng.After(n.cfg.SwitchSleepIdle+simtime.Millisecond, func() {})
	step("switch sleep")
	if !sw.Sleeping() {
		t.Fatal("switch did not sleep; sleep transition untested")
	}
	if err := n.TransferPackets(hosts[0], hosts[1], 1500, nil); err != nil {
		t.Fatal(err)
	}
	step("switch wake")
	if err := n.SetSwitchAdmin(sw.Node(), false); err != nil {
		t.Fatal(err)
	}
	step("switch kill")
	if err := n.SetSwitchAdmin(sw.Node(), true); err != nil {
		t.Fatal(err)
	}
	step("switch revive")
}

// TestFluidPacketDifferential runs the same overlapping transfer set
// under the packet and fluid models. Byte and packet counters must be
// identical (the fluid model bills the same ledger); completion time
// agrees only within a factor — serialization pipelining vs max-min
// rate sharing resolve contention differently.
func TestFluidPacketDifferential(t *testing.T) {
	run := func(model NetModel) (Stats, simtime.Time) {
		eng, n, hosts := starNet(t, 8, func(c *Config) {
			c.Model = model
			c.PortBufferBytes = 1 << 30
		})
		var last simtime.Time
		done := func() { last = eng.Now() }
		// Two transfers contending for the link into host 1, one disjoint,
		// plus a loopback (identical in both models).
		for _, tr := range []struct {
			src, dst int
			bytes    int64
		}{{0, 1, 90_000}, {2, 1, 90_000}, {3, 4, 45_000}, {5, 5, 700}} {
			if err := n.TransferPackets(hosts[tr.src], hosts[tr.dst], tr.bytes, done); err != nil {
				t.Fatal(err)
			}
		}
		eng.Run()
		reconcile(t, n)
		return n.Stats(), last
	}
	ps, pEnd := run(ModelPacket)
	fs, fEnd := run(ModelFluid)
	if ps.PacketsSent != fs.PacketsSent ||
		ps.PacketsDelivered != fs.PacketsDelivered ||
		ps.PacketsDropped != fs.PacketsDropped ||
		ps.BytesDelivered != fs.BytesDelivered {
		t.Errorf("counter mismatch:\n packet %+v\n fluid  %+v", ps, fs)
	}
	if ps.PacketsDropped != 0 {
		t.Errorf("unexpected drops %d in a clean differential", ps.PacketsDropped)
	}
	if fEnd <= 0 || pEnd <= 0 {
		t.Fatalf("degenerate completion times: packet %v, fluid %v", pEnd, fEnd)
	}
	if ratio := float64(fEnd) / float64(pEnd); ratio < 0.5 || ratio > 2 {
		t.Errorf("fluid completion %v vs packet %v (ratio %.2f) outside [0.5, 2]", fEnd, pEnd, ratio)
	}
}

// TestFluidTransferFailureAccounting kills the bottleneck link mid-flow
// and checks the fluid model's failure ledger: settled full MTUs count
// delivered, the remainder drops, and Drops() still reconciles even
// though fluid drops never touch an egress queue.
func TestFluidTransferFailureAccounting(t *testing.T) {
	eng, n, hosts := starNet(t, 4, func(c *Config) {
		c.Model = ModelFluid
	})
	done := false
	// 60 packets at 1 Gb/s ≈ 720 us; cut at 240 us ≈ one third through.
	if err := n.TransferPackets(hosts[0], hosts[1], 90_000, func() { done = true }); err != nil {
		t.Fatal(err)
	}
	l := linkOf(t, n, hosts[0])
	eng.After(240*simtime.Microsecond, func() {
		if err := n.SetLinkAdmin(l.id, false); err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	if !done {
		t.Fatal("completion callback did not fire on failure")
	}
	st := n.Stats()
	if st.PacketsSent != 60 {
		t.Fatalf("sent = %d, want 60", st.PacketsSent)
	}
	if st.PacketsDropped == 0 || st.PacketsDelivered == 0 {
		t.Errorf("expected partial delivery, got delivered %d dropped %d",
			st.PacketsDelivered, st.PacketsDropped)
	}
	if st.FlowsFailed != 1 {
		t.Errorf("FlowsFailed = %d, want 1", st.FlowsFailed)
	}
	reconcile(t, n)
}
