package network

import (
	"fmt"

	"holdcsim/internal/engine"
	"holdcsim/internal/power"
	"holdcsim/internal/topology"
)

// Admin-state fault model (link flap, switch death).
//
// A link is down when its administrative flag is cleared (a flap) or
// when either of its endpoint switches is dead; the two causes stack,
// so a flapped link under a dead switch stays down until both clear.
// Going down drops every packet queued or in flight on the link and
// kills every fluid flow crossing it — completion callbacks still fire
// (exactly like buffer-overflow drops) so DAG progress never deadlocks
// on a failure, and the loss is visible in Stats (PacketsDropped,
// FlowsFailed) and in the per-link drop counters the invariant checker
// reconciles.

// isDown reports whether the link currently carries no traffic.
func (l *linkState) isDown() bool { return l.adminDown || l.deadEnds > 0 }

// NumLinks reports the number of links (fault targeting and tests).
func (n *Network) NumLinks() int { return len(n.links) }

// LinkDown reports whether link id is currently down (admin flap or a
// dead endpoint switch).
func (n *Network) LinkDown(id int) bool {
	if id < 0 || id >= len(n.links) {
		return false
	}
	return n.links[id].isDown()
}

// LinkAdminDown reports whether link id is administratively flapped
// down (excluding switch-death effects).
func (n *Network) LinkAdminDown(id int) bool {
	if id < 0 || id >= len(n.links) {
		return false
	}
	return n.links[id].adminDown
}

// SetLinkAdmin flaps one link down or back up. Cutting a link drops its
// queued and in-flight packets and kills the flows crossing it;
// restoring it is instantaneous (subsequent transfers route over it
// again). Setting the current state is a no-op.
func (n *Network) SetLinkAdmin(id int, up bool) error {
	if id < 0 || id >= len(n.links) {
		return fmt.Errorf("network: link %d out of range [0, %d)", id, len(n.links))
	}
	l := n.links[id]
	if up {
		l.adminDown = false
		return nil
	}
	if l.adminDown {
		return nil
	}
	wasDown := l.isDown()
	l.adminDown = true
	if !wasDown {
		n.failLinkTraffic(l)
	}
	return nil
}

// SetSwitchAdmin kills or revives the switch at a node. Death zeroes
// the switch's draw (residency bills to "Down"), takes every incident
// link down, and voids any in-flight sleep/wake transition; revival
// restores line cards and connected ports to Active. Setting the
// current state is a no-op.
func (n *Network) SetSwitchAdmin(node topology.NodeID, up bool) error {
	sw := n.switches[node]
	if sw == nil {
		return fmt.Errorf("network: node %d is not a switch", node)
	}
	if up {
		if !sw.failed {
			return nil
		}
		sw.failed = false
		for _, lc := range sw.lineCards {
			lc.setLCState(power.LineCardActive)
		}
		for _, p := range sw.ports {
			if p.link != nil {
				p.setPortState(power.PortActive)
				p.link.armLPI()
			} else {
				p.setPortState(power.PortOff)
			}
		}
		sw.recompute()
		sw.maybeSleepArm()
		for _, p := range sw.ports {
			if p.link != nil {
				p.link.deadEnds--
			}
		}
		return nil
	}
	if sw.failed {
		return nil
	}
	sw.failed = true
	sw.sleeping = false
	sw.waking = false
	n.eng.Cancel(sw.wakeEv)
	sw.wakeEv = engine.Handle{}
	sw.sleepTmr.Stop()
	for _, lc := range sw.lineCards {
		lc.setLCState(power.LineCardOff)
	}
	for _, p := range sw.ports {
		// The shared link LPI timer is left running for the partner
		// port; a fire against this port is a no-op once it is Off.
		p.setPortState(power.PortOff)
	}
	sw.recompute()
	for _, p := range sw.ports {
		if p.link == nil {
			continue
		}
		wasDown := p.link.isDown()
		p.link.deadEnds++
		if !wasDown {
			n.failLinkTraffic(p.link)
		}
	}
	return nil
}

// failLinkTraffic retracts everything the link is carrying: queued
// packets in both directions drop at their egress queues, and every
// flow crossing the link fails (its completion fires immediately).
// Packets already serializing or propagating drop when their next event
// fires and observes the down link.
func (n *Network) failLinkTraffic(l *linkState) {
	// Snapshot: failFlow mutates n.flows, and completion callbacks can
	// start new flows on other links.
	var doomed []*Flow
	for _, f := range n.flows {
		for _, fl := range f.links {
			if fl == l {
				doomed = append(doomed, f)
				break
			}
		}
	}
	for _, f := range doomed {
		n.failFlow(f)
	}
	l.egressAB.dropAll(n)
	l.egressBA.dropAll(n)
}
