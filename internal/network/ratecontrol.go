package network

import (
	"holdcsim/internal/simtime"
)

// RateAdaptationConfig tunes the adaptive link rate controller
// (Gunaratne et al. [25], paper Sec. III-B): each window, every switch
// port's utilization is compared against thresholds and its rate steps
// down (to save power, PortRateScale) or up (to serve demand).
type RateAdaptationConfig struct {
	Window   simtime.Time
	LowUtil  float64 // below this, step the rate down
	HighUtil float64 // above this, step the rate up
}

// DefaultRateAdaptation returns the standard controller setting: 10 ms
// windows, step down below 10% utilization, step up above 60%.
func DefaultRateAdaptation() RateAdaptationConfig {
	return RateAdaptationConfig{
		Window:   10 * simtime.Millisecond,
		LowUtil:  0.10,
		HighUtil: 0.60,
	}
}

// EnableRateAdaptation starts the periodic adaptive-link-rate controller.
// Rate changes re-run the flow water-filling so fluid flows see the new
// capacities immediately; in-flight packet serializations keep the rate
// they started with.
func (n *Network) EnableRateAdaptation(cfg RateAdaptationConfig) {
	if cfg.Window <= 0 {
		cfg = DefaultRateAdaptation()
	}
	var tick func()
	tick = func() {
		changed := false
		for _, sw := range n.swList {
			rates := sw.prof.LinkRatesBps
			if len(rates) < 2 {
				continue
			}
			for _, p := range sw.ports {
				if p.link == nil {
					continue
				}
				cap := p.currentRateBps() / 8 * cfg.Window.Seconds()
				util := float64(p.bytesSent) / cap
				p.bytesSent = 0
				// A port with active users must not step down mid-burst.
				switch {
				case util > cfg.HighUtil && p.rateIdx < len(rates)-1:
					p.setRateIdx(p.rateIdx + 1)
					changed = true
				case util < cfg.LowUtil && p.users == 0 && p.rateIdx > 0:
					p.setRateIdx(p.rateIdx - 1)
					changed = true
				}
			}
			if changed {
				sw.recompute()
			}
		}
		if changed && len(n.flows) > 0 {
			n.recomputeFlowRates()
		}
		n.eng.After(cfg.Window, tick)
	}
	n.eng.After(cfg.Window, tick)
}
