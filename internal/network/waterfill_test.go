package network

import (
	"testing"
	"testing/quick"

	"holdcsim/internal/engine"
	"holdcsim/internal/power"
	"holdcsim/internal/topology"
)

// TestWaterFillInvariants checks max-min fairness invariants on random
// flow sets over a fat-tree:
//  1. every active flow has a strictly positive rate;
//  2. no directed link's assigned rates exceed its capacity;
//  3. every flow is bottlenecked: on at least one of its links the
//     remaining capacity is (near) zero — otherwise its rate could grow,
//     contradicting max-min optimality.
func TestWaterFillInvariants(t *testing.T) {
	g, err := topology.FatTree{K: 4, RateBps: 1e9}.Build()
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()

	f := func(seed uint64, nFlows uint8) bool {
		eng := engine.New()
		cfg := DefaultConfig(power.DataCenter10G(8))
		cfg.ECMP = true
		n, err := New(eng, g, cfg)
		if err != nil {
			return false
		}
		x := seed
		count := int(nFlows%20) + 2
		for i := 0; i < count; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			src := hosts[x%uint64(len(hosts))]
			x = x*6364136223846793005 + 1442695040888963407
			dst := hosts[x%uint64(len(hosts))]
			if src == dst {
				continue
			}
			// Large flows so none completes during the check window.
			if err := n.TransferFlow(src, dst, 1<<40, nil); err != nil {
				return false
			}
		}
		eng.RunUntil(engineTick)
		if len(n.flows) == 0 {
			return true
		}
		// (1) positive rates.
		for _, fl := range n.flows {
			if fl.rate <= 0 {
				return false
			}
		}
		// (2) capacity respected per directed link.
		type dirKey struct {
			link int
			ab   bool
		}
		usage := make(map[dirKey]float64)
		for _, fl := range n.flows {
			for i, l := range fl.links {
				usage[dirKey{l.id, fl.dirAB[i]}] += fl.rate
			}
		}
		for k, used := range usage {
			cap := n.links[k.link].bytesPerSec()
			if used > cap*(1+1e-9) {
				return false
			}
		}
		// (3) every flow hits a saturated link.
		for _, fl := range n.flows {
			bottlenecked := false
			for i, l := range fl.links {
				k := dirKey{l.id, fl.dirAB[i]}
				if usage[k] >= l.bytesPerSec()*(1-1e-9) {
					bottlenecked = true
					break
				}
			}
			if !bottlenecked {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

const engineTick = 1000 // 1 µs: enough to settle the initial rate assignment

func TestFlowThroughHostTransit(t *testing.T) {
	// Flows across a BCube path that relays through hosts must work and
	// respect link sharing on the relay's links.
	g, err := topology.BCube{N: 2, K: 1, RateBps: 1e9}.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New()
	n, err := New(eng, g, DefaultConfig(power.DataCenter10G(4)))
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	// Host 0 (00) to host 3 (11): digits differ in both positions, so
	// the path relays through an intermediate host.
	done := false
	if err := n.TransferFlow(hosts[0], hosts[3], 125_000_000, func() { done = true }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !done {
		t.Fatal("host-transit flow did not complete")
	}
	st := n.Stats()
	if st.FlowsCompleted != 1 || st.BytesDelivered != 125_000_000 {
		t.Errorf("stats = %+v", st)
	}
}
