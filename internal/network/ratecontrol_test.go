package network

import (
	"testing"

	"holdcsim/internal/engine"
	"holdcsim/internal/power"
	"holdcsim/internal/simtime"
	"holdcsim/internal/topology"
)

func TestRateAdaptationStepsUpUnderLoad(t *testing.T) {
	g, err := topology.Star{Hosts: 2, RateBps: 1e9}.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New()
	cfg := DefaultConfig(power.Cisco2960_24())
	cfg.LPIIdle = -1
	cfg.PortBufferBytes = 1 << 30
	n, err := New(eng, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.EnableRateAdaptation(RateAdaptationConfig{
		Window:   10 * simtime.Millisecond,
		LowUtil:  0.10,
		HighUtil: 0.60,
	})
	sw := n.Switches()[0]
	hosts := g.Hosts()

	// Phase 1: idle. All connected ports step down to 100 Mb/s.
	eng.RunUntil(50 * simtime.Millisecond)
	for _, p := range sw.ports {
		if p.link != nil && p.RateIdx() != 0 {
			t.Fatalf("idle port did not step down: rateIdx=%d", p.RateIdx())
		}
	}

	// Phase 2: sustained heavy traffic. At 100 Mb/s the link saturates
	// (utilization ~1 > HighUtil), so the controller steps back up.
	stop := false
	var pump func()
	pump = func() {
		if stop {
			return
		}
		n.TransferPackets(hosts[0], hosts[1], 150_000, nil) // 100 pkts
		eng.After(5*simtime.Millisecond, pump)
	}
	eng.Schedule(eng.Now(), pump)
	eng.RunUntil(eng.Now() + 200*simtime.Millisecond)
	stop = true
	stepped := false
	for _, p := range sw.ports {
		if p.link != nil && p.RateIdx() == len(power.Cisco2960_24().LinkRatesBps)-1 {
			stepped = true
		}
	}
	if !stepped {
		t.Error("no port stepped back up under sustained load")
	}
	eng.RunUntil(eng.Now() + simtime.Second)
}

func TestFlowRatesFollowALRChanges(t *testing.T) {
	// A long flow over a link whose port steps down mid-flight must
	// finish later than the full-rate estimate.
	g, err := topology.Star{Hosts: 2, RateBps: 1e9}.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New()
	cfg := DefaultConfig(power.Cisco2960_24())
	cfg.LPIIdle = -1
	n, err := New(eng, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	sw := n.Switches()[0]

	var doneAt simtime.Time
	// 125 MB at 1 Gb/s would take 1 s.
	n.TransferFlow(hosts[0], hosts[1], 125_000_000, func() { doneAt = eng.Now() })
	// Force both path ports down to 100 Mb/s at t=100ms (simulating an
	// ALR decision); the re-rate must slow the flow by ~10x.
	eng.Schedule(100*simtime.Millisecond, func() {
		for _, p := range sw.ports {
			if p.link != nil {
				p.setRateIdx(0)
			}
		}
		n.recomputeFlowRates()
	})
	eng.Run()
	// 12.5 MB done in the first 100ms; remaining 112.5 MB at 12.5 MB/s
	// = 9s more.
	want := 100*simtime.Millisecond + 9*simtime.Second
	diff := doneAt - want
	if diff < 0 {
		diff = -diff
	}
	if diff > 10*simtime.Millisecond {
		t.Errorf("flow finished at %v, want ~%v", doneAt, want)
	}
}
