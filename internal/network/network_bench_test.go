package network

import (
	"testing"

	"holdcsim/internal/engine"
	"holdcsim/internal/power"
	"holdcsim/internal/simtime"
	"holdcsim/internal/topology"
)

func BenchmarkWaterFill(b *testing.B) {
	g, err := topology.FatTree{K: 4, RateBps: 10e9}.Build()
	if err != nil {
		b.Fatal(err)
	}
	eng := engine.New()
	cfg := DefaultConfig(power.DataCenter10G(8))
	cfg.ECMP = true
	n, err := New(eng, g, cfg)
	if err != nil {
		b.Fatal(err)
	}
	hosts := g.Hosts()
	// 64 long-lived crossing flows.
	for i := 0; i < 64; i++ {
		if err := n.TransferFlow(hosts[i%16], hosts[(i*7+3)%16], 1<<40, nil); err != nil && hosts[i%16] != hosts[(i*7+3)%16] {
			b.Fatal(err)
		}
	}
	eng.RunUntil(simtime.Microsecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.recomputeFlowRates()
	}
}

func BenchmarkPacketForwarding(b *testing.B) {
	g, err := topology.FatTree{K: 4, RateBps: 10e9}.Build()
	if err != nil {
		b.Fatal(err)
	}
	eng := engine.New()
	cfg := DefaultConfig(power.DataCenter10G(8))
	cfg.PortBufferBytes = 1 << 30
	n, err := New(eng, g, cfg)
	if err != nil {
		b.Fatal(err)
	}
	hosts := g.Hosts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One MTU packet across the fabric (6 hops worst case).
		if err := n.TransferPackets(hosts[0], hosts[15], 1500, nil); err != nil {
			b.Fatal(err)
		}
		eng.Run()
	}
}
