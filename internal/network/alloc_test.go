//go:build !race

package network

import (
	"testing"

	"holdcsim/internal/engine"
	"holdcsim/internal/power"
	"holdcsim/internal/topology"
)

// TestPacketForwardingZeroAlloc is the alloc-regression gate for the
// packet fast path: after warmup (pools filled, routes cached, engine
// heap at capacity), forwarding an MTU across the fat-tree must not
// allocate at all. Excluded from -race builds, whose instrumentation
// allocates on its own. BenchmarkPacketForwarding reports the same
// number; this test makes CI fail on regression instead of just
// recording it.
func TestPacketForwardingZeroAlloc(t *testing.T) {
	g, err := topology.FatTree{K: 4, RateBps: 10e9}.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New()
	cfg := DefaultConfig(power.DataCenter10G(8))
	cfg.PortBufferBytes = 1 << 30
	n, err := New(eng, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	op := func() {
		if err := n.TransferPackets(hosts[0], hosts[15], 1500, nil); err != nil {
			t.Fatal(err)
		}
		eng.Run()
	}
	for i := 0; i < 200; i++ {
		op() // warm the packet/transfer pools, route cache and event heap
	}
	if avg := testing.AllocsPerRun(200, op); avg != 0 {
		t.Fatalf("packet forwarding allocates %.2f allocs/op, want 0", avg)
	}
}
