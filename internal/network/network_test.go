package network

import (
	"math"
	"testing"
	"testing/quick"

	"holdcsim/internal/engine"
	"holdcsim/internal/power"
	"holdcsim/internal/simtime"
	"holdcsim/internal/topology"
)

func starNet(t *testing.T, hosts int, mutate func(*Config)) (*engine.Engine, *Network, []topology.NodeID) {
	t.Helper()
	g, err := topology.Star{Hosts: hosts, RateBps: 1e9}.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New()
	cfg := DefaultConfig(power.Cisco2960_24())
	if mutate != nil {
		mutate(&cfg)
	}
	n, err := New(eng, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, n, g.Hosts()
}

func TestSingleFlowTiming(t *testing.T) {
	eng, n, hosts := starNet(t, 4, nil)
	var doneAt simtime.Time
	// 125 MB over a 1 Gb/s path: exactly 1 second.
	err := n.TransferFlow(hosts[0], hosts[1], 125_000_000, func() { doneAt = eng.Now() })
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if math.Abs((doneAt - simtime.Second).Seconds()) > 1e-6 {
		t.Errorf("flow finished at %v, want ~1s", doneAt)
	}
	st := n.Stats()
	if st.FlowsCompleted != 1 || st.BytesDelivered != 125_000_000 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTwoFlowsShareLink(t *testing.T) {
	eng, n, hosts := starNet(t, 4, nil)
	var t1, t2 simtime.Time
	// Both flows leave host0: they share host0's uplink at 62.5 MB/s each.
	n.TransferFlow(hosts[0], hosts[1], 62_500_000, func() { t1 = eng.Now() })
	n.TransferFlow(hosts[0], hosts[2], 62_500_000, func() { t2 = eng.Now() })
	eng.Run()
	// Equal halves of 125 MB/s: both complete at ~1s.
	if math.Abs((t1-simtime.Second).Seconds()) > 1e-6 || math.Abs((t2-simtime.Second).Seconds()) > 1e-6 {
		t.Errorf("flows finished at %v, %v, want ~1s both", t1, t2)
	}
}

func TestFlowRateRecomputedOnDeparture(t *testing.T) {
	eng, n, hosts := starNet(t, 4, nil)
	var tShort, tLong simtime.Time
	// Short flow shares the first half second; long flow then speeds up.
	n.TransferFlow(hosts[0], hosts[1], 31_250_000, func() { tShort = eng.Now() }) // 1/4 of 125MB
	n.TransferFlow(hosts[0], hosts[2], 93_750_000, func() { tLong = eng.Now() })  // 3/4
	eng.Run()
	// Shared at 62.5 MB/s: short done at 0.5s. Long has 62.5MB left at
	// 0.5s, then gets full 125 MB/s: +0.5s => 1.0s.
	if math.Abs((tShort - 500*simtime.Millisecond).Seconds()) > 1e-6 {
		t.Errorf("short flow at %v, want ~0.5s", tShort)
	}
	if math.Abs((tLong - simtime.Second).Seconds()) > 1e-6 {
		t.Errorf("long flow at %v, want ~1s", tLong)
	}
}

func TestDisjointFlowsIndependent(t *testing.T) {
	eng, n, hosts := starNet(t, 4, nil)
	var t1, t2 simtime.Time
	n.TransferFlow(hosts[0], hosts[1], 125_000_000, func() { t1 = eng.Now() })
	n.TransferFlow(hosts[2], hosts[3], 125_000_000, func() { t2 = eng.Now() })
	eng.Run()
	// Different host pairs: no shared link in a star (4 distinct links).
	if math.Abs((t1-simtime.Second).Seconds()) > 1e-6 || math.Abs((t2-simtime.Second).Seconds()) > 1e-6 {
		t.Errorf("flows finished at %v, %v, want ~1s both", t1, t2)
	}
}

func TestMaxMinFairnessDumbbell(t *testing.T) {
	// Custom graph: h0--s0--s1--h1, plus h2--s0 and h3--s1. The s0-s1
	// link is the bottleneck shared by two flows; a third flow on a
	// disjoint path keeps full rate.
	g := topology.NewGraph(false)
	h0 := g.AddNode(topology.Host, "h0")
	h1 := g.AddNode(topology.Host, "h1")
	h2 := g.AddNode(topology.Host, "h2")
	h3 := g.AddNode(topology.Host, "h3")
	s0 := g.AddNode(topology.Switch, "s0")
	s1 := g.AddNode(topology.Switch, "s1")
	for _, pair := range [][2]topology.NodeID{{h0, s0}, {h2, s0}, {h1, s1}, {h3, s1}} {
		if _, err := g.AddLink(pair[0], pair[1], 1e9); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.AddLink(s0, s1, 1e9); err != nil {
		t.Fatal(err)
	}
	eng := engine.New()
	n, err := New(eng, g, DefaultConfig(power.Cisco2960_24()))
	if err != nil {
		t.Fatal(err)
	}
	var tA, tB simtime.Time
	// Two flows cross the bottleneck: 62.5 MB each at 62.5 MB/s = 1s.
	n.TransferFlow(h0, h1, 62_500_000, func() { tA = eng.Now() })
	n.TransferFlow(h2, h3, 62_500_000, func() { tB = eng.Now() })
	eng.Run()
	if math.Abs((tA-simtime.Second).Seconds()) > 1e-6 || math.Abs((tB-simtime.Second).Seconds()) > 1e-6 {
		t.Errorf("bottleneck flows at %v, %v, want ~1s", tA, tB)
	}
}

func TestSameNodeTransferCompletes(t *testing.T) {
	eng, n, hosts := starNet(t, 2, nil)
	flowDone, pktDone := false, false
	n.TransferFlow(hosts[0], hosts[0], 1000, func() { flowDone = true })
	n.TransferPackets(hosts[1], hosts[1], 1000, func() { pktDone = true })
	eng.Run()
	if !flowDone || !pktDone {
		t.Error("same-node transfers did not complete")
	}
}

func TestNegativeSizeRejected(t *testing.T) {
	_, n, hosts := starNet(t, 2, nil)
	if err := n.TransferFlow(hosts[0], hosts[1], -1, nil); err == nil {
		t.Error("negative flow accepted")
	}
	if err := n.TransferPackets(hosts[0], hosts[1], -1, nil); err == nil {
		t.Error("negative packet transfer accepted")
	}
}

func TestPacketDelivery(t *testing.T) {
	eng, n, hosts := starNet(t, 4, nil)
	var doneAt simtime.Time
	// 3000 bytes = 2 packets of 1500.
	n.TransferPackets(hosts[0], hosts[1], 3000, func() { doneAt = eng.Now() })
	eng.Run()
	st := n.Stats()
	if st.PacketsDelivered != 2 || st.PacketsDropped != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.BytesDelivered != 3000 {
		t.Errorf("bytes = %d", st.BytesDelivered)
	}
	// Timing: ser = 12us/packet/hop. Pipeline over 2 hops: second packet
	// finishes hop1 at 24us, hop2 at 36us, plus 2 props (0.5us) and a
	// switch latency (1us) => 38us.
	want := 38 * simtime.Microsecond
	if doneAt != want {
		t.Errorf("delivered at %v, want %v", doneAt, want)
	}
}

func TestPacketDrops(t *testing.T) {
	eng, n, hosts := starNet(t, 4, func(c *Config) {
		c.PortBufferBytes = 4000 // fits ~2 queued packets
	})
	done := false
	// 30 packets burst into one 1G link: most queue, buffer drops the rest.
	n.TransferPackets(hosts[0], hosts[1], 45_000, func() { done = true })
	eng.Run()
	st := n.Stats()
	if st.PacketsDropped == 0 {
		t.Error("expected drops with tiny buffer")
	}
	if st.PacketsDelivered+st.PacketsDropped != 30 {
		t.Errorf("delivered %d + dropped %d != 30", st.PacketsDelivered, st.PacketsDropped)
	}
	if !done {
		t.Error("transfer did not complete despite drops")
	}
	if n.Drops() != st.PacketsDropped {
		t.Errorf("Drops() = %d, stats = %d", n.Drops(), st.PacketsDropped)
	}
}

func TestLPITransitions(t *testing.T) {
	eng, n, hosts := starNet(t, 24, nil)
	sw := n.Switches()[0]
	// All ports active at t=0, fall into LPI after 50us idle.
	eng.RunUntil(simtime.Millisecond)
	for i, st := range sw.PortStates() {
		if st != power.PortLPI {
			t.Fatalf("port %d = %v, want LPI", i, st)
		}
	}
	// Idle draw: 14.7 base + 24 ports * 0.03 LPI.
	wantIdle := 14.7 + 24*0.03
	if got := n.NetworkPowerW(); math.Abs(got-wantIdle) > 1e-9 {
		t.Errorf("LPI power = %v, want %v", got, wantIdle)
	}
	// Traffic wakes the two ports on the path. By +25us the packet has
	// crossed hop 1 (5us LPI wake + 12us serialization + propagation +
	// switching) and is serializing on hop 2, so both ports are active.
	n.TransferPackets(hosts[0], hosts[1], 1500, nil)
	eng.RunUntil(simtime.Millisecond + 25*simtime.Microsecond)
	if sw.ActivePorts() != 2 {
		t.Errorf("active ports = %d, want 2", sw.ActivePorts())
	}
	// After the transfer and LPI timeout they fall back.
	eng.RunUntil(2 * simtime.Second)
	if sw.ActivePorts() != 0 {
		t.Errorf("active ports after idle = %d", sw.ActivePorts())
	}
	if p := sw.ports[0]; p.LPIEntries() < 2 {
		t.Errorf("LPIEntries = %d, want >= 2", p.LPIEntries())
	}
}

func TestAllPortsActivePower(t *testing.T) {
	eng, n, hosts := starNet(t, 24, func(c *Config) {
		c.LPIIdle = -1 // LPI disabled: ports stay active
	})
	_ = hosts
	eng.RunUntil(simtime.Second)
	want := 14.7 + 24*0.23 // paper's base + per-port figures
	if got := n.NetworkPowerW(); math.Abs(got-want) > 1e-9 {
		t.Errorf("all-active power = %v, want %v", got, want)
	}
}

func TestSwitchSleepAndWake(t *testing.T) {
	eng, n, hosts := starNet(t, 4, func(c *Config) {
		c.SwitchSleepIdle = simtime.Millisecond
	})
	sw := n.Switches()[0]
	eng.RunUntil(10 * simtime.Millisecond)
	if !sw.Sleeping() {
		t.Fatal("switch did not sleep")
	}
	// Sleep draw: chassis + line card sleep.
	want := 12.7 + 0.4
	if got := sw.PowerW(); math.Abs(got-want) > 1e-9 {
		t.Errorf("sleep power = %v, want %v", got, want)
	}
	if n.SleepingSwitchesOnPath(hosts[0], hosts[1]) != 1 {
		t.Error("SleepingSwitchesOnPath != 1")
	}
	// A flow wakes it; completion time includes the line-card wake (2ms).
	var doneAt simtime.Time
	start := eng.Now()
	n.TransferFlow(hosts[0], hosts[1], 12_500_000, func() { doneAt = eng.Now() }) // 0.1s at 1G
	eng.RunUntil(start + 50*simtime.Millisecond)                                  // mid-flow
	if sw.Sleeping() {
		t.Error("switch still sleeping during flow")
	}
	if n.SleepingSwitchesOnPath(hosts[0], hosts[1]) != 0 {
		t.Error("awake switch still counted as sleeping")
	}
	eng.RunUntil(start + simtime.Second)
	wantDone := start + 2*simtime.Millisecond + 100*simtime.Millisecond
	if math.Abs((doneAt - wantDone).Seconds()) > 1e-6 {
		t.Errorf("flow done at %v, want %v", doneAt, wantDone)
	}
	if sw.WakeCount() != 1 {
		t.Errorf("WakeCount = %d", sw.WakeCount())
	}
	// Once idle again, the switch re-enters sleep.
	if !sw.Sleeping() {
		t.Error("switch did not re-sleep after the flow drained")
	}
	// Residency must show all three states.
	res := sw.Residency()
	end := eng.Now()
	for _, state := range []string{SwitchStateActive, SwitchStateWake, SwitchStateSleep} {
		if res.DurationTo(state, end) <= 0 {
			t.Errorf("no %s residency", state)
		}
	}
}

func TestECMPSpreadsFlows(t *testing.T) {
	g, err := topology.FatTree{K: 4, RateBps: 1e9}.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New()
	cfg := DefaultConfig(power.DataCenter10G(8))
	cfg.ECMP = true
	n, err := New(eng, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	// Many concurrent cross-pod flows: with ECMP they use several cores,
	// so aggregate completion is faster than single-path serialization.
	const flows = 8
	done := 0
	for i := 0; i < flows; i++ {
		n.TransferFlow(hosts[0], hosts[12+i%4], 12_500_000, func() { done++ })
	}
	eng.Run()
	if done != flows {
		t.Errorf("completions = %d", done)
	}
}

func TestRateAdaptationStepsDown(t *testing.T) {
	eng, n, _ := starNet(t, 4, func(c *Config) {
		c.LPIIdle = -1 // isolate ALR from LPI
	})
	n.EnableRateAdaptation(RateAdaptationConfig{
		Window:   10 * simtime.Millisecond,
		LowUtil:  0.10,
		HighUtil: 0.60,
	})
	sw := n.Switches()[0]
	full := 14.7 + 4*0.23 // 4 connected ports; the rest are admin-down
	if got := n.NetworkPowerW(); math.Abs(got-full) > 1e-9 {
		t.Fatalf("initial power = %v, want %v", got, full)
	}
	eng.RunUntil(50 * simtime.Millisecond)
	// Idle connected ports should step to the 100 Mb/s point (scale 0.45).
	for i, p := range sw.ports {
		if p.link == nil {
			continue
		}
		if p.RateIdx() != 0 {
			t.Errorf("port %d rateIdx = %d, want 0", i, p.RateIdx())
		}
	}
	want := 14.7 + 4*0.23*0.45
	if got := n.NetworkPowerW(); math.Abs(got-want) > 1e-9 {
		t.Errorf("stepped-down power = %v, want %v", got, want)
	}
}

func TestProfilePortShortageRejected(t *testing.T) {
	g, err := topology.Star{Hosts: 30, RateBps: 1e9}.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New()
	// Cisco profile has 24 ports; a 30-host star needs 30.
	if _, err := New(eng, g, DefaultConfig(power.Cisco2960_24())); err == nil {
		t.Error("port shortage accepted")
	}
}

func TestServerOnlyTopologyNoSwitchPower(t *testing.T) {
	g, err := topology.CamCube{X: 2, Y: 2, Z: 2, RateBps: 1e9}.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New()
	n, err := New(eng, g, DefaultConfig(power.Cisco2960_24()))
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Switches()) != 0 {
		t.Errorf("switches = %d", len(n.Switches()))
	}
	if n.NetworkPowerW() != 0 {
		t.Errorf("power = %v", n.NetworkPowerW())
	}
	// Host-relayed packet transfer still works.
	hosts := g.Hosts()
	done := false
	n.TransferPackets(hosts[0], hosts[7], 3000, func() { done = true })
	eng.Run()
	if !done {
		t.Error("CamCube transfer did not complete")
	}
}

// Property: for any batch of flows between random star hosts, every flow
// completes and bytes are conserved.
func TestFlowConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := topology.Star{Hosts: 8, RateBps: 1e9}.Build()
		if err != nil {
			return false
		}
		eng := engine.New()
		n, err := New(eng, g, DefaultConfig(power.Cisco2960_24()))
		if err != nil {
			return false
		}
		hosts := g.Hosts()
		x := seed
		var total int64
		completed := 0
		launched := 0
		for i := 0; i < 15; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			src := hosts[x%8]
			x = x*6364136223846793005 + 1442695040888963407
			dst := hosts[x%8]
			if src == dst {
				continue
			}
			size := int64(1000 + x%1_000_000)
			total += size
			launched++
			n.TransferFlow(src, dst, size, func() { completed++ })
		}
		eng.Run()
		st := n.Stats()
		return completed == launched && st.BytesDelivered == total && n.ActiveFlows() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: packet transfers deliver ceil(bytes/MTU) packets when
// buffers are ample.
func TestPacketCountProperty(t *testing.T) {
	f := func(sz uint32) bool {
		bytes := int64(sz%200_000) + 1
		g, err := topology.Star{Hosts: 2, RateBps: 1e9}.Build()
		if err != nil {
			return false
		}
		eng := engine.New()
		cfg := DefaultConfig(power.Cisco2960_24())
		cfg.PortBufferBytes = 1 << 30
		n, err := New(eng, g, cfg)
		if err != nil {
			return false
		}
		hosts := g.Hosts()
		done := false
		n.TransferPackets(hosts[0], hosts[1], bytes, func() { done = true })
		eng.Run()
		want := (bytes + 1499) / 1500
		st := n.Stats()
		return done && st.PacketsDelivered == want && st.BytesDelivered == bytes && st.PacketsDropped == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
