// Package validate implements the reference models used to reproduce the
// paper's validation experiments (Sec. V).
//
// The paper validates HolDCSim against a physical 10-core Xeon server
// (RAPL/IPMI, Fig. 12) and a physical Cisco WS-C2960-24-S switch (power
// logger, Figs. 13-14). Without that hardware, this package provides
// independent "measured" power signals: fine-grained reference models
// driven by the same workload, plus the measurement artifacts the paper
// calls out — OS background activity on the server ("apache management
// thread and other OS routines") and slow management-CPU drift segments
// on the switch (Fig. 14b shows the physical switch sitting slightly
// above the simulation for stretches). Comparing the simulator's sampled
// power against these references exercises exactly the code paths the
// paper's validation exercises and yields the same error metrics (mean
// absolute difference and its standard deviation).
package validate

import (
	"holdcsim/internal/power"
	"holdcsim/internal/rng"
	"holdcsim/internal/trace"
)

// ReferenceServerConfig tunes the "physical server" power signal.
type ReferenceServerConfig struct {
	Profile *power.ServerProfile
	// ServiceSec is the mean per-request CPU time.
	ServiceSec float64
	// SampleSec is the measurement period (1 s in the paper).
	SampleSec float64
	// NoiseW is the stddev of measurement noise per sample.
	NoiseW float64
	// OSBaseW is the average extra draw from OS routines and management
	// threads (the residual the paper attributes its 0.22 W error to).
	OSBaseW float64
	// OSBurstProb is the per-sample probability of an OS activity burst.
	OSBurstProb float64
	// OSBurstW is the extra draw during such a burst.
	OSBurstW float64
}

// DefaultReferenceServer mirrors the paper's validation platform. The
// noise terms are calibrated to the error budget the paper reports
// (0.22 W mean difference attributed to "apache management thread and
// other OS routines", ~1.5 W standard deviation on the diffs).
func DefaultReferenceServer() ReferenceServerConfig {
	return ReferenceServerConfig{
		Profile:     power.XeonE5_2680(),
		ServiceSec:  0.008,
		SampleSec:   1.0,
		NoiseW:      0.22,
		OSBaseW:     0.18,
		OSBurstProb: 0.03,
		OSBurstW:    1.4,
	}
}

// ReferenceServerPower produces the per-sample "measured" CPU-package
// power for a server handling the given arrival trace. The model is an
// independent implementation (utilization-based, not event-driven): each
// 1 s window's utilization is the offered CPU time in that window,
// clipped at the core count; busy cores draw active power, idle cores
// draw the deep-idle mix the hardware's own governor would choose.
func ReferenceServerPower(tr *trace.Trace, cfg ReferenceServerConfig, r *rng.Source) []float64 {
	prof := cfg.Profile
	nSamples := int(tr.Duration()/cfg.SampleSec) + 1
	offered := make([]float64, nSamples) // CPU-seconds offered per window
	for _, at := range tr.Times {
		idx := int(at / cfg.SampleSec)
		if idx < nSamples {
			offered[idx] += cfg.ServiceSec
		}
	}
	out := make([]float64, nSamples)
	cores := float64(prof.Cores)
	for i, o := range offered {
		util := o / cfg.SampleSec // busy core-equivalents
		if util > cores {
			util = cores
		}
		busy := util
		idle := cores - busy
		// Hardware governor: idle cores sit in C6 nearly all the time at
		// these request rates; the package stays in PC0 whenever any
		// core is active during the window.
		pkgActiveFrac := 1.0
		if busy == 0 {
			pkgActiveFrac = 0.05 // stray timer wakeups
		}
		w := busy*prof.CoreActive +
			idle*prof.CoreC6 +
			pkgActiveFrac*prof.PkgPC0 + (1-pkgActiveFrac)*prof.PkgPC6
		w += cfg.OSBaseW
		if r.Bernoulli(cfg.OSBurstProb) {
			w += cfg.OSBurstW * r.Float64()
		}
		w += r.Normal(0, cfg.NoiseW)
		if w < 0 {
			w = 0
		}
		out[i] = w
	}
	return out
}

// SimulatedServerPower produces the simulator-side CPU-package power for
// the same trace using the same utilization→power mapping as the
// simulator's event-driven model (busy cores at active draw, idle cores
// in C6, package in PC0 while any core is busy), sampled per window with
// no measurement noise. The event-driven experiment in
// internal/experiments drives the full server module; this helper exists
// for unit tests of the comparison metrics.
func SimulatedServerPower(tr *trace.Trace, cfg ReferenceServerConfig) []float64 {
	prof := cfg.Profile
	nSamples := int(tr.Duration()/cfg.SampleSec) + 1
	offered := make([]float64, nSamples)
	for _, at := range tr.Times {
		idx := int(at / cfg.SampleSec)
		if idx < nSamples {
			offered[idx] += cfg.ServiceSec
		}
	}
	out := make([]float64, nSamples)
	cores := float64(prof.Cores)
	for i, o := range offered {
		util := o / cfg.SampleSec
		if util > cores {
			util = cores
		}
		pkgActiveFrac := 1.0
		if util == 0 {
			pkgActiveFrac = 0.05
		}
		out[i] = util*prof.CoreActive + (cores-util)*prof.CoreC6 +
			pkgActiveFrac*prof.PkgPC0 + (1-pkgActiveFrac)*prof.PkgPC6
	}
	return out
}

// ReferenceSwitchConfig tunes the "physical switch" power signal.
type ReferenceSwitchConfig struct {
	Profile *power.SwitchProfile
	// SampleSec is the logger period (1 s in the paper).
	SampleSec float64
	// NoiseW is the per-sample measurement noise stddev (the paper's
	// standard deviation of differences is 0.04 W).
	NoiseW float64
	// DriftProb is the per-sample probability of entering a drift
	// segment where the physical switch draws slightly more (management
	// CPU housekeeping, Fig. 14b); DriftW is its magnitude and
	// DriftLenSec its mean length.
	DriftProb   float64
	DriftW      float64
	DriftLenSec float64
}

// DefaultReferenceSwitch mirrors the Cisco 2960 validation.
func DefaultReferenceSwitch() ReferenceSwitchConfig {
	return ReferenceSwitchConfig{
		Profile:     power.Cisco2960_24(),
		SampleSec:   1.0,
		NoiseW:      0.035,
		DriftProb:   0.002,
		DriftW:      0.35,
		DriftLenSec: 180,
	}
}

// ReferenceSwitchPower converts a per-sample active-port-count series
// (the simulator's port-state log, as the paper replays it onto the
// physical switch) into the "measured" power series.
func ReferenceSwitchPower(activePorts []int, cfg ReferenceSwitchConfig, r *rng.Source) []float64 {
	prof := cfg.Profile
	base := prof.ChassisWatts + float64(prof.LineCards)*prof.LineCardActiveW
	out := make([]float64, len(activePorts))
	driftLeft := 0
	for i, ap := range activePorts {
		w := base + float64(ap)*prof.PortActiveW
		if driftLeft == 0 && r.Bernoulli(cfg.DriftProb) {
			driftLeft = int(cfg.DriftLenSec * (0.5 + r.Float64()))
		}
		if driftLeft > 0 {
			w += cfg.DriftW
			driftLeft--
		}
		w += r.Normal(0, cfg.NoiseW)
		out[i] = w
	}
	return out
}
