package validate

import (
	"math"
	"testing"

	"holdcsim/internal/rng"
	"holdcsim/internal/stats"
	"holdcsim/internal/trace"
)

func TestReferenceServerTracksLoad(t *testing.T) {
	cfg := DefaultReferenceServer()
	cfg.NoiseW = 0 // deterministic for shape checks
	cfg.OSBaseW = 0
	cfg.OSBurstProb = 0
	r := rng.New(1)
	// Low-rate then high-rate halves.
	var times []float64
	for s := 0.0; s < 100; s += 1.0 {
		times = append(times, s)
	}
	for s := 100.0; s < 200; s += 0.002 { // 500 req/s = 4 busy cores
		times = append(times, s)
	}
	tr := &trace.Trace{Times: times}
	ref := ReferenceServerPower(tr, cfg, r)
	if len(ref) < 200 {
		t.Fatalf("samples = %d", len(ref))
	}
	lowMean := mean(ref[10:90])
	highMean := mean(ref[110:190])
	if highMean <= lowMean+5 {
		t.Errorf("power did not track load: low=%v high=%v", lowMean, highMean)
	}
}

func TestReferenceVsSimulatedClose(t *testing.T) {
	// With modest noise, the reference and the analytic simulated series
	// must sit within a ~1 W band — the validation claim of Fig. 12.
	cfg := DefaultReferenceServer()
	r := rng.New(2)
	tr := trace.SyntheticNLANR(trace.DefaultNLANRConfig(1000), r.Split("trace"))
	ref := ReferenceServerPower(tr, cfg, r.Split("ref"))
	sim := SimulatedServerPower(tr, cfg)
	mad, sd := stats.CompareSeries(sim, ref)
	if mad > 1.5 {
		t.Errorf("mean abs diff = %v W, want < 1.5", mad)
	}
	if sd <= 0 || sd > 2.5 {
		t.Errorf("stddev of diff = %v W", sd)
	}
}

func TestReferenceServerClipsAtCapacity(t *testing.T) {
	cfg := DefaultReferenceServer()
	cfg.NoiseW = 0
	cfg.OSBaseW = 0
	cfg.OSBurstProb = 0
	r := rng.New(3)
	// Overload: 10,000 requests in one second on a 10-core box.
	var times []float64
	for i := 0; i < 10000; i++ {
		times = append(times, float64(i)/10000)
	}
	tr := &trace.Trace{Times: times}
	ref := ReferenceServerPower(tr, cfg, r)
	maxW := float64(cfg.Profile.Cores)*cfg.Profile.CoreActive + cfg.Profile.PkgPC0
	if ref[0] > maxW+1e-9 {
		t.Errorf("sample %v exceeds package max %v", ref[0], maxW)
	}
}

func TestReferenceSwitchBaseAndSlope(t *testing.T) {
	cfg := DefaultReferenceSwitch()
	cfg.NoiseW = 0
	cfg.DriftProb = 0
	r := rng.New(4)
	ports := []int{0, 6, 12, 24}
	out := ReferenceSwitchPower(ports, cfg, r)
	if math.Abs(out[0]-14.7) > 1e-9 {
		t.Errorf("base = %v, want 14.7", out[0])
	}
	if math.Abs(out[3]-(14.7+24*0.23)) > 1e-9 {
		t.Errorf("full = %v, want 20.22", out[3])
	}
	// Linear in active ports.
	slope1 := out[1] - out[0]
	slope2 := out[2] - out[1]
	if math.Abs(slope1-slope2) > 1e-9 {
		t.Errorf("non-linear port slope: %v vs %v", slope1, slope2)
	}
}

func TestReferenceSwitchDriftSegments(t *testing.T) {
	cfg := DefaultReferenceSwitch()
	cfg.NoiseW = 0
	cfg.DriftProb = 0.01
	r := rng.New(5)
	ports := make([]int, 7200) // 2 hours at 1 Hz, all idle
	out := ReferenceSwitchPower(ports, cfg, r)
	drifted := 0
	for _, w := range out {
		if w > 14.7+0.1 {
			drifted++
		}
	}
	if drifted == 0 {
		t.Error("no drift segments produced")
	}
	if drifted == len(out) {
		t.Error("drift never ends")
	}
}

func TestReferenceDeterminism(t *testing.T) {
	cfg := DefaultReferenceServer()
	tr := trace.SyntheticNLANR(trace.DefaultNLANRConfig(200), rng.New(6))
	a := ReferenceServerPower(tr, cfg, rng.New(7))
	b := ReferenceServerPower(tr, cfg, rng.New(7))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different reference series")
		}
	}
}

func mean(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}
