package workload

import (
	"holdcsim/internal/engine"
	"holdcsim/internal/job"
	"holdcsim/internal/rng"
	"holdcsim/internal/simtime"
)

// Generator drives an arrival process on the virtual clock, expanding
// each arrival through the factory and handing the job to the sink (the
// global scheduler's front end, Fig. 1).
type Generator struct {
	eng     *engine.Engine
	arrival *rng.Source
	service *rng.Source
	proc    ArrivalProcess
	factory JobFactory
	sink    func(*job.Job)

	// MaxJobs stops generation after this many jobs (0 = unlimited).
	MaxJobs int64
	// Until stops generation at this virtual time (0 = unlimited).
	Until simtime.Time

	generated int64
	nextID    job.ID
}

// NewGenerator builds a generator. The rng source is split into
// independent arrival and service streams so changing one distribution
// never perturbs the other's draws.
func NewGenerator(eng *engine.Engine, r *rng.Source, proc ArrivalProcess,
	factory JobFactory, sink func(*job.Job)) *Generator {
	return &Generator{
		eng:     eng,
		arrival: r.Split("arrivals"),
		service: r.Split("service"),
		proc:    proc,
		factory: factory,
		sink:    sink,
	}
}

// Start schedules the first arrival.
func (g *Generator) Start() { g.scheduleNext() }

// Generated reports how many jobs have been injected.
func (g *Generator) Generated() int64 { return g.generated }

func (g *Generator) scheduleNext() {
	if g.MaxJobs > 0 && g.generated >= g.MaxJobs {
		return
	}
	gap := g.proc.Next(g.arrival)
	if gap < 0 {
		return // arrival stream ended (trace exhausted)
	}
	at := g.eng.Now() + simtime.FromSeconds(gap)
	if g.Until > 0 && at > g.Until {
		return
	}
	g.eng.Schedule(at, func() {
		j := g.factory.NewJob(g.nextID, at, g.service)
		g.nextID++
		g.generated++
		g.sink(j) //simlint:allow hookguard sink is a mandatory constructor argument
		g.scheduleNext()
	})
}
