package workload

import (
	"math"
	"testing"
	"testing/quick"

	"holdcsim/internal/dist"
	"holdcsim/internal/engine"
	"holdcsim/internal/job"
	"holdcsim/internal/rng"
	"holdcsim/internal/simtime"
	"holdcsim/internal/trace"
)

func TestPoissonRate(t *testing.T) {
	p := Poisson{Rate: 100}
	r := rng.New(1)
	const n = 100000
	total := 0.0
	for i := 0; i < n; i++ {
		total += p.Next(r)
	}
	rate := n / total
	if math.Abs(rate-100)/100 > 0.02 {
		t.Errorf("empirical rate = %v", rate)
	}
	if (Poisson{Rate: 0}).Next(r) >= 0 {
		t.Error("zero-rate Poisson should end the stream")
	}
}

func TestTraceReplay(t *testing.T) {
	tr := &trace.Trace{Times: []float64{1, 1.5, 4}}
	rp := NewTraceReplay(tr)
	r := rng.New(2)
	gaps := []float64{1, 0.5, 2.5}
	for i, want := range gaps {
		if got := rp.Next(r); math.Abs(got-want) > 1e-12 {
			t.Errorf("gap %d = %v, want %v", i, got, want)
		}
	}
	if rp.Next(r) >= 0 {
		t.Error("exhausted trace should return negative")
	}
}

func TestUtilizationRate(t *testing.T) {
	// rho=0.3, 50 servers x 4 cores, 5ms mean: λ = 0.3*200/0.005 = 12000/s.
	if got := UtilizationRate(0.3, 50, 4, 0.005); math.Abs(got-12000) > 1e-9 {
		t.Errorf("rate = %v, want 12000", got)
	}
	if UtilizationRate(0, 1, 1, 1) != 0 || UtilizationRate(0.5, 0, 1, 1) != 0 {
		t.Error("degenerate inputs should give 0")
	}
}

func TestServiceProfiles(t *testing.T) {
	if WebSearchService().Mean() != 0.005 {
		t.Error("web search mean != 5ms")
	}
	if WebServingService().Mean() != 0.120 {
		t.Error("web serving mean != 120ms")
	}
	if math.Abs(WikipediaService().Mean()-0.0065) > 1e-12 {
		t.Errorf("wikipedia mean = %v, want 6.5ms", WikipediaService().Mean())
	}
}

func TestSingleTaskFactory(t *testing.T) {
	f := SingleTask{Service: dist.Deterministic{Value: 0.005}, Kind: "web"}
	r := rng.New(3)
	j := f.NewJob(7, 100*simtime.Second, r)
	if j.ID != 7 || len(j.Tasks) != 1 {
		t.Fatalf("job = %+v", j)
	}
	if j.Tasks[0].Size != 5*simtime.Millisecond || j.Tasks[0].Kind != "web" {
		t.Errorf("task = %+v", j.Tasks[0])
	}
	if j.Tasks[0].State != job.TaskReady {
		t.Error("root not ready")
	}
}

func TestSingleTaskFactoryFloorsSize(t *testing.T) {
	f := SingleTask{Service: dist.Deterministic{Value: 0}}
	j := f.NewJob(1, 0, rng.New(4))
	if j.Tasks[0].Size <= 0 {
		t.Error("zero-size task not floored")
	}
}

func TestTwoTierFactory(t *testing.T) {
	f := TwoTier{
		AppService: dist.Deterministic{Value: 0.003},
		DBService:  dist.Deterministic{Value: 0.007},
		Bytes:      4096,
	}
	j := f.NewJob(1, 0, rng.New(5))
	if len(j.Tasks) != 2 {
		t.Fatalf("tasks = %d", len(j.Tasks))
	}
	if j.Tasks[0].Kind != "app" || j.Tasks[1].Kind != "db" {
		t.Error("kinds wrong")
	}
	if len(j.Tasks[0].Out) != 1 || j.Tasks[0].Out[0].Bytes != 4096 {
		t.Error("edge wrong")
	}
}

func TestRandomDAGFactory(t *testing.T) {
	f := RandomDAG{Layers: 3, MaxWidth: 4, MaxDeps: 2,
		MinSize: simtime.Millisecond, MaxSize: 5 * simtime.Millisecond, EdgeBytes: 100e6}
	r := rng.New(6)
	for i := 0; i < 20; i++ {
		j := f.NewJob(job.ID(i), 0, r)
		if _, err := j.TopoOrder(); err != nil {
			t.Fatal(err)
		}
		for _, tk := range j.Tasks {
			for _, e := range tk.Out {
				if e.Bytes != 100e6 {
					t.Fatal("edge bytes wrong")
				}
			}
		}
	}
}

func TestScatterGatherFactory(t *testing.T) {
	f := ScatterGather{Width: 4,
		RootSize:   dist.Deterministic{Value: 0.001},
		WorkerSize: dist.Deterministic{Value: 0.002},
		AggSize:    dist.Deterministic{Value: 0.001},
		Bytes:      1024}
	j := f.NewJob(1, 0, rng.New(7))
	if len(j.Tasks) != 6 {
		t.Fatalf("tasks = %d", len(j.Tasks))
	}
}

func TestGeneratorPoisson(t *testing.T) {
	eng := engine.New()
	var arrivals []simtime.Time
	g := NewGenerator(eng, rng.New(8), Poisson{Rate: 1000},
		SingleTask{Service: WebSearchService()},
		func(j *job.Job) { arrivals = append(arrivals, j.ArriveAt) })
	g.MaxJobs = 500
	g.Start()
	eng.Run()
	if len(arrivals) != 500 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	if g.Generated() != 500 {
		t.Errorf("Generated = %d", g.Generated())
	}
	// Mean gap should be ~1ms.
	mean := arrivals[len(arrivals)-1].Seconds() / float64(len(arrivals))
	if math.Abs(mean-0.001)/0.001 > 0.2 {
		t.Errorf("mean gap = %v s", mean)
	}
	// IDs are sequential from 0.
}

func TestGeneratorUntil(t *testing.T) {
	eng := engine.New()
	count := 0
	g := NewGenerator(eng, rng.New(9), Poisson{Rate: 100},
		SingleTask{Service: WebSearchService()}, func(*job.Job) { count++ })
	g.Until = simtime.Second
	g.Start()
	eng.Run()
	if count < 50 || count > 160 {
		t.Errorf("count = %d, want ~100", count)
	}
	if eng.Now() > simtime.Second {
		t.Errorf("generated past Until: %v", eng.Now())
	}
}

func TestGeneratorTraceDriven(t *testing.T) {
	tr := &trace.Trace{Times: []float64{0.5, 1.0, 2.0}}
	eng := engine.New()
	var at []simtime.Time
	g := NewGenerator(eng, rng.New(10), NewTraceReplay(tr),
		SingleTask{Service: WikipediaService()},
		func(j *job.Job) { at = append(at, eng.Now()) })
	g.Start()
	eng.Run()
	if len(at) != 3 {
		t.Fatalf("arrivals = %d", len(at))
	}
	want := []simtime.Time{500 * simtime.Millisecond, simtime.Second, 2 * simtime.Second}
	for i := range want {
		if at[i] != want[i] {
			t.Errorf("arrival %d at %v, want %v", i, at[i], want[i])
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	run := func() []simtime.Time {
		eng := engine.New()
		var at []simtime.Time
		g := NewGenerator(eng, rng.New(42), Poisson{Rate: 500},
			SingleTask{Service: WebSearchService()},
			func(j *job.Job) { at = append(at, j.ArriveAt) })
		g.MaxJobs = 100
		g.Start()
		eng.Run()
		return at
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different arrival sequences")
		}
	}
}

// Property: generator IDs are dense and ordered; arrivals nondecreasing.
func TestGeneratorOrderProperty(t *testing.T) {
	f := func(seed uint64) bool {
		eng := engine.New()
		var ids []job.ID
		var times []simtime.Time
		g := NewGenerator(eng, rng.New(seed), Poisson{Rate: 2000},
			SingleTask{Service: WebSearchService()},
			func(j *job.Job) { ids = append(ids, j.ID); times = append(times, j.ArriveAt) })
		g.MaxJobs = 50
		g.Start()
		eng.Run()
		if len(ids) != 50 {
			return false
		}
		for i := range ids {
			if ids[i] != job.ID(i) {
				return false
			}
			if i > 0 && times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMMPPArrivalStrings(t *testing.T) {
	m, err := dist.NewMMPP2(100, 10, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	if (MMPP{Proc: m}).String() == "" || (Poisson{Rate: 1}).String() == "" {
		t.Error("empty arrival process strings")
	}
	if (SingleTask{Service: WebSearchService()}).String() == "" ||
		(TwoTier{AppService: WebSearchService(), DBService: WebSearchService()}).String() == "" ||
		(RandomDAG{}).String() == "" || (ScatterGather{}).String() == "" {
		t.Error("empty factory strings")
	}
	tr := NewTraceReplay(&trace.Trace{Times: []float64{1}})
	if tr.String() == "" {
		t.Error("empty trace replay string")
	}
}
