// Package workload implements HolDCSim's workload module (paper
// Sec. III-D): stochastic job arrivals (Poisson and 2-state MMPP),
// trace-driven arrivals, and job factories that expand each arrival into
// a task DAG. The generator injects jobs into the data center through a
// sink callback on the virtual clock.
package workload

import (
	"fmt"

	"holdcsim/internal/dist"
	"holdcsim/internal/job"
	"holdcsim/internal/rng"
	"holdcsim/internal/simtime"
	"holdcsim/internal/trace"
)

// ArrivalProcess produces successive inter-arrival gaps in seconds.
type ArrivalProcess interface {
	// Next returns the gap to the next arrival; a negative value ends
	// the stream.
	Next(r *rng.Source) float64
	// String describes the process.
	String() string
}

// Poisson is a homogeneous Poisson arrival process.
type Poisson struct {
	Rate float64 // arrivals/second
}

// Next implements ArrivalProcess.
func (p Poisson) Next(r *rng.Source) float64 {
	if p.Rate <= 0 {
		return -1
	}
	return r.Exp(1 / p.Rate)
}

func (p Poisson) String() string { return fmt.Sprintf("poisson(λ=%g/s)", p.Rate) }

// MMPP wraps the 2-state Markov-Modulated Poisson Process.
type MMPP struct {
	Proc *dist.MMPP2
}

// Next implements ArrivalProcess.
func (m MMPP) Next(r *rng.Source) float64 { return m.Proc.Next(r) }

func (m MMPP) String() string { return m.Proc.String() }

// TraceReplay replays recorded arrival timestamps (paper Sec. III-D's
// "actual system trace-based workload simulation").
type TraceReplay struct {
	tr   *trace.Trace
	idx  int
	prev float64
}

// NewTraceReplay wraps a trace for replay from its beginning.
func NewTraceReplay(tr *trace.Trace) *TraceReplay { return &TraceReplay{tr: tr} }

// Next implements ArrivalProcess; it returns -1 once the trace ends.
func (t *TraceReplay) Next(*rng.Source) float64 {
	if t.idx >= t.tr.Len() {
		return -1
	}
	gap := t.tr.Times[t.idx] - t.prev
	t.prev = t.tr.Times[t.idx]
	t.idx++
	return gap
}

func (t *TraceReplay) String() string {
	return fmt.Sprintf("trace(n=%d,dur=%.0fs)", t.tr.Len(), t.tr.Duration())
}

// UtilizationRate computes the Poisson arrival rate λ that yields system
// utilization rho for a farm (paper Sec. III-D: rho =
// λ / (µ · nServers · nCores), so λ = rho · nServers · nCores / E[S]).
func UtilizationRate(rho float64, nServers, nCores int, meanServiceSec float64) float64 {
	if rho <= 0 || nServers <= 0 || nCores <= 0 || meanServiceSec <= 0 {
		return 0
	}
	return rho * float64(nServers) * float64(nCores) / meanServiceSec
}

// Standard service-time profiles from the paper's case studies.

// WebSearchService: latency-critical search with 5 ms mean service time
// (Sec. IV-B), exponentially distributed per the Poisson-based model.
func WebSearchService() dist.Sampler { return dist.Exponential{MeanValue: 0.005} }

// WebServingService: longer 120 ms mean service time (Sec. IV-B).
func WebServingService() dist.Sampler { return dist.Exponential{MeanValue: 0.120} }

// WikipediaService: 3–10 ms uniform task execution used by the
// provisioning study (Sec. IV-A).
func WikipediaService() dist.Sampler { return dist.Uniform{Lo: 0.003, Hi: 0.010} }

// JobFactory expands one arrival into a task DAG.
type JobFactory interface {
	NewJob(id job.ID, now simtime.Time, r *rng.Source) *job.Job
	String() string
}

// SingleTask builds one-task jobs with sampled service times — the shape
// used by case studies IV-A/B/C.
type SingleTask struct {
	Service dist.Sampler
	Kind    string
}

// NewJob implements JobFactory.
func (f SingleTask) NewJob(id job.ID, now simtime.Time, r *rng.Source) *job.Job {
	size := simtime.FromSeconds(f.Service.Sample(r))
	if size <= 0 {
		size = simtime.Microsecond
	}
	j := job.New(id, now)
	j.AddTask(size, f.Kind)
	if err := j.Seal(); err != nil {
		panic(err)
	}
	return j
}

func (f SingleTask) String() string { return fmt.Sprintf("single(%v)", f.Service) }

// TwoTier builds app->db request pairs (paper Sec. III-C's web example).
type TwoTier struct {
	AppService dist.Sampler
	DBService  dist.Sampler
	Bytes      int64
}

// NewJob implements JobFactory.
func (f TwoTier) NewJob(id job.ID, now simtime.Time, r *rng.Source) *job.Job {
	app := simtime.FromSeconds(f.AppService.Sample(r))
	db := simtime.FromSeconds(f.DBService.Sample(r))
	return job.TwoTier(id, now, simtime.Max(app, simtime.Microsecond),
		simtime.Max(db, simtime.Microsecond), f.Bytes)
}

func (f TwoTier) String() string {
	return fmt.Sprintf("twotier(app=%v,db=%v,%dB)", f.AppService, f.DBService, f.Bytes)
}

// RandomDAG builds layered random DAGs with a fixed per-edge transfer
// size — the Sec. IV-D traffic model (tasks with known traffic patterns,
// 100 MB flows between servers).
type RandomDAG struct {
	Layers, MaxWidth, MaxDeps int
	MinSize, MaxSize          simtime.Time
	EdgeBytes                 int64
}

// NewJob implements JobFactory.
func (f RandomDAG) NewJob(id job.ID, now simtime.Time, r *rng.Source) *job.Job {
	return job.RandomDAG(id, now, r, f.Layers, f.MaxWidth, f.MaxDeps,
		f.MinSize, f.MaxSize, f.EdgeBytes)
}

func (f RandomDAG) String() string {
	return fmt.Sprintf("randomdag(l=%d,w=%d,%dB)", f.Layers, f.MaxWidth, f.EdgeBytes)
}

// ScatterGather builds root -> N workers -> gather jobs (web-search
// shape over index shards).
type ScatterGather struct {
	Width                         int
	RootSize, WorkerSize, AggSize dist.Sampler
	Bytes                         int64
}

// NewJob implements JobFactory.
func (f ScatterGather) NewJob(id job.ID, now simtime.Time, r *rng.Source) *job.Job {
	sz := func(s dist.Sampler) simtime.Time {
		return simtime.Max(simtime.FromSeconds(s.Sample(r)), simtime.Microsecond)
	}
	return job.ScatterGather(id, now, f.Width, sz(f.RootSize), sz(f.WorkerSize), sz(f.AggSize), f.Bytes)
}

func (f ScatterGather) String() string {
	return fmt.Sprintf("scattergather(w=%d,%dB)", f.Width, f.Bytes)
}
