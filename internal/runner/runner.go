// Package runner executes campaigns of independent simulation runs over
// a worker pool.
//
// Every figure of the paper is a sweep of independent simulations (τ
// grids, utilization points, topology sizes); SPECI-2 (Sriram & Cliff)
// and DCSim (Hu et al.) both identify experiment-campaign throughput —
// not single-run speed — as the practical limit at cloud scale. The
// runner fans sweep points out over GOMAXPROCS workers while preserving
// the repo's determinism contract (DESIGN.md Sec. 3): each Run owns its
// own engine and rng streams derived only from its seed, and results are
// gathered into submission-ordered slices, so parallel output is
// bit-identical to serial output at any worker count.
//
// Replications are first-class: MapReps expands each Run into N
// seed-variants. Replication 0 always uses the campaign's base seed
// unchanged, so a 1-replication campaign reproduces the historical
// single-run output byte-for-byte; replication i > 0 derives its seed
// from the base seed and the run's key via an rng label split, so adding
// replications never perturbs any existing stream.
package runner

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"holdcsim/internal/rng"
)

// Options controls campaign execution. The zero value — all defaults —
// runs one replication per run on GOMAXPROCS workers.
type Options struct {
	// Workers is the pool size; <= 0 means GOMAXPROCS.
	Workers int
	// Reps is the replication count per run; <= 1 means a single
	// replication at the base seed (the historical behaviour).
	Reps int
}

// WorkerCount resolves the effective pool size.
func (o Options) WorkerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// RepCount resolves the effective replication count.
func (o Options) RepCount() int {
	if o.Reps > 1 {
		return o.Reps
	}
	return 1
}

// Run describes one independent simulation in a campaign. Do must be a
// pure function of the seed: it builds its own engine, rng streams,
// policies and traces, shares no mutable state with other runs, and
// returns the same T for the same seed. Key is a stable label used for
// replication-seed derivation and error reporting — changing a Key
// changes the seeds of its replications > 0 (never replication 0).
// Runs whose results are compared pairwise (policy A vs policy B on
// "the same workload") should share a Key: replication i of each then
// runs the same derived seed — common random numbers — so their
// difference measures the policies, not seed noise.
type Run[T any] struct {
	Key string
	Do  func(seed uint64) (T, error)
}

// RepSeed derives the seed for one replication of a run. Replication 0
// is the base seed itself; replication i > 0 splits a fresh stream on
// the label "rep/<key>/<i>", so the derived seeds are stable under code
// changes elsewhere and distinct across keys and indices.
func RepSeed(seed uint64, key string, rep int) uint64 {
	if rep <= 0 {
		return seed
	}
	return rng.New(seed).Split(fmt.Sprintf("rep/%s/%d", key, rep)).Uint64()
}

// One runs a single-simulation campaign: do is executed once per
// replication (serially when Reps is 1) and the replications are
// returned as one slice, rep 0 first at the base seed. It is the
// single-run shape of MapReps for experiments that are one simulation
// rather than a sweep.
func One[T any](o Options, seed uint64, key string, do func(uint64) (T, error)) ([]T, error) {
	reps, err := MapReps(o, seed, []Run[T]{{Key: key, Do: do}})
	if err != nil {
		return nil, err
	}
	return reps[0], nil
}

// Map executes each run once at the campaign's base seed and returns
// results in submission order. Output is identical at any worker count.
func Map[T any](o Options, seed uint64, runs []Run[T]) ([]T, error) {
	o.Reps = 1
	reps, err := MapReps(o, seed, runs)
	if err != nil {
		return nil, err
	}
	out := make([]T, len(reps))
	for i, r := range reps {
		out[i] = r[0]
	}
	return out, nil
}

// MapReps executes every (run, replication) pair over the worker pool
// and returns out[i][j] = result of runs[i] at replication j. The first
// error in submission order is returned — the same error regardless of
// worker count or completion order — wrapped with the run's index and
// key (the index disambiguates paired runs that share a key for common
// random numbers).
func MapReps[T any](o Options, seed uint64, runs []Run[T]) ([][]T, error) {
	nrep := o.RepCount()
	out := make([][]T, len(runs))
	errs := make([][]error, len(runs))
	for i := range runs {
		out[i] = make([]T, nrep)
		errs[i] = make([]error, nrep)
	}

	type task struct{ run, rep int }
	total := len(runs) * nrep
	workers := o.WorkerCount()
	if workers > total {
		workers = total
	}
	if workers <= 1 {
		// Serial fast path: no goroutines, same submission order.
		for i, r := range runs {
			for j := 0; j < nrep; j++ {
				out[i][j], errs[i][j] = r.Do(RepSeed(seed, r.Key, j)) //simlint:allow hookguard every Run carries a Do by contract
			}
		}
	} else {
		tasks := make(chan task)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for t := range tasks {
					r := runs[t.run]
					out[t.run][t.rep], errs[t.run][t.rep] =
						r.Do(RepSeed(seed, r.Key, t.rep)) //simlint:allow hookguard every Run carries a Do by contract
				}
			}()
		}
		for i := range runs {
			for j := 0; j < nrep; j++ {
				tasks <- task{i, j}
			}
		}
		close(tasks)
		wg.Wait()
	}

	for i, r := range runs {
		for j, err := range errs[i] {
			if err != nil {
				return nil, fmt.Errorf("runner: run %d %q (rep %d): %w", i, r.Key, j, err)
			}
		}
	}
	return out, nil
}

// Summary aggregates replicated samples of one metric.
type Summary struct {
	N    int
	Mean float64
	// Std is the sample (n-1) standard deviation; 0 for N <= 1.
	Std float64
	// CI95 is the normal-approximation 95% confidence half-width,
	// 1.96·Std/√N; 0 for N <= 1.
	CI95 float64
}

// Summarize reduces samples to mean/stddev/CI. Edge cases are exact
// rather than NaN: no samples yields the zero Summary, one sample yields
// its value with zero spread.
func Summarize(samples []float64) Summary {
	n := len(samples)
	if n == 0 {
		return Summary{}
	}
	sum := 0.0
	for _, v := range samples {
		sum += v
	}
	mean := sum / float64(n)
	if n == 1 {
		return Summary{N: 1, Mean: mean}
	}
	ss := 0.0
	for _, v := range samples {
		d := v - mean
		ss += d * d
	}
	std := math.Sqrt(ss / float64(n-1))
	return Summary{
		N:    n,
		Mean: mean,
		Std:  std,
		CI95: 1.96 * std / math.Sqrt(float64(n)),
	}
}

// SummarizeBy extracts one metric from each replication and summarizes.
func SummarizeBy[T any](reps []T, metric func(T) float64) Summary {
	samples := make([]float64, len(reps))
	for i, r := range reps {
		samples[i] = metric(r)
	}
	return Summarize(samples)
}

// MeanBy is SummarizeBy reduced to the mean.
func MeanBy[T any](reps []T, metric func(T) float64) float64 {
	return SummarizeBy(reps, metric).Mean
}
