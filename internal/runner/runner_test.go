package runner

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"testing"

	"holdcsim/internal/rng"
)

// echoRuns build runs whose result records exactly which (key, seed) the
// pool handed them, so ordering and seed-derivation are observable.
func echoRuns(n int) []Run[string] {
	runs := make([]Run[string], n)
	for i := range runs {
		key := fmt.Sprintf("run/%d", i)
		runs[i] = Run[string]{
			Key: key,
			Do: func(seed uint64) (string, error) {
				return fmt.Sprintf("%s@%d", key, seed), nil
			},
		}
	}
	return runs
}

func TestRepSeed(t *testing.T) {
	if got := RepSeed(42, "k", 0); got != 42 {
		t.Errorf("rep 0 must be the base seed, got %d", got)
	}
	seen := map[uint64]string{42: "base"}
	for _, key := range []string{"a", "b"} {
		for rep := 1; rep <= 3; rep++ {
			s := RepSeed(42, key, rep)
			if prev, dup := seen[s]; dup {
				t.Errorf("RepSeed(42,%q,%d) collides with %s", key, rep, prev)
			}
			seen[s] = fmt.Sprintf("%s/%d", key, rep)
			if again := RepSeed(42, key, rep); again != s {
				t.Errorf("RepSeed not stable: %d then %d", s, again)
			}
		}
	}
	if RepSeed(42, "a", 1) == RepSeed(43, "a", 1) {
		t.Error("different base seeds produced the same rep seed")
	}
}

func TestMapSubmissionOrderAcrossWorkerCounts(t *testing.T) {
	runs := echoRuns(37)
	var want []string
	for _, w := range []int{1, 2, 3, runtime.GOMAXPROCS(0), 64} {
		got, err := Map(Options{Workers: w}, 7, runs)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(got) != len(runs) {
			t.Fatalf("workers=%d: %d results", w, len(got))
		}
		for i, s := range got {
			if wantPrefix := fmt.Sprintf("run/%d@", i); len(s) < len(wantPrefix) || s[:len(wantPrefix)] != wantPrefix {
				t.Fatalf("workers=%d: result %d out of order: %s", w, i, s)
			}
		}
		if want == nil {
			want = got
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result %d = %s, want %s", w, i, got[i], want[i])
			}
		}
	}
}

func TestMapRepsSeedDerivation(t *testing.T) {
	runs := echoRuns(5)
	const seed = 11
	reps, err := MapReps(Options{Workers: 4, Reps: 3}, seed, runs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range reps {
		if len(r) != 3 {
			t.Fatalf("run %d: %d reps", i, len(r))
		}
		if want := fmt.Sprintf("run/%d@%d", i, seed); r[0] != want {
			t.Errorf("run %d rep 0 = %s, want base seed %s", i, r[0], want)
		}
		for j := 1; j < 3; j++ {
			if want := fmt.Sprintf("run/%d@%d", i, RepSeed(seed, runs[i].Key, j)); r[j] != want {
				t.Errorf("run %d rep %d = %s, want %s", i, j, r[j], want)
			}
		}
	}

	// Parallel replication output must equal serial.
	serial, err := MapReps(Options{Workers: 1, Reps: 3}, seed, runs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reps {
		for j := range reps[i] {
			if reps[i][j] != serial[i][j] {
				t.Errorf("[%d][%d]: parallel %s != serial %s", i, j, reps[i][j], serial[i][j])
			}
		}
	}
}

func TestFirstErrorDeterministic(t *testing.T) {
	boom := errors.New("boom")
	runs := make([]Run[int], 20)
	for i := range runs {
		i := i
		runs[i] = Run[int]{
			Key: fmt.Sprintf("run/%d", i),
			Do: func(uint64) (int, error) {
				if i >= 7 { // several failures; the lowest index must win
					return 0, boom
				}
				return i, nil
			},
		}
	}
	var first string
	for _, w := range []int{1, 3, 16} {
		_, err := Map(Options{Workers: w}, 1, runs)
		if err == nil {
			t.Fatalf("workers=%d: no error", w)
		}
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: error chain lost: %v", w, err)
		}
		if first == "" {
			first = err.Error()
		} else if err.Error() != first {
			t.Errorf("workers=%d: error %q, want %q", w, err.Error(), first)
		}
	}
	if want := `runner: run 7 "run/7" (rep 0): boom`; first != want {
		t.Errorf("first error = %q, want %q", first, want)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 {
		t.Fatalf("N/mean: %+v", s)
	}
	wantStd := math.Sqrt(5.0 / 3.0)
	if math.Abs(s.Std-wantStd) > 1e-12 {
		t.Errorf("std = %v, want %v", s.Std, wantStd)
	}
	if wantCI := 1.96 * wantStd / 2; math.Abs(s.CI95-wantCI) > 1e-12 {
		t.Errorf("ci95 = %v, want %v", s.CI95, wantCI)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	// Empty: all-zero, never NaN.
	z := Summarize(nil)
	if z != (Summary{}) {
		t.Errorf("empty: %+v", z)
	}
	// N=1: the value itself with zero spread, never NaN.
	one := Summarize([]float64{3.25})
	if one.N != 1 || one.Mean != 3.25 || one.Std != 0 || one.CI95 != 0 {
		t.Errorf("n=1: %+v", one)
	}
	for _, s := range []Summary{z, one} {
		for _, v := range []float64{s.Mean, s.Std, s.CI95} {
			if math.IsNaN(v) {
				t.Errorf("NaN leaked: %+v", s)
			}
		}
	}
}

// TestSummarizeProperties checks algebraic invariants on randomized
// samples: the mean is bracketed by min/max, spread is non-negative,
// shifting samples shifts only the mean, and scaling scales mean and
// spread together.
func TestSummarizeProperties(t *testing.T) {
	r := rng.New(99).Split("summarize-prop")
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.IntN(40)
		samples := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range samples {
			samples[i] = r.Normal(10, 25)
			lo = math.Min(lo, samples[i])
			hi = math.Max(hi, samples[i])
		}
		s := Summarize(samples)
		if s.N != n {
			t.Fatalf("N = %d, want %d", s.N, n)
		}
		if s.Mean < lo-1e-9 || s.Mean > hi+1e-9 {
			t.Fatalf("mean %v outside [%v, %v]", s.Mean, lo, hi)
		}
		if s.Std < 0 || s.CI95 < 0 {
			t.Fatalf("negative spread: %+v", s)
		}

		shift, scale := r.Uniform(-50, 50), r.Uniform(0.1, 8)
		shifted := make([]float64, n)
		scaled := make([]float64, n)
		for i, v := range samples {
			shifted[i] = v + shift
			scaled[i] = v * scale
		}
		tol := 1e-9 * (1 + math.Abs(s.Mean) + s.Std)
		sh := Summarize(shifted)
		if math.Abs(sh.Mean-(s.Mean+shift)) > tol || math.Abs(sh.Std-s.Std) > tol {
			t.Fatalf("shift broke invariants: %+v vs %+v (shift %v)", sh, s, shift)
		}
		sc := Summarize(scaled)
		if math.Abs(sc.Mean-s.Mean*scale) > tol*scale || math.Abs(sc.Std-s.Std*scale) > tol*scale {
			t.Fatalf("scale broke invariants: %+v vs %+v (scale %v)", sc, s, scale)
		}
	}
}

func TestSummarizeByAndMeanBy(t *testing.T) {
	type pt struct{ e float64 }
	reps := []pt{{2}, {4}, {6}}
	s := SummarizeBy(reps, func(p pt) float64 { return p.e })
	if s.N != 3 || s.Mean != 4 {
		t.Errorf("SummarizeBy: %+v", s)
	}
	if m := MeanBy(reps, func(p pt) float64 { return p.e }); m != 4 {
		t.Errorf("MeanBy = %v", m)
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.WorkerCount() != runtime.GOMAXPROCS(0) {
		t.Errorf("default workers = %d", o.WorkerCount())
	}
	if o.RepCount() != 1 {
		t.Errorf("default reps = %d", o.RepCount())
	}
	if (Options{Workers: 3, Reps: 5}).WorkerCount() != 3 ||
		(Options{Workers: 3, Reps: 5}).RepCount() != 5 {
		t.Error("explicit options not honored")
	}
}
