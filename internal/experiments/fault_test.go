package experiments

import (
	"os"
	"testing"

	"holdcsim/internal/fault"
	"holdcsim/internal/runner"
	"holdcsim/internal/sched"
)

// TestFaultFreeEquivalence is the differential fault suite's anchor: a
// simulation with an EMPTY fault timeline must be byte-identical to the
// pre-fault code path. Every Quick preset runs with the fault injector
// explicitly attached (non-nil spec, zero events) AND the invariant
// checker on, and its full rendered output is diffed against the
// committed golden files — which were generated before the fault
// subsystem existed. Any divergence means the fault hooks perturbed an
// event, a draw, or a float on the healthy path.
func TestFaultFreeEquivalence(t *testing.T) {
	for _, c := range goldenCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			got, err := c.run(runner.Options{}, true, &fault.Spec{})
			if err != nil {
				t.Fatalf("empty-timeline run failed: %v", err)
			}
			want, err := os.ReadFile(goldenPath(c.name))
			if err != nil {
				t.Fatalf("no golden file (regenerate with -update): %v", err)
			}
			if got != string(want) {
				t.Fatalf("%s: empty fault timeline diverged from the pre-fault golden output — the fault hooks perturbed the simulation", c.name)
			}
		})
	}
}

// TestFaultedPresetHoldsLaws runs the flagship sweep under a real fault
// workload — server crashes with both orphan policies plus link flaps —
// with the invariant checker on: every failure-aware conservation law
// must hold at every point of the campaign.
func TestFaultedPresetHoldsLaws(t *testing.T) {
	for _, policy := range []sched.OrphanPolicy{sched.OrphanRequeue, sched.OrphanDrop} {
		p := QuickFig5()
		p.Utilizations = p.Utilizations[:1]
		p.Workloads = p.Workloads[:1]
		p.Check = true
		p.Faults = &fault.Spec{
			ServerCrashes: 3,
			ServerDownSec: 2,
			Orphans:       policy,
		}
		if _, err := Fig5(p); err != nil {
			t.Fatalf("policy %v: %v", policy, err)
		}
	}
}

// BenchmarkFig5EmptyFaults is the no-fault overhead probe for the
// BENCH_engine trajectory: an attached-but-empty fault timeline must
// cost nothing next to BenchmarkFig5Checked.
func BenchmarkFig5EmptyFaults(b *testing.B) {
	p := QuickFig5()
	p.Exec = runner.Options{Workers: 1}
	p.Check = true
	p.Faults = &fault.Spec{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Fig5(p); err != nil {
			b.Fatal(err)
		}
	}
}
