package experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"holdcsim/internal/fault"
	"holdcsim/internal/runner"
)

// The golden suite pins the byte-exact output of every Quick preset.
// Any accidental determinism break — a map iteration leaking into
// simulation state, a seed stream perturbed by reordered Split calls, a
// runner scheduling bug — fails tier-1 with a line-level diff. Refresh
// intentionally changed outputs with:
//
//	go test ./internal/experiments -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files under testdata/golden")

// goldenCase renders one Quick preset to its deterministic text output:
// the TSV series plus any summary lines that carry no wall-clock
// figures. The same renderings back the worker-count equivalence test.
type goldenCase struct {
	name string
	run  func(exec runner.Options, check bool, faults *fault.Spec) (string, error)
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{"table1", func(exec runner.Options, check bool, faults *fault.Spec) (string, error) {
			p := QuickTableI()
			p.Exec = exec
			p.Check = check
			p.Faults = faults
			r, err := TableI(p)
			if err != nil {
				return "", err
			}
			// Wall-clock and events/s are machine-dependent; jobs and
			// virtual end time are part of the determinism contract.
			return r.Features.String() +
				fmt.Sprintf("jobs_completed\t%d\nsim_seconds\t%.6g\n",
					r.JobsCompleted, r.SimSeconds), nil
		}},
		{"fig4", func(exec runner.Options, check bool, faults *fault.Spec) (string, error) {
			p := QuickFig4()
			p.Exec = exec
			p.Check = check
			p.Faults = faults
			r, err := Fig4(p)
			if err != nil {
				return "", err
			}
			return r.Series.String() + r.Summary() + "\n", nil
		}},
		{"fig5", func(exec runner.Options, check bool, faults *fault.Spec) (string, error) {
			p := QuickFig5()
			p.Exec = exec
			p.Check = check
			p.Faults = faults
			r, err := Fig5(p)
			if err != nil {
				return "", err
			}
			var b strings.Builder
			b.WriteString(r.Series.String())
			keys := make([]string, 0, len(r.OptimalTau))
			for k := range r.OptimalTau {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, "optimal_tau\t%s\t%.2g\n", k, r.OptimalTau[k])
			}
			return b.String(), nil
		}},
		{"fig6", func(exec runner.Options, check bool, faults *fault.Spec) (string, error) {
			p := QuickFig6()
			p.Exec = exec
			p.Check = check
			p.Faults = faults
			r, err := Fig6(p)
			if err != nil {
				return "", err
			}
			return r.Series.String(), nil
		}},
		{"fig8", func(exec runner.Options, check bool, faults *fault.Spec) (string, error) {
			p := QuickFig8()
			p.Exec = exec
			p.Check = check
			p.Faults = faults
			r, err := Fig8(p)
			if err != nil {
				return "", err
			}
			return r.Series.String(), nil
		}},
		{"fig9", func(exec runner.Options, check bool, faults *fault.Spec) (string, error) {
			p := QuickFig9()
			p.Exec = exec
			p.Check = check
			p.Faults = faults
			r, err := Fig9(p)
			if err != nil {
				return "", err
			}
			return r.Series.String() +
				fmt.Sprintf("totals_kJ\t%.6g\t%.6g\t%.6g\n",
					r.TimerTotalJ/1e3, r.AdaptiveTotalJ/1e3, r.SavingPct), nil
		}},
		{"fig11", func(exec runner.Options, check bool, faults *fault.Spec) (string, error) {
			p := QuickFig11()
			p.Exec = exec
			p.Check = check
			p.Faults = faults
			r, err := Fig11(p)
			if err != nil {
				return "", err
			}
			return r.Series.String() + r.CDFTable().String(), nil
		}},
		{"fig12", func(exec runner.Options, check bool, faults *fault.Spec) (string, error) {
			p := QuickFig12()
			p.Exec = exec
			p.Check = check
			p.Faults = faults
			r, err := Fig12(p)
			if err != nil {
				return "", err
			}
			return r.Series.String() + r.Summary() + "\n", nil
		}},
		{"fig13", func(exec runner.Options, check bool, faults *fault.Spec) (string, error) {
			p := QuickFig13()
			p.Exec = exec
			p.Check = check
			p.Faults = faults
			r, err := Fig13(p)
			if err != nil {
				return "", err
			}
			return r.Series.String() + r.Summary() + "\n", nil
		}},
	}
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".golden.tsv")
}

func TestGoldenQuickPresets(t *testing.T) {
	for _, c := range goldenCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			got, err := c.run(runner.Options{}, false, nil)
			if err != nil {
				t.Fatal(err)
			}
			path := goldenPath(c.name)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("no golden file (regenerate with -update): %v", err)
			}
			if got == string(want) {
				return
			}
			gotLines := strings.Split(got, "\n")
			wantLines := strings.Split(string(want), "\n")
			for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
				var g, w string
				if i < len(gotLines) {
					g = gotLines[i]
				}
				if i < len(wantLines) {
					w = wantLines[i]
				}
				if g != w {
					t.Fatalf("output differs from %s at line %d:\n got: %q\nwant: %q\n(%d vs %d lines; refresh intentional changes with -update)",
						path, i+1, g, w, len(gotLines), len(wantLines))
				}
			}
			t.Fatalf("output differs from %s in line endings only", path)
		})
	}
}
