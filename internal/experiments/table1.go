package experiments

import (
	"fmt"
	"time"

	"holdcsim/internal/core"
	"holdcsim/internal/fault"
	"holdcsim/internal/power"
	"holdcsim/internal/runner"
	"holdcsim/internal/sched"
	"holdcsim/internal/server"

	"holdcsim/internal/workload"
)

// TableI reproduces the paper's capability comparison (Table I). The
// qualitative rows are the implemented feature matrix; the scalability
// row ("more than 20K servers") is verified empirically by building and
// running a >20K-server farm and reporting throughput.
type TableIParams struct {
	Seed uint64
	// ScaleServers is the farm size for the scalability check.
	ScaleServers int
	// ScaleJobs bounds the scalability run.
	ScaleJobs int64
	// Exec controls replications of the scalability run. The run
	// measures wall-clock, so replications always execute serially
	// (Workers is forced to 1): concurrent copies would contend for
	// cores and deflate the reported events/s.
	Exec runner.Options
	// Check enables runtime invariant checking on every simulation
	// (internal/invariant): a violated conservation law fails the run.
	Check bool
	// Faults optionally attaches the fault injector (internal/fault)
	// to every simulation in the experiment. Nil leaves the fault
	// machinery unwired; a non-nil empty spec attaches an empty
	// timeline (the differential fault suite's probe).
	Faults *fault.Spec
}

// DefaultTableI checks the paper's ">20K servers" claim directly.
func DefaultTableI() TableIParams {
	return TableIParams{Seed: 37, ScaleServers: 20480, ScaleJobs: 100000}
}

// QuickTableI shrinks the scalability run for tests and benches.
func QuickTableI() TableIParams {
	return TableIParams{Seed: 37, ScaleServers: 2048, ScaleJobs: 10000}
}

// TableIResult carries the feature matrix plus the measured scalability
// figures.
type TableIResult struct {
	Features *Table
	// Scalability measurements.
	Servers       int
	JobsCompleted int64
	EventsPerSec  float64
	WallSeconds   float64
	SimSeconds    float64
}

// TableI renders the capability matrix and runs the scalability check.
func TableI(p TableIParams) (*TableIResult, error) {
	features := &Table{
		Title:  "Table I: HolDCSim capability matrix (this implementation)",
		Header: []string{"category", "capability"},
	}
	for _, row := range [][2]string{
		{"Server", "multi-core, multi-socket processors; heterogeneous core speeds; per-core or unified local queues"},
		{"Network", "switch model with chassis, line cards and ports; packet buffers"},
		{"Topology", "switch-only (fat tree, flattened butterfly); server-only (CamCube); hybrid (BCube); star"},
		{"Communication", "packet-level (store-and-forward) and flow-based (max-min fair)"},
		{"Job/Task", "multi-task jobs with task-dependency DAGs and per-edge transfer sizes"},
		{"Power", "per-core DVFS (P-states) with ondemand governor; core and per-socket package C-states; ACPI S-states; switch LPI, line-card sleep, adaptive link rate"},
		{"Scheduling", "global round-robin / least-loaded / pack-first / network-aware; optional global task queue; provisioning, dual-timer and adaptive-pool controllers"},
		{"Workloads", "Poisson, 2-state MMPP, trace replay (Wikipedia-like, NLANR-like synthetic)"},
		{"Scalability", fmt.Sprintf("verified at %d servers below", p.ScaleServers)},
	} {
		features.Add(row[0], row[1])
	}

	// Scalability: a >20K-server farm under light Poisson load, run
	// through the campaign runner; replications mean the throughput
	// figures over seed variants.
	exec := p.Exec
	exec.Workers = 1 // timing runs must not contend with each other
	rep, err := runner.One(exec, p.Seed, "table1/scale", func(seed uint64) (*TableIResult, error) {
		return tableIScale(p, seed)
	})
	if err != nil {
		return nil, err
	}
	out := rep[0]
	out.Features = features
	if p.Exec.RepCount() > 1 {
		out.EventsPerSec = runner.MeanBy(rep, func(r *TableIResult) float64 { return r.EventsPerSec })
		out.WallSeconds = runner.MeanBy(rep, func(r *TableIResult) float64 { return r.WallSeconds })
	}
	return out, nil
}

func tableIScale(p TableIParams, seed uint64) (*TableIResult, error) {
	prof := power.FourCoreServer()
	sc := server.DefaultConfig(prof)
	cfg := core.Config{
		Seed:         seed,
		Check:        p.Check,
		Faults:       p.Faults,
		Servers:      p.ScaleServers,
		ServerConfig: sc,
		Placer:       sched.RoundRobin{},
		Arrivals: workload.Poisson{
			Rate: workload.UtilizationRate(0.2, p.ScaleServers, prof.Cores, 0.005)},
		Factory: workload.SingleTask{Service: workload.WebSearchService()},
		MaxJobs: p.ScaleJobs,
	}
	start := time.Now() //simlint:allow determinism wall-clock timing of the Table I row, not model state
	dc, err := core.Build(cfg)
	if err != nil {
		return nil, err
	}
	res, err := dc.Run()
	if err != nil {
		return nil, err
	}
	wall := time.Since(start).Seconds() //simlint:allow determinism wall-clock timing of the Table I row, not model state
	out := &TableIResult{
		Servers:       p.ScaleServers,
		JobsCompleted: res.JobsCompleted,
		WallSeconds:   wall,
		SimSeconds:    res.End.Seconds(),
	}
	if wall > 0 {
		out.EventsPerSec = float64(dc.Eng.Dispatched) / wall
	}
	return out, nil
}

// Summary renders the scalability verdict.
func (r *TableIResult) Summary() string {
	return fmt.Sprintf("scalability: %d servers, %d jobs, %.0f events/s, %.2fs wall for %.2fs simulated",
		r.Servers, r.JobsCompleted, r.EventsPerSec, r.WallSeconds, r.SimSeconds)
}
