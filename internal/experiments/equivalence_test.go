package experiments

import (
	"runtime"
	"strconv"
	"strings"
	"testing"

	"holdcsim/internal/runner"
)

// TestWorkerCountEquivalence is the "parallel ≡ serial" contract for the
// campaign runner (DESIGN.md Sec. 5): every Quick experiment's full
// rendered output — series, summaries, optima, CDFs — must be
// byte-identical at worker counts 1, 2 and GOMAXPROCS. Run under -race
// in CI, this also shakes out any shared mutable state between runs.
func TestWorkerCountEquivalence(t *testing.T) {
	counts := []int{1, 2, runtime.GOMAXPROCS(0)}
	for _, c := range goldenCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			var want string
			for _, w := range counts {
				got, err := c.run(runner.Options{Workers: w}, false, nil)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if want == "" {
					want = got
					continue
				}
				if got != want {
					line := 1
					for i := 0; i < len(got) && i < len(want); i++ {
						if got[i] != want[i] {
							break
						}
						if got[i] == '\n' {
							line++
						}
					}
					t.Fatalf("workers=%d output differs from workers=1 near line %d", w, line)
				}
			}
		})
	}
}

// TestFig5Replications exercises first-class replications end to end on
// the flagship sweep: the series gains mean/stddev/CI columns, the
// stddev is finite and non-negative, and replication 0 keeps the base
// seed so the mean stays anchored to the historical single-run value.
func TestFig5Replications(t *testing.T) {
	p := QuickFig5()
	// Trim the grid: replications triple the work and the statistical
	// machinery is identical at every point.
	p.Utilizations = p.Utilizations[:1]
	p.Workloads = p.Workloads[:1]

	base, err := Fig5(p)
	if err != nil {
		t.Fatal(err)
	}

	p.Exec = runner.Options{Reps: 3}
	r, err := Fig5(p)
	if err != nil {
		t.Fatal(err)
	}
	h := strings.Join(r.Series.Header, "\t")
	for _, col := range []string{"energy_std_J", "energy_ci95_J", "reps"} {
		if !strings.Contains(h, col) {
			t.Fatalf("header %q missing %q", h, col)
		}
	}
	if len(r.Points) != len(base.Points) {
		t.Fatalf("points = %d, want %d", len(r.Points), len(base.Points))
	}
	stdCol := len(r.Series.Header) - 3
	for i, row := range r.Series.Rows {
		if len(row) != len(r.Series.Header) {
			t.Fatalf("row %d has %d cells for %d columns", i, len(row), len(r.Series.Header))
		}
		std, err := strconv.ParseFloat(row[stdCol], 64)
		if err != nil {
			t.Fatalf("row %d std cell %q: %v", i, row[stdCol], err)
		}
		if std < 0 {
			t.Errorf("row %d: negative stddev %v", i, std)
		}
		if reps := row[len(row)-1]; reps != "3" {
			t.Errorf("row %d: reps column = %q", i, reps)
		}
	}
	// Mean energy must stay in the neighbourhood of the single-run
	// value: same model, three seeds. 25% tolerates seed-to-seed noise
	// at quick scale while catching aggregation mistakes (sums instead
	// of means, dropped replications).
	for i, pt := range r.Points {
		b := base.Points[i].EnergyJ
		if pt.EnergyJ < 0.75*b || pt.EnergyJ > 1.25*b {
			t.Errorf("point %d: mean energy %v strayed from base %v", i, pt.EnergyJ, b)
		}
	}
}

// TestReplicationSeedsIndependent checks that replication expansion
// derives distinct streams: with a real stochastic model, three seed
// variants almost surely give three distinct energies at some point.
func TestReplicationSeedsIndependent(t *testing.T) {
	p := QuickFig8()
	p.Utilizations = p.Utilizations[:1]
	p.Exec = runner.Options{Reps: 3}
	r, err := Fig8(p)
	if err != nil {
		t.Fatal(err)
	}
	// With distinct rep seeds the active-residency stddev cannot be
	// exactly zero (that would mean all reps saw identical draws).
	stdCol := len(r.Series.Header) - 3
	allZero := true
	for _, row := range r.Series.Rows {
		if row[stdCol] != "0" {
			allZero = false
		}
	}
	if allZero {
		t.Error("every replication produced identical residencies; rep seeds are not independent")
	}
}
