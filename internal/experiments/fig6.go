package experiments

import (
	"holdcsim/internal/core"
	"holdcsim/internal/dist"
	"holdcsim/internal/power"
	"holdcsim/internal/sched"
	"holdcsim/internal/server"
	"holdcsim/internal/simtime"
	"holdcsim/internal/workload"
)

// Fig6Params parameterizes the Sec. IV-B dual delay-timer study: energy
// reduction relative to the Active-Idle baseline for two workloads
// ("Google" = web search, "Apache" = web serving) at 20 and 100 servers
// and utilizations 10/30/60%. The dual policy keeps a small high-τ pool
// warm and lets the low-τ majority sleep quickly.
type Fig6Params struct {
	Seed         uint64
	FarmSizes    []int
	Cores        int
	Utilizations []float64
	Workloads    []Fig6Workload
	// HighFrac is the fraction of servers in the high-τ pool; zero
	// sizes the pool to the utilization plus headroom (the paper
	// explored pool sizes per setting and reports the best).
	HighFrac              float64
	TauHighSec, TauLowSec float64
	// SingleTauSec is the single-timer comparator (the policy Fig. 5
	// tunes); the paper reports up to 21% additional saving over it.
	SingleTauSec float64
	DurationSec  float64
}

// Fig6Workload names one service profile.
type Fig6Workload struct {
	Name    string
	Service dist.Sampler
}

// DefaultFig6 mirrors the paper's setup.
func DefaultFig6() Fig6Params {
	return Fig6Params{
		Seed:         13,
		FarmSizes:    []int{20, 100},
		Cores:        4,
		Utilizations: []float64{0.1, 0.3, 0.6},
		Workloads: []Fig6Workload{
			{Name: "Google", Service: workload.WebSearchService()},
			{Name: "Apache", Service: workload.WebServingService()},
		},
		HighFrac:     0, // sized per utilization
		TauHighSec:   4.0,
		TauLowSec:    0.5,
		SingleTauSec: 0.4,
		DurationSec:  60,
	}
}

// QuickFig6 shrinks the grid for tests and benches.
func QuickFig6() Fig6Params {
	p := DefaultFig6()
	p.FarmSizes = []int{20}
	p.Utilizations = []float64{0.1, 0.3}
	p.DurationSec = 20
	return p
}

// Fig6Point is one grid cell.
type Fig6Point struct {
	Workload      string
	Servers       int
	Rho           float64
	BaselineJ     float64 // Active-Idle
	SingleTimerJ  float64
	DualTimerJ    float64
	ReductionPct  float64 // dual vs Active-Idle
	VsSinglePct   float64 // dual vs single timer
	DualP95LatS   float64
	SingleP95LatS float64
}

// Fig6Result carries the grid.
type Fig6Result struct {
	Points []Fig6Point
	Series *Table
}

// Fig6 runs the dual-timer comparison.
func Fig6(p Fig6Params) (*Fig6Result, error) {
	out := &Fig6Result{Series: &Table{
		Title: "Fig. 6: energy reduction with dual delay timers vs Active-Idle",
		Header: []string{"workload", "servers", "rho", "baseline_J", "single_J",
			"dual_J", "reduction_pct", "vs_single_pct", "dual_p95_s", "single_p95_s"},
	}}
	for _, wl := range p.Workloads {
		for _, n := range p.FarmSizes {
			for _, rho := range p.Utilizations {
				base, _, err := fig6Run(p, wl, n, rho, policyActiveIdle)
				if err != nil {
					return nil, err
				}
				single, sP95, err := fig6Run(p, wl, n, rho, policySingleTimer)
				if err != nil {
					return nil, err
				}
				dual, dP95, err := fig6Run(p, wl, n, rho, policyDualTimer)
				if err != nil {
					return nil, err
				}
				pt := Fig6Point{
					Workload: wl.Name, Servers: n, Rho: rho,
					BaselineJ: base, SingleTimerJ: single, DualTimerJ: dual,
					ReductionPct:  100 * (base - dual) / base,
					VsSinglePct:   100 * (single - dual) / single,
					DualP95LatS:   dP95,
					SingleP95LatS: sP95,
				}
				out.Points = append(out.Points, pt)
				out.Series.Addf(wl.Name, n, rho, base, single, dual,
					pt.ReductionPct, pt.VsSinglePct, dP95, sP95)
			}
		}
	}
	return out, nil
}

type fig6Policy int

const (
	policyActiveIdle fig6Policy = iota
	policySingleTimer
	policyDualTimer
)

func fig6Run(p Fig6Params, wl Fig6Workload, n int, rho float64, pol fig6Policy) (energyJ, p95 float64, err error) {
	sc := server.DefaultConfig(power.FourCoreServer())
	cfg := core.Config{
		Seed:         p.Seed,
		Servers:      n,
		ServerConfig: sc,
		Arrivals: workload.Poisson{
			Rate: workload.UtilizationRate(rho, n, p.Cores, wl.Service.Mean())},
		Factory:  workload.SingleTask{Service: wl.Service},
		Duration: simtime.FromSeconds(p.DurationSec),
	}
	switch pol {
	case policyActiveIdle:
		cfg.Placer = sched.PackFirst{}
	case policySingleTimer:
		cfg.Placer = sched.PackFirst{}
		cfg.ServerConfig.DelayTimerEnabled = true
		cfg.ServerConfig.DelayTimer = simtime.FromSeconds(p.SingleTauSec)
	case policyDualTimer:
		if p.HighFrac > 0 {
			high := int(float64(n)*p.HighFrac + 0.5)
			if high < 1 {
				high = 1
			}
			d := sched.NewDualTimer(high,
				simtime.FromSeconds(p.TauHighSec), simtime.FromSeconds(p.TauLowSec))
			cfg.Placer = d
			cfg.Controller = d
			break
		}
		// The paper explored "various settings including high τ and low
		// τ values, and number of servers associated [with] each" and
		// reports the best; sweep warm-pool sizes and keep the minimum.
		bestE, bestP95 := -1.0, 0.0
		for _, headroom := range []float64{0.10, 0.20, 0.35} {
			frac := rho + headroom
			if frac > 0.95 {
				frac = 0.95
			}
			high := int(float64(n)*frac + 0.5)
			if high < 1 {
				high = 1
			}
			sweep := cfg // copy; fresh policy per run
			d := sched.NewDualTimer(high,
				simtime.FromSeconds(p.TauHighSec), simtime.FromSeconds(p.TauLowSec))
			sweep.Placer = d
			sweep.Controller = d
			dc, err := core.Build(sweep)
			if err != nil {
				return 0, 0, err
			}
			res, err := dc.Run()
			if err != nil {
				return 0, 0, err
			}
			if bestE < 0 || res.ServerEnergyJ < bestE {
				bestE = res.ServerEnergyJ
				bestP95 = res.Latency.Percentile(95)
			}
		}
		return bestE, bestP95, nil
	}
	dc, err := core.Build(cfg)
	if err != nil {
		return 0, 0, err
	}
	res, err := dc.Run()
	if err != nil {
		return 0, 0, err
	}
	return res.ServerEnergyJ, res.Latency.Percentile(95), nil
}
