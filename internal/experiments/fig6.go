package experiments

import (
	"fmt"

	"holdcsim/internal/core"
	"holdcsim/internal/dist"
	"holdcsim/internal/fault"
	"holdcsim/internal/power"
	"holdcsim/internal/runner"
	"holdcsim/internal/sched"
	"holdcsim/internal/server"
	"holdcsim/internal/simtime"
	"holdcsim/internal/workload"
)

// Fig6Params parameterizes the Sec. IV-B dual delay-timer study: energy
// reduction relative to the Active-Idle baseline for two workloads
// ("Google" = web search, "Apache" = web serving) at 20 and 100 servers
// and utilizations 10/30/60%. The dual policy keeps a small high-τ pool
// warm and lets the low-τ majority sleep quickly.
type Fig6Params struct {
	Seed         uint64
	FarmSizes    []int
	Cores        int
	Utilizations []float64
	Workloads    []Fig6Workload
	// HighFrac is the fraction of servers in the high-τ pool; zero
	// sizes the pool to the utilization plus headroom (the paper
	// explored pool sizes per setting and reports the best).
	HighFrac              float64
	TauHighSec, TauLowSec float64
	// SingleTauSec is the single-timer comparator (the policy Fig. 5
	// tunes); the paper reports up to 21% additional saving over it.
	SingleTauSec float64
	DurationSec  float64
	// Exec controls campaign parallelism and replications.
	Exec runner.Options
	// Check enables runtime invariant checking on every simulation
	// (internal/invariant): a violated conservation law fails the run.
	Check bool
	// Faults optionally attaches the fault injector (internal/fault)
	// to every simulation in the experiment. Nil leaves the fault
	// machinery unwired; a non-nil empty spec attaches an empty
	// timeline (the differential fault suite's probe).
	Faults *fault.Spec
}

// Fig6Workload names one service profile.
type Fig6Workload struct {
	Name    string
	Service dist.Sampler
}

// DefaultFig6 mirrors the paper's setup.
func DefaultFig6() Fig6Params {
	return Fig6Params{
		Seed:         13,
		FarmSizes:    []int{20, 100},
		Cores:        4,
		Utilizations: []float64{0.1, 0.3, 0.6},
		Workloads: []Fig6Workload{
			{Name: "Google", Service: workload.WebSearchService()},
			{Name: "Apache", Service: workload.WebServingService()},
		},
		HighFrac:     0, // sized per utilization
		TauHighSec:   4.0,
		TauLowSec:    0.5,
		SingleTauSec: 0.4,
		DurationSec:  60,
	}
}

// QuickFig6 shrinks the grid for tests and benches.
func QuickFig6() Fig6Params {
	p := DefaultFig6()
	p.FarmSizes = []int{20}
	p.Utilizations = []float64{0.1, 0.3}
	p.DurationSec = 20
	return p
}

// Fig6Point is one grid cell.
type Fig6Point struct {
	Workload      string
	Servers       int
	Rho           float64
	BaselineJ     float64 // Active-Idle
	SingleTimerJ  float64
	DualTimerJ    float64
	ReductionPct  float64 // dual vs Active-Idle
	VsSinglePct   float64 // dual vs single timer
	DualP95LatS   float64
	SingleP95LatS float64
}

// Fig6Result carries the grid.
type Fig6Result struct {
	Points []Fig6Point
	Series *Table
}

// fig6Sample is one policy run's outcome.
type fig6Sample struct {
	EnergyJ float64
	P95LatS float64
}

// Fig6 runs the dual-timer comparison. Each (workload, farm, rho,
// policy) simulation is an independent runner.Run; with Exec.Reps > 1
// the energies become across-replication means and the series gains
// dual-energy stddev/CI95 and replication-count columns.
func Fig6(p Fig6Params) (*Fig6Result, error) {
	header := []string{"workload", "servers", "rho", "baseline_J", "single_J",
		"dual_J", "reduction_pct", "vs_single_pct", "dual_p95_s", "single_p95_s"}
	nrep := p.Exec.RepCount()
	if nrep > 1 {
		header = append(header, "dual_std_J", "dual_ci95_J", "reps")
	}
	out := &Fig6Result{Series: &Table{
		Title:  "Fig. 6: energy reduction with dual delay timers vs Active-Idle",
		Header: header,
	}}

	policies := []fig6Policy{policyActiveIdle, policySingleTimer, policyDualTimer}
	var runs []runner.Run[fig6Sample]
	for _, wl := range p.Workloads {
		for _, n := range p.FarmSizes {
			for _, rho := range p.Utilizations {
				for _, pol := range policies {
					wl, n, rho, pol := wl, n, rho, pol
					// The Key excludes the policy so replication i of
					// all three policies shares one arrival stream
					// (common random numbers): the reduction columns
					// compare paired runs.
					runs = append(runs, runner.Run[fig6Sample]{
						Key: fmt.Sprintf("fig6/%s/%d/%g", wl.Name, n, rho),
						Do: func(seed uint64) (fig6Sample, error) {
							e, p95, err := fig6Run(p, wl, n, rho, pol, seed)
							return fig6Sample{EnergyJ: e, P95LatS: p95}, err
						},
					})
				}
			}
		}
	}
	reps, err := runner.MapReps(p.Exec, p.Seed, runs)
	if err != nil {
		return nil, err
	}

	energy := func(s fig6Sample) float64 { return s.EnergyJ }
	p95 := func(s fig6Sample) float64 { return s.P95LatS }
	idx := 0
	for _, wl := range p.Workloads {
		for _, n := range p.FarmSizes {
			for _, rho := range p.Utilizations {
				baseRep, singleRep, dualRep := reps[idx], reps[idx+1], reps[idx+2]
				idx += len(policies)
				base := runner.MeanBy(baseRep, energy)
				single := runner.MeanBy(singleRep, energy)
				dual := runner.SummarizeBy(dualRep, energy)
				pt := Fig6Point{
					Workload: wl.Name, Servers: n, Rho: rho,
					BaselineJ: base, SingleTimerJ: single, DualTimerJ: dual.Mean,
					ReductionPct:  100 * (base - dual.Mean) / base,
					VsSinglePct:   100 * (single - dual.Mean) / single,
					DualP95LatS:   runner.MeanBy(dualRep, p95),
					SingleP95LatS: runner.MeanBy(singleRep, p95),
				}
				out.Points = append(out.Points, pt)
				row := []any{wl.Name, n, rho, base, single, dual.Mean,
					pt.ReductionPct, pt.VsSinglePct, pt.DualP95LatS, pt.SingleP95LatS}
				if nrep > 1 {
					row = append(row, dual.Std, dual.CI95, nrep)
				}
				out.Series.Addf(row...)
			}
		}
	}
	return out, nil
}

type fig6Policy int

const (
	policyActiveIdle fig6Policy = iota
	policySingleTimer
	policyDualTimer
)

func fig6Run(p Fig6Params, wl Fig6Workload, n int, rho float64, pol fig6Policy, seed uint64) (energyJ, p95 float64, err error) {
	sc := server.DefaultConfig(power.FourCoreServer())
	cfg := core.Config{
		Seed:         seed,
		Check:        p.Check,
		Faults:       p.Faults,
		Servers:      n,
		ServerConfig: sc,
		Arrivals: workload.Poisson{
			Rate: workload.UtilizationRate(rho, n, p.Cores, wl.Service.Mean())},
		Factory:  workload.SingleTask{Service: wl.Service},
		Duration: simtime.FromSeconds(p.DurationSec),
	}
	switch pol {
	case policyActiveIdle:
		cfg.Placer = sched.PackFirst{}
	case policySingleTimer:
		cfg.Placer = sched.PackFirst{}
		cfg.ServerConfig.DelayTimerEnabled = true
		cfg.ServerConfig.DelayTimer = simtime.FromSeconds(p.SingleTauSec)
	case policyDualTimer:
		if p.HighFrac > 0 {
			high := int(float64(n)*p.HighFrac + 0.5)
			if high < 1 {
				high = 1
			}
			d := sched.NewDualTimer(high,
				simtime.FromSeconds(p.TauHighSec), simtime.FromSeconds(p.TauLowSec))
			cfg.Placer = d
			cfg.Controller = d
			break
		}
		// The paper explored "various settings including high τ and low
		// τ values, and number of servers associated [with] each" and
		// reports the best; sweep warm-pool sizes and keep the minimum.
		bestE, bestP95 := -1.0, 0.0
		for _, headroom := range []float64{0.10, 0.20, 0.35} {
			frac := rho + headroom
			if frac > 0.95 {
				frac = 0.95
			}
			high := int(float64(n)*frac + 0.5)
			if high < 1 {
				high = 1
			}
			sweep := cfg // copy; fresh policy per run
			d := sched.NewDualTimer(high,
				simtime.FromSeconds(p.TauHighSec), simtime.FromSeconds(p.TauLowSec))
			sweep.Placer = d
			sweep.Controller = d
			dc, err := core.Build(sweep)
			if err != nil {
				return 0, 0, err
			}
			res, err := dc.Run()
			if err != nil {
				return 0, 0, err
			}
			if bestE < 0 || res.ServerEnergyJ < bestE {
				bestE = res.ServerEnergyJ
				bestP95 = res.Latency.Percentile(95)
			}
		}
		return bestE, bestP95, nil
	}
	dc, err := core.Build(cfg)
	if err != nil {
		return 0, 0, err
	}
	res, err := dc.Run()
	if err != nil {
		return 0, 0, err
	}
	return res.ServerEnergyJ, res.Latency.Percentile(95), nil
}
