package experiments

import (
	"os"
	"testing"

	"holdcsim/internal/runner"
)

// TestInvariantCheckQuickPresets runs every Quick preset with runtime
// invariant checking enabled and requires (a) zero violations — no
// error from any run — and (b) byte-identical output to the committed
// golden files, proving the checker is observation-only: hooking every
// dispatch boundary must not perturb a single event, draw, or float.
func TestInvariantCheckQuickPresets(t *testing.T) {
	for _, c := range goldenCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			got, err := c.run(runner.Options{}, true, nil)
			if err != nil {
				t.Fatalf("invariant violation in %s: %v", c.name, err)
			}
			want, err := os.ReadFile(goldenPath(c.name))
			if err != nil {
				t.Fatalf("no golden file (regenerate with -update): %v", err)
			}
			if got != string(want) {
				t.Fatalf("%s: checked run diverged from golden output — the checker perturbed the simulation", c.name)
			}
		})
	}
}

// BenchmarkFig5Unchecked/BenchmarkFig5Checked measure the invariant
// checker's wall-clock overhead on the flagship sweep (acceptance
// budget: <= 2% when enabled; compare the two ns/op figures).
func BenchmarkFig5Unchecked(b *testing.B) { benchFig5(b, false) }

// BenchmarkFig5Checked is the checked counterpart of BenchmarkFig5Unchecked.
func BenchmarkFig5Checked(b *testing.B) { benchFig5(b, true) }

func benchFig5(b *testing.B, check bool) {
	p := QuickFig5()
	p.Exec = runner.Options{Workers: 1}
	p.Check = check
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Fig5(p); err != nil {
			b.Fatal(err)
		}
	}
}
