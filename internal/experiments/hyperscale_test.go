package experiments

import (
	"testing"

	"holdcsim/internal/topology"
)

func TestQuickHyperscale(t *testing.T) {
	p := QuickHyperscale()
	p.Check = true // bounded scans + farm aggregates must stay clean
	r, err := Hyperscale(p)
	if err != nil {
		t.Fatal(err)
	}
	if want := (topology.FatTree{K: p.K}).NumHosts(); r.Servers != want {
		t.Errorf("servers = %d, want %d", r.Servers, want)
	}
	if want := p.K * p.K / 2; r.Racks != want {
		t.Errorf("racks = %d, want %d", r.Racks, want)
	}
	if r.JobsCompleted != p.Jobs {
		t.Errorf("completed %d of %d jobs", r.JobsCompleted, p.Jobs)
	}
	if r.EventsPerSec <= 0 {
		t.Error("no event throughput measured")
	}
	if r.PeakRSSBytes <= 0 {
		t.Error("no peak RSS measured")
	}
	if r.Summary() == "" {
		t.Error("empty summary")
	}
}

func TestHyperscaleRejectsOddArity(t *testing.T) {
	for _, k := range []int{0, 1, 3, -4} {
		if _, err := Hyperscale(HyperscaleParams{Seed: 1, K: k, Jobs: 1, Util: 0.1}); err == nil {
			t.Errorf("arity %d accepted", k)
		}
	}
}

func TestRackShardsCoverAllHosts(t *testing.T) {
	shardOf, racks, err := rackShards(8) // 128 hosts, 32 racks of 4
	if err != nil {
		t.Fatal(err)
	}
	if len(shardOf) != 128 || racks != 32 {
		t.Fatalf("shardOf len %d racks %d, want 128/32", len(shardOf), racks)
	}
	perRack := make([]int, racks)
	for h, r := range shardOf {
		if r < 0 || int(r) >= racks {
			t.Fatalf("host %d in rack %d, out of range", h, r)
		}
		perRack[r]++
	}
	for r, n := range perRack {
		if n != 4 {
			t.Errorf("rack %d holds %d hosts, want 4", r, n)
		}
	}
}
