// Package experiments regenerates every table and figure of the paper's
// evaluation (Secs. IV and V). Each experiment is a pure function of its
// parameter struct; Default() presets match the paper's setup and
// Quick() presets shrink durations for tests and benchmarks while
// preserving each experiment's qualitative shape.
//
// Index (see DESIGN.md for the full mapping):
//
//	TableI  – capability matrix + >20K-server scalability check
//	Fig4    – dynamic resource provisioning time series (Sec. IV-A)
//	Fig5    – single delay-timer energy sweep (Sec. IV-B)
//	Fig6    – dual delay-timer energy reduction (Sec. IV-B)
//	Fig8    – adaptive-pool state residency vs utilization (Sec. IV-C)
//	Fig9    – per-server energy breakdown, timer vs adaptive (Sec. IV-C)
//	Fig11   – joint server/network optimization (Sec. IV-D)
//	Fig12   – server power validation vs reference model (Sec. V-A)
//	Fig13   – switch power validation vs reference model (Sec. V-B)
package experiments

import (
	"fmt"
	"strings"
)

// Table is a generic result grid: a header row plus data rows, printable
// as the tab-separated series the paper's plots are drawn from.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Add appends a row of stringified cells.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Addf appends a row formatted from values (numbers use %.6g).
func (t *Table) Addf(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.6g", x)
		case string:
			cells[i] = x
		default:
			cells[i] = fmt.Sprint(v)
		}
	}
	t.Add(cells...)
}

// String renders the table as TSV with a title and header line.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Title)
	b.WriteString(strings.Join(t.Header, "\t"))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(strings.Join(r, "\t"))
		b.WriteByte('\n')
	}
	return b.String()
}
