package experiments

import (
	"fmt"

	"holdcsim/internal/core"
	"holdcsim/internal/dist"
	"holdcsim/internal/fault"
	"holdcsim/internal/power"
	"holdcsim/internal/runner"
	"holdcsim/internal/sched"
	"holdcsim/internal/server"
	"holdcsim/internal/simtime"
	"holdcsim/internal/workload"
)

// Fig5Params parameterizes the Sec. IV-B single delay-timer exploration:
// for each workload and utilization, sweep τ and record farm energy. The
// paper's finding is a U-shaped curve whose optimum is consistent across
// utilizations for a given workload (0.4 s web search, 4.8 s web
// serving on their testbed).
type Fig5Params struct {
	Seed         uint64
	Servers      int
	Cores        int
	Utilizations []float64
	// TausSec is the sweep grid; per-workload grids scale it by the
	// workload's TauScale.
	Workloads   []Fig5Workload
	DurationSec float64
	// Exec controls campaign parallelism and replications; the zero
	// value runs every sweep point on GOMAXPROCS workers once.
	Exec runner.Options
	// Check enables runtime invariant checking on every simulation
	// (internal/invariant): a violated conservation law fails the run.
	Check bool
	// Faults optionally attaches the fault injector (internal/fault)
	// to every simulation in the experiment. Nil leaves the fault
	// machinery unwired; a non-nil empty spec attaches an empty
	// timeline (the differential fault suite's probe).
	Faults *fault.Spec
}

// Fig5Workload names one service-time profile and its τ grid.
type Fig5Workload struct {
	Name    string
	Service dist.Sampler
	TausSec []float64
}

// DefaultFig5 mirrors the paper: 50 four-core servers; web search (5 ms)
// sweeping τ ∈ 0–5 s; web serving (120 ms) sweeping τ ∈ 0–20 s;
// utilizations 10/30/60%.
func DefaultFig5() Fig5Params {
	return Fig5Params{
		Seed:         11,
		Servers:      50,
		Cores:        4,
		Utilizations: []float64{0.1, 0.3, 0.6},
		Workloads: []Fig5Workload{
			{Name: "web-search", Service: workload.WebSearchService(),
				TausSec: []float64{0, 0.1, 0.2, 0.4, 0.8, 1.5, 2.5, 4, 5}},
			{Name: "web-serving", Service: workload.WebServingService(),
				TausSec: []float64{0, 0.5, 1, 2, 4.8, 8, 12, 16, 20}},
		},
		DurationSec: 60,
	}
}

// QuickFig5 shrinks the sweep for tests and benches.
func QuickFig5() Fig5Params {
	p := DefaultFig5()
	p.Servers = 10
	p.Utilizations = []float64{0.1, 0.3}
	p.Workloads = []Fig5Workload{
		{Name: "web-search", Service: workload.WebSearchService(),
			TausSec: []float64{0, 0.4, 2.5, 5}},
		{Name: "web-serving", Service: workload.WebServingService(),
			TausSec: []float64{0, 1, 4.8, 20}},
	}
	p.DurationSec = 20
	return p
}

// Fig5Point is one sweep sample.
type Fig5Point struct {
	Workload string
	Rho      float64
	TauSec   float64
	EnergyJ  float64
	MeanLatS float64
	P95LatS  float64
	// Completion is completed/generated jobs within the horizon. A
	// pathological τ (constant suspend flapping) throttles the farm and
	// defers work past the window; such points are excluded from the
	// optimum search since their energy is not for the same work.
	Completion float64
}

// Fig5Result carries the full sweep plus per-(workload, rho) optima.
type Fig5Result struct {
	Points []Fig5Point
	Series *Table
	// OptimalTau maps "workload/rho" to the τ minimizing energy.
	OptimalTau map[string]float64
}

// Fig5 runs the delay-timer sweep. Every (workload, rho, τ) point is an
// independent runner.Run, so the campaign parallelizes across Exec
// workers with output identical to the serial sweep. With Exec.Reps > 1
// each point's metrics become across-replication means and the series
// gains energy stddev/CI95 and replication-count columns — the error
// bars the paper lacks.
func Fig5(p Fig5Params) (*Fig5Result, error) {
	header := []string{"workload", "rho", "tau_s", "energy_J", "mean_lat_s", "p95_lat_s", "completion"}
	nrep := p.Exec.RepCount()
	if nrep > 1 {
		header = append(header, "energy_std_J", "energy_ci95_J", "reps")
	}
	out := &Fig5Result{
		Series: &Table{
			Title:  "Fig. 5: energy vs single delay timer value",
			Header: header,
		},
		OptimalTau: make(map[string]float64),
	}

	var runs []runner.Run[Fig5Point]
	for _, wl := range p.Workloads {
		for _, rho := range p.Utilizations {
			for _, tau := range wl.TausSec {
				wl, rho, tau := wl, rho, tau
				// The Key excludes τ so replication i of every τ in one
				// (workload, rho) group shares an arrival stream
				// (common random numbers): the optimum search compares
				// paired sweeps, not seed noise.
				runs = append(runs, runner.Run[Fig5Point]{
					Key: fmt.Sprintf("fig5/%s/%g", wl.Name, rho),
					Do: func(seed uint64) (Fig5Point, error) {
						return fig5Point(p, wl, rho, tau, seed)
					},
				})
			}
		}
	}
	reps, err := runner.MapReps(p.Exec, p.Seed, runs)
	if err != nil {
		return nil, err
	}

	idx := 0
	for _, wl := range p.Workloads {
		for _, rho := range p.Utilizations {
			bestTau, bestE := 0.0, -1.0
			for _, tau := range wl.TausSec {
				rep := reps[idx]
				idx++
				pt := rep[0]
				energy := runner.SummarizeBy(rep, func(q Fig5Point) float64 { return q.EnergyJ })
				if nrep > 1 {
					pt.EnergyJ = energy.Mean
					pt.MeanLatS = runner.MeanBy(rep, func(q Fig5Point) float64 { return q.MeanLatS })
					pt.P95LatS = runner.MeanBy(rep, func(q Fig5Point) float64 { return q.P95LatS })
					pt.Completion = runner.MeanBy(rep, func(q Fig5Point) float64 { return q.Completion })
				}
				out.Points = append(out.Points, pt)
				row := []any{wl.Name, rho, tau, pt.EnergyJ, pt.MeanLatS,
					pt.P95LatS, pt.Completion}
				if nrep > 1 {
					row = append(row, energy.Std, energy.CI95, nrep)
				}
				out.Series.Addf(row...)
				if pt.Completion >= 0.99 && (bestE < 0 || pt.EnergyJ < bestE) {
					bestE = pt.EnergyJ
					bestTau = tau
				}
			}
			out.OptimalTau[fmt.Sprintf("%s/%.2g", wl.Name, rho)] = bestTau
		}
	}
	return out, nil
}

func fig5Point(p Fig5Params, wl Fig5Workload, rho, tau float64, seed uint64) (Fig5Point, error) {
	sc := server.DefaultConfig(power.FourCoreServer())
	sc.DelayTimerEnabled = true
	sc.DelayTimer = simtime.FromSeconds(tau)
	rate := workload.UtilizationRate(rho, p.Servers, p.Cores, wl.Service.Mean())
	cfg := core.Config{
		Seed:         seed,
		Check:        p.Check,
		Faults:       p.Faults,
		Servers:      p.Servers,
		ServerConfig: sc,
		Placer:       sched.PackFirst{},
		Arrivals:     workload.Poisson{Rate: rate},
		Factory:      workload.SingleTask{Service: wl.Service},
		Duration:     simtime.FromSeconds(p.DurationSec),
	}
	dc, err := core.Build(cfg)
	if err != nil {
		return Fig5Point{}, err
	}
	res, err := dc.Run()
	if err != nil {
		return Fig5Point{}, err
	}
	completion := 1.0
	if res.JobsGenerated > 0 {
		completion = float64(res.JobsCompleted) / float64(res.JobsGenerated)
	}
	return Fig5Point{
		Workload: wl.Name, Rho: rho, TauSec: tau,
		EnergyJ: res.ServerEnergyJ, MeanLatS: res.Latency.Mean(),
		P95LatS: res.Latency.Percentile(95), Completion: completion,
	}, nil
}
