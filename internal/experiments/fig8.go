package experiments

import (
	"fmt"

	"holdcsim/internal/core"
	"holdcsim/internal/fault"
	"holdcsim/internal/power"
	"holdcsim/internal/runner"
	"holdcsim/internal/sched"
	"holdcsim/internal/server"
	"holdcsim/internal/simtime"
	"holdcsim/internal/workload"
)

// Fig8Params parameterizes the Sec. IV-C energy-latency optimization
// study: a 10-server × 10-core Xeon E5-2680 farm under the workload
// adaptive dual-pool framework (WASP). Active-pool servers use only
// shallow sleep (package C6); sleep-pool servers transition through
// package C6 into suspend-to-RAM after τ. The figure reports each
// utilization's mean state residency across the five states.
type Fig8Params struct {
	Seed         uint64
	Servers      int
	Utilizations []float64
	Workloads    []Fig6Workload // reuse the named-service shape
	TWakeup      float64
	TSleep       float64
	TauSec       float64
	DurationSec  float64
	// Exec controls campaign parallelism and replications.
	Exec runner.Options
	// Check enables runtime invariant checking on every simulation
	// (internal/invariant): a violated conservation law fails the run.
	Check bool
	// Faults optionally attaches the fault injector (internal/fault)
	// to every simulation in the experiment. Nil leaves the fault
	// machinery unwired; a non-nil empty spec attaches an empty
	// timeline (the differential fault suite's probe).
	Faults *fault.Spec
}

// DefaultFig8 mirrors the paper's setup.
func DefaultFig8() Fig8Params {
	return Fig8Params{
		Seed:         17,
		Servers:      10,
		Utilizations: []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9},
		Workloads: []Fig6Workload{
			{Name: "web-search", Service: workload.WebSearchService()},
			{Name: "web-serving", Service: workload.WebServingService()},
		},
		// Thresholds in jobs per active server: the pool saturates its
		// members (~8 of 10 cores committed) before waking another, so
		// active residency tracks utilization and parked servers reach
		// system sleep — the Fig. 8 behaviour.
		TWakeup:     8.0,
		TSleep:      4.0,
		TauSec:      1.0,
		DurationSec: 60,
	}
}

// QuickFig8 shrinks the grid for tests and benches.
func QuickFig8() Fig8Params {
	p := DefaultFig8()
	p.Utilizations = []float64{0.1, 0.5, 0.9}
	p.Workloads = p.Workloads[:1]
	p.DurationSec = 20
	return p
}

// Fig8Row is one stacked bar: residency fractions at one utilization.
type Fig8Row struct {
	Workload  string
	Rho       float64
	Active    float64
	WakeUp    float64
	Idle      float64
	PkgC6     float64
	SysSleep  float64
	P90LatS   float64
	QoSTarget float64 // 2x mean service time (the paper's QoS setting)
}

// Fig8Result carries all rows.
type Fig8Result struct {
	Rows   []Fig8Row
	Series *Table
}

// Fig8 runs the residency study. Each (workload, rho) point is an
// independent runner.Run; with Exec.Reps > 1 every residency fraction is
// an across-replication mean and the series gains active-residency
// stddev/CI95 and replication-count columns.
func Fig8(p Fig8Params) (*Fig8Result, error) {
	header := []string{"workload", "rho", "active", "wakeup", "idle",
		"pkgc6", "syssleep", "p90_lat_s"}
	nrep := p.Exec.RepCount()
	if nrep > 1 {
		header = append(header, "active_std", "active_ci95", "reps")
	}
	out := &Fig8Result{Series: &Table{
		Title:  "Fig. 8: state residency under the energy-latency optimization framework",
		Header: header,
	}}

	var runs []runner.Run[Fig8Row]
	for _, wl := range p.Workloads {
		for _, rho := range p.Utilizations {
			wl, rho := wl, rho
			runs = append(runs, runner.Run[Fig8Row]{
				Key: fmt.Sprintf("fig8/%s/%g", wl.Name, rho),
				Do: func(seed uint64) (Fig8Row, error) {
					return fig8Point(p, wl, rho, seed)
				},
			})
		}
	}
	reps, err := runner.MapReps(p.Exec, p.Seed, runs)
	if err != nil {
		return nil, err
	}

	for _, rep := range reps {
		row := rep[0]
		active := runner.SummarizeBy(rep, func(r Fig8Row) float64 { return r.Active })
		if nrep > 1 {
			row.Active = active.Mean
			row.WakeUp = runner.MeanBy(rep, func(r Fig8Row) float64 { return r.WakeUp })
			row.Idle = runner.MeanBy(rep, func(r Fig8Row) float64 { return r.Idle })
			row.PkgC6 = runner.MeanBy(rep, func(r Fig8Row) float64 { return r.PkgC6 })
			row.SysSleep = runner.MeanBy(rep, func(r Fig8Row) float64 { return r.SysSleep })
			row.P90LatS = runner.MeanBy(rep, func(r Fig8Row) float64 { return r.P90LatS })
		}
		out.Rows = append(out.Rows, row)
		cells := []any{row.Workload, row.Rho, row.Active, row.WakeUp, row.Idle,
			row.PkgC6, row.SysSleep, row.P90LatS}
		if nrep > 1 {
			cells = append(cells, active.Std, active.CI95, nrep)
		}
		out.Series.Addf(cells...)
	}
	return out, nil
}

func fig8Point(p Fig8Params, wl Fig6Workload, rho float64, seed uint64) (Fig8Row, error) {
	prof := power.XeonE5_2680()
	sc := server.DefaultConfig(prof)
	pool := sched.NewAdaptivePool(p.TWakeup, p.TSleep, simtime.FromSeconds(p.TauSec))
	cfg := core.Config{
		Seed:         seed,
		Check:        p.Check,
		Faults:       p.Faults,
		Servers:      p.Servers,
		ServerConfig: sc,
		Placer:       pool,
		Controller:   pool,
		Arrivals: workload.Poisson{
			Rate: workload.UtilizationRate(rho, p.Servers, prof.Cores, wl.Service.Mean())},
		Factory:  workload.SingleTask{Service: wl.Service},
		Duration: simtime.FromSeconds(p.DurationSec),
	}
	dc, err := core.Build(cfg)
	if err != nil {
		return Fig8Row{}, err
	}
	res, err := dc.Run()
	if err != nil {
		return Fig8Row{}, err
	}
	return Fig8Row{
		Workload:  wl.Name,
		Rho:       rho,
		Active:    res.Residency[server.StateActive],
		WakeUp:    res.Residency[server.StateWakeUp],
		Idle:      res.Residency[server.StateIdle],
		PkgC6:     res.Residency[server.StatePkgC6],
		SysSleep:  res.Residency[server.StateSysSleep],
		P90LatS:   res.Latency.Percentile(90),
		QoSTarget: 2 * wl.Service.Mean(),
	}, nil
}
