package experiments

import (
	"fmt"
	"sort"

	"holdcsim/internal/core"
	"holdcsim/internal/fault"
	"holdcsim/internal/network"
	"holdcsim/internal/power"
	"holdcsim/internal/runner"
	"holdcsim/internal/sched"
	"holdcsim/internal/server"
	"holdcsim/internal/simtime"
	"holdcsim/internal/stats"
	"holdcsim/internal/topology"
	"holdcsim/internal/workload"
)

// Fig11Params parameterizes the Sec. IV-D joint server-network study:
// a k=4 fat-tree (Fig. 10) carrying DAG jobs whose inter-task edges are
// 100 MB flows, comparing the Server-Balanced baseline against the
// Server-Network-Aware policy at 30% and 60% utilization. The paper
// reports ~20% server and ~18% network power savings with a negligible
// latency CDF shift (Fig. 11b).
type Fig11Params struct {
	Seed         uint64
	FatTreeK     int
	Utilizations []float64
	Jobs         int64
	FlowBytes    int64
	// DAG shape: layered random graphs (Sec. III-C).
	Layers, MaxWidth, MaxDeps int
	MinTask, MaxTask          simtime.Time
	// TauSec is the server delay timer; SwitchSleepIdleSec the line-card
	// sleep threshold.
	TauSec             float64
	SwitchSleepIdleSec float64
	CDFPoints          int
	// Exec controls campaign parallelism and replications.
	Exec runner.Options
	// Check enables runtime invariant checking on every simulation
	// (internal/invariant): a violated conservation law fails the run.
	Check bool
	// Faults optionally attaches the fault injector (internal/fault)
	// to every simulation in the experiment. Nil leaves the fault
	// machinery unwired; a non-nil empty spec attaches an empty
	// timeline (the differential fault suite's probe).
	Faults *fault.Spec
}

// DefaultFig11 mirrors the paper: fat-tree k=4 (16 hosts), 2000 jobs,
// 100 MB flows. Task sizes are chosen so the CPU demand and the network
// demand reach the target utilization together (mean task 320 ms against
// an 80 ms flow serialization), keeping job latencies in the sub-second
// regime of Fig. 11b for both policies.
func DefaultFig11() Fig11Params {
	return Fig11Params{
		Seed:               23,
		FatTreeK:           4,
		Utilizations:       []float64{0.3, 0.6},
		Jobs:               2000,
		FlowBytes:          100e6,
		Layers:             3,
		MaxWidth:           3,
		MaxDeps:            1, // tree DAGs: one 100 MB input per task
		MinTask:            100 * simtime.Millisecond,
		MaxTask:            330 * simtime.Millisecond,
		TauSec:             1.0,
		SwitchSleepIdleSec: 0.5,
		CDFPoints:          60,
	}
}

// QuickFig11 shrinks the run for tests and benches. The job count still
// spans enough virtual time for suspend/sleep cycles to complete and
// differentiate the policies.
func QuickFig11() Fig11Params {
	p := DefaultFig11()
	p.Jobs = 500
	p.FlowBytes = 50e6
	// Halved flows need halved tasks to keep CPU and network demand
	// balanced at the same rho.
	p.MinTask = 50 * simtime.Millisecond
	p.MaxTask = 160 * simtime.Millisecond
	p.CDFPoints = 20
	return p
}

// Fig11Point is one (policy, utilization) cell of Fig. 11a.
type Fig11Point struct {
	Policy       string
	Rho          float64
	ServerPowerW float64
	SwitchPowerW float64
	MeanLatS     float64
	P95LatS      float64
	SwitchWakes  int64
	ServerWakes  int64
}

// Fig11Result carries the power comparison (11a) and latency CDFs (11b).
type Fig11Result struct {
	Points []Fig11Point
	Series *Table
	// CDFs maps "policy/rho" to the latency CDF.
	CDFs map[string][]stats.CDFPoint
	// Savings at each rho: positive means network-aware wins.
	ServerSavingPct  map[float64]float64
	NetworkSavingPct map[float64]float64
}

// fig11Sample is one (rho, policy) cell's outcome.
type fig11Sample struct {
	Point Fig11Point
	CDF   []stats.CDFPoint
}

// Fig11 runs the joint optimization comparison. Each (rho, policy) cell
// is an independent runner.Run. With Exec.Reps > 1 power and latency
// figures become across-replication means (wake counts and the latency
// CDF keep the base-seed replication) and the series gains server-power
// stddev/CI95 and replication-count columns.
func Fig11(p Fig11Params) (*Fig11Result, error) {
	header := []string{"policy", "rho", "server_W", "network_W",
		"mean_lat_s", "p95_lat_s", "switch_wakes", "server_wakes"}
	nrep := p.Exec.RepCount()
	if nrep > 1 {
		header = append(header, "server_std_W", "server_ci95_W", "reps")
	}
	out := &Fig11Result{
		Series: &Table{
			Title:  "Fig. 11a: server and network power, Server-Balanced vs Server-Network-Aware",
			Header: header,
		},
		CDFs:             make(map[string][]stats.CDFPoint),
		ServerSavingPct:  make(map[float64]float64),
		NetworkSavingPct: make(map[float64]float64),
	}

	var runs []runner.Run[fig11Sample]
	for _, rho := range p.Utilizations {
		for _, networkAware := range []bool{false, true} {
			rho, networkAware := rho, networkAware
			// The Key excludes the policy so replication i of both
			// policies sees the same job sequence (common random
			// numbers): the saving percentages compare paired runs.
			runs = append(runs, runner.Run[fig11Sample]{
				Key: fmt.Sprintf("fig11/%g", rho),
				Do: func(seed uint64) (fig11Sample, error) {
					pt, cdf, err := fig11Run(p, rho, networkAware, seed)
					return fig11Sample{Point: pt, CDF: cdf}, err
				},
			})
		}
	}
	reps, err := runner.MapReps(p.Exec, p.Seed, runs)
	if err != nil {
		return nil, err
	}

	idx := 0
	for _, rho := range p.Utilizations {
		var balanced, aware Fig11Point
		for _, networkAware := range []bool{false, true} {
			rep := reps[idx]
			idx++
			pt := rep[0].Point
			srvPow := runner.SummarizeBy(rep, func(s fig11Sample) float64 { return s.Point.ServerPowerW })
			if nrep > 1 {
				pt.ServerPowerW = srvPow.Mean
				pt.SwitchPowerW = runner.MeanBy(rep, func(s fig11Sample) float64 { return s.Point.SwitchPowerW })
				pt.MeanLatS = runner.MeanBy(rep, func(s fig11Sample) float64 { return s.Point.MeanLatS })
				pt.P95LatS = runner.MeanBy(rep, func(s fig11Sample) float64 { return s.Point.P95LatS })
			}
			out.Points = append(out.Points, pt)
			row := []any{pt.Policy, rho, pt.ServerPowerW, pt.SwitchPowerW,
				pt.MeanLatS, pt.P95LatS, pt.SwitchWakes, pt.ServerWakes}
			if nrep > 1 {
				row = append(row, srvPow.Std, srvPow.CI95, nrep)
			}
			out.Series.Addf(row...)
			out.CDFs[pt.Policy+"/"+formatRho(rho)] = rep[0].CDF
			if networkAware {
				aware = pt
			} else {
				balanced = pt
			}
		}
		out.ServerSavingPct[rho] = 100 * (balanced.ServerPowerW - aware.ServerPowerW) / balanced.ServerPowerW
		out.NetworkSavingPct[rho] = 100 * (balanced.SwitchPowerW - aware.SwitchPowerW) / balanced.SwitchPowerW
	}
	return out, nil
}

// CDFTable renders the Fig. 11b latency CDFs as one table, keyed by
// policy/rho in sorted order.
func (r *Fig11Result) CDFTable() *Table {
	cdf := &Table{
		Title:  "Fig. 11b: job response time CDF",
		Header: []string{"policy_rho", "latency_s", "F"},
	}
	keys := make([]string, 0, len(r.CDFs))
	for k := range r.CDFs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, pt := range r.CDFs[k] {
			cdf.Addf(k, pt.X, pt.F)
		}
	}
	return cdf
}

func formatRho(rho float64) string {
	if rho >= 0.995 {
		return "100%"
	}
	return string([]byte{byte('0' + int(rho*10)), '0', '%'})
}

func fig11Run(p Fig11Params, rho float64, networkAware bool, seed uint64) (Fig11Point, []stats.CDFPoint, error) {
	topo := topology.FatTree{K: p.FatTreeK, RateBps: 10e9}
	nHosts := topo.NumHosts()

	prof := power.FourCoreServer()
	sc := server.DefaultConfig(prof)
	sc.DelayTimerEnabled = true
	sc.DelayTimer = simtime.FromSeconds(p.TauSec)

	// Both resources are sized against rho: the arrival rate is derived
	// from the aggregate host bandwidth (the 100 MB flows make the
	// network the scarce resource), and the default task sizes are
	// chosen so CPU demand reaches the same rho at that rate. With
	// MaxDeps=1 the DAG is a tree: edges = tasks - first-layer roots.
	meanTasks := float64(p.Layers) * (1 + float64(p.MaxWidth)) / 2
	meanEdges := meanTasks - (1+float64(p.MaxWidth))/2
	if meanEdges < 1 {
		meanEdges = 1
	}
	netDemandBits := meanEdges * float64(p.FlowBytes) * 8
	rate := rho * float64(nHosts) * 10e9 / netDemandBits

	ncfg := network.DefaultConfig(power.DataCenter10G(p.FatTreeK + 2))
	ncfg.SwitchSleepIdle = simtime.FromSeconds(p.SwitchSleepIdleSec)
	ncfg.ECMP = true // full-bisection fat-tree needs multipath to avoid core hotspots

	cfg := core.Config{
		Seed:          seed,
		Check:         p.Check,
		Faults:        p.Faults,
		Servers:       nHosts,
		ServerConfig:  sc,
		Topology:      topo,
		NetworkConfig: ncfg,
		CommMode:      core.CommFlow,
		Arrivals:      workload.Poisson{Rate: rate},
		Factory: workload.RandomDAG{
			Layers: p.Layers, MaxWidth: p.MaxWidth, MaxDeps: p.MaxDeps,
			MinSize: p.MinTask, MaxSize: p.MaxTask, EdgeBytes: p.FlowBytes,
		},
		MaxJobs: p.Jobs,
	}
	policy := "server-balanced"
	if networkAware {
		policy = "server-network-aware"
		cfg.PlacerFor = func(net *network.Network, hostOf sched.HostMapper) sched.Placer {
			return sched.NetworkAware{Net: net, HostOf: hostOf, Frontend: 0}
		}
	} else {
		cfg.Placer = sched.LeastLoaded{} // strict load balancing (Server-Balanced)
	}
	dc, err := core.Build(cfg)
	if err != nil {
		return Fig11Point{}, nil, err
	}
	res, err := dc.Run()
	if err != nil {
		return Fig11Point{}, nil, err
	}
	pt := Fig11Point{
		Policy:       policy,
		Rho:          rho,
		ServerPowerW: res.MeanServerPowerW,
		SwitchPowerW: res.MeanNetworkPowerW,
		MeanLatS:     res.Latency.Mean(),
		P95LatS:      res.Latency.Percentile(95),
		SwitchWakes:  res.SwitchWakeups,
		ServerWakes:  res.ServerWakeups,
	}
	return pt, res.Latency.CDF(p.CDFPoints), nil
}
