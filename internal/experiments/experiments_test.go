package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestFormatRho(t *testing.T) {
	cases := map[float64]string{0.3: "30%", 0.6: "60%", 0.995: "100%"}
	for rho, want := range cases {
		if got := formatRho(rho); got != want {
			t.Errorf("formatRho(%v) = %q, want %q", rho, got, want)
		}
	}
}

func TestTableFormatting(t *testing.T) {
	tb := &Table{Title: "t", Header: []string{"a", "b"}}
	tb.Addf(1.5, "x")
	tb.Add("2", "y")
	s := tb.String()
	if !strings.Contains(s, "# t") || !strings.Contains(s, "a\tb") ||
		!strings.Contains(s, "1.5\tx") || !strings.Contains(s, "2\ty") {
		t.Errorf("table rendering:\n%s", s)
	}
}

func TestFig4Provisioning(t *testing.T) {
	r, err := Fig4(QuickFig4())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series.Rows) < 50 {
		t.Fatalf("series too short: %d rows", len(r.Series.Rows))
	}
	if r.JobsCompleted == 0 {
		t.Error("no jobs completed")
	}
	// The provisioner must actually modulate the active set: it sheds
	// from the initial full farm and the count varies with the diurnal
	// load.
	if r.MaxActive <= r.MinActive {
		t.Errorf("active servers never varied: min=%v max=%v", r.MinActive, r.MaxActive)
	}
	if r.MinActive < 1 {
		t.Errorf("active floor violated: %v", r.MinActive)
	}
	if r.Summary() == "" {
		t.Error("empty summary")
	}
}

func TestFig5DelayTimerShape(t *testing.T) {
	p := QuickFig5()
	r, err := Fig5(p)
	if err != nil {
		t.Fatal(err)
	}
	wantPoints := 0
	for _, wl := range p.Workloads {
		wantPoints += len(wl.TausSec) * len(p.Utilizations)
	}
	if len(r.Points) != wantPoints {
		t.Fatalf("points = %d, want %d", len(r.Points), wantPoints)
	}
	// Shape checks per (workload, rho): energy at the best interior τ
	// beats both aggressive τ=0.1-ish and the largest τ in the grid.
	byKey := make(map[string][]Fig5Point)
	for _, pt := range r.Points {
		key := pt.Workload + "/" + formatRho(pt.Rho)
		byKey[key] = append(byKey[key], pt)
	}
	for key, pts := range byKey {
		first, last := pts[0], pts[len(pts)-1]
		best := math.Inf(1)
		for _, pt := range pts {
			if pt.TauSec > 0 && pt.TauSec < last.TauSec && pt.EnergyJ < best {
				best = pt.EnergyJ
			}
		}
		if best >= last.EnergyJ {
			t.Errorf("%s: no right side of the U (best interior %.0f >= tail %.0f)",
				key, best, last.EnergyJ)
		}
		// τ=0 must wreck tail latency (the flapping pathology).
		if first.TauSec == 0 && first.P95LatS < 5*pts[1].P95LatS {
			t.Errorf("%s: τ=0 p95 %.3fs not clearly worse than τ>0 %.3fs",
				key, first.P95LatS, pts[1].P95LatS)
		}
	}
	if len(r.OptimalTau) == 0 {
		t.Error("no optima recorded")
	}
}

func TestFig6DualTimerSaves(t *testing.T) {
	r, err := Fig6(QuickFig6())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) == 0 {
		t.Fatal("no points")
	}
	for _, pt := range r.Points {
		if pt.BaselineJ <= 0 || pt.DualTimerJ <= 0 {
			t.Fatalf("non-positive energies: %+v", pt)
		}
		// The dual-timer policy must beat the Active-Idle baseline
		// substantially (the paper reports up to 45%).
		if pt.ReductionPct < 5 {
			t.Errorf("%s/%d/rho=%.1f: reduction %.1f%% too small",
				pt.Workload, pt.Servers, pt.Rho, pt.ReductionPct)
		}
	}
}

func TestFig8ResidencyShape(t *testing.T) {
	r, err := Fig8(QuickFig8())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range r.Rows {
		sum := row.Active + row.WakeUp + row.Idle + row.PkgC6 + row.SysSleep
		if math.Abs(sum-1) > 0.02 {
			t.Errorf("rho=%.1f: residency sums to %v", row.Rho, sum)
		}
	}
	// Active share grows with utilization; sleep share shrinks.
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if last.Active <= first.Active {
		t.Errorf("active residency not increasing: %.3f -> %.3f", first.Active, last.Active)
	}
	if first.SysSleep+first.PkgC6 <= last.SysSleep+last.PkgC6 {
		t.Errorf("low-power residency not decreasing: %.3f -> %.3f",
			first.SysSleep+first.PkgC6, last.SysSleep+last.PkgC6)
	}
	// At low load the framework parks most capacity in low-power states.
	if first.SysSleep+first.PkgC6 < 0.4 {
		t.Errorf("only %.2f low-power residency at rho=%.1f",
			first.SysSleep+first.PkgC6, first.Rho)
	}
}

func TestFig9AdaptiveBeatsTimer(t *testing.T) {
	r, err := Fig9(QuickFig9())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.TimerPerServer) != 10 || len(r.AdaptivePerServer) != 10 {
		t.Fatal("per-server results missing")
	}
	if r.SavingPct <= 0 {
		t.Errorf("adaptive framework saved %.1f%%, want positive", r.SavingPct)
	}
	// The adaptive policy concentrates energy on a small subset: its
	// per-server spread (max/min) must exceed the timer policy's.
	spread := func(per []struct{ CPU, DRAM, Platform float64 }) float64 { return 0 }
	_ = spread
	maxA, minA := 0.0, math.Inf(1)
	for _, e := range r.AdaptivePerServer {
		tot := e.Total()
		if tot > maxA {
			maxA = tot
		}
		if tot < minA {
			minA = tot
		}
	}
	if maxA/math.Max(minA, 1) < 1.5 {
		t.Errorf("adaptive energy not concentrated: max=%.0f min=%.0f", maxA, minA)
	}
}

func TestFig11JointOptimization(t *testing.T) {
	r, err := Fig11(QuickFig11())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 4 { // 2 policies x 2 utilizations
		t.Fatalf("points = %d", len(r.Points))
	}
	for rho, saving := range r.ServerSavingPct {
		if saving < -5 {
			t.Errorf("rho=%.1f: network-aware LOST %.1f%% server power", rho, -saving)
		}
	}
	for rho, saving := range r.NetworkSavingPct {
		if saving < -5 {
			t.Errorf("rho=%.1f: network-aware LOST %.1f%% network power", rho, -saving)
		}
	}
	// At least one utilization must show a clear network win (paper: ~18%).
	won := false
	for _, s := range r.NetworkSavingPct {
		if s > 3 {
			won = true
		}
	}
	if !won {
		t.Errorf("no meaningful network savings: %v", r.NetworkSavingPct)
	}
	// Latency CDFs exist for all four cells.
	if len(r.CDFs) != 4 {
		t.Errorf("CDFs = %d", len(r.CDFs))
	}
}

func TestFig12ServerValidation(t *testing.T) {
	r, err := Fig12(QuickFig12())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.SimulatedW) < 100 {
		t.Fatalf("series too short: %d", len(r.SimulatedW))
	}
	// The paper reports ~0.22W (~1.3%); allow a loose band since the
	// reference carries noise.
	if r.MeanAbsDiffW > 2.0 {
		t.Errorf("mean abs diff = %.3f W, want < 2", r.MeanAbsDiffW)
	}
	if r.ErrorPct > 20 {
		t.Errorf("error = %.1f%%, want < 20%%", r.ErrorPct)
	}
	if r.Summary() == "" {
		t.Error("empty summary")
	}
}

func TestFig13SwitchValidation(t *testing.T) {
	r, err := Fig13(QuickFig13())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.SimulatedW) < 250 {
		t.Fatalf("series too short: %d", len(r.SimulatedW))
	}
	// Ports must actually toggle with load.
	minP, maxP := r.ActivePorts[0], r.ActivePorts[0]
	for _, n := range r.ActivePorts {
		if n < minP {
			minP = n
		}
		if n > maxP {
			maxP = n
		}
	}
	if maxP == 0 {
		t.Error("no port ever active")
	}
	if maxP == minP {
		t.Error("port activity never varied")
	}
	// The paper reports <0.12 W mean difference, 0.04 W std.
	if r.MeanAbsDiffW > 0.5 {
		t.Errorf("mean abs diff = %.3f W, want < 0.5", r.MeanAbsDiffW)
	}
	if r.Summary() == "" {
		t.Error("empty summary")
	}
}

func TestTableICapabilitiesAndScale(t *testing.T) {
	r, err := TableI(QuickTableI())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Features.Rows) < 8 {
		t.Errorf("feature matrix rows = %d", len(r.Features.Rows))
	}
	if r.JobsCompleted == 0 {
		t.Error("scalability run completed no jobs")
	}
	if r.EventsPerSec <= 0 {
		t.Error("no event throughput measured")
	}
	if r.Summary() == "" {
		t.Error("empty summary")
	}
}
