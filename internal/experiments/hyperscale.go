package experiments

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"holdcsim/internal/core"
	"holdcsim/internal/power"
	"holdcsim/internal/sched"
	"holdcsim/internal/server"
	"holdcsim/internal/simtime"
	"holdcsim/internal/topology"
	"holdcsim/internal/workload"
)

// Hyperscale pushes the scalability claim past the paper's 20K-server
// Table I row: a fat-tree-organized farm of ~1M servers where every
// idle server costs O(1) — no queued engine event, no per-dispatch
// walk. The fat-tree graph is built only to derive rack shards for the
// sharded placer (topology.ScopeMap), then dropped: the run itself is
// server-only (CommNone), since a million-host packet network is a
// different experiment.
type HyperscaleParams struct {
	Seed uint64
	// K is the fat-tree arity; the farm size is its host count K³/4
	// and the shard count its rack (edge-switch) count K²/2.
	K int
	// Jobs bounds the run.
	Jobs int64
	// Util is the target farm utilization for the Poisson arrivals.
	Util float64
	// DelayTimer is the per-server sleep delay timer, exercising the
	// farm's shared sleep planner at full scale.
	DelayTimer simtime.Time
	// Check attaches the invariant checker (bounded deep scans and
	// farm-aggregate finalize keep it affordable at this size).
	Check bool
}

// DefaultHyperscale is the 1,024,000-server configuration
// (fat-tree K=160: 12,800 racks of 80 hosts).
func DefaultHyperscale() HyperscaleParams {
	return HyperscaleParams{Seed: 41, K: 160, Jobs: 200000, Util: 0.2,
		DelayTimer: simtime.Millisecond}
}

// QuickHyperscale shrinks the farm for tests and smoke runs
// (fat-tree K=16: 1,024 servers in 128 racks).
func QuickHyperscale() HyperscaleParams {
	return HyperscaleParams{Seed: 41, K: 16, Jobs: 5000, Util: 0.2,
		DelayTimer: simtime.Millisecond}
}

// HyperscaleResult carries the scale figures: throughput over the run
// phase, build cost, and the process's peak resident set.
type HyperscaleResult struct {
	Servers       int
	Racks         int
	JobsCompleted int64
	EventsPerSec  float64
	BuildSeconds  float64
	RunSeconds    float64
	SimSeconds    float64
	PeakRSSBytes  int64
}

// Hyperscale builds and runs the million-server farm.
func Hyperscale(p HyperscaleParams) (*HyperscaleResult, error) {
	if p.K < 2 || p.K%2 != 0 {
		return nil, fmt.Errorf("experiments: fat-tree arity %d must be even and >= 2", p.K)
	}
	buildStart := time.Now() //simlint:allow determinism wall-clock timing of the build phase for the report, not model state

	nServers := topology.FatTree{K: p.K}.NumHosts()
	shardOf, nRacks, err := rackShards(p.K)
	if err != nil {
		return nil, err
	}

	prof := power.FourCoreServer()
	sc := server.DefaultConfig(prof)
	sc.DelayTimerEnabled = true
	sc.DelayTimer = p.DelayTimer
	cfg := core.Config{
		Seed:         p.Seed,
		Check:        p.Check,
		Servers:      nServers,
		ServerConfig: sc,
		Placer:       sched.ShardedLeastLoaded{},
		Arrivals: workload.Poisson{
			Rate: workload.UtilizationRate(p.Util, nServers, prof.Cores, 0.005)},
		Factory: workload.SingleTask{Service: workload.WebSearchService()},
		MaxJobs: p.Jobs,
	}
	dc, err := core.Build(cfg)
	if err != nil {
		return nil, err
	}
	if err := dc.Sched.SetShards(shardOf, nRacks); err != nil {
		return nil, err
	}
	buildSecs := time.Since(buildStart).Seconds() //simlint:allow determinism wall-clock timing of the build phase for the report, not model state

	runStart := time.Now() //simlint:allow determinism wall-clock timing of the run phase for the report, not model state
	res, err := dc.Run()
	if err != nil {
		return nil, err
	}
	runSecs := time.Since(runStart).Seconds() //simlint:allow determinism wall-clock timing of the run phase for the report, not model state

	out := &HyperscaleResult{
		Servers:       nServers,
		Racks:         nRacks,
		JobsCompleted: res.JobsCompleted,
		BuildSeconds:  buildSecs,
		RunSeconds:    runSecs,
		SimSeconds:    res.End.Seconds(),
		PeakRSSBytes:  peakRSSBytes(),
	}
	if runSecs > 0 {
		out.EventsPerSec = float64(dc.Eng.Dispatched) / runSecs
	}
	return out, nil
}

// Summary renders the scale verdict.
func (r *HyperscaleResult) Summary() string {
	return fmt.Sprintf("hyperscale: %d servers in %d racks, %d jobs, %.0f events/s over %.2fs run (%.2fs build), peak RSS %.1f GiB",
		r.Servers, r.Racks, r.JobsCompleted, r.EventsPerSec, r.RunSeconds,
		r.BuildSeconds, float64(r.PeakRSSBytes)/(1<<30))
}

// rackShards derives the rack shard map from a transient fat-tree
// graph: only the host→rack table survives; the graph itself
// (switches, links, host bindings) becomes garbage on return, so the
// run pays no memory for a topology it never routes over.
func rackShards(k int) ([]int32, int, error) {
	g, err := topology.FatTree{K: k}.Build()
	if err != nil {
		return nil, 0, err
	}
	sm := topology.NewScopeMap(g)
	shardOf := make([]int32, len(sm.RackOf))
	for i, r := range sm.RackOf {
		shardOf[i] = int32(r)
	}
	return shardOf, sm.NumRacks(), nil
}

// peakRSSBytes reports the process's high-water resident set from
// /proc/self/status (VmHWM), falling back to the Go runtime's Sys
// figure on platforms without procfs.
func peakRSSBytes() int64 {
	if b, err := os.ReadFile("/proc/self/status"); err == nil {
		for _, line := range strings.Split(string(b), "\n") {
			if !strings.HasPrefix(line, "VmHWM:") {
				continue
			}
			f := strings.Fields(line)
			if len(f) >= 2 {
				if kb, err := strconv.ParseInt(f[1], 10, 64); err == nil {
					return kb * 1024
				}
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.Sys)
}
