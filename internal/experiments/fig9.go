package experiments

import (
	"holdcsim/internal/core"
	"holdcsim/internal/power"
	"holdcsim/internal/rng"
	"holdcsim/internal/sched"
	"holdcsim/internal/server"
	"holdcsim/internal/simtime"
	"holdcsim/internal/trace"
	"holdcsim/internal/workload"
)

// Fig9Params parameterizes the Sec. IV-C per-server energy breakdown:
// the same 10-server farm and Wikipedia-like arrivals under (a) the
// delay-timer policy and (b) the workload-adaptive scheduler. The paper
// observes that the adaptive framework concentrates work on a small
// subset of servers and saves ~39% total energy versus the delay-timer
// approach, whose consumption is nearly uniform across servers.
type Fig9Params struct {
	Seed        uint64
	Servers     int
	MeanRate    float64 // arrivals/second (Wikipedia-like trace mean)
	DurationSec float64
	TauSec      float64 // delay timer for policy (a)
	TWakeup     float64 // adaptive thresholds for policy (b)
	TSleep      float64
}

// DefaultFig9 mirrors the paper's setup.
func DefaultFig9() Fig9Params {
	return Fig9Params{
		Seed:        19,
		Servers:     10,
		MeanRate:    2500, // ~30% of a 10x10-core farm at 12.5ms services
		DurationSec: 300,
		TauSec:      1.0,
		TWakeup:     8.0,
		TSleep:      4.0,
	}
}

// QuickFig9 shrinks the run for tests and benches.
func QuickFig9() Fig9Params {
	p := DefaultFig9()
	p.DurationSec = 30
	return p
}

// Fig9Result carries per-server energy for both policies.
type Fig9Result struct {
	TimerPerServer    []core.ServerEnergy
	AdaptivePerServer []core.ServerEnergy
	TimerTotalJ       float64
	AdaptiveTotalJ    float64
	SavingPct         float64
	Series            *Table
}

// Fig9 runs both policies over the same trace.
func Fig9(p Fig9Params) (*Fig9Result, error) {
	tr := trace.SyntheticWikipedia(
		trace.DefaultWikipediaConfig(p.DurationSec, p.MeanRate),
		rng.New(p.Seed).Split("wikipedia"))

	run := func(adaptive bool) (*core.Results, error) {
		prof := power.XeonE5_2680()
		sc := server.DefaultConfig(prof)
		cfg := core.Config{
			Seed:         p.Seed,
			Servers:      p.Servers,
			ServerConfig: sc,
			Arrivals:     workload.NewTraceReplay(tr),
			Factory: workload.SingleTask{
				Service: workload.WebSearchService()},
			Duration: simtime.FromSeconds(p.DurationSec),
		}
		if adaptive {
			pool := sched.NewAdaptivePool(p.TWakeup, p.TSleep, simtime.FromSeconds(p.TauSec))
			cfg.Placer = pool
			cfg.Controller = pool
		} else {
			// The paper's delay-timer comparator load-balances across
			// the farm (its per-server energy is "almost uniform",
			// Fig. 9), with each server running its own τ timer.
			cfg.Placer = sched.LeastLoaded{}
			cfg.ServerConfig.DelayTimerEnabled = true
			cfg.ServerConfig.DelayTimer = simtime.FromSeconds(p.TauSec)
		}
		dc, err := core.Build(cfg)
		if err != nil {
			return nil, err
		}
		return dc.Run()
	}

	timer, err := run(false)
	if err != nil {
		return nil, err
	}
	adaptive, err := run(true)
	if err != nil {
		return nil, err
	}
	out := &Fig9Result{
		TimerPerServer:    timer.PerServer,
		AdaptivePerServer: adaptive.PerServer,
		TimerTotalJ:       timer.ServerEnergyJ,
		AdaptiveTotalJ:    adaptive.ServerEnergyJ,
		SavingPct:         100 * (timer.ServerEnergyJ - adaptive.ServerEnergyJ) / timer.ServerEnergyJ,
		Series: &Table{
			Title: "Fig. 9: per-server energy (kJ) under delay-timer vs workload-adaptive policies",
			Header: []string{"server", "timer_cpu_kJ", "timer_dram_kJ", "timer_platform_kJ",
				"adaptive_cpu_kJ", "adaptive_dram_kJ", "adaptive_platform_kJ"},
		},
	}
	for i := 0; i < p.Servers; i++ {
		t := timer.PerServer[i]
		a := adaptive.PerServer[i]
		out.Series.Addf(i, t.CPU/1e3, t.DRAM/1e3, t.Platform/1e3,
			a.CPU/1e3, a.DRAM/1e3, a.Platform/1e3)
	}
	return out, nil
}
