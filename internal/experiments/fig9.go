package experiments

import (
	"holdcsim/internal/core"
	"holdcsim/internal/fault"
	"holdcsim/internal/power"
	"holdcsim/internal/rng"
	"holdcsim/internal/runner"
	"holdcsim/internal/sched"
	"holdcsim/internal/server"
	"holdcsim/internal/simtime"
	"holdcsim/internal/trace"
	"holdcsim/internal/workload"
)

// Fig9Params parameterizes the Sec. IV-C per-server energy breakdown:
// the same 10-server farm and Wikipedia-like arrivals under (a) the
// delay-timer policy and (b) the workload-adaptive scheduler. The paper
// observes that the adaptive framework concentrates work on a small
// subset of servers and saves ~39% total energy versus the delay-timer
// approach, whose consumption is nearly uniform across servers.
type Fig9Params struct {
	Seed        uint64
	Servers     int
	MeanRate    float64 // arrivals/second (Wikipedia-like trace mean)
	DurationSec float64
	TauSec      float64 // delay timer for policy (a)
	TWakeup     float64 // adaptive thresholds for policy (b)
	TSleep      float64
	// Exec controls campaign parallelism and replications.
	Exec runner.Options
	// Check enables runtime invariant checking on every simulation
	// (internal/invariant): a violated conservation law fails the run.
	Check bool
	// Faults optionally attaches the fault injector (internal/fault)
	// to every simulation in the experiment. Nil leaves the fault
	// machinery unwired; a non-nil empty spec attaches an empty
	// timeline (the differential fault suite's probe).
	Faults *fault.Spec
}

// DefaultFig9 mirrors the paper's setup.
func DefaultFig9() Fig9Params {
	return Fig9Params{
		Seed:        19,
		Servers:     10,
		MeanRate:    2500, // ~30% of a 10x10-core farm at 12.5ms services
		DurationSec: 300,
		TauSec:      1.0,
		TWakeup:     8.0,
		TSleep:      4.0,
	}
}

// QuickFig9 shrinks the run for tests and benches.
func QuickFig9() Fig9Params {
	p := DefaultFig9()
	p.DurationSec = 30
	return p
}

// Fig9Result carries per-server energy for both policies.
type Fig9Result struct {
	TimerPerServer    []core.ServerEnergy
	AdaptivePerServer []core.ServerEnergy
	TimerTotalJ       float64
	AdaptiveTotalJ    float64
	SavingPct         float64
	Series            *Table
}

// fig9Sample is one policy run's outcome.
type fig9Sample struct {
	PerServer []core.ServerEnergy
	TotalJ    float64
}

// Fig9 runs both policies over the same trace as independent
// runner.Runs. With Exec.Reps > 1 the totals and per-server breakdowns
// become across-replication means (component-wise for the breakdown).
func Fig9(p Fig9Params) (*Fig9Result, error) {
	// Both policies share one Key so replication i of each runs the
	// same trace (common random numbers): SavingPct compares paired
	// runs, not trace-to-trace noise.
	runs := []runner.Run[fig9Sample]{
		{Key: "fig9", Do: func(seed uint64) (fig9Sample, error) {
			return fig9Run(p, false, seed)
		}},
		{Key: "fig9", Do: func(seed uint64) (fig9Sample, error) {
			return fig9Run(p, true, seed)
		}},
	}
	reps, err := runner.MapReps(p.Exec, p.Seed, runs)
	if err != nil {
		return nil, err
	}
	timer := fig9Aggregate(reps[0])
	adaptive := fig9Aggregate(reps[1])

	out := &Fig9Result{
		TimerPerServer:    timer.PerServer,
		AdaptivePerServer: adaptive.PerServer,
		TimerTotalJ:       timer.TotalJ,
		AdaptiveTotalJ:    adaptive.TotalJ,
		SavingPct:         100 * (timer.TotalJ - adaptive.TotalJ) / timer.TotalJ,
		Series: &Table{
			Title: "Fig. 9: per-server energy (kJ) under delay-timer vs workload-adaptive policies",
			Header: []string{"server", "timer_cpu_kJ", "timer_dram_kJ", "timer_platform_kJ",
				"adaptive_cpu_kJ", "adaptive_dram_kJ", "adaptive_platform_kJ"},
		},
	}
	for i := 0; i < p.Servers; i++ {
		t := timer.PerServer[i]
		a := adaptive.PerServer[i]
		out.Series.Addf(i, t.CPU/1e3, t.DRAM/1e3, t.Platform/1e3,
			a.CPU/1e3, a.DRAM/1e3, a.Platform/1e3)
	}
	return out, nil
}

// fig9Aggregate means the replications of one policy; a single
// replication passes through untouched.
func fig9Aggregate(rep []fig9Sample) fig9Sample {
	if len(rep) == 1 {
		return rep[0]
	}
	out := fig9Sample{
		PerServer: make([]core.ServerEnergy, len(rep[0].PerServer)),
		TotalJ:    runner.MeanBy(rep, func(s fig9Sample) float64 { return s.TotalJ }),
	}
	for i := range out.PerServer {
		for _, s := range rep {
			out.PerServer[i].CPU += s.PerServer[i].CPU
			out.PerServer[i].DRAM += s.PerServer[i].DRAM
			out.PerServer[i].Platform += s.PerServer[i].Platform
		}
		out.PerServer[i].CPU /= float64(len(rep))
		out.PerServer[i].DRAM /= float64(len(rep))
		out.PerServer[i].Platform /= float64(len(rep))
	}
	return out
}

func fig9Run(p Fig9Params, adaptive bool, seed uint64) (fig9Sample, error) {
	tr := trace.SyntheticWikipedia(
		trace.DefaultWikipediaConfig(p.DurationSec, p.MeanRate),
		rng.New(seed).Split("wikipedia"))

	prof := power.XeonE5_2680()
	sc := server.DefaultConfig(prof)
	cfg := core.Config{
		Seed:         seed,
		Check:        p.Check,
		Faults:       p.Faults,
		Servers:      p.Servers,
		ServerConfig: sc,
		Arrivals:     workload.NewTraceReplay(tr),
		Factory: workload.SingleTask{
			Service: workload.WebSearchService()},
		Duration: simtime.FromSeconds(p.DurationSec),
	}
	if adaptive {
		pool := sched.NewAdaptivePool(p.TWakeup, p.TSleep, simtime.FromSeconds(p.TauSec))
		cfg.Placer = pool
		cfg.Controller = pool
	} else {
		// The paper's delay-timer comparator load-balances across
		// the farm (its per-server energy is "almost uniform",
		// Fig. 9), with each server running its own τ timer.
		cfg.Placer = sched.LeastLoaded{}
		cfg.ServerConfig.DelayTimerEnabled = true
		cfg.ServerConfig.DelayTimer = simtime.FromSeconds(p.TauSec)
	}
	dc, err := core.Build(cfg)
	if err != nil {
		return fig9Sample{}, err
	}
	res, err := dc.Run()
	if err != nil {
		return fig9Sample{}, err
	}
	return fig9Sample{PerServer: res.PerServer, TotalJ: res.ServerEnergyJ}, nil
}
