package experiments

import (
	"fmt"

	"holdcsim/internal/core"
	"holdcsim/internal/fault"
	"holdcsim/internal/power"
	"holdcsim/internal/rng"
	"holdcsim/internal/runner"
	"holdcsim/internal/sched"
	"holdcsim/internal/server"
	"holdcsim/internal/simtime"
	"holdcsim/internal/trace"
	"holdcsim/internal/workload"
)

// Fig4Params parameterizes the Sec. IV-A provisioning study: a 50-server
// four-core farm fed by a Wikipedia-like trace of simple 3–10 ms tasks,
// managed by min/max load-per-server thresholds.
type Fig4Params struct {
	Seed        uint64
	Servers     int
	DurationSec float64
	MeanRate    float64 // arrivals/second over the trace
	MinLoad     float64 // jobs per active server
	MaxLoad     float64
	SampleEvery simtime.Time
	// Exec controls replications; Fig. 4 is a single simulation, so
	// workers only fan out when Reps > 1.
	Exec runner.Options
	// Check enables runtime invariant checking on every simulation
	// (internal/invariant): a violated conservation law fails the run.
	Check bool
	// Faults optionally attaches the fault injector (internal/fault)
	// to every simulation in the experiment. Nil leaves the fault
	// machinery unwired; a non-nil empty spec attaches an empty
	// timeline (the differential fault suite's probe).
	Faults *fault.Spec
}

// DefaultFig4 mirrors the paper: 50 four-core servers, Wikipedia trace.
func DefaultFig4() Fig4Params {
	return Fig4Params{
		Seed:        7,
		Servers:     50,
		DurationSec: 1200,
		MeanRate:    6000, // ~30% farm utilization at 6.5ms mean service
		MinLoad:     0.8,
		MaxLoad:     2.5,
		SampleEvery: simtime.Second,
	}
}

// QuickFig4 shrinks the run for tests and benches.
func QuickFig4() Fig4Params {
	p := DefaultFig4()
	p.Servers = 20
	p.DurationSec = 120
	p.MeanRate = 1200
	return p
}

// Fig4Result carries the Fig. 4 time series plus summary statistics.
type Fig4Result struct {
	Series        *Table // time, jobsInSystem, activeServers
	MinActive     float64
	MaxActive     float64
	MeanActive    float64
	JobsCompleted int64
}

// Fig4 runs the provisioning experiment through the campaign runner.
// With Exec.Reps > 1 the time series keeps the base-seed replication
// (so plots stay deterministic) while the summary scalars become
// across-replication means.
func Fig4(p Fig4Params) (*Fig4Result, error) {
	rep, err := runner.One(p.Exec, p.Seed, "fig4", func(seed uint64) (*Fig4Result, error) {
		return fig4Run(p, seed)
	})
	if err != nil {
		return nil, err
	}
	out := rep[0]
	if p.Exec.RepCount() > 1 {
		out.MinActive = runner.MeanBy(rep, func(r *Fig4Result) float64 { return r.MinActive })
		out.MaxActive = runner.MeanBy(rep, func(r *Fig4Result) float64 { return r.MaxActive })
		out.MeanActive = runner.MeanBy(rep, func(r *Fig4Result) float64 { return r.MeanActive })
	}
	return out, nil
}

func fig4Run(p Fig4Params, seed uint64) (*Fig4Result, error) {
	tr := trace.SyntheticWikipedia(
		trace.DefaultWikipediaConfig(p.DurationSec, p.MeanRate),
		rng.New(seed).Split("wikipedia"))
	prov := sched.NewProvisioner(p.MinLoad, p.MaxLoad)

	cfg := core.Config{
		Seed:         seed,
		Check:        p.Check,
		Faults:       p.Faults,
		Servers:      p.Servers,
		ServerConfig: server.DefaultConfig(power.FourCoreServer()),
		Placer:       prov,
		Controller:   prov,
		Arrivals:     workload.NewTraceReplay(tr),
		Factory:      workload.SingleTask{Service: workload.WikipediaService()},
		Duration:     simtime.FromSeconds(p.DurationSec),
	}
	dc, err := core.Build(cfg)
	if err != nil {
		return nil, err
	}
	series := &Table{
		Title:  "Fig. 4: active jobs and active servers over time",
		Header: []string{"time_s", "jobs_in_system", "active_servers"},
	}
	var samples []float64
	prov.SampleSeries(dc.Sched, p.SampleEvery, cfg.Duration,
		func(t simtime.Time, active, jobs float64) {
			series.Addf(t.Seconds(), jobs, active)
			samples = append(samples, active)
		})
	res, err := dc.Run()
	if err != nil {
		return nil, err
	}
	out := &Fig4Result{Series: series, JobsCompleted: res.JobsCompleted}
	if len(samples) > 0 {
		out.MinActive, out.MaxActive = samples[0], samples[0]
		sum := 0.0
		for _, v := range samples {
			if v < out.MinActive {
				out.MinActive = v
			}
			if v > out.MaxActive {
				out.MaxActive = v
			}
			sum += v
		}
		out.MeanActive = sum / float64(len(samples))
	}
	return out, nil
}

// Summary renders the headline numbers.
func (r *Fig4Result) Summary() string {
	return fmt.Sprintf("active servers min=%.0f mean=%.1f max=%.0f; jobs completed=%d",
		r.MinActive, r.MeanActive, r.MaxActive, r.JobsCompleted)
}
