package experiments

import (
	"fmt"

	"holdcsim/internal/core"
	"holdcsim/internal/dist"
	"holdcsim/internal/fault"
	"holdcsim/internal/power"
	"holdcsim/internal/rng"
	"holdcsim/internal/runner"
	"holdcsim/internal/sched"
	"holdcsim/internal/server"
	"holdcsim/internal/simtime"
	"holdcsim/internal/stats"
	"holdcsim/internal/trace"
	"holdcsim/internal/validate"
	"holdcsim/internal/workload"
)

// Fig12Params parameterizes the Sec. V-A server power validation: an
// NLANR-like HTTP arrival trace is replayed against (a) the event-driven
// simulator (one 10-core Xeon server, C0/C6 enabled as in the paper) and
// (b) the independent reference "physical server" model with OS noise.
// Per-second CPU-package power windows (RAPL-style energy-counter
// differences) are compared; the paper reports a 0.22 W mean difference
// (~1.3%) with ~1.5 W standard deviation.
type Fig12Params struct {
	Seed        uint64
	DurationSec float64
	ServiceSec  float64
	// Exec controls replications; Fig. 12 is a single simulation, so
	// workers only fan out when Reps > 1.
	Exec runner.Options
	// Check enables runtime invariant checking on every simulation
	// (internal/invariant): a violated conservation law fails the run.
	Check bool
	// Faults optionally attaches the fault injector (internal/fault)
	// to every simulation in the experiment. Nil leaves the fault
	// machinery unwired; a non-nil empty spec attaches an empty
	// timeline (the differential fault suite's probe).
	Faults *fault.Spec
}

// DefaultFig12 mirrors the paper's 1000-second window (Fig. 12 shows
// 0–1000 s).
func DefaultFig12() Fig12Params {
	return Fig12Params{Seed: 29, DurationSec: 1000, ServiceSec: 0.008}
}

// QuickFig12 shrinks the run for tests and benches.
func QuickFig12() Fig12Params {
	p := DefaultFig12()
	p.DurationSec = 120
	return p
}

// Fig12Result carries both power series and the error metrics.
type Fig12Result struct {
	SimulatedW   []float64
	ReferenceW   []float64
	MeanAbsDiffW float64
	StdDiffW     float64
	MeanRefW     float64
	ErrorPct     float64
	Series       *Table
}

// Fig12 runs the server power validation through the campaign runner.
// With Exec.Reps > 1 the error metrics become across-replication means
// while the power series keep the base-seed replication.
func Fig12(p Fig12Params) (*Fig12Result, error) {
	rep, err := runner.One(p.Exec, p.Seed, "fig12", func(seed uint64) (*Fig12Result, error) {
		return fig12Run(p, seed)
	})
	if err != nil {
		return nil, err
	}
	out := rep[0]
	if p.Exec.RepCount() > 1 {
		out.MeanAbsDiffW = runner.MeanBy(rep, func(r *Fig12Result) float64 { return r.MeanAbsDiffW })
		out.StdDiffW = runner.MeanBy(rep, func(r *Fig12Result) float64 { return r.StdDiffW })
		out.MeanRefW = runner.MeanBy(rep, func(r *Fig12Result) float64 { return r.MeanRefW })
		out.ErrorPct = runner.MeanBy(rep, func(r *Fig12Result) float64 { return r.ErrorPct })
	}
	return out, nil
}

func fig12Run(p Fig12Params, seed uint64) (*Fig12Result, error) {
	master := rng.New(seed)
	// The paper drives the server with httperf at web-service rates; the
	// NLANR-like generator is scaled up so the 10-core box sees a few
	// busy cores on average, matching Fig. 12's 5-30 W power range.
	ncfg := trace.DefaultNLANRConfig(p.DurationSec)
	ncfg.OnRate = 800
	ncfg.MeanOn = 2.0
	ncfg.Background = 60
	tr := trace.SyntheticNLANR(ncfg, master.Split("nlanr"))

	// Event-driven simulation of one 10-core server. The paper enables
	// only C0 and C6 for the validation runs; mirror that by promoting
	// straight to C6.
	prof := power.XeonE5_2680()
	sc := server.DefaultConfig(prof)
	sc.IdleToC1 = -1
	sc.IdleToC3 = -1
	sc.IdleToC6 = 200 * simtime.Microsecond
	// The validation platform keeps the uncore powered (RAPL shows the
	// package floor); only core C0/C6 toggle, as in the paper's setup.
	sc.PkgC6Enabled = false
	cfg := core.Config{
		Seed:         seed,
		Check:        p.Check,
		Faults:       p.Faults,
		Servers:      1,
		ServerConfig: sc,
		Placer:       sched.LeastLoaded{},
		Arrivals:     workload.NewTraceReplay(tr),
		Factory:      workload.SingleTask{Service: dist.Deterministic{Value: p.ServiceSec}},
		Duration:     simtime.FromSeconds(p.DurationSec),
	}
	dc, err := core.Build(cfg)
	if err != nil {
		return nil, err
	}
	// Sample the CPU energy counter each second; window power is the
	// energy difference (exactly how RAPL is read).
	srv := dc.Servers[0]
	var sim []float64
	prevE := 0.0
	var tick func()
	sampleAt := simtime.Second
	tick = func() {
		e := srv.CPUEnergyTo(dc.Eng.Now())
		sim = append(sim, e-prevE)
		prevE = e
		if dc.Eng.Now()+simtime.Second <= cfg.Duration {
			dc.Eng.After(simtime.Second, tick)
		}
	}
	dc.Eng.Schedule(sampleAt, tick)
	if _, err := dc.Run(); err != nil {
		return nil, err
	}

	// Independent reference model on the same trace.
	refCfg := validate.DefaultReferenceServer()
	refCfg.ServiceSec = p.ServiceSec
	ref := validate.ReferenceServerPower(tr, refCfg, master.Split("reference"))

	n := len(sim)
	if len(ref) < n {
		n = len(ref)
	}
	sim, ref = sim[:n], ref[:n]
	mad, sd := stats.CompareSeries(sim, ref)
	meanRef := 0.0
	for _, v := range ref {
		meanRef += v
	}
	if n > 0 {
		meanRef /= float64(n)
	}
	out := &Fig12Result{
		SimulatedW:   sim,
		ReferenceW:   ref,
		MeanAbsDiffW: mad,
		StdDiffW:     sd,
		MeanRefW:     meanRef,
		Series: &Table{
			Title:  "Fig. 12: simulated vs physical (reference) server power over time",
			Header: []string{"time_s", "physical_W", "simulated_W"},
		},
	}
	if meanRef > 0 {
		out.ErrorPct = 100 * mad / meanRef
	}
	for i := 0; i < n; i++ {
		out.Series.Addf(i+1, ref[i], sim[i])
	}
	return out, nil
}

// Summary renders the validation verdict.
func (r *Fig12Result) Summary() string {
	return fmt.Sprintf("server validation: mean |diff| = %.3f W (%.2f%% of %.2f W), stddev = %.3f W",
		r.MeanAbsDiffW, r.ErrorPct, r.MeanRefW, r.StdDiffW)
}
