package experiments

import (
	"fmt"

	"holdcsim/internal/core"
	"holdcsim/internal/fault"
	"holdcsim/internal/job"
	"holdcsim/internal/network"
	"holdcsim/internal/power"
	"holdcsim/internal/rng"
	"holdcsim/internal/runner"
	"holdcsim/internal/sched"
	"holdcsim/internal/server"
	"holdcsim/internal/simtime"
	"holdcsim/internal/stats"
	"holdcsim/internal/topology"
	"holdcsim/internal/trace"
	"holdcsim/internal/validate"
	"holdcsim/internal/workload"
)

// Fig13Params parameterizes the Sec. V-B switch power validation: 24
// servers on a star topology serve a Wikipedia-like workload with load
// balancing; each request pushes request/response packets through the
// server's switch port. The simulator logs per-second port states; the
// switch power model (base 14.7 W + 0.23 W per active port) converts the
// log to a power series, and the reference "physical switch" model (same
// log + measurement noise + management-CPU drift) stands in for the
// Cisco WS-C2960-24-S. The paper reports <0.12 W mean difference with
// 0.04 W standard deviation over 2 hours.
type Fig13Params struct {
	Seed          uint64
	Servers       int
	DurationSec   float64
	MeanRate      float64 // requests/second across the cluster
	RequestBytes  int64
	ResponseBytes int64
	// LPIIdleSec keeps a port "active" this long after its last packet;
	// with 1 s logging this is what makes port states track request
	// activity, as in the paper's replay.
	LPIIdleSec float64
	// Exec controls replications; Fig. 13 is a single simulation, so
	// workers only fan out when Reps > 1.
	Exec runner.Options
	// Check enables runtime invariant checking on every simulation
	// (internal/invariant): a violated conservation law fails the run.
	Check bool
	// Faults optionally attaches the fault injector (internal/fault)
	// to every simulation in the experiment. Nil leaves the fault
	// machinery unwired; a non-nil empty spec attaches an empty
	// timeline (the differential fault suite's probe).
	Faults *fault.Spec
}

// DefaultFig13 mirrors the paper's 2-hour validation.
func DefaultFig13() Fig13Params {
	return Fig13Params{
		Seed:          31,
		Servers:       24,
		DurationSec:   7200,
		MeanRate:      40,
		RequestBytes:  2 * 1024,
		ResponseBytes: 48 * 1024,
		LPIIdleSec:    1.0,
	}
}

// QuickFig13 shrinks the run for tests and benches.
func QuickFig13() Fig13Params {
	p := DefaultFig13()
	p.DurationSec = 300
	return p
}

// Fig13Result carries the two power series and error metrics.
type Fig13Result struct {
	SimulatedW   []float64
	ReferenceW   []float64
	ActivePorts  []int
	MeanAbsDiffW float64
	StdDiffW     float64
	Series       *Table
}

// Fig13 runs the switch power validation through the campaign runner.
// With Exec.Reps > 1 the error metrics become across-replication means
// while the power series keep the base-seed replication.
func Fig13(p Fig13Params) (*Fig13Result, error) {
	rep, err := runner.One(p.Exec, p.Seed, "fig13", func(seed uint64) (*Fig13Result, error) {
		return fig13Run(p, seed)
	})
	if err != nil {
		return nil, err
	}
	out := rep[0]
	if p.Exec.RepCount() > 1 {
		out.MeanAbsDiffW = runner.MeanBy(rep, func(r *Fig13Result) float64 { return r.MeanAbsDiffW })
		out.StdDiffW = runner.MeanBy(rep, func(r *Fig13Result) float64 { return r.StdDiffW })
	}
	return out, nil
}

func fig13Run(p Fig13Params, seed uint64) (*Fig13Result, error) {
	master := rng.New(seed)
	tr := trace.SyntheticWikipedia(
		trace.DefaultWikipediaConfig(p.DurationSec, p.MeanRate), master.Split("wikipedia"))

	// Star of Servers hosts plus one front-end host that originates
	// requests; the switch profile gets one extra port for the uplink,
	// which is excluded from the logged 24 ports (the paper logs the 24
	// server-facing ports).
	prof := power.Cisco2960_24()
	prof.PortsPerLineCard = p.Servers + 1

	ncfg := network.DefaultConfig(prof)
	ncfg.LPIIdle = simtime.FromSeconds(p.LPIIdleSec)

	// Request/response traffic rides on dispatch and completion hooks:
	// each dispatched request pushes RequestBytes from the front end
	// (the star's extra host) to the assigned server; each completion
	// pushes ResponseBytes back. The hooks close over the DataCenter,
	// which exists by the time any of them fires.
	var dc *core.DataCenter
	var frontend topology.NodeID

	sc := server.DefaultConfig(power.XeonE5_2680())
	cfg := core.Config{
		Seed:          seed,
		Check:         p.Check,
		Faults:        p.Faults,
		Servers:       p.Servers,
		ServerConfig:  sc,
		Topology:      topology.Star{Hosts: p.Servers + 1, RateBps: 1e9},
		NetworkConfig: ncfg,
		CommMode:      core.CommPacket,
		Placer:        sched.LeastLoaded{}, // the paper's load-balanced policy
		Arrivals:      workload.NewTraceReplay(tr),
		Factory:       workload.SingleTask{Service: workload.WikipediaService()},
		Duration:      simtime.FromSeconds(p.DurationSec),
		OnDispatch: func(srv *server.Server, _ *job.Task) {
			_ = dc.Net.TransferPackets(frontend, dc.HostOf(srv.ID()), p.RequestBytes, nil)
		},
	}
	built, err := core.Build(cfg)
	if err != nil {
		return nil, err
	}
	dc = built
	frontend = dc.Graph.Hosts()[p.Servers]
	for _, srv := range dc.Servers {
		host := dc.HostOf(srv.ID())
		srv.OnTaskDone(func(*server.Server, *job.Task) {
			_ = dc.Net.TransferPackets(host, frontend, p.ResponseBytes, nil)
		})
	}

	sw := dc.Net.Switches()[0]
	var active []int
	var tick func()
	tick = func() {
		states := sw.PortStates()[:p.Servers] // server-facing ports only
		n := 0
		for _, st := range states {
			if st == power.PortActive {
				n++
			}
		}
		active = append(active, n)
		if dc.Eng.Now()+simtime.Second <= cfg.Duration {
			dc.Eng.After(simtime.Second, tick)
		}
	}
	dc.Eng.Schedule(simtime.Second, tick)

	if _, err := dc.Run(); err != nil {
		return nil, err
	}

	// Simulated power from the logged states (base + per active port),
	// and the reference "physical" measurement from the same log.
	base := 14.7
	sim := make([]float64, len(active))
	for i, n := range active {
		sim[i] = base + float64(n)*0.23
	}
	refCfg := validate.DefaultReferenceSwitch()
	ref := validate.ReferenceSwitchPower(active, refCfg, master.Split("reference"))

	mad, sd := stats.CompareSeries(sim, ref)
	out := &Fig13Result{
		SimulatedW:   sim,
		ReferenceW:   ref,
		ActivePorts:  active,
		MeanAbsDiffW: mad,
		StdDiffW:     sd,
		Series: &Table{
			Title:  "Fig. 13: simulated vs physical (reference) switch power",
			Header: []string{"time_s", "physical_W", "simulated_W", "active_ports"},
		},
	}
	for i := range sim {
		out.Series.Addf(i+1, ref[i], sim[i], active[i])
	}
	return out, nil
}

// Summary renders the validation verdict.
func (r *Fig13Result) Summary() string {
	return fmt.Sprintf("switch validation: mean |diff| = %.3f W, stddev = %.3f W over %d samples",
		r.MeanAbsDiffW, r.StdDiffW, len(r.SimulatedW))
}

// Segment extracts the [fromSec, toSec) window of both power series as a
// new table — the paper's Fig. 14 shows two such 20-minute segments
// (80–100 min, where the traces match exactly, and 40–60 min, where the
// physical switch drifts slightly above the simulation).
func (r *Fig13Result) Segment(title string, fromSec, toSec int) *Table {
	t := &Table{
		Title:  title,
		Header: []string{"time_s", "physical_W", "simulated_W"},
	}
	for i := fromSec; i < toSec && i < len(r.SimulatedW); i++ {
		t.Addf(i+1, r.ReferenceW[i], r.SimulatedW[i])
	}
	return t
}
