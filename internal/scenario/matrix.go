package scenario

import (
	"holdcsim/internal/core"
	"holdcsim/internal/fault"
	"holdcsim/internal/network"
	"holdcsim/internal/rng"
	"holdcsim/internal/sched"
	"holdcsim/internal/server"
)

// Axes declares a cross-product scenario matrix. Every axis left empty
// inherits the base scenario's value; non-empty axes are expanded in
// declaration order, so the output ordering is stable. Combinations
// that do not compose a legal configuration (a comm mode without a
// topology, a network-aware placer on a server-only farm, more servers
// than hosts) are skipped — the matrix is the *valid* cross product.
type Axes struct {
	Seeds      []uint64           `json:"seeds,omitempty"`
	Topologies []TopologySpec     `json:"topologies,omitempty"`
	Comms      []core.CommMode    `json:"comms,omitempty"`
	NetModels  []network.NetModel `json:"netModels,omitempty"`
	Servers    []int              `json:"servers,omitempty"`
	Profiles   []ProfileKind      `json:"profiles,omitempty"`
	Queues     []server.QueueMode `json:"queues,omitempty"`
	DelayTaus  []float64          `json:"delayTaus,omitempty"` // seconds; < 0 disables
	Hetero     []bool             `json:"hetero,omitempty"`
	Placers    []PlacerSpec       `json:"placers,omitempty"`
	Arrivals   []ArrivalSpec      `json:"arrivals,omitempty"`
	Factories  []FactorySpec      `json:"factories,omitempty"`
	Horizons   []Horizon          `json:"horizons,omitempty"`
	Faults     []fault.Spec       `json:"faults,omitempty"`
}

// Horizon is one run-length axis value.
type Horizon struct {
	MaxJobs     int64   `json:"maxJobs,omitempty"`
	DurationSec float64 `json:"durationSec,omitempty"`
}

// Expand produces every valid scenario in the cross product of the
// axes over the base. Scenarios whose Servers exceed the topology's
// host count are clamped to the host count rather than dropped, so
// topology and farm-size axes compose without manual pairing.
func (a Axes) Expand(base Scenario) []Scenario {
	seeds := a.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{base.Seed}
	}
	topos := a.Topologies
	if len(topos) == 0 {
		topos = []TopologySpec{base.Topology}
	}
	comms := a.Comms
	if len(comms) == 0 {
		comms = []core.CommMode{base.Comm}
	}
	netModels := a.NetModels
	if len(netModels) == 0 {
		netModels = []network.NetModel{base.NetModel}
	}
	servers := a.Servers
	if len(servers) == 0 {
		servers = []int{base.Servers}
	}
	profiles := a.Profiles
	if len(profiles) == 0 {
		profiles = []ProfileKind{base.Profile}
	}
	queues := a.Queues
	if len(queues) == 0 {
		queues = []server.QueueMode{base.Queue}
	}
	taus := a.DelayTaus
	if len(taus) == 0 {
		taus = []float64{base.DelayTimerSec}
	}
	hetero := a.Hetero
	if len(hetero) == 0 {
		hetero = []bool{base.Heterogeneous}
	}
	placers := a.Placers
	if len(placers) == 0 {
		placers = []PlacerSpec{base.Placer}
	}
	arrivals := a.Arrivals
	if len(arrivals) == 0 {
		arrivals = []ArrivalSpec{base.Arrival}
	}
	factories := a.Factories
	if len(factories) == 0 {
		factories = []FactorySpec{base.Factory}
	}
	horizons := a.Horizons
	if len(horizons) == 0 {
		horizons = []Horizon{{MaxJobs: base.MaxJobs, DurationSec: base.DurationSec}}
	}
	faults := a.Faults
	if len(faults) == 0 {
		faults = []fault.Spec{base.Faults}
	}

	var out []Scenario
	seen := make(map[Scenario]bool)
	for _, seed := range seeds {
		for _, topo := range topos {
			for _, comm := range comms {
				for _, n := range servers {
					for _, prof := range profiles {
						for _, q := range queues {
							for _, tau := range taus {
								for _, het := range hetero {
									for _, pl := range placers {
										for _, arr := range arrivals {
											for _, fac := range factories {
												for _, h := range horizons {
													for _, fs := range faults {
														for _, nm := range netModels {
															s := base
															s.Seed = seed
															s.Topology = topo
															s.Comm = comm
															s.NetModel = nm
															s.Servers = n
															s.Profile = prof
															s.Queue = q
															s.DelayTimerSec = tau
															s.Heterogeneous = het
															s.Placer = pl
															s.Arrival = arr
															s.Factory = fac
															s.MaxJobs = h.MaxJobs
															s.DurationSec = h.DurationSec
															s.Faults = fs
															if hosts := topo.Hosts(); topo.Kind != TopoNone && s.Servers > hosts {
																s.Servers = hosts
															}
															// Clamping can collapse two farm
															// sizes onto the same scenario; run
															// each distinct scenario once.
															if seen[s] || s.Validate() != nil {
																continue
															}
															seen[s] = true
															out = append(out, s)
														}
													}
												}
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

// Random draws one valid scenario from the full registry of builders —
// all five topologies (plus server-only), all three comm modes, every
// placer and pool/provisioning/DVFS governor, Poisson/MMPP/trace
// arrivals, all four job shapes, homogeneous and heterogeneous core
// mixes — deterministically from the seed. The same seed always yields
// the same scenario; the scenario's own Seed is also derived from it,
// so Random(seed).Run() is a pure function.
//
// Shape parameters are bounded so a drawn scenario stays test-sized
// (hundreds of jobs, tens of servers, seconds of virtual time).
func Random(seed uint64) Scenario {
	r := rng.New(seed).Split("random-scenario")
	s := Scenario{Seed: seed}

	// Topology and comm mode.
	switch r.IntN(6) {
	case 0:
		s.Topology = TopologySpec{Kind: TopoNone}
	case 1:
		s.Topology = TopologySpec{Kind: TopoStar, A: 2 + r.IntN(15)}
	case 2:
		s.Topology = TopologySpec{Kind: TopoFatTree, A: 2 + 2*r.IntN(2)} // k ∈ {2, 4}
	case 3:
		s.Topology = TopologySpec{Kind: TopoBCube, A: 2 + r.IntN(2), B: r.IntN(2)}
	case 4:
		s.Topology = TopologySpec{Kind: TopoCamCube, A: 2 + r.IntN(2), B: 2 + r.IntN(2), C: 2}
	case 5:
		s.Topology = TopologySpec{Kind: TopoFlatButterfly, A: 2 + r.IntN(2), B: 2, C: 1 + r.IntN(2)}
	}
	if s.Topology.Kind != TopoNone {
		s.Comm = core.CommMode(r.IntN(3)) // none, flow, packet
		s.SwitchSleepSec = -1
		if r.Bernoulli(0.3) {
			s.SwitchSleepSec = 0.2
		}
	}

	// Farm.
	maxServers := 12
	if h := s.Topology.Hosts(); s.Topology.Kind != TopoNone && h < maxServers {
		maxServers = h
	}
	s.Servers = 1 + r.IntN(maxServers)
	s.Profile = ProfileKind(r.IntN(3))
	s.Queue = server.QueueMode(r.IntN(2))
	s.DelayTimerSec = [...]float64{-1, 0, 0.05, 0.5}[r.IntN(4)]
	s.Heterogeneous = r.Bernoulli(0.4)
	s.GlobalQueue = r.Bernoulli(0.3)

	// Placement policy. Network-aware only composes with a topology.
	kinds := []PlacerKind{PlLeastLoaded, PlRoundRobin, PlPackFirst, PlRandom,
		PlAdaptivePool, PlProvisioner, PlDualTimer}
	if s.Topology.Kind != TopoNone {
		kinds = append(kinds, PlNetworkAware)
	}
	s.Placer = PlacerSpec{Kind: kinds[r.IntN(len(kinds))], TauSec: 0.05 + r.Float64()*0.5}

	// Workload.
	s.Arrival = ArrivalSpec{
		Kind:       ArrivalKind(r.IntN(4)),
		Rho:        0.1 + 0.7*r.Float64(),
		BurstRatio: 2 + r.Float64()*6,
		TraceSec:   2 + r.Float64()*6,
	}
	s.Factory = FactorySpec{
		Kind:    FactoryKind(r.IntN(4)),
		Service: ServiceKind(r.IntN(3)),
		Width:   1 + r.IntN(3),
		Layers:  1 + r.IntN(3),
	}
	if s.Comm != core.CommNone {
		// Keep packet-mode event counts bounded: <= ~70 MTUs per edge.
		s.Factory.EdgeBytes = int64(1+r.IntN(100)) * 1024
	}

	// Horizon. DVFS governors never stop ticking, so they pair only
	// with a time horizon.
	if r.Bernoulli(0.5) {
		s.DurationSec = 1 + 2*r.Float64()
		s.DVFS = r.Bernoulli(0.3)
	} else {
		s.MaxJobs = int64(50 + r.IntN(250))
	}
	// Trace arrivals derive their rate from farm capacity: a big farm
	// with a short service time can pack 10^5+ arrivals into a few trace
	// seconds. Always cap generation so one drawn scenario stays
	// test-sized regardless of farm × service composition.
	if s.Arrival.Kind == ArrTraceWiki || s.Arrival.Kind == ArrTraceNLANR {
		if s.MaxJobs == 0 || s.MaxJobs > 400 {
			s.MaxJobs = int64(100 + r.IntN(300))
		}
	}

	// Network-model axis, drawn from its own substream so every field
	// above keeps its historical draw for a given seed. Fluid only
	// composes with packet comm.
	nmr := r.Split("netmodel")
	if s.Comm == core.CommPacket && nmr.Bernoulli(0.3) {
		s.NetModel = network.ModelFluid
	}

	// Failure axis, drawn from a dedicated substream so every pre-fault
	// field above keeps its historical draw for a given seed. About a
	// third of drawn scenarios run under failure; network fault classes
	// compose only with a topology.
	fr := r.Split("faults")
	if fr.Bernoulli(0.35) {
		s.Faults.ServerCrashes = 1 + fr.IntN(3)
		s.Faults.ServerDownSec = 0.05 + fr.Float64()*0.4
		if fr.Bernoulli(0.5) {
			s.Faults.Orphans = sched.OrphanDrop
		}
		if s.Topology.Kind != TopoNone {
			if fr.Bernoulli(0.5) {
				s.Faults.LinkFlaps = 1 + fr.IntN(2)
				s.Faults.LinkDownSec = 0.02 + fr.Float64()*0.2
			}
			if fr.Bernoulli(0.35) {
				s.Faults.SwitchKills = 1
				s.Faults.SwitchDownSec = 0.05 + fr.Float64()*0.3
			}
		}
	}

	// Correlated-failure axes, drawn after every point-fault field so the
	// draws above keep their historical values for a given seed. Scope
	// blasts compose with any farm (switchless farms fall back to fixed
	// rack blocks); subtree kills need real switches.
	if fr.Bernoulli(0.3) {
		switch fr.IntN(3) {
		case 0:
			s.Faults.RackKills = 1
			s.Faults.RackDownSec = 0.05 + fr.Float64()*0.3
		case 1:
			s.Faults.PodKills = 1
			s.Faults.PodDownSec = 0.05 + fr.Float64()*0.3
		case 2:
			if s.Topology.Kind != TopoNone {
				s.Faults.SubtreeKills = 1
				s.Faults.SubtreeDownSec = 0.05 + fr.Float64()*0.3
			} else {
				s.Faults.RackKills = 1
				s.Faults.RackDownSec = 0.05 + fr.Float64()*0.3
			}
		}
	}
	if fr.Bernoulli(0.25) {
		// Renewal lifetimes a few times the horizon scale: a handful of
		// failures per run, never an event storm.
		s.Faults.ServerMTTFSec = 0.5 + fr.Float64()*2
		s.Faults.ServerMTTRSec = 0.05 + fr.Float64()*0.2
		if fr.Bernoulli(0.5) {
			s.Faults.WeibullShape = 0.8 + fr.Float64()*1.4
		}
		if fr.Bernoulli(0.5) {
			s.Faults.RepairCrews = 1 + fr.IntN(2)
		}
	}
	if fr.Bernoulli(0.2) {
		s.Faults.CascadeP = 0.3 + fr.Float64()*0.7
		s.Faults.CascadeDelaySec = 0.02 + fr.Float64()*0.1
		s.Faults.CascadeDepth = 1 + fr.IntN(2)
	}
	return s
}
