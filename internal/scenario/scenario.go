// Package scenario turns the simulator's full registry of builders —
// every topology, arrival process, job shape, placement policy, power
// profile and core mix — into declarative, machine-generatable
// experiment descriptors.
//
// HolDCSim's claim is *holistic* coverage (servers × networks ×
// policies), but the paper's evaluation exercises only the ~9 fixed
// configurations behind its figures. A Scenario is plain data: it can
// be cross-producted (Axes.Expand), drawn at random (Random), fuzzed
// (FuzzScenario in this package's tests), and every run carries the
// runtime invariant checker (internal/invariant), so the scenario space
// is explored with conservation laws verified rather than golden files
// spot-checked.
package scenario

import (
	"fmt"

	"holdcsim/internal/core"
	"holdcsim/internal/dist"
	"holdcsim/internal/fault"
	"holdcsim/internal/invariant"
	"holdcsim/internal/network"
	"holdcsim/internal/power"
	"holdcsim/internal/rng"
	"holdcsim/internal/sched"
	"holdcsim/internal/server"
	"holdcsim/internal/simtime"
	"holdcsim/internal/topology"
	"holdcsim/internal/trace"
	"holdcsim/internal/workload"
)

// ---------------------------------------------------------------------
// Topology axis
// ---------------------------------------------------------------------

// TopoKind selects a topology family from the registry.
type TopoKind int

// Topology kinds. TopoNone runs server-only (no network layer).
const (
	TopoNone TopoKind = iota
	TopoStar
	TopoFatTree
	TopoBCube
	TopoCamCube
	TopoFlatButterfly
)

// TopologySpec declares one topology instance. A, B, C are the
// kind-specific shape parameters:
//
//	Star:           A = hosts
//	FatTree:        A = k (even)
//	BCube:          A = n, B = k
//	CamCube:        A×B×C torus dimensions
//	FlatButterfly:  A = rows, B = cols, C = concentration
type TopologySpec struct {
	Kind    TopoKind
	A, B, C int
	RateBps float64 // 0 = family default
}

// Builder returns the topology builder, or nil for TopoNone.
func (t TopologySpec) Builder() topology.Topology {
	switch t.Kind {
	case TopoStar:
		return topology.Star{Hosts: t.A, RateBps: t.RateBps}
	case TopoFatTree:
		return topology.FatTree{K: t.A, RateBps: t.RateBps}
	case TopoBCube:
		return topology.BCube{N: t.A, K: t.B, RateBps: t.RateBps}
	case TopoCamCube:
		return topology.CamCube{X: t.A, Y: t.B, Z: t.C, RateBps: t.RateBps}
	case TopoFlatButterfly:
		return topology.FlattenedButterfly{Rows: t.A, Cols: t.B, Concentration: t.C, RateBps: t.RateBps}
	}
	return nil
}

// Hosts reports the host count the spec will build (0 for TopoNone).
func (t TopologySpec) Hosts() int {
	switch t.Kind {
	case TopoStar:
		return t.A
	case TopoFatTree:
		return t.A * t.A * t.A / 4
	case TopoBCube:
		n := 1
		for i := 0; i <= t.B; i++ {
			n *= t.A
		}
		return n
	case TopoCamCube:
		return t.A * t.B * t.C
	case TopoFlatButterfly:
		return t.A * t.B * t.C
	}
	return 0
}

// MaxSwitchDegree reports the largest port count any switch needs (0
// for switchless topologies), sizing the switch power profile.
func (t TopologySpec) MaxSwitchDegree() int {
	switch t.Kind {
	case TopoStar:
		return t.A
	case TopoFatTree:
		return t.A
	case TopoBCube:
		return t.A
	case TopoFlatButterfly:
		return t.C + (t.A - 1) + (t.B - 1)
	}
	return 0
}

// String implements fmt.Stringer.
func (t TopologySpec) String() string {
	switch t.Kind {
	case TopoStar:
		return fmt.Sprintf("star%d", t.A)
	case TopoFatTree:
		return fmt.Sprintf("fattree%d", t.A)
	case TopoBCube:
		return fmt.Sprintf("bcube%d-%d", t.A, t.B)
	case TopoCamCube:
		return fmt.Sprintf("camcube%dx%dx%d", t.A, t.B, t.C)
	case TopoFlatButterfly:
		return fmt.Sprintf("flatbfly%dx%dx%d", t.A, t.B, t.C)
	}
	return "none"
}

// ---------------------------------------------------------------------
// Arrival axis
// ---------------------------------------------------------------------

// ArrivalKind selects an arrival process from the registry.
type ArrivalKind int

// Arrival kinds.
const (
	ArrPoisson ArrivalKind = iota
	ArrMMPP
	ArrTraceWiki
	ArrTraceNLANR
)

// ArrivalSpec declares the workload's arrival process. Rho is the
// target utilization; the concrete rate is derived from the farm size
// and the factory's mean service demand, so the same spec composes
// sanely with any farm.
type ArrivalSpec struct {
	Kind ArrivalKind
	// Rho is the target system utilization in (0, 1).
	Rho float64
	// BurstRatio is the MMPP λH/λL ratio (>= 1); ignored elsewhere.
	BurstRatio float64
	// TraceSec is the synthesized trace length for the trace kinds.
	TraceSec float64
}

// String implements fmt.Stringer.
func (a ArrivalSpec) String() string {
	switch a.Kind {
	case ArrMMPP:
		return fmt.Sprintf("mmpp%.2g-r%g", a.Rho, a.BurstRatio)
	case ArrTraceWiki:
		return fmt.Sprintf("wiki%.2g", a.Rho)
	case ArrTraceNLANR:
		return fmt.Sprintf("nlanr%.2g", a.Rho)
	}
	return fmt.Sprintf("poisson%.2g", a.Rho)
}

// process constructs the arrival process for a farm with the given
// aggregate service capacity. r must be a stream derived only from the
// scenario seed (the process is part of the run's pure function).
func (a ArrivalSpec) process(rate float64, r *rng.Source) (workload.ArrivalProcess, error) {
	switch a.Kind {
	case ArrPoisson:
		return workload.Poisson{Rate: rate}, nil
	case ArrMMPP:
		ratio := a.BurstRatio
		if ratio < 1 {
			return nil, fmt.Errorf("scenario: MMPP burst ratio %g < 1", ratio)
		}
		// Burst duty cycle 1/3 (0.5 s bursts, 1 s quiet), mean rate
		// preserved: rate = λH/3 + 2λL/3 with λH = ratio·λL.
		lambdaL := 3 * rate / (ratio + 2)
		proc, err := dist.NewMMPP2(ratio*lambdaL, lambdaL, 0.5, 1.0)
		if err != nil {
			return nil, err
		}
		return workload.MMPP{Proc: proc}, nil
	case ArrTraceWiki:
		dur := a.TraceSec
		if dur <= 0 {
			dur = 10
		}
		tr := trace.SyntheticWikipedia(trace.DefaultWikipediaConfig(dur, rate), r.Split("trace/wiki"))
		return workload.NewTraceReplay(tr), nil
	case ArrTraceNLANR:
		dur := a.TraceSec
		if dur <= 0 {
			dur = 10
		}
		tr := trace.SyntheticNLANR(trace.DefaultNLANRConfig(dur), r.Split("trace/nlanr"))
		// NLANR synthesis fixes its own burst rates; rescale to the
		// requested mean rate so utilization stays in range.
		if mr := tr.MeanRate(); mr > 0 && rate > 0 {
			tr.Scale(mr / rate)
		}
		return workload.NewTraceReplay(tr), nil
	}
	return nil, fmt.Errorf("scenario: unknown arrival kind %d", a.Kind)
}

// ---------------------------------------------------------------------
// Factory axis
// ---------------------------------------------------------------------

// FactoryKind selects a job shape from the registry.
type FactoryKind int

// Factory kinds.
const (
	FacSingle FactoryKind = iota
	FacTwoTier
	FacScatterGather
	FacRandomDAG
)

// ServiceKind selects a service-time profile.
type ServiceKind int

// Service profiles (paper Sec. IV).
const (
	SvcWebSearch  ServiceKind = iota // exp, 5 ms mean
	SvcWebServing                    // exp, 120 ms mean
	SvcWikipedia                     // uniform 3–10 ms
)

func (s ServiceKind) sampler() dist.Sampler {
	switch s {
	case SvcWebServing:
		return workload.WebServingService()
	case SvcWikipedia:
		return workload.WikipediaService()
	}
	return workload.WebSearchService()
}

// FactorySpec declares the job DAG shape.
type FactorySpec struct {
	Kind    FactoryKind
	Service ServiceKind
	// Width is the scatter-gather fan-out / random-DAG max layer width.
	Width int
	// Layers is the random-DAG depth.
	Layers int
	// EdgeBytes is the data carried per DAG edge.
	EdgeBytes int64
}

// String implements fmt.Stringer.
func (f FactorySpec) String() string {
	switch f.Kind {
	case FacTwoTier:
		return "twotier"
	case FacScatterGather:
		return fmt.Sprintf("scatter%d", f.Width)
	case FacRandomDAG:
		return fmt.Sprintf("dag%dx%d", f.Layers, f.Width)
	}
	return "single"
}

// factory constructs the workload factory.
func (f FactorySpec) factory() (workload.JobFactory, error) {
	svc := f.Service.sampler()
	switch f.Kind {
	case FacSingle:
		return workload.SingleTask{Service: svc}, nil
	case FacTwoTier:
		return workload.TwoTier{AppService: svc, DBService: svc, Bytes: f.EdgeBytes}, nil
	case FacScatterGather:
		if f.Width < 1 {
			return nil, fmt.Errorf("scenario: scatter-gather width %d < 1", f.Width)
		}
		return workload.ScatterGather{
			Width: f.Width, RootSize: svc, WorkerSize: svc, AggSize: svc,
			Bytes: f.EdgeBytes,
		}, nil
	case FacRandomDAG:
		if f.Width < 1 || f.Layers < 1 {
			return nil, fmt.Errorf("scenario: random DAG shape %dx%d invalid", f.Layers, f.Width)
		}
		mean := simtime.FromSeconds(svc.Mean())
		return workload.RandomDAG{
			Layers: f.Layers, MaxWidth: f.Width, MaxDeps: 2,
			MinSize: mean / 2, MaxSize: mean * 2, EdgeBytes: f.EdgeBytes,
		}, nil
	}
	return nil, fmt.Errorf("scenario: unknown factory kind %d", f.Kind)
}

// meanTasksPerJob estimates E[tasks] for utilization-rate derivation.
func (f FactorySpec) meanTasksPerJob() float64 {
	switch f.Kind {
	case FacTwoTier:
		return 2
	case FacScatterGather:
		return float64(f.Width) + 2
	case FacRandomDAG:
		return float64(f.Layers) * (1 + float64(f.Width)) / 2
	}
	return 1
}

// ---------------------------------------------------------------------
// Placer axis
// ---------------------------------------------------------------------

// PlacerKind selects a placement policy (and, for the pool policies,
// its controller) from the registry.
type PlacerKind int

// Placer kinds.
const (
	PlLeastLoaded PlacerKind = iota
	PlRoundRobin
	PlPackFirst
	PlRandom
	PlNetworkAware
	PlAdaptivePool
	PlProvisioner
	PlDualTimer
)

// PlacerSpec declares the placement/power-management policy.
type PlacerSpec struct {
	Kind PlacerKind
	// TauSec parameterizes the pool policies' delay timers.
	TauSec float64
}

// String implements fmt.Stringer.
func (p PlacerSpec) String() string {
	switch p.Kind {
	case PlRoundRobin:
		return "roundrobin"
	case PlPackFirst:
		return "packfirst"
	case PlRandom:
		return "random"
	case PlNetworkAware:
		return "netaware"
	case PlAdaptivePool:
		return "adaptive"
	case PlProvisioner:
		return "provisioner"
	case PlDualTimer:
		return "dualtimer"
	}
	return "leastloaded"
}

// needsNetwork reports whether the policy requires a live network.
func (p PlacerSpec) needsNetwork() bool { return p.Kind == PlNetworkAware }

// apply wires the policy into the config. r must derive only from the
// scenario seed.
func (p PlacerSpec) apply(cfg *core.Config, servers int, r *rng.Source) error {
	tau := simtime.FromSeconds(p.TauSec)
	if tau <= 0 {
		tau = 200 * simtime.Millisecond
	}
	switch p.Kind {
	case PlLeastLoaded:
		cfg.Placer = sched.LeastLoaded{}
	case PlRoundRobin:
		cfg.Placer = sched.RoundRobin{}
	case PlPackFirst:
		cfg.Placer = sched.PackFirst{}
	case PlRandom:
		src := r.Split("placer/random")
		cfg.Placer = sched.Random{Next: src.IntN}
	case PlNetworkAware:
		cfg.PlacerFor = func(net *network.Network, hostOf sched.HostMapper) sched.Placer {
			return sched.NetworkAware{Net: net, HostOf: hostOf, Frontend: 0}
		}
	case PlAdaptivePool:
		pool := sched.NewAdaptivePool(3, 1, tau)
		cfg.Placer = pool
		cfg.Controller = pool
	case PlProvisioner:
		prov := sched.NewProvisioner(0.5, 3)
		cfg.Placer = prov
		cfg.Controller = prov
	case PlDualTimer:
		high := servers / 2
		if high < 1 {
			high = 1
		}
		d := sched.NewDualTimer(high, tau, tau*4)
		cfg.Placer = d
		cfg.Controller = d
	default:
		return fmt.Errorf("scenario: unknown placer kind %d", p.Kind)
	}
	return nil
}

// ---------------------------------------------------------------------
// Server axis
// ---------------------------------------------------------------------

// ProfileKind selects a server power profile.
type ProfileKind int

// Server profiles.
const (
	ProfFourCore ProfileKind = iota
	ProfXeon10
	ProfDualSocket
)

func (p ProfileKind) profile() *power.ServerProfile {
	switch p {
	case ProfXeon10:
		return power.XeonE5_2680()
	case ProfDualSocket:
		return power.DualSocketXeon()
	}
	return power.FourCoreServer()
}

// String implements fmt.Stringer.
func (p ProfileKind) String() string {
	switch p {
	case ProfXeon10:
		return "xeon10"
	case ProfDualSocket:
		return "dual20"
	}
	return "4core"
}

// ---------------------------------------------------------------------
// Scenario
// ---------------------------------------------------------------------

// Scenario is one declarative simulation configuration: plain data,
// expandable by Axes, drawable by Random, mutable by fuzzers.
type Scenario struct {
	Seed uint64

	Topology TopologySpec
	Comm     core.CommMode

	Servers       int
	Profile       ProfileKind
	Queue         server.QueueMode
	DelayTimerSec float64 // < 0 disables the server delay timer
	Heterogeneous bool    // odd servers get a fast/slow core-speed mix
	DVFS          bool    // per-server ondemand DVFS governors

	Placer      PlacerSpec
	GlobalQueue bool

	Arrival ArrivalSpec
	Factory FactorySpec

	// Horizon: at least one must be set (or a trace arrival bounds the
	// run by itself).
	MaxJobs     int64
	DurationSec float64

	// SwitchSleepSec < 0 disables line-card sleep.
	SwitchSleepSec float64

	// Faults is the failure axis: server crash/recover, link flap, and
	// switch death drawn deterministically from the scenario seed. The
	// zero value is fault-free (the injector is not attached at all).
	Faults fault.Spec

	// CheckStationary enables the statistical Little's-law check.
	CheckStationary bool
}

// Name composes a stable human-readable identifier. Fault-free
// scenarios keep their historical names; faulted ones append the spec.
func (s Scenario) Name() string {
	name := fmt.Sprintf("%s/%s/%s/%s/%s/%s/q%d", s.Topology, s.Comm, s.Placer,
		s.Arrival, s.Factory, s.Profile, int(s.Queue))
	if !s.Faults.Empty() {
		name += "/" + s.Faults.String()
	}
	return name
}

// Validate reports whether the scenario composes a legal configuration.
func (s Scenario) Validate() error {
	if s.Servers < 1 {
		return fmt.Errorf("scenario: %d servers", s.Servers)
	}
	if s.Topology.Kind == TopoNone {
		if s.Comm != core.CommNone {
			return fmt.Errorf("scenario: comm mode %v without a topology", s.Comm)
		}
		if s.Placer.needsNetwork() {
			return fmt.Errorf("scenario: placer %v without a topology", s.Placer)
		}
	} else if hosts := s.Topology.Hosts(); s.Servers > hosts {
		return fmt.Errorf("scenario: %d servers exceed %s's %d hosts", s.Servers, s.Topology, hosts)
	}
	isTrace := s.Arrival.Kind == ArrTraceWiki || s.Arrival.Kind == ArrTraceNLANR
	if s.MaxJobs <= 0 && s.DurationSec <= 0 && !isTrace {
		return fmt.Errorf("scenario: unbounded horizon")
	}
	if s.DVFS && s.DurationSec <= 0 {
		// The governor re-arms its tick forever; only a time horizon
		// terminates such a run.
		return fmt.Errorf("scenario: DVFS requires a duration horizon")
	}
	if s.Arrival.Rho <= 0 || s.Arrival.Rho >= 1.5 {
		return fmt.Errorf("scenario: utilization %g out of range", s.Arrival.Rho)
	}
	if err := s.Faults.Validate(); err != nil {
		return err
	}
	return nil
}

// Config assembles the core configuration. The result is a pure
// function of the scenario value (all randomness derives from Seed).
func (s Scenario) Config() (core.Config, error) {
	if err := s.Validate(); err != nil {
		return core.Config{}, err
	}
	prof := s.Profile.profile()
	sc := server.DefaultConfig(prof)
	sc.QueueMode = s.Queue
	if s.DelayTimerSec >= 0 {
		sc.DelayTimerEnabled = true
		sc.DelayTimer = simtime.FromSeconds(s.DelayTimerSec)
	}
	cfg := core.Config{
		Seed:            s.Seed,
		Servers:         s.Servers,
		ServerConfig:    sc,
		UseGlobalQueue:  s.GlobalQueue,
		MaxJobs:         s.MaxJobs,
		Duration:        simtime.FromSeconds(s.DurationSec),
		Check:           true,
		CheckStationary: s.CheckStationary,
	}
	if s.Heterogeneous {
		cores := prof.Cores
		mix := make([]float64, cores)
		for i := range mix {
			if i < cores/2 {
				mix[i] = 1.25
			} else {
				mix[i] = 0.8
			}
		}
		cfg.ConfigureServer = func(i int, c *server.Config) {
			if i%2 == 1 {
				c.CoreSpeeds = mix
			}
		}
	}
	if s.Topology.Kind != TopoNone {
		cfg.Topology = s.Topology.Builder()
		ports := s.Topology.MaxSwitchDegree()
		var swProf *power.SwitchProfile
		if ports > 0 {
			swProf = power.DataCenter10G(ports)
		}
		ncfg := network.DefaultConfig(swProf)
		if s.SwitchSleepSec >= 0 {
			ncfg.SwitchSleepIdle = simtime.FromSeconds(s.SwitchSleepSec)
		} else {
			ncfg.SwitchSleepIdle = -1
		}
		cfg.NetworkConfig = ncfg
		cfg.CommMode = s.Comm
	}
	// All scenario-level randomness (trace synthesis, the random
	// placer) splits off one master stream per seed, disjoint from the
	// core's own "workload" stream by label.
	master := rng.New(s.Seed).Split("scenario")
	if err := s.Placer.apply(&cfg, s.Servers, master); err != nil {
		return core.Config{}, err
	}
	cores := prof.Cores
	rate := workload.UtilizationRate(s.Arrival.Rho, s.Servers, cores,
		s.Factory.Service.sampler().Mean()*s.Factory.meanTasksPerJob())
	proc, err := s.Arrival.process(rate, master)
	if err != nil {
		return core.Config{}, err
	}
	cfg.Arrivals = proc
	factory, err := s.Factory.factory()
	if err != nil {
		return core.Config{}, err
	}
	cfg.Factory = factory
	if !s.Faults.Empty() {
		spec := s.Faults
		if spec.HorizonSec <= 0 {
			// MaxJobs horizons have no fixed virtual end; estimate the
			// generation span from the derived arrival rate so fault
			// instants land inside the run. Pure function of the
			// scenario value, so replay stays deterministic.
			spec.HorizonSec = s.DurationSec
			if spec.HorizonSec <= 0 && rate > 0 {
				spec.HorizonSec = float64(s.MaxJobs) / rate
			}
			if spec.HorizonSec <= 0 {
				spec.HorizonSec = 1
			}
		}
		cfg.Faults = &spec
	}
	return cfg, nil
}

// Build constructs the data center (invariant checking always on).
func (s Scenario) Build() (*core.DataCenter, error) {
	cfg, err := s.Config()
	if err != nil {
		return nil, err
	}
	dc, err := core.Build(cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name(), err)
	}
	if s.DVFS {
		for _, srv := range dc.Servers {
			server.NewDVFSGovernor(srv).Start()
		}
	}
	return dc, nil
}

// Result is one scenario run's outcome.
type Result struct {
	Scenario   Scenario
	Results    *core.Results
	Violations []invariant.Violation
}

// Run builds and executes the scenario. The returned error covers both
// construction failures and invariant violations; Result.Violations
// carries the latter in structured form.
func (s Scenario) Run() (Result, error) {
	dc, err := s.Build()
	if err != nil {
		return Result{Scenario: s}, err
	}
	res, err := dc.Run()
	out := Result{Scenario: s, Results: res}
	if c := dc.Checker(); c != nil {
		out.Violations = c.Violations()
	}
	if err != nil {
		return out, fmt.Errorf("scenario %s: %w", s.Name(), err)
	}
	return out, nil
}
