// Package scenario turns the simulator's full registry of builders —
// every topology, arrival process, job shape, placement policy, power
// profile and core mix — into declarative, machine-generatable
// experiment descriptors.
//
// HolDCSim's claim is *holistic* coverage (servers × networks ×
// policies), but the paper's evaluation exercises only the ~9 fixed
// configurations behind its figures. A Scenario is plain data: it can
// be cross-producted (Axes.Expand), drawn at random (Random), fuzzed
// (FuzzScenario in this package's tests), and every run carries the
// runtime invariant checker (internal/invariant), so the scenario space
// is explored with conservation laws verified rather than golden files
// spot-checked.
package scenario

import (
	"fmt"
	"math"
	"os"

	"holdcsim/internal/core"
	"holdcsim/internal/dist"
	"holdcsim/internal/fault"
	"holdcsim/internal/invariant"
	"holdcsim/internal/modelcov"
	"holdcsim/internal/network"
	"holdcsim/internal/power"
	"holdcsim/internal/rng"
	"holdcsim/internal/sched"
	"holdcsim/internal/server"
	"holdcsim/internal/simtime"
	"holdcsim/internal/topology"
	"holdcsim/internal/trace"
	"holdcsim/internal/workload"
)

// ---------------------------------------------------------------------
// Topology axis
// ---------------------------------------------------------------------

// TopoKind selects a topology family from the registry.
type TopoKind int

// Topology kinds. TopoNone runs server-only (no network layer).
const (
	TopoNone TopoKind = iota
	TopoStar
	TopoFatTree
	TopoBCube
	TopoCamCube
	TopoFlatButterfly
)

// TopologySpec declares one topology instance. A, B, C are the
// kind-specific shape parameters:
//
//	Star:           A = hosts
//	FatTree:        A = k (even)
//	BCube:          A = n, B = k
//	CamCube:        A×B×C torus dimensions
//	FlatButterfly:  A = rows, B = cols, C = concentration
type TopologySpec struct {
	Kind    TopoKind `json:"kind"`
	A       int      `json:"a,omitempty"`
	B       int      `json:"b,omitempty"`
	C       int      `json:"c,omitempty"`
	RateBps float64  `json:"rateBps,omitempty"` // 0 = family default
}

// Builder returns the topology builder, or nil for TopoNone.
func (t TopologySpec) Builder() topology.Topology {
	switch t.Kind {
	case TopoStar:
		return topology.Star{Hosts: t.A, RateBps: t.RateBps}
	case TopoFatTree:
		return topology.FatTree{K: t.A, RateBps: t.RateBps}
	case TopoBCube:
		return topology.BCube{N: t.A, K: t.B, RateBps: t.RateBps}
	case TopoCamCube:
		return topology.CamCube{X: t.A, Y: t.B, Z: t.C, RateBps: t.RateBps}
	case TopoFlatButterfly:
		return topology.FlattenedButterfly{Rows: t.A, Cols: t.B, Concentration: t.C, RateBps: t.RateBps}
	}
	return nil
}

// Hosts reports the host count the spec will build (0 for TopoNone).
func (t TopologySpec) Hosts() int {
	switch t.Kind {
	case TopoStar:
		return t.A
	case TopoFatTree:
		return t.A * t.A * t.A / 4
	case TopoBCube:
		n := 1
		for i := 0; i <= t.B; i++ {
			n *= t.A
		}
		return n
	case TopoCamCube:
		return t.A * t.B * t.C
	case TopoFlatButterfly:
		return t.A * t.B * t.C
	}
	return 0
}

// MaxSwitchDegree reports the largest port count any switch needs (0
// for switchless topologies), sizing the switch power profile.
func (t TopologySpec) MaxSwitchDegree() int {
	switch t.Kind {
	case TopoStar:
		return t.A
	case TopoFatTree:
		return t.A
	case TopoBCube:
		return t.A
	case TopoFlatButterfly:
		return t.C + (t.A - 1) + (t.B - 1)
	}
	return 0
}

// String implements fmt.Stringer. Injective: shape parameters the kind
// ignores are appended, when nonzero, as a parenthesized tail, and a
// non-default link rate is always included.
func (t TopologySpec) String() string {
	var s string
	var deadShape bool
	switch t.Kind {
	case TopoStar:
		s = fmt.Sprintf("star%d", t.A)
		deadShape = t.B != 0 || t.C != 0
	case TopoFatTree:
		s = fmt.Sprintf("fattree%d", t.A)
		deadShape = t.B != 0 || t.C != 0
	case TopoBCube:
		s = fmt.Sprintf("bcube%d-%d", t.A, t.B)
		deadShape = t.C != 0
	case TopoCamCube:
		s = fmt.Sprintf("camcube%dx%dx%d", t.A, t.B, t.C)
	case TopoFlatButterfly:
		s = fmt.Sprintf("flatbfly%dx%dx%d", t.A, t.B, t.C)
	case TopoNone:
		s = "none"
		deadShape = t.A != 0 || t.B != 0 || t.C != 0
	default:
		return fmt.Sprintf("topo(%d)%dx%dx%d@%g", int(t.Kind), t.A, t.B, t.C, t.RateBps)
	}
	if t.RateBps != 0 {
		s += fmt.Sprintf("@%g", t.RateBps)
	}
	if deadShape {
		s += fmt.Sprintf("(%d,%d,%d)", t.A, t.B, t.C)
	}
	return s
}

// ---------------------------------------------------------------------
// Arrival axis
// ---------------------------------------------------------------------

// ArrivalKind selects an arrival process from the registry.
type ArrivalKind int

// Arrival kinds. ArrTraceFile replays an externally recorded trace
// file; Random never draws it (a random draw cannot invent a file), so
// it enters the registry only through imported scenarios.
const (
	ArrPoisson ArrivalKind = iota
	ArrMMPP
	ArrTraceWiki
	ArrTraceNLANR
	ArrTraceFile
)

// ArrivalSpec declares the workload's arrival process. Rho is the
// target utilization; the concrete rate is derived from the farm size
// and the factory's mean service demand, so the same spec composes
// sanely with any farm.
type ArrivalSpec struct {
	Kind ArrivalKind `json:"kind"`
	// Rho is the target system utilization in (0, 1).
	Rho float64 `json:"rho"`
	// BurstRatio is the MMPP λH/λL ratio (>= 1); ignored elsewhere.
	BurstRatio float64 `json:"burstRatio,omitempty"`
	// TraceSec is the synthesized trace length for the synthetic trace
	// kinds.
	TraceSec float64 `json:"traceSec,omitempty"`
	// TraceFile is the recorded arrival trace (one timestamp per line,
	// seconds; trace.Read format) replayed for ArrTraceFile. The trace
	// is rescaled so its mean rate hits the utilization target Rho, the
	// same composition rule the synthetic traces follow.
	TraceFile string `json:"traceFile,omitempty"`
	// ClipFromSec/ClipToSec select a half-open window [from, to) of the
	// recorded trace to replay (ArrTraceFile only). Clipping happens
	// before rate-rescaling, so Rho targets the window's own mean rate,
	// not the full file's. ClipToSec == 0 with ClipFromSec set means
	// "to the end of the trace".
	ClipFromSec float64 `json:"clipFromSec,omitempty"`
	ClipToSec   float64 `json:"clipToSec,omitempty"`
}

// String implements fmt.Stringer. The rendering is injective: every
// field the kind consumes is formatted with round-trip precision, and
// fields the kind ignores, when nonzero, are appended in a parenthesized
// tail so two distinct specs never share a label (runner rep-seeding
// splits on scenario labels).
func (a ArrivalSpec) String() string {
	var s string
	switch a.Kind {
	case ArrPoisson:
		s = fmt.Sprintf("poisson%g", a.Rho)
	case ArrMMPP:
		s = fmt.Sprintf("mmpp%g-r%g", a.Rho, a.BurstRatio)
	case ArrTraceWiki:
		s = fmt.Sprintf("wiki%g-t%g", a.Rho, a.TraceSec)
	case ArrTraceNLANR:
		s = fmt.Sprintf("nlanr%g-t%g", a.Rho, a.TraceSec)
	case ArrTraceFile:
		s = fmt.Sprintf("file%g-%q", a.Rho, a.TraceFile)
		if a.ClipFromSec != 0 || a.ClipToSec != 0 {
			s += fmt.Sprintf("-c%g:%g", a.ClipFromSec, a.ClipToSec)
		}
	default:
		s = fmt.Sprintf("arr(%d)%g-r%g-t%g-%q", int(a.Kind), a.Rho, a.BurstRatio, a.TraceSec, a.TraceFile)
		return s
	}
	deadBurst := a.Kind != ArrMMPP && a.BurstRatio != 0
	deadTrace := a.Kind != ArrTraceWiki && a.Kind != ArrTraceNLANR && a.TraceSec != 0
	deadFile := a.Kind != ArrTraceFile && a.TraceFile != ""
	if deadBurst || deadTrace || deadFile {
		s += fmt.Sprintf("(r%g-t%g-%q)", a.BurstRatio, a.TraceSec, a.TraceFile)
	}
	if a.Kind != ArrTraceFile && (a.ClipFromSec != 0 || a.ClipToSec != 0) {
		s += fmt.Sprintf("(c%g:%g)", a.ClipFromSec, a.ClipToSec)
	}
	return s
}

// process constructs the arrival process for a farm with the given
// aggregate service capacity. r must be a stream derived only from the
// scenario seed (the process is part of the run's pure function).
func (a ArrivalSpec) process(rate float64, r *rng.Source) (workload.ArrivalProcess, error) {
	switch a.Kind {
	case ArrPoisson:
		return workload.Poisson{Rate: rate}, nil
	case ArrMMPP:
		ratio := a.BurstRatio
		if ratio < 1 {
			return nil, fmt.Errorf("scenario: MMPP burst ratio %g < 1", ratio)
		}
		// Burst duty cycle 1/3 (0.5 s bursts, 1 s quiet), mean rate
		// preserved: rate = λH/3 + 2λL/3 with λH = ratio·λL.
		lambdaL := 3 * rate / (ratio + 2)
		proc, err := dist.NewMMPP2(ratio*lambdaL, lambdaL, 0.5, 1.0)
		if err != nil {
			return nil, err
		}
		return workload.MMPP{Proc: proc}, nil
	case ArrTraceWiki:
		dur := a.TraceSec
		if dur <= 0 {
			dur = 10
		}
		tr := trace.SyntheticWikipedia(trace.DefaultWikipediaConfig(dur, rate), r.Split("trace/wiki"))
		return workload.NewTraceReplay(tr), nil
	case ArrTraceNLANR:
		dur := a.TraceSec
		if dur <= 0 {
			dur = 10
		}
		tr := trace.SyntheticNLANR(trace.DefaultNLANRConfig(dur), r.Split("trace/nlanr"))
		// NLANR synthesis fixes its own burst rates; rescale to the
		// requested mean rate so utilization stays in range.
		return replayScaled(tr, rate), nil
	case ArrTraceFile:
		f, err := os.Open(a.TraceFile)
		if err != nil {
			return nil, fmt.Errorf("scenario: arrival trace: %w", err)
		}
		defer f.Close()
		// The recorded trace rides the same capped, validated loader as
		// every other external trace (finite, nonnegative, nondecreasing
		// timestamps; arrival count bounded) and the same rate-rescaling
		// rule as the synthetic NLANR path, so Rho composes with any farm.
		tr, err := trace.Read(f)
		if err != nil {
			return nil, fmt.Errorf("scenario: arrival trace %s: %w", a.TraceFile, err)
		}
		if tr.Len() == 0 {
			return nil, fmt.Errorf("scenario: arrival trace %s has no arrivals", a.TraceFile)
		}
		if a.ClipFromSec != 0 || a.ClipToSec != 0 {
			to := a.ClipToSec
			if to == 0 {
				// Open-ended window: Clip's upper bound is exclusive, so
				// nudge past the last timestamp to keep it.
				to = tr.Duration() + 1
			}
			tr, err = tr.Clip(a.ClipFromSec, to)
			if err != nil {
				return nil, fmt.Errorf("scenario: arrival trace %s: %w", a.TraceFile, err)
			}
			if tr.Len() == 0 {
				return nil, fmt.Errorf("scenario: arrival trace %s clip window [%g, %g) is empty",
					a.TraceFile, a.ClipFromSec, to)
			}
		}
		return replayScaled(tr, rate), nil
	}
	return nil, fmt.Errorf("scenario: unknown arrival kind %d", a.Kind)
}

// replayScaled rescales a trace whose own mean rate is fixed (recorded
// files, NLANR synthesis) so it hits the utilization-derived target
// rate, then wraps it for replay. One rule for every external trace:
// changing the Rho composition here changes it everywhere.
func replayScaled(tr *trace.Trace, rate float64) *workload.TraceReplay {
	if mr := tr.MeanRate(); mr > 0 && rate > 0 {
		tr.Scale(mr / rate)
	}
	return workload.NewTraceReplay(tr)
}

// ---------------------------------------------------------------------
// Factory axis
// ---------------------------------------------------------------------

// FactoryKind selects a job shape from the registry.
type FactoryKind int

// Factory kinds.
const (
	FacSingle FactoryKind = iota
	FacTwoTier
	FacScatterGather
	FacRandomDAG
)

// ServiceKind selects a service-time profile.
type ServiceKind int

// Service profiles (paper Sec. IV).
const (
	SvcWebSearch  ServiceKind = iota // exp, 5 ms mean
	SvcWebServing                    // exp, 120 ms mean
	SvcWikipedia                     // uniform 3–10 ms
)

// String implements fmt.Stringer.
func (s ServiceKind) String() string {
	switch s {
	case SvcWebServing:
		return "webserving"
	case SvcWikipedia:
		return "wikipedia"
	case SvcWebSearch:
		return "websearch"
	}
	return fmt.Sprintf("svc(%d)", int(s))
}

func (s ServiceKind) sampler() dist.Sampler {
	switch s {
	case SvcWebServing:
		return workload.WebServingService()
	case SvcWikipedia:
		return workload.WikipediaService()
	}
	return workload.WebSearchService()
}

// FactorySpec declares the job DAG shape.
type FactorySpec struct {
	Kind    FactoryKind `json:"kind"`
	Service ServiceKind `json:"service"`
	// Width is the scatter-gather fan-out / random-DAG max layer width.
	Width int `json:"width,omitempty"`
	// Layers is the random-DAG depth.
	Layers int `json:"layers,omitempty"`
	// EdgeBytes is the data carried per DAG edge.
	EdgeBytes int64 `json:"edgeBytes,omitempty"`
}

// String implements fmt.Stringer. Injective: the service profile and
// edge payload — both of which change the simulation — are part of the
// label (they used to be dropped, so distinct imported scenarios could
// collide on one run label), and fields the kind ignores are appended
// when nonzero.
func (f FactorySpec) String() string {
	var s string
	var deadW, deadL, deadE bool
	switch f.Kind {
	case FacSingle:
		s = fmt.Sprintf("single-%s", f.Service)
		deadW, deadL, deadE = true, true, true
	case FacTwoTier:
		s = fmt.Sprintf("twotier-%s-e%d", f.Service, f.EdgeBytes)
		deadW, deadL = true, true
	case FacScatterGather:
		s = fmt.Sprintf("scatter%d-%s-e%d", f.Width, f.Service, f.EdgeBytes)
		deadL = true
	case FacRandomDAG:
		s = fmt.Sprintf("dag%dx%d-%s-e%d", f.Layers, f.Width, f.Service, f.EdgeBytes)
	default:
		return fmt.Sprintf("fac(%d)-%s-w%d-l%d-e%d", int(f.Kind), f.Service, f.Width, f.Layers, f.EdgeBytes)
	}
	if (deadW && f.Width != 0) || (deadL && f.Layers != 0) || (deadE && f.EdgeBytes != 0) {
		s += fmt.Sprintf("(w%d-l%d-e%d)", f.Width, f.Layers, f.EdgeBytes)
	}
	return s
}

// factory constructs the workload factory.
func (f FactorySpec) factory() (workload.JobFactory, error) {
	svc := f.Service.sampler()
	switch f.Kind {
	case FacSingle:
		return workload.SingleTask{Service: svc}, nil
	case FacTwoTier:
		return workload.TwoTier{AppService: svc, DBService: svc, Bytes: f.EdgeBytes}, nil
	case FacScatterGather:
		if f.Width < 1 {
			return nil, fmt.Errorf("scenario: scatter-gather width %d < 1", f.Width)
		}
		return workload.ScatterGather{
			Width: f.Width, RootSize: svc, WorkerSize: svc, AggSize: svc,
			Bytes: f.EdgeBytes,
		}, nil
	case FacRandomDAG:
		if f.Width < 1 || f.Layers < 1 {
			return nil, fmt.Errorf("scenario: random DAG shape %dx%d invalid", f.Layers, f.Width)
		}
		mean := simtime.FromSeconds(svc.Mean())
		return workload.RandomDAG{
			Layers: f.Layers, MaxWidth: f.Width, MaxDeps: 2,
			MinSize: mean / 2, MaxSize: mean * 2, EdgeBytes: f.EdgeBytes,
		}, nil
	}
	return nil, fmt.Errorf("scenario: unknown factory kind %d", f.Kind)
}

// meanTasksPerJob estimates E[tasks] for utilization-rate derivation.
func (f FactorySpec) meanTasksPerJob() float64 {
	switch f.Kind {
	case FacTwoTier:
		return 2
	case FacScatterGather:
		return float64(f.Width) + 2
	case FacRandomDAG:
		return float64(f.Layers) * (1 + float64(f.Width)) / 2
	}
	return 1
}

// ---------------------------------------------------------------------
// Placer axis
// ---------------------------------------------------------------------

// PlacerKind selects a placement policy (and, for the pool policies,
// its controller) from the registry.
type PlacerKind int

// Placer kinds.
const (
	PlLeastLoaded PlacerKind = iota
	PlRoundRobin
	PlPackFirst
	PlRandom
	PlNetworkAware
	PlAdaptivePool
	PlProvisioner
	PlDualTimer
)

// PlacerSpec declares the placement/power-management policy.
type PlacerSpec struct {
	Kind PlacerKind `json:"kind"`
	// TauSec parameterizes the pool policies' delay timers.
	TauSec float64 `json:"tauSec,omitempty"`
}

// String implements fmt.Stringer. Injective: TauSec is included for the
// policies that consume it, and appended parenthesized when set on one
// that does not.
func (p PlacerSpec) String() string {
	var name string
	switch p.Kind {
	case PlLeastLoaded:
		name = "leastloaded"
	case PlRoundRobin:
		name = "roundrobin"
	case PlPackFirst:
		name = "packfirst"
	case PlRandom:
		name = "random"
	case PlNetworkAware:
		name = "netaware"
	case PlAdaptivePool:
		name = "adaptive"
	case PlProvisioner:
		name = "provisioner"
	case PlDualTimer:
		name = "dualtimer"
	default:
		return fmt.Sprintf("placer(%d)-t%g", int(p.Kind), p.TauSec)
	}
	if p.TauSec == 0 {
		return name
	}
	if p.Kind == PlAdaptivePool || p.Kind == PlDualTimer {
		return fmt.Sprintf("%s-t%g", name, p.TauSec)
	}
	return fmt.Sprintf("%s(t%g)", name, p.TauSec)
}

// needsNetwork reports whether the policy requires a live network.
func (p PlacerSpec) needsNetwork() bool { return p.Kind == PlNetworkAware }

// apply wires the policy into the config. r must derive only from the
// scenario seed.
func (p PlacerSpec) apply(cfg *core.Config, servers int, r *rng.Source) error {
	tau := simtime.FromSeconds(p.TauSec)
	if tau <= 0 {
		tau = 200 * simtime.Millisecond
	}
	switch p.Kind {
	case PlLeastLoaded:
		cfg.Placer = sched.LeastLoaded{}
	case PlRoundRobin:
		cfg.Placer = sched.RoundRobin{}
	case PlPackFirst:
		cfg.Placer = sched.PackFirst{}
	case PlRandom:
		src := r.Split("placer/random")
		cfg.Placer = sched.Random{Next: src.IntN}
	case PlNetworkAware:
		cfg.PlacerFor = func(net *network.Network, hostOf sched.HostMapper) sched.Placer {
			return sched.NetworkAware{Net: net, HostOf: hostOf, Frontend: 0}
		}
	case PlAdaptivePool:
		pool := sched.NewAdaptivePool(3, 1, tau)
		cfg.Placer = pool
		cfg.Controller = pool
	case PlProvisioner:
		prov := sched.NewProvisioner(0.5, 3)
		cfg.Placer = prov
		cfg.Controller = prov
	case PlDualTimer:
		high := servers / 2
		if high < 1 {
			high = 1
		}
		d := sched.NewDualTimer(high, tau, tau*4)
		cfg.Placer = d
		cfg.Controller = d
	default:
		return fmt.Errorf("scenario: unknown placer kind %d", p.Kind)
	}
	return nil
}

// ---------------------------------------------------------------------
// Server axis
// ---------------------------------------------------------------------

// ProfileKind selects a server power profile.
type ProfileKind int

// Server profiles.
const (
	ProfFourCore ProfileKind = iota
	ProfXeon10
	ProfDualSocket
)

func (p ProfileKind) profile() *power.ServerProfile {
	switch p {
	case ProfXeon10:
		return power.XeonE5_2680()
	case ProfDualSocket:
		return power.DualSocketXeon()
	}
	return power.FourCoreServer()
}

// String implements fmt.Stringer.
func (p ProfileKind) String() string {
	switch p {
	case ProfXeon10:
		return "xeon10"
	case ProfDualSocket:
		return "dual20"
	}
	return "4core"
}

// ---------------------------------------------------------------------
// Scenario
// ---------------------------------------------------------------------

// Scenario is one declarative simulation configuration: plain data,
// expandable by Axes, drawable by Random, mutable by fuzzers, and
// serializable through Encode/Decode (codec.go).
type Scenario struct {
	Seed uint64 `json:"seed"`

	Topology TopologySpec  `json:"topology"`
	Comm     core.CommMode `json:"comm"`

	// NetModel selects the packet-transfer simulation granularity
	// (packet-mode comm only): exact per-packet store-and-forward events,
	// or the fluid flow-level approximation. The zero value is the packet
	// model, so existing scenario files and labels are unchanged.
	NetModel network.NetModel `json:"netModel,omitempty"`

	Servers       int              `json:"servers"`
	Profile       ProfileKind      `json:"profile"`
	Queue         server.QueueMode `json:"queue"`
	DelayTimerSec float64          `json:"delayTimerSec"` // < 0 disables the server delay timer
	Heterogeneous bool             `json:"heterogeneous,omitempty"`
	DVFS          bool             `json:"dvfs,omitempty"`

	Placer      PlacerSpec `json:"placer"`
	GlobalQueue bool       `json:"globalQueue,omitempty"`

	Arrival ArrivalSpec `json:"arrival"`
	Factory FactorySpec `json:"factory"`

	// Horizon: at least one must be set (or a trace arrival bounds the
	// run by itself).
	MaxJobs     int64   `json:"maxJobs,omitempty"`
	DurationSec float64 `json:"durationSec,omitempty"`

	// SwitchSleepSec < 0 disables line-card sleep.
	SwitchSleepSec float64 `json:"switchSleepSec"`

	// Faults is the failure axis: server crash/recover, link flap, and
	// switch death drawn deterministically from the scenario seed. The
	// zero value is fault-free (the injector is not attached at all).
	Faults fault.Spec `json:"faults"`

	// CheckStationary enables the statistical Little's-law check.
	CheckStationary bool `json:"checkStationary,omitempty"`
}

// String composes the scenario's canonical label: every field renders
// with round-trip precision, so the mapping from scenario values to
// labels is injective — two distinct Validate-passing scenarios never
// share a label. The runner derives replication seeds by splitting on
// the label, so a label collision between distinct scenarios would
// silently correlate their replications; TestScenarioLabelInjective
// guards the property.
//
// Layout: seed/topology/comm/farm/queue+timer/placer/arrival/factory/
// horizon/switch-sleep, then optional flag segments (het, gq, dvfs,
// stat) and the fault spec when present.
func (s Scenario) String() string {
	name := fmt.Sprintf("s%d/%s/%s/n%d-%s/%s-dt%g/%s/%s/%s/j%d-d%g/ss%g",
		s.Seed, s.Topology, s.Comm, s.Servers, s.Profile, s.Queue, s.DelayTimerSec,
		s.Placer, s.Arrival, s.Factory, s.MaxJobs, s.DurationSec, s.SwitchSleepSec)
	if s.NetModel == network.ModelFluid {
		name += "/fluid"
	}
	if s.Heterogeneous {
		name += "/het"
	}
	if s.GlobalQueue {
		name += "/gq"
	}
	if s.DVFS {
		name += "/dvfs"
	}
	if s.CheckStationary {
		name += "/stat"
	}
	if !s.Faults.Zero() {
		name += "/" + s.Faults.String()
	}
	return name
}

// Name is the scenario's stable run identifier — an alias of String,
// kept for call sites that read better as Name().
func (s Scenario) Name() string { return s.String() }

// finiteScenarioFloats lists every float field with its label for
// Validate's non-finite sweep. NaN slips through ordinary range
// comparisons (every comparison is false), so scenarios decoded or
// assembled from external input are checked explicitly.
func (s Scenario) nonFiniteField() (string, float64, bool) {
	fields := []struct {
		name string
		v    float64
	}{
		{"topology.rateBps", s.Topology.RateBps},
		{"delayTimerSec", s.DelayTimerSec},
		{"placer.tauSec", s.Placer.TauSec},
		{"arrival.rho", s.Arrival.Rho},
		{"arrival.burstRatio", s.Arrival.BurstRatio},
		{"arrival.traceSec", s.Arrival.TraceSec},
		{"arrival.clipFromSec", s.Arrival.ClipFromSec},
		{"arrival.clipToSec", s.Arrival.ClipToSec},
		{"durationSec", s.DurationSec},
		{"switchSleepSec", s.SwitchSleepSec},
	}
	for _, f := range fields {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return f.name, f.v, true
		}
	}
	return "", 0, false
}

// Validate reports whether the scenario composes a legal configuration.
func (s Scenario) Validate() error {
	if name, v, bad := s.nonFiniteField(); bad {
		return fmt.Errorf("scenario: non-finite %s %g", name, v)
	}
	if s.Servers < 1 {
		return fmt.Errorf("scenario: %d servers", s.Servers)
	}
	if s.Topology.Kind == TopoNone {
		if s.Comm != core.CommNone {
			return fmt.Errorf("scenario: comm mode %v without a topology", s.Comm)
		}
		if s.Placer.needsNetwork() {
			return fmt.Errorf("scenario: placer %v without a topology", s.Placer)
		}
	} else if hosts := s.Topology.Hosts(); s.Servers > hosts {
		return fmt.Errorf("scenario: %d servers exceed %s's %d hosts", s.Servers, s.Topology, hosts)
	}
	if s.NetModel == network.ModelFluid && s.Comm != core.CommPacket {
		// The fluid model approximates *packet* transfers; flow-mode comm
		// already is fluid, and server-only runs have no network at all.
		return fmt.Errorf("scenario: fluid network model requires packet comm (have %v)", s.Comm)
	}
	isTrace := s.Arrival.Kind == ArrTraceWiki || s.Arrival.Kind == ArrTraceNLANR ||
		s.Arrival.Kind == ArrTraceFile
	if s.MaxJobs <= 0 && s.DurationSec <= 0 && !isTrace {
		return fmt.Errorf("scenario: unbounded horizon")
	}
	if s.DVFS && s.DurationSec <= 0 {
		// The governor re-arms its tick forever; only a time horizon
		// terminates such a run.
		return fmt.Errorf("scenario: DVFS requires a duration horizon")
	}
	if !(s.Arrival.Rho > 0 && s.Arrival.Rho < 1.5) {
		return fmt.Errorf("scenario: utilization %g out of range", s.Arrival.Rho)
	}
	if s.Arrival.Kind == ArrTraceFile && s.Arrival.TraceFile == "" {
		return fmt.Errorf("scenario: trace-file arrival without a trace file")
	}
	if s.Arrival.Kind != ArrTraceFile && s.Arrival.TraceFile != "" {
		return fmt.Errorf("scenario: trace file %q on a %s arrival", s.Arrival.TraceFile, s.Arrival)
	}
	if s.Arrival.ClipFromSec != 0 || s.Arrival.ClipToSec != 0 {
		if s.Arrival.Kind != ArrTraceFile {
			return fmt.Errorf("scenario: clip window [%g, %g) on a %s arrival",
				s.Arrival.ClipFromSec, s.Arrival.ClipToSec, s.Arrival)
		}
		if s.Arrival.ClipFromSec < 0 || s.Arrival.ClipToSec < 0 {
			return fmt.Errorf("scenario: negative clip window [%g, %g)",
				s.Arrival.ClipFromSec, s.Arrival.ClipToSec)
		}
		if s.Arrival.ClipToSec != 0 && s.Arrival.ClipToSec <= s.Arrival.ClipFromSec {
			return fmt.Errorf("scenario: empty clip window [%g, %g)",
				s.Arrival.ClipFromSec, s.Arrival.ClipToSec)
		}
	}
	if err := s.Faults.Validate(); err != nil {
		return err
	}
	return nil
}

// Config assembles the core configuration. The result is a pure
// function of the scenario value (all randomness derives from Seed).
func (s Scenario) Config() (core.Config, error) {
	if err := s.Validate(); err != nil {
		return core.Config{}, err
	}
	prof := s.Profile.profile()
	sc := server.DefaultConfig(prof)
	sc.QueueMode = s.Queue
	if s.DelayTimerSec >= 0 {
		sc.DelayTimerEnabled = true
		sc.DelayTimer = simtime.FromSeconds(s.DelayTimerSec)
	}
	cfg := core.Config{
		Seed:            s.Seed,
		Servers:         s.Servers,
		ServerConfig:    sc,
		UseGlobalQueue:  s.GlobalQueue,
		MaxJobs:         s.MaxJobs,
		Duration:        simtime.FromSeconds(s.DurationSec),
		Check:           true,
		CheckStationary: s.CheckStationary,
	}
	if s.Heterogeneous {
		cores := prof.Cores
		mix := make([]float64, cores)
		for i := range mix {
			if i < cores/2 {
				mix[i] = 1.25
			} else {
				mix[i] = 0.8
			}
		}
		cfg.ConfigureServer = func(i int, c *server.Config) {
			if i%2 == 1 {
				c.CoreSpeeds = mix
			}
		}
	}
	if s.Topology.Kind != TopoNone {
		cfg.Topology = s.Topology.Builder()
		ports := s.Topology.MaxSwitchDegree()
		var swProf *power.SwitchProfile
		if ports > 0 {
			swProf = power.DataCenter10G(ports)
		}
		ncfg := network.DefaultConfig(swProf)
		ncfg.Model = s.NetModel
		if s.SwitchSleepSec >= 0 {
			ncfg.SwitchSleepIdle = simtime.FromSeconds(s.SwitchSleepSec)
		} else {
			ncfg.SwitchSleepIdle = -1
		}
		cfg.NetworkConfig = ncfg
		cfg.CommMode = s.Comm
	}
	// All scenario-level randomness (trace synthesis, the random
	// placer) splits off one master stream per seed, disjoint from the
	// core's own "workload" stream by label.
	master := rng.New(s.Seed).Split("scenario")
	if err := s.Placer.apply(&cfg, s.Servers, master); err != nil {
		return core.Config{}, err
	}
	cores := prof.Cores
	rate := workload.UtilizationRate(s.Arrival.Rho, s.Servers, cores,
		s.Factory.Service.sampler().Mean()*s.Factory.meanTasksPerJob())
	proc, err := s.Arrival.process(rate, master)
	if err != nil {
		return core.Config{}, err
	}
	cfg.Arrivals = proc
	factory, err := s.Factory.factory()
	if err != nil {
		return core.Config{}, err
	}
	cfg.Factory = factory
	if !s.Faults.Empty() {
		spec := s.Faults
		if spec.HorizonSec <= 0 {
			// MaxJobs horizons have no fixed virtual end; estimate the
			// generation span from the derived arrival rate so fault
			// instants land inside the run. Pure function of the
			// scenario value, so replay stays deterministic.
			spec.HorizonSec = s.DurationSec
			if spec.HorizonSec <= 0 && rate > 0 {
				spec.HorizonSec = float64(s.MaxJobs) / rate
			}
			if spec.HorizonSec <= 0 {
				spec.HorizonSec = 1
			}
		}
		cfg.Faults = &spec
	}
	return cfg, nil
}

// Build constructs the data center (invariant checking always on).
func (s Scenario) Build() (*core.DataCenter, error) {
	return s.buildCover(nil)
}

// buildCover is Build with an optional model-state coverage map wired
// through core.Config.Cover (nil collects nothing).
func (s Scenario) buildCover(m *modelcov.Map) (*core.DataCenter, error) {
	cfg, err := s.Config()
	if err != nil {
		return nil, err
	}
	cfg.Cover = m
	dc, err := core.Build(cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name(), err)
	}
	if s.DVFS {
		for _, srv := range dc.Servers {
			server.NewDVFSGovernor(srv).Start()
		}
	}
	return dc, nil
}

// Result is one scenario run's outcome.
type Result struct {
	Scenario   Scenario
	Results    *core.Results
	Violations []invariant.Violation
}

// Run builds and executes the scenario. The returned error covers both
// construction failures and invariant violations; Result.Violations
// carries the latter in structured form.
func (s Scenario) Run() (Result, error) {
	return s.RunCover(nil)
}

// RunCover is Run with a model-state coverage map attached for the
// duration of the run: the simulation records which semantic features
// (state transitions, drop sites, fault paths, ...) it exercised into
// m. A nil m is exactly Run. Coverage collection is observation-only:
// the returned Result is byte-identical either way.
func (s Scenario) RunCover(m *modelcov.Map) (Result, error) {
	dc, err := s.buildCover(m)
	if err != nil {
		return Result{Scenario: s}, err
	}
	res, err := dc.Run()
	out := Result{Scenario: s, Results: res}
	if c := dc.Checker(); c != nil {
		out.Violations = c.Violations()
	}
	if err != nil {
		return out, fmt.Errorf("scenario %s: %w", s.Name(), err)
	}
	return out, nil
}
