package scenario

import (
	"fmt"
	"sort"

	"holdcsim/internal/core"
	"holdcsim/internal/fault"
	"holdcsim/internal/sched"
)

// Presets returns the ten built-in scenario presets — one per paper
// artifact (Table I, Figs. 4–13; see DESIGN.md Sec. 1) plus a
// correlated-failure showcase — sized like the Quick() experiment
// presets so each runs in well under a second. They are the codec's
// living documentation: `cmd/scenario export -preset <name>` dumps any
// of them as a file, so the format is self-demonstrating, and the
// round-trip suite pins Decode(Encode(p)) == p for all ten.
//
// The map is rebuilt per call; mutate freely.
func Presets() map[string]Scenario {
	return map[string]Scenario{
		// Table I: campaign scalability — a fat-tree farm under flow
		// transfers, the shape the >20K-server check scales up.
		"table1-fattree": {
			Seed:           101,
			Topology:       TopologySpec{Kind: TopoFatTree, A: 4},
			Comm:           core.CommFlow,
			Servers:        16,
			Profile:        ProfFourCore,
			DelayTimerSec:  -1,
			Placer:         PlacerSpec{Kind: PlLeastLoaded},
			Arrival:        ArrivalSpec{Kind: ArrPoisson, Rho: 0.3},
			Factory:        FactorySpec{Kind: FacScatterGather, Service: SvcWebSearch, Width: 2, EdgeBytes: 16 << 10},
			MaxJobs:        200,
			SwitchSleepSec: -1,
		},
		// Fig. 4: dynamic resource provisioning against the diurnal
		// Wikipedia trace.
		"fig4-provisioning": {
			Seed:           104,
			Servers:        16,
			Profile:        ProfFourCore,
			DelayTimerSec:  -1,
			Placer:         PlacerSpec{Kind: PlProvisioner},
			Arrival:        ArrivalSpec{Kind: ArrTraceWiki, Rho: 0.3, TraceSec: 4},
			Factory:        FactorySpec{Kind: FacSingle, Service: SvcWebSearch},
			MaxJobs:        250,
			SwitchSleepSec: -1,
		},
		// Fig. 5: the single delay-timer energy sweep's center point.
		"fig5-delaytimer": {
			Seed:           105,
			Servers:        8,
			Profile:        ProfFourCore,
			DelayTimerSec:  0.1,
			Placer:         PlacerSpec{Kind: PlPackFirst},
			Arrival:        ArrivalSpec{Kind: ArrPoisson, Rho: 0.5},
			Factory:        FactorySpec{Kind: FacSingle, Service: SvcWebSearch},
			MaxJobs:        200,
			SwitchSleepSec: -1,
		},
		// Fig. 6: dual delay timers (pool high/low watermarks).
		"fig6-dualtimer": {
			Seed:           106,
			Servers:        8,
			Profile:        ProfFourCore,
			DelayTimerSec:  0.1,
			Placer:         PlacerSpec{Kind: PlDualTimer, TauSec: 0.2},
			Arrival:        ArrivalSpec{Kind: ArrPoisson, Rho: 0.5},
			Factory:        FactorySpec{Kind: FacSingle, Service: SvcWebSearch},
			MaxJobs:        200,
			SwitchSleepSec: -1,
		},
		// Fig. 8: sleep-state residency under the adaptive pool, driven
		// by bursty MMPP arrivals.
		"fig8-residency": {
			Seed:           108,
			Servers:        8,
			Profile:        ProfFourCore,
			DelayTimerSec:  0.1,
			Placer:         PlacerSpec{Kind: PlAdaptivePool, TauSec: 0.2},
			Arrival:        ArrivalSpec{Kind: ArrMMPP, Rho: 0.6, BurstRatio: 4},
			Factory:        FactorySpec{Kind: FacSingle, Service: SvcWebSearch},
			MaxJobs:        200,
			SwitchSleepSec: -1,
		},
		// Fig. 9: energy breakdown, adaptive pool over the Wikipedia
		// trace with the web-serving service profile.
		"fig9-breakdown": {
			Seed:           109,
			Servers:        8,
			Profile:        ProfXeon10,
			DelayTimerSec:  0.1,
			Placer:         PlacerSpec{Kind: PlAdaptivePool, TauSec: 0.2},
			Arrival:        ArrivalSpec{Kind: ArrTraceWiki, Rho: 0.4, TraceSec: 4},
			Factory:        FactorySpec{Kind: FacSingle, Service: SvcWebServing},
			MaxJobs:        150,
			SwitchSleepSec: -1,
		},
		// Fig. 11: joint server + network optimization — network-aware
		// placement with line-card sleep on a fat tree.
		"fig11-joint": {
			Seed:           111,
			Topology:       TopologySpec{Kind: TopoFatTree, A: 4},
			Comm:           core.CommFlow,
			Servers:        16,
			Profile:        ProfFourCore,
			DelayTimerSec:  0.1,
			Placer:         PlacerSpec{Kind: PlNetworkAware},
			Arrival:        ArrivalSpec{Kind: ArrPoisson, Rho: 0.4},
			Factory:        FactorySpec{Kind: FacScatterGather, Service: SvcWebSearch, Width: 2, EdgeBytes: 16 << 10},
			MaxJobs:        150,
			SwitchSleepSec: 0.2,
		},
		// Fig. 12: server power-model validation — one machine replaying
		// the bursty NLANR trace with the Wikipedia service profile.
		"fig12-server-validation": {
			Seed:           112,
			Servers:        1,
			Profile:        ProfFourCore,
			DelayTimerSec:  0,
			Placer:         PlacerSpec{Kind: PlLeastLoaded},
			Arrival:        ArrivalSpec{Kind: ArrTraceNLANR, Rho: 0.3, TraceSec: 4},
			Factory:        FactorySpec{Kind: FacSingle, Service: SvcWikipedia},
			MaxJobs:        200,
			SwitchSleepSec: -1,
		},
		// Correlated failures: a rack blast plus Weibull renewal churn
		// with one repair crew and overload cascades, on the Table I
		// fat tree. Exercises every axis of the correlated-failure
		// engine (DESIGN.md Sec. 9) in one sub-second run.
		"fault-correlated": {
			Seed:           114,
			Topology:       TopologySpec{Kind: TopoFatTree, A: 4},
			Comm:           core.CommFlow,
			Servers:        16,
			Profile:        ProfFourCore,
			DelayTimerSec:  -1,
			Placer:         PlacerSpec{Kind: PlLeastLoaded},
			Arrival:        ArrivalSpec{Kind: ArrPoisson, Rho: 0.4},
			Factory:        FactorySpec{Kind: FacScatterGather, Service: SvcWebSearch, Width: 2, EdgeBytes: 16 << 10},
			MaxJobs:        200,
			SwitchSleepSec: -1,
			Faults: fault.Spec{
				RackKills:       1,
				RackDownSec:     0.3,
				ServerMTTFSec:   2,
				ServerMTTRSec:   0.2,
				WeibullShape:    1.4,
				RepairCrews:     1,
				CascadeP:        0.5,
				CascadeDelaySec: 0.05,
				CascadeDepth:    2,
			},
		},
		// Fig. 13: switch power-model validation — packet-granularity
		// transfers across a star so every byte crosses the switch.
		"fig13-switch-validation": {
			Seed:           113,
			Topology:       TopologySpec{Kind: TopoStar, A: 8},
			Comm:           core.CommPacket,
			Servers:        8,
			Profile:        ProfFourCore,
			DelayTimerSec:  -1,
			Placer:         PlacerSpec{Kind: PlRoundRobin},
			Arrival:        ArrivalSpec{Kind: ArrPoisson, Rho: 0.4},
			Factory:        FactorySpec{Kind: FacScatterGather, Service: SvcWebSearch, Width: 2, EdgeBytes: 32 << 10},
			MaxJobs:        150,
			SwitchSleepSec: 0.2,
		},
	}
}

// Preset looks one preset up by name.
func Preset(name string) (Scenario, error) {
	p := Presets()
	if s, ok := p[name]; ok {
		return s, nil
	}
	return Scenario{}, fmt.Errorf("scenario: unknown preset %q (have %v)", name, PresetNames())
}

// PresetNames lists the built-in preset names, sorted.
func PresetNames() []string {
	p := Presets()
	names := make([]string, 0, len(p))
	for n := range p {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DemoMatrix is the built-in example campaign `cmd/scenario export
// -matrix` dumps: a fault-axis sweep over the Fig. 5 preset, small
// enough to run in seconds but touching seeds, placers, utilizations
// and the failure axis so the matrix form documents itself.
func DemoMatrix() Matrix {
	base := Presets()["fig5-delaytimer"]
	return Matrix{
		Base: base,
		Axes: Axes{
			Seeds:   []uint64{1, 2},
			Placers: []PlacerSpec{{Kind: PlPackFirst}, {Kind: PlLeastLoaded}},
			Arrivals: []ArrivalSpec{
				{Kind: ArrPoisson, Rho: 0.3},
				{Kind: ArrPoisson, Rho: 0.6},
			},
			Faults: []fault.Spec{
				{},
				{ServerCrashes: 1, ServerDownSec: 0.05, Orphans: sched.OrphanDrop},
			},
		},
	}
}
