package scenario

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"holdcsim/internal/core"
	"holdcsim/internal/modelcov"
	"holdcsim/internal/network"
	"holdcsim/internal/rng"
	"holdcsim/internal/runner"
	"holdcsim/internal/sched"
)

// This file is the coverage-guided scenario search harness: blind
// fuzzing mutates (seed, mut) words with no signal about *model* state
// — it can run thousands of execs that never park a server in a deep
// sleep state, fill an egress ring, or trip a cascade. GuidedSearch
// closes the loop using internal/modelcov: an input whose run lights a
// coverage feature no prior input reached earns a corpus slot, and
// later candidates mutate corpus parents, biasing the search toward
// the rare corners where bugs live. The same (seed, mut) encoding is
// shared with FuzzScenario, so a corpus found here seeds the native
// fuzzer directly.

// BoundWork clamps a scenario's work bound for a search or fuzz
// executor: whatever horizon the generator or a mutation composed,
// generation is capped at maxJobs so a single execution can never run
// unbounded (trace- or duration-only horizons on big farms otherwise
// derive 10^5+ jobs). A maxJobs <= 0 leaves the scenario untouched.
func BoundWork(s *Scenario, maxJobs int64) {
	if maxJobs <= 0 {
		return
	}
	if s.MaxJobs == 0 || s.MaxJobs > maxJobs {
		s.MaxJobs = maxJobs
	}
}

// mutate perturbs a drawn scenario with fuzz-controlled values, bounded
// so single executions stay fast (small farms, short horizons, bounded
// edge bytes) while still reaching saturation and degenerate corners.
//
// The mutation word is 16 independent 4-bit fields, one per
// perturbation axis; nibble value 0 always means "leave the axis
// alone". Independence is what makes the encoding mutable: rewriting
// one nibble perturbs exactly one axis, so GuidedSearch can hold a
// corpus parent fixed and step through its neighbors, and go-fuzz's
// byte-level mutations of the word translate to small scenario edits
// instead of whole-scenario rerolls. Nibble positions are load-bearing
// for recorded (seed, mut) corpus pairs: never renumber an axis; new
// axes must subdivide an existing nibble's value space or widen the
// word.
func mutate(s *Scenario, mut uint64) {
	nib := func(i uint) uint64 { return (mut >> (4 * i)) & 0xf }

	if v := nib(0); v != 0 {
		// Up to 1.59: overload scenarios (1.0–1.48) run, and the top of
		// the range crosses Validate's 1.5 cap to exercise rejection.
		s.Arrival.Rho = 0.05 + float64(v-1)*0.11
	}
	if v := nib(1); v != 0 {
		s.Arrival.BurstRatio = 1 + float64(v-1)*3
	}
	switch v := nib(2); {
	case v == 0:
	case v < 8:
		s.MaxJobs, s.DurationSec, s.DVFS = int64(v)*16, 0, false
	default:
		s.MaxJobs, s.DurationSec = 0, 0.05+float64(v-8)*0.25
	}
	switch v := nib(3); {
	case v == 0:
	case v < 8:
		s.Servers = int(v)
	default:
		s.Factory.Width = 1 + int(v-8)%4
		s.Factory.Layers = 1 + int(v-8)/4
	}
	if v := nib(4); v != 0 && s.Comm != 0 {
		s.Factory.EdgeBytes = int64(v-1) * 4 << 10
	}
	if v := nib(5); v != 0 {
		s.DelayTimerSec = [...]float64{-1, 0, 0.01, 0.3}[(v-1)%4]
	}
	switch v := nib(6); {
	case v == 0:
	case v < 15:
		s.NetModel = network.ModelPacket
	default:
		// Fluid on packet comm is the legal pairing; fluid elsewhere
		// exercises Validate's model/comm rejection. Pinned to the top
		// value so uniform words rarely land in the rejection corner.
		s.NetModel = network.ModelFluid
	}

	// Nibble 7 picks a fault family; nibbles 8–10 parameterize it.
	// Unused parameter nibbles in a family are deliberately dead so a
	// single-nibble rewrite of nibble 7 re-interprets 8–10 in the new
	// family without cross-talk.
	p1, p2, p3 := nib(8), nib(9), nib(10)
	switch v := nib(7); {
	case v == 0:
	case v < 6: // point faults
		s.Faults.ServerCrashes = int(p1 % 4)
		s.Faults.ServerDownSec = 0.02 + float64(p1)*0.03
		s.Faults.Orphans = sched.OrphanPolicy(p3 % 2)
		if s.Topology.Kind != TopoNone {
			s.Faults.LinkFlaps = int(p2 % 3)
			s.Faults.LinkDownSec = 0.02 + float64(p2)*0.02
			s.Faults.SwitchKills = int(p2 % 2)
			s.Faults.SwitchDownSec = 0.03 + float64(p2)*0.03
		}
	case v < 11: // correlated blast-radius faults
		s.Faults.RackKills = int(p1 % 3)
		s.Faults.RackDownSec = 0.02 + float64(p1)*0.03
		s.Faults.PodKills = int(p2 % 2)
		s.Faults.PodDownSec = 0.02 + float64(p2)*0.03
		if s.Topology.Kind != TopoNone {
			s.Faults.SubtreeKills = int(p2 % 2)
			s.Faults.SubtreeDownSec = 0.02 + float64(p2)*0.03
		}
		s.Faults.Orphans = sched.OrphanPolicy(p3 % 2)
	default: // renewal processes + cascades
		s.Faults.ServerMTTFSec = 0.3 + float64(p1)*0.15
		s.Faults.ServerMTTRSec = 0.02 + float64(p1)*0.03
		if p2%2 == 1 {
			s.Faults.WeibullShape = 0.6 + float64(p2)*0.12
		}
		s.Faults.RepairCrews = int(p2 % 3)
		s.Faults.CascadeP = float64(p3%5) * 0.25
		s.Faults.CascadeDelaySec = 0.01 + float64(p3)*0.01
		s.Faults.CascadeDepth = int(p3 % 4)
	}

	if v := nib(11); v != 0 {
		s.Topology.RateBps = [...]float64{0, 1e6, 1e8, 1e9}[(v-1)%4]
	}
	if v := nib(12); v != 0 {
		s.SwitchSleepSec = [...]float64{-1, 0.05, 0.2, 1}[(v-1)%4]
	}
	if v := nib(13); v == 15 {
		// Clip windows compose only with recorded-trace arrivals
		// (ArrTraceFile), which Random never draws — on every other
		// kind this exercises Validate's clip rejection. Pinned to the
		// top value so uniform words rarely land in the corner.
		s.Arrival.ClipFromSec = 0.5
		s.Arrival.ClipToSec = 1.5
	}
	if v := nib(14); v != 0 {
		s.Faults.SwitchMTTFSec = 0.4 + float64(v)*0.2
		s.Faults.SwitchMTTRSec = 0.03 + float64(v)*0.03
	}
	if v := nib(15); v != 0 {
		s.Faults.HorizonSec = 0.2 + float64(v)*0.12
	}
}

// CorpusEntry is one retained search input: Random(Seed) perturbed by
// mutate(·, Mut). Gain records how many coverage features the entry
// contributed when it was admitted (diagnostic only; not re-derived on
// load).
type CorpusEntry struct {
	Seed uint64
	Mut  uint64
	Gain int
}

// SearchFailure records an execution the search could not complete — a
// run error or invariant violation. These are the search's findings:
// each is a reproducible (seed, mut) pair for FuzzScenario.
type SearchFailure struct {
	Seed uint64
	Mut  uint64
	Err  string
}

// SearchOptions configures GuidedSearch / BlindSearch.
type SearchOptions struct {
	// Seed drives candidate generation. The same (Seed, Execs,
	// BatchSize, Corpus) always explores the same candidates, at any
	// worker count.
	Seed uint64
	// Execs is the total number of candidate executions.
	Execs int
	// Workers is the execution pool size; <= 0 means GOMAXPROCS.
	Workers int
	// BatchSize is how many candidates are decided ahead of execution.
	// Corpus feedback applies between batches, so a smaller batch
	// follows the coverage signal more closely at the cost of less
	// parallelism. <= 0 means 16.
	BatchSize int
	// MaxJobs is the per-execution work bound (BoundWork); <= 0 means
	// 800, the FuzzScenario clamp.
	MaxJobs int64
	// Corpus optionally seeds the search with prior findings.
	Corpus []CorpusEntry
}

func (o *SearchOptions) defaults() {
	if o.BatchSize <= 0 {
		o.BatchSize = 16
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 800
	}
}

// SearchResult is a search campaign's outcome.
type SearchResult struct {
	// Cover is the merged global coverage map.
	Cover *modelcov.Map
	// Corpus holds the seed corpus plus every admitted entry, in
	// admission order.
	Corpus []CorpusEntry
	// Execs counts candidate executions attempted; Ran counts those
	// that validated and ran to completion.
	Execs int
	Ran   int
	// Failures lists executions that ran but failed (run errors,
	// invariant violations) — the search's bug findings.
	Failures []SearchFailure
}

// candidate is one planned execution.
type searchCandidate struct {
	seed, mut uint64
}

// execBatch runs one batch of candidates through the campaign runner
// and folds their coverage into the result in submission order, so the
// outcome is independent of the worker count.
func execBatch(o SearchOptions, cands []searchCandidate, global *modelcov.Map,
	res *SearchResult, admit func(c searchCandidate, gain int)) error {
	type outcome struct {
		cover *modelcov.Map
		fail  string
	}
	runs := make([]runner.Run[outcome], len(cands))
	for i, c := range cands {
		c := c
		runs[i] = runner.Run[outcome]{
			Key: fmt.Sprintf("cov/%x/%x", c.seed, c.mut),
			Do: func(uint64) (outcome, error) {
				s := Random(c.seed)
				mutate(&s, c.mut)
				BoundWork(&s, o.MaxJobs)
				if s.Validate() != nil {
					// An invalid mutation rejected cleanly is the
					// contract, not a finding; it contributes nothing.
					return outcome{}, nil
				}
				local := &modelcov.Map{}
				r, err := s.RunCover(local)
				if err != nil {
					return outcome{cover: local, fail: err.Error()}, nil
				}
				if len(r.Violations) > 0 {
					return outcome{cover: local,
						fail: fmt.Sprintf("invariant violations: %v", r.Violations)}, nil
				}
				return outcome{cover: local}, nil
			},
		}
	}
	outs, err := runner.Map(runner.Options{Workers: o.Workers}, o.Seed, runs)
	if err != nil {
		return err
	}
	for i, out := range outs {
		res.Execs++
		if out.fail != "" {
			res.Failures = append(res.Failures,
				SearchFailure{Seed: cands[i].seed, Mut: cands[i].mut, Err: out.fail})
		}
		if out.cover == nil {
			continue // rejected by Validate
		}
		res.Ran++
		if gain := global.Merge(out.cover); gain > 0 && admit != nil {
			admit(cands[i], gain)
		}
	}
	return nil
}

// genes describes a candidate's scenario as categorical traits: the
// base axes drawn from the seed (topology family, comm mode, network
// model, arrival/service family, placer, ...) and the value of each
// perturbation axis. Guided search keeps per-gene productivity
// statistics — how often candidates carrying a trait produced a
// coverage gain — which is the credit assignment a flat (seed, mut)
// corpus cannot do: a record run doesn't say whether the base or the
// perturbation earned it, but across many runs the gene stats average
// that out.
func genes(s *Scenario, mut uint64) [33]uint16 {
	var g [33]uint16
	pack := func(i int, kind, val int) { g[i] = uint16(kind)<<8 | uint16(val)&0xff }
	b2i := func(b bool) int {
		if b {
			return 1
		}
		return 0
	}
	// Durations and rates fold into coarse classes chosen to mirror
	// feature preconditions: a "delay timer immediate" candidate is
	// exactly the kind that exercises sleep-transition features, a
	// "rho overload" one the queue-depth tail, and so on — the closer
	// a gene tracks a feature's precondition, the more a sweep of
	// untried gene values behaves like directly hunting unhit features.
	durClass := func(d float64) int {
		switch {
		case d < 0:
			return 0 // disabled
		case d == 0:
			return 1 // immediate
		case d < 0.1:
			return 2 // short
		default:
			return 3
		}
	}
	sizeClass := func(n int) int {
		switch {
		case n <= 1:
			return 0
		case n <= 4:
			return 1
		case n <= 8:
			return 2
		default:
			return 3
		}
	}
	pack(0, 0, int(s.Topology.Kind))
	pack(1, 1, int(s.Comm))
	pack(2, 2, int(s.NetModel))
	pack(3, 3, int(s.Arrival.Kind))
	pack(4, 4, int(s.Profile))
	pack(5, 5, int(s.Queue))
	pack(6, 6, int(s.Placer.Kind))
	pack(7, 7, b2i(s.GlobalQueue))
	pack(8, 8, b2i(s.Heterogeneous))
	// Fault family bitmask: point / correlated / renewal / cascade.
	fam := 0
	if s.Faults.ServerCrashes > 0 || s.Faults.LinkFlaps > 0 || s.Faults.SwitchKills > 0 {
		fam |= 1
	}
	if s.Faults.RackKills > 0 || s.Faults.PodKills > 0 || s.Faults.SubtreeKills > 0 {
		fam |= 2
	}
	if s.Faults.ServerMTTFSec > 0 || s.Faults.SwitchMTTFSec > 0 {
		fam |= 4
	}
	if s.Faults.CascadeP > 0 {
		fam |= 8
	}
	pack(9, 9, fam)
	pack(10, 10, b2i(s.DVFS))
	pack(11, 11, durClass(s.DelayTimerSec))
	pack(12, 12, durClass(s.SwitchSleepSec))
	rho := 0
	switch {
	case s.Arrival.Rho >= 1:
		rho = 3
	case s.Arrival.Rho >= 0.6:
		rho = 2
	case s.Arrival.Rho >= 0.3:
		rho = 1
	}
	pack(13, 13, rho)
	pack(14, 14, sizeClass(s.Servers))
	pack(15, 15, sizeClass(int(s.Factory.EdgeBytes>>10)))
	pack(16, 16, sizeClass(s.Factory.Width*s.Factory.Layers))
	for axis := 0; axis < 16; axis++ {
		pack(17+axis, 17+axis, int(mut>>(4*axis)&0xf))
	}
	return g
}

// geneStats tracks, per gene, how many candidates carried it and how
// many of those produced a coverage gain.
type geneStats map[uint16]*struct{ tries, gains int }

// appeal scores a candidate for tournament selection. The dominant
// term is the number of genes never tried in this campaign: a
// candidate carrying an untried axis value or base family sweeps the
// gene space systematically where uniform sampling waits on the coupon
// collector. Observed gain rates enter only as a tiebreak, three
// orders of magnitude down — rate estimates from a few dozen runs are
// noisy enough to herd the tournament onto whatever ran first if they
// are allowed to dominate, and a selection rule that mostly preserves
// the proposal distribution can never do much worse than it.
func (st geneStats) appeal(c searchCandidate, maxJobs int64) float64 {
	s := Random(c.seed)
	mutate(&s, c.mut)
	BoundWork(&s, maxJobs)
	unseen, rates := 0.0, 0.0
	for _, gene := range genes(&s, c.mut) {
		if e := st[gene]; e != nil {
			rates += (float64(e.gains) + 0.5) / (float64(e.tries) + 1)
		} else {
			unseen++
		}
	}
	return unseen + rates/1000
}

// record folds a candidate's outcome into the gene table.
func (st geneStats) record(c searchCandidate, maxJobs int64, gained bool) {
	s := Random(c.seed)
	mutate(&s, c.mut)
	BoundWork(&s, maxJobs)
	for _, gene := range genes(&s, c.mut) {
		e := st[gene]
		if e == nil {
			e = &struct{ tries, gains int }{}
			st[gene] = e
		}
		e.tries++
		if gained {
			e.gains++
		}
	}
}

// A covRecipe composes candidates aimed at a group of coverage
// features: match selects the features the recipe hunts, base is the
// predicate a fresh base draw must satisfy (feature preconditions the
// mutation word cannot set, e.g. a comm mode), and word builds the
// mutation word. Recipes encode the same precondition knowledge the
// feature table itself does — a fluid-flow terminal needs the fluid
// model on packet comm, a deep cascade needs the renewal family with
// high cascade probability — and turning the never-hit list into
// candidates through them is what lets a search assemble multi-axis
// conjunctions that uniform sampling has no realistic chance of
// drawing at small budgets.
type covRecipe struct {
	match func(f modelcov.Feature) bool
	base  func(s *Scenario) bool
	word  func(r *rng.Source) uint64
}

// wordOf assembles a mutation word from {axis, value} nibble pairs.
func wordOf(nibs ...[2]uint64) uint64 {
	var mut uint64
	for _, nv := range nibs {
		mut |= (nv[1] & 0xf) << (4 * nv[0])
	}
	return mut
}

func anyBase(*Scenario) bool { return true }

func between(f, lo, hi modelcov.Feature) bool { return f >= lo && f <= hi }

// covRecipes is consulted in order; the first recipe matching an unhit
// feature proposes for it. Nibble values reference the mutate axis
// table above.
var covRecipes = []covRecipe{
	{ // Deep queue buckets: overload a one-server farm for a long horizon.
		match: func(f modelcov.Feature) bool {
			return between(f, modelcov.QueueDepth(5), modelcov.QueueDepth(1000))
		},
		base: anyBase,
		word: func(r *rng.Source) uint64 {
			return wordOf([2]uint64{0, 14}, [2]uint64{1, 15}, [2]uint64{2, 15}, [2]uint64{3, 1})
		},
	},
	{ // Deep global-queue buckets: same, on a global-queue base.
		match: func(f modelcov.Feature) bool {
			return between(f, modelcov.GlobalQueueDepth(5), modelcov.GlobalQueueDepth(1000))
		},
		base: func(s *Scenario) bool { return s.GlobalQueue },
		word: func(r *rng.Source) uint64 {
			return wordOf([2]uint64{0, 14}, [2]uint64{1, 15}, [2]uint64{2, 15}, [2]uint64{3, 1})
		},
	},
	{ // Cascades: renewal faults, fast MTTF, P=0.75 at depth 3, long horizon.
		match: func(f modelcov.Feature) bool {
			return f == modelcov.CascadeDepth1 || f == modelcov.CascadeDepth2 ||
				f == modelcov.CascadeDepth3Plus
		},
		base: anyBase,
		word: func(r *rng.Source) uint64 {
			return wordOf([2]uint64{7, 15}, [2]uint64{8, 1}, [2]uint64{10, 3},
				[2]uint64{2, 15}, [2]uint64{15, 15})
		},
	},
	{ // Fluid terminals: fluid model on packet comm, heavy edges, repeated
		// link flaps and a switch kill so flows die mid-drain.
		match: func(f modelcov.Feature) bool {
			return f == modelcov.NetFluidComplete || f == modelcov.NetFluidFailed ||
				f == modelcov.DropFluidKill
		},
		base: func(s *Scenario) bool {
			return s.Comm == core.CommPacket && s.Topology.Kind != TopoNone
		},
		word: func(r *rng.Source) uint64 {
			return wordOf([2]uint64{6, 15}, [2]uint64{4, 15}, [2]uint64{11, 2},
				[2]uint64{7, 1}, [2]uint64{9, 5}, [2]uint64{2, 15}, [2]uint64{15, 15})
		},
	},
	{ // Flow terminals: flow comm, heavy edges, link flaps + switch kill.
		match: func(f modelcov.Feature) bool {
			return f == modelcov.NetFlowComplete || f == modelcov.NetFlowFailed ||
				f == modelcov.NetFlowDeadStart
		},
		base: func(s *Scenario) bool {
			return s.Comm == core.CommFlow && s.Topology.Kind != TopoNone
		},
		word: func(r *rng.Source) uint64 {
			return wordOf([2]uint64{4, 15}, [2]uint64{11, 2}, [2]uint64{7, 1},
				[2]uint64{9, 5}, [2]uint64{2, 15}, [2]uint64{15, 15})
		},
	},
	{ // Switch power paths: short switch sleep timer, light load, traffic.
		match: func(f modelcov.Feature) bool {
			return f == modelcov.SwitchSleep || f == modelcov.SwitchWake ||
				f == modelcov.PortLPIEnter || f == modelcov.PortLPIWake
		},
		base: func(s *Scenario) bool {
			return s.Topology.Kind != TopoNone && s.Comm != core.CommNone
		},
		word: func(r *rng.Source) uint64 {
			return wordOf([2]uint64{12, 2}, [2]uint64{0, 3}, [2]uint64{2, 15})
		},
	},
	{ // Drop sites and in-flight fault kinds: heavy bursty traffic over
		// slow links while faults flap links and kill switches. The same
		// storm is what strands a pre-placed child task on a server that
		// dies mid-transfer (static-replace).
		match: func(f modelcov.Feature) bool {
			return between(f, modelcov.DropEnqueueLinkDown, modelcov.DropSweep) ||
				between(f, modelcov.FaultKind(2), modelcov.FaultKind(5)) ||
				f == modelcov.SchedStaticReplace
		},
		base: func(s *Scenario) bool {
			return s.Comm != core.CommNone && s.Topology.Kind != TopoNone
		},
		word: func(r *rng.Source) uint64 {
			return wordOf([2]uint64{4, 15}, [2]uint64{11, 2}, [2]uint64{1, 15},
				[2]uint64{7, 1}, [2]uint64{9, 5}, [2]uint64{0, 14},
				[2]uint64{2, 15}, [2]uint64{15, 15})
		},
	},
	{ // Correlated scope faults: rack/pod/subtree kills on a real topology.
		match: func(f modelcov.Feature) bool {
			return between(f, modelcov.ScopeDown(0), modelcov.ScopeDown(3)) ||
				f == modelcov.FaultKind(6) || f == modelcov.FaultKind(7)
		},
		base: func(s *Scenario) bool { return s.Topology.Kind != TopoNone },
		word: func(r *rng.Source) uint64 {
			return wordOf([2]uint64{7, 6}, [2]uint64{8, 1}, [2]uint64{9, 1},
				[2]uint64{2, 15}, [2]uint64{15, 15})
		},
	},
	{ // Crash-path branches: repeated long crashes on a tiny farm; p3 draws
		// both orphan policies across attempts.
		match: func(f modelcov.Feature) bool {
			return between(f, modelcov.SchedOrphanRequeue, modelcov.SchedDeferredPlace) &&
				f != modelcov.SchedStaticReplace ||
				f == modelcov.PlaceAllDown ||
				between(f, modelcov.FaultKind(0), modelcov.FaultKind(1))
		},
		base: anyBase,
		word: func(r *rng.Source) uint64 {
			return wordOf([2]uint64{7, 1}, [2]uint64{8, 15}, [2]uint64{10, uint64(r.IntN(16))},
				[2]uint64{3, 1}, [2]uint64{2, 15}, [2]uint64{15, 15})
		},
	},
	{ // Rare residency transitions: sleep timers + renewal faults so sleep
		// states and failures interleave.
		match: func(f modelcov.Feature) bool {
			return between(f, modelcov.SrvTransition(0, 0),
				modelcov.SrvTransition(modelcov.NumSrvStates-1, modelcov.NumSrvStates-1))
		},
		base: anyBase,
		word: func(r *rng.Source) uint64 {
			return wordOf([2]uint64{5, 1 + uint64(r.IntN(4))}, [2]uint64{12, 2},
				[2]uint64{7, 11}, [2]uint64{8, 1}, [2]uint64{0, 3},
				[2]uint64{2, 15}, [2]uint64{15, 15})
		},
	},
}

// GuidedSearch runs a coverage-guided scenario search campaign: batches
// of (seed, mut) candidates execute under a model-state coverage map,
// and any candidate whose run sets a coverage record — a new feature,
// or a known feature driven into a higher count class — is admitted to
// the corpus. Guidance acts at three levels. Exploration words follow a
// Latin-hypercube schedule over the 16 mutation axes: within every
// block of 16 exploration slots each axis takes each of its 16 values
// exactly once, where uniform sampling coupon-collects (16 uniform
// draws are expected to miss ~5 of 16 values per axis — and the missed
// values gate exactly the rare features the search exists to reach).
// Each scheduled word is paired with a fresh base seed picked by a
// small tournament scored by per-gene productivity statistics, biasing
// toward base families not yet tried. Finally, a share of slots
// exploits the corpus (transplant an admitted perturbation onto a
// fresh base, recombine two admitted perturbations, rewrite one axis
// of a parent on its own base) to push past an admitted record. The
// result is deterministic in SearchOptions at any worker count.
func GuidedSearch(o SearchOptions) (SearchResult, error) {
	o.defaults()
	r := rng.New(o.Seed).Split("covsearch")
	global := &modelcov.Map{}
	res := SearchResult{Cover: global, Corpus: append([]CorpusEntry(nil), o.Corpus...)}
	stats := geneStats{}

	// Replay the seed corpus first (it defines the starting bitmap but
	// is never re-admitted).
	if len(res.Corpus) > 0 {
		cands := make([]searchCandidate, len(res.Corpus))
		for i, e := range res.Corpus {
			cands[i] = searchCandidate{seed: e.Seed, mut: e.Mut}
		}
		if err := execBatch(o, cands, global, &res, nil); err != nil {
			return res, err
		}
		res.Execs = 0 // corpus replay doesn't count against the budget
		res.Ran = 0
	}

	// lhsWord deals the next word from the Latin-hypercube schedule:
	// per axis an rng-shuffled permutation of 0..15, reshuffled every 16
	// slots so successive blocks pair axis values in new combinations.
	var perm [16][16]byte
	explored := 0
	lhsWord := func() uint64 {
		if explored%16 == 0 {
			for axis := range perm {
				for i := range perm[axis] {
					perm[axis][i] = byte(i)
				}
				for i := 15; i > 0; i-- {
					j := r.IntN(i + 1)
					perm[axis][i], perm[axis][j] = perm[axis][j], perm[axis][i]
				}
			}
		}
		var mut uint64
		for axis := 0; axis < 16; axis++ {
			mut |= uint64(perm[axis][explored%16]) << (4 * axis)
		}
		explored++
		return mut
	}

	// directed proposes a candidate hunting a still-unhit feature through
	// the recipe table. Each recipe's target set is charged collectively
	// and capped, so structurally unreachable features (the canary
	// transitions modelcov keeps on purpose) cannot absorb the budget:
	// after a few fruitless attempts a recipe retires for the campaign.
	directedTries := map[modelcov.Feature]int{}
	directed := func() (searchCandidate, bool) {
		unhit := global.NeverHit()
		if len(unhit) == 0 {
			return searchCandidate{}, false
		}
		start := r.IntN(len(unhit))
		for k := 0; k < len(unhit); k++ {
			f := unhit[(start+k)%len(unhit)]
			if directedTries[f] >= 3 {
				continue
			}
			for _, rec := range covRecipes {
				if !rec.match(f) { //simlint:allow hookguard covRecipes entries always set match/word/base
					continue
				}
				mut := rec.word(r) //simlint:allow hookguard covRecipes entries always set match/word/base
				for try := 0; try < 48; try++ {
					seed := r.Uint64()
					s := Random(seed)
					if rec.base(&s) { //simlint:allow hookguard covRecipes entries always set match/word/base
						for _, g := range unhit {
							if rec.match(g) { //simlint:allow hookguard covRecipes entries always set match/word/base
								directedTries[g]++
							}
						}
						return searchCandidate{seed: seed, mut: mut}, true
					}
				}
				break // matched, but no base draw qualified: next feature
			}
		}
		return searchCandidate{}, false
	}

	propose := func() searchCandidate {
		// Directed proposals wait for the first batch to land: before any
		// coverage has been observed the never-hit list is vacuous, and a
		// campaign that starts hunting "missing" features it has not even
		// tried to reach by sampling wastes its cheapest discoveries.
		if res.Execs > 0 && r.Bernoulli(0.5) {
			if c, ok := directed(); ok {
				return c
			}
		}
		if len(res.Corpus) > 0 && r.Bernoulli(0.25) {
			parent := res.Corpus[r.IntN(len(res.Corpus))]
			switch op := r.IntN(3); {
			case op == 0: // transplant: admitted word, fresh base
				return searchCandidate{seed: r.Uint64(), mut: parent.Mut}
			case op == 1 && len(res.Corpus) > 1: // crossover, fresh base
				other := res.Corpus[r.IntN(len(res.Corpus))]
				donors := r.Uint64() // bit per axis: which parent donates
				var mut uint64
				for axis := uint(0); axis < 16; axis++ {
					field := uint64(0xf) << (4 * axis)
					if donors>>axis&1 == 0 {
						mut |= parent.Mut & field
					} else {
						mut |= other.Mut & field
					}
				}
				return searchCandidate{seed: r.Uint64(), mut: mut}
			default: // step: rewrite one axis on the parent's own base
				axis := uint(r.IntN(16))
				val := uint64(r.IntN(16))
				mut := parent.Mut&^(0xf<<(4*axis)) | val<<(4*axis)
				return searchCandidate{seed: parent.Seed, mut: mut}
			}
		}
		// Exploration slot: the next scheduled word, on a base seed
		// picked by tournament. Composing a candidate costs a config
		// draw (microseconds), executing it costs a simulation run
		// (milliseconds), so a few extra proposals per slot are free.
		mut := lhsWord()
		best := searchCandidate{seed: r.Uint64(), mut: mut}
		bestAppeal := stats.appeal(best, o.MaxJobs)
		for t := 0; t < 3; t++ {
			c := searchCandidate{seed: r.Uint64(), mut: mut}
			if a := stats.appeal(c, o.MaxJobs); a > bestAppeal {
				best, bestAppeal = c, a
			}
		}
		return best
	}

	for res.Execs < o.Execs {
		n := o.BatchSize
		if rem := o.Execs - res.Execs; n > rem {
			n = rem
		}
		cands := make([]searchCandidate, n)
		for i := range cands {
			cands[i] = propose()
		}
		gained := make(map[searchCandidate]bool, n)
		err := execBatch(o, cands, global, &res, func(c searchCandidate, gain int) {
			res.Corpus = append(res.Corpus, CorpusEntry{Seed: c.seed, Mut: c.mut, Gain: gain})
			gained[c] = true
		})
		if err != nil {
			return res, err
		}
		for _, c := range cands {
			stats.record(c, o.MaxJobs, gained[c])
		}
	}
	return res, nil
}

// BlindSearch is the uniform-random baseline: the same executor and
// budget as GuidedSearch, but every candidate is a fresh (seed, mut)
// draw — no corpus, no feedback. cmd/covsearch and the pinned-seed
// regression test compare the two at equal exec counts.
func BlindSearch(o SearchOptions) (SearchResult, error) {
	o.defaults()
	r := rng.New(o.Seed).Split("covsearch")
	global := &modelcov.Map{}
	res := SearchResult{Cover: global}
	for res.Execs < o.Execs {
		n := o.BatchSize
		if rem := o.Execs - res.Execs; n > rem {
			n = rem
		}
		cands := make([]searchCandidate, n)
		for i := range cands {
			cands[i] = searchCandidate{seed: r.Uint64(), mut: r.Uint64()}
		}
		if err := execBatch(o, cands, global, &res, nil); err != nil {
			return res, err
		}
	}
	return res, nil
}

// MinimizeCorpus replays entries in order against a fresh coverage map
// and keeps only those that still contribute a new feature, re-deriving
// each survivor's Gain. Entries that fail to validate or run drop out.
// Use it to compact a corpus after merging campaigns or after the
// feature table grows.
func MinimizeCorpus(entries []CorpusEntry, maxJobs int64) []CorpusEntry {
	global := &modelcov.Map{}
	var out []CorpusEntry
	for _, e := range entries {
		s := Random(e.Seed)
		mutate(&s, e.Mut)
		BoundWork(&s, maxJobs)
		if s.Validate() != nil {
			continue
		}
		local := &modelcov.Map{}
		if _, err := s.RunCover(local); err != nil {
			continue
		}
		if gain := global.Merge(local); gain > 0 {
			out = append(out, CorpusEntry{Seed: e.Seed, Mut: e.Mut, Gain: gain})
		}
	}
	return out
}

// WriteCorpus writes entries as a text file: one "seed mut gain" line
// per entry (decimal), '#' comments. The format is stable so corpus
// files diff cleanly in review.
func WriteCorpus(path string, entries []CorpusEntry) error {
	var b strings.Builder
	b.WriteString("# covsearch corpus: one \"seed mut gain\" per line.\n")
	b.WriteString("# Replayed by FuzzScenario and seedable into GuidedSearch.\n")
	for _, e := range entries {
		fmt.Fprintf(&b, "%d %d %d\n", e.Seed, e.Mut, e.Gain)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// ReadCorpus parses one corpus file written by WriteCorpus. The gain
// column is optional (hand-written files may omit it).
func ReadCorpus(path string) ([]CorpusEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []CorpusEntry
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var e CorpusEntry
		n, err := fmt.Sscanf(text, "%d %d %d", &e.Seed, &e.Mut, &e.Gain)
		if err != nil && n < 2 {
			return nil, fmt.Errorf("%s:%d: want \"seed mut [gain]\", got %q", path, line, text)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadCorpusDir reads every *.txt corpus file under dir (sorted by
// name) and concatenates the entries. A missing directory is an empty
// corpus, not an error, so tests run before any campaign has been
// persisted.
func ReadCorpusDir(dir string) ([]CorpusEntry, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.txt"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	var out []CorpusEntry
	for _, name := range names {
		entries, err := ReadCorpus(name)
		if err != nil {
			return nil, err
		}
		out = append(out, entries...)
	}
	return out, nil
}
