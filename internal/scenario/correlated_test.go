package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"holdcsim/internal/fault"
	"holdcsim/internal/sched"
)

// TestCorrelatedFaultMatrix sweeps the correlated-failure engine across
// its axes — rack/pod/subtree blasts, Weibull/exponential renewal with
// and without a crew limit, cascades, outage-log replay, both orphan
// policies — crossed with topologies and utilizations: 100+ scenarios,
// every one invariant-clean. Run with -race in CI: the sweep executes
// scenarios concurrently.
func TestCorrelatedFaultMatrix(t *testing.T) {
	log := "0.050000 0.100000 server 1\n" +
		"0.300000 0.100000 rack 0\n" +
		"0.600000 0.100000 pod 0\n" +
		"0.900000 0.050000 switch 0\n"
	path := filepath.Join(t.TempDir(), "outages.log")
	if err := os.WriteFile(path, []byte(log), 0o644); err != nil {
		t.Fatal(err)
	}
	base := Scenario{
		Servers:       8,
		DelayTimerSec: -1,
		Placer:        PlacerSpec{Kind: PlLeastLoaded},
		Factory:       FactorySpec{Kind: FacSingle},
		MaxJobs:       100,
	}
	axes := Axes{
		Seeds: []uint64{1, 2, 3},
		Topologies: []TopologySpec{
			{Kind: TopoNone},
			{Kind: TopoStar, A: 8},
			{Kind: TopoFatTree, A: 4},
		},
		Arrivals: []ArrivalSpec{
			{Kind: ArrPoisson, Rho: 0.3},
			{Kind: ArrPoisson, Rho: 0.6},
		},
		Faults: []fault.Spec{
			{RackKills: 1, RackDownSec: 0.1},
			{PodKills: 1, PodDownSec: 0.1, Orphans: sched.OrphanDrop},
			{SubtreeKills: 1, SubtreeDownSec: 0.1},
			{ServerMTTFSec: 0.8, ServerMTTRSec: 0.1, RepairCrews: 1},
			{ServerMTTFSec: 0.8, ServerMTTRSec: 0.1, WeibullShape: 1.6, Orphans: sched.OrphanDrop},
			{ServerCrashes: 1, ServerDownSec: 0.2, CascadeP: 1, CascadeDelaySec: 0.05, CascadeDepth: 2},
			{RackKills: 1, RackDownSec: 0.15, SwitchMTTFSec: 1.2, SwitchMTTRSec: 0.1},
			{TraceFile: path},
		},
	}
	scenarios := axes.Expand(base)
	if len(scenarios) < 100 {
		t.Fatalf("matrix expanded to %d scenarios, want 100+", len(scenarios))
	}

	var mu sync.Mutex
	failures := 0
	var wg sync.WaitGroup
	sem := make(chan struct{}, 8)
	for i, s := range scenarios {
		i, s := i, s
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			res, err := s.Run()
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				failures++
				if failures <= 5 {
					t.Errorf("scenario %d %s: %v", i, s.Name(), err)
				}
				return
			}
			if len(res.Violations) != 0 {
				failures++
				if failures <= 5 {
					t.Errorf("scenario %d %s: %d violation(s): %v",
						i, s.Name(), len(res.Violations), res.Violations[0])
				}
			}
		}()
	}
	wg.Wait()
	if failures > 5 {
		t.Errorf("... and %d more failing scenarios", failures-5)
	}
	t.Logf("%d correlated-fault scenarios, all invariant-clean", len(scenarios))
}

// TestCorrelatedPresetRoundTripReplay: the fault-correlated preset
// survives export/re-import exactly and the re-imported scenario
// replays byte-identically.
func TestCorrelatedPresetRoundTripReplay(t *testing.T) {
	p, err := Preset("fault-correlated")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if decoded != p {
		t.Fatalf("preset changed across the codec:\n%+v\n%+v", p, decoded)
	}
	ra, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(ra.Violations) != 0 {
		t.Fatalf("violations: %v", ra.Violations)
	}
	rb, err := decoded.Run()
	if err != nil {
		t.Fatal(err)
	}
	a, bb := ra.Results, rb.Results
	if a.JobsCompleted != bb.JobsCompleted || a.JobsLost != bb.JobsLost ||
		a.End != bb.End || a.ServerEnergyJ != bb.ServerEnergyJ ||
		a.NetworkEnergyJ != bb.NetworkEnergyJ || *a.Faults != *bb.Faults {
		t.Fatalf("re-imported preset replay diverged:\n%+v\n%+v", a, bb)
	}
	if a.Faults.Applied() == 0 {
		t.Fatal("fault-correlated preset applied no faults")
	}
}

// TestArrivalClip covers the ArrivalSpec clip window: validation,
// label injectivity, codec round trip, and the replay semantics (the
// window bounds the generated arrivals).
func TestArrivalClip(t *testing.T) {
	// Ten arrivals, one per second, 0..9.
	var lines string
	for i := 0; i < 10; i++ {
		lines += fmt.Sprintf("%d.0\n", i)
	}
	path := filepath.Join(t.TempDir(), "arrivals.trace")
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	mk := func(from, to float64) Scenario {
		return Scenario{
			Seed:          9,
			Servers:       2,
			DelayTimerSec: -1,
			Placer:        PlacerSpec{Kind: PlLeastLoaded},
			Arrival: ArrivalSpec{Kind: ArrTraceFile, Rho: 0.4, TraceFile: path,
				ClipFromSec: from, ClipToSec: to},
			Factory: FactorySpec{Kind: FacSingle},
		}
	}

	// Validation.
	bad := []Scenario{}
	{
		s := mk(2, 1) // empty window
		bad = append(bad, s)
		s2 := mk(0, 0)
		s2.Arrival.ClipFromSec = -1 // negative
		bad = append(bad, s2)
		s3 := mk(0, 0)
		s3.Arrival = ArrivalSpec{Kind: ArrPoisson, Rho: 0.4, ClipFromSec: 1} // clip without a trace file
		s3.MaxJobs = 10
		bad = append(bad, s3)
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %s", i, s.Name())
		}
	}

	// Labels: clip variants never collide.
	l0, l1, l2 := mk(0, 0).Name(), mk(2, 5).Name(), mk(2, 0).Name()
	if l0 == l1 || l1 == l2 || l0 == l2 {
		t.Errorf("clip labels collide: %q %q %q", l0, l1, l2)
	}
	// Dead clip fields on another kind still render (injectivity).
	dead := Scenario{Arrival: ArrivalSpec{Kind: ArrPoisson, Rho: 0.4, ClipFromSec: 1}}
	live := Scenario{Arrival: ArrivalSpec{Kind: ArrPoisson, Rho: 0.4}}
	if dead.Name() == live.Name() {
		t.Error("dead clip fields dropped from the label")
	}

	// Codec round trip.
	s := mk(2, 5)
	b, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("clip fields lost in codec:\n%+v\n%+v", s.Arrival, got.Arrival)
	}

	// Replay semantics: [2, 5) keeps arrivals 2, 3, 4; [2, 0) runs to
	// the end (2..9); no clip replays all ten.
	cases := []struct {
		from, to float64
		want     int64
	}{
		{0, 0, 10},
		{2, 5, 3},
		{2, 0, 8},
	}
	for _, tc := range cases {
		res, err := mk(tc.from, tc.to).Run()
		if err != nil {
			t.Fatalf("clip [%g, %g): %v", tc.from, tc.to, err)
		}
		if res.Results.JobsGenerated != tc.want {
			t.Errorf("clip [%g, %g): generated %d jobs, want %d",
				tc.from, tc.to, res.Results.JobsGenerated, tc.want)
		}
	}

	// A window past the trace is an empty clip -> construction error.
	if _, err := mk(50, 60).Run(); err == nil {
		t.Error("empty clip window accepted at build time")
	}
}
