package scenario

import (
	"testing"
)

// FuzzScenario drives the scenario generator with fuzzed seeds and
// parameter mutations: whatever the fuzzer composes, a scenario that
// passes Validate must build, run to completion without panicking, and
// hold every conservation law. The mutation word perturbs the drawn
// scenario inside its legal ranges (mutate in search.go — the encoding
// is shared with GuidedSearch) so the fuzzer explores corners the
// uniform generator visits rarely (rho near saturation, zero-job
// horizons, minimum farms, huge burst ratios, fault storms). Besides
// the pinned seeds, the corpus minimized by cmd/covsearch seeds the
// fuzzer with inputs known to reach rare model states.
func FuzzScenario(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(1), uint64(0xdeadbeef))
	f.Add(uint64(42), uint64(7))
	f.Add(uint64(9999), uint64(1<<63))
	corpus, err := ReadCorpusDir("testdata/corpus")
	if err != nil {
		f.Fatalf("reading covsearch corpus: %v", err)
	}
	for _, e := range corpus {
		f.Add(e.Seed, e.Mut)
	}
	f.Fuzz(func(t *testing.T, seed, mut uint64) {
		s := Random(seed)
		mutate(&s, mut)
		// Hard work bound for the fuzz executor: whatever horizon the
		// mutation composed, cap generation so a single exec can never
		// trip the fuzzer's hang detector (trace- or duration-only
		// horizons on big farms otherwise derive 10^5+ jobs).
		BoundWork(&s, 800)
		if err := s.Validate(); err != nil {
			// An invalid mutation is fine — rejecting it cleanly is the
			// contract. Running it is not.
			return
		}
		res, err := s.Run()
		if err != nil {
			t.Fatalf("seed=%d mut=%#x %s: %v", seed, mut, s.Name(), err)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("seed=%d mut=%#x %s: violations %v", seed, mut, s.Name(), res.Violations)
		}
		if r := res.Results; r.JobsCompleted > r.JobsGenerated {
			t.Fatalf("seed=%d mut=%#x: completed %d > generated %d", seed, mut,
				r.JobsCompleted, r.JobsGenerated)
		}
	})
}
