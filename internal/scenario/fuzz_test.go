package scenario

import (
	"testing"
)

// FuzzScenario drives the scenario generator with fuzzed seeds and
// parameter mutations: whatever the fuzzer composes, a scenario that
// passes Validate must build, run to completion without panicking, and
// hold every conservation law. The mutation word perturbs the drawn
// scenario inside its legal ranges so the fuzzer explores corners the
// uniform generator visits rarely (rho near saturation, zero-job
// horizons, minimum farms, huge burst ratios).
func FuzzScenario(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(1), uint64(0xdeadbeef))
	f.Add(uint64(42), uint64(7))
	f.Add(uint64(9999), uint64(1<<63))
	f.Fuzz(func(t *testing.T, seed, mut uint64) {
		s := Random(seed)
		mutate(&s, mut)
		// Hard work bound for the fuzz executor: whatever horizon the
		// mutation composed, cap generation so a single exec can never
		// trip the fuzzer's hang detector (trace- or duration-only
		// horizons on big farms otherwise derive 10^5+ jobs).
		if s.MaxJobs == 0 || s.MaxJobs > 800 {
			s.MaxJobs = 800
		}
		if err := s.Validate(); err != nil {
			// An invalid mutation is fine — rejecting it cleanly is the
			// contract. Running it is not.
			return
		}
		res, err := s.Run()
		if err != nil {
			t.Fatalf("seed=%d mut=%#x %s: %v", seed, mut, s.Name(), err)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("seed=%d mut=%#x %s: violations %v", seed, mut, s.Name(), res.Violations)
		}
		if r := res.Results; r.JobsCompleted > r.JobsGenerated {
			t.Fatalf("seed=%d mut=%#x: completed %d > generated %d", seed, mut,
				r.JobsCompleted, r.JobsGenerated)
		}
	})
}

// mutate perturbs a drawn scenario with fuzz-controlled values, bounded
// so single executions stay fast (small farms, short horizons, bounded
// edge bytes) while still reaching saturation and degenerate corners.
func mutate(s *Scenario, mut uint64) {
	take := func(n uint64) uint64 { // peel a field off the mutation word
		v := mut % n
		mut /= n
		return v
	}
	switch take(4) {
	case 1:
		// Up to 1.55: overload scenarios (1.0–1.45) run, and the top of
		// the range crosses Validate's 1.5 cap to exercise rejection.
		s.Arrival.Rho = 0.05 + float64(take(16))*0.1
	case 2:
		s.Arrival.BurstRatio = 1 + float64(take(40))
	}
	switch take(4) {
	case 1:
		s.MaxJobs, s.DurationSec, s.DVFS = int64(take(120)), 0, false
	case 2:
		s.MaxJobs, s.DurationSec = 0, 0.05+float64(take(20))*0.1
	}
	switch take(4) {
	case 1:
		s.Servers = 1 + int(take(4))
	case 2:
		s.Factory.Width = 1 + int(take(4))
		s.Factory.Layers = 1 + int(take(3))
	}
	if take(3) == 1 && s.Comm != 0 {
		s.Factory.EdgeBytes = int64(take(32)) << 10
	}
	if take(3) == 1 {
		s.DelayTimerSec = [...]float64{-1, 0, 0.01, 0.3}[take(4)]
	}
}
