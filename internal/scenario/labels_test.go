package scenario

import (
	"math"
	"sort"
	"strings"
	"testing"

	"holdcsim/internal/core"
)

// TestPresetLookup: name-based access used by cmd/scenario.
func TestPresetLookup(t *testing.T) {
	s, err := Preset("fig5-delaytimer")
	if err != nil || s.Servers != 8 {
		t.Fatalf("Preset lookup: %+v, %v", s, err)
	}
	if _, err := Preset("fig99"); err == nil {
		t.Error("unknown preset accepted")
	}
	names := PresetNames()
	if len(names) != 10 || !sort.StringsAreSorted(names) {
		t.Errorf("PresetNames = %v", names)
	}
}

// TestArrivalProcessPaths runs one tiny scenario per arrival kind —
// including the new trace-file kind replaying the checked-in fixture —
// through the full invariant-checked path. This is the in-package half
// of the tentpole's acceptance: an externally recorded trace rides the
// exact deterministic path the synthetic ones use, twice, identically.
func TestArrivalProcessPaths(t *testing.T) {
	base := Scenario{Seed: 3, Servers: 4, DelayTimerSec: 0.1, MaxJobs: 60}
	arrivals := []ArrivalSpec{
		{Kind: ArrPoisson, Rho: 0.4},
		{Kind: ArrMMPP, Rho: 0.4, BurstRatio: 3},
		{Kind: ArrTraceWiki, Rho: 0.4, TraceSec: 2},
		{Kind: ArrTraceNLANR, Rho: 0.4, TraceSec: 2},
		{Kind: ArrTraceFile, Rho: 0.4, TraceFile: "testdata/arrivals.trace"},
	}
	for _, a := range arrivals {
		s := base
		s.Arrival = a
		res, err := s.Run()
		if err != nil {
			t.Errorf("%s: %v", a, err)
			continue
		}
		if len(res.Violations) != 0 {
			t.Errorf("%s: %v", a, res.Violations)
		}
		if res.Results.JobsCompleted == 0 {
			t.Errorf("%s completed zero jobs", a)
		}
		// Determinism: the replay is a pure function of the scenario
		// value (plus, for trace-file, the file bytes).
		res2, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res2.Results.End != res.Results.End ||
			res2.Results.ServerEnergyJ != res.Results.ServerEnergyJ ||
			res2.Results.JobsCompleted != res.Results.JobsCompleted {
			t.Errorf("%s: two runs of the same scenario diverged", a)
		}
	}
}

// TestArrivalProcessErrors: the file-loading and composition error
// paths fail at Build, not panic at run time.
func TestArrivalProcessErrors(t *testing.T) {
	base := Scenario{Seed: 3, Servers: 2, DelayTimerSec: -1, MaxJobs: 10}
	cases := []struct {
		name string
		arr  ArrivalSpec
	}{
		{"missing-file", ArrivalSpec{Kind: ArrTraceFile, Rho: 0.3, TraceFile: "testdata/absent.trace"}},
		{"not-a-trace", ArrivalSpec{Kind: ArrTraceFile, Rho: 0.3, TraceFile: "testdata/commented.json"}},
		{"mmpp-ratio", ArrivalSpec{Kind: ArrMMPP, Rho: 0.3, BurstRatio: 0.5}},
	}
	for _, tc := range cases {
		s := base
		s.Arrival = tc.arr
		if _, err := s.Build(); err == nil {
			t.Errorf("%s: Build succeeded", tc.name)
		}
	}
}

// TestValidateRejectsNonFinite: NaN slips through ordinary range
// comparisons, so every float field is swept explicitly — external
// input (or a buggy generator) cannot smuggle a non-finite value into
// a run.
func TestValidateRejectsNonFinite(t *testing.T) {
	ok := Scenario{Seed: 1, Servers: 2, MaxJobs: 10, Arrival: ArrivalSpec{Kind: ArrPoisson, Rho: 0.3}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("baseline invalid: %v", err)
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		mutations := []struct {
			name string
			mut  func(*Scenario)
		}{
			{"rho", func(s *Scenario) { s.Arrival.Rho = bad }},
			{"burstRatio", func(s *Scenario) { s.Arrival.BurstRatio = bad }},
			{"traceSec", func(s *Scenario) { s.Arrival.TraceSec = bad }},
			{"delayTimerSec", func(s *Scenario) { s.DelayTimerSec = bad }},
			{"durationSec", func(s *Scenario) { s.DurationSec = bad }},
			{"switchSleepSec", func(s *Scenario) { s.SwitchSleepSec = bad }},
			{"tauSec", func(s *Scenario) { s.Placer.TauSec = bad }},
			{"rateBps", func(s *Scenario) { s.Topology.RateBps = bad }},
		}
		for _, m := range mutations {
			s := ok
			m.mut(&s)
			if err := s.Validate(); err == nil {
				t.Errorf("Validate accepted %s = %g", m.name, bad)
			}
		}
	}
}

// TestLabelDeadFieldSuffixes: fields a kind ignores still distinguish
// scenario values in labels (the parenthesized tails), and live fields
// render in the pretty prefix.
func TestLabelDeadFieldSuffixes(t *testing.T) {
	// Topology: dead shape params and non-default link rate.
	plain := TopologySpec{Kind: TopoStar, A: 8}
	deviant := TopologySpec{Kind: TopoStar, A: 8, B: 3}
	if plain.String() == deviant.String() {
		t.Errorf("star with dead B collides: %s", plain)
	}
	if !strings.Contains(deviant.String(), "(8,3,0)") {
		t.Errorf("dead-shape tail missing: %s", deviant)
	}
	rated := TopologySpec{Kind: TopoFatTree, A: 4, RateBps: 1e9}
	if !strings.Contains(rated.String(), "@1e+09") {
		t.Errorf("link rate missing from %s", rated)
	}
	if s := (TopologySpec{Kind: TopoNone, A: 1}).String(); s == "none" {
		t.Errorf("none with dead params collides: %s", s)
	}
	for _, topo := range []TopologySpec{
		{Kind: TopoBCube, A: 2, B: 1, C: 9},
		{Kind: TopoCamCube, A: 2, B: 2, C: 2},
		{Kind: TopoFlatButterfly, A: 2, B: 2, C: 2},
	} {
		if topo.String() == (TopologySpec{Kind: topo.Kind, A: topo.A, B: topo.B}).String() &&
			topo.C != 0 && topo.Kind == TopoBCube {
			t.Errorf("bcube dead C collides: %s", topo)
		}
	}

	// Arrival: dead burst/trace/file fields.
	a := ArrivalSpec{Kind: ArrPoisson, Rho: 0.3}
	b := ArrivalSpec{Kind: ArrPoisson, Rho: 0.3, BurstRatio: 4}
	c := ArrivalSpec{Kind: ArrPoisson, Rho: 0.3, TraceSec: 2}
	d := ArrivalSpec{Kind: ArrMMPP, Rho: 0.3, BurstRatio: 4, TraceSec: 2}
	e := ArrivalSpec{Kind: ArrMMPP, Rho: 0.3, BurstRatio: 4}
	labels := map[string]bool{}
	for _, spec := range []ArrivalSpec{a, b, c, d, e} {
		if labels[spec.String()] {
			t.Errorf("arrival label collision at %s", spec)
		}
		labels[spec.String()] = true
	}

	// Factory: dead width/layers/edge bytes.
	f1 := FactorySpec{Kind: FacSingle, Service: SvcWebSearch}
	f2 := FactorySpec{Kind: FacSingle, Service: SvcWebSearch, Width: 2}
	f3 := FactorySpec{Kind: FacTwoTier, Service: SvcWebSearch, EdgeBytes: 1024, Layers: 1}
	f4 := FactorySpec{Kind: FacTwoTier, Service: SvcWebSearch, EdgeBytes: 1024}
	f5 := FactorySpec{Kind: FacScatterGather, Service: SvcWebSearch, Width: 2, EdgeBytes: 1024, Layers: 3}
	for _, pair := range [][2]FactorySpec{{f1, f2}, {f3, f4}} {
		if pair[0].String() == pair[1].String() {
			t.Errorf("factory dead-field collision: %s", pair[0])
		}
	}
	if !strings.Contains(f5.String(), "(w2-l3-e1024)") {
		t.Errorf("scatter dead-layers tail missing: %s", f5)
	}

	// Placer: tau renders for the policies that consume it, tails for
	// the ones that don't.
	if s := (PlacerSpec{Kind: PlAdaptivePool, TauSec: 0.2}).String(); s != "adaptive-t0.2" {
		t.Errorf("adaptive tau label: %s", s)
	}
	if s := (PlacerSpec{Kind: PlRoundRobin, TauSec: 0.2}).String(); s != "roundrobin(t0.2)" {
		t.Errorf("dead tau label: %s", s)
	}
	if s := (PlacerSpec{Kind: PlRoundRobin}).String(); s != "roundrobin" {
		t.Errorf("plain placer label: %s", s)
	}

	// Scenario flags and fault tail.
	s := Scenario{Seed: 1, Servers: 2, MaxJobs: 10, Arrival: ArrivalSpec{Kind: ArrPoisson, Rho: 0.3},
		Heterogeneous: true, GlobalQueue: true, DVFS: true, CheckStationary: true}
	label := s.String()
	for _, flag := range []string{"/het", "/gq", "/dvfs", "/stat"} {
		if !strings.Contains(label, flag) {
			t.Errorf("label %s missing flag %s", label, flag)
		}
	}
	if plainLabel := (Scenario{Seed: 1, Servers: 2, MaxJobs: 10,
		Arrival: ArrivalSpec{Kind: ArrPoisson, Rho: 0.3}}).String(); plainLabel == label {
		t.Error("flags do not distinguish labels")
	}
}

// TestEncodeRejects: the encoder refuses what the decoder would — an
// invalid scenario has no file form, and enum values off the registry
// error instead of serializing junk.
func TestEncodeRejects(t *testing.T) {
	if _, err := Encode(Scenario{}); err == nil {
		t.Error("Encode accepted the zero scenario (no horizon, zero servers)")
	}
	if _, err := EncodeMatrix(Matrix{}); err == nil {
		t.Error("EncodeMatrix accepted a zero-expansion matrix")
	}
	if _, err := TopoKind(99).MarshalText(); err == nil {
		t.Error("unknown topo kind marshaled")
	}
	if _, err := ArrivalKind(99).MarshalText(); err == nil {
		t.Error("unknown arrival kind marshaled")
	}
	if _, err := FactoryKind(99).MarshalText(); err == nil {
		t.Error("unknown factory kind marshaled")
	}
	if _, err := ServiceKind(99).MarshalText(); err == nil {
		t.Error("unknown service kind marshaled")
	}
	if _, err := PlacerKind(99).MarshalText(); err == nil {
		t.Error("unknown placer kind marshaled")
	}
	if _, err := ProfileKind(99).MarshalText(); err == nil {
		t.Error("unknown profile marshaled")
	}
	var tk TopoKind
	if err := tk.UnmarshalText([]byte("torus")); err == nil {
		t.Error("unknown topo name unmarshaled")
	}
	// Comm without topology must not encode either.
	bad := Scenario{Seed: 1, Servers: 2, MaxJobs: 10,
		Arrival: ArrivalSpec{Kind: ArrPoisson, Rho: 0.3}, Comm: core.CommFlow}
	if _, err := Encode(bad); err == nil {
		t.Error("Encode accepted comm without topology")
	}
}
