package scenario

import (
	"strings"
	"testing"

	"holdcsim/internal/core"
	"holdcsim/internal/network"
)

// fluidDifferentialBases returns the packet-comm scenarios the
// fluid-vs-packet differential runs over: the fig13 switch-validation
// preset (the golden experiment with packet-granularity transfers) and
// a fat-tree scatter-gather variant that exercises multi-hop contention.
func fluidDifferentialBases(t *testing.T) []Scenario {
	t.Helper()
	fig13, err := Preset("fig13-switch-validation")
	if err != nil {
		t.Fatal(err)
	}
	fattree := Scenario{
		Seed:           7,
		Topology:       TopologySpec{Kind: TopoFatTree, A: 4},
		Comm:           core.CommPacket,
		Servers:        16,
		Profile:        ProfFourCore,
		DelayTimerSec:  -1,
		Placer:         PlacerSpec{Kind: PlRoundRobin},
		Arrival:        ArrivalSpec{Kind: ArrPoisson, Rho: 0.3},
		Factory:        FactorySpec{Kind: FacScatterGather, Service: SvcWebSearch, Width: 3, EdgeBytes: 24 << 10},
		MaxJobs:        80,
		SwitchSleepSec: -1,
	}
	return []Scenario{fig13, fattree}
}

// TestFluidPresetDifferential runs each differential base under both
// network models. The fluid model must (a) violate no invariant — the
// deep scan now checks packet conservation at every callback boundary —
// and (b) agree with the packet model exactly on job counts (the
// arrival stream and DAG structure are model-independent) and within a
// bounded factor on the virtual end time (contention resolves by
// serialization pipelining in one model, max-min rate sharing in the
// other).
func TestFluidPresetDifferential(t *testing.T) {
	for _, base := range fluidDifferentialBases(t) {
		packet := base
		fluid := base
		fluid.NetModel = network.ModelFluid
		if err := fluid.Validate(); err != nil {
			t.Fatalf("fluid variant of %s invalid: %v", base.Name(), err)
		}
		pr, err := packet.Run()
		if err != nil {
			t.Fatalf("packet run %s: %v", packet.Name(), err)
		}
		fr, err := fluid.Run()
		if err != nil {
			t.Fatalf("fluid run %s: %v", fluid.Name(), err)
		}
		for _, res := range []Result{pr, fr} {
			if len(res.Violations) != 0 {
				t.Fatalf("%s: %d invariant violations: %v",
					res.Scenario.Name(), len(res.Violations), res.Violations[0])
			}
		}
		if pr.Results.JobsGenerated != fr.Results.JobsGenerated ||
			pr.Results.JobsCompleted != fr.Results.JobsCompleted {
			t.Errorf("%s: job counts diverge: packet %d/%d, fluid %d/%d",
				base.Name(),
				pr.Results.JobsGenerated, pr.Results.JobsCompleted,
				fr.Results.JobsGenerated, fr.Results.JobsCompleted)
		}
		pEnd, fEnd := pr.Results.End.Seconds(), fr.Results.End.Seconds()
		if pEnd <= 0 || fEnd <= 0 {
			t.Fatalf("%s: degenerate end times packet %g fluid %g", base.Name(), pEnd, fEnd)
		}
		if ratio := fEnd / pEnd; ratio < 0.5 || ratio > 2 {
			t.Errorf("%s: end-time ratio %.3f outside [0.5, 2] (packet %g s, fluid %g s)",
				base.Name(), ratio, pEnd, fEnd)
		}
	}
}

// TestNetModelAxis covers the scenario plumbing of the network-model
// axis: validation, labeling, codec round-trip, zero-value file
// compatibility, and matrix expansion.
func TestNetModelAxis(t *testing.T) {
	base, err := Preset("fig13-switch-validation")
	if err != nil {
		t.Fatal(err)
	}

	fluid := base
	fluid.NetModel = network.ModelFluid
	if !strings.Contains(fluid.Name(), "/fluid") {
		t.Errorf("fluid label %q missing /fluid segment", fluid.Name())
	}
	if strings.Contains(base.Name(), "/fluid") {
		t.Errorf("packet label %q claims fluid", base.Name())
	}

	// Fluid requires packet comm: flow comm and server-only both reject.
	bad := fluid
	bad.Comm = core.CommFlow
	if err := bad.Validate(); err == nil {
		t.Error("fluid model with flow comm validated")
	}

	// Codec round-trip keeps the model; encoding the packet model emits
	// no netModel key at all, so pre-axis scenario files are unchanged.
	enc, err := Encode(fluid)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(enc), `"netModel": "fluid"`) {
		t.Errorf("encoded fluid scenario missing netModel key:\n%s", enc)
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec != fluid {
		t.Errorf("round trip changed scenario:\n got %+v\nwant %+v", dec, fluid)
	}
	encBase, err := Encode(base)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(encBase), "netModel") {
		t.Errorf("packet-model encoding leaks the zero value:\n%s", encBase)
	}

	// Matrix axis: both models expand; fluid drops out for non-packet comm.
	ax := Axes{
		Comms:     []core.CommMode{core.CommPacket, core.CommFlow},
		NetModels: []network.NetModel{network.ModelPacket, network.ModelFluid},
	}
	got := ax.Expand(base)
	if len(got) != 3 { // packet×packet, packet×fluid, flow×packet
		t.Fatalf("expanded %d scenarios, want 3: %v", len(got), got)
	}
	fluidCount := 0
	for _, s := range got {
		if s.NetModel == network.ModelFluid {
			fluidCount++
			if s.Comm != core.CommPacket {
				t.Errorf("fluid expanded with comm %v", s.Comm)
			}
		}
	}
	if fluidCount != 1 {
		t.Errorf("%d fluid scenarios in expansion, want 1", fluidCount)
	}
}
