package scenario

import (
	"testing"

	"holdcsim/internal/core"
	"holdcsim/internal/fault"
	"holdcsim/internal/runner"
	"holdcsim/internal/sched"
)

// faultAxes is the failure matrix: every topology family crossed with
// both comm modes and a fault cross-section — crash-only under both
// orphan policies, crash+flap, and crash+flap+switch-death — so the
// sweep exercises every fault class against every transfer model.
func faultAxes() Axes {
	return Axes{
		Topologies: []TopologySpec{
			{Kind: TopoNone},
			{Kind: TopoStar, A: 8},
			{Kind: TopoFatTree, A: 4},
			{Kind: TopoBCube, A: 2, B: 1},
			{Kind: TopoCamCube, A: 2, B: 2, C: 2},
			{Kind: TopoFlatButterfly, A: 2, B: 2, C: 2},
		},
		Comms:   []core.CommMode{core.CommFlow, core.CommPacket, core.CommNone},
		Placers: []PlacerSpec{{Kind: PlLeastLoaded}, {Kind: PlPackFirst}},
		Arrivals: []ArrivalSpec{
			{Kind: ArrPoisson, Rho: 0.4},
		},
		Factories: []FactorySpec{
			{Kind: FacScatterGather, Service: SvcWikipedia, Width: 2, EdgeBytes: 16 << 10},
		},
		Horizons: []Horizon{{MaxJobs: 100}},
		Faults: []fault.Spec{
			{ServerCrashes: 2, ServerDownSec: 0.05, Orphans: sched.OrphanRequeue},
			{ServerCrashes: 2, ServerDownSec: 0.05, Orphans: sched.OrphanDrop},
			{ServerCrashes: 1, ServerDownSec: 0.05, LinkFlaps: 2, LinkDownSec: 0.03, Orphans: sched.OrphanRequeue},
			{ServerCrashes: 1, ServerDownSec: 0.05, LinkFlaps: 1, LinkDownSec: 0.03,
				SwitchKills: 1, SwitchDownSec: 0.05, Orphans: sched.OrphanDrop},
		},
	}
}

// TestScenarioMatrixWithFaults is the acceptance sweep: the full valid
// cross product of topologies × comm modes × placers × fault specs runs
// through the campaign pool with the invariant checker attached. Every
// failure-aware law — lost-work conservation, the ledger cross-check,
// the crash-split Little integral, down-time-excluded energy closure —
// must hold in every scenario, and the sweep must actually exercise
// failures (crashes applied, and jobs lost under the drop policy).
func TestScenarioMatrixWithFaults(t *testing.T) {
	base := Scenario{Seed: 73, Servers: 8, DelayTimerSec: 0.1}
	scenarios := faultAxes().Expand(base)
	if len(scenarios) < 60 {
		t.Fatalf("fault matrix expanded to %d scenarios, want >= 60", len(scenarios))
	}
	runs := make([]runner.Run[Result], len(scenarios))
	for i, s := range scenarios {
		s := s
		runs[i] = runner.Run[Result]{
			Key: s.Name(),
			Do:  func(uint64) (Result, error) { return s.Run() },
		}
	}
	results, err := runner.Map(runner.Options{}, base.Seed, runs)
	if err != nil {
		t.Fatal(err)
	}
	var crashes, lost, orphaned, linkCuts, switchFails, completed int64
	for i, r := range results {
		if len(r.Violations) != 0 {
			t.Errorf("%s: %v", scenarios[i].Name(), r.Violations)
		}
		if r.Results == nil {
			t.Fatalf("%s: no results", scenarios[i].Name())
		}
		res := r.Results
		completed += res.JobsCompleted
		if res.Faults == nil {
			t.Fatalf("%s: faulted scenario returned no ledger", scenarios[i].Name())
		}
		crashes += res.Faults.ServerCrashes
		lost += res.JobsLost
		orphaned += res.Faults.TasksOrphaned
		linkCuts += res.Faults.LinkCuts
		switchFails += res.Faults.SwitchFails
		if res.JobsCompleted+res.JobsLost != res.JobsGenerated {
			// MaxJobs horizons drain fully even under failures: every
			// generated job either completes or is accounted lost.
			t.Errorf("%s: completed %d + lost %d != generated %d", scenarios[i].Name(),
				res.JobsCompleted, res.JobsLost, res.JobsGenerated)
		}
	}
	if crashes == 0 || orphaned == 0 {
		t.Errorf("sweep applied %d crashes orphaning %d tasks; the fault axis did nothing", crashes, orphaned)
	}
	if lost == 0 {
		t.Error("no job was lost across the drop-policy scenarios")
	}
	if linkCuts == 0 || switchFails == 0 {
		t.Errorf("network faults did not land: %d link cuts, %d switch kills", linkCuts, switchFails)
	}
	if completed == 0 {
		t.Fatal("fault matrix completed zero jobs")
	}
	t.Logf("fault matrix: %d scenarios, %d jobs completed, %d lost, %d crashes, %d link cuts, %d switch kills, zero violations",
		len(scenarios), completed, lost, crashes, linkCuts, switchFails)
}
