package scenario

import (
	"fmt"
	"testing"

	"holdcsim/internal/core"
	"holdcsim/internal/runner"
)

// shortAxes is the -short matrix: every topology family (plus
// server-only), every comm mode, a placer cross-section including the
// network-aware policy, bursty and memoryless arrivals, and single- and
// multi-task job shapes. The valid cross product exceeds 100 scenarios
// — the suite's floor.
func shortAxes() Axes {
	return Axes{
		Topologies: []TopologySpec{
			{Kind: TopoNone},
			{Kind: TopoStar, A: 8},
			{Kind: TopoFatTree, A: 4},
			{Kind: TopoBCube, A: 2, B: 1},
			{Kind: TopoCamCube, A: 2, B: 2, C: 2},
			{Kind: TopoFlatButterfly, A: 2, B: 2, C: 2},
		},
		Comms:   []core.CommMode{core.CommNone, core.CommFlow, core.CommPacket},
		Placers: []PlacerSpec{{Kind: PlLeastLoaded}, {Kind: PlPackFirst}, {Kind: PlNetworkAware}},
		Arrivals: []ArrivalSpec{
			{Kind: ArrPoisson, Rho: 0.3},
			{Kind: ArrMMPP, Rho: 0.6, BurstRatio: 4},
		},
		Factories: []FactorySpec{
			{Kind: FacSingle, Service: SvcWebSearch},
			{Kind: FacScatterGather, Service: SvcWikipedia, Width: 2, EdgeBytes: 16 << 10},
		},
		Horizons: []Horizon{{MaxJobs: 120}},
	}
}

// TestScenarioMatrix executes the full -short matrix — every scenario
// with the invariant checker attached — over the campaign runner's
// worker pool (race-clean: each run owns its engine and rng streams).
// Any conservation-law violation in any scenario fails the suite.
func TestScenarioMatrix(t *testing.T) {
	base := Scenario{Seed: 41, Servers: 8, DelayTimerSec: 0.1}
	scenarios := shortAxes().Expand(base)
	if len(scenarios) < 100 {
		t.Fatalf("matrix expanded to %d scenarios, want >= 100", len(scenarios))
	}
	names := make(map[string]bool)
	runs := make([]runner.Run[Result], len(scenarios))
	for i, s := range scenarios {
		s := s
		names[s.Name()] = true
		runs[i] = runner.Run[Result]{
			Key: s.Name(),
			// The scenario carries its own seed; the runner's derived
			// seed is unused so the run stays a pure function of s.
			Do: func(uint64) (Result, error) { return s.Run() },
		}
	}
	if len(names) < 100 {
		t.Fatalf("only %d distinct scenario names across %d scenarios", len(names), len(scenarios))
	}
	results, err := runner.Map(runner.Options{}, base.Seed, runs)
	if err != nil {
		t.Fatal(err)
	}
	completed := int64(0)
	for i, r := range results {
		if len(r.Violations) != 0 {
			t.Errorf("%s: %v", scenarios[i].Name(), r.Violations)
		}
		if r.Results == nil {
			t.Fatalf("%s: no results", scenarios[i].Name())
		}
		completed += r.Results.JobsCompleted
		if r.Results.JobsCompleted != r.Results.JobsGenerated {
			// MaxJobs horizons drain fully: generation stops, queues empty.
			t.Errorf("%s: completed %d of %d generated", scenarios[i].Name(),
				r.Results.JobsCompleted, r.Results.JobsGenerated)
		}
	}
	if completed == 0 {
		t.Fatal("matrix completed zero jobs")
	}
	t.Logf("matrix: %d scenarios, %d jobs, zero violations", len(scenarios), completed)
}

// TestRandomScenarios draws seeded scenarios from the full registry and
// runs each with checking on. Short mode draws 40 (the matrix suite
// already covers >100); full mode draws 150.
func TestRandomScenarios(t *testing.T) {
	n := 150
	if testing.Short() {
		n = 40
	}
	runs := make([]runner.Run[Result], n)
	kinds := make(map[string]bool)
	for i := 0; i < n; i++ {
		s := Random(uint64(1000 + i))
		if err := s.Validate(); err != nil {
			t.Fatalf("Random(%d) produced an invalid scenario: %v", 1000+i, err)
		}
		kinds[fmt.Sprintf("%v/%v/%v/%v", s.Topology.Kind, s.Comm, s.Placer.Kind, s.Arrival.Kind)] = true
		runs[i] = runner.Run[Result]{
			Key: s.Name(),
			Do:  func(uint64) (Result, error) { return s.Run() },
		}
	}
	// The generator must actually roam the registry, not collapse onto
	// a corner of it.
	if len(kinds) < 12 {
		t.Errorf("only %d distinct (topo, comm, placer, arrival) combinations in %d draws", len(kinds), n)
	}
	results, err := runner.Map(runner.Options{}, 1, runs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if len(r.Violations) != 0 {
			t.Errorf("seed %d (%s): %v", 1000+i, r.Scenario.Name(), r.Violations)
		}
	}
}

// TestRandomScenarioDeterminism: the same seed must yield the same
// scenario and the same run, bit for bit.
func TestRandomScenarioDeterminism(t *testing.T) {
	a, b := Random(7), Random(7)
	if a != b {
		t.Fatalf("Random(7) differs across calls:\n%+v\n%+v", a, b)
	}
	ra, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ra.Results.JobsCompleted != rb.Results.JobsCompleted ||
		ra.Results.ServerEnergyJ != rb.Results.ServerEnergyJ ||
		ra.Results.End != rb.Results.End {
		t.Fatalf("same scenario diverged: %v vs %v", ra.Results, rb.Results)
	}
}

// TestExpandClampsServers: a farm-size axis larger than a topology's
// host count clamps instead of dropping the combination, and two axis
// values that clamp onto the same farm dedupe to one scenario.
func TestExpandClampsServers(t *testing.T) {
	axes := Axes{
		Topologies: []TopologySpec{{Kind: TopoStar, A: 4}},
		Servers:    []int{16, 32},
	}
	out := axes.Expand(Scenario{Seed: 1, MaxJobs: 10, Arrival: ArrivalSpec{Kind: ArrPoisson, Rho: 0.2}})
	if len(out) != 1 {
		t.Fatalf("expanded to %d scenarios, want 1 (both sizes clamp to the same farm)", len(out))
	}
	if out[0].Servers != 4 {
		t.Fatalf("servers = %d, want clamped to 4 hosts", out[0].Servers)
	}
}

// TestValidateRejectsIllegalCompositions pins the validity rules the
// expander and fuzzer rely on.
func TestValidateRejectsIllegalCompositions(t *testing.T) {
	ok := Scenario{Seed: 1, Servers: 2, MaxJobs: 10, Arrival: ArrivalSpec{Kind: ArrPoisson, Rho: 0.3}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("baseline scenario invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"comm-without-topology", func(s *Scenario) { s.Comm = core.CommFlow }},
		{"netaware-without-topology", func(s *Scenario) { s.Placer.Kind = PlNetworkAware }},
		{"no-horizon", func(s *Scenario) { s.MaxJobs = 0 }},
		{"dvfs-without-duration", func(s *Scenario) { s.DVFS = true }},
		{"zero-servers", func(s *Scenario) { s.Servers = 0 }},
		{"rho-out-of-range", func(s *Scenario) { s.Arrival.Rho = 0 }},
		{"servers-exceed-hosts", func(s *Scenario) {
			s.Topology = TopologySpec{Kind: TopoStar, A: 2}
			s.Servers = 5
		}},
	}
	for _, tc := range cases {
		s := ok
		tc.mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an illegal scenario", tc.name)
		}
	}
}
