package scenario

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"holdcsim/internal/fault"
	"holdcsim/internal/sched"
)

// update regenerates the golden scenario file (same convention as the
// experiments golden suite).
var update = flag.Bool("update", false, "rewrite golden scenario files")

// TestPresetsValidAndRunnable: all nine presets validate, carry
// distinct labels, and actually run with zero invariant violations —
// the preset table is the format's living documentation, so a rotten
// entry would document a lie.
func TestPresetsValidAndRunnable(t *testing.T) {
	presets := Presets()
	if len(presets) != 10 {
		t.Fatalf("%d presets, want 10 (one per paper artifact plus fault-correlated)", len(presets))
	}
	labels := make(map[string]string)
	for name, s := range presets {
		if err := s.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", name, err)
		}
		if prev, dup := labels[s.String()]; dup {
			t.Errorf("presets %s and %s share label %s", name, prev, s.String())
		}
		labels[s.String()] = name
	}
	if testing.Short() {
		return
	}
	for name, s := range presets {
		res, err := s.Run()
		if err != nil {
			t.Errorf("preset %s failed: %v", name, err)
			continue
		}
		if len(res.Violations) != 0 {
			t.Errorf("preset %s: %v", name, res.Violations)
		}
		if res.Results.JobsCompleted == 0 {
			t.Errorf("preset %s completed zero jobs", name)
		}
	}
}

// TestCodecRoundTripPresets: Decode(Encode(s)) == s — comparable struct
// equality — for every preset.
func TestCodecRoundTripPresets(t *testing.T) {
	for name, s := range Presets() {
		b, err := Encode(s)
		if err != nil {
			t.Fatalf("preset %s: encode: %v", name, err)
		}
		back, err := Decode(b)
		if err != nil {
			t.Fatalf("preset %s: decode: %v\n%s", name, err, b)
		}
		if back != s {
			t.Errorf("preset %s: round trip changed the scenario:\nin:  %+v\nout: %+v", name, s, back)
		}
	}
}

// TestCodecRoundTripRandom: the property holds over the full registry —
// every Random draw round-trips exactly, including uint64 seeds beyond
// 2^53 (the codec must not detour through float64).
func TestCodecRoundTripRandom(t *testing.T) {
	seeds := make([]uint64, 0, 203)
	for i := uint64(0); i < 200; i++ {
		seeds = append(seeds, i*7919+1)
	}
	seeds = append(seeds, 1<<63, 1<<64-1, 1<<53+1)
	for _, seed := range seeds {
		s := Random(seed)
		s.Seed = seed // Random already does this; keep the intent explicit
		b, err := Encode(s)
		if err != nil {
			t.Fatalf("Random(%d): encode: %v", seed, err)
		}
		back, err := Decode(b)
		if err != nil {
			t.Fatalf("Random(%d): decode: %v\n%s", seed, err, b)
		}
		if back != s {
			t.Fatalf("Random(%d): round trip changed the scenario:\nin:  %+v\nout: %+v\nfile:\n%s", seed, s, back, b)
		}
	}
}

// TestCodecRoundTripTraceFile: the new trace-file arrival kind
// round-trips like every other field.
func TestCodecRoundTripTraceFile(t *testing.T) {
	s := Presets()["fig5-delaytimer"]
	s.Arrival = ArrivalSpec{Kind: ArrTraceFile, Rho: 0.4, TraceFile: "testdata/arrivals.trace"}
	b, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Fatalf("round trip changed the scenario:\nin:  %+v\nout: %+v", s, back)
	}
}

// TestGoldenScenarioFile pins the canonical file format byte for byte:
// Encode of the fig5 preset must match the checked-in golden exactly,
// and the golden must decode back to the preset. A deliberate format
// change regenerates with -run TestGoldenScenarioFile -update.
func TestGoldenScenarioFile(t *testing.T) {
	golden := filepath.Join("testdata", "fig5-delaytimer.json")
	s := Presets()["fig5-delaytimer"]
	got, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("no golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("encoded form diverged from golden %s:\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
	back, err := Decode(want)
	if err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Fatalf("golden decodes to a different scenario:\n%+v\nwant\n%+v", back, s)
	}
}

// TestCommentedFixture: the hand-written JSONC fixture (comments, only
// a subset of fields) decodes and validates — the format people will
// actually write, not just the canonical dump.
func TestCommentedFixture(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "commented.json"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if s.Servers != 4 || s.Arrival.Kind != ArrMMPP || s.Faults.ServerCrashes != 1 {
		t.Errorf("fixture decoded unexpectedly: %+v", s)
	}
	// And it re-encodes/re-decodes exactly.
	b, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Errorf("fixture round trip changed the scenario")
	}
}

// TestMatrixFixture: the checked-in matrix fixture expands to the
// pinned campaign.
func TestMatrixFixture(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "matrix.json"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := DecodeMatrix(data)
	if err != nil {
		t.Fatal(err)
	}
	got := m.Expand()
	if len(got) != 16 {
		t.Fatalf("matrix expanded to %d scenarios, want 16 (2 seeds × 2 placers × 2 rho × 2 faults)", len(got))
	}
	seen := make(map[string]bool)
	for _, s := range got {
		if seen[s.String()] {
			t.Fatalf("duplicate label %s in expansion", s)
		}
		seen[s.String()] = true
	}
	// DecodeAny agrees it is a matrix.
	scenarios, isMatrix, err := DecodeAny(data)
	if err != nil || !isMatrix || len(scenarios) != 16 {
		t.Fatalf("DecodeAny: %d scenarios, matrix=%v, err=%v", len(scenarios), isMatrix, err)
	}
}

// TestDecodeRejects pins the strictness contract: unknown fields, bad
// enum names, trailing garbage, illegal compositions, unterminated
// comments and non-JSON all error, never panic, never pass.
func TestDecodeRejects(t *testing.T) {
	valid, err := Encode(Presets()["fig5-delaytimer"])
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data string
	}{
		{"unknown-top-field", `{"seed": 1, "sevrers": 4}`},
		{"unknown-nested-field", `{"seed": 1, "arrival": {"kind": "poisson", "rh": 0.3}}`},
		{"bad-enum", `{"servers": 4, "arrival": {"kind": "possion", "rho": 0.3}, "maxJobs": 10}`},
		{"bad-queue", `{"servers": 4, "queue": "per-cores", "arrival": {"kind": "poisson", "rho": 0.3}, "maxJobs": 10}`},
		{"trailing-garbage", strings.TrimRight(string(valid), "\n") + " {}"},
		{"invalid-composition", `{"servers": 0, "arrival": {"kind": "poisson", "rho": 0.3}, "maxJobs": 10}`},
		{"unbounded-horizon", `{"servers": 4, "arrival": {"kind": "poisson", "rho": 0.3}}`},
		{"tracefile-without-path", `{"servers": 4, "arrival": {"kind": "trace-file", "rho": 0.3}}`},
		{"path-without-tracefile-kind", `{"servers": 4, "arrival": {"kind": "poisson", "rho": 0.3, "traceFile": "x"}, "maxJobs": 10}`},
		{"unterminated-comment", `/* {"servers": 4}`},
		{"not-json", `servers: 4`},
		{"empty", ``},
		{"negative-fault-count", `{"servers": 4, "arrival": {"kind": "poisson", "rho": 0.3}, "maxJobs": 10, "faults": {"serverCrashes": -1}}`},
	}
	for _, tc := range cases {
		if _, err := Decode([]byte(tc.data)); err == nil {
			t.Errorf("%s: Decode accepted %q", tc.name, tc.data)
		}
	}
	if _, err := DecodeMatrix([]byte(`{"base": {}, "axes": {}}`)); err == nil {
		t.Error("DecodeMatrix accepted a zero-expansion matrix")
	}
}

// TestStripComments pins the comment scanner against the corners that
// bite: comment markers inside strings, escaped quotes, both comment
// styles.
func TestStripComments(t *testing.T) {
	cases := []struct{ in, want string }{
		{`{"a": 1} // tail`, `{"a": 1} `},
		{"// lead\n{\"a\": 1}", "\n{\"a\": 1}"},
		{`{"a": "http://x"}`, `{"a": "http://x"}`},
		{`{"a": "q\"//not"}`, `{"a": "q\"//not"}`},
		{"{/* c */\"a\": 1}", "{       \"a\": 1}"},
		{"{/* a\nb */\"a\": 1}", "{    \n    \"a\": 1}"},
	}
	for _, tc := range cases {
		got, err := StripComments([]byte(tc.in))
		if err != nil {
			t.Errorf("StripComments(%q): %v", tc.in, err)
			continue
		}
		if string(got) != tc.want {
			t.Errorf("StripComments(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
	if _, err := StripComments([]byte(`/* open`)); err == nil {
		t.Error("unterminated block comment accepted")
	}
}

// TestScenarioLabelInjective is the regression test for the label
// collision bug: ArrivalSpec used to format Rho with %.2g (0.123 and
// 0.1234 collided) and FactorySpec dropped Service/EdgeBytes/Width for
// some kinds, so two distinct imported scenarios could share the run
// label the runner's rep-seeding splits on. Labels must now be unique
// across the short matrix, the fault matrix, the demo matrix and 200
// Random draws — and for the historically colliding pairs explicitly.
func TestScenarioLabelInjective(t *testing.T) {
	byLabel := make(map[string]Scenario)
	check := func(s Scenario) {
		label := s.String()
		if prev, ok := byLabel[label]; ok && prev != s {
			t.Fatalf("label %q names two distinct scenarios:\n%+v\n%+v", label, prev, s)
		}
		byLabel[label] = s
	}
	for _, s := range shortAxes().Expand(Scenario{Seed: 41, Servers: 8, DelayTimerSec: 0.1}) {
		check(s)
	}
	for _, s := range faultAxes().Expand(Scenario{Seed: 73, Servers: 8, DelayTimerSec: 0.1}) {
		check(s)
	}
	for _, s := range DemoMatrix().Expand() {
		check(s)
	}
	for i := 0; i < 200; i++ {
		check(Random(uint64(5000 + i)))
	}

	// The exact historical collisions, now distinct.
	base := Scenario{Seed: 1, Servers: 4, MaxJobs: 10}
	a, b := base, base
	a.Arrival = ArrivalSpec{Kind: ArrPoisson, Rho: 0.123}
	b.Arrival = ArrivalSpec{Kind: ArrPoisson, Rho: 0.1234}
	if a.String() == b.String() {
		t.Errorf("rho 0.123 vs 0.1234 still collide: %s", a)
	}
	a, b = base, base
	a.Arrival, b.Arrival = ArrivalSpec{Kind: ArrPoisson, Rho: 0.3}, ArrivalSpec{Kind: ArrPoisson, Rho: 0.3}
	a.Factory = FactorySpec{Kind: FacSingle, Service: SvcWebSearch}
	b.Factory = FactorySpec{Kind: FacSingle, Service: SvcWikipedia}
	if a.String() == b.String() {
		t.Errorf("factories differing only in service still collide: %s", a)
	}
	a.Factory = FactorySpec{Kind: FacScatterGather, Width: 2, EdgeBytes: 1024}
	b.Factory = FactorySpec{Kind: FacScatterGather, Width: 2, EdgeBytes: 2048}
	if a.String() == b.String() {
		t.Errorf("factories differing only in edge bytes still collide: %s", a)
	}
	// Fault specs differing only in draw horizon.
	a.Factory, b.Factory = FactorySpec{}, FactorySpec{}
	a.Faults = fault.Spec{ServerCrashes: 1, ServerDownSec: 0.1, HorizonSec: 1, Orphans: sched.OrphanRequeue}
	b.Faults = fault.Spec{ServerCrashes: 1, ServerDownSec: 0.1, HorizonSec: 2, Orphans: sched.OrphanRequeue}
	if a.String() == b.String() {
		t.Errorf("fault specs differing only in horizon still collide: %s", a)
	}
}

// FuzzDecode: arbitrary input never panics the decoder — it errors or
// yields a Validate-passing scenario whose Encode→Decode round trip is
// exact. DecodeMatrix and DecodeAny ride along under the same contract.
func FuzzDecode(f *testing.F) {
	if b, err := Encode(Presets()["fig5-delaytimer"]); err == nil {
		f.Add(string(b))
	}
	if b, err := EncodeMatrix(DemoMatrix()); err == nil {
		f.Add(string(b))
	}
	f.Add(`{}`)
	f.Add(`{"servers": 4, "arrival": {"kind": "poisson", "rho": 0.3}, "maxJobs": 10}`)
	f.Add("// comment\n{\"servers\": 1}")
	f.Add(`{"base": {}, "axes": {"servers": [1, 2]}}`)
	f.Add(`{"seed": 18446744073709551615}`)
	f.Add(`{"arrival": {"kind": "trace-file", "traceFile": "/dev/null"}}`)
	f.Add(`[1, 2, 3]`)
	f.Add(`"just a string"`)
	f.Add(`{"faults": {"serverCrashes": 9999999}}`)
	f.Fuzz(func(t *testing.T, input string) {
		data := []byte(input)
		s, err := Decode(data)
		if err == nil {
			if verr := s.Validate(); verr != nil {
				t.Fatalf("Decode returned an invalid scenario: %v", verr)
			}
			b, err := Encode(s)
			if err != nil {
				t.Fatalf("decoded scenario does not re-encode: %v", err)
			}
			back, err := Decode(b)
			if err != nil {
				t.Fatalf("re-encoded scenario does not decode: %v\n%s", err, b)
			}
			if back != s {
				t.Fatalf("round trip changed the scenario:\nin:  %+v\nout: %+v", s, back)
			}
		}
		// Matrix and sniffing paths must be panic-free too.
		if m, err := DecodeMatrix(data); err == nil {
			if len(m.Expand()) == 0 {
				t.Fatal("DecodeMatrix accepted a zero-expansion matrix")
			}
		}
		_, _, _ = DecodeAny(data)
	})
}
