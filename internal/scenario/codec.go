// Scenario file codec: the serialization layer that turns Scenario and
// Axes into files `cmd/scenario` (and anything else) can validate,
// expand and run — the paper's claim that one holistic simulator can
// replay externally recorded configurations, not just its figure
// presets.
//
// Format (DESIGN.md Sec. 10): JSON with comments. `//` line and
// `/* */` block comments are stripped outside string literals before
// strict decoding — unknown fields are rejected, trailing input is
// rejected, and every decoded scenario must pass Validate, so a typo'd
// field name or an illegal composition fails loudly at load time
// instead of silently running the wrong experiment. Encode emits
// canonical indented JSON (stable field order, round-trip float
// precision), and Decode(Encode(s)) == s for every Validate-passing
// scenario (TestCodecRoundTrip*, FuzzDecode).
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// ---------------------------------------------------------------------
// Enum text forms
// ---------------------------------------------------------------------

// enumText binds one enum's value/name table for the codec. Every
// scenario enum marshals as a short lowercase name (the same vocabulary
// the labels use), so files stay diff-able and hand-writable.
func marshalEnum[E comparable](v E, names map[E]string, what string) ([]byte, error) {
	if s, ok := names[v]; ok {
		return []byte(s), nil
	}
	return nil, fmt.Errorf("scenario: unknown %s %v", what, v)
}

func unmarshalEnum[E comparable](b []byte, v *E, names map[E]string, what string) error {
	//simlint:allow determinism enum name tables are bijective, so at most one key can match
	for k, s := range names {
		if s == string(b) {
			*v = k
			return nil
		}
	}
	return fmt.Errorf("scenario: unknown %s %q (want one of %s)", what, b, enumList(names))
}

func enumList[E comparable](names map[E]string) string {
	// Deterministic listing for error messages: collect and sort.
	out := make([]string, 0, len(names))
	for _, s := range names {
		out = append(out, s)
	}
	sort.Strings(out)
	return fmt.Sprintf("%v", out)
}

var topoKindNames = map[TopoKind]string{
	TopoNone:          "none",
	TopoStar:          "star",
	TopoFatTree:       "fattree",
	TopoBCube:         "bcube",
	TopoCamCube:       "camcube",
	TopoFlatButterfly: "flatbfly",
}

// MarshalText implements encoding.TextMarshaler.
func (k TopoKind) MarshalText() ([]byte, error) { return marshalEnum(k, topoKindNames, "topology kind") }

// UnmarshalText implements encoding.TextUnmarshaler.
func (k *TopoKind) UnmarshalText(b []byte) error {
	return unmarshalEnum(b, k, topoKindNames, "topology kind")
}

var arrivalKindNames = map[ArrivalKind]string{
	ArrPoisson:    "poisson",
	ArrMMPP:       "mmpp",
	ArrTraceWiki:  "wiki",
	ArrTraceNLANR: "nlanr",
	ArrTraceFile:  "trace-file",
}

// MarshalText implements encoding.TextMarshaler.
func (k ArrivalKind) MarshalText() ([]byte, error) {
	return marshalEnum(k, arrivalKindNames, "arrival kind")
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (k *ArrivalKind) UnmarshalText(b []byte) error {
	return unmarshalEnum(b, k, arrivalKindNames, "arrival kind")
}

var factoryKindNames = map[FactoryKind]string{
	FacSingle:        "single",
	FacTwoTier:       "twotier",
	FacScatterGather: "scatter",
	FacRandomDAG:     "dag",
}

// MarshalText implements encoding.TextMarshaler.
func (k FactoryKind) MarshalText() ([]byte, error) {
	return marshalEnum(k, factoryKindNames, "factory kind")
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (k *FactoryKind) UnmarshalText(b []byte) error {
	return unmarshalEnum(b, k, factoryKindNames, "factory kind")
}

var serviceKindNames = map[ServiceKind]string{
	SvcWebSearch:  "websearch",
	SvcWebServing: "webserving",
	SvcWikipedia:  "wikipedia",
}

// MarshalText implements encoding.TextMarshaler.
func (s ServiceKind) MarshalText() ([]byte, error) {
	return marshalEnum(s, serviceKindNames, "service kind")
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (s *ServiceKind) UnmarshalText(b []byte) error {
	return unmarshalEnum(b, s, serviceKindNames, "service kind")
}

var placerKindNames = map[PlacerKind]string{
	PlLeastLoaded:  "leastloaded",
	PlRoundRobin:   "roundrobin",
	PlPackFirst:    "packfirst",
	PlRandom:       "random",
	PlNetworkAware: "netaware",
	PlAdaptivePool: "adaptive",
	PlProvisioner:  "provisioner",
	PlDualTimer:    "dualtimer",
}

// MarshalText implements encoding.TextMarshaler.
func (k PlacerKind) MarshalText() ([]byte, error) {
	return marshalEnum(k, placerKindNames, "placer kind")
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (k *PlacerKind) UnmarshalText(b []byte) error {
	return unmarshalEnum(b, k, placerKindNames, "placer kind")
}

var profileKindNames = map[ProfileKind]string{
	ProfFourCore:   "4core",
	ProfXeon10:     "xeon10",
	ProfDualSocket: "dual20",
}

// MarshalText implements encoding.TextMarshaler.
func (p ProfileKind) MarshalText() ([]byte, error) {
	return marshalEnum(p, profileKindNames, "server profile")
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (p *ProfileKind) UnmarshalText(b []byte) error {
	return unmarshalEnum(b, p, profileKindNames, "server profile")
}

// ---------------------------------------------------------------------
// Comment stripping (the JSONC front end)
// ---------------------------------------------------------------------

// StripComments removes `//` line comments and `/* */` block comments
// outside string literals, replacing them with spaces so the JSON the
// decoder sees keeps its shape. An unterminated block comment is an
// error; an unterminated string is passed through for the JSON decoder
// to reject with its own (better) message.
func StripComments(in []byte) ([]byte, error) {
	out := make([]byte, 0, len(in))
	for i := 0; i < len(in); {
		c := in[i]
		switch {
		case c == '"':
			// Copy the string literal verbatim, honoring escapes.
			out = append(out, c)
			i++
			for i < len(in) {
				out = append(out, in[i])
				if in[i] == '\\' && i+1 < len(in) {
					out = append(out, in[i+1])
					i += 2
					continue
				}
				if in[i] == '"' {
					i++
					break
				}
				i++
			}
		case c == '/' && i+1 < len(in) && in[i+1] == '/':
			for i < len(in) && in[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(in) && in[i+1] == '*':
			end := bytes.Index(in[i+2:], []byte("*/"))
			if end < 0 {
				return nil, fmt.Errorf("scenario: unterminated /* comment")
			}
			// Preserve line structure inside the comment so decoder
			// error offsets stay meaningful.
			for _, b := range in[i : i+2+end+2] {
				if b == '\n' {
					out = append(out, '\n')
				} else {
					out = append(out, ' ')
				}
			}
			i += 2 + end + 2
		default:
			out = append(out, c)
			i++
		}
	}
	return out, nil
}

// strictUnmarshal decodes comment-stripped JSON into v, rejecting
// unknown fields and trailing input.
func strictUnmarshal(data []byte, v any) error {
	clean, err := StripComments(data)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(clean))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("scenario: trailing input after the document")
	}
	return nil
}

// ---------------------------------------------------------------------
// Scenario codec
// ---------------------------------------------------------------------

// Encode renders s as canonical indented JSON, newline-terminated. The
// scenario is validated first: only legal configurations get a file
// form, so every encoded file decodes again (Decode(Encode(s)) == s).
func Encode(s Scenario) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: encode: %w", err)
	}
	return append(b, '\n'), nil
}

// Decode parses one scenario from JSON (comments allowed), rejecting
// unknown fields, and validates the result: a scenario that decodes is
// a scenario that runs.
func Decode(data []byte) (Scenario, error) {
	var s Scenario
	if err := strictUnmarshal(data, &s); err != nil {
		return Scenario{}, err
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// ---------------------------------------------------------------------
// Matrix codec
// ---------------------------------------------------------------------

// Matrix is the file form of a whole campaign: a base scenario plus the
// axes to cross-product over it. The base alone need not validate —
// axes may supply the missing pieces (a horizon, a utilization) — but
// the expansion must yield at least one valid scenario.
type Matrix struct {
	Base Scenario `json:"base"`
	Axes Axes     `json:"axes"`
}

// Expand produces the matrix's valid cross product (Axes.Expand).
func (m Matrix) Expand() []Scenario { return m.Axes.Expand(m.Base) }

// EncodeMatrix renders m as canonical indented JSON, newline-terminated.
func EncodeMatrix(m Matrix) ([]byte, error) {
	if len(m.Expand()) == 0 {
		return nil, fmt.Errorf("scenario: matrix expands to zero valid scenarios")
	}
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: encode matrix: %w", err)
	}
	return append(b, '\n'), nil
}

// DecodeMatrix parses a campaign matrix file (comments allowed, unknown
// fields rejected) and requires a non-empty valid expansion.
func DecodeMatrix(data []byte) (Matrix, error) {
	var m Matrix
	if err := strictUnmarshal(data, &m); err != nil {
		return Matrix{}, err
	}
	if len(m.Expand()) == 0 {
		return Matrix{}, fmt.Errorf("scenario: matrix expands to zero valid scenarios")
	}
	return m, nil
}

// DecodeAny sniffs whether data holds a single scenario or a matrix
// (top-level "base"/"axes" keys) and returns the scenarios either way —
// one for a scenario file, the valid expansion for a matrix file.
func DecodeAny(data []byte) (scenarios []Scenario, isMatrix bool, err error) {
	clean, err := StripComments(data)
	if err != nil {
		return nil, false, err
	}
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(clean, &probe); err != nil {
		return nil, false, fmt.Errorf("scenario: %w", err)
	}
	_, hasBase := probe["base"]
	_, hasAxes := probe["axes"]
	if hasBase || hasAxes {
		m, err := DecodeMatrix(data)
		if err != nil {
			return nil, true, err
		}
		return m.Expand(), true, nil
	}
	s, err := Decode(data)
	if err != nil {
		return nil, false, err
	}
	return []Scenario{s}, false, nil
}
