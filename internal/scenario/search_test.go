package scenario

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"holdcsim/internal/modelcov"
)

func TestBoundWork(t *testing.T) {
	cases := []struct {
		name    string
		maxJobs int64
		bound   int64
		want    int64
	}{
		{"unbounded-gets-capped", 0, 800, 800},
		{"over-cap-gets-clamped", 5000, 800, 800},
		{"under-cap-untouched", 120, 800, 120},
		{"at-cap-untouched", 800, 800, 800},
		{"non-positive-bound-noop", 5000, 0, 5000},
		{"negative-bound-noop", 0, -1, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := Scenario{MaxJobs: c.maxJobs}
			BoundWork(&s, c.bound)
			if s.MaxJobs != c.want {
				t.Fatalf("BoundWork(%d, %d): MaxJobs = %d, want %d",
					c.maxJobs, c.bound, s.MaxJobs, c.want)
			}
		})
	}
}

// variationAllowlist names the Scenario leaf fields the generator
// population is excused from varying, with the reason. Everything else
// must take at least two distinct values across Random, mutate, and the
// presets — this is the regression net for generator blind spots: add a
// Scenario field without teaching Random or mutate about it and this
// test fails until you either vary it or justify an entry here.
var variationAllowlist = map[string]string{
	"Arrival.TraceFile": "a random draw cannot invent a recorded trace file on disk",
	"Faults.TraceFile":  "a random draw cannot invent a recorded outage log on disk",
	"CheckStationary":   "stationarity checks on arbitrary scenarios would turn fuzz noise into CI failures",
}

// leafValues walks v and records every leaf field's value under its
// dotted path (e.g. "Arrival.Rho").
func leafValues(prefix string, v reflect.Value, into map[string]map[string]bool) {
	switch v.Kind() {
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			name := v.Type().Field(i).Name
			path := name
			if prefix != "" {
				path = prefix + "." + name
			}
			leafValues(path, v.Field(i), into)
		}
	default:
		set := into[prefix]
		if set == nil {
			set = make(map[string]bool)
			into[prefix] = set
		}
		set[fmt.Sprintf("%v", v.Interface())] = true
	}
}

func TestGeneratorVariesEveryScenarioField(t *testing.T) {
	seen := make(map[string]map[string]bool)
	for seed := uint64(0); seed < 400; seed++ {
		s := Random(seed)
		leafValues("", reflect.ValueOf(s), seen)
		// Mutation words with long runs of both small and large residues
		// so every peel branch fires across the sweep.
		for _, mut := range []uint64{0, seed * 2654435761, ^uint64(0) - seed,
			seed*7919 + 1, 1 << (seed % 64)} {
			m := Random(seed)
			mutate(&m, mut)
			leafValues("", reflect.ValueOf(m), seen)
		}
	}
	for _, s := range Presets() {
		leafValues("", reflect.ValueOf(s), seen)
	}

	var missed []string
	for path, values := range seen {
		if len(values) < 2 && variationAllowlist[path] == "" {
			missed = append(missed, path)
		}
	}
	if len(missed) > 0 {
		t.Fatalf("generator population never varies %v — teach Random or mutate "+
			"about these fields, or add an allowlist entry with a reason", missed)
	}
	for path := range variationAllowlist {
		if seen[path] == nil {
			t.Fatalf("allowlist entry %q does not match any Scenario field — stale?", path)
		}
	}
}

// TestGuidedBeatsBlind pins the headline property: at an equal exec
// budget from an empty corpus, coverage-guided search reaches strictly
// more model-state features than blind random search. A single 48-exec
// campaign is a noisy sample — one lucky blind draw can swing a few
// features — so the comparison aggregates five pinned campaign seeds;
// every quantity is deterministic at any worker count, so the margin is
// stable until the algorithm itself changes.
func TestGuidedBeatsBlind(t *testing.T) {
	guidedCov, blindCov := 0, 0
	for seed := uint64(1); seed <= 5; seed++ {
		o := SearchOptions{Seed: seed, Execs: 48, BatchSize: 8, MaxJobs: 60}
		guided, err := GuidedSearch(o)
		if err != nil {
			t.Fatalf("guided seed %d: %v", seed, err)
		}
		blind, err := BlindSearch(o)
		if err != nil {
			t.Fatalf("blind seed %d: %v", seed, err)
		}
		t.Logf("seed %d: guided %d/%d vs blind %d/%d (corpus %d)",
			seed, guided.Cover.Covered(), guided.Cover.Total(),
			blind.Cover.Covered(), blind.Cover.Total(), len(guided.Corpus))
		guidedCov += guided.Cover.Covered()
		blindCov += blind.Cover.Covered()
		if len(guided.Corpus) == 0 {
			t.Fatalf("seed %d: guided search admitted no corpus entries", seed)
		}
		for _, e := range guided.Corpus {
			if e.Gain <= 0 {
				t.Fatalf("corpus entry %d/%d admitted with gain %d", e.Seed, e.Mut, e.Gain)
			}
		}
	}
	if guidedCov <= blindCov {
		t.Fatalf("guided search covered %d features across campaigns, blind %d — guidance must win",
			guidedCov, blindCov)
	}
}

// TestGuidedSearchWorkerIndependent pins the determinism contract:
// the same options explore the same candidates and produce the same
// coverage and corpus at any worker count.
func TestGuidedSearchWorkerIndependent(t *testing.T) {
	o := SearchOptions{Seed: 11, Execs: 16, BatchSize: 8, MaxJobs: 40}
	o.Workers = 1
	a, err := GuidedSearch(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Workers = 4
	b, err := GuidedSearch(o)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cover.Covered() != b.Cover.Covered() {
		t.Fatalf("coverage depends on worker count: %d vs %d",
			a.Cover.Covered(), b.Cover.Covered())
	}
	if !reflect.DeepEqual(a.Corpus, b.Corpus) {
		t.Fatalf("corpus depends on worker count:\n1 worker: %v\n4 workers: %v",
			a.Corpus, b.Corpus)
	}
}

// TestRunCoverByteIdentical pins the observation-only contract: running
// with a coverage map attached changes nothing about the simulation —
// the full Result is identical to a bare run.
func TestRunCoverByteIdentical(t *testing.T) {
	for _, seed := range []uint64{3, 17, 99} {
		s := Random(seed)
		BoundWork(&s, 80)
		if s.Validate() != nil {
			continue
		}
		bare, err := s.Run()
		if err != nil {
			t.Fatalf("seed %d bare: %v", seed, err)
		}
		m := &modelcov.Map{}
		covered, err := s.RunCover(m)
		if err != nil {
			t.Fatalf("seed %d covered: %v", seed, err)
		}
		if !reflect.DeepEqual(bare, covered) {
			t.Fatalf("seed %d: result differs with coverage attached:\nbare:    %+v\ncovered: %+v",
				seed, bare, covered)
		}
		if m.Covered() == 0 {
			t.Fatalf("seed %d: covered run hit no features", seed)
		}
	}
}

func TestCorpusRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := []CorpusEntry{{Seed: 1, Mut: 2, Gain: 3}, {Seed: 18446744073709551615, Mut: 0, Gain: 1}}
	path := filepath.Join(dir, "a.txt")
	if err := WriteCorpus(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadCorpus(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: wrote %v, read %v", in, out)
	}

	// Dir read concatenates files in name order; a missing dir is empty.
	if err := WriteCorpus(filepath.Join(dir, "b.txt"), []CorpusEntry{{Seed: 9}}); err != nil {
		t.Fatal(err)
	}
	all, err := ReadCorpusDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 || all[2].Seed != 9 {
		t.Fatalf("dir read: %v", all)
	}
	empty, err := ReadCorpusDir(filepath.Join(dir, "nope"))
	if err != nil || len(empty) != 0 {
		t.Fatalf("missing dir: %v, %v", empty, err)
	}
}

func TestMinimizeCorpus(t *testing.T) {
	// A duplicated entry cannot contribute new coverage twice.
	entries := []CorpusEntry{{Seed: 3, Mut: 0}, {Seed: 3, Mut: 0}}
	min := MinimizeCorpus(entries, 40)
	if len(min) != 1 {
		t.Fatalf("minimize kept %d of a duplicated pair, want 1: %v", len(min), min)
	}
	if min[0].Gain <= 0 {
		t.Fatalf("survivor has non-positive gain: %v", min[0])
	}
}

// BenchmarkRunBare / BenchmarkRunCovered measure the coverage hooks'
// overhead on a mid-size scenario; the acceptance bound is <= 2%.
func BenchmarkRunBare(b *testing.B) {
	s := benchScenario()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunCovered(b *testing.B) {
	s := benchScenario()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.RunCover(&modelcov.Map{}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchScenario() Scenario {
	s := Random(12)
	BoundWork(&s, 400)
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}
