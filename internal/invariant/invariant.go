// Package invariant verifies conservation laws of a running simulation.
//
// The golden suite pins *outputs*; this package pins *physics*. A
// Checker subscribes to the scheduler's observation hooks and, at every
// dispatch boundary, verifies the cheap O(1) laws (monotonic virtual
// time, job-count conservation, non-negative load counters); every
// SampleEvery-th observation and at Finalize it runs the O(servers)
// deep scan and the end-of-run laws — task conservation, energy
// accounting closure, per-flow packet conservation, and the exact
// integral form of Little's law. The checker is observation-only: it
// never perturbs event order, rng streams, or any simulation state, so
// a checked run produces byte-identical output to an unchecked one.
//
// DESIGN.md Sec. 7 ("Invariant contract") documents each law and how to
// add one.
package invariant

import (
	"fmt"
	"math"
	"sort"

	"holdcsim/internal/engine"
	"holdcsim/internal/job"
	"holdcsim/internal/network"
	"holdcsim/internal/sched"
	"holdcsim/internal/server"
	"holdcsim/internal/simtime"
	"holdcsim/internal/workload"
)

// Violation is one broken law.
type Violation struct {
	// Law names the violated law ("monotonic-time", "task-conservation",
	// "energy-closure", "non-negative-queues", "queue-counter",
	// "packet-conservation", "little-exact", "little-ci",
	// "reported-totals", "placement", "lost-ledger",
	// "scope-consistency").
	Law    string
	Detail string
}

// String implements fmt.Stringer.
func (v Violation) String() string { return v.Law + ": " + v.Detail }

// Options tunes a Checker.
type Options struct {
	// SampleEvery runs the deep scan once per this many observations
	// (default 64). The scan always also runs at Finalize.
	SampleEvery int
	// ScanBudget caps how many servers one deep scan (and one Finalize
	// energy pass) visits — default 256, negative means unbounded. A
	// bounded scan drains the dirty set first (servers dispatched to
	// since the last scan, in first-touch order), then spends the rest
	// of the budget round-robin from a rotating cursor, so quiet
	// servers are still revisited eventually. This is what keeps the
	// checker O(1) per boundary on million-server farms.
	ScanBudget int
	// Farm, when set, supplies the whole-farm incremental aggregates so
	// Finalize's task-conservation sums are O(1) instead of a walk over
	// every server. The farm must hold exactly the checked servers.
	Farm *server.Farm
	// Stationary additionally checks the statistical form of Little's
	// law at Finalize: |L − λW| within the 95% CI of the mean sojourn.
	// Only meaningful for runs long enough to be near steady state.
	Stationary bool
	// MaxViolations caps recorded violations (default 32); further
	// violations increment the suppressed counter.
	MaxViolations int
	// LostJobsLedger, when set, supplies an independent count of jobs
	// lost to failures (the fault injector's ledger). Finalize
	// cross-checks it against both the checker's own loss observations
	// and the scheduler's counter.
	LostJobsLedger func() int64
	// ScopeCheck, when set, verifies the fault injector's scope
	// consistency (a dead rack implies every owned member still down;
	// per-scope loss attribution sums to the crash-loss total). It runs
	// with every deep scan and at Finalize, reporting a
	// "scope-consistency" violation on a non-nil error.
	ScopeCheck func() error
}

// RelTol is the relative tolerance for floating-point closure laws.
const RelTol = 1e-9

// Checker observes one data center and accumulates violations. Attach
// wires it; Finalize runs the end-of-run laws. All methods run
// single-threaded on the engine's event loop, like the simulation
// itself.
type Checker struct {
	eng     *engine.Engine
	gen     *workload.Generator
	sched   *sched.Scheduler
	servers []*server.Server
	net     *network.Network
	opts    Options

	lastNow simtime.Time
	obs     int64
	scanIn  int // observations until the next deep scan

	// Bounded-scan state: scanBudget is the resolved per-scan cap (-1
	// unbounded); dirty lists server positions dispatched to since the
	// last scan in first-touch order, dirtyBits is its membership
	// bitset, and cursor rotates background coverage across scans.
	scanBudget int
	dirty      []int32
	dirtyBits  []uint64
	cursor     int
	idxOf      map[int]int32 // server ID → position; nil when IDs are dense

	// Little's-law bookkeeping in exact integer nanoseconds: the area
	// under N(t) must equal the summed time-in-system of every job,
	// completed, lost, or still open, with no tolerance at all. Loss
	// events split the integral at the crash boundary: a lost job
	// contributes its partial sojourn (loss − arrive) exactly.
	inSystem      int64
	lastChange    simtime.Time
	jobNanoSecs   int64 // ∫ N(t) dt in job·ns
	arrived       int64
	completed     int64
	lost          int64
	sumArriveNs   int64 // Σ arrive over all arrivals
	sumSojournNs  int64 // Σ (finish − arrive) over completed
	sumLostNs     int64 // Σ (loss − arrive) over lost
	sumArrDoneNs  int64 // Σ arrive over completed
	sumArrLostNs  int64 // Σ arrive over lost
	sumSojournS   float64
	sumSojournSqS float64

	violations []Violation
	suppressed int
	finalized  bool
}

// Attach builds a checker and subscribes it to the scheduler's
// observation hooks. gen and net may be nil (no generator probe / no
// network); eng, s and servers are required.
func Attach(eng *engine.Engine, gen *workload.Generator, s *sched.Scheduler,
	servers []*server.Server, net *network.Network, opts Options) *Checker {
	if opts.SampleEvery <= 0 {
		opts.SampleEvery = 64
	}
	if opts.MaxViolations <= 0 {
		opts.MaxViolations = 32
	}
	budget := opts.ScanBudget
	if budget == 0 {
		budget = 256
	} else if budget < 0 {
		budget = -1
	}
	c := &Checker{
		eng: eng, gen: gen, sched: s, servers: servers, net: net, opts: opts,
		scanIn:     opts.SampleEvery,
		scanBudget: budget,
		dirtyBits:  make([]uint64, (len(servers)+63)/64),
	}
	for i, srv := range servers {
		if srv.ID() != i {
			c.idxOf = make(map[int]int32, len(servers))
			for j, sv := range servers {
				c.idxOf[sv.ID()] = int32(j)
			}
			break
		}
	}
	s.OnJobArrived(c.onArrive)
	s.OnJobDone(c.onDone)
	s.OnDispatch(c.onDispatch)
	s.OnJobLost(c.onLost)
	return c
}

// report records one violation, respecting the cap.
func (c *Checker) report(law, format string, args ...any) {
	if len(c.violations) >= c.opts.MaxViolations {
		c.suppressed++
		return
	}
	c.violations = append(c.violations, Violation{Law: law, Detail: fmt.Sprintf(format, args...)})
}

// observe runs the per-boundary cheap laws and returns the clock. It
// sits on the scheduler's hot path: a countdown replaces a modulo, and
// everything else is two compares and two increments.
func (c *Checker) observe() simtime.Time {
	now := c.eng.Now()
	if now < c.lastNow {
		c.report("monotonic-time", "clock went backwards: %v after %v", now, c.lastNow)
	}
	c.lastNow = now
	c.obs++
	if c.scanIn--; c.scanIn <= 0 {
		c.scanIn = c.opts.SampleEvery
		c.deepScan()
	}
	return now
}

// settle advances the jobs-in-system integral to now.
func (c *Checker) settle(now simtime.Time) {
	if now > c.lastChange {
		c.jobNanoSecs += c.inSystem * int64(now-c.lastChange)
		c.lastChange = now
	}
}

// checkCounters is the O(1) job-conservation law, valid at every hook
// boundary: every generated job is completed, in the system, or lost to
// a failure.
func (c *Checker) checkCounters() {
	if c.gen == nil {
		return
	}
	gen := c.gen.Generated()
	done := c.sched.JobsCompleted()
	open := int64(c.sched.JobsInSystem())
	lost := c.sched.JobsLost()
	if gen != done+open+lost {
		c.report("task-conservation", "generated %d != completed %d + in-system %d + lost %d",
			gen, done, open, lost)
	}
}

func (c *Checker) onArrive(j *job.Job) {
	now := c.observe()
	c.settle(now)
	c.inSystem++
	c.arrived++
	c.sumArriveNs += int64(j.ArriveAt)
	if j.ArriveAt > now {
		c.report("monotonic-time", "job %d arrives at %v, after the clock %v", j.ID, j.ArriveAt, now)
	}
	c.checkCounters()
}

func (c *Checker) onDone(j *job.Job) {
	now := c.observe()
	c.settle(now)
	c.inSystem--
	c.completed++
	soj := j.FinishAt - j.ArriveAt
	if soj < 0 {
		c.report("monotonic-time", "job %d finished %v before arriving %v", j.ID, j.FinishAt, j.ArriveAt)
	}
	c.sumSojournNs += int64(soj)
	c.sumArrDoneNs += int64(j.ArriveAt)
	s := soj.Seconds()
	c.sumSojournS += s
	c.sumSojournSqS += s * s
	c.checkCounters()
}

// onLost observes a job retracted by a failure: it leaves the system at
// the loss instant, contributing its partial sojourn to the Little
// integral — the crash-boundary split that keeps the law exact under
// failures.
func (c *Checker) onLost(j *job.Job, reason sched.LostReason) {
	now := c.observe()
	c.settle(now)
	c.inSystem--
	c.lost++
	partial := now - j.ArriveAt
	if partial < 0 {
		c.report("monotonic-time", "job %d lost at %v before arriving %v", j.ID, now, j.ArriveAt)
	}
	c.sumLostNs += int64(partial)
	c.sumArrLostNs += int64(j.ArriveAt)
	c.checkCounters()
}

func (c *Checker) onDispatch(srv *server.Server, t *job.Task) {
	c.observe()
	c.markDirty(srv)
	if t.ServerID >= 0 && t.ServerID != srv.ID() {
		c.report("placement", "task %s placed on server %d, dispatched to %d", t.Name(), t.ServerID, srv.ID())
	}
	if k := c.sched.Committed(srv.ID()); k < 0 {
		c.report("non-negative-queues", "server %d committed count %d at dispatch", srv.ID(), k)
	}
}

// Violations reports everything found so far (Finalize appends the
// end-of-run laws).
func (c *Checker) Violations() []Violation { return c.violations }

// Suppressed reports violations dropped beyond MaxViolations.
func (c *Checker) Suppressed() int { return c.suppressed }

// Err folds the violations into a single error, nil when clean.
func (c *Checker) Err() error {
	if len(c.violations) == 0 {
		return nil
	}
	msg := ""
	for i, v := range c.violations {
		if i > 0 {
			msg += "; "
		}
		msg += v.String()
	}
	if c.suppressed > 0 {
		msg += fmt.Sprintf(" (+%d suppressed)", c.suppressed)
	}
	return fmt.Errorf("invariant: %d violation(s): %s", len(c.violations), msg)
}

// markDirty records a server touched by a dispatch since the last deep
// scan, in first-touch order, so bounded scans look there first.
func (c *Checker) markDirty(srv *server.Server) {
	i := int32(srv.ID())
	if c.idxOf != nil {
		var ok bool
		if i, ok = c.idxOf[srv.ID()]; !ok {
			return
		}
	}
	if c.dirtyBits[i>>6]&(1<<(uint(i)&63)) != 0 {
		return
	}
	c.dirtyBits[i>>6] |= 1 << (uint(i) & 63)
	c.dirty = append(c.dirty, i)
}

func (c *Checker) isDirty(i int) bool {
	return c.dirtyBits[i>>6]&(1<<(uint(i)&63)) != 0
}

func (c *Checker) clearDirty() {
	for _, i := range c.dirty {
		c.dirtyBits[i>>6] &^= 1 << (uint(i) & 63)
	}
	c.dirty = c.dirty[:0]
}

// scanServer runs the per-server laws: counter non-negativity, core
// range, and agreement between the incremental queue counter and a
// from-scratch recount of the queue structures.
func (c *Checker) scanServer(srv *server.Server) {
	q := srv.QueueLen()
	if q < 0 {
		c.report("non-negative-queues", "server %d queue length %d", srv.ID(), q)
	}
	if r := srv.RecountQueueLen(); q != r {
		c.report("queue-counter", "server %d incremental queue counter %d != recount %d", srv.ID(), q, r)
	}
	if b := srv.BusyCores(); b < 0 || b > srv.Cores() {
		c.report("non-negative-queues", "server %d busy cores %d of %d", srv.ID(), b, srv.Cores())
	}
	if k := c.sched.Committed(srv.ID()); k < 0 {
		c.report("non-negative-queues", "server %d committed count %d", srv.ID(), k)
	}
}

// deepScan runs the per-server laws over at most ScanBudget servers —
// the dirty set first, then round-robin from the rotating cursor — plus
// the global-queue, scope, and network laws.
func (c *Checker) deepScan() {
	n := len(c.servers)
	if c.scanBudget < 0 || c.scanBudget >= n {
		for _, srv := range c.servers {
			c.scanServer(srv)
		}
		c.clearDirty()
	} else {
		for _, i := range c.dirty {
			c.scanServer(c.servers[i])
		}
		rem := c.scanBudget - len(c.dirty)
		for tries := 0; rem > 0 && tries < n; tries++ {
			i := c.cursor
			if c.cursor++; c.cursor >= n {
				c.cursor = 0
			}
			if c.isDirty(i) {
				continue // already scanned this round
			}
			c.scanServer(c.servers[i])
			rem--
		}
		c.clearDirty()
	}
	if q := c.sched.GlobalQueueLen(); q < 0 {
		c.report("non-negative-queues", "global queue length %d", q)
	}
	if c.opts.ScopeCheck != nil {
		if err := c.opts.ScopeCheck(); err != nil {
			c.report("scope-consistency", "%v", err)
		}
	}
	// Flow and packet conservation hold at every callback boundary, in
	// both network models — not just at Finalize. (The loopback-transfer
	// bug this would have caught: BytesDelivered billed from a bare
	// closure with the transfer never counted open, so a scan between
	// schedule and tick saw delivered > sent.)
	c.checkNetwork()
}

// Finalize runs every end-of-run law at virtual time end and returns
// all violations found over the run's lifetime. It is idempotent: the
// laws run once, and repeated calls return the recorded violations
// without re-reporting them (a persistent defect would otherwise
// duplicate itself and burn the MaxViolations cap).
func (c *Checker) Finalize(end simtime.Time) []Violation {
	if c.finalized {
		return c.violations
	}
	c.finalized = true
	if end < c.lastNow {
		c.report("monotonic-time", "finalize at %v before last observation %v", end, c.lastNow)
	}
	if now := c.eng.Now(); end < now {
		// The meters have advanced to the engine clock; query no earlier
		// so the time-dependent laws stay evaluable.
		end = now
	}
	c.settle(end)
	c.deepScan()
	c.checkCounters()

	// Task conservation, cross-checked against the scheduler's own
	// counters (the checker counts callbacks; the scheduler counts
	// admissions — they must agree).
	if c.arrived != c.completed+c.inSystem+c.lost {
		c.report("task-conservation", "observed %d arrivals != %d completed + %d open + %d lost",
			c.arrived, c.completed, c.inSystem, c.lost)
	}
	if got := c.sched.JobsCompleted(); got != c.completed {
		c.report("task-conservation", "scheduler completed %d, checker observed %d", got, c.completed)
	}
	if got := int64(c.sched.JobsInSystem()); got != c.inSystem {
		c.report("task-conservation", "scheduler in-system %d, checker observed %d", got, c.inSystem)
	}
	if got := c.sched.JobsLost(); got != c.lost {
		c.report("task-conservation", "scheduler lost %d, checker observed %d", got, c.lost)
	}
	if c.gen != nil {
		if gen := c.gen.Generated(); gen != c.arrived {
			c.report("task-conservation", "generator emitted %d, scheduler admitted %d", gen, c.arrived)
		}
	}
	// Lost-work cross-check: the fault injector's ledger — accumulated
	// through an independent path (crash return values plus loss
	// callbacks) — must agree with the checker's own loss count.
	if c.opts.LostJobsLedger != nil {
		if got := c.opts.LostJobsLedger(); got != c.lost {
			c.report("lost-ledger", "fault ledger lost %d jobs, checker observed %d", got, c.lost)
		}
	} else if c.lost != 0 {
		c.report("lost-ledger", "%d jobs lost with no fault ledger attached", c.lost)
	}
	// Task-level conservation: every task incarnation the scheduler
	// submitted is finished on its server, still pending there (queued,
	// reserved, or running), or was aborted by a failure (orphaned on a
	// crashed server — whether or not it was requeued as a fresh
	// incarnation — or retracted with a lost job).
	var tasksDone, tasksPending int64
	if f := c.opts.Farm; f != nil {
		// O(1): the farm maintains these sums incrementally at every
		// queue/core mutation, so Finalize need not walk a million
		// servers to close the books.
		tasksDone = f.TotalCompleted()
		tasksPending = f.TotalPending()
	} else {
		for _, srv := range c.servers {
			tasksDone += srv.CompletedTasks()
			tasksPending += int64(srv.PendingTasks())
		}
	}
	aborted := c.sched.TasksAborted()
	if dispatched := c.sched.TasksDispatched(); dispatched != tasksDone+tasksPending+aborted {
		c.report("task-conservation", "tasks dispatched %d != finished %d + pending %d + aborted %d",
			dispatched, tasksDone, tasksPending, aborted)
	}

	// Little's law, exact integral form, split at loss boundaries: the
	// area under N(t) equals the total time-in-system of completed jobs,
	// plus the partial time of jobs lost to failures (up to the loss
	// instant), plus the partial time of jobs still open at end.
	// Integer nanoseconds — zero tolerance.
	openPartial := c.inSystem*int64(end) - (c.sumArriveNs - c.sumArrDoneNs - c.sumArrLostNs)
	if c.jobNanoSecs != c.sumSojournNs+c.sumLostNs+openPartial {
		c.report("little-exact", "∫N dt = %d job·ns, but sojourns %d + lost partials %d + open partial %d = %d",
			c.jobNanoSecs, c.sumSojournNs, c.sumLostNs, openPartial,
			c.sumSojournNs+c.sumLostNs+openPartial)
	}

	c.checkEnergy(end)
	c.checkNetwork()
	if c.opts.Stationary {
		c.checkLittleCI(end)
	}
	return c.violations
}

// checkEnergy verifies per-server energy accounting: residency
// fractions must sum to 1 (down time included), and every component's
// energy must be finite, non-negative, and within the profile's
// physical power envelope — an envelope that excludes down-time
// residency, since a crashed server draws nothing. Billing any power
// during an outage therefore breaks the law. On farms larger than
// ScanBudget the pass samples budget-many servers from the rotating
// cursor rather than walking all of them.
func (c *Checker) checkEnergy(end simtime.Time) {
	n := len(c.servers)
	if c.scanBudget < 0 || c.scanBudget >= n {
		for _, srv := range c.servers {
			c.checkServerEnergy(srv, end)
		}
		return
	}
	for k := 0; k < c.scanBudget; k++ {
		i := c.cursor
		if c.cursor++; c.cursor >= n {
			c.cursor = 0
		}
		c.checkServerEnergy(c.servers[i], end)
	}
}

// checkServerEnergy runs the energy-closure laws for one server.
func (c *Checker) checkServerEnergy(srv *server.Server, end simtime.Time) {
	downFrac := 0.0
	fr := srv.Residency().FractionsTo(end)
	if len(fr) > 0 {
		// Iterate states sorted, not in map order: the violation list and
		// the float accumulation into sum must replay byte-identically
		// (simlint:determinism caught this as the report order depending
		// on map iteration when more than one fraction is negative).
		states := make([]string, 0, len(fr))
		for s := range fr {
			states = append(states, s)
		}
		sort.Strings(states)
		sum := 0.0
		for _, s := range states {
			f := fr[s]
			if f < -RelTol {
				c.report("energy-closure", "server %d negative residency fraction %g", srv.ID(), f)
			}
			sum += f
		}
		if math.Abs(sum-1) > 1e3*RelTol {
			c.report("energy-closure", "server %d residency fractions sum to %.12g", srv.ID(), sum)
		}
		downFrac = fr[server.StateDown]
		if downFrac < 0 {
			downFrac = 0
		} else if downFrac > 1 {
			downFrac = 1
		}
	}
	cpu, dram, plat := srv.CPUEnergyTo(end), srv.DRAMEnergyTo(end), srv.PlatformEnergyTo(end)
	total := srv.EnergyTo(end)
	for _, e := range [...]struct {
		name string
		j    float64
	}{{"cpu", cpu}, {"dram", dram}, {"platform", plat}, {"total", total}} {
		if math.IsNaN(e.j) || math.IsInf(e.j, 0) || e.j < 0 {
			c.report("energy-closure", "server %d %s energy %g J", srv.ID(), e.name, e.j)
		}
	}
	if !closeRel(total, cpu+dram+plat, RelTol) {
		c.report("energy-closure", "server %d total %g J != components %g J",
			srv.ID(), total, cpu+dram+plat)
	}
	// Envelope over up-time only: down residency contributes no
	// joules. Healthy servers keep the strict pre-fault tolerance;
	// only a server that actually spent time down gets slack for the
	// float division in its residency fractions — and any real
	// down-time billing (idle power alone is tens of watts) exceeds
	// that slack by orders of magnitude.
	tol, slack := RelTol, 0.0
	if downFrac > 0 {
		tol, slack = 1e3*RelTol, 1e-6
	}
	if cap := powerCap(srv) * end.Seconds() * (1 - downFrac); end > 0 &&
		total > cap*(1+tol)+slack {
		c.report("energy-closure", "server %d energy %g J exceeds up-time power envelope %g J (down %.3g)",
			srv.ID(), total, cap, downFrac)
	}
}

// powerCap reports an upper bound on one server's instantaneous draw:
// every core at its most expensive state (highest P-state scale or a
// core-level wake transition), every package powered, DRAM active,
// platform on — or a system-level transition, whichever bills higher.
func powerCap(srv *server.Server) float64 {
	p := srv.Profile()
	perCore := p.CoreActive
	for _, ps := range p.PStates {
		if w := p.CoreActive * ps.PowerScale; w > perCore {
			perCore = w
		}
	}
	for _, t := range [...]float64{p.WakeC1.Watts, p.WakeC3.Watts, p.WakeC6.Watts, p.WakePC6.Watts} {
		if t > perCore {
			perCore = t
		}
	}
	cap := float64(p.Cores)*perCore + float64(p.SocketCount())*p.PkgPC0 +
		p.DRAMActive + p.PlatformS0
	for _, t := range [...]float64{p.WakeS3.Watts, p.WakeS5.Watts, p.SleepEntry.Watts} {
		if t+p.DRAMActive+p.PlatformS0+p.PkgPC0 > cap {
			cap = t + p.DRAMActive + p.PlatformS0 + p.PkgPC0
		}
	}
	return cap
}

// checkNetwork verifies flow and packet conservation.
func (c *Checker) checkNetwork() {
	if c.net == nil {
		return
	}
	st := c.net.Stats()
	if st.FlowsStarted-st.FlowsCompleted != int64(c.net.ActiveFlows()) {
		c.report("packet-conservation", "flows: started %d − completed %d != active %d",
			st.FlowsStarted, st.FlowsCompleted, c.net.ActiveFlows())
	}
	if st.PacketsDelivered+st.PacketsDropped > st.PacketsSent {
		c.report("packet-conservation", "packets: delivered %d + dropped %d > sent %d",
			st.PacketsDelivered, st.PacketsDropped, st.PacketsSent)
	}
	if c.net.OpenPacketTransfers() == 0 &&
		st.PacketsDelivered+st.PacketsDropped != st.PacketsSent {
		c.report("packet-conservation", "drained, but delivered %d + dropped %d != sent %d",
			st.PacketsDelivered, st.PacketsDropped, st.PacketsSent)
	}
	if d := c.net.Drops(); d != st.PacketsDropped {
		c.report("packet-conservation", "egress drop counters %d != stats drops %d", d, st.PacketsDropped)
	}
	if st.FlowsFailed < 0 || st.FlowsFailed > st.FlowsCompleted {
		c.report("packet-conservation", "flows failed %d outside [0, completed %d]",
			st.FlowsFailed, st.FlowsCompleted)
	}
	if st.BytesDelivered < 0 {
		c.report("packet-conservation", "negative bytes delivered %d", st.BytesDelivered)
	}
}

// checkLittleCI verifies the statistical Little's law L = λW on a
// stationary run: the gap (which the exact law shows equals the open
// jobs' boundary contribution divided by the horizon) must fall inside
// the 95% confidence interval of λ·W̄.
func (c *Checker) checkLittleCI(end simtime.Time) {
	n := c.completed
	sec := end.Seconds()
	if n < 30 || sec <= 0 {
		return // too few samples for a CI to mean anything
	}
	w := c.sumSojournS / float64(n)
	varS := (c.sumSojournSqS - float64(n)*w*w) / float64(n-1)
	if varS < 0 {
		varS = 0
	}
	lambda := float64(n) / sec
	l := float64(c.jobNanoSecs) / 1e9 / sec
	half := 1.96 * math.Sqrt(varS/float64(n)) * lambda
	if gap := math.Abs(l - lambda*w); gap > half+RelTol*(1+l) {
		c.report("little-ci", "L=%.6g vs λW=%.6g: gap %.3g outside 95%% CI half-width %.3g (n=%d)",
			l, lambda*w, gap, half, n)
	}
}

// ReportedTotals carries the aggregates a results collector reports,
// for closure checking against an independent re-summation of the
// underlying meters.
type ReportedTotals struct {
	End               simtime.Time
	JobsGenerated     int64
	JobsCompleted     int64
	JobsLost          int64
	ServerEnergyJ     float64
	CPUEnergyJ        float64
	DRAMEnergyJ       float64
	PlatformEnergyJ   float64
	NetworkEnergyJ    float64
	MeanServerPowerW  float64
	MeanNetworkPowerW float64
	// Residency maps state label to mean fraction across servers.
	Residency map[string]float64
}

// VerifyTotals checks reported aggregates against the meters: each
// component total must match the per-server sum within RelTol, mean
// power must equal energy over the horizon, and mean residency
// fractions must sum to 1.
func (c *Checker) VerifyTotals(rt ReportedTotals) {
	end := rt.End
	var cpu, dram, plat float64
	for _, srv := range c.servers {
		cpu += srv.CPUEnergyTo(end)
		dram += srv.DRAMEnergyTo(end)
		plat += srv.PlatformEnergyTo(end)
	}
	for _, cmp := range [...]struct {
		name            string
		reported, meter float64
	}{
		{"cpu", rt.CPUEnergyJ, cpu},
		{"dram", rt.DRAMEnergyJ, dram},
		{"platform", rt.PlatformEnergyJ, plat},
		{"server-total", rt.ServerEnergyJ, cpu + dram + plat},
	} {
		if !closeRel(cmp.reported, cmp.meter, RelTol) {
			c.report("reported-totals", "%s energy reported %g J, meters sum to %g J",
				cmp.name, cmp.reported, cmp.meter)
		}
	}
	if sec := end.Seconds(); sec > 0 {
		if !closeRel(rt.MeanServerPowerW*sec, rt.ServerEnergyJ, RelTol) {
			c.report("reported-totals", "mean power %g W x %g s != energy %g J",
				rt.MeanServerPowerW, sec, rt.ServerEnergyJ)
		}
	}
	if c.net != nil {
		if !closeRel(rt.NetworkEnergyJ, c.net.NetworkEnergyTo(end), RelTol) {
			c.report("reported-totals", "network energy reported %g J, meters sum to %g J",
				rt.NetworkEnergyJ, c.net.NetworkEnergyTo(end))
		}
		if sec := end.Seconds(); sec > 0 {
			if !closeRel(rt.MeanNetworkPowerW*sec, rt.NetworkEnergyJ, RelTol) {
				c.report("reported-totals", "mean network power %g W x %g s != energy %g J",
					rt.MeanNetworkPowerW, sec, rt.NetworkEnergyJ)
			}
		}
	}
	if len(rt.Residency) > 0 {
		sum := 0.0
		for _, f := range rt.Residency {
			sum += f
		}
		if math.Abs(sum-1) > 1e3*RelTol {
			c.report("reported-totals", "mean residency fractions sum to %.12g", sum)
		}
	}
	if rt.JobsCompleted+rt.JobsLost > rt.JobsGenerated {
		c.report("reported-totals", "completed %d + lost %d > generated %d",
			rt.JobsCompleted, rt.JobsLost, rt.JobsGenerated)
	}
	if rt.JobsLost != c.lost {
		c.report("reported-totals", "reported %d jobs lost, checker observed %d", rt.JobsLost, c.lost)
	}
}

// closeRel reports whether a and b agree within rel, scaled by their
// magnitude (exact for both zero).
func closeRel(a, b, rel float64) bool {
	if a == b {
		return true
	}
	scale := math.Abs(a)
	if s := math.Abs(b); s > scale {
		scale = s
	}
	return math.Abs(a-b) <= rel*scale
}
