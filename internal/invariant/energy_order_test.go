package invariant

import (
	"fmt"
	"testing"

	"holdcsim/internal/engine"
	"holdcsim/internal/power"
	"holdcsim/internal/server"
	"holdcsim/internal/simtime"
)

// TestServerEnergyViolationsDeterministic pins the fix for the map-order
// dependence simlint:determinism found in checkServerEnergy: the
// residency-fraction loop iterated a map, so the violation list (and the
// float accumulation into the closure sum) depended on Go's randomized
// map iteration order. The loop now walks states sorted. This test
// drives the energy-closure law over a server with many residency
// states, constructed in a different insertion order each round, and
// requires the violation output to be byte-identical every time.
func TestServerEnergyViolationsDeterministic(t *testing.T) {
	build := func(perm []int) *server.Server {
		eng := engine.New()
		srv, err := server.New(0, eng, server.DefaultConfig(power.FourCoreServer()))
		if err != nil {
			t.Fatal(err)
		}
		res := srv.Residency()
		// One closed interval per synthetic state, in permuted order; the
		// durations differ per state so fractions are distinguishable.
		at := simtime.FromSeconds(1)
		for _, s := range perm {
			res.SetState(at, fmt.Sprintf("state-%02d", s))
			at += simtime.FromSeconds(float64(s + 1))
		}
		res.SetState(at, "final")
		return srv
	}

	check := func(srv *server.Server) string {
		c := &Checker{opts: Options{MaxViolations: 32}}
		// An end time before the last transition makes the closed
		// intervals overshoot the [t0, end] window, so the fractions sum
		// far past 1 and the closure law must fire — deterministically.
		c.checkServerEnergy(srv, simtime.FromSeconds(3))
		out := ""
		for _, v := range c.Violations() {
			out += v.Law + ": " + v.Detail + "\n"
		}
		return out
	}

	perms := [][]int{
		{0, 1, 2, 3, 4, 5, 6, 7},
		{7, 6, 5, 4, 3, 2, 1, 0},
		{3, 7, 0, 5, 1, 6, 2, 4},
	}
	want := check(build(perms[0]))
	if want == "" {
		t.Fatal("expected the energy-closure law to fire on the truncated window")
	}
	// Re-check repeatedly: Go randomizes map iteration per range
	// statement, so an order-dependent implementation diverges across
	// rounds with high probability.
	for round := 0; round < 32; round++ {
		for _, p := range perms {
			if got := check(build(p)); got != want {
				t.Fatalf("violation output depends on construction/iteration order:\nwant %q\ngot  %q", want, got)
			}
		}
	}
}
