package invariant

import (
	"strings"
	"testing"

	"holdcsim/internal/engine"
	"holdcsim/internal/job"
	"holdcsim/internal/power"
	"holdcsim/internal/rng"
	"holdcsim/internal/sched"
	"holdcsim/internal/server"
	"holdcsim/internal/simtime"
	"holdcsim/internal/workload"
)

// rig is a minimal data center: engine, a small farm, a scheduler and a
// Poisson generator, with a checker attached.
type rig struct {
	eng *engine.Engine
	s   *sched.Scheduler
	gen *workload.Generator
	c   *Checker
}

func newRig(t *testing.T, servers int, jobs int64, opts Options) *rig {
	return newRigPolicy(t, servers, jobs, opts, sched.OrphanRequeue)
}

func newRigPolicy(t *testing.T, servers int, jobs int64, opts Options, policy sched.OrphanPolicy) *rig {
	t.Helper()
	eng := engine.New()
	farm := make([]*server.Server, servers)
	for i := range farm {
		srv, err := server.New(i, eng, server.DefaultConfig(power.FourCoreServer()))
		if err != nil {
			t.Fatal(err)
		}
		farm[i] = srv
	}
	s, err := sched.New(eng, farm, sched.Config{Orphans: policy})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(eng, rng.New(7), workload.Poisson{Rate: 500},
		workload.SingleTask{Service: workload.WebSearchService()},
		s.JobArrived)
	gen.MaxJobs = jobs
	c := Attach(eng, gen, s, farm, nil, opts)
	return &rig{eng: eng, s: s, gen: gen, c: c}
}

func (r *rig) run() {
	r.gen.Start()
	r.eng.Run()
}

func TestCleanRunHasNoViolations(t *testing.T) {
	r := newRig(t, 4, 200, Options{Stationary: true})
	r.run()
	if v := r.c.Finalize(r.eng.Now()); len(v) != 0 {
		t.Fatalf("clean run reported violations: %v", v)
	}
	if err := r.c.Err(); err != nil {
		t.Fatalf("Err() = %v on a clean run", err)
	}
}

func TestFinalizeIsIdempotent(t *testing.T) {
	r := newRig(t, 2, 50, Options{})
	r.run()
	end := r.eng.Now()
	if v := r.c.Finalize(end); len(v) != 0 {
		t.Fatalf("first finalize: %v", v)
	}
	// A second call must not re-run the laws (a persistent violation
	// would double-report); it returns the recorded set unchanged.
	r.c.jobNanoSecs += 99 // would trip little-exact if laws re-ran
	if v := r.c.Finalize(end + simtime.Second); len(v) != 0 {
		t.Fatalf("re-finalize re-ran the end-of-run laws: %v", v)
	}
}

func TestDetectsTamperedCompletionCount(t *testing.T) {
	r := newRig(t, 2, 50, Options{})
	r.run()
	// White-box tamper: pretend the checker saw one extra completion.
	// Both the conservation law and the exact Little identity must trip.
	r.c.completed++
	v := r.c.Finalize(r.eng.Now())
	if !hasLaw(v, "task-conservation") {
		t.Errorf("tampered counters not caught by task-conservation: %v", v)
	}
	if err := r.c.Err(); err == nil || !strings.Contains(err.Error(), "task-conservation") {
		t.Errorf("Err() = %v, want task-conservation detail", err)
	}
}

func TestDetectsTamperedIntegral(t *testing.T) {
	r := newRig(t, 2, 50, Options{})
	r.run()
	r.c.jobNanoSecs += 12345 // corrupt the area under N(t)
	if v := r.c.Finalize(r.eng.Now()); !hasLaw(v, "little-exact") {
		t.Errorf("corrupted integral not caught: %v", v)
	}
}

// TestLossSplitsHold: a real mid-run crash under each orphan policy —
// with a ledger wired the way core wires the fault injector's — leaves
// every failure-aware law intact: the split Little integral, the lost
// counters, the aborted-task conservation, and the down-time-excluded
// energy envelope.
func TestLossSplitsHold(t *testing.T) {
	for _, policy := range []sched.OrphanPolicy{sched.OrphanRequeue, sched.OrphanDrop} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			r := newRigPolicy(t, 2, 400, Options{}, policy)
			// The checker cross-checks its loss count against this
			// stand-in ledger, fed exactly like the injector's.
			var ledger int64
			r.c.opts.LostJobsLedger = func() int64 { return ledger }
			r.s.OnJobLost(func(_ *job.Job, _ sched.LostReason) { ledger++ })
			r.eng.Schedule(100*simtime.Millisecond, func() {
				r.s.ServerCrashed(r.s.Servers()[0])
			})
			r.eng.Schedule(300*simtime.Millisecond, func() {
				r.s.ServerRecovered(r.s.Servers()[0])
			})
			r.run()
			if v := r.c.Finalize(r.eng.Now()); len(v) != 0 {
				t.Fatalf("faulted run reported violations: %v", v)
			}
			if policy == sched.OrphanDrop && r.c.lost == 0 {
				t.Skip("no job was in flight at the crash; timing drifted")
			}
		})
	}
}

// TestDetectsTamperedLostCount: corrupting the loss counter trips both
// the conservation law and the ledger cross-check.
func TestDetectsTamperedLostCount(t *testing.T) {
	r := newRig(t, 2, 50, Options{})
	r.run()
	r.c.lost++
	r.c.sumLostNs += 777 // a phantom partial sojourn
	v := r.c.Finalize(r.eng.Now())
	if !hasLaw(v, "task-conservation") {
		t.Errorf("tampered lost count not caught by task-conservation: %v", v)
	}
	if !hasLaw(v, "lost-ledger") {
		t.Errorf("loss with no ledger not caught by lost-ledger: %v", v)
	}
	if !hasLaw(v, "little-exact") {
		t.Errorf("phantom lost partial not caught by the split integral: %v", v)
	}
}

// TestDetectsLedgerMismatch: a ledger that disagrees with the checker's
// observations trips lost-ledger.
func TestDetectsLedgerMismatch(t *testing.T) {
	r := newRig(t, 2, 50, Options{LostJobsLedger: func() int64 { return 5 }})
	r.run()
	if v := r.c.Finalize(r.eng.Now()); !hasLaw(v, "lost-ledger") {
		t.Errorf("ledger mismatch not caught: %v", v)
	}
}

func TestDetectsBackwardFinalize(t *testing.T) {
	r := newRig(t, 1, 20, Options{})
	r.run()
	if v := r.c.Finalize(r.eng.Now() - simtime.Second); !hasLaw(v, "monotonic-time") {
		t.Errorf("backward finalize not caught: %v", v)
	}
}

func TestVerifyTotalsDetectsMismatch(t *testing.T) {
	r := newRig(t, 2, 30, Options{})
	r.run()
	end := r.eng.Now()
	r.c.VerifyTotals(ReportedTotals{
		End:           end,
		ServerEnergyJ: 1, CPUEnergyJ: 1, // bogus
		Residency: map[string]float64{"Active": 0.4}, // doesn't sum to 1
	})
	v := r.c.Violations()
	if !hasLaw(v, "reported-totals") {
		t.Fatalf("bogus totals not caught: %v", v)
	}
	n := 0
	for _, x := range v {
		if x.Law == "reported-totals" {
			n++
		}
	}
	if n < 3 { // cpu, server-total, residency at minimum
		t.Errorf("want >=3 reported-totals violations, got %d: %v", n, v)
	}
}

func TestViolationCapSuppresses(t *testing.T) {
	r := newRig(t, 1, 1, Options{MaxViolations: 3})
	for i := 0; i < 10; i++ {
		r.c.report("test-law", "synthetic %d", i)
	}
	if len(r.c.Violations()) != 3 {
		t.Fatalf("recorded %d violations, want cap 3", len(r.c.Violations()))
	}
	if r.c.Suppressed() != 7 {
		t.Fatalf("suppressed %d, want 7", r.c.Suppressed())
	}
	if err := r.c.Err(); err == nil || !strings.Contains(err.Error(), "+7 suppressed") {
		t.Errorf("Err() = %v, want suppressed note", err)
	}
}

func TestCloseRel(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{0, 0, true},
		{1, 1 + 1e-12, true},
		{1, 1 + 1e-6, false},
		{1e12, 1e12 * (1 + 1e-10), true},
		{-5, 5, false},
	}
	for _, tc := range cases {
		if got := closeRel(tc.a, tc.b, RelTol); got != tc.want {
			t.Errorf("closeRel(%g, %g) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func hasLaw(vs []Violation, law string) bool {
	for _, v := range vs {
		if v.Law == law {
			return true
		}
	}
	return false
}
