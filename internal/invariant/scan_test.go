package invariant

import (
	"testing"

	"holdcsim/internal/engine"
	"holdcsim/internal/power"
	"holdcsim/internal/rng"
	"holdcsim/internal/sched"
	"holdcsim/internal/server"
	"holdcsim/internal/workload"
)

func TestScanBudgetResolution(t *testing.T) {
	if got := newRig(t, 2, 1, Options{}).c.scanBudget; got != 256 {
		t.Errorf("default scan budget %d, want 256", got)
	}
	if got := newRig(t, 2, 1, Options{ScanBudget: -3}).c.scanBudget; got != -1 {
		t.Errorf("negative scan budget resolved to %d, want -1 (unbounded)", got)
	}
	if got := newRig(t, 2, 1, Options{ScanBudget: 7}).c.scanBudget; got != 7 {
		t.Errorf("explicit scan budget resolved to %d, want 7", got)
	}
}

func TestDirtySetFirstTouchOrder(t *testing.T) {
	r := newRig(t, 8, 1, Options{ScanBudget: 4})
	srvs := r.s.Servers()
	r.c.markDirty(srvs[5])
	r.c.markDirty(srvs[2])
	r.c.markDirty(srvs[5]) // duplicate: already marked
	if len(r.c.dirty) != 2 || r.c.dirty[0] != 5 || r.c.dirty[1] != 2 {
		t.Fatalf("dirty = %v, want [5 2] in first-touch order", r.c.dirty)
	}
	if !r.c.isDirty(5) || !r.c.isDirty(2) || r.c.isDirty(3) {
		t.Fatalf("dirty bitset out of sync with list")
	}
	r.c.clearDirty()
	if len(r.c.dirty) != 0 || r.c.isDirty(5) || r.c.isDirty(2) {
		t.Fatalf("clearDirty left state behind: %v", r.c.dirty)
	}
}

// The bounded scan spends its budget dirty-first, then advances the
// rotating cursor; dirty servers scanned this round are not re-scanned
// off the cursor.
func TestBoundedScanRotatesCursor(t *testing.T) {
	r := newRig(t, 8, 1, Options{ScanBudget: 3})
	r.c.deepScan()
	r.c.deepScan()
	r.c.deepScan() // 9 cursor steps wrap the 8-server farm
	if r.c.cursor != 1 {
		t.Fatalf("cursor = %d after three budget-3 scans of 8 servers, want 1", r.c.cursor)
	}
	srvs := r.s.Servers()
	r.c.markDirty(srvs[1]) // sits at the cursor: must be skipped there
	r.c.markDirty(srvs[0])
	r.c.deepScan() // 2 dirty + 1 from cursor (skipping dirty server 1)
	if r.c.cursor != 3 {
		t.Fatalf("cursor = %d after dirty-first scan, want 3", r.c.cursor)
	}
	if len(r.c.dirty) != 0 {
		t.Fatalf("scan left dirty set %v", r.c.dirty)
	}
	// A dirty set larger than the budget still drains fully and leaves
	// the cursor alone.
	for _, i := range []int{7, 6, 5, 4, 2} {
		r.c.markDirty(srvs[i])
	}
	r.c.deepScan()
	if r.c.cursor != 3 {
		t.Fatalf("cursor = %d after over-budget dirty drain, want 3", r.c.cursor)
	}
	if v := r.c.Violations(); len(v) != 0 {
		t.Fatalf("idle-farm scans reported violations: %v", v)
	}
}

func TestCleanRunBoundedScanNoViolations(t *testing.T) {
	r := newRig(t, 16, 300, Options{ScanBudget: 2, SampleEvery: 1})
	r.run()
	if v := r.c.Finalize(r.eng.Now()); len(v) != 0 {
		t.Fatalf("bounded-scan run reported violations: %v", v)
	}
}

// With Options.Farm set, Finalize closes the task-conservation books
// from the farm's O(1) incremental aggregates; they must agree with a
// per-server walk, and the run must stay clean.
func TestFarmAggregateFinalize(t *testing.T) {
	eng := engine.New()
	farm := server.NewFarm(eng)
	const n = 6
	srvs := make([]*server.Server, n)
	for i := range srvs {
		srv, err := farm.Add(i, server.DefaultConfig(power.FourCoreServer()))
		if err != nil {
			t.Fatal(err)
		}
		srvs[i] = srv
	}
	s, err := sched.New(eng, srvs, sched.Config{})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(eng, rng.New(7), workload.Poisson{Rate: 500},
		workload.SingleTask{Service: workload.WebSearchService()},
		s.JobArrived)
	gen.MaxJobs = 150
	c := Attach(eng, gen, s, srvs, nil, Options{Farm: farm, ScanBudget: 2, SampleEvery: 1})
	gen.Start()
	eng.Run()
	if v := c.Finalize(eng.Now()); len(v) != 0 {
		t.Fatalf("farm-aggregate run reported violations: %v", v)
	}
	var done, pend int64
	for _, srv := range srvs {
		done += srv.CompletedTasks()
		pend += int64(srv.PendingTasks())
	}
	if farm.TotalCompleted() != done || farm.TotalPending() != pend {
		t.Fatalf("farm aggregates (done %d, pending %d) != walked sums (%d, %d)",
			farm.TotalCompleted(), farm.TotalPending(), done, pend)
	}
}
