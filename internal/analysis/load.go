package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one typechecked package ready for the suite.
type Package struct {
	Path      string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
}

// Load resolves patterns (e.g. "./...") in dir into typechecked
// packages. It shells out to `go list -export -deps -json`, which both
// names the target packages and — via the build cache — supplies gc
// export data for every dependency, so typechecking needs only the
// targets' own sources. This works fully offline: no module downloads,
// no golang.org/x/tools dependency.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	exports := map[string]string{}
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			q := p
			targets = append(targets, &q)
		}
	}
	fset := token.NewFileSet()
	lookup := exportLookup(exports, nil)
	var pkgs []*Package
	for _, t := range targets {
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := typecheck(fset, t.ImportPath, t.Dir, files, lookup)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// VetConfig mirrors the JSON configuration `go vet -vettool` hands the
// tool for one compilation unit (cmd/go/internal/work.vetConfig).
type VetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string
	GoVersion   string

	SucceedOnTypecheckFailure bool
}

// LoadVetPackage typechecks the single compilation unit described by a
// vet config, resolving imports through the config's ImportMap and
// PackageFile export-data table.
func LoadVetPackage(cfg *VetConfig) (*Package, error) {
	fset := token.NewFileSet()
	return typecheck(fset, cfg.ImportPath, cfg.Dir, cfg.GoFiles,
		exportLookup(cfg.PackageFile, cfg.ImportMap))
}

// exportLookup adapts an import-path→export-file table (after optional
// source-path→canonical-path translation) into a gc importer lookup.
func exportLookup(exports, importMap map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("simlint: no export data for %q", path)
		}
		return os.Open(f)
	}
}

// typecheck parses files and typechecks them as package path.
func typecheck(fset *token.FileSet, path, dir string, fileNames []string,
	lookup func(string) (io.ReadCloser, error)) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		if !filepath.IsAbs(name) {
			name = filepath.Join(dir, name)
		}
		af, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, af)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		// Keep going on minor errors so one bad file does not hide every
		// other finding; the first error still fails the load below.
		Error: func(error) {},
	}
	pkg, err := conf.Check(canonicalPath(path), fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("simlint: typecheck %s: %v", path, err)
	}
	return &Package{
		Path:      path,
		Dir:       dir,
		Fset:      fset,
		Files:     files,
		Types:     pkg,
		TypesInfo: info,
	}, nil
}
