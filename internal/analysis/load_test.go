package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// stdlibExports shells out once for the export-data locations of the
// packages a fixture unit imports, the same table cmd/go would hand a
// vettool via PackageFile.
func stdlibExports(t *testing.T, pkgs ...string) map[string]string {
	t.Helper()
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, pkgs...)
	out, err := exec.Command("go", args...).Output()
	if err != nil {
		t.Fatalf("go list: %v", err)
	}
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports
}

func TestLoadVetPackage(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "u.go")
	code := "package unit\n\nimport \"time\"\n\nvar T = time.Now()\n"
	if err := os.WriteFile(src, []byte(code), 0o666); err != nil {
		t.Fatal(err)
	}
	cfg := &VetConfig{
		ID:          "holdcsim/internal/core",
		Compiler:    "gc",
		Dir:         dir,
		ImportPath:  "holdcsim/internal/core",
		GoFiles:     []string{"u.go"}, // relative: typecheck must join with Dir
		PackageFile: stdlibExports(t, "time"),
	}
	pkg, err := LoadVetPackage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types.Name() != "unit" || len(pkg.Files) != 1 {
		t.Fatalf("loaded %q with %d files", pkg.Types.Name(), len(pkg.Files))
	}
	diags := RunSuite(pkg)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "time.Now") {
		t.Fatalf("suite on vet-loaded unit: %v", diags)
	}
}

func TestExportLookup(t *testing.T) {
	f := filepath.Join(t.TempDir(), "x.a")
	if err := os.WriteFile(f, []byte("export"), 0o666); err != nil {
		t.Fatal(err)
	}
	lookup := exportLookup(
		map[string]string{"vendored/time": f},
		map[string]string{"time": "vendored/time"},
	)
	rc, err := lookup("time") // translated through the import map
	if err != nil {
		t.Fatal(err)
	}
	rc.Close()
	if _, err := lookup("fmt"); err == nil {
		t.Fatal("lookup of unknown path succeeded")
	}
}

func TestTypecheckErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.go")
	if err := os.WriteFile(bad, []byte("package p\nfunc {"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := typecheck(token.NewFileSet(), "p", dir, []string{"bad.go"}, nil); err == nil {
		t.Fatal("parse error not reported")
	}
}

func TestLoadBadPattern(t *testing.T) {
	if _, err := Load("..", []string{"./nonexistent-dir-xyz/..."}); err == nil {
		t.Fatal("go list failure not reported")
	}
}
