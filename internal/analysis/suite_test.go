package analysis_test

import (
	"strings"
	"testing"

	"holdcsim/internal/analysis"
	"holdcsim/internal/analysis/atest"
)

func TestDeterminismFixture(t *testing.T) { atest.Run(t, "determinism") }
func TestHotpathFixture(t *testing.T)     { atest.Run(t, "hotpath") }
func TestHookguardFixture(t *testing.T)   { atest.Run(t, "hookguard") }
func TestHandleFixture(t *testing.T)      { atest.Run(t, "handle") }
func TestAnnotationFixture(t *testing.T)  { atest.Run(t, "annotation") }

// TestSuiteShape locks the analyzer inventory: names are the annotation
// vocabulary, so adding or renaming a pass is an API change.
func TestSuiteShape(t *testing.T) {
	want := []string{"annotation", "determinism", "hotpath", "hookguard", "handle"}
	suite := analysis.Suite()
	if len(suite) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("suite[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing Doc or Run", a.Name)
		}
	}
}

// TestLoadRealPackage exercises the go-list-export loader against a real
// module package end to end.
func TestLoadRealPackage(t *testing.T) {
	pkgs, err := analysis.Load("../..", []string{"./internal/simtime"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.Path != "holdcsim/internal/simtime" {
		t.Fatalf("loaded %q, want holdcsim/internal/simtime", pkg.Path)
	}
	if pkg.Types.Scope().Lookup("Time") == nil {
		t.Error("typechecked package is missing the Time type")
	}
	if diags := analysis.RunSuite(pkg); len(diags) != 0 {
		t.Errorf("simtime should be clean, got %v", diags)
	}
}

func TestFirstParty(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"holdcsim/internal/engine", true},
		{"holdcsim/internal/engine [holdcsim/internal/engine.test]", true},
		{"holdcsim/cmd/simlint", true},
		{"holdcsim", true},
		{"fmt", false},
		{"holdcsimx/internal/engine", false},
	}
	for _, c := range cases {
		if got := analysis.FirstParty(c.path); got != c.want {
			t.Errorf("FirstParty(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

// TestDiagnosticString locks the human-readable finding format the CLI
// prints.
func TestDiagnosticString(t *testing.T) {
	pkgs, err := analysis.Load("../..", []string{"./internal/analysis/atest"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	d := analysis.Diagnostic{Analyzer: "determinism", Message: "m"}
	d.Pos.Filename, d.Pos.Line, d.Pos.Column = "f.go", 3, 7
	if got, want := d.String(), "f.go:3:7: [determinism] m"; !strings.HasPrefix(got, want) {
		t.Errorf("Diagnostic.String() = %q, want prefix %q", got, want)
	}
}
