package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The simlint annotation vocabulary (DESIGN.md Sec. 14):
//
//	//simlint:allow <pass> <reason>
//	    Suppresses findings of pass <pass> on the annotated line. As a
//	    trailing comment it targets its own line; as a standalone
//	    comment it targets the line immediately below (stacked
//	    annotations above one line all target that line). The pass name
//	    must be one of the suite's analyzers and the reason is
//	    mandatory — both are hard errors, as is an allow that suppresses
//	    nothing (stale suppressions must not rot in the tree).
//
//	//simlint:hotpath
//	    Marks the function declaration it documents (or immediately
//	    precedes) as hot-path-constrained: the hotpath pass then bans
//	    closures capturing loop variables, fmt calls, interface-boxing
//	    conversions, and growable appends inside it. Attaching it to
//	    anything other than a function declaration is a hard error.
//
// Directives are comment-directives in the gofmt sense: no space after
// `//`, so gofmt leaves them alone.
const directivePrefix = "//simlint:"

// allowAnn is one parsed //simlint:allow annotation.
type allowAnn struct {
	pass   string
	reason string
	pos    token.Position // of the annotation comment itself
	target int            // line whose findings it suppresses
	used   bool
}

// annotations is the per-package annotation table shared by every pass.
type annotations struct {
	// allows indexes parsed allow annotations by filename and target
	// line.
	allows map[string]map[int][]*allowAnn
	// hotpath is the set of function declarations carrying a
	// //simlint:hotpath annotation.
	hotpath map[*ast.FuncDecl]bool
	// malformed collects vocabulary violations: unknown directive or
	// pass name, missing reason, annotation on a line it cannot govern.
	// These are hard errors — reported unsuppressably by the annotation
	// analyzer.
	malformed []Diagnostic
}

// AnnotationAnalyzer validates the annotation vocabulary itself. It has
// no Run logic of its own beyond surfacing the parse-time hard errors:
// a malformed annotation must fail the build even when no pass would
// have reported anything near it.
var AnnotationAnalyzer = &Analyzer{
	Name: "annotation",
	Doc: "validates the //simlint: annotation vocabulary: known directive, " +
		"known pass name, mandatory reason, hotpath attached to a function",
	Run: func(p *Pass) {
		for _, d := range p.ann.malformed {
			*p.sink = append(*p.sink, Diagnostic{Pos: d.Pos, Analyzer: "annotation", Message: d.Message})
		}
	},
}

// allowed reports whether a finding of pass at position is suppressed by
// an allow annotation, marking the annotation used.
func (a *annotations) allowed(pass string, pos token.Position) bool {
	for _, ann := range a.allows[pos.Filename][pos.Line] {
		if ann.pass == pass {
			ann.used = true
			return true
		}
	}
	return false
}

// unused reports every allow annotation that suppressed nothing — an
// annotation on the wrong line, or one outliving the finding it excused.
func (a *annotations) unused() []Diagnostic {
	var diags []Diagnostic
	for _, byLine := range a.allows {
		for _, anns := range byLine {
			for _, ann := range anns {
				if !ann.used {
					diags = append(diags, Diagnostic{
						Pos:      ann.pos,
						Analyzer: "annotation",
						Message: "//simlint:allow " + ann.pass +
							" suppresses no finding (wrong line, or the finding is gone — delete it)",
					})
				}
			}
		}
	}
	return diags
}

// parseAnnotations scans every comment in files for simlint directives.
// Test files are skipped wholesale: passes never report into them, so
// annotations there could only go stale.
func parseAnnotations(fset *token.FileSet, files []*ast.File) *annotations {
	a := &annotations{
		allows:  map[string]map[int][]*allowAnn{},
		hotpath: map[*ast.FuncDecl]bool{},
	}
	names := passNames()
	for _, f := range files {
		fname := fset.Position(f.Pos()).Filename
		if strings.HasSuffix(fname, "_test.go") {
			continue
		}
		codeLines := codeLineSet(fset, f)
		// funcStart maps a starting line to its declaration, to resolve
		// hotpath annotations.
		funcStart := map[int]*ast.FuncDecl{}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				funcStart[fset.Position(fd.Pos()).Line] = fd
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				target := pos.Line // trailing comment: governs its own line
				if !codeLines[pos.Line] {
					// Standalone comment (possibly mid-stack): governs
					// the first line after its comment group.
					target = fset.Position(cg.End()).Line + 1
				}
				body := strings.TrimPrefix(c.Text, directivePrefix)
				verb, rest, _ := strings.Cut(body, " ")
				switch verb {
				case "allow":
					pass, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
					reason = strings.TrimSpace(reason)
					if pass == "" || !names[pass] {
						a.malformed = append(a.malformed, Diagnostic{Pos: pos,
							Message: "//simlint:allow needs a known pass name (have " + quoted(pass) + ", want one of " + nameList() + ")"})
						continue
					}
					if reason == "" {
						a.malformed = append(a.malformed, Diagnostic{Pos: pos,
							Message: "//simlint:allow " + pass + " needs a reason"})
						continue
					}
					byLine := a.allows[pos.Filename]
					if byLine == nil {
						byLine = map[int][]*allowAnn{}
						a.allows[pos.Filename] = byLine
					}
					byLine[target] = append(byLine[target],
						&allowAnn{pass: pass, reason: reason, pos: pos, target: target})
				case "hotpath":
					if strings.TrimSpace(rest) != "" {
						a.malformed = append(a.malformed, Diagnostic{Pos: pos,
							Message: "//simlint:hotpath takes no arguments"})
						continue
					}
					fd := funcStart[target]
					if fd == nil && codeLines[pos.Line] {
						fd = funcStart[pos.Line]
					}
					if fd == nil {
						a.malformed = append(a.malformed, Diagnostic{Pos: pos,
							Message: "//simlint:hotpath must be attached to a function declaration"})
						continue
					}
					a.hotpath[fd] = true
				default:
					a.malformed = append(a.malformed, Diagnostic{Pos: pos,
						Message: "unknown simlint directive " + quoted(verb) + " (want allow or hotpath)"})
				}
			}
		}
	}
	return a
}

// codeLineSet records which lines hold non-comment code, by walking the
// AST and marking every node's starting line. A line holding only a
// closing brace is not a node start, which is fine: no finding anchors
// there either.
func codeLineSet(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup, *ast.File:
			return true
		}
		lines[fset.Position(n.Pos()).Line] = true
		return true
	})
	return lines
}

func quoted(s string) string { return "\"" + s + "\"" }

func nameList() string {
	var out []string
	for _, a := range Suite() {
		if a.Name != "annotation" {
			out = append(out, a.Name)
		}
	}
	return strings.Join(out, ", ")
}
