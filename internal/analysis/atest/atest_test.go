package atest

import (
	"os"
	"path/filepath"
	"testing"
)

// TestSmokeFixture runs the harness end to end on its own minimal
// fixture: the want comment must match the one finding, and the allow
// annotation must suppress the other.
func TestSmokeFixture(t *testing.T) {
	Run(t, "smoke")
}

// TestCollectWants checks want parsing: plain, -prev, and regex
// payloads with escapes.
func TestCollectWants(t *testing.T) {
	dir := t.TempDir()
	src := `package p
var a = 1 // want "first \{finding\}"
// a comment
// want-prev "second"
var b = 2 // no expectation here
`
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	wants, err := collectWants(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(wants) != 2 {
		t.Fatalf("parsed %d wants, want 2", len(wants))
	}
	if wants[0].line != 2 || !wants[0].re.MatchString("first {finding}") {
		t.Errorf("want[0] = line %d re %v", wants[0].line, wants[0].re)
	}
	if wants[1].line != 3 {
		t.Errorf("want-prev bound to line %d, want 3", wants[1].line)
	}
}

func TestCopyTree(t *testing.T) {
	src := t.TempDir()
	if err := os.MkdirAll(filepath.Join(src, "a/b"), 0o777); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(src, "a/b/f.txt"), []byte("x"), 0o666); err != nil {
		t.Fatal(err)
	}
	dst := t.TempDir()
	if err := copyTree(src, dst); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dst, "a/b/f.txt"))
	if err != nil || string(data) != "x" {
		t.Fatalf("copied file = %q, %v", data, err)
	}
}
