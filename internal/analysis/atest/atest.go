// Package atest is the fixture harness for the simlint suite — the
// analysistest role, self-contained on the standard library like the
// suite itself. A fixture is a directory tree under
// internal/analysis/testdata/<name>/ shaped like a miniature module:
// packages under internal/... get the real module's import paths, so
// package-scoped rules (model packages, the engine exemption) apply in
// fixtures exactly as in the tree.
//
// Expected findings are `// want "regexp"` comments on the offending
// line. Run copies the fixture into a temp module, loads and analyzes
// every package, and fails on any unmatched finding or unmet want.
package atest

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"holdcsim/internal/analysis"
)

// wantRe extracts the expectation from a `// want "..."` comment. The
// payload is a regexp matched against `[analyzer] message`. The
// `// want-prev "..."` form expects the finding on the line above: a
// diagnostic positioned at a //simlint: comment cannot carry a trailing
// want on its own line, because the trailing text would parse as part
// of the directive.
var wantRe = regexp.MustCompile(`// want(-prev)? "((?:[^"\\]|\\.)*)"`)

// expectation is one `// want` comment.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hits int
}

// Run copies fixture directory testdata/<name> into a fresh module,
// runs the full simlint suite over it, and compares findings against
// the fixture's want comments.
func Run(t *testing.T, name string) {
	t.Helper()
	src, err := filepath.Abs(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := copyTree(src, dir); err != nil {
		t.Fatalf("copying fixture %s: %v", name, err)
	}
	gomod := filepath.Join(dir, "go.mod")
	if err := os.WriteFile(gomod, []byte("module holdcsim\n\ngo 1.22\n"), 0o666); err != nil {
		t.Fatal(err)
	}

	pkgs, err := analysis.Load(dir, []string{"./..."})
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, analysis.RunSuite(pkg)...)
	}

	wants, err := collectWants(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		rel, _ := filepath.Rel(dir, d.Pos.Filename)
		got := "[" + d.Analyzer + "] " + d.Message
		matched := false
		for _, w := range wants {
			if w.file == rel && w.line == d.Pos.Line && w.re.MatchString(got) {
				w.hits++
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected finding: %s", rel, d.Pos.Line, got)
		}
	}
	for _, w := range wants {
		if w.hits == 0 {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.re)
		}
	}
}

// collectWants scans every non-test .go file under dir for want
// comments.
func collectWants(dir string) ([]*expectation, error) {
	var wants []*expectation
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		rel, _ := filepath.Rel(dir, path)
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				re, err := regexp.Compile(m[2])
				if err != nil {
					return err
				}
				at := line
				if m[1] == "-prev" {
					at = line - 1
				}
				wants = append(wants, &expectation{file: rel, line: at, re: re})
			}
		}
		return sc.Err()
	})
	return wants, err
}

func copyTree(src, dst string) error {
	return filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o777)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o666)
	})
}
