// Package core is the harness's own smoke fixture: one finding, one
// want, one allowed annotation.
package core

import "time"

var when = time.Now() // want "time.Now in model package"

var allowed = time.Now() //simlint:allow determinism harness smoke fixture
