// Package analysis is simlint: a suite of static-analysis passes that
// enforce the contracts the test suite can only sample dynamically —
// byte-identical replay (the DESIGN.md determinism contract), zero-alloc
// hot paths (the PR 7/PR 9 CI gates), nil-guarded observation hooks, and
// pooled generation-counted handle discipline.
//
// The package mirrors the golang.org/x/tools/go/analysis shape (Analyzer,
// Pass, Diagnostic) but is self-contained on the standard library: the
// loader (load.go) shells out to `go list -export` and typechecks with
// the gc export-data importer, so the suite runs offline, standalone via
// cmd/simlint, and under `go vet -vettool`.
//
// Findings are suppressed line-by-line with the annotation vocabulary in
// annotations.go: `//simlint:allow <pass> <reason>` on (or immediately
// above) the offending line, and `//simlint:hotpath` to opt a function
// into the hot-path rules. DESIGN.md Sec. 14 documents the contract each
// pass enforces and how to add one.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named pass over a typechecked package.
type Analyzer struct {
	// Name identifies the pass in diagnostics and in
	// `//simlint:allow <name> <reason>` annotations. It must be a valid
	// identifier.
	Name string
	// Doc is a one-paragraph description of the contract enforced.
	Doc string
	// Run inspects the package and reports findings via pass.Reportf.
	Run func(*Pass)
}

// A Pass carries one analyzer's view of one typechecked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	ann  *annotations
	sink *[]Diagnostic
}

// A Diagnostic is one finding, positioned in the analyzed package.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless a matching
// `//simlint:allow <pass> <reason>` annotation suppresses it. Findings
// positioned in _test.go files are dropped: the contracts govern model
// code, and tests are free to use wall clocks and global randomness.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if strings.HasSuffix(position.Filename, "_test.go") {
		return
	}
	if p.ann.allowed(p.Analyzer.Name, position) {
		return
	}
	*p.sink = append(*p.sink, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Suite returns the simlint analyzers in reporting order. The annotation
// validator runs first so a malformed annotation is reported even when it
// would otherwise silently fail to suppress anything.
func Suite() []*Analyzer {
	return []*Analyzer{
		AnnotationAnalyzer,
		DeterminismAnalyzer,
		HotpathAnalyzer,
		HookguardAnalyzer,
		HandleAnalyzer,
	}
}

// passNames is the annotation vocabulary: the set of names an allow
// annotation may target.
func passNames() map[string]bool {
	names := map[string]bool{}
	for _, a := range Suite() {
		names[a.Name] = true
	}
	return names
}

// RunSuite runs every analyzer over pkg and returns the surviving
// findings sorted by position, including unused-annotation findings: an
// allow annotation that suppressed nothing is itself an error, so stale
// suppressions cannot rot in the tree.
func RunSuite(pkg *Package) []Diagnostic {
	return runAnalyzers(pkg, Suite())
}

func runAnalyzers(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	ann := parseAnnotations(pkg.Fset, pkg.Files)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			ann:       ann,
			sink:      &diags,
		}
		a.Run(pass) //simlint:allow hookguard every Analyzer defines Run; a nil Run is a programming error
	}
	diags = append(diags, ann.unused()...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// ---------------------------------------------------------------------
// Package scoping.
// ---------------------------------------------------------------------

// modulePrefix is the first-party import-path prefix the contracts
// govern.
const modulePrefix = "holdcsim/"

// modelPackages are the deterministic-model packages: everything that
// executes between Build and Collect must replay byte-identically, so
// the determinism pass bans wall clocks, global randomness, environment
// reads, and order-sensitive map iteration there. The experiments
// package is included — it renders the reported artifacts — with its
// intentional wall-clock timing sites carrying allow annotations.
var modelPackages = map[string]bool{
	"engine":      true,
	"core":        true,
	"server":      true,
	"network":     true,
	"sched":       true,
	"fault":       true,
	"topology":    true,
	"scenario":    true,
	"invariant":   true,
	"modelcov":    true,
	"experiments": true,
	"job":         true,
	"workload":    true,
	"power":       true,
	"simtime":     true,
	"stats":       true,
	"trace":       true,
	"dist":        true,
	"rng":         true,
	"runner":      true,
}

// canonicalPath strips the test-variant suffix `go vet` appends to a
// package under test ("p [p.test]" → "p").
func canonicalPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

// FirstParty reports whether the package is part of this module (the
// hookguard and handle contracts apply module-wide). cmd/simlint uses it
// to fast-skip third-party compilation units under `go vet`.
func FirstParty(path string) bool {
	path = canonicalPath(path)
	return path == strings.TrimSuffix(modulePrefix, "/") || strings.HasPrefix(path, modulePrefix)
}

func isFirstParty(path string) bool { return FirstParty(path) }

// isModelPackage reports whether the determinism contract governs the
// package: holdcsim/internal/<name> for a name in modelPackages, plus
// every cmd/ binary (flagged sites there annotate their wall-clock use).
func isModelPackage(path string) bool {
	path = canonicalPath(path)
	if rest, ok := strings.CutPrefix(path, modulePrefix+"internal/"); ok {
		base := rest
		if i := strings.Index(rest, "/"); i >= 0 {
			base = rest[:i]
		}
		return modelPackages[base]
	}
	if strings.HasPrefix(path, modulePrefix+"cmd/") {
		return true
	}
	return false
}
