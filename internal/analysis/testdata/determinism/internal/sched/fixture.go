// Package sched is a determinism fixture: its import path places it in
// a model package, where the byte-identical-replay contract applies.
package sched

import (
	"math/rand"
	"os"
	"sort"
	"time"
)

var sink interface{}

func wallClock() {
	t := time.Now()             // want "time.Now in model package"
	sink = time.Since(t)        // want "time.Since in model package"
	sink = time.Until(t)        // want "time.Until in model package"
	allowed := time.Now()       //simlint:allow determinism fixture demonstrates an allowed wall-clock read
	sink = allowed
	sink = time.Unix(0, 0) // only clock reads are banned, not construction
}

func globalRand() {
	sink = rand.Intn(4)       // want "global math/rand.Intn in model package"
	sink = rand.Float64()     // want "global math/rand.Float64 in model package"
	r := rand.New(rand.NewSource(1)) // explicit seeded generator: fine
	sink = r.Intn(4)
}

func environment() {
	sink = os.Getenv("HOME")  // want "os.Getenv in model package"
	_, ok := os.LookupEnv("X") // want "os.LookupEnv in model package"
	sink = ok
}

var shared []int
var counts = map[string]int{}

func mapOrderDependent(m map[string]int) {
	for _, v := range m { // want "map iteration with order-dependent effects"
		shared = append(shared, v)
	}
	//simlint:allow determinism fixture demonstrates an allowed order-dependent iteration
	for _, v := range m {
		shared = append(shared, v)
	}
}

func mapOrderInsensitive(m map[string]int) int {
	total := 0
	for _, v := range m { // commutative accumulation: order-insensitive
		total += v
	}
	for k, v := range m { // per-key writes into another map: order-insensitive
		counts[k] = v
	}
	keys := make([]string, 0, len(m))
	for k := range m { // collect-then-sort idiom: order-insensitive
		keys = append(keys, k)
	}
	sort.Strings(keys)
	best := 0
	for _, v := range m { // max-update idiom: order-insensitive
		if v > best {
			best = v
		}
	}
	return total + best + len(keys)
}

type cell struct{ n int }

func mapStatementLattice(m map[string]int, grid map[string][]cell) (int, int, int) {
	prod, bits, least := 1, 0, 1<<30
	for k, v := range m { // every statement form below commutes
		var scaled, masked int
		scaled = v * 2
		prod *= scaled
		bits |= v
		bits &= ^scaled
		bits ^= masked
		prod++
		if v < least { // min-update (reversed comparison operands)
			least = v
		}
		if v == 0 {
			delete(counts, k)
			continue
		} else if v < 0 {
			local := cell{n: v}
			local.n = -local.n
			prod *= local.n
		}
		switch v % 3 {
		case 0:
			bits++
		default:
			bits--
		}
		for i := 0; i < 2; i++ {
			prod += i
		}
		for _, c := range grid[k] { // nested range: only its effects matter
			bits += c.n
		}
	}
	return prod, bits, least
}

func mapOrderDependentForms(m map[string]int, cells []cell) {
	for _, v := range m { // want "map iteration with order-dependent effects"
		if v > 0 {
			break // exits the loop order-dependently
		}
	}
	for k := range m { // want "map iteration with order-dependent effects"
		delete(counts, "not-"+k+"-the-key") // delete not keyed by the loop variable
	}
	for _, v := range m { // want "map iteration with order-dependent effects"
		cells[0].n = v // indexed write not keyed by the loop variable
	}
	x, y := 0, 1
	for _, v := range m { // want "map iteration with order-dependent effects"
		x, y = y, v // tuple assignment
	}
	sink = x + y
	for _, v := range m { // want "map iteration with order-dependent effects"
		if len(shared) < cap(shared) { // pure condition, impure body
			shared = append(shared, v)
		}
	}
}
