// Package tools is outside the model-package set: the determinism
// contract does not govern it, so wall clocks and global randomness are
// legal here (hookguard and handle still apply module-wide).
package tools

import (
	"math/rand"
	"time"
)

func unconstrained() int64 {
	return time.Now().UnixNano() + int64(rand.Intn(4))
}
