// Package core (a model package) exercises the wrong-line edge case: an
// allow annotation separated from its finding by an intervening line
// suppresses nothing — the finding still fires, and the stale
// annotation is itself reported.
package core

import "time"

//simlint:allow determinism annotation stranded one line too high
// want-prev "suppresses no finding"
var gap = 0

var when = time.Now() // want "time.Now in model package"
