// Package ann exercises the annotation vocabulary's hard errors: the
// parser reports malformed directives unsuppressably, at the directive's
// own position (hence want-prev: a trailing want comment would parse as
// part of the directive).
package ann

//simlint:allow nosuchpass because I said so
// want-prev "needs a known pass name"
var a = 1

//simlint:allow determinism
// want-prev "needs a reason"
var b = 2

//simlint:frobnicate
// want-prev "unknown simlint directive"
var c = 3

//simlint:hotpath
// want-prev "must be attached to a function declaration"
var d = 4

//simlint:allow determinism this suppression matches no finding and is itself an error
// want-prev "suppresses no finding"
var e = 5

//simlint:hotpath
func attached() {} // correctly attached: no finding

func trailingArgs() {} //simlint:hotpath with arguments // want "takes no arguments"
