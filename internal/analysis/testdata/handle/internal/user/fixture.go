// Package user is a handle fixture: generation-counted engine.Handle
// values stored into state that outlives the event callback must come
// straight from Schedule/After or be the zero Handle.
package user

import "holdcsim/internal/engine"

type core struct {
	eng      *engine.Engine
	finishEv engine.Handle
	cb       func()
}

func (c *core) sanctioned(d engine.Time) {
	c.finishEv = c.eng.After(d, c.cb) // fresh from the engine: sanctioned
	c.finishEv = engine.Handle{}      // explicit invalidation: sanctioned
}

func (c *core) laundered(h engine.Handle) {
	c.finishEv = h // want "engine.Handle stored into field finishEv"
	local := h     // locals live within the callback: fine
	_ = local
	c.finishEv = h //simlint:allow handle fixture demonstrates an allowed relayed store
}

var table [8]engine.Handle
var list []engine.Handle

func collections(h engine.Handle) {
	table[0] = h              // want "engine.Handle stored into a collection element"
	list = append(list, h)    // want "engine.Handle appended to a slice"
}
