// Package engine is a stub of the real event engine for the handle
// fixture: the pass matches the Handle and Engine types by name and
// import-path suffix, and exempts this package itself (it implements
// the pool, so it manipulates raw handles by construction).
package engine

type Time int64

type event struct{ gen uint32 }

type Handle struct {
	ev  *event
	gen uint32
}

func (h Handle) Pending() bool { return h.ev != nil && h.ev.gen == h.gen }

type Engine struct {
	scratch Handle
	free    []Handle
}

func (e *Engine) Schedule(at Time, fn func()) Handle {
	h := Handle{ev: &event{}, gen: 1}
	e.scratch = h          // in-engine store: exempt
	e.free = append(e.free, h) // in-engine collection: exempt
	return h
}

func (e *Engine) After(d Time, fn func()) Handle {
	return e.Schedule(d, fn)
}
