// Package hot is a hotpath fixture: functions annotated
// //simlint:hotpath must not allocate per call.
package hot

import "fmt"

type item struct{ a, b, c int }

var callbacks []func() int
var out []int
var boxed interface{}

//simlint:hotpath
func hot(items []item) {
	for i := range items {
		callbacks = append(callbacks, // want "append in a hot path may grow"
			func() int { return i }) // want "closure captures loop variable i"
	}
	fmt.Println("hot") // want "fmt.Println in a hot path allocates"
	boxed = items[0]   // want "value of type item boxed into interface\{\} in a hot path"
	out = append(out, len(items)) //simlint:allow hotpath fixture demonstrates an allowed free-list-style append
	if len(items) > 1<<20 {
		panic(fmt.Sprintf("too many items: %d", len(items))) // failure path: exempt
	}
}

// cold has the identical body but no annotation: the hotpath contract is
// opt-in, so nothing is flagged.
func cold(items []item) {
	for i := range items {
		callbacks = append(callbacks, func() int { return i })
	}
	fmt.Println("cold")
	boxed = items[0]
}

//simlint:hotpath
func hoisted(items []item, f func() int) int {
	// Pointer-shaped values box without allocating; closures defined
	// outside loops allocate once.
	g := func() int { return f() + 1 }
	boxed = &items[0]
	return g()
}

//simlint:hotpath
func forLoopCapture(n int) {
	for i := 0; i < n; i++ {
		callbacks = append(callbacks, // want "append in a hot path may grow"
			func() int { return i * 2 }) // want "closure captures loop variable i"
	}
}

func variadic(vs ...interface{}) int { return len(vs) }

//simlint:hotpath
func boxingForms(items []item, ch chan interface{}, pre []interface{}) interface{} {
	ch <- items[0]   // want "value of type item boxed into interface\{\} in a hot path"
	_ = variadic(items[1]) // want "value of type item boxed into interface\{\} in a hot path"
	_ = variadic(pre...)   // spreading an existing []interface{}: no box
	_ = variadic(nil, 3)   // untyped nil and constants: no box
	return items[2] // want "value of type item boxed into interface\{\} in a hot path"
}
