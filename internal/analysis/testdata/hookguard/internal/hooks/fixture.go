// Package hooks is a hookguard rule A fixture: calls through optional
// func-typed hook fields must be dominated by a nil check.
package hooks

type Config struct {
	OnDispatch func(int)
	OnDone     func()
	Cover      func(int)
}

func unguarded(cfg *Config) {
	cfg.OnDispatch(1) // want "call through optional hook field cfg.OnDispatch is not dominated by a nil check"
	cfg.OnDone()      //simlint:allow hookguard fixture demonstrates an allowed unguarded hook call
}

func guardedThen(cfg *Config) {
	if cfg.OnDispatch != nil {
		cfg.OnDispatch(2)
	}
	if cfg.OnDispatch != nil && cfg.OnDone != nil {
		cfg.OnDispatch(3)
		cfg.OnDone()
	}
}

func guardedEarlyReturn(cfg *Config) {
	if cfg.Cover == nil {
		return
	}
	cfg.Cover(4)
}

func guardedElse(cfg *Config, deliver func()) {
	if cfg.Cover == nil {
		deliver()
	} else {
		cfg.Cover(5)
	}
}

func guardedPanic(cfg *Config) {
	if cfg.Cover == nil {
		panic("cover hook required here")
	}
	cfg.Cover(6)
}

func localCopy(cfg *Config) {
	// Copying the hook to a local and checking the copy is the caller's
	// own idiom: calls through locals are out of scope for rule A.
	done := cfg.OnDone
	if done != nil {
		done()
	}
}
