// Package modelcov is a hookguard rule B fixture: the real modelcov.Map
// promises nil-receiver tolerance (a disabled coverage hook is a nil
// *Map), so exported pointer-receiver methods that dereference the
// receiver must open with a nil guard.
package modelcov

type Map struct {
	counts [4]uint64
}

func (m *Map) Hit(i int) {
	if m == nil {
		return
	}
	m.counts[i]++
}

func (m *Map) Count(i int) uint64 { // want "uses its receiver without a leading nil guard"
	return m.counts[i]
}

// Covered delegates every receiver use to nil-guarded methods: safe.
func (m *Map) Covered() uint64 {
	return m.Count(0) + m.Count(1)
}

// Reset is nil-safe via its own leading guard.
func (m *Map) Reset() {
	if m == nil {
		return
	}
	m.counts = [4]uint64{}
}

//simlint:allow hookguard fixture demonstrates an allowed unguarded receiver
func (m *Map) Total(i int) uint64 {
	return m.counts[i] + 1
}

// Bucket's guard nil-tests the receiver as one disjunct of a wider
// condition: still a leading guard.
func (m *Map) Bucket(i int) uint64 {
	if m == nil || i < 0 || i >= len(m.counts) {
		return 0
	}
	return m.counts[i]
}

// lowercase methods are internal: callers inside the package guard.
func (m *Map) raw() [4]uint64 { return m.counts }
