package analysis

import "testing"

func TestIsModelPackage(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"holdcsim/internal/engine", true},
		{"holdcsim/internal/engine [holdcsim/internal/engine.test]", true},
		{"holdcsim/internal/scenario", true},
		{"holdcsim/internal/scenario/sub", true}, // scoped by top-level name
		{"holdcsim/internal/analysis", false},    // the suite itself is not a model
		{"holdcsim/cmd/benchrunner", true},       // every cmd/ is in scope
		{"holdcsim/cmd/simlint", true},
		{"holdcsim", false},
		{"holdcsim/examples/basic", false},
		{"fmt", false},
		{"golang.org/x/tools/go/ast", false},
	}
	for _, c := range cases {
		if got := isModelPackage(c.path); got != c.want {
			t.Errorf("isModelPackage(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestCanonicalPath(t *testing.T) {
	cases := [][2]string{
		{"p", "p"},
		{"p [p.test]", "p"},
		{"holdcsim/internal/engine [holdcsim/internal/engine.test]", "holdcsim/internal/engine"},
	}
	for _, c := range cases {
		if got := canonicalPath(c[0]); got != c[1] {
			t.Errorf("canonicalPath(%q) = %q, want %q", c[0], got, c[1])
		}
	}
}

func TestPackageSuffix(t *testing.T) {
	if got := packageSuffix("holdcsim/internal/modelcov"); got != "internal/modelcov" {
		t.Errorf("packageSuffix = %q", got)
	}
}

func TestPassNamesMatchSuite(t *testing.T) {
	names := passNames()
	for _, a := range Suite() {
		if !names[a.Name] {
			t.Errorf("passNames missing %q", a.Name)
		}
	}
	if names["wallclock"] {
		t.Error("passNames contains an analyzer that does not exist")
	}
}
