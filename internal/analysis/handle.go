package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// HandleAnalyzer enforces the pooled-handle discipline. engine.Handle is
// a generation-counted reference into the event pool: the pointed-at
// event is recycled after it fires or is canceled, and only the
// generation check (Handle.Pending) makes a stale handle detectable.
// Storing a handle anywhere that outlives the event callback is safe
// only through the sanctioned idiom:
//
//	c.finishEv = c.srv.eng.After(dur, c.finishCB) // fresh from the engine
//	c.finishEv = engine.Handle{}                  // explicit invalidation
//
// The pass flags every store of an engine.Handle value into a struct
// field whose right-hand side is neither a direct Schedule/After call on
// the engine nor the zero Handle, and every store into a slice or map
// element or append — collections of handles have no single
// re-validation point, so they are banned outright (annotate with a
// reason if a future subsystem genuinely needs one). The engine package
// itself, which implements the pool, is exempt.
var HandleAnalyzer = &Analyzer{
	Name: "handle",
	Doc: "generation-counted engine.Handle values must be stored only " +
		"fresh from Schedule/After or as the zero Handle, never in collections",
	Run: runHandle,
}

func runHandle(p *Pass) {
	path := packageSuffix(p.Pkg.Path())
	if !isFirstParty(p.Pkg.Path()) || path == "internal/engine" {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				checkHandleAssign(p, n)
			case *ast.CallExpr:
				checkHandleAppend(p, n)
			}
			return true
		})
	}
}

// isEngineHandle reports whether t is the engine.Handle type (matched by
// name and path suffix so fixture stubs of internal/engine count too).
func isEngineHandle(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Handle" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/engine")
}

func checkHandleAssign(p *Pass, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		t := p.TypesInfo.TypeOf(lhs)
		if t == nil || !isEngineHandle(t) {
			continue
		}
		switch target := ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr:
			// Field store: fine if the field is on a loop/callback-local
			// value? No — fields outlive by assumption. Sanctioned RHS only.
			if obj, ok := p.TypesInfo.Uses[target.Sel].(*types.Var); !ok || !obj.IsField() {
				continue // selector over a local struct var package-level? still a var; be strict only on fields
			}
			if sanctionedHandleRHS(p, as.Rhs[i]) {
				continue
			}
			p.Reportf(as.Pos(),
				"engine.Handle stored into field %s from %s: handles go stale when the event pool recycles — store only a fresh Schedule/After result or the zero Handle",
				target.Sel.Name, types.ExprString(as.Rhs[i]))
		case *ast.IndexExpr:
			p.Reportf(as.Pos(),
				"engine.Handle stored into a collection element: collections of pooled handles have no re-validation point — keep the handle in a field with the sanctioned idiom")
		}
	}
}

// sanctionedHandleRHS recognizes the two legal sources for a stored
// handle: the zero Handle literal, or a direct Schedule/After/NewTimer-
// style call on the engine (any method of *engine.Engine returning a
// Handle).
func sanctionedHandleRHS(p *Pass, rhs ast.Expr) bool {
	switch rhs := ast.Unparen(rhs).(type) {
	case *ast.CompositeLit:
		return len(rhs.Elts) == 0 // engine.Handle{} — explicit invalidation
	case *ast.CallExpr:
		sel, ok := ast.Unparen(rhs.Fun).(*ast.SelectorExpr)
		if !ok {
			return false
		}
		fn, ok := p.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok {
			return false
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return false
		}
		recv := sig.Recv().Type()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		named, ok := recv.(*types.Named)
		if !ok {
			return false
		}
		obj := named.Obj()
		return obj.Name() == "Engine" && obj.Pkg() != nil &&
			strings.HasSuffix(obj.Pkg().Path(), "internal/engine")
	}
	return false
}

func checkHandleAppend(p *Pass, call *ast.CallExpr) {
	b, ok := p.TypesInfo.Uses[calleeIdent(call)].(*types.Builtin)
	if !ok || b.Name() != "append" || len(call.Args) < 2 {
		return
	}
	for _, arg := range call.Args[1:] {
		t := p.TypesInfo.TypeOf(arg)
		if t == nil {
			continue
		}
		if sl, ok := t.(*types.Slice); ok && call.Ellipsis.IsValid() {
			t = sl.Elem()
		}
		if isEngineHandle(t) {
			p.Reportf(call.Pos(),
				"engine.Handle appended to a slice: collections of pooled handles have no re-validation point — keep handles in dedicated fields with the sanctioned idiom")
			return
		}
	}
}
