package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotpathAnalyzer enforces the zero-alloc contract on functions
// annotated //simlint:hotpath — the per-event and per-packet paths whose
// allocation-free operation the PR 7/PR 9 CI gates measure dynamically.
// Inside an annotated function it flags:
//
//   - closure literals inside a loop that capture a loop variable: each
//     such literal allocates per iteration (the repo idiom is a closure
//     cached once at construction, cf. network.newPacket);
//   - calls into package fmt (allocation + reflection), except inside
//     panic arguments, which are off the happy path by construction;
//   - implicit interface-boxing conversions of non-pointer-shaped
//     values (assignments, call arguments, sends, returns), which
//     heap-allocate the boxed copy;
//   - growable appends — any append not annotated
//     //simlint:allow hotpath <reason>. Free-list pushes are amortized
//     O(1) and carry the annotation; anything else must pre-size.
var HotpathAnalyzer = &Analyzer{
	Name: "hotpath",
	Doc: "bans per-call allocation inside //simlint:hotpath functions: " +
		"loop-capturing closures, fmt, interface boxing, growable appends",
	Run: runHotpath,
}

func runHotpath(p *Pass) {
	if !isFirstParty(p.Pkg.Path()) {
		return
	}
	for fd := range p.ann.hotpath {
		if fd.Body == nil {
			continue
		}
		checkHotFunc(p, fd)
	}
}

// loopInfo records one for/range loop inside a hot function: its source
// extent and the variables its header defines.
type loopInfo struct {
	pos, end token.Pos
	vars     map[types.Object]bool
}

func checkHotFunc(p *Pass, fd *ast.FuncDecl) {
	loops := collectLoops(p, fd.Body)
	var panicRanges []loopInfo // reuse the extent shape for panic() args
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if b, ok := p.TypesInfo.Uses[calleeIdent(call)].(*types.Builtin); ok && b.Name() == "panic" {
			panicRanges = append(panicRanges, loopInfo{pos: call.Pos(), end: call.End()})
		}
		return true
	})
	insidePanic := func(pos token.Pos) bool {
		for _, r := range panicRanges {
			if r.pos <= pos && pos < r.end {
				return true
			}
		}
		return false
	}

	var sig *types.Signature
	if obj, ok := p.TypesInfo.Defs[fd.Name].(*types.Func); ok {
		sig = obj.Type().(*types.Signature)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkLoopCapture(p, n, loops)
		case *ast.CallExpr:
			checkHotCall(p, n, insidePanic)
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					checkBoxing(p, n.Rhs[i], p.TypesInfo.TypeOf(n.Lhs[i]))
				}
			}
		case *ast.SendStmt:
			if ch, ok := p.TypesInfo.TypeOf(n.Chan).Underlying().(*types.Chan); ok {
				checkBoxing(p, n.Value, ch.Elem())
			}
		case *ast.ReturnStmt:
			if sig != nil && sig.Results().Len() == len(n.Results) {
				for i, r := range n.Results {
					checkBoxing(p, r, sig.Results().At(i).Type())
				}
			}
		}
		return true
	})
}

// collectLoops records every for/range loop in body with the objects its
// header defines.
func collectLoops(p *Pass, body *ast.BlockStmt) []loopInfo {
	var loops []loopInfo
	addDef := func(vars map[types.Object]bool, e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id != nil {
			if obj := p.TypesInfo.Defs[id]; obj != nil {
				vars[obj] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			vars := map[types.Object]bool{}
			if as, ok := n.Init.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
				for _, lhs := range as.Lhs {
					addDef(vars, lhs)
				}
			}
			loops = append(loops, loopInfo{pos: n.Pos(), end: n.End(), vars: vars})
		case *ast.RangeStmt:
			vars := map[types.Object]bool{}
			addDef(vars, n.Key)
			addDef(vars, n.Value)
			loops = append(loops, loopInfo{pos: n.Pos(), end: n.End(), vars: vars})
		}
		return true
	})
	return loops
}

// checkLoopCapture flags a closure literal that sits inside a loop and
// captures one of that loop's variables: one allocation per iteration,
// exactly what the cached-closure idiom exists to avoid. A literal
// outside any enclosing loop is a single allocation and legal (though
// unusual on a hot path).
func checkLoopCapture(p *Pass, fl *ast.FuncLit, loops []loopInfo) {
	for _, l := range loops {
		if fl.Pos() < l.pos || fl.Pos() >= l.end || len(l.vars) == 0 {
			continue
		}
		var captured types.Object
		ast.Inspect(fl.Body, func(m ast.Node) bool {
			if captured != nil {
				return false
			}
			if id, ok := m.(*ast.Ident); ok {
				if obj := p.TypesInfo.Uses[id]; obj != nil && l.vars[obj] {
					captured = obj
				}
			}
			return true
		})
		if captured != nil {
			p.Reportf(fl.Pos(),
				"closure captures loop variable %s in a hot path: allocates per iteration — hoist it or use the cached-closure idiom",
				captured.Name())
			return
		}
	}
}

func checkHotCall(p *Pass, call *ast.CallExpr, insidePanic func(token.Pos) bool) {
	if insidePanic(call.Pos()) {
		return // panic arguments are off the happy path by construction
	}
	// fmt calls.
	if fn := calleeFunc(p, call); fn != nil && fn.Pkg().Path() == "fmt" {
		p.Reportf(call.Pos(),
			"fmt.%s in a hot path allocates: format off the hot path or annotate //simlint:allow hotpath <reason>",
			fn.Name())
	}
	// Growable appends.
	if b, ok := p.TypesInfo.Uses[calleeIdent(call)].(*types.Builtin); ok && b.Name() == "append" {
		p.Reportf(call.Pos(),
			"append in a hot path may grow and allocate: pre-size the slice or annotate //simlint:allow hotpath <reason>")
		return
	}
	// Interface-boxing at call arguments.
	sig, ok := p.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return // conversion or builtin
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if call.Ellipsis != token.NoPos {
				pt = last // s... passes the slice through, no boxing
			} else if sl, ok := last.(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		checkBoxing(p, arg, pt)
	}
}

// checkBoxing flags an implicit conversion of a non-pointer-shaped
// concrete value to an interface type: the compiler heap-allocates the
// boxed copy (modulo small-value interning). Pointer-shaped kinds
// (pointers, channels, maps, funcs), untyped constants, and values
// already of interface type are exempt.
func checkBoxing(p *Pass, e ast.Expr, target types.Type) {
	if e == nil || target == nil {
		return
	}
	if _, ok := target.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := p.TypesInfo.Types[e]
	if !ok || tv.Type == nil || tv.IsNil() {
		return
	}
	if tv.Value != nil {
		return // constant: interned or compile-time box
	}
	switch u := tv.Type.Underlying().(type) {
	case *types.Interface:
		return // interface-to-interface, no box
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // pointer-shaped, boxes without allocating
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			return
		}
	}
	p.Reportf(e.Pos(),
		"value of type %s boxed into %s in a hot path: heap-allocates — keep the concrete type or pass a pointer",
		types.TypeString(tv.Type, types.RelativeTo(p.Pkg)),
		types.TypeString(target, types.RelativeTo(p.Pkg)))
}
