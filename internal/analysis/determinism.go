package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DeterminismAnalyzer enforces the byte-identical-replay contract
// (DESIGN.md Sec. 3) in the model packages: between Build and Collect,
// the only admissible inputs are the seed and the scenario. It flags
//
//   - wall-clock reads: time.Now, time.Since, time.Until;
//   - the global math/rand and math/rand/v2 streams (top-level package
//     functions — explicit *rand.Rand/rng.Source constructors are fine);
//   - environment-derived behavior: os.Getenv, os.LookupEnv, os.Environ;
//   - `range` over a map whose body has observable, order-dependent
//     effects. Bodies made of provably order-insensitive statements —
//     commutative accumulation (x += e, x++, x |= e, …), writes to
//     another map keyed by the loop key, delete by loop key, max/min
//     updates — pass. The collect-keys-then-sort idiom passes when the
//     collected slice is demonstrably sorted later in the same function.
//
// Intentional sites (wall-clock phase timing in reports, CLI banners)
// carry //simlint:allow determinism <reason>.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc: "bans wall clocks, global randomness, environment reads, and " +
		"order-dependent map iteration in deterministic model packages",
	Run: runDeterminism,
}

// bannedFuncs maps package path → function name → short finding text.
var bannedFuncs = map[string]map[string]string{
	"time": {
		"Now":   "wall-clock read",
		"Since": "wall-clock read",
		"Until": "wall-clock read",
	},
	"os": {
		"Getenv":    "environment-derived behavior",
		"LookupEnv": "environment-derived behavior",
		"Environ":   "environment-derived behavior",
	},
}

// randConstructors are the math/rand top-level functions that construct
// explicit generators rather than touching the global stream.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(p *Pass) {
	if !isModelPackage(p.Pkg.Path()) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkBannedCall(p, n)
			case *ast.RangeStmt:
				checkMapRange(p, f, n)
			}
			return true
		})
	}
}

// calleeFunc resolves a call to the package-level function it invokes,
// or nil for methods, locals, builtins and conversions.
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return nil
	}
	fn, ok := p.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil
	}
	return fn
}

func checkBannedCall(p *Pass, call *ast.CallExpr) {
	fn := calleeFunc(p, call)
	if fn == nil {
		return
	}
	pkgPath, name := fn.Pkg().Path(), fn.Name()
	if what, ok := bannedFuncs[pkgPath][name]; ok {
		p.Reportf(call.Pos(), "%s.%s in model package: %s breaks byte-identical replay", pkgPath, name, what)
		return
	}
	if (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !randConstructors[name] {
		p.Reportf(call.Pos(), "global %s.%s in model package: draw from the run's seeded rng.Source instead", pkgPath, name)
	}
}

// checkMapRange flags order-dependent map iteration.
func checkMapRange(p *Pass, file *ast.File, rs *ast.RangeStmt) {
	if _, ok := p.TypesInfo.TypeOf(rs.X).Underlying().(*types.Map); !ok {
		return
	}
	locals := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id != nil {
			if obj := p.TypesInfo.Defs[id]; obj != nil {
				locals[obj] = true
			}
		}
	}
	var keyObj types.Object
	if id, ok := rs.Key.(*ast.Ident); ok {
		keyObj = p.TypesInfo.Defs[id]
	}
	ins := &insensitivity{pass: p, locals: locals, keyObj: keyObj}
	if ins.blockOK(rs.Body, nil) {
		return
	}
	if collectForSort(p, file, rs) {
		return
	}
	p.Reportf(rs.Pos(),
		"map iteration with order-dependent effects (%s): iterate sorted keys, make the body commutative, or annotate //simlint:allow determinism <reason>",
		ins.why)
}

// insensitivity decides whether a loop body's effects commute across
// iteration orders.
type insensitivity struct {
	pass   *Pass
	locals map[types.Object]bool // objects scoped to one iteration
	keyObj types.Object          // the range key variable, if named
	why    string                // first order-dependent construct found
}

func (c *insensitivity) fail(n ast.Node, why string) bool {
	if c.why == "" {
		c.why = why
	}
	_ = n
	return false
}

func (c *insensitivity) blockOK(b *ast.BlockStmt, guard ast.Expr) bool {
	for _, s := range b.List {
		if !c.stmtOK(s, guard) {
			return false
		}
	}
	return true
}

// stmtOK reports whether one statement is order-insensitive. guard is
// the innermost enclosing if condition, consulted for the max/min
// update idiom.
func (c *insensitivity) stmtOK(s ast.Stmt, guard ast.Expr) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		return c.assignOK(s, guard)
	case *ast.IncDecStmt:
		return true // x++ / x-- commute
	case *ast.ExprStmt:
		// delete(m, k) by the loop key commutes; nothing else may call.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if b, ok := c.pass.TypesInfo.Uses[calleeIdent(call)].(*types.Builtin); ok && b.Name() == "delete" {
				if len(call.Args) == 2 && c.isKey(call.Args[1]) {
					return true
				}
				return c.fail(s, "delete not keyed by the loop variable")
			}
		}
		return c.fail(s, "expression statement with effects")
	case *ast.IfStmt:
		if s.Init != nil && !c.stmtOK(s.Init, guard) {
			return false
		}
		if !c.pure(s.Cond) {
			return c.fail(s, "impure if condition")
		}
		if !c.blockOK(s.Body, s.Cond) {
			return false
		}
		switch e := s.Else.(type) {
		case nil:
			return true
		case *ast.BlockStmt:
			return c.blockOK(e, nil)
		case *ast.IfStmt:
			return c.stmtOK(e, guard)
		}
		return c.fail(s, "unsupported else form")
	case *ast.BlockStmt:
		return c.blockOK(s, guard)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return c.fail(s, "non-var declaration")
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				return c.fail(s, "non-value var spec")
			}
			for _, v := range vs.Values {
				if !c.pure(v) {
					return c.fail(s, "impure var initializer")
				}
			}
			for _, name := range vs.Names {
				if obj := c.pass.TypesInfo.Defs[name]; obj != nil {
					c.locals[obj] = true
				}
			}
		}
		return true
	case *ast.BranchStmt:
		// A bare continue commutes; break/goto make the set of executed
		// iterations order-dependent.
		if s.Tok == token.CONTINUE && s.Label == nil {
			return true
		}
		return c.fail(s, s.Tok.String()+" exits the loop order-dependently")
	case *ast.RangeStmt:
		// A nested range over a map is checked on its own; for the outer
		// loop's insensitivity only the nested body's effects matter.
		if s.X != nil && !c.pure(s.X) {
			return c.fail(s, "impure nested range expression")
		}
		c.addDef(s.Key)
		c.addDef(s.Value)
		return c.blockOK(s.Body, nil)
	case *ast.ForStmt:
		if s.Init != nil && !c.stmtOK(s.Init, nil) {
			return false
		}
		if s.Cond != nil && !c.pure(s.Cond) {
			return c.fail(s, "impure nested for condition")
		}
		if s.Post != nil && !c.stmtOK(s.Post, nil) {
			return false
		}
		return c.blockOK(s.Body, nil)
	case *ast.SwitchStmt:
		if s.Init != nil && !c.stmtOK(s.Init, nil) {
			return false
		}
		if s.Tag != nil && !c.pure(s.Tag) {
			return c.fail(s, "impure switch tag")
		}
		for _, cc := range s.Body.List {
			clause := cc.(*ast.CaseClause)
			for _, e := range clause.List {
				if !c.pure(e) {
					return c.fail(s, "impure case expression")
				}
			}
			for _, st := range clause.Body {
				if !c.stmtOK(st, nil) {
					return false
				}
			}
		}
		return true
	case *ast.EmptyStmt:
		return true
	}
	return c.fail(s, "order-dependent statement")
}

func (c *insensitivity) addDef(e ast.Expr) {
	if id, ok := e.(*ast.Ident); ok && id != nil {
		if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
			c.locals[obj] = true
		}
	}
}

func (c *insensitivity) assignOK(s *ast.AssignStmt, guard ast.Expr) bool {
	for _, rhs := range s.Rhs {
		if !c.pure(rhs) {
			return c.fail(s, "impure assignment right-hand side")
		}
	}
	switch s.Tok {
	case token.DEFINE:
		for _, lhs := range s.Lhs {
			c.addDef(lhs)
		}
		return true
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// Commutative accumulation: final value independent of order.
		return true
	case token.ASSIGN:
		if len(s.Lhs) != len(s.Rhs) {
			return c.fail(s, "tuple assignment")
		}
		for i, lhs := range s.Lhs {
			if c.rootedInLocal(lhs) {
				continue // per-iteration state
			}
			if ix, ok := lhs.(*ast.IndexExpr); ok {
				// m2[k] = v: per-key slots commute across orders.
				if _, isMap := c.pass.TypesInfo.TypeOf(ix.X).Underlying().(*types.Map); isMap && c.isKey(ix.Index) {
					continue
				}
				return c.fail(s, "indexed write not keyed by the loop variable")
			}
			// Max/min update: `if v > best { best = v }` commutes.
			if guard != nil && isExtremumUpdate(guard, lhs, s.Rhs[i]) {
				continue
			}
			return c.fail(s, "plain assignment to shared state")
		}
		return true
	}
	return c.fail(s, "unsupported assignment operator")
}

// rootedInLocal reports whether an lvalue is (a component of) a
// per-iteration local: the blank identifier, a loop-scoped variable, or
// a selector/index/deref chain rooted at one.
func (c *insensitivity) rootedInLocal(e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if x.Name == "_" {
				return true
			}
			obj := c.pass.TypesInfo.Uses[x]
			if obj == nil {
				obj = c.pass.TypesInfo.Defs[x]
			}
			return c.locals[obj]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
}

// isKey reports whether e is exactly the loop's key variable. Exact
// identity is required — a derived expression like m2[k+1] or
// delete(m2, f(k)) is not injective in general, so a per-key-slot
// argument cannot be made for it.
func (c *insensitivity) isKey(e ast.Expr) bool {
	if c.keyObj == nil {
		return false
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && c.pass.TypesInfo.Uses[id] == c.keyObj
}

// pure reports whether evaluating e has no side effects: no calls (bar
// len/cap/min/max and type conversions), no channel receives.
func (c *insensitivity) pure(e ast.Expr) bool {
	if e == nil {
		return true
	}
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if c.pass.TypesInfo.Types[n.Fun].IsType() {
				return true // conversion
			}
			if b, ok := c.pass.TypesInfo.Uses[calleeIdent(n)].(*types.Builtin); ok {
				switch b.Name() {
				case "len", "cap", "min", "max", "real", "imag", "complex":
					return true
				}
			}
			pure = false
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pure = false
				return false
			}
		case *ast.FuncLit:
			return false // a literal is inert until called
		}
		return pure
	})
	return pure
}

// calleeIdent extracts the identifier a call invokes, if it is a plain
// identifier (builtins always are).
func calleeIdent(call *ast.CallExpr) *ast.Ident {
	id, _ := ast.Unparen(call.Fun).(*ast.Ident)
	return id
}

// isExtremumUpdate recognizes `if y OP x { x = y }` for a comparison OP,
// the commutative max/min-update idiom, by textual operand match.
func isExtremumUpdate(cond, lhs, rhs ast.Expr) bool {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch b.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return false
	}
	lt, rt := types.ExprString(lhs), types.ExprString(rhs)
	cx, cy := types.ExprString(b.X), types.ExprString(b.Y)
	return (cx == lt && cy == rt) || (cx == rt && cy == lt)
}

// collectForSort recognizes the canonical deterministic-iteration idiom:
//
//	keys := make([]K, 0, len(m))
//	for k := range m { keys = append(keys, k) }
//	sort.Slice(keys, …)   // or slices.Sort*(keys)
//
// The append-only loop is order-sensitive in isolation; it is admitted
// when every appended-to slice is passed to a sort.* / slices.* call
// later in the same function.
func collectForSort(p *Pass, file *ast.File, rs *ast.RangeStmt) bool {
	var slices []string
	for _, s := range rs.Body.List {
		as, ok := s.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		if b, ok := p.TypesInfo.Uses[calleeIdent(call)].(*types.Builtin); !ok || b.Name() != "append" {
			return false
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok || len(call.Args) < 1 || types.ExprString(call.Args[0]) != lhs.Name {
			return false
		}
		slices = append(slices, lhs.Name)
	}
	if len(slices) == 0 {
		return false
	}
	// Find a later sort call covering every collected slice.
	sorted := map[string]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := p.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if pkg := fn.Pkg().Path(); pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			for _, name := range slices {
				if exprMentions(arg, name) {
					sorted[name] = true
				}
			}
		}
		return true
	})
	for _, name := range slices {
		if !sorted[name] {
			return false
		}
	}
	return true
}

func exprMentions(e ast.Expr, name string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}
