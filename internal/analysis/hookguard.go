package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HookguardAnalyzer enforces the nil-guarded-hook contract. Observation
// hooks are optional by design — core.Config.Cover, Config.OnDispatch,
// invariant/sched subscriber fields — and a run without them must not
// panic. Two rules:
//
//   - Rule A: a call through a func-typed struct field (cfg.OnDispatch(…),
//     s.hooks.f(…)) must be dominated by a nil check of that same
//     field — an enclosing `if x.F != nil` (or a guarding early return
//     `if x.F == nil { return }`). Calls through func-typed locals are
//     exempt: copying the field to a local before the check is the
//     callee's own idiom and the copy is what got checked.
//
//   - Rule B: exported pointer-receiver methods on hook-carrying types
//     (modelcov.Map) that dereference the receiver must open with a
//     nil-receiver guard (`if m == nil … return`), so a disabled hook —
//     a nil *Map — is callable without the caller re-checking.
var HookguardAnalyzer = &Analyzer{
	Name: "hookguard",
	Doc: "calls through optional hook fields must be nil-checked; " +
		"nil-tolerant hook types must guard their receivers",
	Run: runHookguard,
}

// nilSafeReceiverTypes names the first-party types whose methods promise
// nil-receiver tolerance (rule B). Path suffix → type name.
var nilSafeReceiverTypes = map[string]string{
	"internal/modelcov": "Map",
}

func runHookguard(p *Pass) {
	if !isFirstParty(p.Pkg.Path()) {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkHookCalls(p, fd)
			checkNilSafeReceiver(p, fd)
		}
	}
}

// checkHookCalls implements rule A inside one function.
func checkHookCalls(p *Pass, fd *ast.FuncDecl) {
	// guards maps the canonical text of a checked expression ("cfg.Cover")
	// to the extent within which the check dominates. Built in a first
	// pass over if statements, consulted in a second over calls.
	type guard struct {
		pos, end token.Pos
	}
	guards := map[string][]guard{}

	addGuard := func(expr string, pos, end token.Pos) {
		guards[expr] = append(guards[expr], guard{pos, end})
	}

	// collect nil-check guards from if statements.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		for _, expr := range nilCheckedExprs(ifs.Cond, token.NEQ) {
			// `if x.F != nil { … }`: dominates the then-block.
			addGuard(expr, ifs.Body.Pos(), ifs.Body.End())
		}
		eqlExprs := nilCheckedExprs(ifs.Cond, token.EQL)
		if ifs.Else != nil {
			// `if x.F == nil || … { … } else { … }`: the field is non-nil
			// throughout the else branch.
			for _, expr := range eqlExprs {
				addGuard(expr, ifs.Else.Pos(), ifs.Else.End())
			}
		}
		if terminates(ifs.Body) {
			for _, expr := range eqlExprs {
				// `if x.F == nil { return }`: dominates everything after in
				// the enclosing function (conservatively: to body end).
				addGuard(expr, ifs.End(), fd.Body.End())
			}
		}
		return true
	})

	dominated := func(expr string, pos token.Pos) bool {
		for _, g := range guards[expr] {
			if g.pos <= pos && pos < g.end {
				return true
			}
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// Only calls through func-typed *fields* — method calls resolve to
		// *types.Func, field hooks to *types.Var.
		obj, ok := p.TypesInfo.Uses[sel.Sel].(*types.Var)
		if !ok || !obj.IsField() {
			return true
		}
		if _, ok := obj.Type().Underlying().(*types.Signature); !ok {
			return true
		}
		expr := types.ExprString(sel)
		if dominated(expr, call.Pos()) {
			return true
		}
		p.Reportf(call.Pos(),
			"call through optional hook field %s is not dominated by a nil check: guard with `if %s != nil`",
			expr, expr)
		return true
	})
}

// nilCheckedExprs extracts from a condition the canonical texts of
// selector expressions compared against nil with op, walking && chains.
// For op==NEQ, `a.F != nil && b.G != nil` yields both; for op==EQL,
// `a.F == nil || b.G == nil` yields both (each branch of the || forces
// the early return).
func nilCheckedExprs(cond ast.Expr, op token.Token) []string {
	var out []string
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		b, ok := ast.Unparen(e).(*ast.BinaryExpr)
		if !ok {
			return
		}
		join := token.LAND
		if op == token.EQL {
			join = token.LOR
		}
		if b.Op == join {
			walk(b.X)
			walk(b.Y)
			return
		}
		if b.Op != op {
			return
		}
		x, y := ast.Unparen(b.X), ast.Unparen(b.Y)
		if isNilIdent(y) {
			if sel, ok := x.(*ast.SelectorExpr); ok {
				out = append(out, types.ExprString(sel))
			}
		} else if isNilIdent(x) {
			if sel, ok := y.(*ast.SelectorExpr); ok {
				out = append(out, types.ExprString(sel))
			}
		}
	}
	walk(cond)
	return out
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// terminates reports whether a block always transfers control out:
// return, panic, or continue/break as its last statement.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id := calleeIdent(call); id != nil && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// checkNilSafeReceiver implements rule B: exported pointer-receiver
// methods on nil-tolerant hook types must open with a nil-receiver
// guard if they use the receiver at all.
func checkNilSafeReceiver(p *Pass, fd *ast.FuncDecl) {
	want, ok := nilSafeReceiverTypes[packageSuffix(p.Pkg.Path())]
	if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 || !fd.Name.IsExported() {
		return
	}
	recv := fd.Recv.List[0]
	star, ok := recv.Type.(*ast.StarExpr)
	if !ok {
		return
	}
	base, ok := star.X.(*ast.Ident)
	if !ok || base.Name != want {
		return
	}
	if len(recv.Names) == 0 || recv.Names[0].Name == "_" {
		return // receiver unused by construction
	}
	recvObj := p.TypesInfo.Defs[recv.Names[0]]
	if recvObj == nil || !derefsObject(p, fd.Body, recvObj) {
		// Never dereferenced — or used only as the receiver of further
		// method calls on the same nil-tolerant type, each of which
		// enforces its own guard. Either way nil-safe.
		return
	}
	if opensWithNilGuard(p, fd.Body, recvObj) {
		return
	}
	p.Reportf(fd.Pos(),
		"exported method (*%s).%s uses its receiver without a leading nil guard: a disabled hook is a nil *%s, open with `if %s == nil { return … }`",
		want, fd.Name.Name, want, recv.Names[0].Name)
}

// derefsObject reports whether body uses obj other than as the sole
// receiver of a method call (m.Count(…) delegates nil-handling to Count;
// m.counts[i] dereferences).
func derefsObject(p *Pass, body *ast.BlockStmt, obj types.Object) bool {
	// Idents appearing as the X of a method-call selector are delegation.
	delegated := map[*ast.Ident]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if _, isMethod := p.TypesInfo.Uses[sel.Sel].(*types.Func); !isMethod {
			return true
		}
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			delegated[id] = true
		}
		return true
	})
	derefs := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.TypesInfo.Uses[id] == obj && !delegated[id] {
			derefs = true
		}
		return !derefs
	})
	return derefs
}

// opensWithNilGuard reports whether the body's first statement is an if
// whose condition nil-tests obj (possibly || more) and whose then-block
// terminates.
func opensWithNilGuard(p *Pass, body *ast.BlockStmt, obj types.Object) bool {
	if len(body.List) == 0 {
		return false
	}
	ifs, ok := body.List[0].(*ast.IfStmt)
	if !ok || !terminates(ifs.Body) {
		return false
	}
	found := false
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		b, ok := ast.Unparen(e).(*ast.BinaryExpr)
		if !ok {
			return
		}
		if b.Op == token.LOR || b.Op == token.LAND {
			walk(b.X)
			walk(b.Y)
			return
		}
		if b.Op != token.EQL {
			return
		}
		x, y := ast.Unparen(b.X), ast.Unparen(b.Y)
		for _, pair := range [][2]ast.Expr{{x, y}, {y, x}} {
			if id, ok := pair[0].(*ast.Ident); ok && isNilIdent(pair[1]) {
				if p.TypesInfo.Uses[id] == obj {
					found = true
				}
			}
		}
	}
	walk(ifs.Cond)
	return found
}

// packageSuffix returns the module-relative path tail used to key
// per-package rule tables ("holdcsim/internal/modelcov" →
// "internal/modelcov").
func packageSuffix(path string) string {
	return strings.TrimPrefix(canonicalPath(path), modulePrefix)
}
