package stats

import (
	"fmt"
	"strings"
)

// Histogram bins scalar samples into fixed-width buckets over [Lo, Hi);
// samples outside the range land in underflow/overflow counters. It backs
// textual distribution summaries in the experiment reports.
type Histogram struct {
	name      string
	lo, hi    float64
	bins      []int64
	underflow int64
	overflow  int64
	total     int64
}

// NewHistogram returns a histogram with n bins over [lo, hi). n must be
// positive and hi > lo.
func NewHistogram(name string, lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters for " + name)
	}
	return &Histogram{name: name, lo: lo, hi: hi, bins: make([]int64, n)}
}

// Add records a sample.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.lo:
		h.underflow++
	case x >= h.hi:
		h.overflow++
	default:
		idx := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.bins)))
		if idx >= len(h.bins) { // guard FP edge at x just below hi
			idx = len(h.bins) - 1
		}
		h.bins[idx]++
	}
}

// Count reports the total number of samples, including out-of-range ones.
func (h *Histogram) Count() int64 { return h.total }

// Bin reports the count in bin i.
func (h *Histogram) Bin(i int) int64 { return h.bins[i] }

// NumBins reports the number of bins.
func (h *Histogram) NumBins() int { return len(h.bins) }

// BinBounds reports the [lo, hi) range of bin i.
func (h *Histogram) BinBounds(i int) (lo, hi float64) {
	w := (h.hi - h.lo) / float64(len(h.bins))
	return h.lo + float64(i)*w, h.lo + float64(i+1)*w
}

// OutOfRange reports the underflow and overflow counts.
func (h *Histogram) OutOfRange() (under, over int64) { return h.underflow, h.overflow }

// String renders a compact ASCII histogram.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n=%d)\n", h.name, h.total)
	maxCount := int64(1)
	for _, c := range h.bins {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range h.bins {
		lo, hi := h.BinBounds(i)
		bar := strings.Repeat("#", int(40*c/maxCount))
		fmt.Fprintf(&b, "[%10.4g, %10.4g) %8d %s\n", lo, hi, c, bar)
	}
	return b.String()
}
