package stats

import (
	"math"
	"testing"

	"holdcsim/internal/simtime"
)

// TestTallyUnboundedRetention is the failing-before half of the reservoir
// bugfix: the default NewTally retains every raw sample, so memory grows
// linearly with the stream, while a reservoir tally of the same stream
// stays at its capacity.
func TestTallyUnboundedRetention(t *testing.T) {
	const n = 200000
	unbounded := NewTally("unbounded")
	bounded := NewReservoirTally("bounded", 1024, 7)
	for i := 0; i < n; i++ {
		x := float64(i%997) / 997
		unbounded.Add(x)
		bounded.Add(x)
	}
	if got := unbounded.Retained(); got != n {
		t.Fatalf("NewTally retained %d samples, want %d (unbounded retention)", got, n)
	}
	if unbounded.Bounded() {
		t.Fatalf("NewTally reports Bounded() = true")
	}
	if got := bounded.Retained(); got != 1024 {
		t.Fatalf("reservoir retained %d samples, want cap 1024", got)
	}
	if !bounded.Bounded() {
		t.Fatalf("reservoir tally reports Bounded() = false")
	}
	if !NewMomentTally("m").Bounded() {
		t.Fatalf("moment tally reports Bounded() = false")
	}
}

// Reservoir mode must keep moments, min, and max exact — only percentile
// queries are approximate.
func TestReservoirMomentsExact(t *testing.T) {
	exact := NewTally("exact")
	res := NewReservoirTally("res", 64, 3)
	for i := 0; i < 50000; i++ {
		x := math.Sin(float64(i)) * float64(i%13)
		exact.Add(x)
		res.Add(x)
	}
	if res.Count() != exact.Count() {
		t.Fatalf("Count: got %d want %d", res.Count(), exact.Count())
	}
	for _, c := range []struct {
		name      string
		got, want float64
	}{
		{"Mean", res.Mean(), exact.Mean()},
		{"Variance", res.Variance(), exact.Variance()},
		{"Min", res.Min(), exact.Min()},
		{"Max", res.Max(), exact.Max()},
		{"Sum", res.Sum(), exact.Sum()},
	} {
		if c.got != c.want {
			t.Errorf("%s: got %v want %v", c.name, c.got, c.want)
		}
	}
}

// The reservoir is a uniform sample, so its percentiles should land near
// the true ones for a large smooth stream.
func TestReservoirPercentileApproximation(t *testing.T) {
	res := NewReservoirTally("res", 4096, 11)
	const n = 100000
	for i := 0; i < n; i++ {
		res.Add(float64(i) / n) // uniform on [0,1)
	}
	for _, p := range []float64{10, 50, 90, 99} {
		got := res.Percentile(p)
		want := p / 100
		if math.Abs(got-want) > 0.03 {
			t.Errorf("p%.0f: got %.4f want ~%.4f", p, got, want)
		}
	}
	if cdf := res.CDF(16); len(cdf) != 16 {
		t.Errorf("CDF points: got %d want 16", len(cdf))
	}
}

// Reservoir replacement draws come from a private deterministic stream:
// same seed and sample sequence, same reservoir.
func TestReservoirDeterministic(t *testing.T) {
	a := NewReservoirTally("a", 128, 42)
	b := NewReservoirTally("b", 128, 42)
	c := NewReservoirTally("c", 128, 43)
	for i := 0; i < 10000; i++ {
		x := float64((i*2654435761)%8191) / 8191
		a.Add(x)
		b.Add(x)
		c.Add(x)
	}
	for _, p := range []float64{25, 50, 75} {
		if a.Percentile(p) != b.Percentile(p) {
			t.Fatalf("same-seed reservoirs diverge at p%.0f", p)
		}
	}
	diff := false
	for _, p := range []float64{5, 25, 50, 75, 95} {
		if a.Percentile(p) != c.Percentile(p) {
			diff = true
		}
	}
	if !diff {
		t.Fatalf("different seeds produced identical reservoirs at every probe")
	}
}

// Interleaving Percentile queries (which sort the reservoir in place) with
// further Adds must not corrupt the sample count or bounds.
func TestReservoirQueryDuringStream(t *testing.T) {
	res := NewReservoirTally("res", 32, 5)
	for i := 0; i < 1000; i++ {
		res.Add(float64(i))
		if i%100 == 50 {
			if got := res.Percentile(50); got < 0 || got > float64(i) {
				t.Fatalf("mid-stream median %v out of range [0,%d]", got, i)
			}
		}
	}
	if res.Retained() != 32 {
		t.Fatalf("retained %d want 32", res.Retained())
	}
	if res.Min() != 0 || res.Max() != 999 {
		t.Fatalf("min/max drifted: %v/%v", res.Min(), res.Max())
	}
}

func TestReservoirDegenerateCapacity(t *testing.T) {
	res := NewReservoirTally("tiny", 0, 0) // clamps to 1; seed 0 must work
	for i := 0; i < 100; i++ {
		res.Add(float64(i))
	}
	if res.Retained() != 1 {
		t.Fatalf("retained %d want 1", res.Retained())
	}
	if res.Count() != 100 {
		t.Fatalf("count %d want 100", res.Count())
	}
}

// AddFractionsTo must agree bit-for-bit with FractionsTo, since core result
// collection aggregates residency fractions across servers and the goldens
// pin those sums byte-identically.
func TestAddFractionsToMatchesFractionsTo(t *testing.T) {
	mk := func() *Residency {
		r := NewResidency("srv")
		r.SetState(0, "idle")
		r.SetState(simtime.Time(1500), "active")
		r.SetState(simtime.Time(2750), "idle")
		r.SetState(simtime.Time(2750), "c1")
		r.SetState(simtime.Time(9001), "c1") // re-entry keeps interval open
		return r
	}
	at := simtime.Time(12345)

	r1, r2 := mk(), mk()
	want := r1.FractionsTo(at)
	got := make(map[string]float64)
	r2.AddFractionsTo(at, got)
	if len(got) != len(want) {
		t.Fatalf("state sets differ: got %v want %v", got, want)
	}
	for s, w := range want {
		if got[s] != w {
			t.Errorf("state %q: got %v want %v (must be bit-identical)", s, got[s], w)
		}
	}

	// Accumulation across trackers equals the sum of individual maps,
	// added in the same order.
	acc := make(map[string]float64)
	r1b, r2b := mk(), mk()
	r2b.SetState(simtime.Time(12000), "wake")
	r1b.AddFractionsTo(at, acc)
	r2b.AddFractionsTo(at, acc)
	wantAcc := make(map[string]float64)
	for s, v := range r1b.FractionsTo(at) {
		wantAcc[s] += v
	}
	for s, v := range r2b.FractionsTo(at) {
		wantAcc[s] += v
	}
	for s, w := range wantAcc {
		if acc[s] != w {
			t.Errorf("accumulated state %q: got %v want %v", s, acc[s], w)
		}
	}
	var before *Residency = NewResidency("unstarted")
	before.AddFractionsTo(at, acc) // must be a no-op, not a panic
}

// AddFractionsTo on a steady-state tracker must not allocate: it is called
// once per server during result collection at hyperscale.
func TestAddFractionsToZeroAlloc(t *testing.T) {
	r := NewResidency("srv")
	r.SetState(0, "idle")
	r.SetState(simtime.Time(1000), "active")
	r.SetState(simtime.Time(2000), "idle")
	into := make(map[string]float64, 8)
	at := simtime.Time(5000)
	r.AddFractionsTo(at, into) // populate keys so map never grows below
	allocs := testing.AllocsPerRun(100, func() {
		r.AddFractionsTo(at, into)
	})
	if allocs != 0 {
		t.Fatalf("AddFractionsTo allocates %v per call, want 0", allocs)
	}
}
