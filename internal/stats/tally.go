// Package stats implements the runtime-statistics substrate of HolDCSim:
// sample tallies with percentiles and CDFs, time-weighted integrals,
// per-state residency trackers, piecewise-constant energy meters, and
// fixed-interval power samplers (the simulator-side equivalent of RAPL /
// power-logger readings used in the paper's validation).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Tally accumulates scalar samples. It keeps running moments (Welford) for
// mean/variance plus, by default, the raw samples so exact percentiles and
// CDFs can be produced — job populations in the paper's experiments are at
// most a few hundred thousand, so retention is cheap.
type Tally struct {
	name    string
	n       int64
	mean    float64
	m2      float64
	min     float64
	max     float64
	samples []float64
	keep    bool
	dirty   bool // samples appended since the last sort
}

// NewTally returns an empty tally that retains samples for percentiles.
func NewTally(name string) *Tally {
	return &Tally{name: name, keep: true, min: math.Inf(1), max: math.Inf(-1)}
}

// NewMomentTally returns a tally that keeps only moments (no percentiles),
// for memory-sensitive large-scale runs.
func NewMomentTally(name string) *Tally {
	return &Tally{name: name, keep: false, min: math.Inf(1), max: math.Inf(-1)}
}

// Name reports the tally's label.
func (t *Tally) Name() string { return t.name }

// Add records one sample.
func (t *Tally) Add(x float64) {
	t.n++
	d := x - t.mean
	t.mean += d / float64(t.n)
	t.m2 += d * (x - t.mean)
	if x < t.min {
		t.min = x
	}
	if x > t.max {
		t.max = x
	}
	if t.keep {
		t.samples = append(t.samples, x)
		t.dirty = true
	}
}

// Count reports the number of samples recorded.
func (t *Tally) Count() int64 { return t.n }

// Mean reports the sample mean (0 when empty).
func (t *Tally) Mean() float64 {
	if t.n == 0 {
		return 0
	}
	return t.mean
}

// Variance reports the unbiased sample variance.
func (t *Tally) Variance() float64 {
	if t.n < 2 {
		return 0
	}
	return t.m2 / float64(t.n-1)
}

// StdDev reports the sample standard deviation.
func (t *Tally) StdDev() float64 { return math.Sqrt(t.Variance()) }

// Min reports the smallest sample (0 when empty, like Mean — empty
// tallies render as zeros, never as ±Inf/NaN, in summary tables).
func (t *Tally) Min() float64 {
	if t.n == 0 {
		return 0
	}
	return t.min
}

// Max reports the largest sample (0 when empty).
func (t *Tally) Max() float64 {
	if t.n == 0 {
		return 0
	}
	return t.max
}

// Sum reports the total of all samples.
func (t *Tally) Sum() float64 { return t.mean * float64(t.n) }

// Percentile reports the p-th percentile (p in [0,100]) using linear
// interpolation between order statistics. It requires sample retention
// and returns 0 when empty.
func (t *Tally) Percentile(p float64) float64 {
	if !t.keep {
		panic("stats: Percentile on moment-only tally " + t.name)
	}
	if len(t.samples) == 0 {
		return 0
	}
	s := t.sorted()
	if !(p > 0) { // includes NaN: degenerate p never indexes out of range
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// CDF returns (x, F(x)) pairs over at most points steps, suitable for
// plotting job-latency CDFs (Fig. 11b).
func (t *Tally) CDF(points int) []CDFPoint {
	if !t.keep {
		panic("stats: CDF on moment-only tally " + t.name)
	}
	s := t.sorted()
	if len(s) == 0 {
		return nil
	}
	if points < 2 {
		points = 2
	}
	out := make([]CDFPoint, 0, points)
	for i := 0; i < points; i++ {
		idx := i * (len(s) - 1) / (points - 1)
		out = append(out, CDFPoint{X: s[idx], F: float64(idx+1) / float64(len(s))})
	}
	return out
}

// String summarizes the tally.
func (t *Tally) String() string {
	return fmt.Sprintf("%s: n=%d mean=%.6g sd=%.6g min=%.6g max=%.6g",
		t.name, t.n, t.Mean(), t.StdDev(), t.Min(), t.Max())
}

// sorted returns the retained samples in ascending order. Percentile and
// CDF queries between Adds reuse the same sorted slice: the sort runs only
// when new samples have arrived since the last query, not on every call.
func (t *Tally) sorted() []float64 {
	if t.dirty {
		sort.Float64s(t.samples)
		t.dirty = false
	}
	return t.samples
}

// CDFPoint is a single point of an empirical CDF.
type CDFPoint struct {
	X float64 // sample value
	F float64 // cumulative probability at X
}
