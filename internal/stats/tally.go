// Package stats implements the runtime-statistics substrate of HolDCSim:
// sample tallies with percentiles and CDFs, time-weighted integrals,
// per-state residency trackers, piecewise-constant energy meters, and
// fixed-interval power samplers (the simulator-side equivalent of RAPL /
// power-logger readings used in the paper's validation).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Tally accumulates scalar samples. It keeps running moments (Welford) for
// mean/variance plus, by default, the raw samples so exact percentiles and
// CDFs can be produced — job populations in the paper's experiments are at
// most a few hundred thousand, so retention is cheap.
type Tally struct {
	name    string
	n       int64
	mean    float64
	m2      float64
	min     float64
	max     float64
	samples []float64
	keep    bool
	dirty   bool   // samples appended since the last sort
	resCap  int    // >0: bound retention to resCap samples (Algorithm R)
	rngSt   uint64 // xorshift64 state for reservoir replacement draws
}

// NewTally returns an empty tally that retains samples for percentiles.
func NewTally(name string) *Tally {
	return &Tally{name: name, keep: true, min: math.Inf(1), max: math.Inf(-1)}
}

// NewMomentTally returns a tally that keeps only moments (no percentiles),
// for memory-sensitive large-scale runs.
func NewMomentTally(name string) *Tally {
	return &Tally{name: name, keep: false, min: math.Inf(1), max: math.Inf(-1)}
}

// NewReservoirTally returns a tally whose retained-sample buffer is bounded
// at capacity via Vitter's Algorithm R, so memory stays O(capacity) no
// matter how many samples arrive. Moments, min, and max remain exact;
// Percentile and CDF become approximations computed over the reservoir
// (a uniform random subset of the stream). Replacement draws come from an
// internal deterministic xorshift64 generator seeded with seed, so the
// tally consumes nothing from the simulation's rng streams and identical
// (seed, sample sequence) pairs yield identical reservoirs.
func NewReservoirTally(name string, capacity int, seed uint64) *Tally {
	if capacity < 1 {
		capacity = 1
	}
	return &Tally{
		name: name, keep: true, min: math.Inf(1), max: math.Inf(-1),
		resCap: capacity,
		rngSt:  splitmix64(seed),
	}
}

// splitmix64 scrambles the user seed into a non-zero xorshift state;
// xorshift64 has an absorbing state at zero.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 0x9e3779b97f4a7c15
	}
	return x
}

// randN draws a uniform value in [0, n) from the tally's private stream.
// Modulo bias at reservoir scales (n up to ~2^40, cap ~2^20) is far below
// the sampling noise of the reservoir itself.
func (t *Tally) randN(n int64) int64 {
	x := t.rngSt
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	t.rngSt = x
	return int64(x % uint64(n))
}

// Retained reports how many raw samples the tally currently holds
// (0 for moment-only tallies; at most the reservoir capacity for
// reservoir tallies).
func (t *Tally) Retained() int { return len(t.samples) }

// Bounded reports whether the tally's memory is bounded regardless of
// sample count (moment-only or reservoir mode).
func (t *Tally) Bounded() bool { return !t.keep || t.resCap > 0 }

// Name reports the tally's label.
func (t *Tally) Name() string { return t.name }

// Add records one sample.
func (t *Tally) Add(x float64) {
	t.n++
	d := x - t.mean
	t.mean += d / float64(t.n)
	t.m2 += d * (x - t.mean)
	if x < t.min {
		t.min = x
	}
	if x > t.max {
		t.max = x
	}
	if t.keep {
		if t.resCap > 0 && len(t.samples) >= t.resCap {
			// Algorithm R: sample x survives with probability cap/n, replacing
			// a uniformly chosen reservoir slot. (The reservoir is a uniform
			// subset under any permutation, so the lazy in-place sort that
			// Percentile performs between Adds does not bias replacement.)
			if j := t.randN(t.n); j < int64(t.resCap) {
				t.samples[j] = x
				t.dirty = true
			}
			return
		}
		t.samples = append(t.samples, x)
		t.dirty = true
	}
}

// Count reports the number of samples recorded.
func (t *Tally) Count() int64 { return t.n }

// Mean reports the sample mean (0 when empty).
func (t *Tally) Mean() float64 {
	if t.n == 0 {
		return 0
	}
	return t.mean
}

// Variance reports the unbiased sample variance.
func (t *Tally) Variance() float64 {
	if t.n < 2 {
		return 0
	}
	return t.m2 / float64(t.n-1)
}

// StdDev reports the sample standard deviation.
func (t *Tally) StdDev() float64 { return math.Sqrt(t.Variance()) }

// Min reports the smallest sample (0 when empty, like Mean — empty
// tallies render as zeros, never as ±Inf/NaN, in summary tables).
func (t *Tally) Min() float64 {
	if t.n == 0 {
		return 0
	}
	return t.min
}

// Max reports the largest sample (0 when empty).
func (t *Tally) Max() float64 {
	if t.n == 0 {
		return 0
	}
	return t.max
}

// Sum reports the total of all samples.
func (t *Tally) Sum() float64 { return t.mean * float64(t.n) }

// Percentile reports the p-th percentile (p in [0,100]) using linear
// interpolation between order statistics. It requires sample retention
// and returns 0 when empty.
func (t *Tally) Percentile(p float64) float64 {
	if !t.keep {
		panic("stats: Percentile on moment-only tally " + t.name)
	}
	if len(t.samples) == 0 {
		return 0
	}
	s := t.sorted()
	if !(p > 0) { // includes NaN: degenerate p never indexes out of range
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// CDF returns (x, F(x)) pairs over at most points steps, suitable for
// plotting job-latency CDFs (Fig. 11b).
func (t *Tally) CDF(points int) []CDFPoint {
	if !t.keep {
		panic("stats: CDF on moment-only tally " + t.name)
	}
	s := t.sorted()
	if len(s) == 0 {
		return nil
	}
	if points < 2 {
		points = 2
	}
	out := make([]CDFPoint, 0, points)
	for i := 0; i < points; i++ {
		idx := i * (len(s) - 1) / (points - 1)
		out = append(out, CDFPoint{X: s[idx], F: float64(idx+1) / float64(len(s))})
	}
	return out
}

// String summarizes the tally.
func (t *Tally) String() string {
	return fmt.Sprintf("%s: n=%d mean=%.6g sd=%.6g min=%.6g max=%.6g",
		t.name, t.n, t.Mean(), t.StdDev(), t.Min(), t.Max())
}

// sorted returns the retained samples in ascending order. Percentile and
// CDF queries between Adds reuse the same sorted slice: the sort runs only
// when new samples have arrived since the last query, not on every call.
func (t *Tally) sorted() []float64 {
	if t.dirty {
		sort.Float64s(t.samples)
		t.dirty = false
	}
	return t.samples
}

// CDFPoint is a single point of an empirical CDF.
type CDFPoint struct {
	X float64 // sample value
	F float64 // cumulative probability at X
}
