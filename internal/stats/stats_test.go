package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"holdcsim/internal/simtime"
)

func TestTallyMoments(t *testing.T) {
	ta := NewTally("x")
	for _, v := range []float64{1, 2, 3, 4, 5} {
		ta.Add(v)
	}
	if ta.Count() != 5 {
		t.Errorf("Count = %d", ta.Count())
	}
	if ta.Mean() != 3 {
		t.Errorf("Mean = %v", ta.Mean())
	}
	if math.Abs(ta.Variance()-2.5) > 1e-12 {
		t.Errorf("Variance = %v, want 2.5", ta.Variance())
	}
	if ta.Min() != 1 || ta.Max() != 5 {
		t.Errorf("Min/Max = %v/%v", ta.Min(), ta.Max())
	}
	if ta.Sum() != 15 {
		t.Errorf("Sum = %v", ta.Sum())
	}
}

func TestTallyEmpty(t *testing.T) {
	ta := NewTally("empty")
	if ta.Mean() != 0 || ta.Variance() != 0 || ta.Percentile(50) != 0 {
		t.Error("empty tally should report zeros")
	}
	if ta.CDF(10) != nil {
		t.Error("empty tally CDF should be nil")
	}
}

func TestTallyPercentiles(t *testing.T) {
	ta := NewTally("p")
	for i := 1; i <= 100; i++ {
		ta.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 100}, {50, 50.5}, {90, 90.1}, {95, 95.05},
	}
	for _, c := range cases {
		if got := ta.Percentile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestTallyPercentileUnsortedInsertions(t *testing.T) {
	ta := NewTally("p")
	for _, v := range []float64{9, 1, 5, 3, 7} {
		ta.Add(v)
	}
	if got := ta.Percentile(50); got != 5 {
		t.Errorf("median = %v, want 5", got)
	}
	// Adding after a percentile query must keep ordering correct.
	ta.Add(0)
	if got := ta.Percentile(0); got != 0 {
		t.Errorf("min after re-add = %v, want 0", got)
	}
}

func TestMomentTallyPanicsOnPercentile(t *testing.T) {
	ta := NewMomentTally("m")
	ta.Add(1)
	defer func() {
		if recover() == nil {
			t.Error("Percentile on moment tally did not panic")
		}
	}()
	ta.Percentile(50)
}

func TestCDFMonotone(t *testing.T) {
	ta := NewTally("cdf")
	for _, v := range []float64{5, 1, 9, 3, 3, 7, 2, 8} {
		ta.Add(v)
	}
	pts := ta.CDF(6)
	if len(pts) == 0 {
		t.Fatal("no CDF points")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].F < pts[i-1].F {
			t.Fatalf("CDF not monotone: %+v", pts)
		}
	}
	if pts[len(pts)-1].F != 1 {
		t.Errorf("final F = %v, want 1", pts[len(pts)-1].F)
	}
}

// Property: percentile is within [min, max] and monotone in p.
func TestPercentileProperty(t *testing.T) {
	f := func(vals []float64, pa, pb uint8) bool {
		if len(vals) == 0 {
			return true
		}
		ta := NewTally("prop")
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			ta.Add(v)
		}
		a := float64(pa) / 2.55 // ~[0,100]
		b := float64(pb) / 2.55
		if a > b {
			a, b = b, a
		}
		va, vb := ta.Percentile(a), ta.Percentile(b)
		return va <= vb && va >= ta.Min() && vb <= ta.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTimeWeighted(t *testing.T) {
	w := NewTimeWeighted("load")
	w.Start(0, 2)
	w.Set(10*simtime.Second, 4)
	w.Set(20*simtime.Second, 0)
	// integral to 30s: 2*10 + 4*10 + 0*10 = 60
	if got := w.IntegralTo(30 * simtime.Second); math.Abs(got-60) > 1e-9 {
		t.Errorf("integral = %v, want 60", got)
	}
	if got := w.MeanTo(30 * simtime.Second); math.Abs(got-2) > 1e-9 {
		t.Errorf("mean = %v, want 2", got)
	}
	if w.Min() != 0 || w.Max() != 4 {
		t.Errorf("min/max = %v/%v", w.Min(), w.Max())
	}
}

func TestTimeWeightedAdjustAndFirstSet(t *testing.T) {
	w := NewTimeWeighted("n")
	w.Set(5*simtime.Second, 1) // first Set acts as Start
	w.Adjust(10*simtime.Second, 2)
	w.Adjust(15*simtime.Second, -3)
	if w.Value() != 0 {
		t.Errorf("value = %v, want 0", w.Value())
	}
	// 1*5 + 3*5 + 0*5 = 20 over [5s, 25s]
	if got := w.IntegralTo(25 * simtime.Second); math.Abs(got-20) > 1e-9 {
		t.Errorf("integral = %v, want 20", got)
	}
	if got := w.MeanTo(25 * simtime.Second); math.Abs(got-1) > 1e-9 {
		t.Errorf("mean = %v, want 1", got)
	}
}

func TestTimeWeightedBackwardsPanics(t *testing.T) {
	w := NewTimeWeighted("bad")
	w.Start(10, 1)
	defer func() {
		if recover() == nil {
			t.Error("backwards Set did not panic")
		}
	}()
	w.Set(5, 2)
}

func TestResidency(t *testing.T) {
	r := NewResidency("srv")
	r.SetState(0, "Active")
	r.SetState(10*simtime.Second, "Idle")
	r.SetState(15*simtime.Second, "Sleep")
	end := 20 * simtime.Second
	if d := r.DurationTo("Active", end); d != 10*simtime.Second {
		t.Errorf("Active = %v", d)
	}
	if d := r.DurationTo("Idle", end); d != 5*simtime.Second {
		t.Errorf("Idle = %v", d)
	}
	if d := r.DurationTo("Sleep", end); d != 5*simtime.Second {
		t.Errorf("Sleep = %v", d)
	}
	fr := r.FractionsTo(end)
	if math.Abs(fr["Active"]-0.5) > 1e-9 || math.Abs(fr["Idle"]-0.25) > 1e-9 {
		t.Errorf("fractions = %v", fr)
	}
	sum := 0.0
	for _, f := range fr {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("fractions sum to %v", sum)
	}
	states := r.States()
	if !sort.StringsAreSorted(states) || len(states) != 3 {
		t.Errorf("States = %v", states)
	}
}

func TestResidencyReentry(t *testing.T) {
	r := NewResidency("srv")
	r.SetState(0, "A")
	r.SetState(5*simtime.Second, "A") // re-enter same state
	r.SetState(10*simtime.Second, "B")
	if d := r.DurationTo("A", 10*simtime.Second); d != 10*simtime.Second {
		t.Errorf("A duration = %v, want 10s", d)
	}
}

// TestResidencyReentryUnflushed pins the same-state fast path: time
// accumulated by re-entering the current state must be visible through
// DurationTo, FractionsTo and States *before* any state change flushes
// it to the duration map.
func TestResidencyReentryUnflushed(t *testing.T) {
	r := NewResidency("srv")
	r.SetState(0, "A")
	r.SetState(4*simtime.Second, "A")
	r.SetState(6*simtime.Second, "A")
	// No transition yet: 6 s of "A" live only in the open interval.
	if d := r.DurationTo("A", 10*simtime.Second); d != 10*simtime.Second {
		t.Errorf("A duration = %v, want 10s", d)
	}
	if fr := r.FractionsTo(10 * simtime.Second); math.Abs(fr["A"]-1) > 1e-9 {
		t.Errorf("fractions = %v, want A=1", fr)
	}
	if states := r.States(); len(states) != 1 || states[0] != "A" {
		t.Errorf("States = %v, want [A]", states)
	}
	// The flush on a real transition must not double-count.
	r.SetState(8*simtime.Second, "B")
	if d := r.DurationTo("A", 10*simtime.Second); d != 8*simtime.Second {
		t.Errorf("A duration after flush = %v, want 8s", d)
	}
	if d := r.DurationTo("B", 10*simtime.Second); d != 2*simtime.Second {
		t.Errorf("B duration = %v, want 2s", d)
	}
}

// Property: residency fractions always sum to ~1 for any transition seq.
func TestResidencyFractionSumProperty(t *testing.T) {
	f := func(steps []uint8) bool {
		r := NewResidency("p")
		now := simtime.Time(0)
		states := []string{"A", "B", "C", "D"}
		r.SetState(now, "A")
		for _, s := range steps {
			now += simtime.Time(s%100+1) * simtime.Millisecond
			r.SetState(now, states[int(s)%len(states)])
		}
		end := now + simtime.Second
		sum := 0.0
		for _, fr := range r.FractionsTo(end) {
			sum += fr
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEnergyMeter(t *testing.T) {
	m := NewEnergyMeter("cpu")
	m.SetPower(0, 100)
	m.SetPower(10*simtime.Second, 50)
	if got := m.EnergyTo(20 * simtime.Second); math.Abs(got-1500) > 1e-9 {
		t.Errorf("energy = %v J, want 1500", got)
	}
	if got := m.MeanPowerTo(20 * simtime.Second); math.Abs(got-75) > 1e-9 {
		t.Errorf("mean power = %v W, want 75", got)
	}
	if m.Power() != 50 {
		t.Errorf("current power = %v", m.Power())
	}
}

func TestPowerSampler(t *testing.T) {
	p := NewPowerSampler(simtime.Second)
	p.Record(0, 10)
	p.Record(simtime.Second, 20)
	p.Record(2*simtime.Second, 30)
	if p.Len() != 3 {
		t.Errorf("Len = %d", p.Len())
	}
	if p.Mean() != 20 {
		t.Errorf("Mean = %v", p.Mean())
	}
}

func TestCompareSeries(t *testing.T) {
	a := []float64{10, 20, 30, 40}
	b := []float64{11, 19, 31, 39}
	mad, sd := CompareSeries(a, b)
	if math.Abs(mad-1) > 1e-9 {
		t.Errorf("meanAbsDiff = %v, want 1", mad)
	}
	if sd <= 0 {
		t.Errorf("stdDiff = %v, want > 0", sd)
	}
	// Identical series.
	mad, sd = CompareSeries(a, a)
	if mad != 0 || sd != 0 {
		t.Errorf("identical series: mad=%v sd=%v", mad, sd)
	}
	// Empty.
	if m, s := CompareSeries(nil, nil); m != 0 || s != 0 {
		t.Errorf("empty series: %v %v", m, s)
	}
	// Unequal lengths truncate.
	if m, _ := CompareSeries([]float64{1, 2, 3}, []float64{1}); m != 0 {
		t.Errorf("truncated compare = %v", m)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram("lat", 0, 10, 5)
	for _, v := range []float64{-1, 0, 1, 2.5, 5, 9.99, 10, 15} {
		h.Add(v)
	}
	if h.Count() != 8 {
		t.Errorf("Count = %d", h.Count())
	}
	under, over := h.OutOfRange()
	if under != 1 || over != 2 {
		t.Errorf("under/over = %d/%d", under, over)
	}
	// bins: [0,2): {0,1} = 2; [2,4): {2.5} = 1; [4,6): {5} = 1; [8,10): {9.99} = 1
	if h.Bin(0) != 2 || h.Bin(1) != 1 || h.Bin(2) != 1 || h.Bin(4) != 1 {
		t.Errorf("bins = %v %v %v %v %v", h.Bin(0), h.Bin(1), h.Bin(2), h.Bin(3), h.Bin(4))
	}
	lo, hi := h.BinBounds(1)
	if lo != 2 || hi != 4 {
		t.Errorf("BinBounds(1) = %v, %v", lo, hi)
	}
	if h.String() == "" {
		t.Error("empty String")
	}
}

func TestHistogramInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid histogram did not panic")
		}
	}()
	NewHistogram("bad", 5, 5, 10)
}

// Property: histogram total equals in-range + out-of-range counts.
func TestHistogramConservationProperty(t *testing.T) {
	f := func(vals []float64) bool {
		h := NewHistogram("p", -100, 100, 10)
		for _, v := range vals {
			if math.IsNaN(v) {
				continue
			}
			h.Add(v)
		}
		var inRange int64
		for i := 0; i < h.NumBins(); i++ {
			inRange += h.Bin(i)
		}
		u, o := h.OutOfRange()
		return inRange+u+o == h.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: EnergyMeter integral of constant power p over t seconds is p*t.
func TestEnergyMeterLinearityProperty(t *testing.T) {
	f := func(p uint16, secs uint8) bool {
		m := NewEnergyMeter("p")
		m.SetPower(0, float64(p))
		end := simtime.Time(secs) * simtime.Second
		got := m.EnergyTo(end)
		want := float64(p) * float64(secs)
		return math.Abs(got-want) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
