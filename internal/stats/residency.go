package stats

import (
	"sort"

	"holdcsim/internal/simtime"
)

// Residency tracks how long an entity spends in each named state — the
// basis of the paper's Fig. 8 (Active / Wake-up / Idle / PkgC6 / SysSleep
// stacked residency bars) and of switch port/line-card state accounting.
type Residency struct {
	name    string
	state   string
	lastT   simtime.Time
	t0      simtime.Time
	cur     simtime.Time // accumulated time in state not yet flushed to dur
	dur     map[string]simtime.Time
	started bool
}

// NewResidency returns an idle tracker; tracking starts at the first
// SetState call.
func NewResidency(name string) *Residency {
	return &Residency{name: name, dur: make(map[string]simtime.Time)}
}

// SetState records a transition to state at time t. Re-entering the
// current state is a no-op for accounting but allowed.
func (r *Residency) SetState(t simtime.Time, state string) {
	if !r.started {
		r.started = true
		r.t0 = t
		r.lastT = t
		r.state = state
		return
	}
	if t < r.lastT {
		panic("stats: Residency time went backwards in " + r.name)
	}
	if state == r.state {
		// Re-entering the current state needs no map write: the open
		// interval accumulates in cur and flushes on the next change.
		// (Simulated time is integer nanoseconds, so splitting the sum
		// is exact.)
		r.cur += t - r.lastT
		r.lastT = t
		return
	}
	r.dur[r.state] += r.cur + (t - r.lastT)
	r.cur = 0
	r.lastT = t
	r.state = state
}

// State reports the current state ("" before the first SetState).
func (r *Residency) State() string { return r.state }

// DurationTo reports total time spent in state up to t (including the
// currently open interval).
func (r *Residency) DurationTo(state string, t simtime.Time) simtime.Time {
	d := r.dur[state]
	if r.started && r.state == state {
		d += r.cur
		if t > r.lastT {
			d += t - r.lastT
		}
	}
	return d
}

// FractionsTo reports, for each observed state, the fraction of total
// tracked time spent in it, up to t.
func (r *Residency) FractionsTo(t simtime.Time) map[string]float64 {
	out := make(map[string]float64)
	if !r.started {
		return out
	}
	total := (t - r.t0).Seconds()
	if total <= 0 {
		return out
	}
	//simlint:allow determinism DurationTo is a pure read and each write is keyed by the loop key
	for s := range r.dur {
		out[s] = r.DurationTo(s, t).Seconds() / total
	}
	if _, seen := out[r.state]; !seen {
		out[r.state] = r.DurationTo(r.state, t).Seconds() / total
	}
	return out
}

// AddFractionsTo accumulates the same per-state fractions FractionsTo
// reports into `into`, without allocating a result map per call. Each
// fraction is computed with the identical division FractionsTo performs
// (same DurationTo numerator, same total-seconds divisor), so aggregates
// built from either path are bit-for-bit equal; only the per-call map
// allocation is gone. Keys this tracker never observed are left untouched.
func (r *Residency) AddFractionsTo(t simtime.Time, into map[string]float64) {
	if !r.started {
		return
	}
	total := (t - r.t0).Seconds()
	if total <= 0 {
		return
	}
	//simlint:allow determinism DurationTo is a pure read and each accumulation is keyed by the loop key
	for s := range r.dur {
		into[s] += r.DurationTo(s, t).Seconds() / total
	}
	if _, tracked := r.dur[r.state]; !tracked {
		into[r.state] += r.DurationTo(r.state, t).Seconds() / total
	}
}

// States reports all observed state names, sorted.
func (r *Residency) States() []string {
	set := make(map[string]bool, len(r.dur)+1)
	for s := range r.dur {
		set[s] = true
	}
	if r.started {
		set[r.state] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
