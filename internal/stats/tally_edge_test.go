package stats

import (
	"math"
	"strings"
	"testing"
)

// TestEmptyTallyIsAllZeros: every summary statistic of an empty tally
// renders as zero — never ±Inf or NaN — so zero-completion experiment
// rows stay plottable.
func TestEmptyTallyIsAllZeros(t *testing.T) {
	ta := NewTally("empty")
	for name, got := range map[string]float64{
		"Mean": ta.Mean(), "StdDev": ta.StdDev(), "Variance": ta.Variance(),
		"Min": ta.Min(), "Max": ta.Max(), "Sum": ta.Sum(),
		"P0": ta.Percentile(0), "P50": ta.Percentile(50), "P100": ta.Percentile(100),
	} {
		if got != 0 {
			t.Errorf("%s = %g on empty tally, want 0", name, got)
		}
	}
	if cdf := ta.CDF(10); cdf != nil {
		t.Errorf("CDF of empty tally = %v, want nil", cdf)
	}
	if s := ta.String(); strings.Contains(s, "Inf") || strings.Contains(s, "NaN") {
		t.Errorf("String() renders non-finite values: %s", s)
	}
}

// TestPercentileDegenerateP: out-of-range and NaN percentile arguments
// clamp to the extremes instead of indexing out of bounds.
func TestPercentileDegenerateP(t *testing.T) {
	ta := NewTally("x")
	ta.Add(1)
	ta.Add(2)
	ta.Add(3)
	cases := map[float64]float64{
		-10: 1, 0: 1, 100: 3, 250: 3, math.NaN(): 1,
	}
	for p, want := range cases {
		if got := ta.Percentile(p); got != want {
			t.Errorf("Percentile(%g) = %g, want %g", p, got, want)
		}
	}
}
