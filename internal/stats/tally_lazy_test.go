package stats

import (
	"testing"
)

// Regression test for the lazy-sort dirty flag: percentile and CDF queries
// interleaved with out-of-order Adds must always see the newest samples in
// sorted position, and repeated queries between Adds must not change the
// answer.
func TestTallyLazySortInterleaved(t *testing.T) {
	ty := NewTally("lazy")
	for _, v := range []float64{5, 1, 9} {
		ty.Add(v)
	}
	if got := ty.Percentile(0); got != 1 {
		t.Fatalf("P0 = %g, want 1", got)
	}
	// Add a new minimum AFTER a query: the dirty flag must force a
	// re-sort on the next query.
	ty.Add(0.5)
	if got := ty.Percentile(0); got != 0.5 {
		t.Fatalf("P0 after out-of-order Add = %g, want 0.5", got)
	}
	if got := ty.Percentile(100); got != 9 {
		t.Fatalf("P100 = %g, want 9", got)
	}
	// Repeated queries with no intervening Add must be stable (and reuse
	// the already-sorted samples).
	first := ty.Percentile(50)
	for i := 0; i < 5; i++ {
		if got := ty.Percentile(50); got != first {
			t.Fatalf("repeated P50 changed: %g then %g", first, got)
		}
	}
	// CDF shares the same lazily sorted view.
	cdf := ty.CDF(4)
	if cdf[0].X != 0.5 || cdf[len(cdf)-1].X != 9 {
		t.Fatalf("CDF endpoints = %g..%g, want 0.5..9", cdf[0].X, cdf[len(cdf)-1].X)
	}
	ty.Add(100)
	cdf = ty.CDF(4)
	if cdf[len(cdf)-1].X != 100 {
		t.Fatalf("CDF max after Add = %g, want 100", cdf[len(cdf)-1].X)
	}
}

// BenchmarkTallyRepeatedPercentiles exercises the query-heavy pattern the
// dirty flag optimizes: many percentile reads per batch of Adds.
func BenchmarkTallyRepeatedPercentiles(b *testing.B) {
	ty := NewTally("bench")
	for i := 0; i < 100_000; i++ {
		ty.Add(float64((i * 7919) % 100_000))
	}
	ty.Percentile(50) // pay the one-time sort outside the loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ty.Percentile(99)
	}
}
