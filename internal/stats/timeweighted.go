package stats

import (
	"holdcsim/internal/simtime"
)

// TimeWeighted tracks a piecewise-constant signal over virtual time and
// integrates it. It backs time-averaged queue lengths, active-server
// counts (Fig. 4), and — via EnergyMeter — power-to-energy integration.
type TimeWeighted struct {
	name     string
	value    float64
	t0       simtime.Time // time of Start
	lastT    simtime.Time // time of last observation
	integral float64      // ∫ value dt in value·seconds, up to lastT
	started  bool
	min, max float64
}

// NewTimeWeighted returns an idle tracker; tracking begins at the first
// Start or Set call.
func NewTimeWeighted(name string) *TimeWeighted {
	return &TimeWeighted{name: name}
}

// Started reports whether tracking has begun.
func (w *TimeWeighted) Started() bool { return w.started }

// Start begins tracking at time t with the given initial value.
func (w *TimeWeighted) Start(t simtime.Time, initial float64) {
	w.started = true
	w.t0 = t
	w.lastT = t
	w.value = initial
	w.integral = 0
	w.min, w.max = initial, initial
}

// Set updates the signal to v at time t, accumulating the integral for the
// elapsed interval at the previous value. t must not be before the last
// observation. The first Set acts as Start. The hot path is kept small
// enough to inline; power metering calls this on every port transition.
func (w *TimeWeighted) Set(t simtime.Time, v float64) {
	if !w.started || t < w.lastT {
		w.setSlow(t, v)
		return
	}
	w.integral += w.value * (t - w.lastT).Seconds()
	w.lastT = t
	w.value = v
	if v < w.min {
		w.min = v
	} else if v > w.max {
		w.max = v
	}
}

// setSlow handles Set's cold cases: the first observation (acts as
// Start) and time running backwards (panic).
func (w *TimeWeighted) setSlow(t simtime.Time, v float64) {
	if !w.started {
		w.Start(t, v)
		return
	}
	panic("stats: TimeWeighted.Set time went backwards in " + w.name)
}

// Adjust adds delta to the current value at time t (convenience for
// counters such as "jobs in system").
func (w *TimeWeighted) Adjust(t simtime.Time, delta float64) {
	w.Set(t, w.value+delta)
}

// Value reports the current signal value.
func (w *TimeWeighted) Value() float64 { return w.value }

// IntegralTo reports ∫ value dt from Start to t, in value·seconds.
// t must not precede the last observation.
func (w *TimeWeighted) IntegralTo(t simtime.Time) float64 {
	if !w.started {
		return 0
	}
	if t < w.lastT {
		panic("stats: TimeWeighted.IntegralTo before last observation in " + w.name)
	}
	return w.integral + w.value*(t-w.lastT).Seconds()
}

// MeanTo reports the time-averaged value from Start to t.
func (w *TimeWeighted) MeanTo(t simtime.Time) float64 {
	if !w.started {
		return 0
	}
	dur := (t - w.t0).Seconds()
	if dur <= 0 {
		return w.value
	}
	return w.IntegralTo(t) / dur
}

// Min reports the smallest observed value.
func (w *TimeWeighted) Min() float64 { return w.min }

// Max reports the largest observed value.
func (w *TimeWeighted) Max() float64 { return w.max }
