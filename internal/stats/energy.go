package stats

import (
	"math"

	"holdcsim/internal/simtime"
)

// EnergyMeter integrates a piecewise-constant power draw (watts) into
// energy (joules). Each modeled component — core, package/uncore, DRAM,
// platform, switch chassis, line card, port — owns one meter; the paper's
// Figs. 5, 6, 9 and 11a aggregate them.
type EnergyMeter struct {
	tw TimeWeighted
}

// NewEnergyMeter returns a meter; integration starts at the first SetPower.
func NewEnergyMeter(name string) *EnergyMeter {
	return &EnergyMeter{tw: TimeWeighted{name: name}}
}

// SetPower records the instantaneous draw w (watts) starting at time t.
// This is the hot path of every port/line-card power transition: it
// maintains only what the meter exposes (current value and integral),
// skipping TimeWeighted's min/max bookkeeping so the accumulate
// inlines. The integral arithmetic is identical to TimeWeighted.Set.
func (m *EnergyMeter) SetPower(t simtime.Time, w float64) {
	tw := &m.tw
	if !tw.started || t < tw.lastT {
		tw.setSlow(t, w)
		return
	}
	tw.integral += tw.value * (t - tw.lastT).Seconds()
	tw.lastT = t
	tw.value = w
}

// Power reports the current draw in watts.
func (m *EnergyMeter) Power() float64 { return m.tw.Value() }

// EnergyTo reports accumulated joules up to time t.
func (m *EnergyMeter) EnergyTo(t simtime.Time) float64 { return m.tw.IntegralTo(t) }

// MeanPowerTo reports the time-averaged draw in watts up to time t.
func (m *EnergyMeter) MeanPowerTo(t simtime.Time) float64 { return m.tw.MeanTo(t) }

// PowerSampler records a power (or any scalar) time series at a fixed
// virtual-time interval — the simulator-side analogue of the 1 Hz power
// logger and RAPL sampling used in the paper's validation (Figs. 12–14).
type PowerSampler struct {
	Interval simtime.Time
	Times    []simtime.Time
	Values   []float64
}

// NewPowerSampler returns a sampler with the given interval.
func NewPowerSampler(interval simtime.Time) *PowerSampler {
	return &PowerSampler{Interval: interval}
}

// Record appends a sample taken at time t.
func (p *PowerSampler) Record(t simtime.Time, v float64) {
	p.Times = append(p.Times, t)
	p.Values = append(p.Values, v)
}

// Len reports the number of samples.
func (p *PowerSampler) Len() int { return len(p.Values) }

// Mean reports the arithmetic mean of the sampled values.
func (p *PowerSampler) Mean() float64 {
	if len(p.Values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range p.Values {
		sum += v
	}
	return sum / float64(len(p.Values))
}

// CompareSeries reports the mean absolute difference and the standard
// deviation of differences between two equally-sampled series, truncated
// to the shorter one — the error metrics the paper reports for validation
// (0.22 W server, 0.12 W switch).
func CompareSeries(a, b []float64) (meanAbsDiff, stdDiff float64) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return 0, 0
	}
	diffs := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		diffs[i] = d
		if d < 0 {
			sum -= d
		} else {
			sum += d
		}
	}
	meanAbsDiff = sum / float64(n)
	mean := 0.0
	for _, d := range diffs {
		mean += d
	}
	mean /= float64(n)
	varSum := 0.0
	for _, d := range diffs {
		varSum += (d - mean) * (d - mean)
	}
	if n > 1 {
		stdDiff = math.Sqrt(varSum / float64(n-1))
	}
	return meanAbsDiff, stdDiff
}
