package engine

import (
	"container/heap"
	"math/rand"
	"testing"

	"holdcsim/internal/simtime"
)

// ---------------------------------------------------------------------
// Reference implementation: the pre-ladder binary-heap scheduler, kept
// here so determinism tests can prove the ladder queue dispatches the
// exact same sequence (DESIGN.md, "Determinism contract").
// ---------------------------------------------------------------------

type refEvent struct {
	at       simtime.Time
	seq      uint64
	id       int
	canceled bool
	index    int
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *refHeap) Push(x any) {
	ev := x.(*refEvent)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

type refEngine struct {
	now  simtime.Time
	seq  uint64
	q    refHeap
	next map[int]*refEvent
}

func newRefEngine() *refEngine { return &refEngine{next: map[int]*refEvent{}} }

func (r *refEngine) schedule(at simtime.Time, id int) {
	ev := &refEvent{at: at, seq: r.seq, id: id}
	r.seq++
	heap.Push(&r.q, ev)
	r.next[id] = ev
}

func (r *refEngine) cancel(id int) {
	if ev, ok := r.next[id]; ok && !ev.canceled && ev.index >= 0 {
		ev.canceled = true
		heap.Remove(&r.q, ev.index)
	}
}

func (r *refEngine) step() (int, simtime.Time, bool) {
	for len(r.q) > 0 {
		ev := heap.Pop(&r.q).(*refEvent)
		if ev.canceled {
			continue
		}
		r.now = ev.at
		return ev.id, ev.at, true
	}
	return 0, 0, false
}

// dispatchRecord is one fired event, identified by the scheduler-assigned
// id and the time it fired.
type dispatchRecord struct {
	id int
	at simtime.Time
}

// scriptOp is one step of a generated schedule/cancel/step script, so the
// exact same workload can be replayed against both implementations.
type scriptOp struct {
	kind   int // 0 = schedule, 1 = cancel, 2 = step
	delay  simtime.Time
	target int // for cancel: index into previously scheduled ids
}

func genScript(r *rand.Rand, n int) []scriptOp {
	ops := make([]scriptOp, n)
	for i := range ops {
		var op scriptOp
		switch k := r.Intn(10); {
		case k < 5: // schedule, mixed horizons to cross all tiers
			op.kind = 0
			switch r.Intn(4) {
			case 0:
				op.delay = simtime.Time(r.Int63n(int64(simtime.Microsecond)))
			case 1:
				op.delay = simtime.Time(r.Int63n(int64(simtime.Millisecond)))
			case 2:
				op.delay = simtime.Time(r.Int63n(int64(10 * simtime.Second)))
			default:
				op.delay = simtime.Time(r.Int63n(int64(simtime.Hour)))
			}
		case k < 7:
			op.kind = 1
			op.target = r.Int()
		default:
			op.kind = 2
		}
		ops[i] = op
	}
	return ops
}

// runLadderScript replays a script on the real engine, returning the
// dispatch sequence.
func runLadderScript(ops []scriptOp) []dispatchRecord {
	e := New()
	var fired []dispatchRecord
	handles := map[int]Handle{}
	nextID := 0
	for _, op := range ops {
		switch op.kind {
		case 0:
			id := nextID
			nextID++
			handles[id] = e.Schedule(e.Now()+op.delay, func() {
				fired = append(fired, dispatchRecord{id: id, at: e.Now()})
			})
		case 1:
			if nextID > 0 {
				e.Cancel(handles[op.target%nextID])
			}
		case 2:
			e.Step()
		}
	}
	e.Run()
	return fired
}

// runRefScript replays the same script on the reference heap.
func runRefScript(ops []scriptOp) []dispatchRecord {
	r := newRefEngine()
	var fired []dispatchRecord
	nextID := 0
	for _, op := range ops {
		switch op.kind {
		case 0:
			r.schedule(r.now+op.delay, nextID)
			nextID++
		case 1:
			if nextID > 0 {
				r.cancel(op.target % nextID)
			}
		case 2:
			if id, at, ok := r.step(); ok {
				fired = append(fired, dispatchRecord{id: id, at: at})
			}
		}
	}
	for {
		id, at, ok := r.step()
		if !ok {
			break
		}
		fired = append(fired, dispatchRecord{id: id, at: at})
	}
	return fired
}

// TestLadderMatchesHeapDeterminism: for the same seed, the ladder queue
// must dispatch the bit-identical sequence the reference binary heap
// does — same events, same order, same timestamps.
func TestLadderMatchesHeapDeterminism(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		ops := genScript(rand.New(rand.NewSource(seed)), 2000)
		got := runLadderScript(ops)
		want := runRefScript(ops)
		if len(got) != len(want) {
			t.Fatalf("seed %d: ladder fired %d events, heap fired %d", seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: dispatch %d diverged: ladder %+v, heap %+v", seed, i, got[i], want[i])
			}
		}
	}
}

// TestLadderSelfDeterminism: two runs of the same script produce the
// identical Dispatched trajectory.
func TestLadderSelfDeterminism(t *testing.T) {
	ops := genScript(rand.New(rand.NewSource(42)), 5000)
	a := runLadderScript(ops)
	b := runLadderScript(ops)
	if len(a) != len(b) {
		t.Fatalf("replay fired %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestPoolHandleSafety: Handles to fired, canceled, and swept events must
// be inert — unable to cancel or observe the pool slot's new occupant.
func TestPoolHandleSafety(t *testing.T) {
	e := New()
	fired := 0
	h1 := e.Schedule(10, func() { fired++ })
	e.Run()
	if fired != 1 {
		t.Fatalf("event fired %d times", fired)
	}
	if h1.Pending() || h1.Canceled() {
		t.Error("handle to fired event reports pending/canceled")
	}
	// The pool recycles the slot for the next event; the stale handle
	// must not be able to cancel the new occupant.
	h2 := e.Schedule(20, func() { fired++ })
	e.Cancel(h1) // stale: must be a no-op
	if !h2.Pending() {
		t.Fatal("stale-handle Cancel hit the recycled event")
	}
	e.Run()
	if fired != 2 {
		t.Fatalf("recycled event did not fire; fired = %d", fired)
	}
	// Canceled handles stay observably canceled until swept, then go
	// inert; double-cancel is always safe.
	h3 := e.Schedule(30, func() { fired++ })
	e.Cancel(h3)
	if !h3.Canceled() || h3.Pending() {
		t.Error("canceled handle state wrong before sweep")
	}
	e.Cancel(h3)
	e.Run()
	if fired != 2 {
		t.Error("canceled event fired")
	}
	// At() stays valid on the handle no matter what happened since.
	if h1.At() != 10 || h2.At() != 20 || h3.At() != 30 {
		t.Errorf("At() = %v, %v, %v; want 10, 20, 30", h1.At(), h2.At(), h3.At())
	}
}

// TestPoolReuseUnderChurn: heavy cancel/reschedule churn must recycle
// events through the pool without a stale handle ever firing or blocking
// a live one.
func TestPoolReuseUnderChurn(t *testing.T) {
	e := New()
	const slots = 100
	firedBy := make([]int, slots)
	handles := make([]Handle, slots)
	stale := make([]Handle, 0, slots*10)
	r := rand.New(rand.NewSource(7))
	for round := 0; round < 20; round++ {
		for i := 0; i < slots; i++ {
			if handles[i].Pending() {
				e.Cancel(handles[i])
				stale = append(stale, handles[i])
			}
			i := i
			handles[i] = e.Schedule(e.Now()+simtime.Time(1+r.Int63n(int64(simtime.Second))), func() {
				firedBy[i]++
			})
		}
		// Poke every stale handle: none of these may do anything.
		for _, h := range stale {
			e.Cancel(h)
			if h.Pending() {
				t.Fatal("stale handle became pending again")
			}
		}
		e.RunUntil(e.Now() + simtime.Millisecond)
	}
	e.Run()
	for i, n := range firedBy {
		if n == 0 {
			t.Fatalf("slot %d: final scheduled event never fired", i)
		}
	}
}

// TestRandomizedScheduleCancelInterleaving is the fuzz-style stress: a
// long random interleaving of schedules (across every tier: bottom,
// bucket, spill, forever), cancels, and steps, checking the global
// invariants the engine must uphold.
func TestRandomizedScheduleCancelInterleaving(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		e := New()
		type tracked struct {
			h        Handle
			at       simtime.Time
			canceled bool
			fired    *bool
		}
		var all []*tracked
		var lastAt simtime.Time
		dispatched := 0
		for op := 0; op < 5000; op++ {
			switch k := r.Intn(10); {
			case k < 5:
				var d simtime.Time
				switch r.Intn(5) {
				case 0:
					d = 0
				case 1:
					d = simtime.Time(r.Int63n(int64(simtime.Microsecond)))
				case 2:
					d = simtime.Time(r.Int63n(int64(simtime.Second)))
				case 3:
					d = simtime.Time(r.Int63n(int64(24 * simtime.Hour)))
				default:
					d = simtime.Forever - e.Now() // forever tier
				}
				fired := false
				tr := &tracked{at: e.Now() + d, fired: &fired}
				tr.h = e.Schedule(tr.at, func() { fired = true })
				all = append(all, tr)
			case k < 8:
				if len(all) > 0 {
					tr := all[r.Intn(len(all))]
					if tr.h.Pending() {
						tr.canceled = true
					}
					e.Cancel(tr.h)
				}
			default:
				// Don't fire forever-tier sentinels mid-script: the
				// clock would jump to Forever and further scheduling
				// would (correctly) panic.
				if at, ok := e.NextEventTime(); !ok || at == simtime.Forever {
					continue
				}
				before := e.Now()
				if e.Step() {
					dispatched++
					if e.Now() < before {
						t.Fatalf("seed %d: clock went backwards %v -> %v", seed, before, e.Now())
					}
					if e.Now() < lastAt {
						t.Fatalf("seed %d: dispatch out of order", seed)
					}
					lastAt = e.Now()
				}
			}
		}
		// Drain everything except forever-tier sentinels.
		for {
			at, ok := e.NextEventTime()
			if !ok || at == simtime.Forever {
				break
			}
			e.Step()
		}
		for i, tr := range all {
			if tr.at == simtime.Forever {
				continue
			}
			if tr.canceled && *tr.fired {
				t.Fatalf("seed %d: event %d fired after cancel", seed, i)
			}
			if !tr.canceled && !*tr.fired {
				t.Fatalf("seed %d: live event %d (at %v) never fired", seed, i, tr.at)
			}
		}
		wantForever := 0
		for _, tr := range all {
			if tr.at == simtime.Forever && !tr.canceled {
				wantForever++
			}
		}
		if e.Len() != wantForever {
			t.Fatalf("seed %d: Len = %d, want %d forever sentinels", seed, e.Len(), wantForever)
		}
	}
}

// TestForeverTierOrdering: sentinels scheduled at simtime.Forever fire
// after every finite event, FIFO among themselves, and stay cancelable.
func TestForeverTierOrdering(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(simtime.Forever, func() { got = append(got, 100) })
	e.Schedule(5, func() { got = append(got, 1) })
	h := e.Schedule(simtime.Forever, func() { got = append(got, 101) })
	e.Schedule(simtime.Forever, func() { got = append(got, 102) })
	e.Schedule(10*simtime.Hour, func() { got = append(got, 2) })
	e.Cancel(h)
	e.Run()
	want := []int{1, 2, 100, 102}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

// TestNearForeverTimestampsNoOverflow reproduces the window-advance
// overflow: finite events spanning up to just below simtime.Forever force
// a huge adapted bucket width, and advancing the window across it must
// collapse to heap mode instead of wrapping base negative (which would
// corrupt bucket routing and could panic on a negative slot index).
func TestNearForeverTimestampsNoOverflow(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(simtime.Second, func() { got = append(got, 1) })
	e.Schedule(simtime.Forever-5, func() { got = append(got, 3) })
	e.Schedule(2*simtime.Second, func() { got = append(got, 2) })
	// Fire the first event, then keep scheduling while the engine works
	// through the enormous span: placements after the window collapses
	// must still dispatch in global (at, seq) order.
	e.Step()
	e.Schedule(3*simtime.Second, func() { got = append(got, 20) })
	e.Run()
	want := []int{1, 2, 20, 3}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
	// The engine must remain usable in degenerate heap mode.
	e.Schedule(e.Now(), func() { got = append(got, 4) })
	e.Run()
	if got[len(got)-1] != 4 {
		t.Fatalf("post-collapse schedule did not fire: %v", got)
	}
}
