package engine

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"holdcsim/internal/simtime"
)

func TestScheduleOrder(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("execution order = %v", got)
	}
	if e.Now() != 30 {
		t.Errorf("Now = %v, want 30", e.Now())
	}
}

func TestTieBreakFIFO(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(100, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events out of scheduling order: %v", got)
		}
	}
}

func TestAfter(t *testing.T) {
	e := New()
	var at simtime.Time
	e.Schedule(50, func() {
		e.After(25, func() { at = e.Now() })
	})
	e.Run()
	if at != 75 {
		t.Errorf("After fired at %v, want 75", at)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New()
	e.Schedule(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	e.Schedule(5, func() {})
}

func TestScheduleNilPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Error("nil fn did not panic")
		}
	}()
	e.Schedule(5, nil)
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	if !ev.Pending() {
		t.Error("event should be pending")
	}
	e.Cancel(ev)
	if ev.Pending() {
		t.Error("canceled event still pending")
	}
	e.Run()
	if fired {
		t.Error("canceled event fired")
	}
	// Double cancel and zero-Handle cancel must be safe.
	e.Cancel(ev)
	e.Cancel(Handle{})
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := New()
	var got []int
	evs := make([]Handle, 10)
	for i := 0; i < 10; i++ {
		i := i
		evs[i] = e.Schedule(simtime.Time(i*10), func() { got = append(got, i) })
	}
	e.Cancel(evs[3])
	e.Cancel(evs[7])
	e.Run()
	want := []int{0, 1, 2, 4, 5, 6, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []simtime.Time
	for _, at := range []simtime.Time{10, 20, 30, 40} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Errorf("fired %v, want events at 10 and 20", fired)
	}
	if e.Now() != 25 {
		t.Errorf("Now = %v, want 25", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 4 {
		t.Errorf("fired %v, want all four", fired)
	}
	if e.Now() != 100 {
		t.Errorf("Now = %v, want 100", e.Now())
	}
}

func TestStopResume(t *testing.T) {
	e := New()
	count := 0
	e.Schedule(10, func() { count++; e.Stop() })
	e.Schedule(20, func() { count++ })
	e.Run()
	if count != 1 {
		t.Errorf("count after Stop = %d, want 1", count)
	}
	e.Resume()
	e.Run()
	if count != 2 {
		t.Errorf("count after Resume = %d, want 2", count)
	}
}

func TestNextEventTime(t *testing.T) {
	e := New()
	if _, ok := e.NextEventTime(); ok {
		t.Error("empty engine reported a next event")
	}
	ev := e.Schedule(42, func() {})
	if at, ok := e.NextEventTime(); !ok || at != 42 {
		t.Errorf("NextEventTime = %v, %v", at, ok)
	}
	e.Cancel(ev)
	if _, ok := e.NextEventTime(); ok {
		t.Error("canceled event still reported as next")
	}
}

func TestDispatchedCounter(t *testing.T) {
	e := New()
	for i := 0; i < 5; i++ {
		e.Schedule(simtime.Time(i), func() {})
	}
	e.Run()
	if e.Dispatched != 5 {
		t.Errorf("Dispatched = %d, want 5", e.Dispatched)
	}
}

// TestHeapOrderProperty: random schedules always execute in nondecreasing
// time order.
func TestHeapOrderProperty(t *testing.T) {
	f := func(times []uint32) bool {
		e := New()
		var fired []simtime.Time
		for _, u := range times {
			at := simtime.Time(u % 1_000_000)
			e.Schedule(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestRandomCancelProperty: canceling a random subset never executes the
// canceled ones and executes all others.
func TestRandomCancelProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		e := New()
		n := 200
		fired := make([]bool, n)
		evs := make([]Handle, n)
		for i := 0; i < n; i++ {
			i := i
			evs[i] = e.Schedule(simtime.Time(r.Intn(1000)), func() { fired[i] = true })
		}
		canceled := make([]bool, n)
		for i := 0; i < n; i++ {
			if r.Intn(3) == 0 {
				canceled[i] = true
				e.Cancel(evs[i])
			}
		}
		e.Run()
		for i := 0; i < n; i++ {
			if canceled[i] && fired[i] {
				t.Fatalf("trial %d: canceled event %d fired", trial, i)
			}
			if !canceled[i] && !fired[i] {
				t.Fatalf("trial %d: live event %d did not fire", trial, i)
			}
		}
	}
}

func TestTimerResetStop(t *testing.T) {
	e := New()
	count := 0
	tm := NewTimer(e, func() { count++ })
	tm.Reset(10)
	if !tm.Armed() {
		t.Error("timer not armed after Reset")
	}
	if tm.Deadline() != 10 {
		t.Errorf("Deadline = %v, want 10", tm.Deadline())
	}
	tm.Reset(20) // re-arm before expiry
	e.Run()
	if count != 1 {
		t.Errorf("timer fired %d times, want 1", count)
	}
	if e.Now() != 20 {
		t.Errorf("fired at %v, want 20", e.Now())
	}

	tm.Reset(5)
	if !tm.Stop() {
		t.Error("Stop did not report a pending cancel")
	}
	if tm.Stop() {
		t.Error("second Stop reported a cancel")
	}
	e.Run()
	if count != 1 {
		t.Errorf("stopped timer fired; count = %d", count)
	}
}

func TestTimerZeroDelay(t *testing.T) {
	e := New()
	fired := false
	e.Schedule(10, func() {
		tm := NewTimer(e, func() { fired = true })
		tm.Reset(0)
	})
	e.Run()
	if !fired {
		t.Error("zero-delay timer did not fire")
	}
}
