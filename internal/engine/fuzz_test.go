package engine

import (
	"container/heap"
	"math/rand"
	"testing"

	"holdcsim/internal/simtime"
)

// This file extends the ladder-vs-reference-heap differential testing
// of ladder_test.go with byte-decoded op scripts that interleave
// Timer.Reset / Timer.Stop with Cancel and re-arm — the exact churn the
// delay-timer and LPI policies generate — and exposes the decoder to a
// native fuzz target. The law is unchanged: for any script, the ladder
// engine must dispatch the bit-identical (id, time) sequence the
// reference binary heap does.

// numFuzzTimers is the fixed pool of restartable timers a script drives.
const numFuzzTimers = 8

// timerIDBase offsets timer dispatch ids away from plain event ids.
const timerIDBase = 1 << 20

// fuzzOp is one decoded operation.
type fuzzOp struct {
	kind  byte // 0 schedule, 1 cancel, 2 step, 3 timer-reset, 4 timer-stop
	delay simtime.Time
	arg   int // cancel target / timer index
}

// decodeScript turns raw fuzz bytes into an op script, three bytes per
// op. The delay byte selects among horizons that land events in every
// ladder tier (bottom, near buckets, spill) plus zero-delay ties.
func decodeScript(data []byte) []fuzzOp {
	ops := make([]fuzzOp, 0, len(data)/3)
	for i := 0; i+2 < len(data); i += 3 {
		op := fuzzOp{kind: data[i] % 5, arg: int(data[i+2])}
		scale := data[i+1]
		var d simtime.Time
		switch scale % 6 {
		case 0:
			d = 0
		case 1:
			d = simtime.Time(scale) * simtime.Nanosecond
		case 2:
			d = simtime.Time(scale) * simtime.Microsecond
		case 3:
			d = simtime.Time(scale) * simtime.Millisecond
		case 4:
			d = simtime.Time(scale) * simtime.Second
		case 5:
			d = simtime.Time(scale) * simtime.Hour
		}
		op.delay = d
		ops = append(ops, op)
	}
	return ops
}

// runLadderFuzzScript replays ops on the real engine with a pool of
// engine.Timers, returning the dispatch sequence.
func runLadderFuzzScript(ops []fuzzOp) []dispatchRecord {
	e := New()
	var fired []dispatchRecord
	timers := make([]*Timer, numFuzzTimers)
	for i := range timers {
		id := timerIDBase + i
		timers[i] = NewTimer(e, func() {
			fired = append(fired, dispatchRecord{id: id, at: e.Now()})
		})
	}
	handles := map[int]Handle{}
	nextID := 0
	for _, op := range ops {
		switch op.kind {
		case 0:
			id := nextID
			nextID++
			handles[id] = e.Schedule(e.Now()+op.delay, func() {
				fired = append(fired, dispatchRecord{id: id, at: e.Now()})
			})
		case 1:
			if nextID > 0 {
				e.Cancel(handles[op.arg%nextID])
			}
		case 2:
			e.Step()
		case 3:
			timers[op.arg%numFuzzTimers].Reset(op.delay)
		case 4:
			timers[op.arg%numFuzzTimers].Stop()
		}
	}
	e.Run()
	return fired
}

// refTimer mirrors engine.Timer semantics on the reference heap: Reset
// cancels the pending expiry and schedules a fresh event (consuming the
// next sequence number, exactly like Timer.Reset's Cancel + After).
type refTimer struct {
	ev *refEvent
}

// runRefFuzzScript replays the same ops on the reference binary heap.
func runRefFuzzScript(ops []fuzzOp) []dispatchRecord {
	r := newRefEngine()
	var fired []dispatchRecord
	timers := make([]refTimer, numFuzzTimers)
	cancelEv := func(ev *refEvent) {
		if ev != nil && !ev.canceled && ev.index >= 0 {
			ev.canceled = true
			heap.Remove(&r.q, ev.index)
		}
	}
	drainOne := func() bool {
		id, at, ok := r.step()
		if ok {
			fired = append(fired, dispatchRecord{id: id, at: at})
		}
		return ok
	}
	nextID := 0
	for _, op := range ops {
		switch op.kind {
		case 0:
			r.schedule(r.now+op.delay, nextID)
			nextID++
		case 1:
			if nextID > 0 {
				r.cancel(op.arg % nextID)
			}
		case 2:
			drainOne()
		case 3:
			ti := op.arg % numFuzzTimers
			cancelEv(timers[ti].ev)
			ev := &refEvent{at: r.now + op.delay, seq: r.seq, id: timerIDBase + ti}
			r.seq++
			heap.Push(&r.q, ev)
			timers[ti].ev = ev
		case 4:
			cancelEv(timers[op.arg%numFuzzTimers].ev)
		}
	}
	for drainOne() {
	}
	return fired
}

// diffScripts replays a script on both implementations and reports the
// first divergence.
func diffScripts(t *testing.T, ops []fuzzOp) {
	t.Helper()
	got := runLadderFuzzScript(ops)
	want := runRefFuzzScript(ops)
	if len(got) != len(want) {
		t.Fatalf("ladder fired %d events, reference heap fired %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch %d diverged: ladder %+v, heap %+v", i, got[i], want[i])
		}
	}
}

// FuzzEngineScript: any byte string decodes to a valid op script; the
// ladder queue and the reference heap must dispatch identically.
func FuzzEngineScript(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 3, 0, 0, 4, 1, 2, 0, 0})          // schedule, schedule, step
	f.Add([]byte{3, 3, 0, 3, 3, 0, 4, 0, 0, 2, 0, 0}) // timer reset, reset, stop, step
	// A churn-heavy corpus entry: interleaved schedules, timer re-arms
	// and cancels across tiers.
	f.Add([]byte{0, 5, 0, 3, 200, 1, 1, 0, 0, 3, 200, 1, 2, 0, 0, 0, 130, 7, 4, 0, 1, 2, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 3*5000 {
			data = data[:3*5000] // bound script length, not coverage
		}
		diffScripts(t, decodeScript(data))
	})
}

// TestLadderTimerDifferential is the deterministic companion of
// FuzzEngineScript: randomized scripts heavy on Timer.Reset/Stop churn,
// replayed on every run of the suite (no -fuzz flag needed).
func TestLadderTimerDifferential(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		data := make([]byte, 3*1500)
		r.Read(data)
		diffScripts(t, decodeScript(data))
	}
}
