// Package engine implements the discrete-event simulation core of HolDCSim.
//
// The engine maintains a virtual clock and a two-tier ladder (calendar)
// queue of pending events. Events are plain closures scheduled for a point
// in virtual time; ties are broken by scheduling order (a monotonically
// increasing sequence number), which makes every run deterministic for a
// fixed seed.
//
// Three mechanisms keep the hot path allocation-free and sub-logarithmic
// (see DESIGN.md, "Engine internals"):
//
//   - Ladder queue: near-future events land in fixed-width time buckets
//     (O(1) enqueue for the dominant timer-churn workload); far-future
//     events overflow into an unsorted spill tier that is re-bucketed
//     lazily — with an adaptively chosen bucket width — once the clock
//     reaches it. The earliest bucket is kept as a small binary heap, so
//     the worst case (every event in one bucket) degenerates to the old
//     global heap rather than anything slower.
//   - Event pool: fired and swept events return to a free list and are
//     recycled, so steady-state scheduling performs zero allocations.
//     Handles carry a generation counter; a stale Handle to a recycled
//     event is inert and can neither cancel nor observe the new occupant.
//   - Lazy cancellation: Cancel is an O(1) tombstone. Tombstones are
//     swept when popped, and a background compaction runs when they
//     outnumber live events, bounding memory under arm/cancel churn.
//
// The engine is single-threaded by design: data center simulations at this
// abstraction level are dominated by event ordering, and a lock-free
// sequential loop is both faster and exactly reproducible. (This mirrors
// the paper's description of HolDCSim as a light-weight event-driven
// platform able to scale past 20K servers.)
package engine

import (
	"fmt"

	"holdcsim/internal/simtime"
)

const (
	// numBuckets is the ladder width: the near window spans
	// numBuckets*width of virtual time.
	numBuckets = 256
	// poolBlock is how many events one pool growth allocates.
	poolBlock = 256
	// sweepMinTombstones gates compaction so small queues never pay for
	// a sweep.
	sweepMinTombstones = 64
	// initialWidth is the bucket width before the first spill re-bucket
	// adapts it to the workload's real event horizon.
	initialWidth = simtime.Millisecond
)

// event states. An event is free (in the pool), queued, or tombstoned.
const (
	stateFree = iota
	stateQueued
	stateCanceled
)

// event is one pooled queue entry. Callers never see it directly; they
// hold Handles, which remain valid across the event's recycling.
type event struct {
	at    simtime.Time
	seq   uint64
	fn    func()
	gen   uint32
	state uint8
}

// Handle identifies one scheduled event. It is a small value type: copy
// it freely. The zero Handle is inert. A Handle outlives its event safely:
// once the event fires, is canceled and swept, or is recycled for a new
// scheduling, the generation check makes every method a no-op.
type Handle struct {
	ev  *event
	gen uint32
	at  simtime.Time
}

// At reports the virtual time the event was scheduled to fire at. It is
// valid even after the event fires or is canceled.
func (h Handle) At() simtime.Time { return h.at }

// Pending reports whether the event is still queued and not canceled.
func (h Handle) Pending() bool {
	return h.ev != nil && h.ev.gen == h.gen && h.ev.state == stateQueued
}

// Canceled reports whether the event was canceled and has not yet been
// swept or recycled. A fired or recycled event reports false.
func (h Handle) Canceled() bool {
	return h.ev != nil && h.ev.gen == h.gen && h.ev.state == stateCanceled
}

// Engine is a discrete-event simulator. The zero value is not usable;
// call New.
type Engine struct {
	now     simtime.Time
	seq     uint64
	stopped bool

	// bottom is the earliest tier: a small binary heap ordered by
	// (at, seq) holding every queued event with at < base.
	bottom []*event

	// buckets is the near tier: a ring of unsorted fixed-width buckets.
	// Slot (cur+j)%numBuckets covers [base+j*width, base+(j+1)*width).
	buckets    [numBuckets][]*event
	cur        int
	base       simtime.Time // exclusive upper bound of bottom's span
	width      simtime.Time
	nearCount  int          // events (incl. tombstones) in buckets
	spillStart simtime.Time // events at or beyond this go to spill

	// spill is the far tier: unsorted, append-only between re-buckets.
	spill []*event

	// forever holds at==simtime.Forever sentinels (e.g. "never" timers).
	// They sort after every real timestamp, FIFO among themselves, and
	// would otherwise break the adaptive width computation.
	forever []*event

	live      int // queued, not canceled, across all tiers
	canceled  int // tombstones across all tiers
	free      []*event
	freeBlock []event // current pool block being handed out

	// Dispatched counts events executed since New; exposed for the
	// scalability benchmarks (Table I).
	Dispatched uint64
}

// New returns an empty engine with the clock at the simulation epoch.
func New() *Engine {
	e := &Engine{width: initialWidth}
	e.spillStart = saturatingWindowEnd(0, initialWidth)
	e.bottom = make([]*event, 0, 64)
	return e
}

// saturatingWindowEnd computes base + numBuckets*width without
// overflowing past simtime.Forever.
func saturatingWindowEnd(base, width simtime.Time) simtime.Time {
	if width > (simtime.Forever-base)/numBuckets {
		return simtime.Forever
	}
	return base + numBuckets*width
}

// Now reports the current virtual time.
func (e *Engine) Now() simtime.Time { return e.now }

// Len reports the number of queued, non-canceled events.
func (e *Engine) Len() int { return e.live }

// alloc takes an event from the pool, growing it block-wise so steady
// state never allocates.
//simlint:hotpath
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free = e.free[:n-1]
		return ev
	}
	if len(e.freeBlock) == 0 {
		e.freeBlock = make([]event, poolBlock)
	}
	ev := &e.freeBlock[0]
	e.freeBlock = e.freeBlock[1:]
	return ev
}

// release recycles an event into the pool. Bumping the generation makes
// every outstanding Handle to it inert.
//simlint:hotpath
func (e *Engine) release(ev *event) {
	ev.fn = nil
	ev.state = stateFree
	ev.gen++
	e.free = append(e.free, ev) //simlint:allow hotpath free-list push: amortized O(1), capacity reaches steady state
}

// Schedule queues fn to run at absolute virtual time at.
// Scheduling in the past panics: it always indicates a model bug.
//simlint:hotpath
func (e *Engine) Schedule(at simtime.Time, fn func()) Handle {
	if at < e.now {
		panic(fmt.Sprintf("engine: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("engine: schedule with nil func")
	}
	ev := e.alloc()
	ev.at = at
	ev.seq = e.seq
	ev.fn = fn
	ev.state = stateQueued
	e.seq++
	e.live++
	e.place(ev)
	return Handle{ev: ev, gen: ev.gen, at: at}
}

// place routes an event to the tier covering its timestamp. Branches are
// ordered hottest-first: near-term events dominate every workload.
//simlint:hotpath
func (e *Engine) place(ev *event) {
	if ev.at < e.base {
		e.bottomPush(ev)
		return
	}
	if ev.at < e.spillStart {
		j := int((ev.at - e.base) / e.width)
		slot := (e.cur + j) % numBuckets
		e.buckets[slot] = append(e.buckets[slot], ev) //simlint:allow hotpath bucket push: amortized O(1), capacity reaches steady state
		e.nearCount++
		return
	}
	if ev.at == simtime.Forever {
		e.forever = append(e.forever, ev) //simlint:allow hotpath forever list push: amortized O(1), capacity reaches steady state
		return
	}
	e.spill = append(e.spill, ev) //simlint:allow hotpath spill push: amortized O(1), capacity reaches steady state
}

// After queues fn to run d from now. Negative d panics.
//simlint:hotpath
func (e *Engine) After(d simtime.Time, fn func()) Handle {
	return e.Schedule(e.now+d, fn)
}

// Cancel tombstones the event named by h if it has not fired. It is O(1);
// the entry is reclaimed when popped or at the next compaction sweep.
// Safe to call with the zero Handle or a stale one.
//simlint:hotpath
func (e *Engine) Cancel(h Handle) {
	if !h.Pending() {
		return
	}
	h.ev.state = stateCanceled
	e.live--
	e.canceled++
	e.maybeSweep()
}

// maybeSweep compacts tombstones once they outnumber live events, so
// arm/cancel churn cannot grow memory without bound.
func (e *Engine) maybeSweep() {
	if e.canceled < sweepMinTombstones || e.canceled < e.live {
		return
	}
	e.bottom = sweepSlice(e, e.bottom)
	heapify(e.bottom)
	for i := range e.buckets {
		if len(e.buckets[i]) == 0 {
			continue
		}
		before := len(e.buckets[i])
		e.buckets[i] = sweepSlice(e, e.buckets[i])
		e.nearCount -= before - len(e.buckets[i])
	}
	e.spill = sweepSlice(e, e.spill)
	e.forever = sweepSlice(e, e.forever)
	e.canceled = 0
}

// sweepSlice filters tombstoned events out of s in place, releasing them.
func sweepSlice(e *Engine, s []*event) []*event {
	kept := s[:0]
	for _, ev := range s {
		if ev.state == stateCanceled {
			e.release(ev)
			continue
		}
		kept = append(kept, ev)
	}
	for i := len(kept); i < len(s); i++ {
		s[i] = nil
	}
	return kept
}

// nextLive exposes the earliest pending event at the top of the bottom
// heap, advancing the ladder and sweeping tombstones as needed. Returns
// nil when the queue is empty.
func (e *Engine) nextLive() *event {
	for {
		for len(e.bottom) > 0 {
			top := e.bottom[0]
			if top.state == stateCanceled {
				e.bottomPop()
				e.canceled--
				e.release(top)
				continue
			}
			return top
		}
		if e.nearCount > 0 {
			e.advance()
			continue
		}
		if len(e.spill) > 0 {
			e.rebucket()
			continue
		}
		// Only the forever tier can be left; FIFO (== seq) order.
		for len(e.forever) > 0 {
			ev := e.forever[0]
			if ev.state == stateCanceled {
				e.forever[0] = nil
				e.forever = e.forever[1:]
				e.canceled--
				e.release(ev)
				continue
			}
			return ev
		}
		return nil
	}
}

// advance moves the next non-empty near bucket into the bottom heap,
// stepping base forward one width per bucket.
func (e *Engine) advance() {
	for e.nearCount > 0 {
		if e.width > simtime.Forever-e.base {
			// The window cannot step forward without wrapping the time
			// axis (events near simtime.Forever with a huge adapted
			// width). Collapse to pure-heap mode instead.
			e.degenerate()
			return
		}
		slot := e.cur
		b := e.buckets[slot]
		e.base += e.width
		e.cur = (e.cur + 1) % numBuckets
		if len(b) == 0 {
			continue
		}
		e.nearCount -= len(b)
		e.bottom = append(e.bottom, b...)
		for i := range b {
			b[i] = nil
		}
		e.buckets[slot] = b[:0]
		heapify(e.bottom)
		return
	}
}

// degenerate collapses the bucket and spill tiers into the bottom heap
// and freezes base at Forever, turning the engine into a plain binary
// heap. Only reachable when event timestamps approach simtime.Forever,
// where a ladder window can no longer be represented; ordering stays
// exact because the heap orders globally by (at, seq).
func (e *Engine) degenerate() {
	for i := range e.buckets {
		b := e.buckets[i]
		if len(b) == 0 {
			continue
		}
		e.bottom = append(e.bottom, b...)
		for j := range b {
			b[j] = nil
		}
		e.buckets[i] = b[:0]
	}
	e.nearCount = 0
	e.bottom = append(e.bottom, e.spill...)
	for i := range e.spill {
		e.spill[i] = nil
	}
	e.spill = e.spill[:0]
	e.base = simtime.Forever
	e.spillStart = simtime.Forever
	heapify(e.bottom)
}

// rebucket rebuilds the ladder from the spill tier: the bucket width is
// re-derived from the spill's actual time span (the calendar-queue
// adaptation), then every spill event is redistributed. Called only when
// the bottom and near tiers are empty, so ordering is preserved.
func (e *Engine) rebucket() {
	// Sweep tombstones and find the live span in one pass.
	spill := sweepSlice(e, e.spill)
	e.canceled -= len(e.spill) - len(spill)
	e.spill = spill
	if len(spill) == 0 {
		return
	}
	lo, hi := spill[0].at, spill[0].at
	for _, ev := range spill[1:] {
		if ev.at < lo {
			lo = ev.at
		}
		if ev.at > hi {
			hi = ev.at
		}
	}
	// Width such that [lo, hi] fits in the near window with the first
	// width-span going to the bottom heap. A small spill (e.g. a single
	// event trickling past the window as the clock marches forward) is
	// not a density sample worth shrinking the horizon for: collapsing
	// the window would make every subsequent far-future event trigger
	// another re-bucket.
	w := (hi-lo)/(numBuckets-1) + 1
	if len(spill) < numBuckets && w < e.width {
		w = e.width
	}
	e.width = w
	if w > simtime.Forever-lo {
		e.base = simtime.Forever
	} else {
		e.base = lo + w
	}
	e.cur = 0
	e.spillStart = saturatingWindowEnd(e.base, e.width)
	for _, ev := range spill {
		e.place(ev)
	}
	heapify(e.bottom)
	for i := range spill {
		spill[i] = nil
	}
	e.spill = spill[:0]
}

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It reports false when the queue is empty or the engine
// has been stopped.
//simlint:hotpath
func (e *Engine) Step() bool {
	if e.stopped {
		return false
	}
	var ev *event
	if len(e.bottom) > 0 && e.bottom[0].state == stateQueued {
		// Fast path: a live event is already at the heap top.
		ev = e.bottom[0]
		e.bottomPop()
	} else {
		ev = e.nextLive()
		if ev == nil {
			return false
		}
		if len(e.bottom) > 0 && e.bottom[0] == ev {
			e.bottomPop()
		} else {
			// nextLive only surfaces a forever-tier event once every
			// other tier is empty.
			e.forever[0] = nil
			e.forever = e.forever[1:]
		}
	}
	e.now = ev.at
	e.Dispatched++
	e.live--
	fn := ev.fn
	// Release before running so fn's own rescheduling can reuse the
	// slot; the generation bump keeps outstanding Handles inert.
	e.release(ev)
	fn()
	return true
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= end, then advances the clock
// to end (even if the queue still holds later events). It stops early if
// Stop is called or the queue drains.
func (e *Engine) RunUntil(end simtime.Time) {
	for !e.stopped {
		next := e.nextLive()
		if next == nil || next.at > end {
			break
		}
		e.Step()
	}
	if e.now < end {
		e.now = end
	}
}

// Stop halts Run/RunUntil after the current event returns. Pending events
// stay queued; a subsequent Run resumes.
func (e *Engine) Stop() { e.stopped = true }

// Resume clears a previous Stop.
func (e *Engine) Resume() { e.stopped = false }

// NextEventTime reports the timestamp of the earliest pending event and
// whether one exists.
func (e *Engine) NextEventTime() (simtime.Time, bool) {
	ev := e.nextLive()
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

// ---------------------------------------------------------------------
// bottom heap: a specialized binary min-heap ordered by (at, seq).
// ---------------------------------------------------------------------

func lessEv(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

//simlint:hotpath
func (e *Engine) bottomPush(ev *event) {
	e.bottom = append(e.bottom, ev) //simlint:allow hotpath bottom-heap push: amortized O(1), capacity reaches steady state
	h := e.bottom
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !lessEv(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

//simlint:hotpath
func (e *Engine) bottomPop() *event {
	h := e.bottom
	n := len(h) - 1
	top := h[0]
	h[0] = h[n]
	h[n] = nil
	e.bottom = h[:n]
	siftDown(e.bottom, 0)
	return top
}

//simlint:hotpath
func siftDown(h []*event, i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		least := l
		if r := l + 1; r < n && lessEv(h[r], h[l]) {
			least = r
		}
		if !lessEv(h[least], h[i]) {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

func heapify(h []*event) {
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i)
	}
}
